#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "util/cli.hpp"
#include "util/random.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"

namespace amped {
namespace {

TEST(SplitMix64Test, DeterministicAndDistinct) {
  SplitMix64 a(42), b(42), c(43);
  const auto x = a.next();
  EXPECT_EQ(x, b.next());
  EXPECT_NE(x, c.next());
}

TEST(RngTest, DeterministicStreams) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngTest, SplitProducesIndependentStream) {
  Rng a(7);
  Rng split = a.split();
  // The split stream must differ from the parent's continued stream.
  bool any_diff = false;
  for (int i = 0; i < 16; ++i) {
    if (a.next_u64() != split.next_u64()) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(RngTest, NextBelowIsInRange) {
  Rng rng(11);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.next_below(bound), bound);
    }
  }
}

TEST(RngTest, NextBelowCoversSmallRangeUniformly) {
  Rng rng(13);
  std::vector<int> counts(8, 0);
  const int n = 80000;
  for (int i = 0; i < n; ++i) ++counts[rng.next_below(8)];
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c), n / 8.0, n / 8.0 * 0.1);
  }
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(17);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(ZipfTest, UniformWhenExponentZero) {
  Rng rng(3);
  ZipfSampler z(10, 0.0);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 50000; ++i) ++counts[z(rng)];
  for (int c : counts) EXPECT_NEAR(c, 5000, 500);
}

TEST(ZipfTest, SamplesStayInDomain) {
  Rng rng(5);
  for (double s : {0.5, 1.0, 1.5}) {
    ZipfSampler z(1000, s);
    for (int i = 0; i < 2000; ++i) EXPECT_LT(z(rng), 1000u);
  }
}

TEST(ZipfTest, RankZeroIsHottest) {
  Rng rng(9);
  ZipfSampler z(100, 1.1);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 200000; ++i) ++counts[z(rng)];
  // Rank 0 strictly dominates mid and tail ranks.
  EXPECT_GT(counts[0], counts[10] * 2);
  EXPECT_GT(counts[0], counts[90] * 5);
}

TEST(ZipfTest, HeavierExponentMoreSkew) {
  Rng rng(21);
  ZipfSampler light(500, 0.5), heavy(500, 1.5);
  int light_top = 0, heavy_top = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (light(rng) == 0) ++light_top;
    if (heavy(rng) == 0) ++heavy_top;
  }
  EXPECT_GT(heavy_top, light_top * 3);
}

TEST(ZipfTest, SingletonDomain) {
  Rng rng(1);
  ZipfSampler z(1, 1.2);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(z(rng), 0u);
}

TEST(StatsTest, MeanAndGeomean) {
  std::vector<double> xs{1.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(xs), 7.0 / 3.0);
  EXPECT_NEAR(geomean(xs), 2.0, 1e-12);
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
}

TEST(StatsTest, MinMaxStddev) {
  std::vector<double> xs{3.0, 1.0, 2.0};
  EXPECT_DOUBLE_EQ(min_of(xs), 1.0);
  EXPECT_DOUBLE_EQ(max_of(xs), 3.0);
  EXPECT_NEAR(stddev(xs), std::sqrt(2.0 / 3.0), 1e-12);
}

TEST(StatsTest, OverheadFraction) {
  std::vector<double> balanced{1.0, 1.0, 1.0, 1.0};
  EXPECT_DOUBLE_EQ(overhead_fraction(balanced), 0.0);
  std::vector<double> skewed{2.0, 1.0, 1.0};
  EXPECT_NEAR(overhead_fraction(skewed), 0.25, 1e-12);
}

TEST(StatsTest, ImbalanceFactor) {
  std::vector<double> xs{2.0, 1.0, 3.0};
  EXPECT_DOUBLE_EQ(imbalance_factor(xs), 1.5);
}

TEST(StatsTest, GiniBounds) {
  std::vector<double> equal{5.0, 5.0, 5.0, 5.0};
  EXPECT_NEAR(gini(equal), 0.0, 1e-12);
  std::vector<double> unequal{0.0, 0.0, 0.0, 100.0};
  EXPECT_GT(gini(unequal), 0.7);
}

TEST(StatsTest, Histogram) {
  std::vector<double> xs{0.1, 0.2, 0.6, 0.9, 1.5};
  auto h = histogram(xs, 0.0, 1.0, 2);
  EXPECT_EQ(h[0], 2u);  // 0.1, 0.2
  EXPECT_EQ(h[1], 2u);  // 0.6, 0.9; 1.5 out of range
}

TEST(CliTest, ParsesForms) {
  // Note: a bare boolean flag must be followed by another flag or the end
  // of the line — `--flag value` is always parsed as key/value.
  const char* argv[] = {"prog", "--alpha=3", "--beta", "4",
                        "pos1", "--flag",    "--gamma=x"};
  CliArgs args(7, argv);
  EXPECT_EQ(args.get_int("alpha", 0), 3);
  EXPECT_EQ(args.get_int("beta", 0), 4);
  EXPECT_TRUE(args.get_bool("flag", false));
  EXPECT_EQ(args.get("gamma", ""), "x");
  EXPECT_EQ(args.get("missing", "d"), "d");
  ASSERT_EQ(args.positional().size(), 1u);
  EXPECT_EQ(args.positional()[0], "pos1");
}

TEST(CliTest, DoubleAndBoolFallbacks) {
  const char* argv[] = {"prog", "--x=2.5"};
  CliArgs args(2, argv);
  EXPECT_DOUBLE_EQ(args.get_double("x", 0.0), 2.5);
  EXPECT_DOUBLE_EQ(args.get_double("y", 1.25), 1.25);
  EXPECT_FALSE(args.get_bool("z", false));
}

TEST(ThreadPoolTest, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  pool.parallel_for(100, [&](std::size_t i) { ++hits[i]; });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, SubmitAndWait) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 50; ++i) {
    pool.submit([&] { ++counter; });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 50);
}

}  // namespace
}  // namespace amped
