// Property sweep across execution formats: for any (mode count, skew)
// workload, every format must (a) preserve the exact multiset of
// nonzeros, (b) compute MTTKRP equal to the reference on every mode it
// supports, and (c) report storage within sane bounds. This is the
// cross-format contract the baseline runners rely on.
#include <gtest/gtest.h>

#include <array>
#include <map>
#include <tuple>

#include "formats/blco.hpp"
#include "formats/csf.hpp"
#include "formats/hicoo.hpp"
#include "tensor/generator.hpp"
#include "tensor/reference_mttkrp.hpp"

namespace amped::formats {
namespace {

using Params = std::tuple<std::size_t, double>;  // (modes, skew)

class FormatProperty : public ::testing::TestWithParam<Params> {
 protected:
  CooTensor make_tensor() const {
    const auto [modes, skew] = GetParam();
    GeneratorOptions opt;
    opt.dims.assign(modes, 0);
    for (std::size_t m = 0; m < modes; ++m) {
      opt.dims[m] = static_cast<index_t>(48 + 37 * m);
    }
    opt.zipf_exponents.assign(modes, skew);
    opt.nnz = 3000;
    opt.seed = 1000 + modes * 10 + static_cast<std::uint64_t>(skew * 10);
    return generate_random(opt);
  }

  // Order-independent fingerprint of (coords, value) pairs.
  static double fingerprint(std::span<const index_t> coords, value_t v,
                            std::size_t modes) {
    double h = static_cast<double>(v);
    for (std::size_t m = 0; m < modes; ++m) {
      h += static_cast<double>(coords[m]) * (m + 1) * 1e-3;
    }
    return h;
  }
};

TEST_P(FormatProperty, BlcoPreservesElements) {
  const auto t = make_tensor();
  const std::size_t modes = t.num_modes();
  auto blco = BlcoTensor::build(t, 700);
  ASSERT_EQ(blco.nnz(), t.nnz());

  double sum_in = 0.0, sum_out = 0.0;
  std::array<index_t, kMaxModes> c{};
  for (nnz_t n = 0; n < t.nnz(); ++n) {
    t.coords_of(n, c);
    sum_in += fingerprint(std::span<const index_t>(c.data(), modes),
                          t.values()[n], modes);
  }
  for (const auto& block : blco.blocks()) {
    blco.visit_block(block, [&](std::span<const index_t> coords, value_t v) {
      sum_out += fingerprint(coords, v, modes);
    });
  }
  EXPECT_NEAR(sum_in, sum_out, 1e-3 * static_cast<double>(t.nnz()));
}

TEST_P(FormatProperty, HicooMttkrpMatchesReferenceAllModes) {
  const auto t = make_tensor();
  if (t.num_modes() > 4) GTEST_SKIP() << "HiCOO kernels support <= 4 modes";
  auto h = HicooTensor::build(t, 4);
  Rng rng(17);
  FactorSet f(t.dims(), 6, rng);
  for (std::size_t d = 0; d < t.num_modes(); ++d) {
    DenseMatrix out(t.dim(d), 6);
    h.mttkrp(f, d, out);
    EXPECT_LT(relative_max_diff(reference_mttkrp(t, f, d), out), 1e-3)
        << "mode " << d;
  }
}

TEST_P(FormatProperty, CsfMttkrpMatchesReferenceEveryRoot) {
  const auto t = make_tensor();
  Rng rng(18);
  FactorSet f(t.dims(), 6, rng);
  for (std::size_t root = 0; root < t.num_modes(); ++root) {
    std::vector<std::size_t> order{root};
    for (std::size_t m = 0; m < t.num_modes(); ++m) {
      if (m != root) order.push_back(m);
    }
    auto csf = CsfTensor::build(t, order);
    EXPECT_EQ(csf.nnz(), t.nnz());
    DenseMatrix out(t.dim(root), 6);
    csf.mttkrp_root(f, out);
    EXPECT_LT(relative_max_diff(reference_mttkrp(t, f, root), out), 1e-3)
        << "root " << root;
  }
}

TEST_P(FormatProperty, StorageBoundsAreSane) {
  const auto t = make_tensor();
  auto blco = BlcoTensor::build(t);
  auto h = HicooTensor::build(t, 4);
  // BLCO: 12 bytes per element + bounded headers.
  EXPECT_GE(blco.storage_bytes(), t.nnz() * 12);
  EXPECT_LE(blco.storage_bytes(),
            t.nnz() * 12 + 64 * blco.blocks().size());
  // HiCOO: never more than twice raw COO on these dense-ish workloads.
  EXPECT_LT(h.storage_bytes(), 2 * t.storage_bytes());
  // CSF: level sizes are monotone non-decreasing down the tree.
  auto csf = CsfTensor::build(t, [&] {
    std::vector<std::size_t> order(t.num_modes());
    for (std::size_t m = 0; m < order.size(); ++m) order[m] = m;
    return order;
  }());
  const auto sizes = csf.level_sizes();
  for (std::size_t l = 1; l < sizes.size(); ++l) {
    EXPECT_GE(sizes[l], sizes[l - 1]) << "level " << l;
  }
}

INSTANTIATE_TEST_SUITE_P(
    ModesAndSkew, FormatProperty,
    ::testing::Combine(::testing::Values<std::size_t>(2, 3, 4, 5),
                       ::testing::Values(0.0, 0.9, 1.4)),
    [](const auto& param_info) {
      std::string n = "m";
      n += std::to_string(std::get<0>(param_info.param));
      n += "_s";
      n += std::to_string(static_cast<int>(std::get<1>(param_info.param) * 10));
      return n;
    });

}  // namespace
}  // namespace amped::formats
