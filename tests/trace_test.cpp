#include <gtest/gtest.h>

#include <sstream>

#include "core/amped_tensor.hpp"
#include "core/mttkrp.hpp"
#include "sim/trace.hpp"
#include "tensor/generator.hpp"

namespace amped::sim {
namespace {

TEST(TraceTest, RecordsAndTotals) {
  TraceLog trace;
  trace.record({.device = 0, .phase = Phase::kCompute, .start_s = 0.0,
                .duration_s = 1.5, .label = "k1"});
  trace.record({.device = 1, .phase = Phase::kCompute, .start_s = 0.5,
                .duration_s = 2.0, .label = "k2"});
  trace.record({.device = 0, .phase = Phase::kHostToDevice,
                .start_s = 1.5, .duration_s = 0.25, .label = ""});
  EXPECT_EQ(trace.events().size(), 3u);
  EXPECT_DOUBLE_EQ(trace.total(Phase::kCompute), 3.5);
  EXPECT_DOUBLE_EQ(trace.total(Phase::kCompute, 0), 1.5);
  EXPECT_DOUBLE_EQ(trace.total(Phase::kHostToDevice, 1), 0.0);
}

TEST(TraceTest, CapacityDropsExcessEvents) {
  TraceLog trace(2);
  for (int i = 0; i < 5; ++i) {
    trace.record({.device = 0, .phase = Phase::kCompute,
                  .start_s = static_cast<double>(i), .duration_s = 1.0,
                  .label = ""});
  }
  EXPECT_EQ(trace.events().size(), 2u);
  EXPECT_EQ(trace.dropped(), 3u);
  trace.clear();
  EXPECT_EQ(trace.dropped(), 0u);
}

TEST(TraceTest, DeviceEmitsEventsWhenAttached) {
  SimDevice d(rtx6000_ada_spec(), 3);
  TraceLog trace;
  d.set_trace(&trace);
  EXPECT_TRUE(d.tracing());
  d.advance(Phase::kCompute, 0.5, "kernel");
  d.advance(Phase::kCompute, 0.0);  // zero-length events are skipped
  d.wait_until(1.0);
  ASSERT_EQ(trace.events().size(), 2u);
  EXPECT_EQ(trace.events()[0].device, 3);
  EXPECT_EQ(trace.events()[0].label, "kernel");
  EXPECT_DOUBLE_EQ(trace.events()[1].start_s, 0.5);
  EXPECT_EQ(trace.events()[1].phase, Phase::kSync);
}

TEST(TraceTest, ChromeJsonIsWellFormedish) {
  TraceLog trace;
  trace.record({.device = 0, .phase = Phase::kCompute, .start_s = 0.0,
                .duration_s = 1e-3, .label = "ec"});
  std::ostringstream out;
  trace.write_chrome_json(out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"dur\":1000"), std::string::npos);  // 1 ms -> us
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

TEST(TraceTest, MttkrpProducesCoherentTrace) {
  GeneratorOptions opt;
  opt.dims = {128, 96, 64};
  opt.nnz = 20000;
  opt.seed = 81;
  auto input = generate_random(opt);
  Rng rng(82);
  FactorSet factors(input.dims(), 8, rng);
  AmpedBuildOptions build;
  build.num_gpus = 2;
  auto tensor = AmpedTensor::build(input, build);

  auto platform = make_default_platform(2);
  TraceLog trace;
  platform.attach_trace(&trace);
  std::vector<DenseMatrix> outputs;
  auto report =
      mttkrp_all_modes(platform, tensor, factors, outputs, MttkrpOptions{});

  // Trace totals agree with the timeline totals per phase.
  const auto agg = platform.aggregate_timeline();
  EXPECT_NEAR(trace.total(Phase::kCompute), agg.total(Phase::kCompute),
              1e-12);
  EXPECT_NEAR(trace.total(Phase::kHostToDevice),
              agg.total(Phase::kHostToDevice), 1e-12);
  // Events on one device never overlap and are time-ordered.
  for (int g = 0; g < 2; ++g) {
    double cursor = 0.0;
    for (const auto& e : trace.events()) {
      if (e.device != g) continue;
      EXPECT_GE(e.start_s, cursor - 1e-15);
      cursor = e.start_s + e.duration_s;
    }
  }
  // Compute events carry the shard label.
  bool labelled = false;
  for (const auto& e : trace.events()) {
    if (e.phase == Phase::kCompute && e.label.rfind("grid mode", 0) == 0) {
      labelled = true;
    }
  }
  EXPECT_TRUE(labelled);
  EXPECT_GT(report.total_seconds, 0.0);
}

}  // namespace
}  // namespace amped::sim
