#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <sstream>
#include <string>

#include "io/tns_ingest.hpp"
#include "tensor/generator.hpp"
#include "tensor/tns_io.hpp"

namespace amped {
namespace {

void expect_tensors_equal(const CooTensor& a, const CooTensor& b) {
  ASSERT_EQ(a.num_modes(), b.num_modes());
  ASSERT_EQ(a.dims(), b.dims());
  ASSERT_EQ(a.nnz(), b.nnz());
  for (std::size_t m = 0; m < a.num_modes(); ++m) {
    ASSERT_EQ(0, std::memcmp(a.indices(m).data(), b.indices(m).data(),
                             a.nnz() * sizeof(index_t)))
        << "mode " << m << " differs";
  }
  ASSERT_EQ(0, std::memcmp(a.values().data(), b.values().data(),
                           a.nnz() * sizeof(value_t)));
}

CooTensor serial_parse(const std::string& text) {
  std::istringstream in(text);
  return read_tns(in);
}

std::string tns_text_of(const CooTensor& t) {
  std::ostringstream out;
  write_tns(t, out);
  return out.str();
}

TEST(ParallelIngestTest, MatchesSerialAcrossShapesAndChunkCounts) {
  struct Case {
    std::vector<index_t> dims;
    nnz_t nnz;
  };
  const Case cases[] = {
      {{64}, 150},                // 1 mode
      {{40, 30}, 400},            // 2 modes
      {{20, 30, 10}, 1000},       // 3 modes
      {{12, 9, 7, 5, 4}, 700},    // 5 modes
  };
  std::uint64_t seed = 11;
  for (const auto& c : cases) {
    GeneratorOptions opt;
    opt.dims = c.dims;
    opt.nnz = c.nnz;
    opt.seed = seed++;
    const auto t = generate_random(opt);
    const auto text = tns_text_of(t);
    const auto serial = serial_parse(text);
    for (std::size_t chunks : {std::size_t{0}, std::size_t{1},
                               std::size_t{3}, std::size_t{8}}) {
      expect_tensors_equal(serial, io::read_tns_text(text, chunks));
    }
  }
}

TEST(ParallelIngestTest, AcceptsCrlfAndWhitespace) {
  const std::string text =
      "  # a comment with leading spaces\r\n"
      "\t# dims: 10 10 10\r\n"
      "\r\n"
      "   \t  \r\n"
      " 1 1 1 2.5 \r\n"
      "\t3\t2\t5\t-1.0\t\r\n"
      "10 10 10 4.0";  // no trailing newline
  for (std::size_t chunks : {std::size_t{1}, std::size_t{4}}) {
    const auto t = io::read_tns_text(text, chunks);
    ASSERT_EQ(t.num_modes(), 3u);
    ASSERT_EQ(t.nnz(), 3u);
    EXPECT_EQ(t.dim(0), 10u);
    EXPECT_EQ(t.indices(0)[1], 2u);
    EXPECT_FLOAT_EQ(t.values()[0], 2.5f);
    EXPECT_FLOAT_EQ(t.values()[2], 4.0f);
  }
  // The hardened serial parser accepts the same bytes.
  expect_tensors_equal(serial_parse(text), io::read_tns_text(text));
}

TEST(ParallelIngestTest, ErrorsNameTheLine) {
  const std::string text =
      "# comment\n"
      "1 1 1 2.5\n"
      "1 0 1 3.5\n";  // zero index on line 3
  for (std::size_t chunks : {std::size_t{1}, std::size_t{4}}) {
    try {
      io::read_tns_text(text, chunks);
      FAIL() << "expected malformed input to throw";
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find("(line 3)"), std::string::npos)
          << e.what();
      EXPECT_NE(std::string(e.what()).find("1-based"), std::string::npos);
    }
  }
  // Serial parser reports the same position.
  try {
    serial_parse(text);
    FAIL() << "expected malformed input to throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("(line 3)"), std::string::npos);
  }
}

TEST(ParallelIngestTest, ReportsEarliestErrorAcrossChunks) {
  // Two bad lines; whatever the chunking, the first one wins — matching
  // where the serial parser stops.
  std::string text = "1 1 1 1.0\n";
  for (int i = 0; i < 50; ++i) text += "2 2 2 2.0\n";
  text += "bad line\n";             // line 52
  for (int i = 0; i < 50; ++i) text += "3 3 3 3.0\n";
  text += "0 1 1 1.0\n";            // line 103, also bad
  try {
    io::read_tns_text(text, 6);
    FAIL() << "expected malformed input to throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("(line 52)"), std::string::npos)
        << e.what();
  }
}

TEST(ParallelIngestTest, InconsistentModeCountAcrossChunks) {
  // Enough 3-mode lines to fill the first chunks, then a consistent run
  // of 4-mode lines that lands in a later chunk: the merge must still
  // report the first offending line.
  std::string text;
  for (int i = 0; i < 60; ++i) text += "1 2 3 1.0\n";
  for (int i = 0; i < 60; ++i) text += "1 2 3 4 1.0\n";
  try {
    io::read_tns_text(text, 4);
    FAIL() << "expected malformed input to throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("inconsistent mode count"),
              std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("(line 61)"), std::string::npos)
        << e.what();
  }
}

TEST(ParallelIngestTest, ChunkLocalModeMismatchStillMatchesSerialError) {
  // A chunk whose own first data line is internally consistent at the
  // wrong mode count parses the rest of its range under that wrong
  // count; any error it raises (here "index < 1" on line 42) is bogus.
  // The reported error must still be serial's: "inconsistent mode
  // count" at the chunk's first data line.
  std::string text;
  for (int i = 0; i < 40; ++i) text += "1 2 3 1.0\n";  // 3 modes
  text += "7 1.5\n";   // line 41: 1 mode
  text += "0 1.5\n";   // line 42: would be "index < 1" under local count
  for (std::size_t chunks : {std::size_t{1}, std::size_t{4},
                             std::size_t{41}}) {
    try {
      io::read_tns_text(text, chunks);
      FAIL() << "expected malformed input to throw (chunks=" << chunks
             << ")";
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find("inconsistent mode count"),
                std::string::npos)
          << "chunks=" << chunks << ": " << e.what();
      EXPECT_NE(std::string(e.what()).find("(line 41)"), std::string::npos)
          << "chunks=" << chunks << ": " << e.what();
    }
  }
  // A too-wide line in a non-first position is likewise "inconsistent
  // mode count" (serial never re-evaluates "too many modes" mid-file).
  std::string wide;
  for (int i = 0; i < 40; ++i) wide += "1 2 3 1.0\n";
  wide += "1 2 3 4 5 6 7 8 9 1.5\n";  // line 41: 9 modes > kMaxModes
  for (std::size_t chunks : {std::size_t{1}, std::size_t{41}}) {
    try {
      io::read_tns_text(wide, chunks);
      FAIL() << "expected malformed input to throw (chunks=" << chunks
             << ")";
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find("inconsistent mode count"),
                std::string::npos)
          << "chunks=" << chunks << ": " << e.what();
      EXPECT_NE(std::string(e.what()).find("(line 41)"), std::string::npos)
          << "chunks=" << chunks << ": " << e.what();
    }
  }
}

TEST(ParallelIngestTest, AcceptsExplicitPlusSignsLikeIstream) {
  // istream extraction tolerates "+2" / "+1.5"; the from_chars scanner
  // must match.
  const std::string text = "+1 2 3 +2.5\n4 +5 6 -1.0\n";
  const auto parallel = io::read_tns_text(text, 2);
  expect_tensors_equal(serial_parse(text), parallel);
  EXPECT_FLOAT_EQ(parallel.values()[0], 2.5f);
  EXPECT_EQ(parallel.indices(1)[1], 4u);
}

TEST(ParallelIngestTest, HonoursDimsHeaderAndRejectsTooSmall) {
  const std::string ok = "# dims: 10 10 10\n1 1 1 1.0\n";
  EXPECT_EQ(io::read_tns_text(ok, 2).dim(0), 10u);
  const std::string bad = "# dims: 2 2 2\n5 1 1 1.0\n";
  EXPECT_THROW(io::read_tns_text(bad, 2), std::runtime_error);
}

TEST(ParallelIngestTest, EmptyInputsThrow) {
  EXPECT_THROW(io::read_tns_text("", 1), std::runtime_error);
  EXPECT_THROW(io::read_tns_text("# only comments\n", 4),
               std::runtime_error);
}

TEST(ParallelIngestTest, FileRoundTripThroughReadTnsFile) {
  GeneratorOptions opt;
  opt.dims = {30, 20, 10};
  opt.nnz = 500;
  opt.seed = 77;
  const auto t = generate_random(opt);
  const auto path = (std::filesystem::temp_directory_path() /
                     "amped_ingest_roundtrip.tns").string();
  write_tns_file(t, path);
  // read_tns_file routes through the parallel ingest.
  const auto back = read_tns_file(path);
  std::remove(path.c_str());
  ASSERT_EQ(back.nnz(), t.nnz());
  ASSERT_EQ(back.dims(), t.dims());
  for (nnz_t n = 0; n < t.nnz(); ++n) {
    for (std::size_t m = 0; m < 3; ++m) {
      EXPECT_EQ(back.indices(m)[n], t.indices(m)[n]);
    }
    EXPECT_NEAR(back.values()[n], t.values()[n], 1e-5f);
  }
}

}  // namespace
}  // namespace amped
