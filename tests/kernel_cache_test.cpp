// Tile-program dispatch (core/kernel_cache): bit-identity against the
// single-pass generic kernel across the full shape space, cache key and
// find-or-create semantics, and thread-safety of the lock-free lookup
// path (the concurrency tests run in the TSan CI lane).
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <vector>

#include "core/ec_kernel.hpp"
#include "core/kernel_cache.hpp"
#include "tensor/generator.hpp"
#include "util/metrics.hpp"
#include "util/thread_pool.hpp"

namespace amped {
namespace {

CooTensor random_tensor(std::size_t modes, nnz_t nnz, std::uint64_t seed,
                        bool sorted) {
  GeneratorOptions opt;
  // Mixed mode sizes so runs, repeats, and scattered rows all occur.
  const index_t sizes[] = {96, 40, 24, 12, 8, 6, 5, 4};
  opt.dims.assign(sizes, sizes + modes);
  opt.nnz = nnz;
  opt.zipf_exponents.assign(modes, 0.0);
  opt.zipf_exponents[0] = 0.9;
  opt.seed = seed;
  auto t = generate_random(opt);
  if (sorted) t.sort_by_mode(0);
  return t;
}

// memcmp-level equality: tiled dispatch must be bit-identical to the
// generic kernel, not merely close — each rank column performs the same
// FP operation sequence in the same order regardless of tiling.
void expect_bit_identical(const DenseMatrix& tiled,
                          const DenseMatrix& generic, std::size_t rank,
                          std::size_t modes, bool sorted) {
  ASSERT_EQ(tiled.data().size(), generic.data().size());
  EXPECT_EQ(std::memcmp(tiled.data().data(), generic.data().data(),
                        tiled.data().size() * sizeof(value_t)),
            0)
      << "rank " << rank << " modes " << modes
      << (sorted ? " sorted" : " unsorted");
}

// Every rank 1..200 x mode counts 2/3/4/5 x sorted/unsorted: identical
// output bits and identical block stats.
TEST(KernelCacheEquivalence, TiledMatchesGenericAcrossShapes) {
  for (const std::size_t modes : {2u, 3u, 4u, 5u}) {
    for (const bool sorted : {true, false}) {
      const auto t = random_tensor(modes, 800, 100 + modes, sorted);
      const auto order =
          sorted ? BlockOrder::kOutputSorted : BlockOrder::kUnsorted;
      for (std::size_t rank = 1; rank <= 200; ++rank) {
        Rng rng(7 + rank);
        const FactorSet f(t.dims(), rank, rng);
        DenseMatrix tiled(t.dim(0), rank);
        DenseMatrix generic(t.dim(0), rank);
        const auto st = run_ec_block(t, 0, t.nnz(), 0, f, tiled, order);
        const auto sg =
            run_ec_block_generic(t, 0, t.nnz(), 0, f, generic, order);
        expect_bit_identical(tiled, generic, rank, modes, sorted);
        EXPECT_EQ(st.nnz, sg.nnz);
        EXPECT_EQ(st.output_runs, sg.output_runs);
        EXPECT_EQ(st.max_run, sg.max_run);
        EXPECT_EQ(st.max_multiplicity, sg.max_multiplicity);
        EXPECT_EQ(st.modes, sg.modes);
        EXPECT_EQ(st.rank, sg.rank);
      }
    }
  }
}

// Partial ranges and non-output modes dispatch identically too.
TEST(KernelCacheEquivalence, PartialRangesAndOtherModes) {
  const auto t = random_tensor(3, 1200, 42, true);
  for (const std::size_t rank : {20u, 48u, 100u}) {
    Rng rng(5 + rank);
    const FactorSet f(t.dims(), rank, rng);
    for (std::size_t mode = 0; mode < 3; ++mode) {
      DenseMatrix tiled(t.dim(mode), rank);
      DenseMatrix generic(t.dim(mode), rank);
      for (nnz_t lo = 0; lo < t.nnz(); lo += 379) {
        const nnz_t hi = std::min<nnz_t>(t.nnz(), lo + 379);
        run_ec_block(t, lo, hi, mode, f, tiled);
        run_ec_block_generic(t, lo, hi, mode, f, generic);
      }
      expect_bit_identical(tiled, generic, rank, 3, mode == 0);
    }
  }
}

TEST(KernelShapeTest, KeyBucketsModeClassAndOrder) {
  const auto a = KernelShape::of(3, 100, BlockOrder::kOutputSorted);
  EXPECT_EQ(a.rank, 100u);
  EXPECT_EQ(a.modes, 3u);
  EXPECT_EQ(a.mode_class(), 3u);
  EXPECT_EQ(a.index_width, sizeof(index_t));

  // Distinct rank, mode class, or order -> distinct keys.
  EXPECT_FALSE(a == KernelShape::of(3, 101, BlockOrder::kOutputSorted));
  EXPECT_FALSE(a == KernelShape::of(4, 100, BlockOrder::kOutputSorted));
  EXPECT_FALSE(a == KernelShape::of(3, 100, BlockOrder::kUnsorted));
  // >=5-mode tensors share the generic-fallback bucket.
  EXPECT_EQ(KernelShape::of(5, 100, BlockOrder::kUnsorted).mode_class(), 0u);
  EXPECT_TRUE(KernelShape::of(5, 100, BlockOrder::kUnsorted) ==
              KernelShape::of(6, 100, BlockOrder::kUnsorted));
}

TEST(KernelCacheTest, FindOrCreateIsIdempotentAndCounts) {
  auto& cache = KernelCache::global();
  // A rank distinct per run of this binary is not possible (the cache is
  // process-global), so use a corner of the shape space the other tests
  // do not touch and assert relative growth.
  const auto shape = KernelShape::of(4, 199, BlockOrder::kUnsorted);
  const std::size_t before = cache.size();
  const auto& first = cache.find_or_create(shape);
  ASSERT_GE(cache.size(), before);  // maybe created just now
  const auto& second = cache.find_or_create(shape);
  EXPECT_EQ(&first, &second);  // stable handle, one program per shape
  EXPECT_EQ(cache.size(), cache.size());

  // Tile decomposition is the greedy 64/32/16/8 + remainder split and
  // covers the rank exactly.
  std::size_t covered = 0;
  for (const auto& tile : first.tiles()) {
    EXPECT_EQ(tile.col, covered);
    covered += tile.width;
  }
  EXPECT_EQ(covered, 199u);
  const auto widths = sim::ec_tile_widths(199);
  ASSERT_EQ(widths.size(), first.tiles().size());

  // Metrics: a fresh lookup of a warm shape is a hit.
  const auto hits_before = metrics::counter("kernel_cache.hits").value();
  cache.find_or_create(shape);
  EXPECT_GT(metrics::counter("kernel_cache.hits").value(), hits_before);
  EXPECT_GT(metrics::counter("kernel_cache.shapes").value(), 0u);
  EXPECT_GT(metrics::counter("kernel_cache.misses").value(), 0u);
}

TEST(KernelCacheTest, TileWidthDecomposition) {
  using W = std::vector<std::size_t>;
  EXPECT_EQ(sim::ec_tile_widths(8), (W{8}));
  EXPECT_EQ(sim::ec_tile_widths(16), (W{16}));
  EXPECT_EQ(sim::ec_tile_widths(32), (W{32}));
  EXPECT_EQ(sim::ec_tile_widths(64), (W{64}));
  EXPECT_EQ(sim::ec_tile_widths(3), (W{3}));
  // Off-menu ranks: greedy 64s + one widest multiple-of-4 tile + a <=3
  // remainder, so the pass count (each pass re-streams coordinates)
  // stays minimal.
  EXPECT_EQ(sim::ec_tile_widths(20), (W{20}));
  EXPECT_EQ(sim::ec_tile_widths(48), (W{48}));
  EXPECT_EQ(sim::ec_tile_widths(100), (W{64, 36}));
  EXPECT_EQ(sim::ec_tile_widths(103), (W{64, 36, 3}));
  EXPECT_EQ(sim::ec_tile_widths(200), (W{64, 64, 64, 8}));
  EXPECT_TRUE(sim::ec_tile_widths(0).empty());
}

// Hammer find-or-create from the pool across a band of shapes: every
// thread must observe exactly one program per shape (stable addresses),
// with no data race on the lock-free bucket walk. Runs under TSan in CI.
TEST(KernelCacheConcurrency, FindOrCreateFromManyThreads) {
  auto& cache = KernelCache::global();
  constexpr std::size_t kShapes = 24;
  constexpr std::size_t kProbes = 64;
  std::vector<std::atomic<const TileProgram*>> seen(kShapes);
  std::atomic<bool> mismatch{false};

  ThreadPool pool(8);
  pool.parallel_for(kShapes * kProbes, [&](std::size_t i) {
    const std::size_t s = i % kShapes;
    // Ranks 501.. keep this band disjoint from other tests' shapes.
    const auto shape = KernelShape::of(
        2 + s % 4, 501 + s,
        s % 2 ? BlockOrder::kOutputSorted : BlockOrder::kUnsorted);
    const TileProgram* program = &cache.find_or_create(shape);
    const TileProgram* expected = nullptr;
    if (!seen[s].compare_exchange_strong(expected, program) &&
        expected != program) {
      mismatch.store(true);
    }
  });
  pool.wait_idle();
  EXPECT_FALSE(mismatch.load());
  for (const auto& p : seen) EXPECT_NE(p.load(), nullptr);
}

// Concurrent dispatch through the cache while other threads are still
// inserting: lanes run disjoint output matrices, results must match the
// serial generic kernel bit for bit.
TEST(KernelCacheConcurrency, ConcurrentDispatchMatchesGeneric) {
  const auto t = random_tensor(3, 2000, 77, true);
  constexpr std::size_t kLanes = 8;
  const std::size_t base_rank = 90;  // 90..97: all off-menu, multi-tile
  std::vector<DenseMatrix> outs;
  std::vector<FactorSet> factor_sets;
  for (std::size_t l = 0; l < kLanes; ++l) {
    Rng rng(200 + l);
    factor_sets.emplace_back(t.dims(), base_rank + l, rng);
    outs.emplace_back(t.dim(0), base_rank + l);
  }

  ThreadPool pool(kLanes);
  pool.parallel_for(kLanes, [&](std::size_t l) {
    run_ec_block(t, 0, t.nnz(), 0, factor_sets[l], outs[l],
                 BlockOrder::kOutputSorted);
  });
  pool.wait_idle();

  for (std::size_t l = 0; l < kLanes; ++l) {
    DenseMatrix generic(t.dim(0), base_rank + l);
    run_ec_block_generic(t, 0, t.nnz(), 0, factor_sets[l], generic,
                         BlockOrder::kOutputSorted);
    expect_bit_identical(outs[l], generic, base_rank + l, 3, true);
  }
}

}  // namespace
}  // namespace amped
