#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "tensor/generator.hpp"
#include "tensor/tns_io.hpp"

namespace amped {
namespace {

TEST(TnsIoTest, ParsesFrosttText) {
  std::istringstream in(
      "# a comment\n"
      "1 1 1 2.5\n"
      "3 2 5 -1.0\n");
  auto t = read_tns(in);
  EXPECT_EQ(t.num_modes(), 3u);
  EXPECT_EQ(t.nnz(), 2u);
  // Dims inferred from the 1-based max per mode.
  EXPECT_EQ(t.dim(0), 3u);
  EXPECT_EQ(t.dim(1), 2u);
  EXPECT_EQ(t.dim(2), 5u);
  // 0-based after parsing.
  EXPECT_EQ(t.indices(0)[1], 2u);
  EXPECT_FLOAT_EQ(t.values()[0], 2.5f);
}

TEST(TnsIoTest, HonoursDimsHeader) {
  std::istringstream in(
      "# dims: 10 10 10\n"
      "1 1 1 1.0\n");
  auto t = read_tns(in);
  EXPECT_EQ(t.dim(0), 10u);
}

TEST(TnsIoTest, RejectsDimsHeaderSmallerThanData) {
  std::istringstream in(
      "# dims: 2 2 2\n"
      "5 1 1 1.0\n");
  EXPECT_THROW(read_tns(in), std::runtime_error);
}

TEST(TnsIoTest, RejectsZeroBasedIndices) {
  std::istringstream in("0 1 1 1.0\n");
  EXPECT_THROW(read_tns(in), std::runtime_error);
}

TEST(TnsIoTest, RejectsInconsistentModeCount) {
  std::istringstream in(
      "1 1 1 1.0\n"
      "1 1 1.0\n");
  EXPECT_THROW(read_tns(in), std::runtime_error);
}

TEST(TnsIoTest, RejectsEmptyStream) {
  std::istringstream in("# only comments\n");
  EXPECT_THROW(read_tns(in), std::runtime_error);
}

TEST(TnsIoTest, TextRoundTrip) {
  GeneratorOptions opt;
  opt.dims = {20, 30, 10};
  opt.nnz = 200;
  opt.seed = 99;
  auto t = generate_random(opt);

  std::ostringstream out;
  write_tns(t, out);
  std::istringstream in(out.str());
  auto back = read_tns(in);

  ASSERT_EQ(back.nnz(), t.nnz());
  ASSERT_EQ(back.dims(), t.dims());
  for (nnz_t n = 0; n < t.nnz(); ++n) {
    for (std::size_t m = 0; m < 3; ++m) {
      EXPECT_EQ(back.indices(m)[n], t.indices(m)[n]);
    }
    EXPECT_NEAR(back.values()[n], t.values()[n], 1e-5f);
  }
}

TEST(TnsIoTest, BinaryRoundTrip) {
  GeneratorOptions opt;
  opt.dims = {50, 40};
  opt.nnz = 500;
  opt.seed = 3;
  auto t = generate_random(opt);

  const auto path =
      (std::filesystem::temp_directory_path() / "amped_io_test.amptns")
          .string();
  write_binary_file(t, path);
  auto back = read_binary_file(path);
  std::remove(path.c_str());

  ASSERT_EQ(back.nnz(), t.nnz());
  ASSERT_EQ(back.dims(), t.dims());
  for (nnz_t n = 0; n < t.nnz(); ++n) {
    EXPECT_EQ(back.indices(0)[n], t.indices(0)[n]);
    EXPECT_EQ(back.indices(1)[n], t.indices(1)[n]);
    EXPECT_FLOAT_EQ(back.values()[n], t.values()[n]);
  }
}

TEST(TnsIoTest, BinaryRejectsBadMagic) {
  const auto path =
      (std::filesystem::temp_directory_path() / "amped_io_bad.amptns")
          .string();
  {
    std::ofstream f(path, std::ios::binary);
    f << "NOTATENSORFILE----";
  }
  EXPECT_THROW(read_binary_file(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(TnsIoTest, MissingFileThrows) {
  EXPECT_THROW(read_tns_file("/nonexistent/path/x.tns"), std::runtime_error);
  EXPECT_THROW(read_binary_file("/nonexistent/path/x.bin"),
               std::runtime_error);
}

}  // namespace
}  // namespace amped
