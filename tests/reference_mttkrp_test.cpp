#include <gtest/gtest.h>

#include <array>

#include "tensor/generator.hpp"
#include "tensor/reference_mttkrp.hpp"

namespace amped {
namespace {

// Hand-checkable 2x2x2 tensor with two nonzeros.
TEST(ReferenceMttkrpTest, MatchesHandComputation) {
  CooTensor t({2, 2, 2});
  const std::array<index_t, 3> e0{0, 1, 1};
  const std::array<index_t, 3> e1{1, 0, 1};
  t.push_back(std::span<const index_t>(e0.data(), 3), 2.0f);
  t.push_back(std::span<const index_t>(e1.data(), 3), 3.0f);

  Rng rng(1);
  FactorSet f(t.dims(), 2, rng);
  // Overwrite with known values.
  for (std::size_t m = 0; m < 3; ++m) {
    for (std::size_t i = 0; i < 2; ++i) {
      for (std::size_t r = 0; r < 2; ++r) {
        f.factor(m)(i, r) =
            static_cast<value_t>(1 + m + 2 * i + 3 * r);  // arbitrary
      }
    }
  }

  const auto out = reference_mttkrp(t, f, 0);
  // Row 0: element (0,1,1) contributes 2 * B(1,r) * C(1,r).
  for (std::size_t r = 0; r < 2; ++r) {
    const double expect = 2.0 * f.factor(1)(1, r) * f.factor(2)(1, r);
    EXPECT_NEAR(out(0, r), expect, 1e-4);
  }
  // Row 1: element (1,0,1) contributes 3 * B(0,r) * C(1,r).
  for (std::size_t r = 0; r < 2; ++r) {
    const double expect = 3.0 * f.factor(1)(0, r) * f.factor(2)(1, r);
    EXPECT_NEAR(out(1, r), expect, 1e-4);
  }
}

TEST(ReferenceMttkrpTest, ZeroTensorGivesZeroOutput) {
  CooTensor t({3, 3, 3});
  Rng rng(2);
  FactorSet f(t.dims(), 4, rng);
  const auto out = reference_mttkrp(t, f, 1);
  EXPECT_DOUBLE_EQ(out.frob_sq(), 0.0);
}

// Linearity in the tensor values: scaling every value scales the output.
TEST(ReferenceMttkrpTest, LinearInValues) {
  GeneratorOptions opt;
  opt.dims = {10, 12, 8};
  opt.nnz = 150;
  opt.seed = 5;
  auto t = generate_random(opt);
  Rng rng(6);
  FactorSet f(t.dims(), 4, rng);

  const auto base = reference_mttkrp(t, f, 2);
  for (auto& v : t.mutable_values()) v *= 2.0f;
  const auto doubled = reference_mttkrp(t, f, 2);
  EXPECT_LT(relative_max_diff(doubled, [&] {
              DenseMatrix scaled = base;
              for (auto& v : scaled.data()) v *= 2.0f;
              return scaled;
            }()),
            1e-5);
}

TEST(ReferenceMttkrpTest, AllModesShapes) {
  GeneratorOptions opt;
  opt.dims = {7, 9, 11, 5};
  opt.nnz = 100;
  opt.seed = 8;
  auto t = generate_random(opt);
  Rng rng(9);
  FactorSet f(t.dims(), 3, rng);
  auto outs = reference_mttkrp_all_modes(t, f);
  ASSERT_EQ(outs.size(), 4u);
  for (std::size_t d = 0; d < 4; ++d) {
    EXPECT_EQ(outs[d].rows(), t.dim(d));
    EXPECT_EQ(outs[d].cols(), 3u);
  }
}

// Permutation invariance: element order must not change the result
// (beyond floating-point noise, which the double accumulator removes).
TEST(ReferenceMttkrpTest, OrderInvariant) {
  GeneratorOptions opt;
  opt.dims = {16, 16, 16};
  opt.nnz = 400;
  opt.seed = 12;
  auto t = generate_random(opt);
  Rng rng(13);
  FactorSet f(t.dims(), 8, rng);

  const auto before = reference_mttkrp(t, f, 0);
  t.sort_by_mode(2);
  const auto after = reference_mttkrp(t, f, 0);
  EXPECT_LT(relative_max_diff(before, after), 1e-6);
}

TEST(ReferenceMttkrpTest, RelativeMaxDiffScales) {
  DenseMatrix a(2, 2, 10.0f), b(2, 2, 10.0f);
  b(0, 0) = 11.0f;
  EXPECT_NEAR(relative_max_diff(a, b), 0.1, 1e-12);
}

}  // namespace
}  // namespace amped
