// Heterogeneous-node extension (paper §6 future work): mixed GPU models in
// one box, weighted static scheduling, and dynamic dispatch adapting to
// device speed.
#include <gtest/gtest.h>

#include "baselines/runner.hpp"
#include "core/amped_tensor.hpp"
#include "core/mttkrp.hpp"
#include "tensor/generator.hpp"
#include "tensor/reference_mttkrp.hpp"

namespace amped {
namespace {

sim::Platform hetero_platform(double scale = 1.0) {
  sim::PlatformConfig cfg;
  cfg.num_gpus = 4;
  cfg.workload_scale = scale;
  // Two Ada workstation cards + two much smaller A4000-class cards.
  cfg.gpu_overrides = {sim::rtx6000_ada_spec(), sim::rtx6000_ada_spec(),
                       sim::rtx_a4000_spec(), sim::rtx_a4000_spec()};
  return sim::Platform(cfg);
}

CooTensor make_tensor(std::uint64_t seed, nnz_t nnz = 40000) {
  GeneratorOptions opt;
  opt.dims = {512, 256, 256};
  opt.nnz = nnz;
  opt.zipf_exponents = {0.6, 0.5, 0.5};
  opt.seed = seed;
  return generate_random(opt);
}

TEST(HeteroTest, PlatformReportsHeterogeneity) {
  auto platform = hetero_platform();
  EXPECT_TRUE(platform.heterogeneous());
  EXPECT_FALSE(sim::make_default_platform(4).heterogeneous());
  EXPECT_EQ(platform.gpu(0).spec().name, "RTX6000Ada");
  EXPECT_EQ(platform.gpu(3).spec().name, "RTXA4000");
  EXPECT_GT(platform.cost_model(0).spec().mem_bandwidth,
            platform.cost_model(3).spec().mem_bandwidth);
}

TEST(HeteroTest, WeightedAssignmentFollowsWeights) {
  auto t = make_tensor(71, 80000);
  t.sort_by_mode(0);
  auto part = build_mode_partition(t, 0, 128);
  const std::vector<double> weights{3.0, 1.0};
  auto a = assign_shards_weighted(part, weights);
  auto loads = a.nnz_per_gpu(part);
  // The weight-3 device should carry ~3x the nonzeros.
  const double ratio =
      static_cast<double>(loads[0]) / static_cast<double>(loads[1]);
  EXPECT_NEAR(ratio, 3.0, 0.4);
}

TEST(HeteroTest, EqualWeightsReduceToGreedy) {
  auto t = make_tensor(72);
  t.sort_by_mode(0);
  auto part = build_mode_partition(t, 0, 64);
  const std::vector<double> weights{1.0, 1.0, 1.0};
  auto weighted = assign_shards_weighted(part, weights);
  auto greedy = assign_shards(part, 3, SchedulingPolicy::kStaticGreedy);
  EXPECT_EQ(weighted.nnz_per_gpu(part), greedy.nnz_per_gpu(part));
}

TEST(HeteroTest, CorrectnessOnMixedDevices) {
  auto input = make_tensor(73);
  Rng rng(74);
  FactorSet factors(input.dims(), 8, rng);
  AmpedBuildOptions build;
  build.num_gpus = 4;
  auto tensor = AmpedTensor::build(input, build);
  const auto refs = reference_mttkrp_all_modes(input, factors);

  for (auto policy :
       {SchedulingPolicy::kWeightedStatic, SchedulingPolicy::kDynamicQueue,
        SchedulingPolicy::kStaticGreedy, SchedulingPolicy::kCostModel}) {
    auto platform = hetero_platform();
    MttkrpOptions opt;
    opt.policy = policy;
    std::vector<DenseMatrix> outputs;
    mttkrp_all_modes(platform, tensor, factors, outputs, opt);
    for (std::size_t d = 0; d < refs.size(); ++d) {
      EXPECT_LT(relative_max_diff(refs[d], outputs[d]), 5e-4)
          << to_string(policy) << " mode " << d;
    }
  }
}

TEST(HeteroTest, WeightedBeatsUnweightedOnMixedNode) {
  // Unweighted greedy gives the slow cards as much work as the fast ones;
  // weighting by bandwidth (or dispatching dynamically) must finish the
  // mode sooner. Shards must be large enough that each grid saturates the
  // SMs of both device types (more threadblocks than SMs), otherwise the
  // devices' aggregate-bandwidth difference never materialises.
  GeneratorOptions gopt;
  gopt.dims = {2048, 1024, 1024};
  gopt.nnz = 600000;
  gopt.zipf_exponents = {0.5, 0.5, 0.5};
  gopt.seed = 75;
  auto input = generate_random(gopt);
  Rng rng(76);
  FactorSet factors(input.dims(), 16, rng);
  AmpedBuildOptions build;
  build.num_gpus = 4;
  build.shards_per_gpu = 8;
  auto tensor = AmpedTensor::build(input, build);

  auto run_policy = [&](SchedulingPolicy policy) {
    auto platform = hetero_platform(1000.0);
    MttkrpOptions opt;
    opt.policy = policy;
    std::vector<DenseMatrix> outputs;
    auto report = mttkrp_all_modes(platform, tensor, factors, outputs, opt);
    return std::pair{report.total_seconds,
                     report.compute_overhead_fraction()};
  };
  const auto [unweighted_s, unweighted_imb] =
      run_policy(SchedulingPolicy::kStaticGreedy);
  const auto [weighted_s, weighted_imb] =
      run_policy(SchedulingPolicy::kWeightedStatic);
  const auto [dynamic_s, dynamic_imb] =
      run_policy(SchedulingPolicy::kDynamicQueue);
  // Dynamic dispatch adapts to actual device speed and wins outright.
  EXPECT_LT(dynamic_s, unweighted_s);
  // Static weighting narrows the EC spread substantially versus treating
  // all devices as equal, and must not cost meaningful total time. (It
  // cannot reliably beat dynamic dispatch: its weights are an a-priori
  // cost estimate, not a measurement.)
  EXPECT_LT(weighted_imb, unweighted_imb * 0.6);
  EXPECT_LT(weighted_s, unweighted_s * 1.05);
  (void)dynamic_imb;
}

TEST(HeteroTest, HomogeneousPathUnchangedByWeightedPolicy) {
  auto input = make_tensor(77);
  Rng rng(78);
  FactorSet factors(input.dims(), 8, rng);
  AmpedBuildOptions build;
  build.num_gpus = 2;
  auto tensor = AmpedTensor::build(input, build);

  auto run_policy = [&](SchedulingPolicy policy) {
    auto platform = sim::make_default_platform(2);
    MttkrpOptions opt;
    opt.policy = policy;
    std::vector<DenseMatrix> outputs;
    return mttkrp_all_modes(platform, tensor, factors, outputs, opt)
        .total_seconds;
  };
  EXPECT_NEAR(run_policy(SchedulingPolicy::kWeightedStatic),
              run_policy(SchedulingPolicy::kStaticGreedy), 1e-12);
}

}  // namespace
}  // namespace amped
