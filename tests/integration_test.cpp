// End-to-end integration: miniature Table 3 datasets through the full
// pipeline (generate -> preprocess -> AMPED + baselines -> verify), with
// the qualitative relationships the paper's evaluation rests on.
#include <gtest/gtest.h>

#include "baselines/runner.hpp"
#include "core/cpd.hpp"
#include "tensor/generator.hpp"
#include "tensor/reference_mttkrp.hpp"

namespace amped {
namespace {

// Scale-down keeps the suite fast while staying above the mode-size floor
// for the dimensions that drive communication volume (Twitch's 15.5M-row
// mode scales to ~3.9K rows), so the tested relationships match the
// benchmark configuration.
constexpr double kScale = 4000.0;

const ScaledDataset& dataset(const std::string& name) {
  static std::map<std::string, ScaledDataset> cache;
  auto it = cache.find(name);
  if (it == cache.end()) {
    it = cache.emplace(name, generate_scaled(profile_by_name(name), kScale))
             .first;
  }
  return it->second;
}

sim::Platform platform_for(int gpus) {
  return sim::make_default_platform(gpus, kScale);
}

baselines::BaselineOptions options_for(const ScaledDataset& ds) {
  baselines::BaselineOptions opt;
  opt.workload = baselines::WorkloadInfo::from_dataset(ds);
  return opt;
}

TEST(IntegrationTest, AmpedCorrectOnAllProfiles) {
  for (const auto& name : {"amazon", "patents", "reddit", "twitch"}) {
    const auto& ds = dataset(name);
    Rng rng(61);
    FactorSet factors(ds.tensor.dims(), 16, rng);
    auto platform = platform_for(4);
    auto result = baselines::run_amped(platform, ds.tensor, factors,
                                       options_for(ds));
    ASSERT_TRUE(result.supported) << name;
    const auto refs = reference_mttkrp_all_modes(ds.tensor, factors);
    for (std::size_t d = 0; d < refs.size(); ++d) {
      EXPECT_LT(relative_max_diff(refs[d], result.outputs[d]), 1e-3)
          << name << " mode " << d;
    }
  }
}

// The paper's Fig. 5 support matrix, end to end through the runners.
TEST(IntegrationTest, SupportMatrixMatchesPaper) {
  struct Expectation {
    std::string baseline;
    std::string dataset;
    bool supported;
  };
  const std::vector<Expectation> expectations{
      {"blco", "amazon", true},      {"blco", "patents", true},
      {"blco", "reddit", true},      {"blco", "twitch", true},
      {"mm-csf", "amazon", true},    {"mm-csf", "patents", false},
      {"mm-csf", "reddit", false},   {"mm-csf", "twitch", false},
      {"parti-gpu", "amazon", true}, {"parti-gpu", "patents", true},
      {"parti-gpu", "reddit", false}, {"parti-gpu", "twitch", false},
      {"hicoo-gpu", "amazon", true}, {"hicoo-gpu", "patents", true},
      {"hicoo-gpu", "reddit", false}, {"hicoo-gpu", "twitch", false},
      {"flycoo-gpu", "amazon", false}, {"flycoo-gpu", "patents", false},
      {"flycoo-gpu", "reddit", false}, {"flycoo-gpu", "twitch", true},
  };
  for (const auto& e : expectations) {
    const auto& ds = dataset(e.dataset);
    Rng rng(62);
    FactorSet factors(ds.tensor.dims(), 16, rng);
    auto platform = platform_for(1);
    auto opt = options_for(ds);
    opt.collect_outputs = false;
    auto result = baselines::run_baseline(e.baseline, platform, ds.tensor,
                                          factors, opt);
    EXPECT_EQ(result.supported, e.supported)
        << e.baseline << " on " << e.dataset << ": "
        << result.failure_reason;
  }
}

TEST(IntegrationTest, AmpedBeatsBlcoOnBillionScaleTensors) {
  // Fig. 5 headline direction on the three big tensors.
  for (const auto& name : {"amazon", "patents", "reddit"}) {
    const auto& ds = dataset(name);
    Rng rng(63);
    FactorSet factors(ds.tensor.dims(), 32, rng);
    auto opt = options_for(ds);
    opt.collect_outputs = false;

    auto p_amped = platform_for(4);
    auto amped =
        baselines::run_amped(p_amped, ds.tensor, factors, opt);
    auto p_blco = platform_for(1);
    auto blco =
        baselines::run_blco_gpu(p_blco, ds.tensor, factors, opt);
    EXPECT_LT(amped.total_seconds, blco.total_seconds) << name;
  }
}

TEST(IntegrationTest, FlycooWinsOnTwitch) {
  // §5.2: "On Twitch, FLYCOO-GPU outperforms our work ... due to the
  // communication overhead of our work."
  const auto& ds = dataset("twitch");
  Rng rng(64);
  FactorSet factors(ds.tensor.dims(), 32, rng);
  auto opt = options_for(ds);
  opt.collect_outputs = false;

  auto p_amped = platform_for(4);
  auto amped = baselines::run_amped(p_amped, ds.tensor, factors, opt);
  auto p_fly = platform_for(1);
  auto fly = baselines::run_flycoo_gpu(p_fly, ds.tensor, factors, opt);
  ASSERT_TRUE(fly.supported);
  EXPECT_LT(fly.total_seconds, amped.total_seconds);
  // And the reason must be communication: AMPED's comm share on Twitch is
  // far above its share on the compute-heavy tensors.
  const double comm_share =
      amped.timeline.communication() /
      (amped.timeline.communication() +
       amped.timeline.total(sim::Phase::kCompute));
  EXPECT_GT(comm_share, 0.35);
  // FLYCOO itself has zero communication (resident + remapping).
  EXPECT_DOUBLE_EQ(fly.timeline.communication(), 0.0);
}

TEST(IntegrationTest, ScalabilityImprovesWithGpus) {
  // Fig. 9 direction: 1 -> 2 -> 4 GPUs monotonically faster on every
  // profile, with meaningful (>1.4x) gains at 4 GPUs.
  for (const auto& name : {"amazon", "patents", "reddit", "twitch"}) {
    const auto& ds = dataset(name);
    Rng rng(65);
    FactorSet factors(ds.tensor.dims(), 32, rng);
    auto opt = options_for(ds);
    opt.collect_outputs = false;

    std::vector<double> seconds;
    for (int gpus : {1, 2, 4}) {
      auto platform = platform_for(gpus);
      seconds.push_back(
          baselines::run_amped(platform, ds.tensor, factors, opt)
              .total_seconds);
    }
    EXPECT_LT(seconds[1], seconds[0]) << name;
    EXPECT_LT(seconds[2], seconds[1]) << name;
    // Twitch is the smallest tensor and the most communication-bound, so
    // its 4-GPU gain is the weakest (it is also the paper's weakest bar
    // in Fig. 9); the billion-scale tensors must gain substantially.
    const double floor = (std::string(name) == "twitch") ? 1.1 : 1.4;
    EXPECT_GT(seconds[0] / seconds[2], floor) << name;
  }
}

TEST(IntegrationTest, CpdConvergesOnScaledProfile) {
  const auto& ds = dataset("patents");
  auto tensor = AmpedTensor::build(ds.tensor, AmpedBuildOptions{});
  auto platform = platform_for(4);
  CpdOptions opt;
  opt.rank = 8;
  opt.max_iterations = 5;
  opt.tolerance = 0.0;
  auto result = cp_als(platform, tensor, opt);
  EXPECT_EQ(result.iterations, 5u);
  EXPECT_GT(result.fit, 0.0);
  EXPECT_GT(result.mttkrp_sim_seconds, 0.0);
}

}  // namespace
}  // namespace amped
