#include <gtest/gtest.h>

#include <array>
#include <numeric>

#include "formats/blco.hpp"
#include "formats/csf.hpp"
#include "formats/hicoo.hpp"
#include "formats/sorting.hpp"
#include "tensor/generator.hpp"
#include "tensor/reference_mttkrp.hpp"

namespace amped::formats {
namespace {

CooTensor make_tensor(std::vector<index_t> dims, nnz_t nnz,
                      std::uint64_t seed, double skew = 0.4) {
  GeneratorOptions opt;
  opt.dims = std::move(dims);
  opt.zipf_exponents.assign(opt.dims.size(), skew);
  opt.nnz = nnz;
  opt.seed = seed;
  return generate_random(opt);
}

TEST(SortingTest, LexicographicPermutationSorts) {
  auto t = make_tensor({32, 32, 32}, 500, 1);
  std::vector<std::size_t> order{1, 2, 0};
  sort_lexicographic(t, order);
  for (nnz_t n = 1; n < t.nnz(); ++n) {
    bool ok = false;
    for (std::size_t m : order) {
      if (t.indices(m)[n] != t.indices(m)[n - 1]) {
        ok = t.indices(m)[n] > t.indices(m)[n - 1];
        break;
      }
      ok = true;  // equal prefix so far
    }
    EXPECT_TRUE(ok) << "element " << n << " out of order";
  }
}

TEST(SortingTest, ModeBitsCoverDims) {
  std::vector<index_t> dims{1, 2, 3, 1000, 1u << 20};
  auto bits = mode_bits(dims);
  for (std::size_t m = 0; m < dims.size(); ++m) {
    EXPECT_GE(1ull << bits[m], dims[m]);
    if (bits[m] > 1) {
      EXPECT_LT(1ull << (bits[m] - 1), dims[m]);
    }
  }
}

TEST(SortingTest, PackUnpackRoundTrip) {
  std::vector<index_t> dims{100, 50, 200};
  auto bits = mode_bits(dims);
  std::vector<std::size_t> order{2, 0, 1};
  std::array<index_t, 3> coords{42, 17, 199};
  const auto key = pack_coords(coords, bits, order);
  std::array<index_t, 3> back{};
  unpack_coords(key, bits, order, back);
  EXPECT_EQ(back, coords);
}

TEST(CsfTest, LevelSizesAndStorage) {
  auto t = make_tensor({16, 16, 16}, 300, 2);
  auto csf = CsfTensor::build(t, {0, 1, 2});
  auto sizes = csf.level_sizes();
  ASSERT_EQ(sizes.size(), 3u);
  EXPECT_LE(sizes[0], 16u);                 // distinct roots
  EXPECT_LE(sizes[1], t.nnz());             // distinct (i,j) prefixes
  EXPECT_EQ(sizes[2], t.nnz());             // leaves
  EXPECT_GE(sizes[1], sizes[0]);
  EXPECT_GT(csf.storage_bytes(), 0u);
  EXPECT_LT(csf.storage_bytes(), 2 * t.storage_bytes() + 1000);
}

TEST(CsfTest, MttkrpRootMatchesReference) {
  for (std::size_t root = 0; root < 3; ++root) {
    auto t = make_tensor({20, 24, 28}, 800, 3 + root);
    std::vector<std::size_t> order{root};
    for (std::size_t m = 0; m < 3; ++m) {
      if (m != root) order.push_back(m);
    }
    auto csf = CsfTensor::build(t, order);
    Rng rng(9);
    FactorSet f(t.dims(), 8, rng);
    DenseMatrix out(t.dim(root), 8);
    csf.mttkrp_root(f, out);
    const auto ref = reference_mttkrp(t, f, root);
    EXPECT_LT(relative_max_diff(ref, out), 5e-4) << "root " << root;
  }
}

TEST(CsfTest, FourModeMttkrp) {
  auto t = make_tensor({10, 12, 14, 9}, 600, 7);
  auto csf = CsfTensor::build(t, {2, 0, 1, 3});
  Rng rng(11);
  FactorSet f(t.dims(), 4, rng);
  DenseMatrix out(t.dim(2), 4);
  std::vector<CsfTensor::SliceStats> stats;
  csf.mttkrp_root(f, out, &stats);
  const auto ref = reference_mttkrp(t, f, 2);
  EXPECT_LT(relative_max_diff(ref, out), 5e-4);

  // Stats: one entry per root slice; leaves sum to nnz.
  EXPECT_EQ(stats.size(), csf.level_sizes()[0]);
  nnz_t leaves = 0;
  for (const auto& s : stats) leaves += s.leaves;
  EXPECT_EQ(leaves, t.nnz());
}

TEST(CsfTest, TwoModeTensor) {
  auto t = make_tensor({30, 40}, 200, 13);
  auto csf = CsfTensor::build(t, {0, 1});
  Rng rng(14);
  FactorSet f(t.dims(), 6, rng);
  DenseMatrix out(t.dim(0), 6);
  csf.mttkrp_root(f, out);
  const auto ref = reference_mttkrp(t, f, 0);
  EXPECT_LT(relative_max_diff(ref, out), 5e-4);
}

TEST(HicooTest, CoordsRoundTrip) {
  auto t = make_tensor({300, 200, 100}, 2000, 15);
  auto h = HicooTensor::build(t, 5);  // 32-wide blocks
  EXPECT_EQ(h.nnz(), t.nnz());
  // Every original coordinate must appear exactly once (sum check).
  std::array<index_t, 3> c{};
  std::uint64_t sum_before = 0, sum_after = 0;
  for (nnz_t n = 0; n < t.nnz(); ++n) {
    sum_before += t.indices(0)[n] + 7ull * t.indices(1)[n] +
                  13ull * t.indices(2)[n];
  }
  for (nnz_t n = 0; n < h.nnz(); ++n) {
    h.coords_of(n, c);
    sum_after += c[0] + 7ull * c[1] + 13ull * c[2];
  }
  EXPECT_EQ(sum_before, sum_after);
}

TEST(HicooTest, BlocksAreCoherent) {
  auto t = make_tensor({256, 256}, 3000, 16);
  auto h = HicooTensor::build(t, 6);
  nnz_t covered = 0;
  std::array<index_t, 2> c{};
  for (const auto& b : h.blocks()) {
    EXPECT_LT(b.begin, b.end);
    covered += b.nnz();
    for (nnz_t e = b.begin; e < b.end; ++e) {
      h.coords_of(e, c);
      EXPECT_EQ(c[0] >> 6, b.block_coords[0]);
      EXPECT_EQ(c[1] >> 6, b.block_coords[1]);
    }
  }
  EXPECT_EQ(covered, h.nnz());
}

TEST(HicooTest, CompressesDenseBlocks) {
  // Small index space -> dense blocks -> fewer bytes than COO.
  auto t = make_tensor({64, 64, 64}, 20000, 17);
  auto h = HicooTensor::build(t);
  EXPECT_LT(h.storage_bytes(), t.storage_bytes());
}

TEST(HicooTest, MttkrpMatchesReference) {
  auto t = make_tensor({100, 80, 60}, 3000, 18);
  auto h = HicooTensor::build(t);
  Rng rng(19);
  FactorSet f(t.dims(), 8, rng);
  for (std::size_t d = 0; d < 3; ++d) {
    DenseMatrix out(t.dim(d), 8);
    std::vector<HicooTensor::BlockExecStats> stats;
    h.mttkrp(f, d, out, &stats);
    const auto ref = reference_mttkrp(t, f, d);
    EXPECT_LT(relative_max_diff(ref, out), 5e-4) << "mode " << d;
    nnz_t total = 0;
    for (const auto& s : stats) {
      total += s.nnz;
      EXPECT_GE(s.output_runs, 1u);
      EXPECT_GE(s.max_multiplicity, s.max_run);
    }
    EXPECT_EQ(total, t.nnz());
  }
}

TEST(BlcoTest, CoordsRoundTrip64Bit) {
  auto t = make_tensor({1000, 500, 2000}, 1500, 20);
  auto b = BlcoTensor::build(t);
  EXPECT_EQ(b.nnz(), t.nnz());
  std::array<index_t, 3> c{};
  std::uint64_t sum_before = 0, sum_after = 0;
  for (nnz_t n = 0; n < t.nnz(); ++n) {
    sum_before += t.indices(0)[n] + 3ull * t.indices(1)[n] +
                  11ull * t.indices(2)[n];
  }
  for (nnz_t n = 0; n < b.nnz(); ++n) {
    b.coords_of(n, c);
    sum_after += c[0] + 3ull * c[1] + 11ull * c[2];
  }
  EXPECT_EQ(sum_before, sum_after);
}

TEST(BlcoTest, WideTensorSplitsIntoHighBitBlocks) {
  // 5 modes x ~20 bits each = ~100 bits > 64: must use blocked keys.
  auto t = make_tensor({1u << 20, 1u << 20, 1u << 20, 1u << 12, 1u << 12},
                       4000, 21, 0.0);
  auto b = BlcoTensor::build(t);
  EXPECT_GT(b.blocks().size(), 1u);
  std::array<index_t, 5> c{};
  for (nnz_t n = 0; n < b.nnz(); n += 97) {
    b.coords_of(n, c);
    for (std::size_t m = 0; m < 5; ++m) EXPECT_LT(c[m], t.dim(m));
  }
}

TEST(BlcoTest, MaxBlockElemsRespected) {
  auto t = make_tensor({64, 64}, 5000, 22);
  auto b = BlcoTensor::build(t, 512);
  EXPECT_GE(b.blocks().size(), 5000u / 512);
  for (const auto& blk : b.blocks()) EXPECT_LE(blk.nnz(), 512u);
}

TEST(BlcoTest, VisitBlockMatchesCoordsOf) {
  auto t = make_tensor({128, 64, 32}, 800, 23);
  auto b = BlcoTensor::build(t, 256);
  std::array<index_t, 3> c{};
  for (const auto& blk : b.blocks()) {
    nnz_t e = blk.begin;
    b.visit_block(blk, [&](std::span<const index_t> coords, value_t v) {
      b.coords_of(e, c);
      for (std::size_t m = 0; m < 3; ++m) EXPECT_EQ(coords[m], c[m]);
      EXPECT_FLOAT_EQ(v, b.values()[e]);
      ++e;
    });
    EXPECT_EQ(e, blk.end);
  }
}

TEST(BlcoTest, StorageIs12BytesPerElementPlusHeaders) {
  auto t = make_tensor({256, 256, 256}, 1000, 24);
  auto b = BlcoTensor::build(t);
  EXPECT_GE(b.storage_bytes(), 12000u);
  EXPECT_LT(b.storage_bytes(), 12000u + 64 * b.blocks().size());
}

}  // namespace
}  // namespace amped::formats
