#include <gtest/gtest.h>

#include <vector>

#include "tensor/generator.hpp"
#include "tensor/profiles.hpp"
#include "util/stats.hpp"

namespace amped {
namespace {

TEST(GeneratorTest, ProducesRequestedShape) {
  GeneratorOptions opt;
  opt.dims = {100, 50, 25};
  opt.nnz = 1000;
  auto t = generate_random(opt);
  EXPECT_EQ(t.nnz(), 1000u);
  EXPECT_EQ(t.dims(), opt.dims);
  EXPECT_TRUE(t.indices_in_bounds());
}

TEST(GeneratorTest, DeterministicInSeed) {
  GeneratorOptions opt;
  opt.dims = {64, 64, 64};
  opt.nnz = 500;
  opt.seed = 77;
  auto a = generate_random(opt);
  auto b = generate_random(opt);
  ASSERT_EQ(a.nnz(), b.nnz());
  for (nnz_t n = 0; n < a.nnz(); ++n) {
    EXPECT_EQ(a.indices(0)[n], b.indices(0)[n]);
    EXPECT_FLOAT_EQ(a.values()[n], b.values()[n]);
  }
}

TEST(GeneratorTest, DifferentSeedsDiffer) {
  GeneratorOptions opt;
  opt.dims = {64, 64};
  opt.nnz = 200;
  opt.seed = 1;
  auto a = generate_random(opt);
  opt.seed = 2;
  auto b = generate_random(opt);
  bool any_diff = false;
  for (nnz_t n = 0; n < a.nnz() && !any_diff; ++n) {
    any_diff = a.indices(0)[n] != b.indices(0)[n];
  }
  EXPECT_TRUE(any_diff);
}

TEST(GeneratorTest, ValuesInConfiguredRange) {
  GeneratorOptions opt;
  opt.dims = {16, 16};
  opt.nnz = 300;
  opt.value_lo = 2.0f;
  opt.value_hi = 3.0f;
  auto t = generate_random(opt);
  for (value_t v : t.values()) {
    EXPECT_GE(v, 2.0f);
    EXPECT_LT(v, 3.0f);
  }
}

// Skew property: heavier Zipf exponents concentrate nonzeros on fewer
// indices (higher Gini over per-index counts).
TEST(GeneratorTest, ZipfExponentControlsSkew) {
  auto gini_of = [](double s) {
    GeneratorOptions opt;
    opt.dims = {512, 512};
    opt.nnz = 20000;
    opt.zipf_exponents = {s, 0.0};
    opt.seed = 10;
    auto t = generate_random(opt);
    std::vector<double> counts(512, 0.0);
    for (index_t i : t.indices(0)) counts[i] += 1.0;
    return gini(counts);
  };
  const double uniform = gini_of(0.0);
  const double mild = gini_of(0.7);
  const double heavy = gini_of(1.3);
  EXPECT_LT(uniform, mild);
  EXPECT_LT(mild, heavy);
}

TEST(GeneratorTest, HotIndicesAreScattered) {
  // The scatter permutation must not leave the hottest index at 0.
  GeneratorOptions opt;
  opt.dims = {1024, 8};
  opt.nnz = 50000;
  opt.zipf_exponents = {1.2, 0.0};
  opt.seed = 4;
  auto t = generate_random(opt);
  std::vector<nnz_t> counts(1024, 0);
  for (index_t i : t.indices(0)) ++counts[i];
  const auto hottest =
      std::max_element(counts.begin(), counts.end()) - counts.begin();
  EXPECT_NE(hottest, 0);
}

TEST(GeneratorTest, CoalesceOptionRemovesDuplicates) {
  GeneratorOptions opt;
  opt.dims = {4, 4};  // tiny space forces duplicates
  opt.nnz = 500;
  opt.coalesce_duplicates = true;
  auto t = generate_random(opt);
  EXPECT_LE(t.nnz(), 16u);
}

TEST(GeneratorTest, RejectsBadOptions) {
  GeneratorOptions opt;
  EXPECT_THROW(generate_random(opt), std::invalid_argument);  // no dims
  opt.dims = {4, 0};
  EXPECT_THROW(generate_random(opt), std::invalid_argument);  // zero dim
  opt.dims = {4, 4};
  opt.zipf_exponents = {1.0};
  EXPECT_THROW(generate_random(opt), std::invalid_argument);  // count
}

TEST(ProfilesTest, Table3Characteristics) {
  const auto profiles = table3_profiles();
  ASSERT_EQ(profiles.size(), 4u);
  EXPECT_EQ(profiles[0].name, "amazon");
  EXPECT_EQ(profiles[0].full_nnz, 1'700'000'000ull);
  EXPECT_EQ(profiles[1].full_dims[0], 46ull);        // Patents years
  EXPECT_EQ(profiles[2].full_nnz, 4'700'000'000ull);  // Reddit
  EXPECT_EQ(profiles[3].num_modes(), 5u);             // Twitch
}

TEST(ProfilesTest, LookupByNameCaseInsensitive) {
  EXPECT_EQ(profile_by_name("Amazon").name, "amazon");
  EXPECT_EQ(profile_by_name("TWITCH").name, "twitch");
  EXPECT_THROW(profile_by_name("nope"), std::invalid_argument);
}

TEST(ProfilesTest, FullCooBytesMatchesTable) {
  // Amazon: 1.7B x (3*4 + 4) bytes = 27.2 GB.
  EXPECT_EQ(amazon_profile().full_coo_bytes(), 1'700'000'000ull * 16);
  // Twitch: 5 modes -> 24 bytes per element.
  EXPECT_EQ(twitch_profile().full_coo_bytes(), 500'000'000ull * 24);
}

TEST(GeneratorTest, ScaledDatasetShrinksNnzAndLargeDims) {
  auto ds = generate_scaled(reddit_profile(), 100000.0);
  EXPECT_EQ(ds.tensor.nnz(), 47000u);
  // Large modes shrink proportionally (8.2M / 1e5 = 82, above the floor).
  EXPECT_EQ(ds.tensor.dim(0), 82u);
  // A mode that would shrink below the floor is clamped: 177K / 1e5 -> 64.
  EXPECT_EQ(ds.tensor.dim(1), 64u);
  EXPECT_EQ(ds.profile.full_nnz, 4'700'000'000ull);
  EXPECT_DOUBLE_EQ(ds.scale, 100000.0);
}

TEST(GeneratorTest, ScaledPatentsKeepsTinyMode) {
  auto ds = generate_scaled(patents_profile(), 10000.0);
  EXPECT_EQ(ds.tensor.dim(0), 46u);  // 46 years never shrink
  EXPECT_EQ(ds.tensor.nnz(), 360000u);
}

TEST(GeneratorTest, ScaleOneKeepsFullDims) {
  // Not materialising a billion nonzeros here: just check the dim logic
  // via a tiny synthetic profile.
  DatasetProfile p;
  p.name = "tiny";
  p.full_dims = {100, 5000};
  p.full_nnz = 2000;
  p.zipf_exponents = {0.0, 0.0};
  p.seed = 1;
  auto ds = generate_scaled(p, 1.0);
  EXPECT_EQ(ds.tensor.dim(0), 100u);
  EXPECT_EQ(ds.tensor.dim(1), 5000u);
  EXPECT_EQ(ds.tensor.nnz(), 2000u);
}

TEST(GeneratorTest, ScaleBelowOneRejected) {
  EXPECT_THROW(generate_scaled(amazon_profile(), 0.5),
               std::invalid_argument);
}

}  // namespace
}  // namespace amped
