// The robustness acceptance suite: deterministic fault injection
// (util/fault.hpp) drives every recovery path end to end.
//
// Three classes of property are asserted per site:
//   * fatal sites surface exactly one clean std::runtime_error naming the
//     site, with no leaked temp/spill files and no corrupted global state
//     (the same operation succeeds after disarming);
//   * recoverable sites (transient I/O, corrupt spill files, failed
//     spills with budget headroom) recover *bit-identically* — factors
//     and MTTKRP outputs memcmp-equal to a fault-free run;
//   * a CP-ALS run killed mid-iteration restarts from its checkpoint and
//     finishes byte-equal to one that was never interrupted.
// This suite runs in both sanitizer CI lanes: the host-backend fault
// tests exercise structured cancellation across real lane threads.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "core/amped_tensor.hpp"
#include "core/batch.hpp"
#include "core/checkpoint.hpp"
#include "core/cpd.hpp"
#include "core/mttkrp.hpp"
#include "exec/backend.hpp"
#include "io/mapped_tensor.hpp"
#include "io/memory_budget.hpp"
#include "io/snapshot.hpp"
#include "sim/platform.hpp"
#include "tensor/generator.hpp"
#include "tensor/tns_io.hpp"
#include "util/fault.hpp"
#include "util/thread_pool.hpp"

namespace amped {
namespace {

namespace fs = std::filesystem;

// Real concurrency for the host-backend cancellation tests and the
// streamer read-ahead, even on single-core CI runners.
class FaultParallelismEnv : public ::testing::Environment {
 public:
  void SetUp() override { set_host_parallelism(4); }
  void TearDown() override { set_host_parallelism(0); }
};
const auto* const kEnv =
    ::testing::AddGlobalTestEnvironment(new FaultParallelismEnv);

// Every test starts and ends with a clean registry: a leaked armed site
// would make later tests (in any suite of this binary) order-dependent.
class FaultInjectionTest : public ::testing::Test {
 protected:
  void SetUp() override { fault::disarm_all(); }
  void TearDown() override { fault::disarm_all(); }
};

class BudgetGuard {
 public:
  explicit BudgetGuard(std::uint64_t limit) {
    auto& b = io::HostMemoryBudget::global();
    b.set_limit(limit);
    b.reset_peak();
  }
  ~BudgetGuard() { io::HostMemoryBudget::global().set_limit(0); }
};

// A scratch directory that must be empty (no leaked temp / spill files)
// when the test ends.
class ScratchDir {
 public:
  explicit ScratchDir(const std::string& name)
      : path_(fs::temp_directory_path() / name) {
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~ScratchDir() { fs::remove_all(path_); }
  const fs::path& path() const { return path_; }
  std::string file(const std::string& name) const {
    return (path_ / name).string();
  }
  std::size_t entries() const {
    return static_cast<std::size_t>(std::distance(
        fs::directory_iterator(path_), fs::directory_iterator{}));
  }

 private:
  fs::path path_;
};

CooTensor make_tensor(std::uint64_t seed = 42, nnz_t nnz = 3000) {
  GeneratorOptions opt;
  opt.dims = {60, 50, 40};
  opt.nnz = nnz;
  opt.zipf_exponents = {0.6, 0.6, 0.6};
  opt.seed = seed;
  return generate_random(opt);
}

// AMPED_FAULT_POINT needs a literal-ish C string; this wraps it for the
// framework unit tests.
void poke(const char* site) { AMPED_FAULT_POINT(site); }

// Runs `fn`, requiring a std::runtime_error whose what() contains `site`
// (every failure in this codebase must be attributable from the message).
template <typename Fn>
void expect_fault_naming(const std::string& site, Fn&& fn) {
  try {
    fn();
    FAIL() << "expected a fault at " << site << ", but the call succeeded";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find(site), std::string::npos)
        << "error does not name the site: " << e.what();
  }
}

void expect_matrices_identical(const DenseMatrix& a, const DenseMatrix& b) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  ASSERT_EQ(0, std::memcmp(a.data().data(), b.data().data(), a.bytes()));
}

void expect_results_identical(const CpdResult& a, const CpdResult& b) {
  ASSERT_EQ(a.iterations, b.iterations);
  EXPECT_EQ(a.fit, b.fit);
  EXPECT_EQ(a.converged, b.converged);
  ASSERT_EQ(a.lambda.size(), b.lambda.size());
  for (std::size_t c = 0; c < a.lambda.size(); ++c) {
    EXPECT_EQ(a.lambda[c], b.lambda[c]) << "lambda[" << c << "]";
  }
  ASSERT_EQ(a.fit_history.size(), b.fit_history.size());
  for (std::size_t i = 0; i < a.fit_history.size(); ++i) {
    EXPECT_EQ(a.fit_history[i], b.fit_history[i]) << "fit_history[" << i
                                                  << "]";
  }
  for (std::size_t d = 0; d < 3; ++d) {
    expect_matrices_identical(a.factors.factor(d), b.factors.factor(d));
  }
}

// ---------------------------------------------------------------------------
// Framework semantics

TEST_F(FaultInjectionTest, DisabledFrameworkIsInert) {
  EXPECT_FALSE(fault::any_armed());
  poke("zz.unarmed");  // must not throw, must not count
  EXPECT_EQ(fault::call_count("zz.unarmed"), 0u);
}

TEST_F(FaultInjectionTest, NthAndTimesFireDeterministically) {
  fault::arm("zz.det", {.nth = 2, .times = 2});
  poke("zz.det");  // call 1: before the window
  EXPECT_THROW(poke("zz.det"), fault::FaultInjected);  // call 2
  EXPECT_THROW(poke("zz.det"), fault::FaultInjected);  // call 3
  poke("zz.det");  // call 4: window exhausted
  EXPECT_EQ(fault::call_count("zz.det"), 4u);
  EXPECT_EQ(fault::fire_count("zz.det"), 2u);
}

TEST_F(FaultInjectionTest, TransientSpecThrowsTransientError) {
  fault::arm("zz.trans", {.nth = 1, .times = 1, .transient = true});
  try {
    poke("zz.trans");
    FAIL() << "expected a transient fault";
  } catch (const fault::TransientError& e) {
    EXPECT_NE(std::string(e.what()).find("zz.trans"), std::string::npos);
  }
}

TEST_F(FaultInjectionTest, ProbabilityIsDeterministicPerSeed) {
  auto pattern = [&] {
    fault::arm("zz.prob", {.times = 0, .probability = 0.3, .seed = 99});
    std::vector<bool> fired;
    for (int i = 0; i < 64; ++i) {
      bool f = false;
      try {
        poke("zz.prob");
      } catch (const fault::FaultInjected&) {
        f = true;
      }
      fired.push_back(f);
    }
    fault::disarm("zz.prob");
    return fired;
  };
  const auto first = pattern();
  const auto second = pattern();
  EXPECT_EQ(first, second);
  EXPECT_NE(std::count(first.begin(), first.end(), true), 0);
  EXPECT_NE(std::count(first.begin(), first.end(), false), 0);
}

TEST_F(FaultInjectionTest, ConfigureParsesTheEnvGrammar) {
  fault::configure(
      "zz.a:nth=2:times=1:transient,zz.b:prob=0.5:seed=7,zz.c");
  poke("zz.a");                                          // call 1
  EXPECT_THROW(poke("zz.a"), fault::TransientError);     // call 2
  poke("zz.a");                                          // window over
  EXPECT_THROW(poke("zz.c"), fault::FaultInjected);      // defaults: nth=1
  // prob-only clause: must not fire deterministically on call 1.
  EXPECT_EQ(fault::call_count("zz.b"), 0u);

  EXPECT_THROW(fault::configure("zz.bad:frequency=2"), std::runtime_error);
  EXPECT_THROW(fault::configure("zz.bad:nth=abc"), std::runtime_error);
  EXPECT_THROW(fault::configure(":nth=1"), std::runtime_error);
  EXPECT_THROW(fault::configure("zz.bad:nth"), std::runtime_error);
}

TEST_F(FaultInjectionTest, FaultScopeDisarmsOnExit) {
  {
    fault::FaultScope scope("zz.scoped", {.nth = 1, .times = 100});
    EXPECT_THROW(poke("zz.scoped"), fault::FaultInjected);
  }
  poke("zz.scoped");  // disarmed: inert again
  EXPECT_FALSE(fault::any_armed());
}

TEST_F(FaultInjectionTest, RetryTransientAbsorbsBoundedFailures) {
  int calls = 0;
  std::size_t retries = 0;
  const int result = fault::retry_transient(
      "unit op",
      [&] {
        if (++calls < 3) throw fault::TransientError("flaky");
        return 7;
      },
      {}, &retries);
  EXPECT_EQ(result, 7);
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(retries, 2u);
}

TEST_F(FaultInjectionTest, RetryTransientGivesUpAndWrapsPermanently) {
  int calls = 0;
  try {
    fault::retry_transient("doomed op", [&]() -> int {
      ++calls;
      throw fault::TransientError("still down");
    });
    FAIL() << "expected exhaustion";
  } catch (const std::runtime_error& e) {
    EXPECT_EQ(calls, 4);  // RetryPolicy default max_attempts
    const std::string what = e.what();
    EXPECT_NE(what.find("doomed op"), std::string::npos);
    EXPECT_NE(what.find("persisted after 4 attempts"), std::string::npos);
    // The wrapper must be permanent, not retryable.
    EXPECT_EQ(dynamic_cast<const fault::TransientError*>(&e), nullptr);
  }
}

TEST_F(FaultInjectionTest, NonTransientErrorsPropagateOnFirstThrow) {
  int calls = 0;
  EXPECT_THROW(fault::retry_transient("once",
                                      [&]() -> int {
                                        ++calls;
                                        throw std::logic_error("permanent");
                                      }),
               std::logic_error);
  EXPECT_EQ(calls, 1);
}

// ---------------------------------------------------------------------------
// Fatal I/O sites: one clean error naming the site, no leaked files

TEST_F(FaultInjectionTest, MappedFileOpenFaultNamesTheSite) {
  ScratchDir dir("amped_fault_open");
  const auto path = dir.file("t.amptns");
  io::write_snapshot_file(make_tensor(), path);
  fault::FaultScope scope("mapped_file.open", {});
  expect_fault_naming("mapped_file.open",
                      [&] { io::MappedCooTensor map(path); });
}

TEST_F(FaultInjectionTest, SnapshotWriteFaultLeavesNoTempFile) {
  ScratchDir dir("amped_fault_write");
  fault::FaultScope scope("snapshot.write", {});
  expect_fault_naming("snapshot.write", [&] {
    io::write_snapshot_file(make_tensor(), dir.file("t.amptns"));
  });
  EXPECT_EQ(dir.entries(), 0u) << "temp file leaked on the failure path";
}

TEST_F(FaultInjectionTest, SnapshotFsyncFaultLeavesNoTempFile) {
  ScratchDir dir("amped_fault_fsync");
  fault::FaultScope scope("snapshot.fsync", {});
  expect_fault_naming("snapshot.fsync", [&] {
    io::write_snapshot_file(make_tensor(), dir.file("t.amptns"));
  });
  EXPECT_EQ(dir.entries(), 0u);
}

TEST_F(FaultInjectionTest, SnapshotRenameFaultLeavesNoTempFile) {
  ScratchDir dir("amped_fault_rename");
  fault::FaultScope scope("snapshot.rename", {});
  expect_fault_naming("snapshot.rename", [&] {
    io::write_snapshot_file(make_tensor(), dir.file("t.amptns"));
  });
  EXPECT_EQ(dir.entries(), 0u);
}

TEST_F(FaultInjectionTest, SnapshotReadFaultNamesTheSite) {
  ScratchDir dir("amped_fault_read");
  const auto path = dir.file("t.amptns");
  io::write_snapshot_file(make_tensor(), path);
  fault::FaultScope scope("snapshot.read", {});
  expect_fault_naming("snapshot.read",
                      [&] { (void)io::read_snapshot_file(path); });
}

TEST_F(FaultInjectionTest, IngestChunkFaultSurfacesFromParallelIngest) {
  ScratchDir dir("amped_fault_ingest");
  const auto path = dir.file("t.tns");
  write_tns_file(make_tensor(), path);
  fault::FaultScope scope("ingest.chunk", {});
  expect_fault_naming("ingest.chunk", [&] { (void)read_tns_file(path); });
  // The parse machinery recovers fully once the fault clears.
  const auto reparsed = read_tns_file(path);
  EXPECT_EQ(reparsed.nnz(), make_tensor().nnz());
}

// ---------------------------------------------------------------------------
// Spill recovery: retry, rebuild, degrade

AmpedBuildOptions spilled_build(const ScratchDir& dir) {
  AmpedBuildOptions opt;
  opt.num_gpus = 4;
  opt.storage = BuildStorage::kSpilled;
  opt.spill_dir = dir.path().string();
  return opt;
}

std::vector<DenseMatrix> run_mttkrp(const AmpedTensor& tensor,
                                    const CooTensor& input,
                                    bool pipelined = false) {
  Rng rng(5);
  const FactorSet factors(input.dims(), 8, rng);
  MttkrpOptions options;
  options.pipelined_streaming = pipelined;
  auto platform = sim::make_default_platform(4);
  std::vector<DenseMatrix> out;
  mttkrp_all_modes(platform, tensor, factors, out, options);
  return out;
}

TEST_F(FaultInjectionTest, TransientSpillWriteIsRetriedBitIdentically) {
  const auto input = make_tensor();
  ScratchDir clean_dir("amped_fault_spill_clean");
  ScratchDir faulty_dir("amped_fault_spill_retry");
  const auto reference =
      AmpedTensor::build(input, spilled_build(clean_dir));

  PreprocessStats stats;
  AmpedTensor recovered;
  {
    // The first two write() calls of the first spill fail transiently;
    // retry_transient around write_snapshot_file must absorb both.
    fault::FaultScope scope("snapshot.write",
                            {.nth = 1, .times = 2, .transient = true});
    recovered = AmpedTensor::build(input, spilled_build(faulty_dir), &stats);
  }
  EXPECT_EQ(stats.spill_retries, 2u);
  EXPECT_EQ(stats.spill_rebuilds, 0u);
  EXPECT_EQ(stats.degraded_to_resident, 0u);
  EXPECT_TRUE(recovered.spilled());

  const auto ref_out = run_mttkrp(reference, input);
  const auto rec_out = run_mttkrp(recovered, input);
  for (std::size_t d = 0; d < 3; ++d) {
    expect_matrices_identical(ref_out[d], rec_out[d]);
  }
}

TEST_F(FaultInjectionTest, PersistentTransientSpillWriteFailsCleanly) {
  const auto input = make_tensor();
  ScratchDir dir("amped_fault_spill_exhaust");
  BudgetGuard guard(input.storage_bytes() + input.storage_bytes() / 2);
  fault::FaultScope scope("snapshot.write",
                          {.nth = 1, .times = 1u << 20, .transient = true});
  expect_fault_naming("spill write", [&] {
    (void)AmpedTensor::build(input, spilled_build(dir));
  });
  EXPECT_EQ(dir.entries(), 0u) << "spill or temp file leaked";
}

TEST_F(FaultInjectionTest, CorruptSpillFileIsRebuiltFromSource) {
  const auto input = make_tensor();
  ScratchDir clean_dir("amped_fault_rebuild_clean");
  ScratchDir faulty_dir("amped_fault_rebuild");
  const auto reference =
      AmpedTensor::build(input, spilled_build(clean_dir));

  PreprocessStats stats;
  AmpedTensor recovered;
  {
    // The first spilled file fails validation when mapped back (as if the
    // disk lied); the copy is rebuilt from the still-resident source.
    fault::FaultScope scope("spill.verify", {.nth = 1, .times = 1});
    recovered = AmpedTensor::build(input, spilled_build(faulty_dir), &stats);
  }
  EXPECT_EQ(stats.spill_rebuilds, 1u);
  EXPECT_EQ(stats.degraded_to_resident, 0u);
  EXPECT_TRUE(recovered.spilled());
  EXPECT_EQ(faulty_dir.entries(), 3u);  // one live spill file per mode

  const auto ref_out = run_mttkrp(reference, input);
  const auto rec_out = run_mttkrp(recovered, input);
  for (std::size_t d = 0; d < 3; ++d) {
    expect_matrices_identical(ref_out[d], rec_out[d]);
  }
}

TEST_F(FaultInjectionTest, UnspillableCopiesDegradeToResidentWithHeadroom) {
  const auto input = make_tensor();
  ScratchDir dir("amped_fault_degrade");
  const auto resident = AmpedTensor::build(input, AmpedBuildOptions{});

  PreprocessStats stats;
  AmpedTensor degraded;
  {
    // Every spill attempt fails validation; with an unlimited budget the
    // build must keep each copy resident instead of aborting.
    fault::FaultScope scope("spill.verify", {.nth = 1, .times = 1u << 20});
    degraded = AmpedTensor::build(input, spilled_build(dir), &stats);
  }
  EXPECT_EQ(stats.degraded_to_resident, 3u);
  EXPECT_FALSE(degraded.spilled());
  EXPECT_EQ(dir.entries(), 0u) << "rejected spill files must be unlinked";

  const auto ref_out = run_mttkrp(resident, input);
  const auto deg_out = run_mttkrp(degraded, input);
  for (std::size_t d = 0; d < 3; ++d) {
    expect_matrices_identical(ref_out[d], deg_out[d]);
  }
}

TEST_F(FaultInjectionTest, DegradationWithoutHeadroomFailsCleanly) {
  const auto input = make_tensor();
  ScratchDir dir("amped_fault_no_headroom");
  // Budget fits 1.5 copies: the build must spill, and a permanently
  // failing spill cannot fall back to resident storage for 3 modes.
  BudgetGuard guard(input.storage_bytes() + input.storage_bytes() / 2);
  fault::FaultScope scope("spill.verify", {.nth = 1, .times = 1u << 20});
  expect_fault_naming("headroom", [&] {
    AmpedBuildOptions opt;
    opt.num_gpus = 4;
    opt.spill_dir = dir.path().string();
    (void)AmpedTensor::build(input, opt);
  });
  EXPECT_EQ(dir.entries(), 0u);
  EXPECT_EQ(io::HostMemoryBudget::global().in_use(), 0u)
      << "budget charge leaked on the failure path";
}

TEST_F(FaultInjectionTest, SpillReadFaultNamesTheSite) {
  const auto input = make_tensor();
  ScratchDir dir("amped_fault_spill_read");
  const auto tensor = AmpedTensor::build(input, spilled_build(dir));
  fault::FaultScope scope("spill.read", {});
  expect_fault_naming("spill.read",
                      [&] { (void)run_mttkrp(tensor, input); });
  // The spilled tensor is still usable once the fault clears.
  const auto out = run_mttkrp(tensor, input);
  EXPECT_EQ(out.size(), 3u);
}

TEST_F(FaultInjectionTest, TransientReadAheadFaultRecoversBitIdentically) {
  const auto input = make_tensor();
  ScratchDir dir("amped_fault_readahead");
  const auto tensor = AmpedTensor::build(input, spilled_build(dir));
  const auto reference = run_mttkrp(tensor, input, /*pipelined=*/true);

  fault::FaultScope scope("stream.readahead",
                          {.nth = 2, .times = 3, .transient = true});
  const auto recovered = run_mttkrp(tensor, input, /*pipelined=*/true);
  for (std::size_t d = 0; d < 3; ++d) {
    expect_matrices_identical(reference[d], recovered[d]);
  }
  EXPECT_GE(fault::fire_count("stream.readahead"), 3u);
}

TEST_F(FaultInjectionTest, PersistentReadAheadFaultSurfacesCleanly) {
  const auto input = make_tensor();
  ScratchDir dir("amped_fault_readahead_fatal");
  const auto tensor = AmpedTensor::build(input, spilled_build(dir));
  fault::FaultScope scope("stream.readahead",
                          {.nth = 1, .times = 1u << 20, .transient = true});
  expect_fault_naming("shard stream read-ahead",
                      [&] { (void)run_mttkrp(tensor, input); });
}

// ---------------------------------------------------------------------------
// Host-backend structured cancellation

std::vector<DenseMatrix> run_host_mttkrp(const AmpedTensor& tensor,
                                         const CooTensor& input,
                                         SchedulingPolicy policy,
                                         bool pipelined) {
  Rng rng(5);
  const FactorSet factors(input.dims(), 8, rng);
  MttkrpOptions options;
  options.policy = policy;
  options.pipelined_streaming = pipelined;
  options.backend = exec::ExecBackend::kHostParallel;
  auto platform = sim::make_default_platform(4);
  std::vector<DenseMatrix> out;
  mttkrp_all_modes(platform, tensor, factors, out, options);
  return out;
}

TEST_F(FaultInjectionTest, HostLaneFaultCancelsSiblingsCleanly) {
  const auto input = make_tensor();
  const auto tensor = AmpedTensor::build(input, AmpedBuildOptions{});
  {
    fault::FaultScope scope("host.lane", {.nth = 3, .times = 1});
    expect_fault_naming("host.lane", [&] {
      (void)run_host_mttkrp(tensor, input,
                            SchedulingPolicy::kStaticGreedy, false);
    });
  }
  // All lane threads joined, no poisoned state: the same run succeeds
  // and matches the simulator bit for bit.
  const auto host = run_host_mttkrp(tensor, input,
                                    SchedulingPolicy::kStaticGreedy, false);
  const auto sim = run_mttkrp(tensor, input);
  for (std::size_t d = 0; d < 3; ++d) {
    expect_matrices_identical(sim[d], host[d]);
  }
}

TEST_F(FaultInjectionTest, EveryHostLaneFaultingYieldsOneError) {
  const auto input = make_tensor();
  const auto tensor = AmpedTensor::build(input, AmpedBuildOptions{});
  fault::FaultScope scope("host.lane", {.nth = 1, .times = 1u << 20});
  // All four lanes throw; exactly one exception may escape (the others
  // are absorbed by the cancel group) and the process must not terminate.
  expect_fault_naming("host.lane", [&] {
    (void)run_host_mttkrp(tensor, input, SchedulingPolicy::kStaticGreedy,
                          false);
  });
}

TEST_F(FaultInjectionTest, HostPipelinedCopyFaultCancelsCleanly) {
  const auto input = make_tensor();
  ScratchDir dir("amped_fault_host_copy");
  const auto tensor = AmpedTensor::build(input, spilled_build(dir));
  {
    fault::FaultScope scope("host.copy", {.nth = 2, .times = 1});
    expect_fault_naming("host.copy", [&] {
      (void)run_host_mttkrp(tensor, input, SchedulingPolicy::kStaticGreedy,
                            true);
    });
  }
  const auto host = run_host_mttkrp(tensor, input,
                                    SchedulingPolicy::kStaticGreedy, true);
  const auto sim = run_mttkrp(tensor, input, /*pipelined=*/true);
  for (std::size_t d = 0; d < 3; ++d) {
    expect_matrices_identical(sim[d], host[d]);
  }
}

TEST_F(FaultInjectionTest, HostPipelinedConsumerFaultJoinsCopyEngine) {
  const auto input = make_tensor();
  ScratchDir dir("amped_fault_host_pipe_lane");
  const auto tensor = AmpedTensor::build(input, spilled_build(dir));
  fault::FaultScope scope("host.lane", {.nth = 2, .times = 1});
  // Before the cancel group existed this std::terminate'd: the consumer
  // threw while its copy-engine thread was still joinable.
  expect_fault_naming("host.lane", [&] {
    (void)run_host_mttkrp(tensor, input, SchedulingPolicy::kStaticGreedy,
                          true);
  });
}

TEST_F(FaultInjectionTest, HostDynamicWorkerFaultCancelsQueue) {
  const auto input = make_tensor();
  const auto tensor = AmpedTensor::build(input, AmpedBuildOptions{});
  {
    fault::FaultScope scope("host.worker", {.nth = 3, .times = 1});
    expect_fault_naming("host.worker", [&] {
      (void)run_host_mttkrp(tensor, input, SchedulingPolicy::kDynamicQueue,
                            false);
    });
  }
  const auto host = run_host_mttkrp(tensor, input,
                                    SchedulingPolicy::kDynamicQueue, false);
  EXPECT_EQ(host.size(), 3u);
}

// ---------------------------------------------------------------------------
// Numeric guards

TEST_F(FaultInjectionTest, NonFiniteMttkrpOutputFailsNamingModeAndIteration) {
  const auto input = make_tensor();
  const auto tensor = AmpedTensor::build(input, AmpedBuildOptions{});
  CpdOptions options;
  options.rank = 4;
  detail::AlsState state(tensor, options);
  DenseMatrix& out = state.prepare_mode(0);
  for (auto& v : out.data()) v = std::numeric_limits<value_t>::quiet_NaN();
  try {
    state.update_mode(0, 0.0);
    FAIL() << "expected the numeric guard to fire";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("non-finite"), std::string::npos) << what;
    EXPECT_NE(what.find("mode-0"), std::string::npos) << what;
    EXPECT_NE(what.find("iteration 0"), std::string::npos) << what;
  }
}

// ---------------------------------------------------------------------------
// Checkpoint / restart

CpdResult run_als(const AmpedTensor& tensor, const CpdOptions& options) {
  auto platform = sim::make_default_platform(4);
  return cp_als(platform, tensor, options);
}

CpdOptions als_options() {
  CpdOptions opt;
  opt.rank = 8;
  opt.max_iterations = 8;
  opt.tolerance = 0.0;  // fixed iteration count: bit-identity needs it
  return opt;
}

TEST_F(FaultInjectionTest, CheckpointingDoesNotPerturbTheRun) {
  const auto input = make_tensor();
  const auto tensor = AmpedTensor::build(input, AmpedBuildOptions{});
  ScratchDir dir("amped_fault_ckpt_noop");

  const auto plain = run_als(tensor, als_options());
  auto ckpt_opt = als_options();
  ckpt_opt.checkpoint_path = dir.file("run.ampckp");
  ckpt_opt.checkpoint_every = 2;
  const auto checkpointed = run_als(tensor, ckpt_opt);
  expect_results_identical(plain, checkpointed);
  EXPECT_TRUE(fs::exists(ckpt_opt.checkpoint_path));
}

TEST_F(FaultInjectionTest, ResumeAfterMidAlsCrashIsBitIdentical) {
  const auto input = make_tensor();
  const auto tensor = AmpedTensor::build(input, AmpedBuildOptions{});
  ScratchDir dir("amped_fault_ckpt_resume");

  const auto reference = run_als(tensor, als_options());

  auto crashing = als_options();
  crashing.checkpoint_path = dir.file("run.ampckp");
  crashing.checkpoint_every = 2;
  {
    // Crash at the end of iteration 5: the newest checkpoint on disk is
    // iteration 4's, so the resumed run must replay 5..8.
    fault::FaultScope scope("cpd.iteration", {.nth = 5, .times = 1});
    expect_fault_naming("cpd.iteration",
                        [&] { (void)run_als(tensor, crashing); });
  }
  const auto resumed_from = read_als_checkpoint(crashing.checkpoint_path);
  EXPECT_EQ(resumed_from.iterations, 4u);

  auto resume = crashing;
  resume.resume = true;
  const auto resumed = run_als(tensor, resume);
  expect_results_identical(reference, resumed);
}

TEST_F(FaultInjectionTest, ResumeWithoutCheckpointStartsFresh) {
  const auto input = make_tensor();
  const auto tensor = AmpedTensor::build(input, AmpedBuildOptions{});
  ScratchDir dir("amped_fault_ckpt_fresh");

  auto opt = als_options();
  opt.checkpoint_path = dir.file("never_written.ampckp");
  opt.resume = true;
  const auto fresh = run_als(tensor, opt);
  expect_results_identical(run_als(tensor, als_options()), fresh);
}

TEST_F(FaultInjectionTest, CorruptCheckpointFailsCleanly) {
  const auto input = make_tensor();
  const auto tensor = AmpedTensor::build(input, AmpedBuildOptions{});
  ScratchDir dir("amped_fault_ckpt_corrupt");
  const auto path = dir.file("run.ampckp");

  auto opt = als_options();
  opt.max_iterations = 2;
  opt.checkpoint_path = path;
  (void)run_als(tensor, opt);
  ASSERT_TRUE(fs::exists(path));

  // Flip one payload byte: the checksum must catch it.
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(40);
    char b;
    f.seekg(40);
    f.read(&b, 1);
    b = static_cast<char>(b ^ 0x40);
    f.seekp(40);
    f.write(&b, 1);
  }
  expect_fault_naming("checksum", [&] { (void)read_als_checkpoint(path); });
  auto resume = opt;
  resume.resume = true;
  EXPECT_THROW((void)run_als(tensor, resume), std::runtime_error);

  // Truncation must fail structurally, never read out of bounds.
  fs::resize_file(path, 24);
  expect_fault_naming("checkpoint", [&] { (void)read_als_checkpoint(path); });
}

TEST_F(FaultInjectionTest, MismatchedCheckpointIsRejected) {
  const auto input = make_tensor();
  const auto tensor = AmpedTensor::build(input, AmpedBuildOptions{});
  ScratchDir dir("amped_fault_ckpt_mismatch");
  const auto path = dir.file("run.ampckp");

  auto opt = als_options();
  opt.max_iterations = 2;
  opt.checkpoint_path = path;
  (void)run_als(tensor, opt);

  auto wrong_rank = opt;
  wrong_rank.rank = 4;
  wrong_rank.resume = true;
  expect_fault_naming("rank", [&] { (void)run_als(tensor, wrong_rank); });
}

TEST_F(FaultInjectionTest, FailedCheckpointWriteLeavesPreviousIntact) {
  const auto input = make_tensor();
  const auto tensor = AmpedTensor::build(input, AmpedBuildOptions{});
  ScratchDir dir("amped_fault_ckpt_atomic");
  const auto path = dir.file("run.ampckp");

  auto opt = als_options();
  opt.max_iterations = 2;
  opt.checkpoint_path = path;
  (void)run_als(tensor, opt);
  const auto before = read_als_checkpoint(path);

  {
    // Persistent transient fsync failures exhaust the retry budget; the
    // atomic writer must leave the previous checkpoint untouched and
    // remove its temp file.
    fault::FaultScope scope("snapshot.fsync",
                            {.nth = 1, .times = 1u << 20, .transient = true});
    expect_fault_naming("checkpoint write", [&] {
      write_als_checkpoint(before, path);
    });
  }
  EXPECT_EQ(dir.entries(), 1u) << "temp checkpoint file leaked";
  const auto after = read_als_checkpoint(path);
  EXPECT_EQ(after.iterations, before.iterations);
  ASSERT_EQ(after.factors.size(), before.factors.size());
  for (std::size_t d = 0; d < before.factors.size(); ++d) {
    expect_matrices_identical(before.factors[d], after.factors[d]);
  }
}

TEST_F(FaultInjectionTest, BatchResumeAfterCrashIsBitIdentical) {
  const auto input_a = make_tensor(11, 2000);
  const auto input_b = make_tensor(12, 1500);
  AmpedBuildOptions build;
  build.num_gpus = 4;
  const auto tensor_a = AmpedTensor::build(input_a, build);
  const auto tensor_b = AmpedTensor::build(input_b, build);
  const AmpedTensor* tensors[] = {&tensor_a, &tensor_b};
  ScratchDir dir("amped_fault_ckpt_batch");

  auto opt = als_options();
  opt.max_iterations = 6;
  const auto reference = [&] {
    auto platform = sim::make_default_platform(4);
    return cpd_batch(platform, tensors, opt);
  }();

  auto crashing = opt;
  crashing.checkpoint_path = dir.file("batch.ampckp");
  crashing.checkpoint_every = 2;
  {
    // finish_iteration runs once per tensor per round: call 5 is tensor
    // A's iteration-3 finish, after both tensors checkpointed at 2.
    fault::FaultScope scope("cpd.iteration", {.nth = 5, .times = 1});
    expect_fault_naming("cpd.iteration", [&] {
      auto platform = sim::make_default_platform(4);
      (void)cpd_batch(platform, tensors, crashing);
    });
  }
  EXPECT_EQ(read_als_checkpoint(crashing.checkpoint_path + ".0").iterations,
            2u);
  EXPECT_EQ(read_als_checkpoint(crashing.checkpoint_path + ".1").iterations,
            2u);

  auto resume = crashing;
  resume.resume = true;
  const auto resumed = [&] {
    auto platform = sim::make_default_platform(4);
    return cpd_batch(platform, tensors, resume);
  }();
  ASSERT_EQ(resumed.size(), reference.size());
  for (std::size_t i = 0; i < reference.size(); ++i) {
    expect_results_identical(reference[i], resumed[i]);
  }
}

}  // namespace
}  // namespace amped
