// Metrics registry (util/metrics.hpp): exactness under concurrent
// hammering, snapshot-while-writing safety (the TSan CI lane runs this
// suite), bucket placement, and the JSON schema --report-json embeds.
#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "util/metrics.hpp"

namespace amped::metrics {
namespace {

TEST(MetricsTest, CounterConcurrentIncrementsAreExact) {
  auto& c = counter("test.concurrent_counter");
  constexpr int kThreads = 8;
  constexpr std::uint64_t kIncs = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (std::uint64_t i = 0; i < kIncs; ++i) c.inc();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), kThreads * kIncs);
  c.inc(42);
  EXPECT_EQ(c.value(), kThreads * kIncs + 42);
}

TEST(MetricsTest, HistogramConcurrentRecordsAreExact) {
  auto& h = histogram("test.concurrent_hist");
  constexpr int kThreads = 6;
  constexpr int kSamples = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h] {
      for (int i = 0; i < kSamples; ++i) h.record_seconds(1e-6);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(h.count(),
            static_cast<std::uint64_t>(kThreads) * kSamples);
  EXPECT_NEAR(h.sum_seconds(), kThreads * kSamples * 1e-6, 1e-9);
  EXPECT_NEAR(h.max_seconds(), 1e-6, 1e-12);
}

TEST(MetricsTest, SnapshotWhileWritingIsSafe) {
  // Writers hammer a counter, a gauge, and a histogram while a reader
  // snapshots in a loop. The assertion is structural (valid, growing
  // values); the real check is TSan finding no race.
  auto& c = counter("test.race_counter");
  auto& g = gauge("test.race_gauge");
  auto& h = histogram("test.race_hist");
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&] {
      // A guaranteed burst first (the reader can finish its snapshots
      // before this thread is even scheduled), then spin until stopped.
      std::uint64_t i = 0;
      do {
        for (int k = 0; k < 1000; ++k) {
          c.inc();
          g.set(static_cast<double>(++i));
          h.record_seconds(1e-7);
        }
      } while (!stop.load(std::memory_order_relaxed));
    });
  }
  std::string last;
  for (int i = 0; i < 50; ++i) {
    last = Registry::global().snapshot_json();
    EXPECT_NE(last.find("\"test.race_counter\""), std::string::npos);
  }
  stop.store(true);
  for (auto& t : writers) t.join();
  EXPECT_GT(c.value(), 0u);
  EXPECT_GT(h.count(), 0u);
}

TEST(MetricsTest, GaugeSetAndMaxRatchet) {
  auto& g = gauge("test.gauge");
  g.set(3.5);
  EXPECT_DOUBLE_EQ(g.value(), 3.5);
  g.set_max(2.0);  // smaller: no effect
  EXPECT_DOUBLE_EQ(g.value(), 3.5);
  g.set_max(7.25);
  EXPECT_DOUBLE_EQ(g.value(), 7.25);
  g.set(1.0);  // plain set still overwrites downward
  EXPECT_DOUBLE_EQ(g.value(), 1.0);
}

TEST(MetricsTest, HistogramBucketPlacement) {
  auto& h = histogram("test.buckets");
  h.record_seconds(0.0);     // 0 ns -> bucket 0
  h.record_seconds(1e-9);    // 1 ns -> bucket 1 (64 - countl_zero(1))
  h.record_seconds(1e-3);    // 1e6 ns -> bucket 20 (2^19 < 1e6 <= 2^20)
  h.record_seconds(-5.0);    // clamped to 0 -> bucket 0
  EXPECT_EQ(h.bucket_count(0), 2u);
  EXPECT_EQ(h.bucket_count(1), 1u);
  EXPECT_EQ(h.bucket_count(20), 1u);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(Histogram::bucket_upper_seconds(0), 1e-9);
  EXPECT_DOUBLE_EQ(Histogram::bucket_upper_seconds(30),
                   static_cast<double>(1u << 30) * 1e-9);
  // The top bucket absorbs absurd samples instead of overflowing.
  h.record_seconds(1e12);
  EXPECT_EQ(h.bucket_count(Histogram::kBuckets - 1), 1u);
}

TEST(MetricsTest, ScopedLatencyRecordsAndCancels) {
  auto& h = histogram("test.scoped");
  { ScopedLatency sample(h); }
  EXPECT_EQ(h.count(), 1u);
  {
    ScopedLatency sample(h);
    sample.cancel();
  }
  EXPECT_EQ(h.count(), 1u);  // cancelled sample not recorded
}

TEST(MetricsTest, DisabledRegistryDropsUpdates) {
  auto& c = counter("test.disabled");
  set_enabled(false);
  c.inc();
  gauge("test.disabled_gauge").set(9.0);
  histogram("test.disabled_hist").record_seconds(1.0);
  set_enabled(true);
  EXPECT_EQ(c.value(), 0u);
  EXPECT_DOUBLE_EQ(gauge("test.disabled_gauge").value(), 0.0);
  EXPECT_EQ(histogram("test.disabled_hist").count(), 0u);
  c.inc();
  EXPECT_EQ(c.value(), 1u);
}

TEST(MetricsTest, SameNameResolvesToSameObject) {
  auto& a = counter("test.same");
  auto& b = counter("test.same");
  EXPECT_EQ(&a, &b);
}

TEST(MetricsTest, WrongKindLookupThrows) {
  counter("test.kind_clash");
  EXPECT_THROW(gauge("test.kind_clash"), std::invalid_argument);
  EXPECT_THROW(histogram("test.kind_clash"), std::invalid_argument);
  histogram("test.kind_clash_hist");
  EXPECT_THROW(counter("test.kind_clash_hist"), std::invalid_argument);
}

TEST(MetricsTest, SnapshotJsonSchema) {
  auto& c = counter("test.snap_counter");
  c.inc(3);
  gauge("test.snap_gauge").set(2.5);
  auto& h = histogram("test.snap_hist");
  h.record_seconds(1e-6);
  const std::string json = Registry::global().snapshot_json();
  // Top-level sections in order, sorted keys inside.
  EXPECT_NE(json.find("\"counters\":{"), std::string::npos);
  EXPECT_NE(json.find("\"gauges\":{"), std::string::npos);
  EXPECT_NE(json.find("\"histograms\":{"), std::string::npos);
  EXPECT_NE(json.find("\"test.snap_counter\":3"), std::string::npos);
  EXPECT_NE(json.find("\"test.snap_gauge\":2.5"), std::string::npos);
  EXPECT_NE(json.find("\"test.snap_hist\":{\"count\":1"),
            std::string::npos);
  EXPECT_NE(json.find("\"buckets\":[{\"le_seconds\":"), std::string::npos);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

TEST(MetricsTest, ResetZeroesValuesButKeepsHandles) {
  auto& c = counter("test.reset_counter");
  auto& h = histogram("test.reset_hist");
  c.inc(5);
  h.record_seconds(1.0);
  Registry::global().reset();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.sum_seconds(), 0.0);
  EXPECT_DOUBLE_EQ(h.max_seconds(), 0.0);
  c.inc();  // handle still live after reset
  EXPECT_EQ(c.value(), 1u);
}

}  // namespace
}  // namespace amped::metrics
