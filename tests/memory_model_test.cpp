#include <gtest/gtest.h>

#include "formats/memory_model.hpp"
#include "sim/device.hpp"
#include "tensor/profiles.hpp"

namespace amped::formats {
namespace {

TEST(MemoryModelTest, ExpectedOccupiedProperties) {
  // Few draws into a big space: ~every draw hits a new cell.
  EXPECT_NEAR(expected_occupied(1e12, 1e3), 1e3, 1.0);
  // Saturation: many draws into a small space occupy everything.
  EXPECT_NEAR(expected_occupied(100.0, 1e6), 100.0, 1e-6);
  // Monotone in nnz.
  EXPECT_LT(expected_occupied(1e6, 1e5), expected_occupied(1e6, 1e6));
  EXPECT_DOUBLE_EQ(expected_occupied(0.0, 10.0), 0.0);
}

TEST(MemoryModelTest, CooBytes) {
  std::vector<std::uint64_t> dims{10, 10, 10};
  EXPECT_EQ(coo_bytes(dims, 100), 100u * 16u);
  std::vector<std::uint64_t> dims5{10, 10, 10, 10, 10};
  EXPECT_EQ(coo_bytes(dims5, 100), 100u * 24u);
}

TEST(MemoryModelTest, FactorBytes) {
  std::vector<std::uint64_t> dims{1000, 2000};
  EXPECT_EQ(factor_bytes(dims, 32), 3000u * 32u * 4u);
}

// The key reproduction test: the full-scale feasibility matrix must match
// the paper's Fig. 5 outcomes on the 48 GB RTX 6000 Ada.
class FeasibilityMatrix : public ::testing::Test {
 protected:
  const std::uint64_t capacity = sim::rtx6000_ada_spec().mem_bytes;
  const std::size_t rank = 32;

  std::uint64_t with_factors(std::uint64_t structure,
                             const DatasetProfile& p) const {
    return structure + factor_bytes(p.full_dims, rank);
  }
};

TEST_F(FeasibilityMatrix, MmcsfRunsAmazonOnly) {
  const auto amazon = amazon_profile();
  const auto patents = patents_profile();
  const auto reddit = reddit_profile();
  EXPECT_LE(with_factors(mmcsf_bytes(amazon.full_dims, amazon.full_nnz),
                         amazon),
            capacity)
      << "MM-CSF must fit Amazon";
  EXPECT_GT(with_factors(mmcsf_bytes(patents.full_dims, patents.full_nnz),
                         patents),
            capacity)
      << "MM-CSF must OOM on Patents";
  EXPECT_GT(with_factors(mmcsf_bytes(reddit.full_dims, reddit.full_nnz),
                         reddit),
            capacity)
      << "MM-CSF must OOM on Reddit";
  // Twitch: 5 modes, rejected before any memory check (kernel support).
}

TEST_F(FeasibilityMatrix, HicooRunsAmazonAndPatentsNotReddit) {
  const auto amazon = amazon_profile();
  const auto patents = patents_profile();
  const auto reddit = reddit_profile();
  EXPECT_LE(with_factors(hicoo_bytes(amazon.full_dims, amazon.full_nnz),
                         amazon),
            capacity)
      << "ParTI/HiCOO must fit Amazon";
  EXPECT_LE(with_factors(hicoo_bytes(patents.full_dims, patents.full_nnz),
                         patents),
            capacity)
      << "ParTI/HiCOO must fit Patents";
  EXPECT_GT(with_factors(hicoo_bytes(reddit.full_dims, reddit.full_nnz),
                         reddit),
            capacity)
      << "ParTI/HiCOO must OOM on Reddit (hypersparse block headers)";
}

TEST_F(FeasibilityMatrix, FlycooFitsTwitchOnly) {
  for (const auto& p : table3_profiles()) {
    const auto needed =
        with_factors(flycoo_bytes(p.full_dims, p.full_nnz), p);
    if (p.name == "twitch") {
      EXPECT_LE(needed, capacity) << "FLYCOO must fit Twitch";
    } else {
      EXPECT_GT(needed, capacity) << "FLYCOO must OOM on " << p.name;
    }
  }
}

TEST_F(FeasibilityMatrix, BlcoStreamsEverything) {
  // BLCO streams block by block; only a single block plus factors must
  // fit, which is true by construction for every profile.
  for (const auto& p : table3_profiles()) {
    EXPECT_GT(blco_bytes(p.full_nnz), 0u);
    EXPECT_LE(factor_bytes(p.full_dims, rank), capacity) << p.name;
  }
}

TEST(MemoryModelTest, HicooHeadersDominateOnHypersparse) {
  // Same nnz, tiny vs huge index space: the huge space costs much more
  // because nearly every element sits in its own block.
  std::vector<std::uint64_t> small{10'000, 10'000, 10'000};
  std::vector<std::uint64_t> huge{10'000'000, 10'000'000, 10'000'000};
  const std::uint64_t nnz = 1'000'000'000;
  EXPECT_GT(hicoo_bytes(huge, nnz), 2 * hicoo_bytes(small, nnz));
}

TEST(MemoryModelTest, CsfTreeSmallerForDenserPrefix) {
  // Rooting at the tiny Patents year mode gives a much smaller level-1
  // than rooting at an inventor mode... but leaf storage dominates; the
  // tree bytes must at least be monotone in nnz.
  const auto p = patents_profile();
  EXPECT_LT(csf_tree_bytes(p.full_dims, p.full_nnz / 10, 0),
            csf_tree_bytes(p.full_dims, p.full_nnz, 0));
}

}  // namespace
}  // namespace amped::formats
