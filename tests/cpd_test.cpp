#include <gtest/gtest.h>

#include <array>
#include <cmath>

#include "core/cpd.hpp"
#include "tensor/generator.hpp"

namespace amped {
namespace {

// Builds a dense-ish low-rank tensor from known factors so ALS has an
// exact solution: X(i,j,k) = sum_r A(i,r) B(j,r) C(k,r).
CooTensor low_rank_tensor(std::size_t rank, std::uint64_t seed) {
  const std::vector<index_t> dims{12, 10, 8};
  Rng rng(seed);
  FactorSet truth(dims, rank, rng);

  CooTensor t(dims);
  std::array<index_t, 3> c{};
  for (index_t i = 0; i < dims[0]; ++i) {
    for (index_t j = 0; j < dims[1]; ++j) {
      for (index_t k = 0; k < dims[2]; ++k) {
        double v = 0.0;
        for (std::size_t r = 0; r < rank; ++r) {
          v += static_cast<double>(truth.factor(0)(i, r)) *
               truth.factor(1)(j, r) * truth.factor(2)(k, r);
        }
        c = {i, j, k};
        t.push_back(std::span<const index_t>(c.data(), 3),
                    static_cast<value_t>(v));
      }
    }
  }
  return t;
}

TEST(CpdTest, RecoversLowRankTensor) {
  auto input = low_rank_tensor(3, 21);
  auto tensor = AmpedTensor::build(input, AmpedBuildOptions{});
  auto platform = sim::make_default_platform(4);

  CpdOptions opt;
  opt.rank = 8;  // over-parameterised: fit should go very high
  opt.max_iterations = 40;
  opt.tolerance = 1e-7;
  auto result = cp_als(platform, tensor, opt);

  EXPECT_GT(result.fit, 0.99) << "ALS failed to recover a rank-3 tensor";
  EXPECT_GT(result.iterations, 1u);
  EXPECT_GT(result.mttkrp_sim_seconds, 0.0);
}

TEST(CpdTest, FitHistoryMonotoneAfterWarmup) {
  // Exact-rank problem: ALS fit is monotone up to float32 noise. (With an
  // over-parameterised rank, CP degeneracy legitimately makes the fit
  // oscillate, so that case is not asserted here.)
  auto input = low_rank_tensor(2, 22);
  auto tensor = AmpedTensor::build(input, AmpedBuildOptions{});
  auto platform = sim::make_default_platform(2);

  CpdOptions opt;
  opt.rank = 2;
  opt.max_iterations = 15;
  opt.tolerance = 0.0;  // run all iterations
  auto result = cp_als(platform, tensor, opt);

  ASSERT_GE(result.fit_history.size(), 5u);
  for (std::size_t i = 2; i < result.fit_history.size(); ++i) {
    EXPECT_GE(result.fit_history[i], result.fit_history[i - 1] - 1e-2);
  }
  EXPECT_GT(result.fit, 0.95);
}

TEST(CpdTest, ConvergesAndStops) {
  auto input = low_rank_tensor(2, 23);
  auto tensor = AmpedTensor::build(input, AmpedBuildOptions{});
  auto platform = sim::make_default_platform(2);

  CpdOptions opt;
  opt.rank = 4;
  opt.max_iterations = 50;
  opt.tolerance = 1e-4;
  auto result = cp_als(platform, tensor, opt);
  EXPECT_TRUE(result.converged);
  EXPECT_LT(result.iterations, 50u);
}

TEST(CpdTest, LambdaPositiveAndFactorsNormalised) {
  auto input = low_rank_tensor(3, 24);
  auto tensor = AmpedTensor::build(input, AmpedBuildOptions{});
  auto platform = sim::make_default_platform(2);

  CpdOptions opt;
  opt.rank = 4;
  opt.max_iterations = 8;
  auto result = cp_als(platform, tensor, opt);

  for (double l : result.lambda) EXPECT_GT(l, 0.0);
  for (std::size_t d = 0; d < 3; ++d) {
    for (std::size_t r = 0; r < opt.rank; ++r) {
      double norm = 0.0;
      const auto& f = result.factors.factor(d);
      for (std::size_t i = 0; i < f.rows(); ++i) {
        norm += static_cast<double>(f(i, r)) * f(i, r);
      }
      EXPECT_NEAR(std::sqrt(norm), 1.0, 1e-3)
          << "mode " << d << " column " << r;
    }
  }
}

TEST(CpdTest, SparseRandomTensorFitsPartially) {
  GeneratorOptions gopt;
  gopt.dims = {60, 50, 40};
  gopt.nnz = 3000;
  gopt.seed = 25;
  gopt.coalesce_duplicates = true;
  auto input = generate_random(gopt);
  auto tensor = AmpedTensor::build(input, AmpedBuildOptions{});
  auto platform = sim::make_default_platform(4);

  CpdOptions opt;
  opt.rank = 8;
  opt.max_iterations = 10;
  auto result = cp_als(platform, tensor, opt);
  // Random data is not low-rank; fit must be finite and above the
  // trivial zero-model baseline.
  EXPECT_GT(result.fit, 0.0);
  EXPECT_LT(result.fit, 1.0);
}

TEST(CpdTest, TensorNormSq) {
  CooTensor t({2, 2});
  const std::array<index_t, 2> a{0, 0}, b{1, 1};
  t.push_back(std::span<const index_t>(a.data(), 2), 3.0f);
  t.push_back(std::span<const index_t>(b.data(), 2), 4.0f);
  EXPECT_DOUBLE_EQ(tensor_norm_sq(t), 25.0);
}

}  // namespace
}  // namespace amped
