#include <gtest/gtest.h>

#include <array>

#include "tensor/analysis.hpp"
#include "tensor/generator.hpp"

namespace amped {
namespace {

TEST(AnalysisTest, CountsOnHandBuiltTensor) {
  CooTensor t({4, 3});
  const std::array<std::array<index_t, 2>, 5> coords{{
      {0, 0}, {0, 1}, {0, 2}, {1, 0}, {3, 0},
  }};
  for (const auto& c : coords) {
    t.push_back(std::span<const index_t>(c.data(), 2), 1.0f);
  }
  auto a = analyze(t);
  EXPECT_EQ(a.nnz, 5u);
  EXPECT_DOUBLE_EQ(a.density, 5.0 / 12.0);
  ASSERT_EQ(a.modes.size(), 2u);
  EXPECT_EQ(a.modes[0].used_indices, 3u);       // indices 0, 1, 3
  EXPECT_EQ(a.modes[0].max_multiplicity, 3u);   // index 0 three times
  EXPECT_DOUBLE_EQ(a.modes[0].hottest_share, 0.6);
  EXPECT_EQ(a.modes[1].used_indices, 3u);
  EXPECT_EQ(a.modes[1].max_multiplicity, 3u);   // column 0 three times
}

TEST(AnalysisTest, SkewIncreasesHottestShareAndGini) {
  auto run = [](double s) {
    GeneratorOptions opt;
    opt.dims = {256, 64};
    opt.nnz = 20000;
    opt.zipf_exponents = {s, 0.0};
    opt.seed = 11;
    return analyze(generate_random(opt)).modes[0];
  };
  const auto uniform = run(0.0);
  const auto heavy = run(1.3);
  EXPECT_GT(heavy.hottest_share, uniform.hottest_share * 3);
  EXPECT_GT(heavy.gini, uniform.gini);
}

TEST(AnalysisTest, FiberCountBounds) {
  GeneratorOptions opt;
  opt.dims = {32, 32, 1024};
  opt.nnz = 4000;
  opt.seed = 12;
  auto t = generate_random(opt);
  const nnz_t fibers = count_fibers(t, 0, 1);
  EXPECT_LE(fibers, t.nnz());
  EXPECT_LE(fibers, 32u * 32u);
  EXPECT_GE(fibers, 1u);
}

TEST(AnalysisTest, ToStringMentionsEveryMode) {
  GeneratorOptions opt;
  opt.dims = {8, 8, 8};
  opt.nnz = 50;
  opt.seed = 13;
  const auto s = analyze(generate_random(opt)).to_string();
  EXPECT_NE(s.find("mode 0"), std::string::npos);
  EXPECT_NE(s.find("mode 2"), std::string::npos);
  EXPECT_NE(s.find("density"), std::string::npos);
}

TEST(AnalysisTest, EmptyTensor) {
  CooTensor t({4, 4});
  auto a = analyze(t);
  EXPECT_EQ(a.nnz, 0u);
  EXPECT_EQ(a.modes[0].used_indices, 0u);
  EXPECT_DOUBLE_EQ(a.modes[0].hottest_share, 0.0);
}

}  // namespace
}  // namespace amped
