#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <vector>

#include "io/mapped_tensor.hpp"
#include "io/snapshot.hpp"
#include "tensor/generator.hpp"
#include "tensor/tns_io.hpp"

namespace amped {
namespace {

namespace fs = std::filesystem;

class SnapshotTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("amped_snapshot_test_" + std::to_string(::getpid()));
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }

  fs::path dir_;
};

CooTensor make_tensor(std::vector<index_t> dims, nnz_t nnz,
                      std::uint64_t seed) {
  GeneratorOptions opt;
  opt.dims = std::move(dims);
  opt.nnz = nnz;
  opt.seed = seed;
  return generate_random(opt);
}

// The full shape set the satellite asks for: 1 through 5 modes plus an
// empty (0-nnz) tensor.
std::vector<CooTensor> test_tensor_set() {
  std::vector<CooTensor> set;
  set.push_back(make_tensor({64}, 100, 1));                     // 1 mode
  set.push_back(make_tensor({40, 30}, 300, 2));                 // 2 modes
  set.push_back(make_tensor({20, 30, 10}, 500, 3));             // 3 modes
  set.push_back(make_tensor({12, 9, 7, 5, 4}, 400, 5));         // 5 modes
  set.push_back(CooTensor{std::vector<index_t>{8, 6}});         // nnz == 0
  return set;
}

void expect_tensors_equal(const CooTensor& a, const CooTensor& b) {
  ASSERT_EQ(a.num_modes(), b.num_modes());
  ASSERT_EQ(a.dims(), b.dims());
  ASSERT_EQ(a.nnz(), b.nnz());
  if (a.nnz() == 0) return;  // empty spans may be backed by nullptr
  for (std::size_t m = 0; m < a.num_modes(); ++m) {
    ASSERT_EQ(0, std::memcmp(a.indices(m).data(), b.indices(m).data(),
                             a.nnz() * sizeof(index_t)))
        << "mode " << m << " differs";
  }
  ASSERT_EQ(0, std::memcmp(a.values().data(), b.values().data(),
                           a.nnz() * sizeof(value_t)));
}

TEST_F(SnapshotTest, V2RoundTripAcrossShapes) {
  std::size_t i = 0;
  for (const auto& t : test_tensor_set()) {
    const auto p = path("rt" + std::to_string(i++) + ".amptns");
    io::write_snapshot_file(t, p);
    expect_tensors_equal(t, io::read_snapshot_file(p));
  }
}

TEST_F(SnapshotTest, MappedViewEqualsOwnedTensor) {
  std::size_t i = 0;
  for (const auto& t : test_tensor_set()) {
    const auto p = path("map" + std::to_string(i++) + ".amptns");
    io::write_snapshot_file(t, p);
    io::MappedCooTensor mapped(p);
    ASSERT_EQ(mapped.num_modes(), t.num_modes());
    ASSERT_EQ(mapped.dims(), t.dims());
    ASSERT_EQ(mapped.nnz(), t.nnz());
    for (std::size_t m = 0; m < t.num_modes() && t.nnz() > 0; ++m) {
      ASSERT_EQ(0, std::memcmp(mapped.indices(m).data(),
                               t.indices(m).data(),
                               t.nnz() * sizeof(index_t)));
    }
    if (t.nnz() > 0) {
      ASSERT_EQ(0, std::memcmp(mapped.values().data(), t.values().data(),
                               t.nnz() * sizeof(value_t)));
    }
    EXPECT_EQ(mapped.bytes_per_nnz(), t.bytes_per_nnz());
    EXPECT_EQ(mapped.storage_bytes(), t.storage_bytes());
    EXPECT_EQ(mapped.shape_string(), t.shape_string());
    EXPECT_TRUE(mapped.indices_in_bounds());
    expect_tensors_equal(t, mapped.materialize());
  }
}

TEST_F(SnapshotTest, V1FileReadableThroughV2Reader) {
  const auto t = make_tensor({50, 40}, 500, 3);
  const auto p = path("v1.amptns");
  write_binary_file(t, p);  // v1 writer
  expect_tensors_equal(t, io::read_snapshot_file(p));
}

TEST_F(SnapshotTest, V2FileReadableThroughV1Entry) {
  const auto t = make_tensor({50, 40}, 500, 3);
  const auto p = path("v2.amptns");
  io::write_snapshot_file(t, p);
  expect_tensors_equal(t, read_binary_file(p));  // v1-era call site
}

TEST_F(SnapshotTest, SegmentsAreAligned) {
  const auto t = make_tensor({20, 30, 10}, 123, 9);
  const auto p = path("aligned.amptns");
  io::write_snapshot_file(t, p);
  const auto layout = io::inspect_snapshot(p);
  EXPECT_EQ(layout.num_modes, 3u);
  EXPECT_EQ(layout.nnz, t.nnz());
  ASSERT_EQ(layout.segments.size(), 5u);  // dims + 3 index cols + values
  for (const auto& seg : layout.segments) {
    EXPECT_EQ(seg.offset % io::kSnapshotAlignment, 0u);
  }
}

TEST_F(SnapshotTest, ShardRunStatsSegmentRoundTrips) {
  // The optional run-stats segment (written at spill time) must survive
  // the mapped-view round trip and leave the tensor payload untouched;
  // files written without it must read back with an empty span.
  const auto t = make_tensor({20, 30, 10}, 500, 11);
  const std::vector<io::ShardRunStatsRecord> stats = {
      {0, 200, 40, 12}, {200, 350, 33, 9}, {350, 500, 50, 4}};
  const auto p = path("stats.amptns");
  io::write_snapshot_file(t, p, stats);

  io::MappedCooTensor mapped(p);
  const auto got = mapped.shard_run_stats();
  ASSERT_EQ(got.size(), stats.size());
  for (std::size_t i = 0; i < stats.size(); ++i) {
    EXPECT_EQ(got[i].nnz_begin, stats[i].nnz_begin) << i;
    EXPECT_EQ(got[i].nnz_end, stats[i].nnz_end) << i;
    EXPECT_EQ(got[i].runs, stats[i].runs) << i;
    EXPECT_EQ(got[i].max_run, stats[i].max_run) << i;
  }
  expect_tensors_equal(t, io::read_snapshot_file(p));

  const auto layout = io::inspect_snapshot(p);
  ASSERT_EQ(layout.segments.size(), 6u);  // dims + 3 index cols + values + stats
  bool saw_stats = false;
  for (const auto& seg : layout.segments) {
    EXPECT_EQ(seg.offset % io::kSnapshotAlignment, 0u);
    if (seg.kind == io::SegmentKind::kShardRunStats) {
      saw_stats = true;
      EXPECT_EQ(seg.bytes, stats.size() * sizeof(io::ShardRunStatsRecord));
    }
  }
  EXPECT_TRUE(saw_stats);

  // Plain conversions carry no stats segment.
  const auto plain = path("nostats.amptns");
  io::write_snapshot_file(t, plain);
  io::MappedCooTensor plain_mapped(plain);
  EXPECT_TRUE(plain_mapped.shard_run_stats().empty());
}

TEST_F(SnapshotTest, ChecksumCorruptionRejected) {
  const auto t = make_tensor({20, 30, 10}, 500, 4);
  const auto p = path("corrupt.amptns");
  io::write_snapshot_file(t, p);

  // Flip one byte in the middle of the values segment (found through the
  // segment table, so the corruption never lands in padding).
  const auto layout = io::inspect_snapshot(p);
  std::uint64_t target = 0;
  for (const auto& seg : layout.segments) {
    if (seg.kind == io::SegmentKind::kValues) {
      target = seg.offset + seg.bytes / 2;
    }
  }
  ASSERT_GT(target, 0u);
  {
    std::fstream f(p, std::ios::in | std::ios::out | std::ios::binary);
    f.seekg(static_cast<std::streamoff>(target));
    char byte = 0;
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x5a);
    f.seekp(static_cast<std::streamoff>(target));
    f.write(&byte, 1);
  }
  EXPECT_THROW(io::read_snapshot_file(p), std::runtime_error);
  EXPECT_THROW(io::MappedCooTensor{p}, std::runtime_error);
}

TEST_F(SnapshotTest, CorruptHeaderCountsRejected) {
  const auto t = make_tensor({20, 30, 10}, 200, 10);
  auto patch_u64 = [&](const std::string& p, std::streamoff off,
                       std::uint64_t v) {
    std::fstream f(p, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(off);
    f.write(reinterpret_cast<const char*>(&v), sizeof(v));
  };
  // A huge nnz whose byte-size computation would wrap must be rejected,
  // not turned into spans past the mapping.
  const auto p1 = path("huge_nnz.amptns");
  io::write_snapshot_file(t, p1);
  patch_u64(p1, 16, 1ull << 62);
  EXPECT_THROW(io::read_snapshot_file(p1), std::runtime_error);
  // Same for a table offset that wraps the range check.
  const auto p2 = path("huge_table.amptns");
  io::write_snapshot_file(t, p2);
  patch_u64(p2, 32, 0xFFFFFFFFFFFFFF00ull);
  EXPECT_THROW(io::read_snapshot_file(p2), std::runtime_error);
}

TEST_F(SnapshotTest, TruncatedV2Rejected) {
  const auto t = make_tensor({20, 30, 10}, 500, 5);
  const auto p = path("trunc.amptns");
  io::write_snapshot_file(t, p);
  fs::resize_file(p, fs::file_size(p) / 2);
  EXPECT_THROW(io::read_snapshot_file(p), std::runtime_error);
  EXPECT_THROW(io::MappedCooTensor{p}, std::runtime_error);
}

TEST_F(SnapshotTest, TruncatedV1Rejected) {
  const auto t = make_tensor({20, 30}, 400, 6);
  const auto p = path("trunc_v1.amptns");
  write_binary_file(t, p);
  fs::resize_file(p, fs::file_size(p) - 7);
  try {
    read_binary_file(p);
    FAIL() << "expected truncation to throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("truncated"), std::string::npos);
  }
}

TEST_F(SnapshotTest, V1HugeNnzHeaderRejectedWithoutAllocating) {
  // A corrupt nnz chosen so the naive expected-size product would wrap
  // to the real payload size must still be rejected (and must not
  // trigger a multi-exabyte allocation first).
  const auto t = make_tensor({20, 30}, 400, 6);
  const auto p = path("huge_v1.amptns");
  write_binary_file(t, p);
  {
    std::fstream f(p, std::ios::in | std::ios::out | std::ios::binary);
    const std::uint64_t huge = 1ull << 61;
    f.seekp(16);  // v1 header: magic(8) + modes(8) + nnz(8)
    f.write(reinterpret_cast<const char*>(&huge), sizeof(huge));
  }
  try {
    read_binary_file(p);
    FAIL() << "expected corrupt header to throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("truncated"), std::string::npos);
  }
}

TEST_F(SnapshotTest, MappedViewRejectsV1) {
  const auto t = make_tensor({20, 30}, 100, 7);
  const auto p = path("v1_for_map.amptns");
  write_binary_file(t, p);
  EXPECT_THROW(io::MappedCooTensor{p}, std::runtime_error);
}

TEST_F(SnapshotTest, WritesAreAtomic) {
  const auto t = make_tensor({20, 30, 10}, 500, 8);
  const auto p = path("atomic.amptns");
  io::write_snapshot_file(t, p);
  write_binary_file(t, path("atomic_v1.amptns"));
  // Neither writer leaves its temp file behind on success.
  for (const auto& entry : fs::directory_iterator(dir_)) {
    EXPECT_EQ(entry.path().string().find(".tmp-"), std::string::npos)
        << "stray temp file: " << entry.path();
  }
  // Overwriting an existing snapshot goes through the same temp+rename.
  const auto t2 = make_tensor({20, 30, 10}, 700, 9);
  io::write_snapshot_file(t2, p);
  expect_tensors_equal(t2, io::read_snapshot_file(p));
}

TEST_F(SnapshotTest, ChecksumIsDeterministicAndSensitive) {
  const char data[] = "the quick brown fox jumps over the lazy dog";
  const auto a = io::checksum64(data, sizeof(data));
  EXPECT_EQ(a, io::checksum64(data, sizeof(data)));
  char tweaked[sizeof(data)];
  std::memcpy(tweaked, data, sizeof(data));
  tweaked[10] ^= 1;
  EXPECT_NE(a, io::checksum64(tweaked, sizeof(tweaked)));
  // Length is folded in: a zero-padded prefix does not collide.
  EXPECT_NE(io::checksum64(data, 8), io::checksum64(data, 9));
}

TEST_F(SnapshotTest, MissingFileThrows) {
  EXPECT_THROW(io::read_snapshot_file(path("nope.amptns")),
               std::runtime_error);
  EXPECT_THROW(io::MappedCooTensor{path("nope.amptns")},
               std::runtime_error);
}

}  // namespace
}  // namespace amped
