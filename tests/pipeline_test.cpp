// Double-buffered shard streaming (MttkrpOptions::pipelined_streaming).
#include <gtest/gtest.h>

#include "core/amped_tensor.hpp"
#include "core/mttkrp.hpp"
#include "tensor/generator.hpp"
#include "tensor/reference_mttkrp.hpp"

namespace amped {
namespace {

CooTensor make_tensor(std::uint64_t seed, nnz_t nnz = 60000) {
  GeneratorOptions opt;
  opt.dims = {1024, 512, 512};
  opt.nnz = nnz;
  opt.zipf_exponents = {0.5, 0.5, 0.5};
  opt.seed = seed;
  return generate_random(opt);
}

TEST(PipelineTest, SameNumericalResult) {
  auto input = make_tensor(91);
  Rng rng(92);
  FactorSet factors(input.dims(), 16, rng);
  AmpedBuildOptions build;
  build.num_gpus = 4;
  auto tensor = AmpedTensor::build(input, build);
  const auto refs = reference_mttkrp_all_modes(input, factors);

  auto platform = sim::make_default_platform(4, 1000.0);
  MttkrpOptions opt;
  opt.pipelined_streaming = true;
  std::vector<DenseMatrix> outputs;
  mttkrp_all_modes(platform, tensor, factors, outputs, opt);
  for (std::size_t d = 0; d < refs.size(); ++d) {
    EXPECT_LT(relative_max_diff(refs[d], outputs[d]), 5e-4) << d;
  }
}

TEST(PipelineTest, OverlapNeverSlower) {
  auto input = make_tensor(93, 120000);
  Rng rng(94);
  FactorSet factors(input.dims(), 32, rng);
  AmpedBuildOptions build;
  build.num_gpus = 4;
  auto tensor = AmpedTensor::build(input, build);

  auto run = [&](bool pipelined) {
    auto platform = sim::make_default_platform(4, 1000.0);
    MttkrpOptions opt;
    opt.pipelined_streaming = pipelined;
    std::vector<DenseMatrix> outputs;
    return mttkrp_all_modes(platform, tensor, factors, outputs, opt)
        .total_seconds;
  };
  const double sequential = run(false);
  const double overlapped = run(true);
  EXPECT_LE(overlapped, sequential * (1.0 + 1e-9));
  // With many shards, hiding the transfers must produce a real gain.
  EXPECT_LT(overlapped, sequential * 0.97);
}

TEST(PipelineTest, ExposedTransferBoundedByTotals) {
  auto input = make_tensor(95);
  Rng rng(96);
  FactorSet factors(input.dims(), 16, rng);
  AmpedBuildOptions build;
  build.num_gpus = 2;
  auto tensor = AmpedTensor::build(input, build);

  auto platform_seq = sim::make_default_platform(2, 1000.0);
  auto platform_pipe = sim::make_default_platform(2, 1000.0);
  MttkrpOptions seq_opt, pipe_opt;
  pipe_opt.pipelined_streaming = true;
  std::vector<DenseMatrix> o1, o2;
  mttkrp_all_modes(platform_seq, tensor, factors, o1, seq_opt);
  mttkrp_all_modes(platform_pipe, tensor, factors, o2, pipe_opt);

  const auto seq = platform_seq.aggregate_timeline();
  const auto pipe = platform_pipe.aggregate_timeline();
  // Compute charged identically; the pipelined run exposes strictly less
  // transfer time and none of it can be negative.
  EXPECT_NEAR(pipe.total(sim::Phase::kCompute),
              seq.total(sim::Phase::kCompute), 1e-12);
  EXPECT_LE(pipe.total(sim::Phase::kHostToDevice),
            seq.total(sim::Phase::kHostToDevice) + 1e-12);
  EXPECT_GE(pipe.total(sim::Phase::kHostToDevice), 0.0);
}

TEST(PipelineTest, WorksWithWeightedPolicyOnHeteroNode) {
  auto input = make_tensor(97);
  Rng rng(98);
  FactorSet factors(input.dims(), 16, rng);
  AmpedBuildOptions build;
  build.num_gpus = 2;
  auto tensor = AmpedTensor::build(input, build);
  const auto refs = reference_mttkrp_all_modes(input, factors);

  sim::PlatformConfig cfg;
  cfg.num_gpus = 2;
  cfg.workload_scale = 1000.0;
  cfg.gpu_overrides = {sim::rtx6000_ada_spec(), sim::rtx_a4000_spec()};
  sim::Platform platform(cfg);
  MttkrpOptions opt;
  opt.policy = SchedulingPolicy::kWeightedStatic;
  opt.pipelined_streaming = true;
  std::vector<DenseMatrix> outputs;
  mttkrp_all_modes(platform, tensor, factors, outputs, opt);
  for (std::size_t d = 0; d < refs.size(); ++d) {
    EXPECT_LT(relative_max_diff(refs[d], outputs[d]), 5e-4) << d;
  }
}

}  // namespace
}  // namespace amped
