// Plan composition (exec/compose.hpp), batched MTTKRP/CPD (core/batch.hpp)
// and the look-ahead dynamic scheduler: batched execution must be
// bit-identical per tensor to solo execution, never slower than running
// the workloads back to back, and kDynamicLookahead must beat plain
// dynamic dispatch when transfers dominate.
#include <gtest/gtest.h>

#include <cstring>

#include "core/amped_tensor.hpp"
#include "core/batch.hpp"
#include "core/cpd.hpp"
#include "core/mttkrp.hpp"
#include "exec/compose.hpp"
#include "exec/scheduler.hpp"
#include "tensor/generator.hpp"
#include "tensor/reference_mttkrp.hpp"

namespace amped {
namespace {

CooTensor make_tensor(std::uint64_t seed, std::vector<index_t> dims,
                      nnz_t nnz, std::vector<double> zipf = {0.8, 0.5, 0.5}) {
  GeneratorOptions opt;
  opt.dims = std::move(dims);
  opt.nnz = nnz;
  opt.zipf_exponents = std::move(zipf);
  opt.seed = seed;
  return generate_random(opt);
}

sim::Platform hetero_platform(double scale = 1000.0) {
  sim::PlatformConfig cfg;
  cfg.num_gpus = 4;
  cfg.workload_scale = scale;
  cfg.gpu_overrides = {sim::rtx6000_ada_spec(), sim::rtx6000_ada_spec(),
                       sim::rtx_a4000_spec(), sim::rtx_a4000_spec()};
  return sim::Platform(cfg);
}

void expect_bit_identical(const DenseMatrix& a, const DenseMatrix& b,
                          const std::string& what) {
  ASSERT_EQ(a.rows(), b.rows()) << what;
  ASSERT_EQ(a.cols(), b.cols()) << what;
  EXPECT_EQ(std::memcmp(a.data().data(), b.data().data(), a.bytes()), 0)
      << what << ": outputs differ bitwise";
}

struct Workload {
  AmpedTensor tensor;
  FactorSet factors;
};

std::vector<Workload> make_workloads(int num_gpus) {
  std::vector<Workload> out;
  AmpedBuildOptions build;
  build.num_gpus = num_gpus;
  {
    Workload w;
    auto input = make_tensor(301, {512, 256, 256}, 40000);
    Rng rng(302);
    w.factors = FactorSet(input.dims(), 16, rng);
    w.tensor = AmpedTensor::build(input, build);
    out.push_back(std::move(w));
  }
  {
    Workload w;
    auto input = make_tensor(303, {300, 500, 128}, 30000, {0.4, 0.9, 0.3});
    Rng rng(304);
    w.factors = FactorSet(input.dims(), 16, rng);
    w.tensor = AmpedTensor::build(input, build);
    out.push_back(std::move(w));
  }
  return out;
}

// Runs the workloads solo (back to back on fresh platforms) and batched,
// and demands: per-tensor bit-identical outputs, composed makespan no
// worse than the sum of solo makespans, and per-tensor compute
// attribution matching the solo numbers exactly.
void expect_batched_matches_solo(
    const std::vector<Workload>& workloads, const MttkrpOptions& options,
    const std::function<sim::Platform()>& make_platform,
    bool expect_bitwise = true) {
  std::vector<std::vector<DenseMatrix>> solo_out(workloads.size());
  std::vector<MttkrpReport> solo_reports;
  double solo_sum = 0.0;
  for (std::size_t i = 0; i < workloads.size(); ++i) {
    auto platform = make_platform();
    solo_reports.push_back(mttkrp_all_modes(platform, workloads[i].tensor,
                                            workloads[i].factors,
                                            solo_out[i], options));
    solo_sum += solo_reports.back().total_seconds;
  }

  std::vector<BatchWorkload> batch;
  for (const auto& w : workloads) batch.push_back({&w.tensor, &w.factors});
  auto platform = make_platform();
  std::vector<std::vector<DenseMatrix>> batch_out;
  const auto report = mttkrp_batch(platform, batch, batch_out, options);

  ASSERT_EQ(batch_out.size(), workloads.size());
  for (std::size_t i = 0; i < workloads.size(); ++i) {
    ASSERT_EQ(batch_out[i].size(), solo_out[i].size()) << "tensor " << i;
    for (std::size_t d = 0; d < solo_out[i].size(); ++d) {
      if (expect_bitwise) {
        expect_bit_identical(batch_out[i][d], solo_out[i][d],
                             "tensor " + std::to_string(i) + " mode " +
                                 std::to_string(d));
      } else {
        // Dynamic placement on heterogeneous GPUs can reorder the
        // accumulation (ISP geometry differs per device), so bitwise
        // equality is off the table — but a wrong scope routing one
        // tensor's updates into another's buffer would still blow this
        // double-precision reference bound.
        EXPECT_LT(relative_max_diff(solo_out[i][d], batch_out[i][d]), 5e-4)
            << "tensor " << i << " mode " << d;
      }
    }
  }

  // Composed makespan <= sum of solo makespans: the acceptance criterion.
  EXPECT_LE(report.total_seconds, solo_sum * (1.0 + 1e-12))
      << "composed " << report.total_seconds << " vs back-to-back "
      << solo_sum;

  // Disjoint outputs must actually elide: one barrier per source plan per
  // composed step.
  std::size_t steps = 0;
  for (const auto& s : report.steps) {
    EXPECT_EQ(s.elided_barriers, s.plans) << "step " << steps;
    ++steps;
  }

  // Per-tensor compute attribution comes from per-scope accounting and
  // must match the solo numbers exactly when the assignment is static
  // (same shards, same GPUs, same arithmetic).
  if (expect_bitwise && options.policy != SchedulingPolicy::kDynamicQueue &&
      options.policy != SchedulingPolicy::kDynamicLookahead) {
    for (std::size_t i = 0; i < workloads.size(); ++i) {
      ASSERT_EQ(report.per_tensor_gpu_compute[i].size(),
                solo_reports[i].per_gpu_compute.size());
      for (std::size_t g = 0; g < solo_reports[i].per_gpu_compute.size();
           ++g) {
        EXPECT_EQ(report.per_tensor_gpu_compute[i][g],
                  solo_reports[i].per_gpu_compute[g])
            << "tensor " << i << " gpu " << g;
      }
    }
  }
}

class PlanCompose
    : public ::testing::TestWithParam<std::pair<SchedulingPolicy, bool>> {};

TEST_P(PlanCompose, BatchedBitIdenticalAndNoSlowerHomogeneous) {
  const auto [policy, pipelined] = GetParam();
  MttkrpOptions options;
  options.policy = policy;
  options.pipelined_streaming = pipelined;
  expect_batched_matches_solo(
      make_workloads(4), options,
      [] { return sim::make_default_platform(4, 1000.0); });
}

TEST_P(PlanCompose, BatchedBitIdenticalAndNoSlowerHeterogeneous) {
  const auto [policy, pipelined] = GetParam();
  // Dynamic placement depends on device clocks, and a shard landing on a
  // device with a different SM count changes its ISP split (and so the
  // accumulation order): on the heterogeneous box only the static
  // policies promise bitwise equality with solo runs.
  const bool bitwise = policy != SchedulingPolicy::kDynamicQueue &&
                       policy != SchedulingPolicy::kDynamicLookahead;
  MttkrpOptions options;
  options.policy = policy;
  options.pipelined_streaming = pipelined;
  expect_batched_matches_solo(make_workloads(4), options,
                              [] { return hetero_platform(); }, bitwise);
}

INSTANTIATE_TEST_SUITE_P(
    Policies, PlanCompose,
    ::testing::Values(
        std::pair{SchedulingPolicy::kStaticGreedy, false},
        std::pair{SchedulingPolicy::kStaticGreedy, true},
        std::pair{SchedulingPolicy::kCostModel, false},
        std::pair{SchedulingPolicy::kCostModel, true},
        std::pair{SchedulingPolicy::kDynamicQueue, false},
        std::pair{SchedulingPolicy::kDynamicLookahead, false}),
    [](const auto& param_info) {
      std::string n = to_string(param_info.param.first);
      for (auto& c : n) {
        if (c == '-') c = '_';
      }
      return n + (param_info.param.second ? "_pipelined" : "");
    });

TEST(PlanComposeTest, DynamicCompositionStrictlyBeatsBackToBackStraggler) {
  // Tensor A's hot shard (zipf 1.3 on the output mode) is a straggler:
  // in a back-to-back dynamic run three GPUs stall at A's barrier while
  // it drains. Composition lets those GPUs pull tensor B's shards from
  // the merged queue instead, so the composed makespan must be strictly
  // better, not just no worse.
  AmpedBuildOptions build;
  build.num_gpus = 4;
  build.shards_per_gpu = 4;
  std::vector<Workload> workloads;
  {
    Workload w;
    auto input = make_tensor(311, {64, 256, 256}, 60000, {1.3, 0.3, 0.3});
    Rng rng(312);
    w.factors = FactorSet(input.dims(), 16, rng);
    w.tensor = AmpedTensor::build(input, build);
    workloads.push_back(std::move(w));
  }
  {
    Workload w;
    auto input = make_tensor(313, {400, 300, 200}, 50000, {0.3, 0.3, 0.3});
    Rng rng(314);
    w.factors = FactorSet(input.dims(), 16, rng);
    w.tensor = AmpedTensor::build(input, build);
    workloads.push_back(std::move(w));
  }

  MttkrpOptions options;
  options.policy = SchedulingPolicy::kDynamicQueue;
  double solo_sum = 0.0;
  for (const auto& w : workloads) {
    auto platform = sim::make_default_platform(4, 1000.0);
    std::vector<DenseMatrix> out;
    solo_sum +=
        mttkrp_all_modes(platform, w.tensor, w.factors, out, options)
            .total_seconds;
  }
  std::vector<BatchWorkload> batch;
  for (const auto& w : workloads) batch.push_back({&w.tensor, &w.factors});
  auto platform = sim::make_default_platform(4, 1000.0);
  std::vector<std::vector<DenseMatrix>> batch_out;
  const auto report = mttkrp_batch(platform, batch, batch_out, options);
  EXPECT_LT(report.total_seconds, solo_sum)
      << "straggler fill-in should make composition strictly faster";

  // Numerics stay right even though dynamic placement interleaves.
  for (std::size_t i = 0; i < workloads.size(); ++i) {
    const auto refs = reference_mttkrp_all_modes(
        workloads[i].tensor.mode_copy(0).tensor, workloads[i].factors);
    for (std::size_t d = 0; d < refs.size(); ++d) {
      EXPECT_LT(relative_max_diff(refs[d], batch_out[i][d]), 5e-4)
          << "tensor " << i << " mode " << d;
    }
  }
}

TEST(PlanComposeTest, LookaheadBeatsDynamicOnTransferBoundHetero) {
  // A narrow host link makes every shard transfer-bound; plain dynamic
  // dispatch serialises H2D behind compute on the device clock, while the
  // look-ahead dispatcher streams shard i+1 during grid i. The acceptance
  // criterion: kDynamicLookahead strictly beats kDynamicQueue makespan.
  auto input = make_tensor(321, {512, 256, 256}, 60000);
  Rng rng(322);
  FactorSet factors(input.dims(), 8, rng);
  AmpedBuildOptions build;
  build.num_gpus = 4;
  auto tensor = AmpedTensor::build(input, build);

  auto make_platform = [] {
    sim::PlatformConfig cfg;
    cfg.num_gpus = 4;
    cfg.workload_scale = 1000.0;
    cfg.gpu_overrides = {sim::rtx6000_ada_spec(), sim::rtx6000_ada_spec(),
                         sim::rtx_a4000_spec(), sim::rtx_a4000_spec()};
    cfg.host_aggregate_bandwidth = 24e9;  // 6 GB/s per GPU: transfer-bound
    return sim::Platform(cfg);
  };

  auto run = [&](SchedulingPolicy policy) {
    auto platform = make_platform();
    MttkrpOptions options;
    options.policy = policy;
    std::vector<DenseMatrix> outputs;
    auto report = mttkrp_all_modes(platform, tensor, factors, outputs,
                                   options);
    return std::pair{report.total_seconds, std::move(outputs)};
  };
  const auto [dynamic_s, dynamic_out] = run(SchedulingPolicy::kDynamicQueue);
  const auto [lookahead_s, lookahead_out] =
      run(SchedulingPolicy::kDynamicLookahead);
  EXPECT_LT(lookahead_s, dynamic_s)
      << "look-ahead " << lookahead_s << " vs dynamic " << dynamic_s;

  const auto refs = reference_mttkrp_all_modes(input, factors);
  for (std::size_t d = 0; d < refs.size(); ++d) {
    EXPECT_LT(relative_max_diff(refs[d], lookahead_out[d]), 5e-4) << d;
  }
}

TEST(PlanComposeTest, OverlappingScopesKeepBarriers) {
  // Two plans writing the same output matrix cannot be proven disjoint:
  // compose() must keep every barrier (back-to-back semantics, zero
  // elision).
  auto input = make_tensor(331, {128, 64, 64}, 5000);
  Rng rng(332);
  FactorSet factors(input.dims(), 8, rng);
  AmpedBuildOptions build;
  build.num_gpus = 2;
  auto tensor = AmpedTensor::build(input, build);
  auto platform = sim::make_default_platform(2, 1000.0);

  MttkrpOptions options;
  DenseMatrix out(input.dim(0), 8);
  const exec::ModeLowerInput in{
      platform, tensor, 0, factors, out, options,
      resolve_mttkrp_profile(options, tensor, 0, platform, 8)};
  const auto scheduler = exec::make_scheduler(options);
  std::vector<exec::Plan> plans;
  plans.push_back(scheduler->lower(in));
  plans.push_back(scheduler->lower(in));

  exec::ComposeInfo info;
  auto composed = exec::compose(plans, &info);
  EXPECT_FALSE(info.disjoint);
  EXPECT_EQ(info.elided_barriers, 0u);
  std::size_t barriers = 0;
  for (const auto& t : composed.tasks) {
    if (t.kind == exec::TaskKind::kBarrier) ++barriers;
  }
  EXPECT_EQ(barriers, 2u) << "both epilogue barriers must survive";
  EXPECT_EQ(composed.num_scopes(), 2u);
}

TEST(PlanComposeTest, MixedDispatchDisciplinesThrow) {
  auto input = make_tensor(341, {128, 64, 64}, 5000);
  Rng rng(342);
  FactorSet factors(input.dims(), 8, rng);
  AmpedBuildOptions build;
  build.num_gpus = 2;
  auto tensor = AmpedTensor::build(input, build);
  auto platform = sim::make_default_platform(2, 1000.0);

  DenseMatrix out_a(input.dim(0), 8), out_b(input.dim(0), 8);
  MttkrpOptions static_opt;
  MttkrpOptions dynamic_opt;
  dynamic_opt.policy = SchedulingPolicy::kDynamicQueue;
  const exec::ModeLowerInput in_a{
      platform, tensor, 0, factors, out_a, static_opt,
      resolve_mttkrp_profile(static_opt, tensor, 0, platform, 8)};
  const exec::ModeLowerInput in_b{
      platform, tensor, 0, factors, out_b, dynamic_opt,
      resolve_mttkrp_profile(dynamic_opt, tensor, 0, platform, 8)};
  std::vector<exec::Plan> plans;
  plans.push_back(exec::make_scheduler(static_opt)->lower(in_a));
  plans.push_back(exec::make_scheduler(dynamic_opt)->lower(in_b));
  EXPECT_THROW(exec::compose(plans), std::invalid_argument);
  EXPECT_THROW(exec::compose({}), std::invalid_argument);
}

TEST(PlanComposeTest, SpilledShardsPriceFromPersistedRunStats) {
  // The run-stats segment written at spill time must make the cost-model
  // estimate of a spilled shard exactly equal to the resident estimate
  // (one scan of real structure, not the index-width guess).
  auto input = make_tensor(351, {512, 256, 256}, 20000);
  Rng rng(352);
  FactorSet factors(input.dims(), 16, rng);
  AmpedBuildOptions build;
  build.num_gpus = 4;
  auto resident = AmpedTensor::build(input, build);
  build.storage = BuildStorage::kSpilled;
  auto spilled = AmpedTensor::build(input, build);
  ASSERT_TRUE(spilled.spilled());
  ASSERT_FALSE(
      spilled.mode_copy(0).spill->shard_run_stats().empty());

  auto platform = hetero_platform(1.0);
  MttkrpOptions options;
  for (std::size_t d = 0; d < resident.num_modes(); ++d) {
    DenseMatrix out(input.dim(d), 16);
    const exec::ModeLowerInput in_res{
        platform, resident, d, factors, out, options,
        resolve_mttkrp_profile(options, resident, d, platform, 16)};
    const exec::ModeLowerInput in_spl{
        platform, spilled, d, factors, out, options,
        resolve_mttkrp_profile(options, spilled, d, platform, 16)};
    const auto& shards = resident.mode_copy(d).partition.shards;
    const auto& spl_shards = spilled.mode_copy(d).partition.shards;
    ASSERT_EQ(shards.size(), spl_shards.size());
    for (std::size_t s = 0; s < shards.size(); ++s) {
      for (int g = 0; g < platform.num_gpus(); ++g) {
        EXPECT_EQ(exec::estimate_shard_seconds(in_res, shards[s], g),
                  exec::estimate_shard_seconds(in_spl, spl_shards[s], g))
            << "mode " << d << " shard " << s << " gpu " << g;
      }
    }
  }
}

TEST(PlanComposeTest, BatchedSpilledWorkloadsStayBitIdentical) {
  // Composition must also hold when one workload streams from disk: mix a
  // resident tensor with a spilled one and demand solo-equal outputs.
  AmpedBuildOptions build;
  build.num_gpus = 2;
  std::vector<Workload> workloads;
  {
    Workload w;
    auto input = make_tensor(361, {256, 128, 128}, 20000);
    Rng rng(362);
    w.factors = FactorSet(input.dims(), 8, rng);
    w.tensor = AmpedTensor::build(input, build);
    workloads.push_back(std::move(w));
  }
  {
    Workload w;
    auto input = make_tensor(363, {200, 150, 100}, 15000);
    Rng rng(364);
    w.factors = FactorSet(input.dims(), 8, rng);
    AmpedBuildOptions spill = build;
    spill.storage = BuildStorage::kSpilled;
    w.tensor = AmpedTensor::build(input, spill);
    workloads.push_back(std::move(w));
  }
  ASSERT_TRUE(workloads[1].tensor.spilled());

  MttkrpOptions options;
  expect_batched_matches_solo(
      workloads, options, [] { return sim::make_default_platform(2, 1000.0); });
}

TEST(PlanComposeTest, CpdBatchBitIdenticalToSoloRuns) {
  // The full surface: batched ALS across two tensors must reproduce each
  // solo cp_als bit for bit — factors, lambdas, fits, iteration counts,
  // convergence — while running every mode update as one composed plan.
  auto workloads = make_workloads(4);
  CpdOptions options;
  options.rank = 8;
  options.max_iterations = 6;

  std::vector<CpdResult> solo;
  for (const auto& w : workloads) {
    auto platform = sim::make_default_platform(4, 1000.0);
    solo.push_back(cp_als(platform, w.tensor, options));
  }

  std::vector<const AmpedTensor*> tensors;
  for (const auto& w : workloads) tensors.push_back(&w.tensor);
  auto platform = sim::make_default_platform(4, 1000.0);
  BatchReport report;
  const auto batched = cpd_batch(platform, tensors, options, &report);

  ASSERT_EQ(batched.size(), solo.size());
  for (std::size_t i = 0; i < solo.size(); ++i) {
    EXPECT_EQ(batched[i].fit, solo[i].fit) << i;
    EXPECT_EQ(batched[i].iterations, solo[i].iterations) << i;
    EXPECT_EQ(batched[i].converged, solo[i].converged) << i;
    EXPECT_EQ(batched[i].lambda, solo[i].lambda) << i;
    EXPECT_EQ(batched[i].fit_history, solo[i].fit_history) << i;
    for (std::size_t d = 0; d < workloads[i].tensor.num_modes(); ++d) {
      expect_bit_identical(batched[i].factors.factor(d),
                           solo[i].factors.factor(d),
                           "tensor " + std::to_string(i) + " factor " +
                               std::to_string(d));
    }
  }
  EXPECT_GT(report.elided_barriers, 0u);
  EXPECT_FALSE(report.steps.empty());
}

}  // namespace
}  // namespace amped
