// The out-of-core acceptance property: a `--memory-budget`-constrained
// run spills AmpedTensor copies to disk, streams shards back during
// MTTKRP, keeps tracked host allocation under the budget — and produces
// bit-identical results to the fully resident path.
#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>

#include "core/cpd.hpp"
#include "core/mttkrp.hpp"
#include "io/mapped_tensor.hpp"
#include "io/memory_budget.hpp"
#include "io/snapshot.hpp"
#include "sim/platform.hpp"
#include "tensor/generator.hpp"
#include "util/cli.hpp"

namespace amped {
namespace {

CooTensor make_tensor() {
  GeneratorOptions opt;
  opt.dims = {200, 150, 100};
  opt.nnz = 5000;
  opt.zipf_exponents = {0.6, 0.6, 0.6};
  opt.seed = 42;
  return generate_random(opt);
}

// Sets the global budget limit for one test and restores "unlimited"
// afterwards, so suites stay order-independent.
class BudgetGuard {
 public:
  explicit BudgetGuard(std::uint64_t limit) {
    auto& b = io::HostMemoryBudget::global();
    b.set_limit(limit);
    b.reset_peak();
  }
  ~BudgetGuard() { io::HostMemoryBudget::global().set_limit(0); }
};

void expect_matrices_identical(const DenseMatrix& a, const DenseMatrix& b) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  ASSERT_EQ(0, std::memcmp(a.data().data(), b.data().data(),
                           a.rows() * a.cols() * sizeof(value_t)));
}

TEST(MemoryBudgetTest, ParseByteSize) {
  EXPECT_EQ(io::parse_byte_size("1024"), 1024u);
  EXPECT_EQ(io::parse_byte_size("64K"), 64u << 10);
  EXPECT_EQ(io::parse_byte_size("512M"), 512ull << 20);
  EXPECT_EQ(io::parse_byte_size("2G"), 2ull << 30);
  EXPECT_EQ(io::parse_byte_size("1T"), 1ull << 40);
  EXPECT_EQ(io::parse_byte_size("2GiB"), 2ull << 30);
  EXPECT_EQ(io::parse_byte_size("100KB"), 100ull << 10);
  EXPECT_EQ(io::parse_byte_size("7B"), 7u);
  EXPECT_EQ(io::parse_byte_size("0"), 0u);
  EXPECT_THROW(io::parse_byte_size(""), std::runtime_error);
  EXPECT_THROW(io::parse_byte_size("huge"), std::runtime_error);
  EXPECT_THROW(io::parse_byte_size("12X"), std::runtime_error);
  EXPECT_THROW(io::parse_byte_size("12Mx"), std::runtime_error);
  EXPECT_THROW(io::parse_byte_size("-512M"), std::runtime_error);
  EXPECT_THROW(io::parse_byte_size("20000000000T"), std::runtime_error);
}

TEST(MemoryBudgetTest, FormatBytes) {
  EXPECT_EQ(io::format_bytes(512), "512 B");
  EXPECT_EQ(io::format_bytes(1536), "1.5 KiB");
  EXPECT_EQ(io::format_bytes(3ull << 30), "3.0 GiB");
}

TEST(MemoryBudgetTest, AccountingTracksUseAndPeak) {
  BudgetGuard guard(1000);
  auto& b = io::HostMemoryBudget::global();
  EXPECT_EQ(b.limit(), 1000u);
  const auto base = b.in_use();
  {
    io::BudgetReservation r1(b, 400, "r1");
    EXPECT_EQ(b.in_use(), base + 400);
    {
      io::BudgetReservation r2(b, 500, "r2");
      EXPECT_EQ(b.in_use(), base + 900);
      EXPECT_THROW(io::BudgetReservation(b, 200, "r3"),
                   std::runtime_error);
    }
    EXPECT_EQ(b.in_use(), base + 400);
  }
  EXPECT_EQ(b.in_use(), base);
  EXPECT_GE(b.peak(), base + 900);
  EXPECT_EQ(b.remaining(), 1000 - base);
}

TEST(MemoryBudgetTest, ReservationMovesWithoutDoubleRelease) {
  BudgetGuard guard(1000);
  auto& b = io::HostMemoryBudget::global();
  const auto base = b.in_use();
  io::BudgetReservation outer;
  {
    io::BudgetReservation inner(b, 300, "inner");
    outer = std::move(inner);
  }
  EXPECT_EQ(b.in_use(), base + 300);
  outer.reset();
  EXPECT_EQ(b.in_use(), base);
  outer.reset();  // idempotent
  EXPECT_EQ(b.in_use(), base);
}

TEST(MemoryBudgetTest, MemoryBudgetFlagSetsGlobalLimit) {
  const char* argv[] = {"prog", "--memory-budget", "3M"};
  apply_common_flags(CliArgs(3, argv));
  EXPECT_EQ(io::HostMemoryBudget::global().limit(), 3ull << 20);
  io::HostMemoryBudget::global().set_limit(0);
}

TEST(MemoryBudgetTest, ForcedSpillBuildStreamsBitIdentically) {
  const auto input = make_tensor();
  AmpedBuildOptions resident_opt;
  resident_opt.storage = BuildStorage::kResident;
  AmpedBuildOptions spill_opt;
  spill_opt.storage = BuildStorage::kSpilled;

  PreprocessStats spill_stats;
  const auto resident = AmpedTensor::build(input, resident_opt);
  const auto spilled = AmpedTensor::build(input, spill_opt, &spill_stats);
  EXPECT_FALSE(resident.spilled());
  EXPECT_TRUE(spilled.spilled());
  EXPECT_TRUE(spill_stats.spilled);
  EXPECT_EQ(resident.total_bytes(), spilled.total_bytes());
  EXPECT_EQ(resident.values_norm_sq(), spilled.values_norm_sq());
  for (std::size_t d = 0; d < 3; ++d) {
    EXPECT_EQ(resident.mode_copy(d).partition.shards.size(),
              spilled.mode_copy(d).partition.shards.size());
  }

  // Every streaming flavour: sequential static, pipelined static, and
  // the dynamic queue must all read the same elements from disk.
  struct Config {
    SchedulingPolicy policy;
    bool pipelined;
  };
  const Config configs[] = {
      {SchedulingPolicy::kStaticGreedy, false},
      {SchedulingPolicy::kStaticGreedy, true},
      {SchedulingPolicy::kContiguous, false},
      {SchedulingPolicy::kDynamicQueue, false},
  };
  Rng rng(5);
  const FactorSet factors(input.dims(), 16, rng);
  for (const auto& config : configs) {
    MttkrpOptions options;
    options.policy = config.policy;
    options.pipelined_streaming = config.pipelined;
    auto p_resident = sim::make_default_platform(4);
    auto p_spilled = sim::make_default_platform(4);
    std::vector<DenseMatrix> out_resident, out_spilled;
    const auto report_resident = mttkrp_all_modes(
        p_resident, resident, factors, out_resident, options);
    const auto report_spilled = mttkrp_all_modes(
        p_spilled, spilled, factors, out_spilled, options);
    ASSERT_EQ(out_resident.size(), out_spilled.size());
    for (std::size_t d = 0; d < out_resident.size(); ++d) {
      expect_matrices_identical(out_resident[d], out_spilled[d]);
    }
    // Identical elements in identical order also means identical
    // simulated time, to the last bit.
    EXPECT_EQ(report_resident.total_seconds, report_spilled.total_seconds)
        << to_string(config.policy)
        << (config.pipelined ? "+pipelined" : "");
  }
}

TEST(MemoryBudgetTest, AutoBudgetedCpdIsBitIdenticalAndUnderBudget) {
  const auto input = make_tensor();
  const std::uint64_t copy_bytes = input.storage_bytes();

  // Resident reference run, unconstrained. Scoped so the resident
  // tensor's budget charge is released before the constrained phase.
  CpdOptions cpd;
  cpd.rank = 8;
  cpd.max_iterations = 5;
  cpd.tolerance = 0.0;  // fixed iteration count on both sides
  AmpedBuildOptions build_opt;
  const auto ref = [&] {
    const auto resident = AmpedTensor::build(input, build_opt);
    EXPECT_FALSE(resident.spilled());
    auto p_resident = sim::make_default_platform(4);
    return cp_als(p_resident, resident, cpd);
  }();

  // Budget below the 3-copy footprint but above one copy: the kAuto
  // build must spill, and every tracked allocation (one copy under
  // construction, stream buffers) must stay under the limit.
  const std::uint64_t limit = copy_bytes + copy_bytes / 2;
  ASSERT_LT(limit, 3 * copy_bytes);
  BudgetGuard guard(limit);
  auto& budget = io::HostMemoryBudget::global();

  PreprocessStats stats;
  const auto spilled = AmpedTensor::build(input, build_opt, &stats);
  EXPECT_TRUE(stats.spilled);
  ASSERT_TRUE(spilled.spilled());
  auto p_spilled = sim::make_default_platform(4);
  const auto constrained = cp_als(p_spilled, spilled, cpd);

  EXPECT_LE(budget.peak(), limit);
  EXPECT_GT(budget.peak(), 0u);

  // Bit-identical factors, weights, and fit trajectory.
  ASSERT_EQ(ref.iterations, constrained.iterations);
  EXPECT_EQ(ref.fit, constrained.fit);
  ASSERT_EQ(ref.lambda.size(), constrained.lambda.size());
  for (std::size_t c = 0; c < ref.lambda.size(); ++c) {
    EXPECT_EQ(ref.lambda[c], constrained.lambda[c]);
  }
  for (std::size_t d = 0; d < 3; ++d) {
    expect_matrices_identical(ref.factors.factor(d),
                              constrained.factors.factor(d));
  }
}

TEST(MemoryBudgetTest, BudgetSmallerThanOneCopyRejectsBuild) {
  const auto input = make_tensor();
  BudgetGuard guard(input.storage_bytes() / 2);
  EXPECT_THROW(AmpedTensor::build(input, AmpedBuildOptions{}),
               std::runtime_error);
}

TEST(MemoryBudgetTest, SpillFilesAreRemovedWithTheTensor) {
  namespace fs = std::filesystem;
  const auto dir = fs::temp_directory_path() / "amped_spill_cleanup_test";
  fs::create_directories(dir);
  {
    AmpedBuildOptions opt;
    opt.storage = BuildStorage::kSpilled;
    opt.spill_dir = dir.string();
    const auto t = AmpedTensor::build(make_tensor(), opt);
    EXPECT_TRUE(t.spilled());
    EXPECT_EQ(std::distance(fs::directory_iterator(dir),
                            fs::directory_iterator{}), 3);
  }
  EXPECT_TRUE(fs::is_empty(dir));
  fs::remove_all(dir);
}

TEST(MemoryBudgetTest, MappedInputBuildMatchesOwned) {
  namespace fs = std::filesystem;
  const auto input = make_tensor();
  const auto path =
      (fs::temp_directory_path() / "amped_budget_mapped.amptns").string();
  io::write_snapshot_file(input, path);
  io::MappedCooTensor mapped(path);

  const auto from_owned = AmpedTensor::build(input, AmpedBuildOptions{});
  const auto from_mapped = AmpedTensor::build(mapped, AmpedBuildOptions{});
  std::remove(path.c_str());

  ASSERT_EQ(from_owned.num_modes(), from_mapped.num_modes());
  EXPECT_EQ(from_owned.values_norm_sq(), from_mapped.values_norm_sq());
  for (std::size_t d = 0; d < from_owned.num_modes(); ++d) {
    const auto& a = from_owned.mode_copy(d).tensor;
    const auto& b = from_mapped.mode_copy(d).tensor;
    ASSERT_EQ(a.nnz(), b.nnz());
    for (std::size_t m = 0; m < a.num_modes(); ++m) {
      ASSERT_EQ(0, std::memcmp(a.indices(m).data(), b.indices(m).data(),
                               a.nnz() * sizeof(index_t)));
    }
    ASSERT_EQ(0, std::memcmp(a.values().data(), b.values().data(),
                             a.nnz() * sizeof(value_t)));
  }
}

}  // namespace
}  // namespace amped
