#include <gtest/gtest.h>

#include <array>

#include "core/ec_kernel.hpp"
#include "tensor/generator.hpp"
#include "tensor/reference_mttkrp.hpp"

namespace amped {
namespace {

CooTensor tiny_tensor(std::vector<index_t> dims,
                      std::vector<std::vector<index_t>> coords,
                      std::vector<value_t> vals) {
  CooTensor t(std::move(dims));
  for (std::size_t i = 0; i < vals.size(); ++i) {
    t.push_back(std::span<const index_t>(coords[i].data(),
                                         coords[i].size()),
                vals[i]);
  }
  return t;
}

TEST(EcKernelTest, AccumulatesIntoOutputRows) {
  auto t = tiny_tensor({3, 2, 2},
                       {{0, 0, 0}, {0, 1, 1}, {2, 0, 1}},
                       {1.0f, 2.0f, 3.0f});
  Rng rng(1);
  FactorSet f(t.dims(), 4, rng);
  DenseMatrix out(3, 4);
  auto stats = run_ec_block(t, 0, t.nnz(), 0, f, out);

  const auto ref = reference_mttkrp(t, f, 0);
  EXPECT_LT(relative_max_diff(ref, out), 1e-5);
  EXPECT_EQ(stats.nnz, 3u);
  EXPECT_EQ(stats.modes, 3u);
  EXPECT_EQ(stats.rank, 4u);
}

TEST(EcKernelTest, PartialRangeProcessesOnlyThatRange) {
  auto t = tiny_tensor({2, 2}, {{0, 0}, {1, 1}, {1, 0}},
                       {1.0f, 2.0f, 4.0f});
  Rng rng(2);
  FactorSet f(t.dims(), 2, rng);
  DenseMatrix out(2, 2);
  auto stats = run_ec_block(t, 1, 3, 0, f, out);
  EXPECT_EQ(stats.nnz, 2u);
  // Row 0 untouched: elements 1 and 2 have output index 1.
  EXPECT_FLOAT_EQ(out(0, 0), 0.0f);
  EXPECT_NE(out(1, 0), 0.0f);
}

TEST(EcKernelTest, RunStatsOnSortedData) {
  // Output indices: 0 0 0 1 1 2 -> 3 runs, max run 3, max mult 3.
  auto t = tiny_tensor(
      {3, 2},
      {{0, 0}, {0, 1}, {0, 0}, {1, 1}, {1, 0}, {2, 1}},
      {1, 1, 1, 1, 1, 1});
  Rng rng(3);
  FactorSet f(t.dims(), 2, rng);
  DenseMatrix out(3, 2);
  auto stats = run_ec_block(t, 0, t.nnz(), 0, f, out);
  EXPECT_EQ(stats.output_runs, 3u);
  EXPECT_EQ(stats.max_run, 3u);
  EXPECT_EQ(stats.max_multiplicity, 3u);
}

TEST(EcKernelTest, RunStatsOnScatteredHotRow) {
  // Output indices: 0 1 0 1 0 -> 5 runs, max run 1, max multiplicity 3.
  auto t = tiny_tensor(
      {2, 2},
      {{0, 0}, {1, 0}, {0, 1}, {1, 1}, {0, 0}},
      {1, 1, 1, 1, 1});
  Rng rng(4);
  FactorSet f(t.dims(), 2, rng);
  DenseMatrix out(2, 2);
  auto stats = run_ec_block(t, 0, t.nnz(), 0, f, out);
  EXPECT_EQ(stats.output_runs, 5u);
  EXPECT_EQ(stats.max_run, 1u);
  EXPECT_EQ(stats.max_multiplicity, 3u);
}

TEST(EcKernelTest, EmptyRange) {
  auto t = tiny_tensor({2, 2}, {{0, 0}}, {1.0f});
  Rng rng(5);
  FactorSet f(t.dims(), 2, rng);
  DenseMatrix out(2, 2);
  auto stats = run_ec_block(t, 1, 1, 0, f, out);
  EXPECT_EQ(stats.nnz, 0u);
  EXPECT_DOUBLE_EQ(out.frob_sq(), 0.0);
}

TEST(EcKernelTest, RankZeroThrowsInvalidArgument) {
  auto t = tiny_tensor({2, 2}, {{0, 0}}, {1.0f});
  Rng rng(11);
  FactorSet f(t.dims(), 0, rng);
  DenseMatrix out(2, 0);
  EXPECT_THROW(run_ec_block(t, 0, t.nnz(), 0, f, out),
               std::invalid_argument);
  EXPECT_THROW(run_ec_block_generic(t, 0, t.nnz(), 0, f, out),
               std::invalid_argument);
  EXPECT_THROW(KernelShape::of(2, 0, BlockOrder::kUnsorted),
               std::invalid_argument);
}

// The historical register-buffer ceiling (kMaxRank = 256, asserted in
// debug and stack-corrupting in release past rank 64 originally, past 256
// later) is gone: the tile decomposition serves any rank, and the generic
// reference falls back to heap scratch above its stack bound.
TEST(EcKernelTest, RanksBeyondOldCeilingMatchReference) {
  GeneratorOptions opt;
  opt.dims = {48, 24, 16};
  opt.nnz = 600;
  opt.zipf_exponents = {0.8, 0.0, 0.3};
  opt.seed = 12;
  auto t = generate_random(opt);
  for (const std::size_t rank : {std::size_t{65}, std::size_t{257},
                                 std::size_t{300}}) {
    Rng rng(13);
    FactorSet f(t.dims(), rank, rng);
    DenseMatrix out(48, rank);
    auto stats = run_ec_block(t, 0, t.nnz(), 0, f, out);
    EXPECT_EQ(stats.rank, rank);
    const auto ref = reference_mttkrp(t, f, 0);
    EXPECT_LT(relative_max_diff(ref, out), 1e-4) << "rank " << rank;
  }
}

TEST(RunStatsAccumulatorTest, MatchesRunEcBlockStats) {
  GeneratorOptions opt;
  opt.dims = {64, 64, 64};
  opt.nnz = 2000;
  opt.zipf_exponents = {1.0, 0.0, 0.0};
  opt.seed = 6;
  auto t = generate_random(opt);
  t.sort_by_mode(0);
  Rng rng(7);
  FactorSet f(t.dims(), 4, rng);
  DenseMatrix out(64, 4);
  auto direct = run_ec_block(t, 0, t.nnz(), 0, f, out);

  RunStatsAccumulator acc;
  for (nnz_t n = 0; n < t.nnz(); ++n) acc.feed(t.indices(0)[n]);
  auto via_acc = acc.finish(3, 4, 32);

  EXPECT_EQ(via_acc.nnz, direct.nnz);
  EXPECT_EQ(via_acc.output_runs, direct.output_runs);
  EXPECT_EQ(via_acc.max_run, direct.max_run);
  EXPECT_EQ(via_acc.max_multiplicity, direct.max_multiplicity);
}

TEST(RunStatsAccumulatorTest, ShapeCtorBindsGeometry) {
  const auto shape = KernelShape::of(3, 48, BlockOrder::kOutputSorted);
  RunStatsAccumulator acc(shape);
  acc.feed(1);
  acc.feed(1);
  acc.feed(2);
  auto s = acc.finish(32);
  EXPECT_EQ(s.modes, 3u);
  EXPECT_EQ(s.rank, 48u);
  EXPECT_EQ(s.block_width, 32u);
  EXPECT_EQ(s.max_run, 2u);
  EXPECT_EQ(s.max_multiplicity, 2u);  // kOutputSorted: mult == max_run
}

TEST(RunStatsAccumulatorTest, FinishResetsForReuse) {
  RunStatsAccumulator acc;
  acc.feed(1);
  acc.feed(1);
  auto first = acc.finish(3, 8, 32);
  EXPECT_EQ(first.nnz, 2u);
  EXPECT_EQ(first.max_run, 2u);

  acc.feed(5);
  auto second = acc.finish(3, 8, 32);
  EXPECT_EQ(second.nnz, 1u);
  EXPECT_EQ(second.max_run, 1u);
  EXPECT_EQ(second.max_multiplicity, 1u);
}

// Property sweep: for any skew, the accumulator invariants hold:
// runs <= nnz, max_run <= max_multiplicity <= nnz, and the sum of all
// per-block nnz equals the total.
class RunStatsProperty : public ::testing::TestWithParam<double> {};

TEST_P(RunStatsProperty, Invariants) {
  GeneratorOptions opt;
  opt.dims = {128, 32};
  opt.nnz = 5000;
  opt.zipf_exponents = {GetParam(), 0.0};
  opt.seed = 8;
  auto t = generate_random(opt);
  t.sort_by_mode(0);
  Rng rng(9);
  FactorSet f(t.dims(), 2, rng);
  DenseMatrix out(128, 2);

  nnz_t covered = 0;
  for (nnz_t lo = 0; lo < t.nnz(); lo += 997) {
    const nnz_t hi = std::min<nnz_t>(t.nnz(), lo + 997);
    auto s = run_ec_block(t, lo, hi, 0, f, out);
    EXPECT_LE(s.output_runs, s.nnz);
    EXPECT_GE(s.max_multiplicity, s.max_run);
    EXPECT_LE(s.max_multiplicity, s.nnz);
    // Sorted data: the hot row is contiguous, so run == multiplicity.
    EXPECT_EQ(s.max_run, s.max_multiplicity);
    covered += s.nnz;
  }
  EXPECT_EQ(covered, t.nnz());
}

INSTANTIATE_TEST_SUITE_P(SkewSweep, RunStatsProperty,
                         ::testing::Values(0.0, 0.5, 1.0, 1.5));

}  // namespace
}  // namespace amped
