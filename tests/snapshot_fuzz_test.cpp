// Fuzz-style robustness tests for the snapshot v2 reader: every header
// and segment-table byte of a valid .amptns file is bit-flipped, payload
// and checksum regions are corrupted, and the file is truncated at every
// interesting boundary. The contract under attack is "clean error, never
// a crash": read_snapshot_file either succeeds (a flip in a reserved or
// redundant byte may be harmless) or throws std::runtime_error — it must
// never segfault, overflow, or read out of bounds. The ASan CI preset
// runs this suite, which is what turns "no crash observed" into "no UB
// observed".
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "io/snapshot.hpp"
#include "tensor/generator.hpp"

namespace amped {
namespace {

namespace fs = std::filesystem;

class SnapshotFuzzTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("amped_fuzz_" + std::to_string(::getpid()));
    fs::create_directories(dir_);

    GeneratorOptions opt;
    opt.dims = {48, 32, 24};
    opt.nnz = 500;
    opt.zipf_exponents = {0.5, 0.5, 0.5};
    opt.seed = 99;
    auto tensor = generate_random(opt);
    tensor.sort_by_mode(0);

    // Include the optional run-stats segment so its parsing is attacked
    // too.
    std::vector<io::ShardRunStatsRecord> stats = {
        {0, 250, 40, 10}, {250, 500, 35, 12}};
    valid_path_ = (dir_ / "valid.amptns").string();
    io::write_snapshot_file(tensor, valid_path_, stats);

    std::ifstream in(valid_path_, std::ios::binary);
    ASSERT_TRUE(in.good());
    valid_bytes_.assign(std::istreambuf_iterator<char>(in),
                        std::istreambuf_iterator<char>());
    ASSERT_GT(valid_bytes_.size(), 64u);
  }

  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  std::string write_corrupted(const std::vector<char>& bytes) const {
    const std::string path = (dir_ / "corrupt.amptns").string();
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    return path;
  }

  // The property under test: the reader finishes — success or a typed
  // error — and never escapes with a crash, UB, or a foreign exception.
  // Returns true when the file was rejected.
  static bool read_survives(const std::string& path, const std::string& what) {
    try {
      const CooTensor t = io::read_snapshot_file(path);
      // A successful read must at least be self-consistent.
      EXPECT_TRUE(t.num_modes() == 0 || t.indices_in_bounds()) << what;
      return false;
    } catch (const std::runtime_error&) {
      return true;  // the clean error the contract promises
    } catch (const std::exception& e) {
      ADD_FAILURE() << what << ": non-runtime_error exception: " << e.what();
      return true;
    }
  }

  fs::path dir_;
  std::string valid_path_;
  std::vector<char> valid_bytes_;
};

TEST_F(SnapshotFuzzTest, ValidFileRoundTrips) {
  const CooTensor t = io::read_snapshot_file(valid_path_);
  EXPECT_EQ(t.nnz(), 500u);
  EXPECT_EQ(t.num_modes(), 3u);
}

TEST_F(SnapshotFuzzTest, EveryHeaderBitFlipIsHandled) {
  // All 512 single-bit corruptions of the 64-byte header.
  for (std::size_t byte = 0; byte < 64; ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      auto bytes = valid_bytes_;
      bytes[byte] = static_cast<char>(bytes[byte] ^ (1 << bit));
      read_survives(write_corrupted(bytes),
                    "header byte " + std::to_string(byte) + " bit " +
                        std::to_string(bit));
    }
  }
}

TEST_F(SnapshotFuzzTest, EverySegmentTableBitFlipIsRejected) {
  const auto layout = io::inspect_snapshot(valid_path_);
  const std::size_t table_bytes = layout.segments.size() * 40;
  ASSERT_EQ(layout.segments.size(), 6u);  // dims + 3 indices + values + stats
  for (std::size_t byte = 64; byte < 64 + table_bytes; ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      auto bytes = valid_bytes_;
      bytes[byte] = static_cast<char>(bytes[byte] ^ (1 << bit));
      // The table is covered end-to-end by the header's table checksum,
      // so every single-bit flip must be rejected, reserved bytes
      // included.
      EXPECT_TRUE(read_survives(
          write_corrupted(bytes),
          "table byte " + std::to_string(byte) + " bit " +
              std::to_string(bit)))
          << "segment-table flip at byte " << byte << " bit " << bit
          << " was not detected";
    }
  }
}

TEST_F(SnapshotFuzzTest, PayloadCorruptionIsRejectedByChecksums) {
  // Flip a bit at the start, middle, and end of every segment payload:
  // each must trip that segment's checksum.
  const auto layout = io::inspect_snapshot(valid_path_);
  for (std::size_t s = 0; s < layout.segments.size(); ++s) {
    const auto& seg = layout.segments[s];
    if (seg.bytes == 0) continue;
    for (std::uint64_t rel : {std::uint64_t{0}, seg.bytes / 2,
                              seg.bytes - 1}) {
      auto bytes = valid_bytes_;
      const std::size_t pos = static_cast<std::size_t>(seg.offset + rel);
      ASSERT_LT(pos, bytes.size());
      bytes[pos] = static_cast<char>(bytes[pos] ^ 0x40);
      EXPECT_TRUE(read_survives(write_corrupted(bytes),
                                "segment " + std::to_string(s) + " offset " +
                                    std::to_string(rel)))
          << "payload corruption in segment " << s << " at +" << rel
          << " was not detected";
    }
  }
}

TEST_F(SnapshotFuzzTest, TruncationAtEveryBoundaryIsRejected) {
  std::vector<std::size_t> lengths = {0, 1, 7, 8, 63, 64, 65};
  const auto layout = io::inspect_snapshot(valid_path_);
  for (const auto& seg : layout.segments) {
    lengths.push_back(static_cast<std::size_t>(seg.offset));
    lengths.push_back(static_cast<std::size_t>(seg.offset + 1));
    if (seg.bytes > 0) {
      lengths.push_back(static_cast<std::size_t>(seg.offset + seg.bytes - 1));
    }
  }
  lengths.push_back(valid_bytes_.size() - 1);
  for (std::size_t len : lengths) {
    if (len >= valid_bytes_.size()) continue;
    auto bytes = valid_bytes_;
    bytes.resize(len);
    EXPECT_TRUE(read_survives(write_corrupted(bytes),
                              "truncated to " + std::to_string(len)))
        << "truncation to " << len << " bytes was not detected";
  }
}

TEST_F(SnapshotFuzzTest, GrowingGarbageTailIsHandled) {
  // Trailing garbage after the last segment: the reader may ignore or
  // reject it, but must not misparse.
  auto bytes = valid_bytes_;
  bytes.insert(bytes.end(), 256, static_cast<char>(0xAB));
  read_survives(write_corrupted(bytes), "garbage tail");
}

TEST_F(SnapshotFuzzTest, AdversarialHeaderFieldValues) {
  // Targeted overwrites of whole header fields with hostile values:
  // extreme counts and offsets whose byte products overflow u64 or point
  // far outside the file.
  struct Case {
    std::size_t offset;  // header field position
    std::uint64_t value;
  };
  const Case cases[] = {
      {8, 0},                     // num_modes = 0
      {8, UINT64_MAX},            // num_modes astronomical
      {8, 1u << 20},              // num_modes large but plausible-ish
      {16, UINT64_MAX},           // nnz overflows any size computation
      {16, UINT64_MAX / 4},       // nnz * 4 overflows
      {24, 0},                    // no segments
      {24, UINT64_MAX},           // segment count overflows table size
      {24, 1u << 24},             // table larger than the file
      {32, 0},                    // table at offset 0 (inside header)
      {32, UINT64_MAX},           // table offset out of range
      {32, UINT64_MAX - 39},      // offset + entry size wraps
  };
  for (const auto& c : cases) {
    auto bytes = valid_bytes_;
    for (std::size_t i = 0; i < 8; ++i) {
      bytes[c.offset + i] = static_cast<char>((c.value >> (8 * i)) & 0xFF);
    }
    read_survives(write_corrupted(bytes),
                  "field@" + std::to_string(c.offset) + "=" +
                      std::to_string(c.value));
  }
}

TEST_F(SnapshotFuzzTest, AdversarialSegmentEntryValues) {
  // Hostile segment-table entries with the table checksum recomputed so
  // the entry itself is what the reader must survive (the previous tests
  // prove a *stale* checksum is caught; this one proves a *consistent*
  // but malicious table cannot cause UB either).
  const auto layout = io::inspect_snapshot(valid_path_);
  const std::size_t table_off = 64;
  const std::size_t entry_bytes = 40;
  const std::size_t table_bytes = layout.segments.size() * entry_bytes;
  struct Case {
    std::size_t entry;
    std::size_t field_off;  // within the entry
    std::uint64_t value;
    std::size_t field_size;
  };
  const Case cases[] = {
      {0, 0, 7, 4},                    // unknown segment kind
      {1, 4, 1u << 20, 4},             // indices segment for absurd mode
      {0, 8, UINT64_MAX, 8},           // offset out of file
      {0, 8, UINT64_MAX - 8, 8},       // offset + bytes wraps
      {0, 16, UINT64_MAX, 8},          // bytes out of file
      {2, 16, 3, 8},                   // bytes not a multiple of the type
      {0, 8, 1, 8},                    // misaligned offset
  };
  for (const auto& c : cases) {
    auto bytes = valid_bytes_;
    const std::size_t pos = table_off + c.entry * entry_bytes + c.field_off;
    for (std::size_t i = 0; i < c.field_size; ++i) {
      bytes[pos + i] = static_cast<char>((c.value >> (8 * i)) & 0xFF);
    }
    // Recompute the header's table checksum over the altered table.
    const std::uint64_t sum =
        io::checksum64(bytes.data() + table_off, table_bytes);
    for (std::size_t i = 0; i < 8; ++i) {
      bytes[40 + i] = static_cast<char>((sum >> (8 * i)) & 0xFF);
    }
    EXPECT_TRUE(read_survives(write_corrupted(bytes),
                              "entry " + std::to_string(c.entry) + " field+" +
                                  std::to_string(c.field_off)))
        << "malicious entry " << c.entry << " field+" << c.field_off
        << " value " << c.value << " was accepted";
  }
}

}  // namespace
}  // namespace amped
