// End-to-end observability of the host-parallel backend: the wall-clock
// trace it records must cover every kernel task of the plan, present one
// Chrome-trace row per lane/copy-engine thread, and carry the exact same
// kernel labels as the simulator's trace of the same plan — the contract
// that lets a sim timeline and a host timeline render side-by-side in
// Perfetto. Also covers the capacity-overflow surfacing (dropped events
// land in the export instead of silently truncating).
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "core/amped_tensor.hpp"
#include "core/mttkrp.hpp"
#include "exec/backend.hpp"
#include "exec/plan.hpp"
#include "exec/scheduler.hpp"
#include "sim/trace.hpp"
#include "tensor/generator.hpp"
#include "util/thread_pool.hpp"

namespace amped {
namespace {

class HostParallelismEnv : public ::testing::Environment {
 public:
  void SetUp() override { set_host_parallelism(4); }
  void TearDown() override { set_host_parallelism(0); }
};
const auto* const kEnv =
    ::testing::AddGlobalTestEnvironment(new HostParallelismEnv);

AmpedTensor make_test_tensor(int gpus) {
  GeneratorOptions opt;
  opt.dims = {256, 192, 128};
  opt.nnz = 20000;
  opt.zipf_exponents = {0.8, 0.5, 0.5};
  opt.seed = 901;
  AmpedBuildOptions build;
  build.num_gpus = gpus;
  return AmpedTensor::build(generate_random(opt), build);
}

// Lowers mode 0 under `options` and runs it on the requested backend
// with `trace` attached, so tests can compare the trace against the
// plan's actual task list.
exec::Plan run_traced(const AmpedTensor& tensor, const FactorSet& factors,
                      MttkrpOptions options, exec::ExecBackend backend,
                      sim::TraceLog* trace, int gpus) {
  auto platform = sim::make_default_platform(gpus, 1000.0);
  platform.attach_trace(trace);
  DenseMatrix out(tensor.dims()[0], factors.rank());
  out.set_zero();
  options.backend = backend;
  const exec::ModeLowerInput input{
      platform, tensor, 0, factors, out, options,
      resolve_mttkrp_profile(options, tensor, 0, platform, factors.rank())};
  exec::Plan plan = exec::make_scheduler(options)->lower(input);
  exec::PlanExecutor executor(platform, backend);
  executor.run(plan);
  return plan;
}

std::multiset<std::string> kernel_labels(const sim::TraceLog& trace,
                                         int device) {
  std::multiset<std::string> labels;
  for (const auto& e : trace.events()) {
    if (e.phase == sim::Phase::kCompute && e.device == device) {
      labels.insert(e.label);
    }
  }
  return labels;
}

TEST(ObservabilityTest, HostTraceCoversEveryKernelTask) {
  const int gpus = 2;
  auto tensor = make_test_tensor(gpus);
  Rng rng(902);
  FactorSet factors(tensor.dims(), 8, rng);

  for (auto policy :
       {SchedulingPolicy::kStaticGreedy, SchedulingPolicy::kDynamicQueue}) {
    sim::TraceLog trace;
    MttkrpOptions options;
    options.policy = policy;
    const auto plan = run_traced(tensor, factors, options,
                                 exec::ExecBackend::kHostParallel, &trace,
                                 gpus);
    std::size_t kernel_tasks = 0;
    for (const auto& t : plan.tasks) {
      if (t.kind == exec::TaskKind::kKernel) ++kernel_tasks;
    }
    ASSERT_GT(kernel_tasks, 0u);
    std::size_t compute_events = 0;
    for (const auto& e : trace.events()) {
      if (e.phase == sim::Phase::kCompute && e.device >= 0) {
        ++compute_events;
        // Wall-clock sanity: measured on a real thread, so the event
        // sits at a non-negative offset with a real duration.
        EXPECT_GE(e.start_s, 0.0);
        EXPECT_GT(e.duration_s, 0.0);
        EXPECT_LE(e.start_s + e.duration_s, trace.host_now() + 1e-6);
      }
    }
    EXPECT_EQ(compute_events, kernel_tasks) << to_string(policy);
    EXPECT_EQ(trace.dropped(), 0u);
  }
}

TEST(ObservabilityTest, HostTraceHasOneRowPerLaneThread) {
  const int gpus = 2;
  auto tensor = make_test_tensor(gpus);
  Rng rng(903);
  FactorSet factors(tensor.dims(), 8, rng);

  // Pipelined lanes split work across a compute thread and a copy
  // thread per GPU; the export must name one row for each.
  sim::TraceLog trace;
  MttkrpOptions options;
  options.pipelined_streaming = true;
  run_traced(tensor, factors, options, exec::ExecBackend::kHostParallel,
             &trace, gpus);

  std::ostringstream out;
  trace.write_chrome_json(out);
  const std::string json = out.str();
  for (int g = 0; g < gpus; ++g) {
    const std::string row = "\"name\":\"gpu" + std::to_string(g) + "\"";
    EXPECT_NE(json.find(row), std::string::npos) << "missing row gpu" << g;
  }
  // At least one copy-engine row: pipelined fetch/h2d run on engine 1.
  EXPECT_NE(json.find("\"name\":\"gpu0 copy\""), std::string::npos);
  // Barriers/all-gathers run on the coordinating host thread.
  EXPECT_NE(json.find("\"name\":\"host\""), std::string::npos);
  EXPECT_NE(json.find("\"dropped_events\":0"), std::string::npos);
}

TEST(ObservabilityTest, SimAndHostKernelLabelsMatchPerDevice) {
  const int gpus = 2;
  auto tensor = make_test_tensor(gpus);
  Rng rng(904);
  FactorSet factors(tensor.dims(), 8, rng);

  // Static assignment pins every kernel to the same device under both
  // backends, so the per-device label multisets must match exactly —
  // the "same rows, same labels" side-by-side contract.
  sim::TraceLog sim_trace, host_trace;
  MttkrpOptions options;
  run_traced(tensor, factors, options, exec::ExecBackend::kSimulated,
             &sim_trace, gpus);
  run_traced(tensor, factors, options, exec::ExecBackend::kHostParallel,
             &host_trace, gpus);

  for (int g = 0; g < gpus; ++g) {
    const auto sim_labels = kernel_labels(sim_trace, g);
    const auto host_labels = kernel_labels(host_trace, g);
    EXPECT_EQ(sim_labels, host_labels) << "device " << g;
    EXPECT_FALSE(host_labels.empty()) << "device " << g;
    for (const auto& label : host_labels) {
      EXPECT_EQ(label.rfind("grid mode", 0), 0u) << label;
    }
  }
}

TEST(ObservabilityTest, CapacityOverflowIsSurfacedInExport) {
  const int gpus = 2;
  auto tensor = make_test_tensor(gpus);
  Rng rng(905);
  FactorSet factors(tensor.dims(), 8, rng);

  // A 4-event log cannot hold a whole plan: the overflow must be
  // counted and exported, not silently truncated.
  sim::TraceLog trace(4);
  MttkrpOptions options;
  run_traced(tensor, factors, options, exec::ExecBackend::kHostParallel,
             &trace, gpus);
  EXPECT_EQ(trace.events().size(), 4u);
  EXPECT_GT(trace.dropped(), 0u);

  std::ostringstream out;
  trace.write_chrome_json(out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"dropped_events\":" +
                      std::to_string(trace.dropped())),
            std::string::npos);
}

}  // namespace
}  // namespace amped
