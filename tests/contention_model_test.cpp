// Fluid host-link contention model (sim/fluid_link.hpp and the
// lane-aware Platform::h2d_seconds overload): single-streamer reduction
// to the uncontended lane rate, full-occupancy reduction to the legacy
// static share, bandwidth conservation under full overlap, and the
// staggered two-flow example worked through in docs/SCHEDULING.md.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>

#include "sim/fluid_link.hpp"
#include "sim/interconnect.hpp"
#include "sim/platform.hpp"

namespace amped::sim {
namespace {

TEST(FluidHostLinkTest, RateReducesToLaneAndStaticShare) {
  // Defaults of the paper platform: 50 GB/s lanes, 160 GB/s aggregate.
  FluidHostLink link(50e9, 160e9);
  EXPECT_DOUBLE_EQ(link.rate(1), 50e9);  // one lane: uncontended
  EXPECT_DOUBLE_EQ(link.rate(2), 50e9);  // 160/2 = 80 > lane cap
  EXPECT_DOUBLE_EQ(link.rate(3), 50e9);  // 160/3 = 53.3 > lane cap
  EXPECT_DOUBLE_EQ(link.rate(4), 40e9);  // saturated: the static share
}

TEST(FluidHostLinkTest, ConservationUnderFullOverlap) {
  // Four equal flows admitted together drain together, and total bytes
  // over total time is exactly the aggregate bandwidth — the fluid model
  // never creates or destroys link capacity.
  FluidHostLink link(50e9, 160e9);
  const std::uint64_t bytes = 1'000'000'000;
  std::size_t ids[4];
  for (auto& id : ids) id = link.admit(0.0, bytes);
  double finish = 0.0;
  for (std::size_t id : ids) finish = std::max(finish, link.completion(id));
  const double expected = static_cast<double>(bytes) / 40e9;
  EXPECT_NEAR(finish, expected, 1e-12);
  EXPECT_NEAR(4.0 * static_cast<double>(bytes) / finish, 160e9, 1.0);
  for (std::size_t id : ids) {
    EXPECT_NEAR(link.completion(id), finish, 1e-12);
  }
}

TEST(FluidHostLinkTest, StaggeredTwoFlowWorkedExample) {
  // The 2-GPU example of docs/SCHEDULING.md: 50 GB/s lanes, 80 GB/s
  // aggregate. Flow A (100 GB) starts at t=0; flow B (20 GB) at t=1.
  //   [0, 1):    A alone at 50 GB/s       -> A has 50 GB left at t=1
  //   [1, 1.5):  both at 80/2 = 40 GB/s   -> B's 20 GB done at t=1.5
  //   [1.5, 2.1): A alone again at 50 GB/s -> 30 GB left takes 0.6 s
  FluidHostLink link(50e9, 80e9);
  const std::size_t a = link.admit(0.0, 100'000'000'000ull);
  // Before B arrives the projection assumes A keeps the lane to itself.
  EXPECT_NEAR(link.completion(a), 2.0, 1e-12);
  const std::size_t b = link.admit(1.0, 20'000'000'000ull);
  EXPECT_NEAR(link.completion(b), 1.5, 1e-12);
  // The late admission retroactively slows the in-flight flow.
  EXPECT_NEAR(link.completion(a), 2.1, 1e-12);
}

TEST(FluidHostLinkTest, AdmissionsClampToLinkTime) {
  // Out-of-order presentation cannot rewind the link: an admission with
  // an earlier timestamp starts at now().
  FluidHostLink link(50e9, 80e9);
  link.admit(2.0, 1'000'000'000);
  const std::size_t late = link.admit(0.5, 1'000'000'000);
  EXPECT_GE(link.completion(late), 2.0);
  EXPECT_DOUBLE_EQ(link.now(), 2.0);
}

TEST(PlatformFluidTest, FullOccupancyEqualsLegacyStaticShare) {
  PlatformConfig cfg;
  cfg.num_gpus = 4;
  Platform platform(cfg);
  const std::uint64_t bytes = 100'000'000;
  // All M lanes streaming is precisely the legacy static model; more
  // claimed lanes than GPUs clamps.
  EXPECT_DOUBLE_EQ(platform.h2d_seconds(bytes, 4),
                   platform.h2d_seconds(bytes));
  EXPECT_DOUBLE_EQ(platform.h2d_seconds(bytes, 9),
                   platform.h2d_seconds(bytes));
  // Non-positive lane counts are the explicit legacy spelling.
  EXPECT_DOUBLE_EQ(platform.h2d_seconds(bytes, -1),
                   platform.h2d_seconds(bytes));
}

TEST(PlatformFluidTest, SingleLaneRunsAtUncontendedRate) {
  PlatformConfig cfg;
  cfg.num_gpus = 4;
  Platform platform(cfg);
  const std::uint64_t bytes = 100'000'000;
  EXPECT_DOUBLE_EQ(
      platform.h2d_seconds(bytes, 1),
      transfer_seconds(cfg.host_link, bytes, platform.fixed_cost_divisor()));
  // One streamer is strictly cheaper than the saturated static price
  // whenever the aggregate constraint binds at M lanes.
  EXPECT_LT(platform.h2d_seconds(bytes, 1), platform.h2d_seconds(bytes));
  // Monotone in contention.
  EXPECT_LE(platform.h2d_seconds(bytes, 2), platform.h2d_seconds(bytes, 3));
  EXPECT_LE(platform.h2d_seconds(bytes, 3), platform.h2d_seconds(bytes, 4));
}

TEST(PlatformFluidTest, NoAggregateLimitMeansNoContention) {
  PlatformConfig cfg;
  cfg.num_gpus = 4;
  cfg.host_aggregate_bandwidth = 0.0;  // modelled as unlimited
  Platform platform(cfg);
  const std::uint64_t bytes = 100'000'000;
  EXPECT_DOUBLE_EQ(platform.h2d_seconds(bytes, 3),
                   platform.h2d_seconds(bytes, 1));
  EXPECT_DOUBLE_EQ(platform.h2d_seconds(bytes),
                   platform.h2d_seconds(bytes, 1));
}

}  // namespace
}  // namespace amped::sim
