#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

#include "core/amped_tensor.hpp"
#include "core/mttkrp.hpp"
#include "sim/platform.hpp"
#include "tensor/generator.hpp"
#include "util/thread_pool.hpp"

namespace amped {
namespace {

// Restores the default pool configuration however a test exits.
class ScopedHostParallelism {
 public:
  explicit ScopedHostParallelism(std::size_t n) { set_host_parallelism(n); }
  ~ScopedHostParallelism() { set_host_parallelism(0); }
};

TEST(ThreadPoolStressTest, ConcurrentSubmittersAllTasksRun) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  constexpr int kSubmitters = 8;
  constexpr int kTasksPer = 250;
  std::vector<std::thread> submitters;
  submitters.reserve(kSubmitters);
  for (int s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&pool, &counter] {
      for (int i = 0; i < kTasksPer; ++i) {
        pool.submit([&counter] {
          counter.fetch_add(1, std::memory_order_relaxed);
        });
      }
    });
  }
  for (auto& t : submitters) t.join();
  pool.wait_idle();
  EXPECT_EQ(counter.load(), kSubmitters * kTasksPer);
}

TEST(ThreadPoolStressTest, NestedParallelForRunsInlineWithoutDeadlock) {
  ThreadPool pool(4);
  std::atomic<int> inner_total{0};
  pool.parallel_for(8, [&](std::size_t) {
    // A nested parallel_for on the same pool must not wait on the queue
    // (the outer task is in flight, so wait_idle would never return).
    pool.parallel_for(100, [&](std::size_t) {
      inner_total.fetch_add(1, std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(inner_total.load(), 8 * 100);
}

TEST(ThreadPoolStressTest, DestructorDrainsQueuedTasks) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 500; ++i) {
      pool.submit([&counter] {
        counter.fetch_add(1, std::memory_order_relaxed);
      });
    }
    // No wait_idle: shutdown itself must finish every queued task without
    // throwing or losing work.
  }
  EXPECT_EQ(counter.load(), 500);
}

TEST(GlobalThreadPoolTest, OverrideControlsPoolSize) {
  ScopedHostParallelism scoped(3);
  EXPECT_EQ(host_parallelism(), 3u);
  EXPECT_EQ(global_thread_pool().size(), 3u);
}

// Parallel static-policy MTTKRP must be bit-identical to a serial run:
// GPUs own disjoint output rows and each GPU's element order is unchanged,
// so not a single rounding difference is tolerated.
class ParallelDeterminism
    : public ::testing::TestWithParam<SchedulingPolicy> {};

TEST_P(ParallelDeterminism, AllModesBitIdenticalToSerial) {
  GeneratorOptions gen;
  gen.dims = {96, 64, 48};
  gen.nnz = 6000;
  gen.zipf_exponents = {0.8, 0.0, 0.4};
  gen.seed = 11;
  const auto t = generate_random(gen);
  Rng rng(12);
  const FactorSet factors(t.dims(), 16, rng);

  AmpedBuildOptions build;
  build.num_gpus = 4;
  MttkrpOptions options;
  options.policy = GetParam();

  auto run = [&](std::size_t threads) {
    set_host_parallelism(threads);
    const auto tensor = AmpedTensor::build(t, build);
    auto platform = sim::make_default_platform(build.num_gpus);
    std::vector<DenseMatrix> outputs;
    auto report = mttkrp_all_modes(platform, tensor, factors, outputs,
                                   options);
    return std::make_pair(std::move(outputs), report.total_seconds);
  };

  auto [serial_out, serial_seconds] = run(1);
  auto [parallel_out, parallel_seconds] = run(4);
  set_host_parallelism(0);

  ASSERT_EQ(serial_out.size(), parallel_out.size());
  for (std::size_t d = 0; d < serial_out.size(); ++d) {
    const auto a = serial_out[d].data();
    const auto b = parallel_out[d].data();
    ASSERT_EQ(a.size(), b.size());
    EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(value_t)), 0)
        << "mode " << d << " diverged";
  }
  // Simulated clocks are per-device, so the modelled time must also agree
  // exactly.
  EXPECT_EQ(serial_seconds, parallel_seconds);
}

INSTANTIATE_TEST_SUITE_P(
    StaticPolicies, ParallelDeterminism,
    ::testing::Values(SchedulingPolicy::kStaticGreedy,
                      SchedulingPolicy::kContiguous,
                      SchedulingPolicy::kWeightedStatic),
    [](const ::testing::TestParamInfo<SchedulingPolicy>& param) {
      std::string name = to_string(param.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace amped
