#include <gtest/gtest.h>

#include <algorithm>

#include "core/amped_tensor.hpp"
#include "tensor/generator.hpp"

namespace amped {
namespace {

CooTensor make_tensor() {
  GeneratorOptions opt;
  opt.dims = {200, 150, 100};
  opt.nnz = 5000;
  opt.zipf_exponents = {0.6, 0.6, 0.6};
  opt.seed = 42;
  return generate_random(opt);
}

TEST(AmpedTensorTest, BuildsOneCopyPerMode) {
  auto input = make_tensor();
  auto t = AmpedTensor::build(input, AmpedBuildOptions{});
  EXPECT_EQ(t.num_modes(), 3u);
  EXPECT_EQ(t.nnz(), input.nnz());
  EXPECT_EQ(t.dims(), input.dims());
  for (std::size_t d = 0; d < 3; ++d) {
    const auto& copy = t.mode_copy(d);
    EXPECT_EQ(copy.partition.mode, d);
    auto idx = copy.tensor.indices(d);
    EXPECT_TRUE(std::is_sorted(idx.begin(), idx.end()))
        << "copy " << d << " not sorted by its output mode";
    EXPECT_EQ(copy.partition.total_nnz(), input.nnz());
  }
}

TEST(AmpedTensorTest, ShardCountFollowsOptions) {
  auto input = make_tensor();
  AmpedBuildOptions opt;
  opt.num_gpus = 4;
  opt.shards_per_gpu = 8;
  auto t = AmpedTensor::build(input, opt);
  EXPECT_EQ(t.mode_copy(0).partition.shards.size(), 32u);
}

TEST(AmpedTensorTest, ShardBytesMatchPayload) {
  auto input = make_tensor();
  auto t = AmpedTensor::build(input, AmpedBuildOptions{});
  const auto& part = t.mode_copy(1).partition;
  std::uint64_t total = 0;
  for (std::size_t s = 0; s < part.shards.size(); ++s) {
    EXPECT_EQ(t.shard_bytes(1, s),
              part.shards[s].nnz() * input.bytes_per_nnz());
    total += t.shard_bytes(1, s);
  }
  EXPECT_EQ(total, input.storage_bytes());
}

TEST(AmpedTensorTest, TotalBytesIsModesTimesCoo) {
  auto input = make_tensor();
  auto t = AmpedTensor::build(input, AmpedBuildOptions{});
  EXPECT_EQ(t.total_bytes(), 3 * input.storage_bytes());
}

TEST(AmpedTensorTest, PreprocessStatsPopulated) {
  auto input = make_tensor();
  PreprocessStats stats;
  auto t = AmpedTensor::build(input, AmpedBuildOptions{}, &stats);
  EXPECT_GT(stats.host_seconds, 0.0);
  EXPECT_GE(stats.wall_seconds, 0.0);
  EXPECT_EQ(stats.bytes_built, t.total_bytes());
}

TEST(AmpedTensorTest, PreprocessModelScalesWithWork) {
  const double small = model_amped_preprocess_seconds(1'000'000, 3);
  const double bigger_nnz = model_amped_preprocess_seconds(10'000'000, 3);
  const double more_modes = model_amped_preprocess_seconds(1'000'000, 5);
  EXPECT_GT(bigger_nnz, 9.0 * small);   // superlinear (n log n)
  EXPECT_NEAR(more_modes, small * 5.0 / 3.0, small * 0.01);
  EXPECT_DOUBLE_EQ(model_amped_preprocess_seconds(0, 3), 0.0);
}

}  // namespace
}  // namespace amped
