#include <gtest/gtest.h>

#include <cmath>

#include "linalg/blas.hpp"
#include "linalg/cholesky.hpp"
#include "util/random.hpp"

namespace amped {
namespace {

TEST(BlasTest, GramOfIdentityLikeMatrix) {
  DenseMatrix a(3, 2);
  a(0, 0) = 1;
  a(1, 1) = 2;
  a(2, 0) = 3;
  const auto g = linalg::gram(a);
  EXPECT_FLOAT_EQ(g(0, 0), 10.0f);  // 1 + 9
  EXPECT_FLOAT_EQ(g(1, 1), 4.0f);
  EXPECT_FLOAT_EQ(g(0, 1), 0.0f);
  EXPECT_FLOAT_EQ(g(1, 0), g(0, 1));  // symmetry
}

TEST(BlasTest, GramMatchesMatmulTranspose) {
  Rng rng(4);
  DenseMatrix a(20, 5);
  a.fill_random(rng);
  const auto g = linalg::gram(a);
  // Compare against explicit A^T A.
  for (std::size_t i = 0; i < 5; ++i) {
    for (std::size_t j = 0; j < 5; ++j) {
      double expect = 0;
      for (std::size_t k = 0; k < 20; ++k) {
        expect += static_cast<double>(a(k, i)) * a(k, j);
      }
      EXPECT_NEAR(g(i, j), expect, 1e-3);
    }
  }
}

TEST(BlasTest, HadamardElementwise) {
  DenseMatrix a(2, 2, 3.0f), b(2, 2, 2.0f);
  b(0, 1) = -1.0f;
  const auto c = linalg::hadamard(a, b);
  EXPECT_FLOAT_EQ(c(0, 0), 6.0f);
  EXPECT_FLOAT_EQ(c(0, 1), -3.0f);
}

TEST(BlasTest, MatmulKnownProduct) {
  DenseMatrix a(2, 3), b(3, 2);
  int v = 1;
  for (std::size_t i = 0; i < 2; ++i) {
    for (std::size_t j = 0; j < 3; ++j) a(i, j) = static_cast<value_t>(v++);
  }
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 2; ++j) b(i, j) = static_cast<value_t>(v++);
  }
  const auto c = linalg::matmul(a, b);
  // a = [1 2 3; 4 5 6], b = [7 8; 9 10; 11 12]
  EXPECT_FLOAT_EQ(c(0, 0), 58.0f);
  EXPECT_FLOAT_EQ(c(0, 1), 64.0f);
  EXPECT_FLOAT_EQ(c(1, 0), 139.0f);
  EXPECT_FLOAT_EQ(c(1, 1), 154.0f);
}

TEST(BlasTest, ColumnOpsAndDot) {
  DenseMatrix a(3, 2, 1.0f);
  EXPECT_NEAR(linalg::column_norm(a, 0), std::sqrt(3.0), 1e-6);
  linalg::scale_column(a, 0, 2.0f);
  EXPECT_FLOAT_EQ(a(1, 0), 2.0f);
  DenseMatrix b(3, 2, 1.0f);
  EXPECT_NEAR(linalg::dot(a, b), 2.0 * 3 + 1.0 * 3, 1e-6);
}

TEST(CholeskyTest, FactorsSpdMatrix) {
  // M = L L^T for L = [[2,0],[1,3]] -> M = [[4,2],[2,10]].
  DenseMatrix m(2, 2);
  m(0, 0) = 4;
  m(0, 1) = 2;
  m(1, 0) = 2;
  m(1, 1) = 10;
  auto l = linalg::cholesky(m);
  ASSERT_TRUE(l.has_value());
  EXPECT_NEAR((*l)(0, 0), 2.0, 1e-6);
  EXPECT_NEAR((*l)(1, 0), 1.0, 1e-6);
  EXPECT_NEAR((*l)(1, 1), 3.0, 1e-6);
}

TEST(CholeskyTest, RejectsIndefinite) {
  DenseMatrix m(2, 2);
  m(0, 0) = 1;
  m(0, 1) = 5;
  m(1, 0) = 5;
  m(1, 1) = 1;  // eigenvalues 6, -4
  EXPECT_FALSE(linalg::cholesky(m).has_value());
}

TEST(CholeskyTest, SolveRecoversKnownSolution) {
  DenseMatrix m(2, 2);
  m(0, 0) = 4;
  m(0, 1) = 2;
  m(1, 0) = 2;
  m(1, 1) = 10;
  auto l = linalg::cholesky(m);
  ASSERT_TRUE(l.has_value());
  // b = M * [1, 2]^T = [8, 22].
  std::vector<value_t> b{8.0f, 22.0f};
  linalg::cholesky_solve_inplace(*l, b);
  EXPECT_NEAR(b[0], 1.0, 1e-5);
  EXPECT_NEAR(b[1], 2.0, 1e-5);
}

TEST(CholeskyTest, SolveNormalEquationsMultiRow) {
  Rng rng(8);
  DenseMatrix a(50, 4);
  a.fill_random(rng, 0.1f, 1.0f);
  const auto m = linalg::gram(a);  // SPD with overwhelming probability

  DenseMatrix x_true(3, 4);
  x_true.fill_random(rng, -1.0f, 1.0f);
  // rhs = x_true * M (row-wise: rhs_i = M x_i since M symmetric).
  DenseMatrix rhs = linalg::matmul(x_true, m);
  linalg::solve_normal_equations(m, rhs);
  EXPECT_LT(DenseMatrix::max_abs_diff(rhs, x_true), 1e-2);
}

TEST(CholeskyTest, RidgeRescuesSingularMatrix) {
  // Rank-1 Gram: singular, solve must still return something finite.
  DenseMatrix m(2, 2);
  m(0, 0) = 1;
  m(0, 1) = 1;
  m(1, 0) = 1;
  m(1, 1) = 1;
  DenseMatrix rhs(1, 2);
  rhs(0, 0) = 1;
  rhs(0, 1) = 1;
  linalg::solve_normal_equations(m, rhs);
  EXPECT_TRUE(std::isfinite(rhs(0, 0)));
  EXPECT_TRUE(std::isfinite(rhs(0, 1)));
}

}  // namespace
}  // namespace amped
