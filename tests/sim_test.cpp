#include <gtest/gtest.h>

#include <vector>

#include "sim/cost_model.hpp"
#include "sim/device.hpp"
#include "sim/executor.hpp"
#include "sim/interconnect.hpp"
#include "sim/platform.hpp"

namespace amped::sim {
namespace {

TEST(DeviceTest, AdvanceAccumulatesPerPhase) {
  SimDevice d(rtx6000_ada_spec(), 0);
  d.advance(Phase::kCompute, 1.0);
  d.advance(Phase::kHostToDevice, 0.5);
  d.advance(Phase::kCompute, 0.25);
  EXPECT_DOUBLE_EQ(d.clock(), 1.75);
  EXPECT_DOUBLE_EQ(d.timeline().total(Phase::kCompute), 1.25);
  EXPECT_DOUBLE_EQ(d.timeline().total(Phase::kHostToDevice), 0.5);
  EXPECT_DOUBLE_EQ(d.timeline().communication(), 0.5);
}

TEST(DeviceTest, WaitUntilRecordsSync) {
  SimDevice d(rtx6000_ada_spec(), 0);
  d.advance(Phase::kCompute, 1.0);
  d.wait_until(3.0);
  EXPECT_DOUBLE_EQ(d.clock(), 3.0);
  EXPECT_DOUBLE_EQ(d.timeline().total(Phase::kSync), 2.0);
  d.wait_until(2.0);  // past time: no-op
  EXPECT_DOUBLE_EQ(d.clock(), 3.0);
}

TEST(DeviceTest, AllocationTracksAndThrows) {
  auto spec = rtx6000_ada_spec();
  spec.mem_bytes = 1000;
  SimDevice d(spec, 1);
  d.alloc(600);
  EXPECT_EQ(d.allocated(), 600u);
  EXPECT_THROW(d.alloc(500), OutOfDeviceMemory);
  d.free(200);
  d.alloc(500);
  EXPECT_EQ(d.allocated(), 900u);
}

TEST(DeviceTest, OutOfMemoryCarriesSizes) {
  auto spec = rtx6000_ada_spec();
  spec.mem_bytes = 100;
  SimDevice d(spec, 0);
  try {
    d.alloc(200);
    FAIL() << "expected throw";
  } catch (const OutOfDeviceMemory& e) {
    EXPECT_EQ(e.requested(), 200u);
    EXPECT_EQ(e.available(), 100u);
  }
}

TEST(DeviceTest, ResetClearsEverything) {
  SimDevice d(rtx6000_ada_spec(), 0);
  d.advance(Phase::kCompute, 1.0);
  d.alloc(100);
  d.reset();
  EXPECT_DOUBLE_EQ(d.clock(), 0.0);
  EXPECT_EQ(d.allocated(), 0u);
  EXPECT_DOUBLE_EQ(d.timeline().sum(), 0.0);
}

TEST(InterconnectTest, TransferTimeLatencyPlusBandwidth) {
  LinkSpec link{.bandwidth = 1e9, .latency_s = 1e-3};
  EXPECT_DOUBLE_EQ(transfer_seconds(link, 1'000'000'000), 1.001);
  // Scaled workloads shrink the latency term only.
  EXPECT_DOUBLE_EQ(transfer_seconds(link, 1'000'000'000, 1000.0),
                   1.0 + 1e-6);
}

TEST(ExecutorTest, MakespanSingleSm) {
  std::vector<double> blocks{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(grid_makespan(blocks, 1), 6.0);
}

TEST(ExecutorTest, MakespanManySms) {
  std::vector<double> blocks{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(grid_makespan(blocks, 3), 3.0);
  EXPECT_DOUBLE_EQ(grid_makespan(blocks, 100), 3.0);
}

TEST(ExecutorTest, FifoSchedulingOrder) {
  // 2 SMs, blocks 2,2,1,1,4 in order: SM times (2,2)->(3,3)->(7,3).
  std::vector<double> blocks{2.0, 2.0, 1.0, 1.0, 4.0};
  EXPECT_DOUBLE_EQ(grid_makespan(blocks, 2), 7.0);
}

TEST(ExecutorTest, EqualBlocksPerfectOccupancy) {
  std::vector<double> blocks(64, 0.5);
  EXPECT_DOUBLE_EQ(grid_makespan(blocks, 16), 2.0);
  EXPECT_DOUBLE_EQ(grid_occupancy(blocks, 16), 1.0);
}

TEST(ExecutorTest, EmptyGrid) {
  EXPECT_DOUBLE_EQ(grid_makespan({}, 4), 0.0);
}

TEST(CostModelTest, MemoryBoundKernelScalesWithBytes) {
  CostModel cost(rtx6000_ada_spec());
  KernelProfile p;
  EcBlockStats small{.nnz = 1000, .output_runs = 1000, .max_run = 1,
                     .max_multiplicity = 1, .modes = 3, .rank = 32,
                     .block_width = 32};
  EcBlockStats big = small;
  big.nnz = 2000;
  big.output_runs = 2000;
  EXPECT_NEAR(cost.ec_block_seconds(big, p) / cost.ec_block_seconds(small, p),
              2.0, 1e-9);
}

TEST(CostModelTest, SortedRunsAreCheaperThanScattered) {
  CostModel cost(rtx6000_ada_spec());
  KernelProfile p;
  EcBlockStats sorted{.nnz = 10000, .output_runs = 10, .max_run = 1000,
                      .max_multiplicity = 1000, .modes = 3, .rank = 32,
                      .block_width = 32};
  EcBlockStats scattered = sorted;
  scattered.output_runs = 10000;
  scattered.max_run = 1;
  EXPECT_LT(cost.ec_block_seconds(sorted, p),
            cost.ec_block_seconds(scattered, p));
}

TEST(CostModelTest, HotScatteredRowPaysAtomicPenalty) {
  CostModel cost(rtx6000_ada_spec());
  KernelProfile p;
  EcBlockStats cold{.nnz = 10000, .output_runs = 10000, .max_run = 1,
                    .max_multiplicity = 1, .modes = 3, .rank = 32,
                    .block_width = 32};
  EcBlockStats hot = cold;
  hot.max_multiplicity = 5000;  // scattered hot row
  EXPECT_GT(cost.ec_block_seconds(hot, p), cost.ec_block_seconds(cold, p));
  // Disabled atomics remove the penalty.
  KernelProfile no_atomics = p;
  no_atomics.atomic_scale = 0.0;
  EXPECT_DOUBLE_EQ(cost.ec_block_seconds(hot, no_atomics),
                   cost.ec_block_seconds(cold, no_atomics));
}

TEST(CostModelTest, ThreadblockUtilization) {
  EXPECT_DOUBLE_EQ(threadblock_utilization(32, 32), 1.0);
  EXPECT_DOUBLE_EQ(threadblock_utilization(32, 8), 0.25);
  EXPECT_DOUBLE_EQ(threadblock_utilization(32, 64), 1.0);  // capped
}

TEST(CostModelTest, NarrowBlocksRunSlower) {
  CostModel cost(rtx6000_ada_spec());
  KernelProfile p;
  EcBlockStats wide{.nnz = 1000, .output_runs = 1000, .max_run = 1,
                    .max_multiplicity = 1, .modes = 3, .rank = 32,
                    .block_width = 32};
  EcBlockStats narrow = wide;
  narrow.block_width = 8;
  EXPECT_NEAR(cost.ec_block_seconds(narrow, p) /
                  cost.ec_block_seconds(wide, p),
              4.0, 1e-9);
}

TEST(CostModelTest, FactorReadEfficiencyCacheModel) {
  // rank 32 -> a mode is cached when dim * 128 bytes <= l2.
  const std::uint64_t l2 = 96ull << 20;
  std::vector<std::uint64_t> dims{15'500'000, 6'200'000, 783'900, 6'100,
                                  6'100};
  // Output mode 0: inputs are modes 1..4; modes 2-4 fit the 96 MiB L2
  // (mode 2 is 100.3 MB < 100.66 MB), mode 1 is huge (uncached).
  const double eff = factor_read_efficiency(dims, 32, 0, l2);
  EXPECT_NEAR(eff, (1.0 + 3 * kCachedReadFraction) / 4.0, 1e-12);
  // No cache model: everything full price.
  EXPECT_DOUBLE_EQ(factor_read_efficiency(dims, 32, 0, 0), 1.0);
}

TEST(PlatformTest, BarrierAlignsClocks) {
  auto platform = make_default_platform(4);
  platform.gpu(0).advance(Phase::kCompute, 1.0);
  platform.gpu(2).advance(Phase::kCompute, 3.0);
  platform.barrier();
  for (int g = 0; g < 4; ++g) {
    EXPECT_DOUBLE_EQ(platform.gpu(g).clock(), 3.0);
  }
  EXPECT_DOUBLE_EQ(platform.gpu(0).timeline().total(Phase::kSync), 2.0);
  EXPECT_DOUBLE_EQ(platform.gpu(2).timeline().total(Phase::kSync), 0.0);
}

TEST(PlatformTest, P2pOccupiesBothEnds) {
  auto platform = make_default_platform(2);
  platform.gpu(0).advance(Phase::kCompute, 1.0);
  platform.p2p(0, 1, 1'000'000);
  // Receiver waited for the sender, then both moved by the transfer time.
  EXPECT_DOUBLE_EQ(platform.gpu(0).clock(), platform.gpu(1).clock());
  EXPECT_GT(platform.gpu(1).timeline().total(Phase::kSync), 0.9);
}

TEST(PlatformTest, HostLinkContention) {
  PlatformConfig one;
  one.num_gpus = 1;
  PlatformConfig four;
  four.num_gpus = 4;
  Platform p1(one), p4(four);
  // With 4 GPUs streaming, each link is capped at aggregate/4.
  EXPECT_GT(p4.h2d_seconds(1ull << 30), p1.h2d_seconds(1ull << 30));
}

TEST(PlatformTest, WorkloadScaleShrinksFixedCostsNotCapacity) {
  PlatformConfig cfg;
  cfg.workload_scale = 1000.0;
  Platform scaled(cfg);
  Platform full{PlatformConfig{}};
  // Capacity is a full-scale property (feasibility is decided by the
  // analytic memory model, not by scaled allocations).
  EXPECT_EQ(scaled.gpu(0).capacity(), full.gpu(0).capacity());
  // Bandwidth term identical, latency term scaled down.
  const auto large = static_cast<std::uint64_t>(1e9);
  EXPECT_LT(scaled.h2d_seconds(large), full.h2d_seconds(large));
  EXPECT_NEAR(scaled.h2d_seconds(large), full.h2d_seconds(large),
              pcie_host_link().latency_s);
  EXPECT_LT(scaled.kernel_launch_seconds(), full.kernel_launch_seconds());
}

TEST(PlatformTest, AggregateTimelineSumsDevices) {
  auto platform = make_default_platform(2);
  platform.gpu(0).advance(Phase::kCompute, 1.0);
  platform.gpu(1).advance(Phase::kCompute, 2.0);
  platform.host().advance(Phase::kHostCompute, 4.0);
  const auto agg = platform.aggregate_timeline();
  EXPECT_DOUBLE_EQ(agg.total(Phase::kCompute), 3.0);
  EXPECT_DOUBLE_EQ(agg.total(Phase::kHostCompute), 4.0);
}

TEST(PlatformTest, ResetRestoresPristineState) {
  auto platform = make_default_platform(2);
  platform.gpu(0).advance(Phase::kCompute, 1.0);
  platform.gpu(0).alloc(1000);
  platform.reset();
  EXPECT_DOUBLE_EQ(platform.makespan(), 0.0);
  EXPECT_EQ(platform.gpu(0).allocated(), 0u);
}

TEST(TimelineTest, PhaseNamesAndAccumulate) {
  EXPECT_STREQ(phase_name(Phase::kCompute), "compute");
  EXPECT_STREQ(phase_name(Phase::kPeerToPeer), "p2p");
  Timeline a, b;
  a.add(Phase::kCompute, 1.0);
  b.add(Phase::kCompute, 2.0);
  b.add(Phase::kSync, 0.5);
  a += b;
  EXPECT_DOUBLE_EQ(a.total(Phase::kCompute), 3.0);
  EXPECT_DOUBLE_EQ(a.sum(), 3.5);
}

}  // namespace
}  // namespace amped::sim
