// Whole-ALS graph scheduling (exec::compose_graph, MttkrpOptions::
// graph_schedule, CpdOptions::graph_window): gathers become dependency
// edges, outputs stay bit-identical to solo runs, graph makespans never
// lose to phase-barrier composition (and strictly win when transfers
// dominate), and iteration i+1 kernels overlap iteration i's gather tail.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <vector>

#include "core/amped_tensor.hpp"
#include "core/batch.hpp"
#include "core/cpd.hpp"
#include "core/mttkrp.hpp"
#include "exec/compose.hpp"
#include "exec/scheduler.hpp"
#include "tensor/generator.hpp"

namespace amped {
namespace {

CooTensor make_tensor(std::uint64_t seed, std::vector<index_t> dims,
                      nnz_t nnz, std::vector<double> zipf = {0.8, 0.5, 0.5}) {
  GeneratorOptions opt;
  opt.dims = std::move(dims);
  opt.nnz = nnz;
  opt.zipf_exponents = std::move(zipf);
  opt.seed = seed;
  return generate_random(opt);
}

void expect_bit_identical(const DenseMatrix& a, const DenseMatrix& b,
                          const std::string& what) {
  ASSERT_EQ(a.rows(), b.rows()) << what;
  ASSERT_EQ(a.cols(), b.cols()) << what;
  EXPECT_EQ(std::memcmp(a.data().data(), b.data().data(), a.bytes()), 0)
      << what << ": outputs differ bitwise";
}

struct Workload {
  AmpedTensor tensor;
  FactorSet factors;
};

std::vector<Workload> make_workloads(int num_gpus) {
  std::vector<Workload> out;
  AmpedBuildOptions build;
  build.num_gpus = num_gpus;
  {
    Workload w;
    auto input = make_tensor(401, {512, 256, 256}, 40000);
    Rng rng(402);
    w.factors = FactorSet(input.dims(), 16, rng);
    w.tensor = AmpedTensor::build(input, build);
    out.push_back(std::move(w));
  }
  {
    Workload w;
    auto input = make_tensor(403, {300, 500, 128}, 30000, {0.4, 0.9, 0.3});
    Rng rng(404);
    w.factors = FactorSet(input.dims(), 16, rng);
    w.tensor = AmpedTensor::build(input, build);
    out.push_back(std::move(w));
  }
  return out;
}

TEST(ComposeGraphTest, EdgesReplaceBarriersAndDepsPointAtProducers) {
  auto input = make_tensor(411, {256, 128, 128}, 20000);
  Rng rng(412);
  FactorSet factors(input.dims(), 8, rng);
  AmpedBuildOptions build;
  build.num_gpus = 2;
  auto tensor = AmpedTensor::build(input, build);
  auto platform = sim::make_default_platform(2, 1000.0);

  MttkrpOptions options;
  const auto scheduler = exec::make_scheduler(options);
  std::vector<DenseMatrix> outs;
  for (std::size_t d = 0; d < tensor.num_modes(); ++d) {
    outs.emplace_back(input.dim(d), 8);
  }
  std::vector<std::vector<exec::Plan>> chains(1);
  for (std::size_t d = 0; d < tensor.num_modes(); ++d) {
    const exec::ModeLowerInput in{
        platform, tensor, d, factors, outs[d], options,
        resolve_mttkrp_profile(options, tensor, d, platform, 8)};
    chains[0].push_back(scheduler->lower(in));
  }

  exec::ComposeInfo info;
  exec::Plan plan = exec::compose_graph(chains, &info);
  EXPECT_TRUE(plan.graph);
  EXPECT_EQ(info.elided_barriers, tensor.num_modes());
  ASSERT_EQ(info.scope_chain_link.size(), tensor.num_modes());
  for (std::size_t s = 0; s < info.scope_chain_link.size(); ++s) {
    EXPECT_EQ(info.scope_chain_link[s].first, 0u);
    EXPECT_EQ(info.scope_chain_link[s].second, s);
  }

  std::size_t gathers = 0;
  std::size_t prev_tail = 0;
  bool saw_tail = false;
  for (std::size_t id = 0; id < plan.tasks.size(); ++id) {
    const auto& t = plan.tasks[id];
    ASSERT_NE(t.kind, exec::TaskKind::kBarrier) << "task " << id;
    for (std::size_t dep : t.deps) ASSERT_LT(dep, id) << "task " << id;
    if (t.kind == exec::TaskKind::kAllGather) {
      ++gathers;
      // The gather depends on its own link's kernels only.
      ASSERT_FALSE(t.deps.empty());
      for (std::size_t dep : t.deps) {
        EXPECT_EQ(plan.tasks[dep].kind, exec::TaskKind::kKernel);
        EXPECT_EQ(plan.tasks[dep].scope, t.scope);
      }
      prev_tail = id;
      saw_tail = true;
    } else if (t.kind == exec::TaskKind::kKernel && saw_tail) {
      // Later links' kernels chain off the previous link's tail.
      EXPECT_NE(std::find(t.deps.begin(), t.deps.end(), prev_tail),
                t.deps.end())
          << "kernel " << id << " missing edge to tail " << prev_tail;
    }
  }
  EXPECT_EQ(gathers, tensor.num_modes());
}

TEST(ComposeGraphTest, DynamicChainsThrow) {
  auto input = make_tensor(421, {128, 64, 64}, 5000);
  Rng rng(422);
  FactorSet factors(input.dims(), 8, rng);
  AmpedBuildOptions build;
  build.num_gpus = 2;
  auto tensor = AmpedTensor::build(input, build);
  auto platform = sim::make_default_platform(2, 1000.0);

  MttkrpOptions options;
  options.policy = SchedulingPolicy::kDynamicQueue;
  DenseMatrix out(input.dim(0), 8);
  const exec::ModeLowerInput in{
      platform, tensor, 0, factors, out, options,
      resolve_mttkrp_profile(options, tensor, 0, platform, 8)};
  std::vector<std::vector<exec::Plan>> chains(1);
  chains[0].push_back(exec::make_scheduler(options)->lower(in));
  EXPECT_THROW(exec::compose_graph(chains), std::invalid_argument);
}

// Graph-scheduled mttkrp_batch: bit-identical to solo execution, never
// slower than phase-barrier composition, and every gather reported as an
// attributed edge.
TEST(GraphScheduleTest, BatchBitIdenticalAndNoSlowerThanComposed) {
  const auto workloads = make_workloads(4);
  MttkrpOptions options;

  std::vector<std::vector<DenseMatrix>> solo_out(workloads.size());
  for (std::size_t i = 0; i < workloads.size(); ++i) {
    auto platform = sim::make_default_platform(4, 1000.0);
    mttkrp_all_modes(platform, workloads[i].tensor, workloads[i].factors,
                     solo_out[i], options);
  }

  std::vector<BatchWorkload> batch;
  for (const auto& w : workloads) batch.push_back({&w.tensor, &w.factors});

  auto composed_platform = sim::make_default_platform(4, 1000.0);
  std::vector<std::vector<DenseMatrix>> composed_out;
  const auto composed =
      mttkrp_batch(composed_platform, batch, composed_out, options);

  options.graph_schedule = true;
  auto graph_platform = sim::make_default_platform(4, 1000.0);
  std::vector<std::vector<DenseMatrix>> graph_out;
  const auto graph = mttkrp_batch(graph_platform, batch, graph_out, options);

  EXPECT_EQ(graph.graph_dispatches, 1u);
  for (std::size_t i = 0; i < workloads.size(); ++i) {
    for (std::size_t d = 0; d < solo_out[i].size(); ++d) {
      expect_bit_identical(graph_out[i][d], solo_out[i][d],
                           "tensor " + std::to_string(i) + " mode " +
                               std::to_string(d));
    }
  }
  EXPECT_LE(graph.total_seconds, composed.total_seconds * (1.0 + 1e-12))
      << "graph " << graph.total_seconds << " vs composed "
      << composed.total_seconds;

  // One attributed gather edge per (workload, mode).
  std::size_t expected_edges = 0;
  for (const auto& w : workloads) expected_edges += w.tensor.num_modes();
  EXPECT_EQ(graph.gather_edges.size(), expected_edges);
  for (const auto& e : graph.gather_edges) {
    EXPECT_GT(e.bytes, 0u);
    EXPECT_GE(e.finish, e.start);
  }
}

// On a transfer-bound heterogeneous pair the gather edge must buy real
// wall clock: the fast tensor's next mode streams while the slow one
// drains, so the graph makespan is strictly below the composed baseline.
TEST(GraphScheduleTest, GraphStrictlyBeatsComposedOnTransferBoundHetero) {
  AmpedBuildOptions build;
  build.num_gpus = 4;
  std::vector<Workload> workloads;
  {
    Workload w;  // small and fast: finishes each mode early
    auto input = make_tensor(431, {96, 96, 96}, 8000, {0.3, 0.3, 0.3});
    Rng rng(432);
    w.factors = FactorSet(input.dims(), 16, rng);
    w.tensor = AmpedTensor::build(input, build);
    workloads.push_back(std::move(w));
  }
  {
    Workload w;  // large and slow: its mode tail is the overlap window
    auto input = make_tensor(433, {512, 384, 256}, 60000, {1.1, 0.3, 0.3});
    Rng rng(434);
    w.factors = FactorSet(input.dims(), 16, rng);
    w.tensor = AmpedTensor::build(input, build);
    workloads.push_back(std::move(w));
  }
  auto make_platform = [] {
    sim::PlatformConfig cfg;
    cfg.num_gpus = 4;
    cfg.workload_scale = 1000.0;
    cfg.gpu_overrides = {sim::rtx6000_ada_spec(), sim::rtx6000_ada_spec(),
                         sim::rtx_a4000_spec(), sim::rtx_a4000_spec()};
    cfg.host_aggregate_bandwidth = 24e9;  // 6 GB/s per GPU: transfer-bound
    return sim::Platform(cfg);
  };
  std::vector<BatchWorkload> batch;
  for (const auto& w : workloads) batch.push_back({&w.tensor, &w.factors});

  MttkrpOptions options;
  auto composed_platform = make_platform();
  std::vector<std::vector<DenseMatrix>> composed_out;
  const auto composed =
      mttkrp_batch(composed_platform, batch, composed_out, options);

  options.graph_schedule = true;
  auto graph_platform = make_platform();
  std::vector<std::vector<DenseMatrix>> graph_out;
  const auto graph = mttkrp_batch(graph_platform, batch, graph_out, options);

  EXPECT_LT(graph.total_seconds, composed.total_seconds)
      << "graph " << graph.total_seconds << " vs composed "
      << composed.total_seconds;
  for (std::size_t i = 0; i < workloads.size(); ++i) {
    for (std::size_t d = 0; d < composed_out[i].size(); ++d) {
      expect_bit_identical(graph_out[i][d], composed_out[i][d],
                           "tensor " + std::to_string(i) + " mode " +
                               std::to_string(d));
    }
  }
}

// The host backend runs the same graph plan with real threads; factors
// must be memcmp-identical to the simulated graph run.
TEST(GraphScheduleTest, HostBackendGraphMatchesSimulated) {
  const auto workloads = make_workloads(2);
  std::vector<BatchWorkload> batch;
  for (const auto& w : workloads) batch.push_back({&w.tensor, &w.factors});

  MttkrpOptions options;
  options.graph_schedule = true;

  auto sim_platform = sim::make_default_platform(2, 1000.0);
  std::vector<std::vector<DenseMatrix>> sim_out;
  mttkrp_batch(sim_platform, batch, sim_out, options);

  options.backend = exec::ExecBackend::kHostParallel;
  auto host_platform = sim::make_default_platform(2, 1000.0);
  std::vector<std::vector<DenseMatrix>> host_out;
  const auto host = mttkrp_batch(host_platform, batch, host_out, options);
  EXPECT_EQ(host.graph_dispatches, 1u);

  for (std::size_t i = 0; i < workloads.size(); ++i) {
    for (std::size_t d = 0; d < sim_out[i].size(); ++d) {
      expect_bit_identical(host_out[i][d], sim_out[i][d],
                           "tensor " + std::to_string(i) + " mode " +
                               std::to_string(d));
    }
  }
}

// Whole-ALS windows: factors and fits stay bit-identical to solo cp_als,
// and the timeline proves cross-iteration overlap — some iteration-1
// mode-0 kernel span starts before iteration 0's last gather edge lands.
TEST(GraphScheduleTest, CpdWindowBitIdenticalWithCrossIterationOverlap) {
  AmpedBuildOptions build;
  build.num_gpus = 4;
  auto input_a = make_tensor(441, {96, 96, 96}, 8000, {0.3, 0.3, 0.3});
  auto input_b = make_tensor(443, {512, 384, 256}, 60000, {1.1, 0.3, 0.3});
  auto tensor_a = AmpedTensor::build(input_a, build);
  auto tensor_b = AmpedTensor::build(input_b, build);
  const AmpedTensor* tensors[] = {&tensor_a, &tensor_b};

  CpdOptions options;
  options.rank = 16;
  options.max_iterations = 2;
  options.tolerance = 0.0;  // statically known iteration count
  auto make_platform = [] {
    sim::PlatformConfig cfg;
    cfg.num_gpus = 4;
    cfg.workload_scale = 1000.0;
    cfg.gpu_overrides = {sim::rtx6000_ada_spec(), sim::rtx6000_ada_spec(),
                         sim::rtx_a4000_spec(), sim::rtx_a4000_spec()};
    cfg.host_aggregate_bandwidth = 24e9;
    return sim::Platform(cfg);
  };

  std::vector<CpdResult> solo;
  for (const AmpedTensor* t : tensors) {
    auto platform = make_platform();
    solo.push_back(cp_als(platform, *t, options));
  }

  options.graph_window = 2;
  auto platform = make_platform();
  BatchReport report;
  const auto batched = cpd_batch(platform, tensors, options, &report);
  EXPECT_EQ(report.graph_dispatches, 1u);

  ASSERT_EQ(batched.size(), solo.size());
  for (std::size_t i = 0; i < solo.size(); ++i) {
    EXPECT_EQ(batched[i].iterations, solo[i].iterations) << "tensor " << i;
    EXPECT_EQ(batched[i].fit, solo[i].fit) << "tensor " << i;
    for (std::size_t d = 0; d < solo[i].factors.num_modes(); ++d) {
      expect_bit_identical(batched[i].factors.factor(d),
                           solo[i].factors.factor(d),
                           "tensor " + std::to_string(i) + " factor " +
                               std::to_string(d));
    }
  }

  // Overlap: iteration 1 kernels of the fast tensor start before the last
  // iteration-0 gather edge (the slow tensor's) finishes — time a
  // phase-barrier schedule would have idled away.
  double last_iter0_gather = 0.0;
  for (const auto& e : report.gather_edges) {
    if (e.iteration == 0) {
      last_iter0_gather = std::max(last_iter0_gather, e.finish);
    }
  }
  ASSERT_GT(last_iter0_gather, 0.0);
  double first_iter1_kernel = -1.0;
  for (const auto& s : report.kernel_spans) {
    if (s.iteration == 1 && s.mode == 0 &&
        (first_iter1_kernel < 0.0 || s.start < first_iter1_kernel)) {
      first_iter1_kernel = s.start;
    }
  }
  ASSERT_GE(first_iter1_kernel, 0.0) << "no iteration-1 kernel span";
  EXPECT_LT(first_iter1_kernel, last_iter0_gather)
      << "iteration 1 should start inside iteration 0's gather tail";
}

// graph_window with a nonzero tolerance cannot know the iteration count
// statically; cpd_batch must fall back to the legacy composed path and
// still match it exactly.
TEST(GraphScheduleTest, CpdWindowFallsBackWhenToleranceNonzero) {
  AmpedBuildOptions build;
  build.num_gpus = 2;
  auto input = make_tensor(451, {128, 96, 64}, 10000);
  auto tensor = AmpedTensor::build(input, build);
  const AmpedTensor* tensors[] = {&tensor};

  CpdOptions options;
  options.rank = 8;
  options.max_iterations = 3;

  auto p1 = sim::make_default_platform(2, 1000.0);
  const auto legacy = cpd_batch(p1, tensors, options);

  options.graph_window = 2;  // ignored: tolerance != 0
  auto p2 = sim::make_default_platform(2, 1000.0);
  BatchReport report;
  const auto fallback = cpd_batch(p2, tensors, options, &report);
  EXPECT_EQ(report.graph_dispatches, 0u);
  ASSERT_EQ(fallback.size(), legacy.size());
  EXPECT_EQ(fallback[0].fit, legacy[0].fit);
  EXPECT_EQ(fallback[0].iterations, legacy[0].iterations);
  for (std::size_t d = 0; d < legacy[0].factors.num_modes(); ++d) {
    expect_bit_identical(fallback[0].factors.factor(d),
                         legacy[0].factors.factor(d),
                         "factor " + std::to_string(d));
  }
}

}  // namespace
}  // namespace amped
