#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "tensor/factor_io.hpp"
#include "util/random.hpp"

namespace amped {
namespace {

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

CpdModel make_model() {
  Rng rng(31);
  CpdModel model;
  model.fit = 0.8725;
  model.lambda = {3.5, 1.25, 0.5};
  for (std::size_t rows : {10, 20, 15}) {
    DenseMatrix f(rows, 3);
    f.fill_random(rng, -1.0f, 1.0f);
    model.factors.push_back(std::move(f));
  }
  return model;
}

TEST(FactorIoTest, BinaryRoundTrip) {
  const auto model = make_model();
  const auto path = temp_path("amped_model.ampfac");
  write_model_file(model, path);
  const auto back = read_model_file(path);
  std::remove(path.c_str());

  EXPECT_DOUBLE_EQ(back.fit, model.fit);
  ASSERT_EQ(back.lambda.size(), 3u);
  EXPECT_DOUBLE_EQ(back.lambda[1], 1.25);
  ASSERT_EQ(back.factors.size(), 3u);
  for (std::size_t m = 0; m < 3; ++m) {
    EXPECT_DOUBLE_EQ(
        DenseMatrix::max_abs_diff(back.factors[m], model.factors[m]), 0.0);
  }
}

TEST(FactorIoTest, RejectsBadMagic) {
  const auto path = temp_path("amped_model_bad.ampfac");
  {
    std::ofstream f(path, std::ios::binary);
    f << "NOTAFACTORFILE--------------";
  }
  EXPECT_THROW(read_model_file(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(FactorIoTest, MissingFileThrows) {
  EXPECT_THROW(read_model_file("/nonexistent/m.ampfac"),
               std::runtime_error);
  EXPECT_THROW(read_matrix_text("/nonexistent/m.txt"), std::runtime_error);
}

TEST(FactorIoTest, TextMatrixRoundTrip) {
  Rng rng(32);
  DenseMatrix m(7, 4);
  m.fill_random(rng, -2.0f, 2.0f);
  const auto path = temp_path("amped_matrix.txt");
  write_matrix_text(m, path);
  const auto back = read_matrix_text(path);
  std::remove(path.c_str());
  ASSERT_EQ(back.rows(), 7u);
  ASSERT_EQ(back.cols(), 4u);
  EXPECT_LT(DenseMatrix::max_abs_diff(m, back), 1e-4);
}

TEST(FactorIoTest, TextRejectsRaggedRows) {
  const auto path = temp_path("amped_ragged.txt");
  {
    std::ofstream f(path);
    f << "1 2 3\n1 2\n";
  }
  EXPECT_THROW(read_matrix_text(path), std::runtime_error);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace amped
