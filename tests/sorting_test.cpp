#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <numeric>
#include <tuple>
#include <vector>

#include "formats/sorting.hpp"
#include "tensor/generator.hpp"
#include "util/radix_sort.hpp"

namespace amped {
namespace {

using formats::lexicographic_permutation;
using formats::sort_lexicographic;

std::vector<std::size_t> identity_order(std::size_t modes) {
  std::vector<std::size_t> order(modes);
  std::iota(order.begin(), order.end(), std::size_t{0});
  return order;
}

// The pre-radix implementation: comparison sort with per-comparison
// coordinate gathers. Ground truth for the equivalence property.
std::vector<nnz_t> comparison_permutation(
    const CooTensor& t, std::span<const std::size_t> mode_order) {
  std::vector<nnz_t> perm(t.nnz());
  std::iota(perm.begin(), perm.end(), nnz_t{0});
  std::sort(perm.begin(), perm.end(), [&](nnz_t a, nnz_t b) {
    for (std::size_t m : mode_order) {
      const auto idx = t.indices(m);
      if (idx[a] != idx[b]) return idx[a] < idx[b];
    }
    return false;
  });
  return perm;
}

std::vector<index_t> coords_at(const CooTensor& t, nnz_t e,
                               std::span<const std::size_t> mode_order) {
  std::vector<index_t> c;
  c.reserve(mode_order.size());
  for (std::size_t m : mode_order) c.push_back(t.indices(m)[e]);
  return c;
}

bool is_permutation_of_iota(std::span<const nnz_t> perm) {
  std::vector<nnz_t> sorted(perm.begin(), perm.end());
  std::sort(sorted.begin(), sorted.end());
  for (nnz_t i = 0; i < sorted.size(); ++i) {
    if (sorted[i] != i) return false;
  }
  return true;
}

struct SortCase {
  std::vector<index_t> dims;
  nnz_t nnz;
  std::uint64_t seed;
};

// Shapes chosen to cover the packed-key radix path (small totals), the
// exact 64-bit boundary (4 x 16-bit modes), and the >64-bit comparison
// fallback (7 x 10-bit modes = 70 bits).
const SortCase kCases[] = {
    {{16, 16}, 300, 1},
    {{1u << 12, 1u << 9, 1u << 11}, 5000, 2},
    {{65536, 65536, 65536, 65536}, 4000, 3},
    {{1024, 1024, 1024, 1024, 1024, 1024, 1024}, 3000, 4},
    {{3, 2, 5}, 64, 5},  // heavy duplication: many full-key ties
};

class SortEquivalence : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SortEquivalence, RadixMatchesComparisonSortUpToTies) {
  const SortCase& c = kCases[GetParam()];
  GeneratorOptions gen;
  gen.dims = c.dims;
  gen.nnz = c.nnz;
  gen.zipf_exponents.assign(c.dims.size(), 0.7);
  gen.seed = c.seed;
  const auto t = generate_random(gen);

  // Exercise a non-trivial mode order too (reversed).
  for (const bool reversed : {false, true}) {
    auto order = identity_order(t.num_modes());
    if (reversed) std::reverse(order.begin(), order.end());

    const auto radix = lexicographic_permutation(t, order);
    const auto reference = comparison_permutation(t, order);
    ASSERT_TRUE(is_permutation_of_iota(radix));

    // Equal up to tie order: position by position, the *keys* must match
    // even where the permutations pick different elements of a tie group.
    ASSERT_EQ(radix.size(), reference.size());
    for (nnz_t i = 0; i < radix.size(); ++i) {
      EXPECT_EQ(coords_at(t, radix[i], order),
                coords_at(t, reference[i], order))
          << "case " << GetParam() << " reversed=" << reversed
          << " position " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomShapes, SortEquivalence,
                         ::testing::Range(std::size_t{0},
                                          std::size_t{std::size(kCases)}));

TEST(SortingTest, ApplyPermutationRoundTrips) {
  for (const SortCase& c : kCases) {
    GeneratorOptions gen;
    gen.dims = c.dims;
    gen.nnz = c.nnz;
    gen.zipf_exponents.assign(c.dims.size(), 0.5);
    gen.seed = c.seed + 100;
    const auto original = generate_random(gen);
    auto t = original;

    const auto order = identity_order(t.num_modes());
    sort_lexicographic(t, order);

    // Sorted order holds...
    for (nnz_t i = 1; i < t.nnz(); ++i) {
      EXPECT_LE(coords_at(t, i - 1, order), coords_at(t, i, order));
    }
    // ...and the (coords, value) multiset survived the gather untouched.
    auto census = [&](const CooTensor& x) {
      std::map<std::pair<std::vector<index_t>, value_t>, int> m;
      for (nnz_t i = 0; i < x.nnz(); ++i) {
        ++m[{coords_at(x, i, order), x.values()[i]}];
      }
      return m;
    };
    EXPECT_EQ(census(original), census(t));
  }
}

TEST(RadixSortTest, StableOnEqualKeys) {
  const std::vector<std::uint64_t> keys = {5, 3, 5, 3, 5, 0, 3};
  const auto perm = util::radix_sort_permutation(keys, 3);
  // Equal keys keep input order (LSD radix is stable end to end).
  const std::vector<nnz_t> expected = {5, 1, 3, 6, 0, 2, 4};
  EXPECT_EQ(perm, expected);
}

TEST(RadixSortTest, MatchesStableSortOnWideKeys) {
  Rng rng(42);
  std::vector<std::uint64_t> keys(4096);
  for (auto& k : keys) {
    k = rng.next_u64() >> 4;  // 60 significant bits
  }
  const auto perm = util::radix_sort_permutation(keys, 60);
  std::vector<nnz_t> expected(keys.size());
  std::iota(expected.begin(), expected.end(), nnz_t{0});
  std::stable_sort(expected.begin(), expected.end(),
                   [&](nnz_t a, nnz_t b) { return keys[a] < keys[b]; });
  EXPECT_EQ(perm, expected);
}

TEST(RadixSortTest, EmptyAndSingle) {
  EXPECT_TRUE(util::radix_sort_permutation({}, 8).empty());
  const std::vector<std::uint64_t> one = {7};
  EXPECT_EQ(util::radix_sort_permutation(one, 8),
            std::vector<nnz_t>{0});
}

}  // namespace
}  // namespace amped
