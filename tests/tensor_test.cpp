#include <gtest/gtest.h>

#include <array>
#include <vector>

#include "tensor/coo_tensor.hpp"
#include "tensor/dense_matrix.hpp"

namespace amped {
namespace {

CooTensor small_tensor() {
  CooTensor t({4, 3, 5});
  const std::array<std::array<index_t, 3>, 5> coords{{
      {2, 1, 4}, {0, 0, 0}, {2, 1, 4}, {1, 2, 3}, {3, 0, 1},
  }};
  const std::array<value_t, 5> vals{1.0f, 2.0f, 3.0f, 4.0f, 5.0f};
  for (std::size_t i = 0; i < coords.size(); ++i) {
    t.push_back(std::span<const index_t>(coords[i].data(), 3), vals[i]);
  }
  return t;
}

TEST(CooTensorTest, BasicAccessors) {
  auto t = small_tensor();
  EXPECT_EQ(t.num_modes(), 3u);
  EXPECT_EQ(t.nnz(), 5u);
  EXPECT_EQ(t.dim(0), 4u);
  EXPECT_EQ(t.bytes_per_nnz(), 16u);
  EXPECT_EQ(t.storage_bytes(), 80u);
  EXPECT_TRUE(t.indices_in_bounds());
}

TEST(CooTensorTest, CoordsOf) {
  auto t = small_tensor();
  std::array<index_t, 3> c{};
  t.coords_of(3, c);
  EXPECT_EQ(c[0], 1u);
  EXPECT_EQ(c[1], 2u);
  EXPECT_EQ(c[2], 3u);
}

TEST(CooTensorTest, SortByModeOrdersMajorKey) {
  auto t = small_tensor();
  t.sort_by_mode(0);
  auto idx = t.indices(0);
  EXPECT_TRUE(std::is_sorted(idx.begin(), idx.end()));
  // Values follow their coordinates.
  EXPECT_FLOAT_EQ(t.values()[0], 2.0f);  // (0,0,0)
}

TEST(CooTensorTest, SortByNonzeroModeKeepsAllElements) {
  auto t = small_tensor();
  t.sort_by_mode(2);
  EXPECT_EQ(t.nnz(), 5u);
  auto idx = t.indices(2);
  EXPECT_TRUE(std::is_sorted(idx.begin(), idx.end()));
}

TEST(CooTensorTest, CoalesceMergesDuplicates) {
  auto t = small_tensor();
  t.sort_by_mode(0);
  const nnz_t removed = t.coalesce();
  EXPECT_EQ(removed, 1u);  // (2,1,4) appears twice
  EXPECT_EQ(t.nnz(), 4u);
  // Merged value 1 + 3 = 4 at (2,1,4).
  bool found = false;
  for (nnz_t n = 0; n < t.nnz(); ++n) {
    if (t.indices(0)[n] == 2 && t.indices(1)[n] == 1 && t.indices(2)[n] == 4) {
      EXPECT_FLOAT_EQ(t.values()[n], 4.0f);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(CooTensorTest, OutOfBoundsDetected) {
  CooTensor t({2, 2});
  const std::array<index_t, 2> bad{1, 2};  // mode-1 index == dim
  t.push_back(std::span<const index_t>(bad.data(), 2), 1.0f);
  EXPECT_FALSE(t.indices_in_bounds());
}

TEST(CooTensorTest, ApplyPermutationReorders) {
  auto t = small_tensor();
  std::vector<nnz_t> perm{4, 3, 2, 1, 0};
  t.apply_permutation(perm);
  EXPECT_FLOAT_EQ(t.values()[0], 5.0f);
  EXPECT_FLOAT_EQ(t.values()[4], 1.0f);
  EXPECT_EQ(t.indices(0)[0], 3u);
}

TEST(CooTensorTest, ShapeStringHumanReadable) {
  CooTensor t({4'800'000, 1'800'000, 1'800'000});
  const auto s = t.shape_string();
  EXPECT_NE(s.find("4.8M"), std::string::npos);
  EXPECT_NE(s.find("0 nnz"), std::string::npos);
}

TEST(DenseMatrixTest, IndexingAndRows) {
  DenseMatrix m(3, 4);
  m(1, 2) = 5.0f;
  EXPECT_FLOAT_EQ(m.row(1)[2], 5.0f);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 4u);
  EXPECT_EQ(m.bytes(), 48u);
}

TEST(DenseMatrixTest, SetZeroAndFrob) {
  DenseMatrix m(2, 2, 3.0f);
  EXPECT_DOUBLE_EQ(m.frob_sq(), 36.0);
  m.set_zero();
  EXPECT_DOUBLE_EQ(m.frob_sq(), 0.0);
}

TEST(DenseMatrixTest, FillRandomDeterministicPerSeed) {
  Rng r1(5), r2(5);
  DenseMatrix a(4, 4), b(4, 4);
  a.fill_random(r1);
  b.fill_random(r2);
  EXPECT_DOUBLE_EQ(DenseMatrix::max_abs_diff(a, b), 0.0);
}

TEST(DenseMatrixTest, MaxAbsDiff) {
  DenseMatrix a(2, 2, 1.0f), b(2, 2, 1.0f);
  b(1, 1) = 3.5f;
  EXPECT_DOUBLE_EQ(DenseMatrix::max_abs_diff(a, b), 2.5);
}

TEST(FactorSetTest, ShapesAndBytes) {
  Rng rng(2);
  std::vector<index_t> dims{10, 20, 30};
  FactorSet f(dims, 8, rng);
  EXPECT_EQ(f.num_modes(), 3u);
  EXPECT_EQ(f.rank(), 8u);
  EXPECT_EQ(f.factor(1).rows(), 20u);
  EXPECT_EQ(f.factor(1).cols(), 8u);
  EXPECT_EQ(f.total_bytes(), (10u + 20u + 30u) * 8u * sizeof(value_t));
}

}  // namespace
}  // namespace amped
