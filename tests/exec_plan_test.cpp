// The execution-plan engine (src/exec/): golden-value equivalence against
// the frozen pre-engine loop, the cost-model scheduler on heterogeneous
// platforms, and the engine's reporting contract.
#include <gtest/gtest.h>

#include <cstring>

#include "core/amped_tensor.hpp"
#include "core/mttkrp.hpp"
#include "exec/reference_loop.hpp"
#include "exec/scheduler.hpp"
#include "tensor/generator.hpp"
#include "tensor/reference_mttkrp.hpp"

namespace amped {
namespace {

CooTensor make_tensor(std::uint64_t seed, nnz_t nnz = 40000) {
  GeneratorOptions opt;
  opt.dims = {512, 256, 256};
  opt.nnz = nnz;
  opt.zipf_exponents = {0.8, 0.5, 0.5};
  opt.seed = seed;
  return generate_random(opt);
}

sim::Platform hetero_platform(double scale = 1.0) {
  sim::PlatformConfig cfg;
  cfg.num_gpus = 4;
  cfg.workload_scale = scale;
  cfg.gpu_overrides = {sim::rtx6000_ada_spec(), sim::rtx6000_ada_spec(),
                       sim::rtx_a4000_spec(), sim::rtx_a4000_spec()};
  return sim::Platform(cfg);
}

// Bitwise equality of two matrices: the golden criterion. Any float
// tolerance here would hide a change in accumulation order.
void expect_bit_identical(const DenseMatrix& a, const DenseMatrix& b,
                          const std::string& what) {
  ASSERT_EQ(a.rows(), b.rows()) << what;
  ASSERT_EQ(a.cols(), b.cols()) << what;
  EXPECT_EQ(std::memcmp(a.data().data(), b.data().data(), a.bytes()), 0)
      << what << ": outputs differ bitwise";
}

// Runs the same workload through the plan engine and through the frozen
// pre-engine loop on identically configured platforms, and demands
// bit-identical outputs AND exactly equal simulated times, phase by phase.
void expect_golden(const AmpedTensor& tensor, const FactorSet& factors,
                   const MttkrpOptions& options,
                   const std::function<sim::Platform()>& make_platform) {
  auto engine_platform = make_platform();
  auto loop_platform = make_platform();
  std::vector<DenseMatrix> engine_out, loop_out;
  const auto engine = mttkrp_all_modes(engine_platform, tensor, factors,
                                       engine_out, options);
  const auto loop = exec::reference_loop_mttkrp_all_modes(
      loop_platform, tensor, factors, loop_out, options);
  const std::string what =
      to_string(options.policy) +
      (options.pipelined_streaming ? "+pipelined" : "");

  ASSERT_EQ(engine_out.size(), loop_out.size()) << what;
  for (std::size_t d = 0; d < engine_out.size(); ++d) {
    expect_bit_identical(engine_out[d], loop_out[d],
                         what + " mode " + std::to_string(d));
  }

  // Simulated time: exact double equality, not tolerance — the engine
  // must issue the same advances in the same order.
  EXPECT_EQ(engine.total_seconds, loop.total_seconds) << what;
  EXPECT_EQ(engine_platform.makespan(), loop_platform.makespan()) << what;
  ASSERT_EQ(engine.modes.size(), loop.modes.size()) << what;
  for (std::size_t d = 0; d < engine.modes.size(); ++d) {
    const auto& e = engine.modes[d];
    const auto& l = loop.modes[d];
    EXPECT_EQ(e.seconds, l.seconds) << what << " mode " << d;
    EXPECT_EQ(e.h2d, l.h2d) << what << " mode " << d;
    EXPECT_EQ(e.compute, l.compute) << what << " mode " << d;
    EXPECT_EQ(e.p2p, l.p2p) << what << " mode " << d;
    EXPECT_EQ(e.sync, l.sync) << what << " mode " << d;
    EXPECT_EQ(e.per_gpu_compute, l.per_gpu_compute) << what << " mode " << d;
  }
  EXPECT_EQ(engine.per_gpu_compute, loop.per_gpu_compute) << what;
  const auto agg_e = engine_platform.aggregate_timeline();
  const auto agg_l = loop_platform.aggregate_timeline();
  for (std::size_t p = 0; p < sim::kNumPhases; ++p) {
    const auto phase = static_cast<sim::Phase>(p);
    EXPECT_EQ(agg_e.total(phase), agg_l.total(phase))
        << what << " phase " << p;
  }
}

// Every pre-engine policy, sequential and (for the static ones)
// pipelined, on the homogeneous default platform.
class ExecPlanGolden
    : public ::testing::TestWithParam<std::pair<SchedulingPolicy, bool>> {};

TEST_P(ExecPlanGolden, BitIdenticalToReferenceLoop) {
  const auto [policy, pipelined] = GetParam();
  auto input = make_tensor(201);
  Rng rng(202);
  FactorSet factors(input.dims(), 16, rng);
  AmpedBuildOptions build;
  build.num_gpus = 4;
  auto tensor = AmpedTensor::build(input, build);

  MttkrpOptions options;
  options.policy = policy;
  options.pipelined_streaming = pipelined;
  expect_golden(tensor, factors, options,
                [] { return sim::make_default_platform(4, 1000.0); });
}

TEST_P(ExecPlanGolden, BitIdenticalOnHeterogeneousPlatform) {
  const auto [policy, pipelined] = GetParam();
  auto input = make_tensor(203);
  Rng rng(204);
  FactorSet factors(input.dims(), 8, rng);
  AmpedBuildOptions build;
  build.num_gpus = 4;
  auto tensor = AmpedTensor::build(input, build);

  MttkrpOptions options;
  options.policy = policy;
  options.pipelined_streaming = pipelined;
  expect_golden(tensor, factors, options,
                [] { return hetero_platform(1000.0); });
}

INSTANTIATE_TEST_SUITE_P(
    Policies, ExecPlanGolden,
    ::testing::Values(
        std::pair{SchedulingPolicy::kStaticGreedy, false},
        std::pair{SchedulingPolicy::kStaticGreedy, true},
        std::pair{SchedulingPolicy::kContiguous, false},
        std::pair{SchedulingPolicy::kContiguous, true},
        std::pair{SchedulingPolicy::kWeightedStatic, false},
        std::pair{SchedulingPolicy::kWeightedStatic, true},
        std::pair{SchedulingPolicy::kDynamicQueue, false}),
    [](const auto& param_info) {
      std::string n = to_string(param_info.param.first);
      for (auto& c : n) {
        if (c == '-') c = '_';
      }
      return n + (param_info.param.second ? "_pipelined" : "");
    });

TEST(ExecPlanTest, GoldenThroughSpilledCopies) {
  // The disk-streamed path must lower to the same plan costs: force the
  // out-of-core build and compare engine vs. frozen loop end to end.
  auto input = make_tensor(205, 20000);
  Rng rng(206);
  FactorSet factors(input.dims(), 8, rng);
  AmpedBuildOptions build;
  build.num_gpus = 2;
  build.storage = BuildStorage::kSpilled;
  auto tensor = AmpedTensor::build(input, build);
  ASSERT_TRUE(tensor.spilled());

  for (bool pipelined : {false, true}) {
    MttkrpOptions options;
    options.pipelined_streaming = pipelined;
    expect_golden(tensor, factors, options,
                  [] { return sim::make_default_platform(2, 1000.0); });
  }
}

TEST(ExecPlanTest, CostModelBalancesHeterogeneousPlatform) {
  // Asymmetric SM counts / bandwidths: LPT on per-device estimated
  // seconds must spread EC time far better than nnz-LPT, which hands the
  // small cards as many nonzeros as the big ones.
  GeneratorOptions gopt;
  gopt.dims = {2048, 1024, 1024};
  gopt.nnz = 600000;
  gopt.zipf_exponents = {0.5, 0.5, 0.5};
  gopt.seed = 207;
  auto input = generate_random(gopt);
  Rng rng(208);
  FactorSet factors(input.dims(), 16, rng);
  AmpedBuildOptions build;
  build.num_gpus = 4;
  build.shards_per_gpu = 8;
  auto tensor = AmpedTensor::build(input, build);

  auto run_policy = [&](SchedulingPolicy policy) {
    auto platform = hetero_platform(1000.0);
    MttkrpOptions opt;
    opt.policy = policy;
    std::vector<DenseMatrix> outputs;
    auto report = mttkrp_all_modes(platform, tensor, factors, outputs, opt);
    return std::tuple{report.total_seconds,
                      report.compute_overhead_fraction(),
                      std::move(outputs)};
  };
  const auto [greedy_s, greedy_imb, greedy_out] =
      run_policy(SchedulingPolicy::kStaticGreedy);
  const auto [weighted_s, weighted_imb, weighted_out] =
      run_policy(SchedulingPolicy::kWeightedStatic);
  const auto [dynamic_s, dynamic_imb, dynamic_out] =
      run_policy(SchedulingPolicy::kDynamicQueue);
  const auto [cost_s, cost_imb, cost_out] =
      run_policy(SchedulingPolicy::kCostModel);
  (void)weighted_imb;
  (void)dynamic_imb;
  (void)greedy_out;
  (void)weighted_out;
  (void)dynamic_out;

  EXPECT_LT(cost_imb, greedy_imb * 0.8)
      << "cost-model EC spread " << cost_imb << " vs greedy " << greedy_imb;
  // The scheduler optimises makespan, and on this platform it must beat
  // every pre-engine policy outright: nnz-LPT ignores device speed,
  // weighted-static prices devices with one scalar, and dynamic dispatch
  // pays its greedy arrival order.
  EXPECT_LT(cost_s, greedy_s);
  EXPECT_LT(cost_s, weighted_s);
  EXPECT_LT(cost_s, dynamic_s);

  // Numerics stay right: every policy matches the sequential
  // double-precision reference.
  const auto refs = reference_mttkrp_all_modes(input, factors);
  for (std::size_t d = 0; d < refs.size(); ++d) {
    EXPECT_LT(relative_max_diff(refs[d], cost_out[d]), 5e-4) << d;
  }
}

TEST(ExecPlanTest, CostModelEstimateOrdersDevicesBySpeed) {
  auto input = make_tensor(209);
  Rng rng(210);
  FactorSet factors(input.dims(), 16, rng);
  AmpedBuildOptions build;
  build.num_gpus = 4;
  // Few, large shards: a grid that saturates both device types, so the
  // device-level bandwidth gap (not the per-SM slice) decides speed.
  build.shards_per_gpu = 2;
  auto tensor = AmpedTensor::build(input, build);
  auto platform = hetero_platform();

  MttkrpOptions options;
  std::vector<DenseMatrix> out(1, DenseMatrix(input.dim(0), 16));
  const exec::ModeLowerInput in{
      platform, tensor, 0, factors, out[0], options,
      resolve_mttkrp_profile(options, tensor, 0, platform, 16)};
  nnz_t best = 0;
  const Shard* shard = nullptr;
  for (const auto& s : tensor.mode_copy(0).partition.shards) {
    if (s.nnz() > best) {
      best = s.nnz();
      shard = &s;
    }
  }
  ASSERT_NE(shard, nullptr);
  // GPUs 0/1 are Ada-class, 2/3 are A4000-class: a saturating shard must
  // be estimated strictly cheaper on the faster device, and identically
  // across identical devices.
  EXPECT_LT(exec::estimate_shard_seconds(in, *shard, 0),
            exec::estimate_shard_seconds(in, *shard, 3));
  EXPECT_EQ(exec::estimate_shard_seconds(in, *shard, 0),
            exec::estimate_shard_seconds(in, *shard, 1));
}

TEST(ExecPlanTest, PerGpuComputeSizedByPlatformWithIdleGpus) {
  // Mode 0 has only 2 output indices -> at most 2 shards, so on a 4-GPU
  // platform two devices never receive work. The report must still cover
  // every GPU (zeros for the idle ones) — the aggregation guard for the
  // heterogeneous/idle-GPU case.
  GeneratorOptions opt;
  opt.dims = {2, 128, 128};
  opt.nnz = 5000;
  opt.zipf_exponents = {0.0, 0.5, 0.5};
  opt.seed = 211;
  auto input = generate_random(opt);
  Rng rng(212);
  FactorSet factors(input.dims(), 8, rng);
  AmpedBuildOptions build;
  build.num_gpus = 4;
  auto tensor = AmpedTensor::build(input, build);
  ASSERT_LE(tensor.mode_copy(0).partition.shards.size(), 2u);

  auto platform = sim::make_default_platform(4);
  std::vector<DenseMatrix> outputs;
  auto report =
      mttkrp_all_modes(platform, tensor, factors, outputs, MttkrpOptions{});
  ASSERT_EQ(report.per_gpu_compute.size(), 4u);
  for (const auto& m : report.modes) {
    EXPECT_EQ(m.per_gpu_compute.size(), 4u) << "mode " << m.mode;
  }
  int idle = 0;
  for (std::size_t g = 0; g < 4; ++g) {
    if (report.modes[0].per_gpu_compute[g] == 0.0) ++idle;
  }
  EXPECT_GE(idle, 2) << "expected idle GPUs on the 2-shard mode";

  const auto refs = reference_mttkrp_all_modes(input, factors);
  for (std::size_t d = 0; d < refs.size(); ++d) {
    EXPECT_LT(relative_max_diff(refs[d], outputs[d]), 5e-4) << d;
  }
}

TEST(ExecPlanTest, SchedulerNamesAndParsersRoundTrip) {
  for (auto policy :
       {SchedulingPolicy::kStaticGreedy, SchedulingPolicy::kDynamicQueue,
        SchedulingPolicy::kContiguous, SchedulingPolicy::kWeightedStatic,
        SchedulingPolicy::kCostModel,
        SchedulingPolicy::kDynamicLookahead}) {
    EXPECT_EQ(parse_policy(to_string(policy)), policy);
    MttkrpOptions options;
    options.policy = policy;
    EXPECT_EQ(exec::make_scheduler(options)->name(), to_string(policy));
    options.pipelined_streaming = true;
    // The dynamic policies never take the "+pipelined" suffix: plain
    // dynamic dispatch stays sequential, and look-ahead dispatch is the
    // pipelined variant by definition.
    if (policy != SchedulingPolicy::kDynamicQueue &&
        policy != SchedulingPolicy::kDynamicLookahead) {
      EXPECT_EQ(exec::make_scheduler(options)->name(),
                to_string(policy) + "+pipelined");
    }
  }
  for (auto algo : {AllGatherAlgo::kRing, AllGatherAlgo::kDirect,
                    AllGatherAlgo::kHostStaged}) {
    EXPECT_EQ(parse_allgather(to_string(algo)), algo);
  }
  EXPECT_THROW(parse_policy("fastest"), std::invalid_argument);
  EXPECT_THROW(parse_allgather("broadcast"), std::invalid_argument);
}

}  // namespace
}  // namespace amped
