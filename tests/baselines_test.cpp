#include <gtest/gtest.h>

#include "baselines/runner.hpp"
#include "tensor/generator.hpp"
#include "tensor/profiles.hpp"
#include "tensor/reference_mttkrp.hpp"

namespace amped::baselines {
namespace {

constexpr double kTol = 5e-4;

CooTensor make_tensor(std::size_t modes, std::uint64_t seed,
                      nnz_t nnz = 10000, double skew = 0.5) {
  GeneratorOptions opt;
  opt.dims.assign(modes, 0);
  for (std::size_t m = 0; m < modes; ++m) {
    opt.dims[m] = static_cast<index_t>(96 + 32 * m);
  }
  opt.zipf_exponents.assign(modes, skew);
  opt.nnz = nnz;
  opt.seed = seed;
  return generate_random(opt);
}

// Every supported baseline must compute the same MTTKRP as the reference.
class BaselineCorrectness : public ::testing::TestWithParam<std::string> {};

TEST_P(BaselineCorrectness, MatchesReference) {
  const std::string name = GetParam();
  auto t = make_tensor(3, 31);
  Rng rng(32);
  FactorSet factors(t.dims(), 16, rng);

  auto platform =
      sim::make_default_platform(name == "equal-nnz" || name == "amped" ? 4
                                                                        : 1);
  BaselineOptions opt;  // workload derived from the small tensor: all fit
  auto result = run_baseline(name, platform, t, factors, opt);
  ASSERT_TRUE(result.supported) << result.failure_reason;
  ASSERT_EQ(result.outputs.size(), 3u);

  const auto refs = reference_mttkrp_all_modes(t, factors);
  for (std::size_t d = 0; d < 3; ++d) {
    EXPECT_LT(relative_max_diff(refs[d], result.outputs[d]), kTol)
        << name << " mode " << d;
  }
  EXPECT_GT(result.total_seconds, 0.0);
  EXPECT_GT(result.timeline.total(sim::Phase::kCompute), 0.0);
}

INSTANTIATE_TEST_SUITE_P(AllBaselines, BaselineCorrectness,
                         ::testing::Values("amped", "blco", "mm-csf",
                                           "hicoo-gpu", "parti-gpu",
                                           "flycoo-gpu", "equal-nnz"),
                         [](const auto& param_info) {
                           std::string n = param_info.param;
                           for (auto& c : n) {
                             if (c == '-') c = '_';
                           }
                           return n;
                         });

TEST(BaselineTest, FiveModeCorrectnessWhereSupported) {
  auto t = make_tensor(5, 33, 5000);
  Rng rng(34);
  FactorSet factors(t.dims(), 8, rng);
  const auto refs = reference_mttkrp_all_modes(t, factors);

  for (const std::string name : {"amped", "blco", "flycoo-gpu"}) {
    auto platform = sim::make_default_platform(name == "amped" ? 4 : 1);
    auto result =
        run_baseline(name, platform, t, factors, BaselineOptions{});
    ASSERT_TRUE(result.supported) << name << ": " << result.failure_reason;
    for (std::size_t d = 0; d < 5; ++d) {
      EXPECT_LT(relative_max_diff(refs[d], result.outputs[d]), kTol)
          << name << " mode " << d;
    }
  }
}

TEST(BaselineTest, MmcsfRejectsFiveModes) {
  auto t = make_tensor(5, 35, 1000);
  Rng rng(36);
  FactorSet factors(t.dims(), 8, rng);
  auto platform = sim::make_default_platform(1);
  auto result = run_mmcsf_gpu(platform, t, factors, BaselineOptions{});
  EXPECT_FALSE(result.supported);
  EXPECT_NE(result.failure_reason.find("modes"), std::string::npos);
}

TEST(BaselineTest, HicooRejectsFiveModes) {
  auto t = make_tensor(5, 37, 1000);
  Rng rng(38);
  FactorSet factors(t.dims(), 8, rng);
  auto platform = sim::make_default_platform(1);
  EXPECT_FALSE(
      run_hicoo_gpu(platform, t, factors, BaselineOptions{}).supported);
  EXPECT_FALSE(
      run_parti_gpu(platform, t, factors, BaselineOptions{}).supported);
}

// Feasibility decisions must honour the full-scale workload info even
// though the executed tensor is tiny.
TEST(BaselineTest, WorkloadInfoDrivesOomDecisions) {
  auto t = make_tensor(3, 39, 2000);
  Rng rng(40);
  FactorSet factors(t.dims(), 16, rng);

  BaselineOptions amazon_opt;
  amazon_opt.workload.full_dims = amazon_profile().full_dims;
  amazon_opt.workload.full_nnz = amazon_profile().full_nnz;

  BaselineOptions patents_opt;
  patents_opt.workload.full_dims = patents_profile().full_dims;
  patents_opt.workload.full_nnz = patents_profile().full_nnz;

  auto p1 = sim::make_default_platform(1);
  EXPECT_TRUE(run_mmcsf_gpu(p1, t, factors, amazon_opt).supported);
  auto p2 = sim::make_default_platform(1);
  auto patents_result = run_mmcsf_gpu(p2, t, factors, patents_opt);
  EXPECT_FALSE(patents_result.supported);
  EXPECT_NE(patents_result.failure_reason.find("runtime error"),
            std::string::npos);

  // FLYCOO: amazon OOM, twitch-sized 3-mode equivalent would fit; use the
  // real twitch profile with a 5-mode tensor.
  auto t5 = make_tensor(5, 41, 2000);
  Rng rng5(42);
  FactorSet f5(t5.dims(), 16, rng5);
  BaselineOptions twitch_opt;
  twitch_opt.workload.full_dims = twitch_profile().full_dims;
  twitch_opt.workload.full_nnz = twitch_profile().full_nnz;
  auto p3 = sim::make_default_platform(1);
  EXPECT_TRUE(run_flycoo_gpu(p3, t5, f5, twitch_opt).supported);
  auto p4 = sim::make_default_platform(1);
  EXPECT_FALSE(run_flycoo_gpu(p4, t, factors, amazon_opt).supported);
}

TEST(BaselineTest, BlcoAlwaysSupported) {
  auto t = make_tensor(3, 43, 2000);
  Rng rng(44);
  FactorSet factors(t.dims(), 16, rng);
  BaselineOptions opt;
  opt.workload.full_dims = reddit_profile().full_dims;
  opt.workload.full_nnz = reddit_profile().full_nnz;
  auto platform = sim::make_default_platform(1);
  EXPECT_TRUE(run_blco_gpu(platform, t, factors, opt).supported);
}

TEST(BaselineTest, BlcoPaysStreamingTraffic) {
  auto t = make_tensor(3, 45, 20000);
  Rng rng(46);
  FactorSet factors(t.dims(), 16, rng);
  auto platform = sim::make_default_platform(1);
  auto result = run_blco_gpu(platform, t, factors, BaselineOptions{});
  // Streams the tensor once per mode.
  const double h2d = result.timeline.total(sim::Phase::kHostToDevice);
  const double expected =
      3.0 * static_cast<double>(t.nnz()) * 12.0 /
      platform.config().host_link.bandwidth;
  EXPECT_GT(h2d, expected * 0.9);
}

TEST(BaselineTest, FlycooHasNoCommunication) {
  auto t = make_tensor(3, 47, 5000);
  Rng rng(48);
  FactorSet factors(t.dims(), 16, rng);
  auto platform = sim::make_default_platform(1);
  auto result = run_flycoo_gpu(platform, t, factors, BaselineOptions{});
  ASSERT_TRUE(result.supported);
  EXPECT_DOUBLE_EQ(result.timeline.communication(), 0.0);
}

TEST(BaselineTest, EqualNnzSlowerThanAmped) {
  // Fig. 6's direction: the intermediate-value D2H plus host merge hurts.
  // The platforms treat the miniature tensor as a 50000x-scaled stand-in
  // so per-transfer latencies do not swamp the streamed bytes (exactly how
  // the benchmarks run).
  auto t = make_tensor(3, 49, 40000);
  Rng rng(50);
  FactorSet factors(t.dims(), 32, rng);

  auto p_amped = sim::make_default_platform(4, 50000.0);
  auto amped = run_amped(p_amped, t, factors, BaselineOptions{});
  auto p_eq = sim::make_default_platform(4, 50000.0);
  auto equal = run_equal_nnz(p_eq, t, factors, BaselineOptions{});
  ASSERT_TRUE(amped.supported && equal.supported);
  EXPECT_GT(equal.total_seconds, amped.total_seconds);
  EXPECT_GT(equal.timeline.total(sim::Phase::kHostCompute), 0.0);
  EXPECT_GT(equal.timeline.total(sim::Phase::kDeviceToHost), 0.0);
}

TEST(BaselineTest, RunnerRejectsUnknownName) {
  auto t = make_tensor(3, 51, 100);
  Rng rng(52);
  FactorSet factors(t.dims(), 4, rng);
  auto platform = sim::make_default_platform(1);
  EXPECT_THROW(
      run_baseline("nope", platform, t, factors, BaselineOptions{}),
      std::invalid_argument);
}

TEST(BaselineTest, BaselineNamesStable) {
  const auto names = baseline_names();
  EXPECT_EQ(names.size(), 5u);
  EXPECT_EQ(names[0], "blco");
}

TEST(BaselineTest, CollectOutputsToggle) {
  auto t = make_tensor(3, 53, 1000);
  Rng rng(54);
  FactorSet factors(t.dims(), 8, rng);
  auto platform = sim::make_default_platform(1);
  BaselineOptions opt;
  opt.collect_outputs = false;
  auto result = run_blco_gpu(platform, t, factors, opt);
  EXPECT_TRUE(result.outputs.empty());
}

}  // namespace
}  // namespace amped::baselines
