#include <gtest/gtest.h>

#include <vector>

#include "core/allgather.hpp"

namespace amped {
namespace {

std::vector<std::uint64_t> equal_parts(int m, std::uint64_t bytes) {
  return std::vector<std::uint64_t>(static_cast<std::size_t>(m), bytes);
}

TEST(AllGatherTest, SingleGpuIsFree) {
  auto platform = sim::make_default_platform(1);
  auto report =
      allgather_factor_rows(platform, equal_parts(1, 1 << 20));
  EXPECT_DOUBLE_EQ(report.seconds, 0.0);
  EXPECT_EQ(report.bytes_moved, 0u);
}

TEST(AllGatherTest, RingMovesMMinusOnePartsPerGpu) {
  const int m = 4;
  auto platform = sim::make_default_platform(m);
  const std::uint64_t part = 1 << 20;
  auto report = allgather_factor_rows(platform, equal_parts(m, part),
                                      AllGatherAlgo::kRing);
  // Each of the M GPUs forwards M-1 partitions.
  EXPECT_EQ(report.bytes_moved, static_cast<std::uint64_t>(m) * (m - 1) * part);
  EXPECT_GT(report.seconds, 0.0);
  // All GPUs end synchronised.
  for (int g = 1; g < m; ++g) {
    EXPECT_DOUBLE_EQ(platform.gpu(g).clock(), platform.gpu(0).clock());
  }
}

TEST(AllGatherTest, RingTimeScalesWithBytes) {
  auto small_platform = sim::make_default_platform(4);
  auto big_platform = sim::make_default_platform(4);
  auto small = allgather_factor_rows(small_platform, equal_parts(4, 1 << 20));
  auto big = allgather_factor_rows(big_platform, equal_parts(4, 1 << 24));
  EXPECT_GT(big.seconds, small.seconds * 8);
}

TEST(AllGatherTest, DirectSerialisesOnEgressLink) {
  // Equal parts: direct exchange moves the same bytes as the ring but a
  // GPU must push its partition M-1 times through one link, so it cannot
  // be faster than the ring.
  auto ring_platform = sim::make_default_platform(4);
  auto direct_platform = sim::make_default_platform(4);
  const auto parts = equal_parts(4, 1 << 22);
  auto ring =
      allgather_factor_rows(ring_platform, parts, AllGatherAlgo::kRing);
  auto direct =
      allgather_factor_rows(direct_platform, parts, AllGatherAlgo::kDirect);
  EXPECT_EQ(ring.bytes_moved, direct.bytes_moved);
  EXPECT_GE(direct.seconds, ring.seconds * 0.99);
}

TEST(AllGatherTest, HostStagedPaysHostRoundTrip) {
  auto ring_platform = sim::make_default_platform(4);
  auto staged_platform = sim::make_default_platform(4);
  const auto parts = equal_parts(4, 1 << 22);
  auto ring =
      allgather_factor_rows(ring_platform, parts, AllGatherAlgo::kRing);
  auto staged = allgather_factor_rows(staged_platform, parts,
                                      AllGatherAlgo::kHostStaged);
  // Host staging moves each partition down once and the concatenated
  // matrix up M times.
  EXPECT_GT(staged.bytes_moved, ring.bytes_moved);
  EXPECT_GT(staged_platform.host().timeline().total(sim::Phase::kHostCompute),
            0.0);
  (void)ring;
}

TEST(AllGatherTest, UnevenPartsGateOnLargest) {
  auto even_platform = sim::make_default_platform(2);
  auto uneven_platform = sim::make_default_platform(2);
  auto even = allgather_factor_rows(even_platform, equal_parts(2, 1 << 20));
  std::vector<std::uint64_t> parts{(1 << 21), 0};  // same total
  auto uneven = allgather_factor_rows(uneven_platform, parts);
  EXPECT_GT(uneven.seconds, even.seconds * 1.5);
}

TEST(AllGatherTest, TimeAttributedToPeerToPeerPhase) {
  auto platform = sim::make_default_platform(4);
  allgather_factor_rows(platform, equal_parts(4, 1 << 22));
  const auto agg = platform.aggregate_timeline();
  EXPECT_GT(agg.total(sim::Phase::kPeerToPeer), 0.0);
  EXPECT_DOUBLE_EQ(agg.total(sim::Phase::kHostToDevice), 0.0);
}

TEST(AllGatherTest, AlgoNames) {
  EXPECT_EQ(to_string(AllGatherAlgo::kRing), "ring");
  EXPECT_EQ(to_string(AllGatherAlgo::kDirect), "direct");
  EXPECT_EQ(to_string(AllGatherAlgo::kHostStaged), "host-staged");
}

}  // namespace
}  // namespace amped
