// Differential harness for the host-parallel execution backend
// (src/exec/host_backend.cpp): every scheduling policy, composed
// batches, and spilled-storage runs execute through BOTH PlanExecutor
// backends and must produce memcmp-identical factor outputs — the
// real-concurrency analogue of exec_plan_test's golden checks. Also
// covers the measured-vs-predicted reporting contract and the backend
// parser. This suite runs in the TSan CI lane: real lane threads over
// the ShardStreamer are exactly what that lane exists to check.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "core/amped_tensor.hpp"
#include "core/batch.hpp"
#include "core/cpd.hpp"
#include "core/mttkrp.hpp"
#include "exec/backend.hpp"
#include "exec/scheduler.hpp"
#include "io/memory_budget.hpp"
#include "tensor/generator.hpp"
#include "tensor/reference_mttkrp.hpp"
#include "util/thread_pool.hpp"

namespace amped {
namespace {

// Real concurrency even on single-core CI runners: the backend's lane
// threads and the streamers' read-ahead must interleave for these tests
// (and the TSan lane) to mean anything.
class HostParallelismEnv : public ::testing::Environment {
 public:
  void SetUp() override { set_host_parallelism(4); }
  void TearDown() override { set_host_parallelism(0); }
};
const auto* const kEnv =
    ::testing::AddGlobalTestEnvironment(new HostParallelismEnv);

CooTensor make_tensor(std::uint64_t seed, nnz_t nnz = 40000) {
  GeneratorOptions opt;
  opt.dims = {512, 256, 256};
  opt.nnz = nnz;
  opt.zipf_exponents = {0.8, 0.5, 0.5};
  opt.seed = seed;
  return generate_random(opt);
}

sim::Platform hetero_platform(double scale = 1.0) {
  sim::PlatformConfig cfg;
  cfg.num_gpus = 4;
  cfg.workload_scale = scale;
  cfg.gpu_overrides = {sim::rtx6000_ada_spec(), sim::rtx6000_ada_spec(),
                       sim::rtx_a4000_spec(), sim::rtx_a4000_spec()};
  return sim::Platform(cfg);
}

void expect_bit_identical(const DenseMatrix& a, const DenseMatrix& b,
                          const std::string& what) {
  ASSERT_EQ(a.rows(), b.rows()) << what;
  ASSERT_EQ(a.cols(), b.cols()) << what;
  EXPECT_EQ(std::memcmp(a.data().data(), b.data().data(), a.bytes()), 0)
      << what << ": outputs differ bitwise";
}

struct DifferentialRun {
  MttkrpReport sim;
  MttkrpReport host;
};

// Runs the same workload through the simulator and the host backend on
// identically configured platforms and demands memcmp-identical outputs
// for every mode. Returns both reports for timing-contract checks.
DifferentialRun expect_differential(
    const AmpedTensor& tensor, const FactorSet& factors,
    MttkrpOptions options,
    const std::function<sim::Platform()>& make_platform,
    const std::string& what) {
  DifferentialRun run;
  auto sim_platform = make_platform();
  auto host_platform = make_platform();
  std::vector<DenseMatrix> sim_out, host_out;
  options.backend = exec::ExecBackend::kSimulated;
  run.sim = mttkrp_all_modes(sim_platform, tensor, factors, sim_out, options);
  options.backend = exec::ExecBackend::kHostParallel;
  run.host =
      mttkrp_all_modes(host_platform, tensor, factors, host_out, options);

  EXPECT_EQ(sim_out.size(), host_out.size()) << what;
  for (std::size_t d = 0; d < sim_out.size(); ++d) {
    expect_bit_identical(sim_out[d], host_out[d],
                         what + " mode " + std::to_string(d));
  }
  // The host run must not have advanced the simulated clocks.
  EXPECT_EQ(host_platform.makespan(), 0.0) << what;
  return run;
}

std::string policy_label(SchedulingPolicy policy, bool pipelined) {
  return to_string(policy) + (pipelined ? "+pipelined" : "");
}

// Every policy (static ones ± pipelined, both dynamic disciplines,
// cost-model) on homogeneous and heterogeneous platforms.
class HostBackendDifferential
    : public ::testing::TestWithParam<std::pair<SchedulingPolicy, bool>> {};

TEST_P(HostBackendDifferential, BitIdenticalToSimulator) {
  const auto [policy, pipelined] = GetParam();
  auto input = make_tensor(301);
  Rng rng(302);
  FactorSet factors(input.dims(), 16, rng);
  AmpedBuildOptions build;
  build.num_gpus = 4;
  auto tensor = AmpedTensor::build(input, build);

  MttkrpOptions options;
  options.policy = policy;
  options.pipelined_streaming = pipelined;
  const auto run = expect_differential(
      tensor, factors, options,
      [] { return sim::make_default_platform(4, 1000.0); },
      policy_label(policy, pipelined));

  // Timing contract: the host report carries measured wall clock (real
  // work takes real time) and the simulator's never does.
  double host_compute = 0.0;
  for (double t : run.host.per_gpu_compute) host_compute += t;
  EXPECT_GT(host_compute, 0.0);
  EXPECT_GT(run.host.total_seconds, 0.0);
  for (const auto& bd : run.host.modes) {
    EXPECT_GT(bd.seconds, 0.0) << "mode " << bd.mode;
    EXPECT_GE(bd.h2d, 0.0) << "mode " << bd.mode;
    EXPECT_GE(bd.sync, 0.0) << "mode " << bd.mode;
  }
}

TEST_P(HostBackendDifferential, BitIdenticalOnHeterogeneousPlatform) {
  const auto [policy, pipelined] = GetParam();
  auto input = make_tensor(303);
  Rng rng(304);
  FactorSet factors(input.dims(), 8, rng);
  AmpedBuildOptions build;
  build.num_gpus = 4;
  auto tensor = AmpedTensor::build(input, build);

  MttkrpOptions options;
  options.policy = policy;
  options.pipelined_streaming = pipelined;
  expect_differential(tensor, factors, options,
                      [] { return hetero_platform(1000.0); },
                      policy_label(policy, pipelined));
}

INSTANTIATE_TEST_SUITE_P(
    Policies, HostBackendDifferential,
    ::testing::Values(
        std::pair{SchedulingPolicy::kStaticGreedy, false},
        std::pair{SchedulingPolicy::kStaticGreedy, true},
        std::pair{SchedulingPolicy::kContiguous, false},
        std::pair{SchedulingPolicy::kContiguous, true},
        std::pair{SchedulingPolicy::kWeightedStatic, false},
        std::pair{SchedulingPolicy::kWeightedStatic, true},
        std::pair{SchedulingPolicy::kCostModel, false},
        std::pair{SchedulingPolicy::kCostModel, true},
        std::pair{SchedulingPolicy::kDynamicQueue, false},
        std::pair{SchedulingPolicy::kDynamicLookahead, false}),
    [](const auto& param_info) {
      std::string n = to_string(param_info.param.first);
      for (auto& c : n) {
        if (c == '-') c = '_';
      }
      return n + (param_info.param.second ? "_pipelined" : "");
    });

TEST(HostBackendTest, PredictedComputeMatchesSimulatorExactly) {
  // The host backend runs the same kernel closures on the same static
  // assignment, collecting their cost-model returns as the predicted
  // column — which must therefore equal the simulator's charged EC
  // seconds to the last bit, per GPU.
  auto input = make_tensor(305);
  Rng rng(306);
  FactorSet factors(input.dims(), 16, rng);
  AmpedBuildOptions build;
  build.num_gpus = 4;
  auto tensor = AmpedTensor::build(input, build);

  for (auto policy :
       {SchedulingPolicy::kStaticGreedy, SchedulingPolicy::kCostModel}) {
    auto sim_platform = hetero_platform(1000.0);
    auto host_platform = hetero_platform(1000.0);
    MttkrpOptions options;
    options.policy = policy;
    std::vector<DenseMatrix> sim_out, host_out;
    options.backend = exec::ExecBackend::kSimulated;
    const auto sim_report =
        mttkrp_all_modes(sim_platform, tensor, factors, sim_out, options);
    options.backend = exec::ExecBackend::kHostParallel;

    std::vector<double> predicted(4, 0.0);
    for (std::size_t d = 0; d < tensor.num_modes(); ++d) {
      DenseMatrix out(tensor.dims()[d], factors.rank());
      const exec::ModeLowerInput in{
          host_platform, tensor, d, factors, out, options,
          resolve_mttkrp_profile(options, tensor, d, host_platform,
                                 factors.rank())};
      auto plan = exec::make_scheduler(options)->lower(in);
      exec::PlanExecutor executor(host_platform,
                                  exec::ExecBackend::kHostParallel);
      const auto report = executor.run(plan);
      for (std::size_t g = 0; g < 4; ++g) {
        predicted[g] += report.per_gpu_predicted_compute[g];
      }
      expect_bit_identical(sim_out[d], out,
                           to_string(policy) + " mode " + std::to_string(d));
    }
    for (std::size_t g = 0; g < 4; ++g) {
      EXPECT_EQ(predicted[g], sim_report.per_gpu_compute[g])
          << to_string(policy) << " gpu " << g;
    }
  }
}

// Sets the global budget for one scope and restores "unlimited" on every
// exit path, so suites stay order-independent.
class BudgetGuard {
 public:
  explicit BudgetGuard(std::uint64_t limit) {
    io::HostMemoryBudget::global().set_limit(limit);
  }
  ~BudgetGuard() { io::HostMemoryBudget::global().set_limit(0); }
};

TEST(HostBackendTest, SpilledBudgetRunBitIdentical) {
  // The out-of-core path under real concurrency: a memory budget forces
  // the build to spill, then shard payloads stream disk -> host -> lane
  // staging buffers through both backends.
  auto input = make_tensor(307, 20000);
  Rng rng(308);
  FactorSet factors(input.dims(), 8, rng);

  // Below the 3-copy resident footprint but enough for the build to hold
  // one copy (plus stream buffers) at a time: kAuto must choose to spill.
  const std::uint64_t copy_bytes = input.storage_bytes();
  BudgetGuard guard(copy_bytes + copy_bytes / 2);
  AmpedBuildOptions build;
  build.num_gpus = 2;
  build.storage = BuildStorage::kAuto;
  auto tensor = AmpedTensor::build(input, build);
  ASSERT_TRUE(tensor.spilled());

  for (bool pipelined : {false, true}) {
    MttkrpOptions options;
    options.pipelined_streaming = pipelined;
    expect_differential(tensor, factors, options,
                        [] { return sim::make_default_platform(2, 1000.0); },
                        std::string("spilled") +
                            (pipelined ? "+pipelined" : ""));
  }
  for (auto policy :
       {SchedulingPolicy::kDynamicQueue, SchedulingPolicy::kDynamicLookahead,
        SchedulingPolicy::kCostModel}) {
    MttkrpOptions options;
    options.policy = policy;
    expect_differential(tensor, factors, options,
                        [] { return sim::make_default_platform(2, 1000.0); },
                        "spilled " + to_string(policy));
  }
}

TEST(HostBackendTest, ComposedBatchBitIdentical) {
  // Composed multi-tensor plans: barrier elision and lane interleaving
  // across scopes must not change a byte on either backend.
  auto input_a = make_tensor(309, 22000);
  GeneratorOptions gb;
  gb.dims = {384, 192, 160};
  gb.nnz = 18000;
  gb.zipf_exponents = {0.6, 0.9, 0.3};
  gb.seed = 310;
  auto input_b = generate_random(gb);
  Rng rng(311);
  FactorSet factors_a(input_a.dims(), 12, rng);
  FactorSet factors_b(input_b.dims(), 12, rng);
  AmpedBuildOptions build;
  build.num_gpus = 4;
  auto tensor_a = AmpedTensor::build(input_a, build);
  auto tensor_b = AmpedTensor::build(input_b, build);
  const std::vector<BatchWorkload> workloads = {{&tensor_a, &factors_a},
                                                {&tensor_b, &factors_b}};

  for (bool pipelined : {false, true}) {
    MttkrpOptions options;
    options.pipelined_streaming = pipelined;
    const std::string what =
        std::string("batch") + (pipelined ? "+pipelined" : "");

    auto sim_platform = sim::make_default_platform(4, 1000.0);
    std::vector<std::vector<DenseMatrix>> sim_out;
    options.backend = exec::ExecBackend::kSimulated;
    mttkrp_batch(sim_platform, workloads, sim_out, options);

    auto host_platform = sim::make_default_platform(4, 1000.0);
    std::vector<std::vector<DenseMatrix>> host_out;
    options.backend = exec::ExecBackend::kHostParallel;
    const auto host_report =
        mttkrp_batch(host_platform, workloads, host_out, options);

    ASSERT_EQ(sim_out.size(), host_out.size());
    for (std::size_t i = 0; i < sim_out.size(); ++i) {
      ASSERT_EQ(sim_out[i].size(), host_out[i].size());
      for (std::size_t d = 0; d < sim_out[i].size(); ++d) {
        expect_bit_identical(sim_out[i][d], host_out[i][d],
                             what + " workload " + std::to_string(i) +
                                 " mode " + std::to_string(d));
      }
    }
    EXPECT_GT(host_report.total_seconds, 0.0) << what;
    EXPECT_EQ(host_report.steps.size(), 3u) << what;
  }
}

TEST(HostBackendTest, CpAlsBitIdentical) {
  // Full CP-ALS through the host backend: factors, weights, fit, and the
  // convergence trajectory all match the simulated run bitwise.
  auto input = make_tensor(312, 15000);
  AmpedBuildOptions build;
  build.num_gpus = 4;
  auto tensor = AmpedTensor::build(input, build);

  CpdOptions options;
  options.rank = 8;
  options.max_iterations = 3;
  auto sim_platform = sim::make_default_platform(4, 1000.0);
  auto host_platform = sim::make_default_platform(4, 1000.0);
  options.mttkrp.backend = exec::ExecBackend::kSimulated;
  const auto sim_result = cp_als(sim_platform, tensor, options);
  options.mttkrp.backend = exec::ExecBackend::kHostParallel;
  const auto host_result = cp_als(host_platform, tensor, options);

  EXPECT_EQ(sim_result.fit, host_result.fit);
  EXPECT_EQ(sim_result.iterations, host_result.iterations);
  EXPECT_EQ(sim_result.converged, host_result.converged);
  EXPECT_EQ(sim_result.lambda, host_result.lambda);
  EXPECT_EQ(sim_result.fit_history, host_result.fit_history);
  ASSERT_EQ(sim_result.factors.num_modes(), host_result.factors.num_modes());
  for (std::size_t d = 0; d < sim_result.factors.num_modes(); ++d) {
    expect_bit_identical(sim_result.factors.factor(d),
                         host_result.factors.factor(d),
                         "factor " + std::to_string(d));
  }
  // Host time is measured, so it is real and positive.
  EXPECT_GT(host_result.mttkrp_sim_seconds, 0.0);
}

TEST(HostBackendTest, RandomizedDifferentialSweep) {
  // Property sweep with the format_property_test generator shapes: any
  // (mode count, skew, policy) combination is bit-identical across
  // backends. Failure messages carry the seed for offline reproduction.
  const SchedulingPolicy policies[] = {
      SchedulingPolicy::kStaticGreedy, SchedulingPolicy::kDynamicQueue,
      SchedulingPolicy::kCostModel, SchedulingPolicy::kDynamicLookahead};
  for (std::size_t modes = 2; modes <= 4; ++modes) {
    for (double skew : {0.0, 1.4}) {
      GeneratorOptions opt;
      opt.dims.assign(modes, 0);
      for (std::size_t m = 0; m < modes; ++m) {
        opt.dims[m] = static_cast<index_t>(48 + 37 * m);
      }
      opt.zipf_exponents.assign(modes, skew);
      opt.nnz = 3000;
      opt.seed = 1000 + modes * 10 + static_cast<std::uint64_t>(skew * 10);
      auto input = generate_random(opt);
      Rng rng(opt.seed + 1);
      FactorSet factors(input.dims(), 6, rng);
      AmpedBuildOptions build;
      build.num_gpus = 4;
      build.shards_per_gpu = 4;
      auto tensor = AmpedTensor::build(input, build);

      for (auto policy : policies) {
        MttkrpOptions options;
        options.policy = policy;
        const std::string what =
            "seed=" + std::to_string(opt.seed) +
            " modes=" + std::to_string(modes) +
            " skew=" + std::to_string(skew) + " policy=" + to_string(policy);
        expect_differential(tensor, factors, options,
                            [] { return sim::make_default_platform(4); },
                            what);
      }
      // Numerics stay right end to end, not just consistent: check one
      // policy against the sequential double-precision reference.
      MttkrpOptions options;
      options.backend = exec::ExecBackend::kHostParallel;
      auto platform = sim::make_default_platform(4);
      std::vector<DenseMatrix> outputs;
      mttkrp_all_modes(platform, tensor, factors, outputs, options);
      const auto refs = reference_mttkrp_all_modes(input, factors);
      for (std::size_t d = 0; d < refs.size(); ++d) {
        EXPECT_LT(relative_max_diff(refs[d], outputs[d]), 5e-4)
            << "seed=" << opt.seed << " mode " << d;
      }
    }
  }
}

TEST(HostBackendTest, BackendNamesParseAndRoundTrip) {
  EXPECT_EQ(exec::parse_backend("sim"), exec::ExecBackend::kSimulated);
  EXPECT_EQ(exec::parse_backend("simulated"), exec::ExecBackend::kSimulated);
  EXPECT_EQ(exec::parse_backend("host"), exec::ExecBackend::kHostParallel);
  EXPECT_EQ(exec::parse_backend("host-parallel"),
            exec::ExecBackend::kHostParallel);
  for (auto backend :
       {exec::ExecBackend::kSimulated, exec::ExecBackend::kHostParallel}) {
    EXPECT_EQ(exec::parse_backend(exec::to_string(backend)), backend);
  }
  EXPECT_THROW(exec::parse_backend("cuda"), std::invalid_argument);
  EXPECT_THROW(exec::parse_backend(""), std::invalid_argument);
}

TEST(HostBackendTest, SerialPoolStillBitIdentical) {
  // host_parallelism() == 1 collapses every lane to the calling thread;
  // outputs and the reporting shape must be unchanged.
  set_host_parallelism(1);
  auto input = make_tensor(313, 12000);
  Rng rng(314);
  FactorSet factors(input.dims(), 8, rng);
  AmpedBuildOptions build;
  build.num_gpus = 4;
  auto tensor = AmpedTensor::build(input, build);
  for (auto policy :
       {SchedulingPolicy::kStaticGreedy, SchedulingPolicy::kDynamicQueue}) {
    MttkrpOptions options;
    options.policy = policy;
    expect_differential(tensor, factors, options,
                        [] { return sim::make_default_platform(4); },
                        "serial " + to_string(policy));
  }
  set_host_parallelism(4);
}

}  // namespace
}  // namespace amped
