// Scale-invariance of the simulation methodology.
//
// The benchmarks run Table 3 profiles at 1/2000 of their real size and
// multiply simulated time back by the scale factor. That extrapolation is
// sound only if the *ratios* the paper reports are invariant to the scale
// chosen: the platform divides fixed costs by the scale, the generator
// shrinks nonzeros and mode sizes by the same factor, and every modelled
// cost is otherwise linear in bytes/flops. These tests pin that property
// so a future cost-model change that silently breaks extrapolation fails
// loudly.
#include <gtest/gtest.h>

#include "baselines/runner.hpp"
#include "tensor/generator.hpp"

namespace amped {
namespace {

struct Ratios {
  double amped_vs_blco = 0.0;
  double gpus4_vs_gpus1 = 0.0;
  double comm_fraction = 0.0;
};

Ratios measure(double scale) {
  // A synthetic billion-scale profile whose dims stay above the mode-size
  // floor at both test scales, so shrinkage is exactly proportional.
  DatasetProfile p;
  p.name = "synthetic";
  p.full_dims = {40'000'000, 30'000'000, 20'000'000};
  p.full_nnz = 1'000'000'000;
  p.zipf_exponents = {0.6, 0.6, 0.6};
  p.seed = 99;
  auto ds = generate_scaled(p, scale);

  Rng rng(100);
  FactorSet factors(ds.tensor.dims(), 16, rng);
  baselines::BaselineOptions opt;
  opt.workload = baselines::WorkloadInfo::from_dataset(ds);
  opt.collect_outputs = false;

  Ratios r;
  auto p4 = sim::make_default_platform(4, scale);
  const auto amped4 = baselines::run_amped(p4, ds.tensor, factors, opt);
  auto p1 = sim::make_default_platform(1, scale);
  const auto amped1 = baselines::run_amped(p1, ds.tensor, factors, opt);
  auto pb = sim::make_default_platform(1, scale);
  const auto blco = baselines::run_blco_gpu(pb, ds.tensor, factors, opt);

  r.amped_vs_blco = blco.total_seconds / amped4.total_seconds;
  r.gpus4_vs_gpus1 = amped1.total_seconds / amped4.total_seconds;
  const auto& t = amped4.timeline;
  r.comm_fraction =
      t.communication() /
      (t.communication() + t.total(sim::Phase::kCompute));
  return r;
}

TEST(ScalingPropertyTest, RatiosInvariantAcrossScales) {
  // Scales are chosen inside the methodology's valid region: a shard must
  // still fill one wave of threadblocks per SM (isp_size above the P = 32
  // floor), which for a 1B-nnz tensor on 96 shards x 4 GPUs bounds the
  // scale at ~2000 — exactly the benchmark default. Beyond that, SM
  // under-occupancy (a scaled-down artifact, not a modelled effect)
  // creeps into AMPED's compute term.
  const auto coarse = measure(2000.0);
  const auto fine = measure(500.0);
  // 4x different sampling of the same full-scale workload: every reported
  // ratio agrees within 15% (sampling noise of the synthetic draws).
  EXPECT_NEAR(coarse.amped_vs_blco / fine.amped_vs_blco, 1.0, 0.15);
  EXPECT_NEAR(coarse.gpus4_vs_gpus1 / fine.gpus4_vs_gpus1, 1.0, 0.15);
  EXPECT_NEAR(coarse.comm_fraction / fine.comm_fraction, 1.0, 0.15);
}

TEST(ScalingPropertyTest, ExtrapolatedTimeIsStable) {
  // sim_time x scale must be (approximately) the same number at both
  // scales — that is the definition of exact extrapolation.
  DatasetProfile p;
  p.name = "synthetic";
  p.full_dims = {40'000'000, 30'000'000, 20'000'000};
  p.full_nnz = 1'000'000'000;
  p.zipf_exponents = {0.4, 0.4, 0.4};
  p.seed = 101;

  auto run_at = [&](double scale) {
    auto ds = generate_scaled(p, scale);
    Rng rng(102);
    FactorSet factors(ds.tensor.dims(), 16, rng);
    baselines::BaselineOptions opt;
    opt.workload = baselines::WorkloadInfo::from_dataset(ds);
    opt.collect_outputs = false;
    auto platform = sim::make_default_platform(4, scale);
    return baselines::run_amped(platform, ds.tensor, factors, opt)
               .total_seconds *
           scale;
  };
  const double coarse = run_at(2000.0);
  const double fine = run_at(500.0);
  EXPECT_NEAR(coarse / fine, 1.0, 0.15);
}

}  // namespace
}  // namespace amped
