#include <gtest/gtest.h>

#include <tuple>

#include "core/amped_tensor.hpp"
#include "core/mttkrp.hpp"
#include "tensor/generator.hpp"
#include "tensor/reference_mttkrp.hpp"

namespace amped {
namespace {

constexpr double kTol = 5e-4;  // float accumulation vs double reference

CooTensor make_tensor(std::size_t modes, double skew, std::uint64_t seed,
                      nnz_t nnz = 20000) {
  GeneratorOptions opt;
  opt.dims.assign(modes, 0);
  for (std::size_t m = 0; m < modes; ++m) {
    opt.dims[m] = static_cast<index_t>(64 + 61 * m);
  }
  opt.zipf_exponents.assign(modes, skew);
  opt.nnz = nnz;
  opt.seed = seed;
  return generate_random(opt);
}

// Correctness sweep: modes x skew x gpu-count x policy. Every combination
// must match the sequential double-precision reference.
class MttkrpCorrectness
    : public ::testing::TestWithParam<
          std::tuple<std::size_t, double, int, SchedulingPolicy>> {};

TEST_P(MttkrpCorrectness, MatchesReference) {
  const auto [modes, skew, gpus, policy] = GetParam();
  auto input = make_tensor(modes, skew, 100 + modes);
  Rng rng(55);
  FactorSet factors(input.dims(), 16, rng);

  AmpedBuildOptions build;
  build.num_gpus = gpus;
  auto tensor = AmpedTensor::build(input, build);

  auto platform = sim::make_default_platform(gpus);
  MttkrpOptions opt;
  opt.policy = policy;

  std::vector<DenseMatrix> outputs;
  auto report = mttkrp_all_modes(platform, tensor, factors, outputs, opt);

  const auto reference = reference_mttkrp_all_modes(input, factors);
  ASSERT_EQ(outputs.size(), modes);
  for (std::size_t d = 0; d < modes; ++d) {
    EXPECT_LT(relative_max_diff(reference[d], outputs[d]), kTol)
        << "mode " << d << " gpus " << gpus << " policy "
        << to_string(policy);
  }
  EXPECT_GT(report.total_seconds, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MttkrpCorrectness,
    ::testing::Combine(::testing::Values<std::size_t>(3, 4, 5),
                       ::testing::Values(0.0, 1.1),
                       ::testing::Values(1, 2, 4),
                       ::testing::Values(SchedulingPolicy::kStaticGreedy,
                                         SchedulingPolicy::kDynamicQueue)),
    [](const auto& param_info) {
      std::string n = "m";
      n += std::to_string(std::get<0>(param_info.param));
      n += "_s";
      n += std::to_string(static_cast<int>(std::get<1>(param_info.param) * 10));
      n += "_g";
      n += std::to_string(std::get<2>(param_info.param));
      n += "_";
      n += (std::get<3>(param_info.param) == SchedulingPolicy::kStaticGreedy
                ? "greedy"
                : "dyn");
      return n;
    });

TEST(MttkrpTest, ReportStructure) {
  auto input = make_tensor(3, 0.5, 7);
  Rng rng(8);
  FactorSet factors(input.dims(), 8, rng);
  auto tensor = AmpedTensor::build(input, AmpedBuildOptions{});
  auto platform = sim::make_default_platform(4);

  std::vector<DenseMatrix> outputs;
  auto report =
      mttkrp_all_modes(platform, tensor, factors, outputs, MttkrpOptions{});

  ASSERT_EQ(report.modes.size(), 3u);
  double sum = 0.0;
  for (const auto& m : report.modes) {
    EXPECT_GT(m.seconds, 0.0);
    EXPECT_GT(m.h2d, 0.0);        // shards always stream
    EXPECT_GT(m.compute, 0.0);
    EXPECT_GT(m.p2p, 0.0);        // 4 GPUs -> ring traffic
    EXPECT_EQ(m.per_gpu_compute.size(), 4u);
    sum += m.seconds;
  }
  EXPECT_NEAR(report.total_seconds, sum, 1e-9);
  EXPECT_EQ(report.per_gpu_compute.size(), 4u);
  EXPECT_GE(report.compute_overhead_fraction(), 0.0);
  EXPECT_GT(report.communication_fraction(), 0.0);
  EXPECT_LT(report.communication_fraction(), 1.0);
}

TEST(MttkrpTest, LoadBalancedAcrossGpus) {
  // Fig. 8 property: with many shards, EC imbalance across GPUs is tiny.
  auto input = make_tensor(3, 0.8, 9, 60000);
  Rng rng(10);
  FactorSet factors(input.dims(), 16, rng);
  AmpedBuildOptions build;
  build.shards_per_gpu = 24;
  auto tensor = AmpedTensor::build(input, build);
  auto platform = sim::make_default_platform(4);

  std::vector<DenseMatrix> outputs;
  auto report =
      mttkrp_all_modes(platform, tensor, factors, outputs, MttkrpOptions{});
  EXPECT_LT(report.compute_overhead_fraction(), 0.05);
}

TEST(MttkrpTest, SingleGpuHasNoPeerTraffic) {
  auto input = make_tensor(3, 0.0, 11);
  Rng rng(12);
  FactorSet factors(input.dims(), 8, rng);
  AmpedBuildOptions build;
  build.num_gpus = 1;
  auto tensor = AmpedTensor::build(input, build);
  auto platform = sim::make_default_platform(1);

  std::vector<DenseMatrix> outputs;
  auto report =
      mttkrp_all_modes(platform, tensor, factors, outputs, MttkrpOptions{});
  for (const auto& m : report.modes) EXPECT_DOUBLE_EQ(m.p2p, 0.0);
}

TEST(MttkrpTest, MoreGpusRunFaster) {
  // Scaled-platform semantics: the miniature tensor stands in for one
  // ~10000x larger, so per-transfer latencies scale down with it.
  auto input = make_tensor(3, 0.3, 13, 60000);
  Rng rng(14);
  FactorSet factors(input.dims(), 16, rng);

  double prev = 1e30;
  for (int gpus : {1, 2, 4}) {
    AmpedBuildOptions build;
    build.num_gpus = gpus;
    auto tensor = AmpedTensor::build(input, build);
    auto platform = sim::make_default_platform(gpus, 10000.0);
    std::vector<DenseMatrix> outputs;
    auto report =
        mttkrp_all_modes(platform, tensor, factors, outputs, MttkrpOptions{});
    EXPECT_LT(report.total_seconds, prev) << gpus << " GPUs";
    prev = report.total_seconds;
  }
}

TEST(MttkrpTest, WiderBlocksNoSlowerThanNarrow) {
  auto input = make_tensor(3, 0.0, 15);
  Rng rng(16);
  FactorSet factors(input.dims(), 16, rng);
  auto tensor = AmpedTensor::build(input, AmpedBuildOptions{});

  auto run_width = [&](nnz_t width) {
    auto platform = sim::make_default_platform(4);
    MttkrpOptions opt;
    opt.block_width = width;
    std::vector<DenseMatrix> outputs;
    return mttkrp_all_modes(platform, tensor, factors, outputs, opt)
        .total_seconds;
  };
  EXPECT_LT(run_width(32), run_width(4));
}

TEST(MttkrpTest, OutputOwnershipDisjointAcrossGpus) {
  // Every output row is owned by exactly one GPU: with the all-gather
  // replaced by nothing, re-running per-mode must still produce the same
  // result because updates never straddle GPUs. This is implied by the
  // reference match, but check the partition property explicitly.
  auto input = make_tensor(3, 1.2, 17);
  input.sort_by_mode(0);
  auto part = build_mode_partition(input, 0, 64);
  auto assignment = assign_shards(part, 4, SchedulingPolicy::kStaticGreedy);
  std::vector<int> owner(input.dim(0), -1);
  for (int g = 0; g < 4; ++g) {
    for (std::size_t id : assignment.per_gpu[static_cast<std::size_t>(g)]) {
      const auto& s = part.shards[id];
      for (index_t i = s.index_begin; i < s.index_end; ++i) {
        EXPECT_EQ(owner[i], -1) << "index " << i << " owned twice";
        owner[i] = g;
      }
    }
  }
  for (index_t i = 0; i < input.dim(0); ++i) EXPECT_NE(owner[i], -1);
}

}  // namespace
}  // namespace amped
