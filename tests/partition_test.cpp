#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "core/partition.hpp"
#include "tensor/generator.hpp"
#include "util/stats.hpp"

namespace amped {
namespace {

CooTensor sorted_tensor(index_t dim0, nnz_t nnz, double zipf,
                        std::uint64_t seed) {
  GeneratorOptions opt;
  opt.dims = {dim0, 64, 64};
  opt.nnz = nnz;
  opt.zipf_exponents = {zipf, 0.0, 0.0};
  opt.seed = seed;
  auto t = generate_random(opt);
  t.sort_by_mode(0);
  return t;
}

TEST(PartitionTest, ShardsCoverAllNonzerosExactlyOnce) {
  auto t = sorted_tensor(1000, 5000, 0.0, 1);
  auto part = build_mode_partition(t, 0, 16);
  EXPECT_EQ(part.shards.size(), 16u);
  EXPECT_EQ(part.total_nnz(), t.nnz());
  nnz_t cursor = 0;
  for (const auto& s : part.shards) {
    EXPECT_EQ(s.nnz_begin, cursor);
    cursor = s.nnz_end;
  }
  EXPECT_EQ(cursor, t.nnz());
}

TEST(PartitionTest, ShardIndexRangesAreDisjointAndCoverDim) {
  auto t = sorted_tensor(777, 3000, 0.5, 2);
  auto part = build_mode_partition(t, 0, 10);
  index_t cursor = 0;
  for (const auto& s : part.shards) {
    EXPECT_EQ(s.index_begin, cursor);
    EXPECT_GT(s.index_end, s.index_begin);
    cursor = s.index_end;
  }
  EXPECT_EQ(cursor, 777u);
}

TEST(PartitionTest, ElementsLandInTheirIndexRange) {
  auto t = sorted_tensor(500, 4000, 0.9, 3);
  auto part = build_mode_partition(t, 0, 8);
  auto idx = t.indices(0);
  for (const auto& s : part.shards) {
    for (nnz_t n = s.nnz_begin; n < s.nnz_end; ++n) {
      EXPECT_GE(idx[n], s.index_begin);
      EXPECT_LT(idx[n], s.index_end);
    }
  }
}

TEST(PartitionTest, ShardCountClampedToDim) {
  auto t = sorted_tensor(5, 100, 0.0, 4);
  auto part = build_mode_partition(t, 0, 64);
  EXPECT_EQ(part.shards.size(), 5u);  // one index per shard at most
}

TEST(PartitionTest, AssignmentCoversEveryShardOnce) {
  auto t = sorted_tensor(1000, 8000, 0.8, 5);
  auto part = build_mode_partition(t, 0, 32);
  for (auto policy :
       {SchedulingPolicy::kStaticGreedy, SchedulingPolicy::kDynamicQueue,
        SchedulingPolicy::kContiguous}) {
    auto a = assign_shards(part, 4, policy);
    ASSERT_EQ(a.per_gpu.size(), 4u) << to_string(policy);
    std::set<std::size_t> seen;
    for (const auto& list : a.per_gpu) {
      for (std::size_t id : list) {
        EXPECT_TRUE(seen.insert(id).second) << "duplicate shard " << id;
      }
    }
    EXPECT_EQ(seen.size(), part.shards.size()) << to_string(policy);
  }
}

TEST(PartitionTest, GreedyBalancesSkewedShards) {
  // Zipf-heavy mode: shard nnz varies a lot; LPT must still balance GPUs
  // to within a few percent while contiguous assignment does far worse.
  auto t = sorted_tensor(4096, 100000, 1.1, 6);
  auto part = build_mode_partition(t, 0, 96);

  auto greedy = assign_shards(part, 4, SchedulingPolicy::kStaticGreedy);
  auto naive = assign_shards(part, 4, SchedulingPolicy::kContiguous);

  auto to_double = [](const std::vector<nnz_t>& v) {
    std::vector<double> d(v.begin(), v.end());
    return d;
  };
  const double greedy_imb =
      imbalance_factor(to_double(greedy.nnz_per_gpu(part)));
  const double naive_imb =
      imbalance_factor(to_double(naive.nnz_per_gpu(part)));
  EXPECT_LT(greedy_imb, 1.10);
  EXPECT_GT(naive_imb, greedy_imb);
}

TEST(PartitionTest, GreedyExecutionOrderIsIndexSorted) {
  auto t = sorted_tensor(512, 5000, 0.7, 7);
  auto part = build_mode_partition(t, 0, 24);
  auto a = assign_shards(part, 3, SchedulingPolicy::kStaticGreedy);
  for (const auto& list : a.per_gpu) {
    EXPECT_TRUE(std::is_sorted(list.begin(), list.end()));
  }
}

TEST(PartitionTest, SingleGpuGetsEverything) {
  auto t = sorted_tensor(100, 1000, 0.0, 8);
  auto part = build_mode_partition(t, 0, 16);
  auto a = assign_shards(part, 1, SchedulingPolicy::kStaticGreedy);
  EXPECT_EQ(a.per_gpu[0].size(), part.shards.size());
  EXPECT_EQ(a.nnz_per_gpu(part)[0], t.nnz());
}

TEST(PartitionTest, SplitIspsEqualSized) {
  Shard s{.index_begin = 0, .index_end = 10, .nnz_begin = 100,
          .nnz_end = 1125};
  auto isps = split_isps(s, 256);
  ASSERT_EQ(isps.size(), 5u);  // 1025 elements -> 4 x 256 + 1
  for (std::size_t i = 0; i + 1 < isps.size(); ++i) {
    EXPECT_EQ(isps[i].second - isps[i].first, 256u);
  }
  EXPECT_EQ(isps.back().second - isps.back().first, 1u);
  EXPECT_EQ(isps.front().first, 0u);
  EXPECT_EQ(isps.back().second, s.nnz());
}

TEST(PartitionTest, SplitIspsEmptyShard) {
  Shard s{.index_begin = 0, .index_end = 1, .nnz_begin = 5, .nnz_end = 5};
  EXPECT_TRUE(split_isps(s, 64).empty());
}

TEST(PartitionTest, PolicyNames) {
  EXPECT_EQ(to_string(SchedulingPolicy::kStaticGreedy), "static-greedy");
  EXPECT_EQ(to_string(SchedulingPolicy::kDynamicQueue), "dynamic-queue");
  EXPECT_EQ(to_string(SchedulingPolicy::kContiguous), "contiguous");
}

}  // namespace
}  // namespace amped
