// End-to-end CLI driver: decompose a FROSTT `.tns` file, a binary
// `.amptns` snapshot, or a freshly generated demo tensor on the simulated
// multi-GPU platform, then save the model for downstream use.
//
//   ./decompose_file --input my_tensor.tns --rank 16 --gpus 4 --output model.ampfac
//
// Execution-engine flags (see exec/scheduler.hpp):
//   --policy cost-model           shard scheduling policy (static-greedy,
//                                 dynamic-queue, contiguous,
//                                 weighted-static, cost-model,
//                                 dynamic-lookahead; short spellings
//                                 greedy/dynamic/weighted/lookahead)
//   --allgather direct            factor exchange (ring, direct, host-staged)
//   --pipelined                   double-buffered shard streaming
//   --backend sim|host            run plans on the simulated platform
//                                 (default) or for real on host threads
//                                 (exec/host_backend.hpp)
//   --trace out.json              write a Chrome-format timeline of the
//                                 run: modelled timestamps under the sim
//                                 backend, measured wall-clock timestamps
//                                 from the lane/copy-engine/worker threads
//                                 under --backend host — same rows and
//                                 labels, so the two files render
//                                 side-by-side in Perfetto
//
// Observability flags (util/metrics.hpp):
//   --report-json out.json        write one machine-readable run report:
//                                 job config, fit/iteration result,
//                                 measured-vs-predicted per-phase times,
//                                 preprocess + fault-recovery stats,
//                                 checkpoint/resume events, and the full
//                                 metrics snapshot
//   --log-level LEVEL             stderr log threshold (error|warn|info|
//                                 debug, same as AMPED_LOG_LEVEL)
//
// Storage-engine flags:
//   --write-snapshot out.amptns   convert the input to a v2 snapshot
//                                 (later runs mmap it: no parse, no copy)
//   --memory-budget 512M          cap tracked host memory; AMPED copies
//                                 spill to disk and stream back
//
// Fault-tolerance flags (core/checkpoint.hpp, util/fault.hpp):
//   --checkpoint run.ampckp       write an atomic ALS checkpoint every
//                                 --checkpoint-every N iterations (def. 1)
//   --resume                      continue from the checkpoint if present;
//                                 the resumed run is bit-identical to an
//                                 uninterrupted one
//   --verify-resume               after the run, redo it uninterrupted
//                                 (no checkpointing) and memcmp the
//                                 factors — prints the bit-identity verdict
//   --tol X                       convergence tolerance (0 = fixed
//                                 iteration count, what --verify-resume
//                                 and the CI kill/resume drill use)
//   --faults SPEC                 arm fault-injection sites (AMPED_FAULTS
//                                 grammar), e.g. cpd.iteration:nth=5
//
// Batched mode (plan composition, exec/compose.hpp):
//   ./decompose_file --batch a.tns b.tns ...
// decomposes every listed tensor in one batched run: each ALS mode update
// lowers one plan per tensor and composes them, so shards of tensor B
// fill GPU lanes that would idle while tensor A drains. The run verifies
// the batched factors are bit-identical to solo execution and reports the
// composed-vs-back-to-back makespan. Without file arguments two demo
// tensors are generated.
//
// Graph scheduling (batched mode only, docs/SCHEDULING.md):
//   --graph                       lower each batched mode step as one
//                                 dependency graph: the factor all-gather
//                                 is an edge, not a barrier, so tensor
//                                 A's next mode starts the moment its own
//                                 factors land — even while tensor B's
//                                 mode-d tail still drains
//   --graph-window N              compose N whole ALS iterations per
//                                 graph dispatch (implies --graph;
//                                 requires --tol 0 and a static,
//                                 non-pipelined policy, else the run
//                                 falls back to phase barriers and says
//                                 so). --report-json gains a
//                                 gather_edges array: one record per
//                                 all-gather edge with workload,
//                                 iteration, mode, bytes, start, finish.
//
// Without --input, a small demo tensor is generated and written next to
// the model so the whole I/O path is exercised.
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "core/batch.hpp"
#include "core/cpd.hpp"
#include "exec/backend.hpp"
#include "exec/scheduler.hpp"
#include "sim/trace.hpp"
#include "io/mapped_tensor.hpp"
#include "io/memory_budget.hpp"
#include "io/snapshot.hpp"
#include "tensor/factor_io.hpp"
#include "tensor/generator.hpp"
#include "tensor/tns_io.hpp"
#include "util/cli.hpp"
#include "util/json.hpp"
#include "util/logging.hpp"
#include "util/metrics.hpp"

namespace {

// 2 for a v2 snapshot (mmap-able), 1 for v1 (owned read), 0 for text.
int snapshot_version(const std::string& path) {
  // Only regular files can be probed (and mmapped): reading magic bytes
  // from a FIFO would consume them before the real parse.
  std::error_code ec;
  if (!std::filesystem::is_regular_file(path, ec) || ec) return 0;
  std::ifstream in(path, std::ios::binary);
  char magic[8] = {};
  in.read(magic, sizeof(magic));
  if (!in) return 0;
  if (std::memcmp(magic, amped::io::kSnapshotMagicV2, 8) == 0) return 2;
  if (std::memcmp(magic, amped::io::kSnapshotMagicV1, 8) == 0) return 1;
  return 0;
}

// One batch input: an owned tensor (text / v1 / generated demo) or a
// zero-copy mapped v2 snapshot — the same dual the solo driver uses, so
// `--batch big.amptns ...` pays neither a parse nor a copy per input.
struct BatchInput {
  amped::CooTensor owned;
  amped::io::MappedCooTensor mapped;
  bool use_mapped = false;

  std::string shape_string() const {
    return use_mapped ? mapped.shape_string() : owned.shape_string();
  }
  bool indices_in_bounds() const {
    return use_mapped ? mapped.indices_in_bounds()
                      : owned.indices_in_bounds();
  }
  amped::AmpedTensor build(const amped::AmpedBuildOptions& options,
                           amped::PreprocessStats* stats = nullptr) const {
    return use_mapped ? amped::AmpedTensor::build(mapped, options, stats)
                      : amped::AmpedTensor::build(owned, options, stats);
  }
};

BatchInput load_batch_input(const std::string& input) {
  BatchInput out;
  switch (snapshot_version(input)) {
    case 2:
      std::printf("mapping snapshot %s (zero-copy) ...\n", input.c_str());
      out.mapped = amped::io::MappedCooTensor(input);
      out.use_mapped = true;
      break;
    case 1:
      std::printf("reading v1 snapshot %s ...\n", input.c_str());
      out.owned = amped::read_binary_file(input);
      break;
    default:
      std::printf("reading %s (parallel ingest) ...\n", input.c_str());
      out.owned = amped::read_tns_file(input);
  }
  return out;
}

// The --batch flavour of the --report-json run report: per-tensor
// results plus the batch-level schedule evidence — makespan and
// back-to-back baseline, barrier/dispatch counters, and one record per
// all-gather edge (workload, iteration, mode, bytes, start, finish) —
// the executor's per-edge gather accounting, machine-readable.
bool write_batch_report_json(const std::string& path,
                             const amped::CpdOptions& opt, int gpus,
                             const std::vector<amped::CpdResult>& batched,
                             const amped::BatchReport& report,
                             double back_to_back_seconds,
                             const amped::sim::TraceLog* trace) {
  using namespace amped;
  std::ofstream out(path);
  if (!out) return false;
  json::Writer w(out);
  w.begin_object();
  w.member("schema_version", 1);

  w.key("config").begin_object();
  w.member("batch", true);
  w.member("tensors", batched.size());
  w.member("gpus", gpus);
  w.member("rank", opt.rank);
  w.member("max_iterations", opt.max_iterations);
  w.member("tolerance", opt.tolerance);
  w.member("backend", to_string(opt.mttkrp.backend));
  w.member("policy", exec::make_scheduler(opt.mttkrp)->name());
  w.member("allgather", to_string(opt.mttkrp.allgather));
  w.member("pipelined", opt.mttkrp.pipelined_streaming);
  w.member("graph_window", opt.graph_window);
  w.end_object();

  w.key("results").begin_array();
  for (const auto& r : batched) {
    w.begin_object();
    w.member("fit", r.fit);
    w.member("iterations", r.iterations);
    w.member("converged", r.converged);
    w.member("mttkrp_seconds", r.mttkrp_sim_seconds);
    w.end_object();
  }
  w.end_array();

  w.key("batch").begin_object();
  w.member("makespan_seconds", report.total_seconds);
  w.member("back_to_back_seconds", back_to_back_seconds);
  w.member("elided_barriers", report.elided_barriers);
  w.member("graph_dispatches", report.graph_dispatches);
  w.member("mode_steps", report.steps.size());
  w.end_object();

  w.key("gather_edges").begin_array();
  for (const auto& e : report.gather_edges) {
    w.begin_object();
    w.member("workload", e.workload);
    w.member("iteration", e.iteration);
    w.member("mode", e.mode);
    w.member("bytes", e.bytes);
    w.member("start", e.start);
    w.member("finish", e.finish);
    w.end_object();
  }
  w.end_array();

  if (trace != nullptr) {
    w.key("trace").begin_object();
    w.member("events", trace->events().size());
    w.member("dropped", trace->dropped());
    w.end_object();
  }

  w.key("metrics").raw(metrics::Registry::global().snapshot_json());
  w.end_object();
  out << '\n';
  return static_cast<bool>(out);
}

// The --batch path: decompose every input in one composed run, verify
// bit-identity against solo runs, and report the makespan saving.
int run_batch(const amped::CliArgs& args, amped::CpdOptions opt, int gpus,
              const std::string& output) {
  using namespace amped;

  // `--batch a.tns b.tns`: the flag parser consumes the first file as the
  // flag's value; anything that is not a boolean literal is an input.
  std::vector<std::string> inputs;
  const std::string batch_value = args.get("batch", "true");
  if (batch_value != "true" && batch_value != "1" && batch_value != "yes") {
    inputs.push_back(batch_value);
  }
  for (const auto& p : args.positional()) inputs.push_back(p);
  std::vector<BatchInput> batch_inputs;
  try {
    if (inputs.empty()) {
      std::printf("no input files after --batch; generating two demo "
                  "tensors (demo_batch_{a,b}.tns)\n");
      GeneratorOptions gen;
      gen.dims = {600, 400, 200};
      gen.nnz = 60000;
      gen.zipf_exponents = {0.7, 0.7, 0.5};
      gen.seed = 2026;
      batch_inputs.emplace_back().owned = generate_random(gen);
      write_tns_file(batch_inputs.back().owned, "demo_batch_a.tns");
      gen.dims = {320, 480, 256};
      gen.nnz = 45000;
      gen.zipf_exponents = {0.4, 0.9, 0.3};
      gen.seed = 2027;
      batch_inputs.emplace_back().owned = generate_random(gen);
      write_tns_file(batch_inputs.back().owned, "demo_batch_b.tns");
    } else {
      for (const auto& input : inputs) {
        batch_inputs.push_back(load_batch_input(input));
      }
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }

  AmpedBuildOptions build;
  build.num_gpus = gpus;
  std::vector<AmpedTensor> tensors;
  std::vector<const AmpedTensor*> tensor_ptrs;
  try {
    for (std::size_t i = 0; i < batch_inputs.size(); ++i) {
      std::printf("tensor %zu: %s\n", i,
                  batch_inputs[i].shape_string().c_str());
      if (!batch_inputs[i].indices_in_bounds()) {
        std::fprintf(stderr, "error: tensor %zu indices out of bounds\n", i);
        return 1;
      }
      tensors.push_back(batch_inputs[i].build(build));
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  for (const auto& t : tensors) tensor_ptrs.push_back(&t);

  std::printf("execution: %s scheduler, %s all-gather, %s backend, "
              "%zu-tensor batch\n",
              exec::make_scheduler(opt.mttkrp)->name().c_str(),
              to_string(opt.mttkrp.allgather).c_str(),
              to_string(opt.mttkrp.backend).c_str(), tensors.size());

  auto platform = sim::make_default_platform(gpus);
  sim::TraceLog trace;
  // Graph runs add "gather-edge scope<N> mode<M>" rows to the timeline,
  // so the Perfetto view shows kernels running across an in-flight
  // gather — the overlap a phase barrier would forbid.
  if (args.has("trace")) platform.attach_trace(&trace);
  BatchReport report;
  const auto batched = cpd_batch(platform, tensor_ptrs, opt, &report);
  std::printf("composed plan: %zu tensors per mode step, %zu barriers "
              "elided across %zu steps\n",
              tensors.size(), report.elided_barriers, report.steps.size());
  if (opt.graph_window > 0) {
    if (report.graph_dispatches == 0) {
      std::printf("graph scheduling requested but fell back to "
                  "phase-barrier composition (needs --tol 0 and a static, "
                  "non-pipelined policy)\n");
    } else {
      // Overlap evidence straight from the executor's timeline: a gather
      // edge is overlapped when another workload's kernels run while it
      // is in flight — exactly what a phase barrier would forbid.
      std::size_t overlapped = 0;
      for (const auto& e : report.gather_edges) {
        for (const auto& k : report.kernel_spans) {
          if (k.workload != e.workload && k.start < e.finish &&
              k.finish > e.start) {
            ++overlapped;
            break;
          }
        }
      }
      std::printf("graph schedule: %zu dispatch%s of a %zu-iteration "
                  "window, %zu gather edges (%zu overlapped by another "
                  "tensor's kernels)\n",
                  report.graph_dispatches,
                  report.graph_dispatches == 1 ? "" : "es",
                  opt.graph_window, report.gather_edges.size(),
                  overlapped);
    }
  }

  // Solo reference runs: same options, fresh platforms. The factors must
  // be bit-identical — composition may only change *when* shards run,
  // never any tensor's arithmetic.
  double solo_sum = 0.0;
  bool identical = true;
  for (std::size_t i = 0; i < tensors.size(); ++i) {
    auto solo_platform = sim::make_default_platform(gpus);
    const auto solo = cp_als(solo_platform, tensors[i], opt);
    solo_sum += solo.mttkrp_sim_seconds;
    identical = identical && solo.fit == batched[i].fit &&
                solo.iterations == batched[i].iterations &&
                solo.lambda == batched[i].lambda;
    for (std::size_t d = 0; identical && d < tensors[i].num_modes(); ++d) {
      const auto& a = solo.factors.factor(d);
      const auto& b = batched[i].factors.factor(d);
      identical = a.rows() == b.rows() && a.cols() == b.cols() &&
                  std::memcmp(a.data().data(), b.data().data(),
                              a.bytes()) == 0;
    }
  }
  if (!identical) {
    std::fprintf(stderr,
                 "error: batched outputs diverge from solo execution\n");
    return 1;
  }
  std::printf("batched factors bit-identical to solo execution\n");
  std::printf("batched MTTKRP makespan %.4f s vs back-to-back %.4f s "
              "(%.1f%% saved)\n",
              report.total_seconds, solo_sum,
              solo_sum > 0.0
                  ? (1.0 - report.total_seconds / solo_sum) * 100.0
                  : 0.0);

  for (std::size_t i = 0; i < tensors.size(); ++i) {
    std::printf("tensor %zu: CPD rank-%zu fit %.4f in %zu iterations\n", i,
                opt.rank, batched[i].fit, batched[i].iterations);
    CpdModel model;
    model.lambda = batched[i].lambda;
    model.fit = batched[i].fit;
    for (std::size_t d = 0; d < tensors[i].num_modes(); ++d) {
      model.factors.push_back(batched[i].factors.factor(d));
    }
    const auto stem = std::filesystem::path(output).stem().string();
    const auto ext = std::filesystem::path(output).extension().string();
    const auto model_path =
        (std::filesystem::path(output).parent_path() /
         (stem + "-" + std::to_string(i) + ext))
            .string();
    write_model_file(model, model_path);
    std::printf("model %zu saved to %s\n", i, model_path.c_str());
  }
  if (args.has("trace")) {
    const std::string trace_path = args.get("trace", "trace.json");
    trace.write_chrome_json_file(trace_path);
    std::printf("%s timeline written to %s (%zu events)\n",
                opt.mttkrp.backend == exec::ExecBackend::kHostParallel
                    ? "measured"
                    : "simulated",
                trace_path.c_str(), trace.events().size());
  }
  if (args.has("report-json")) {
    const std::string report_path = args.get("report-json", "report.json");
    if (!write_batch_report_json(report_path, opt, gpus, batched, report,
                                 solo_sum,
                                 args.has("trace") ? &trace : nullptr)) {
      std::fprintf(stderr, "error: cannot write run report to %s\n",
                   report_path.c_str());
      return 1;
    }
    std::printf("batch run report written to %s\n", report_path.c_str());
  }
  return 0;
}

// The --report-json run report: everything a CI job or a notebook needs
// to judge a run without scraping stdout. Top-level keys (strict JSON,
// schema_version bumps when a key changes meaning):
//   config       effective job configuration after flag parsing
//   result       fit / iterations / convergence / total MTTKRP seconds
//   phases       measured seconds per phase, with the cost model's
//                prediction alongside where the model prices that phase
//                (sim backend: prediction == measurement by construction)
//   preprocess   build wall time, bytes, spill + fault-recovery counts
//   fault_recovery  process-wide recovery counters (build + streaming)
//   checkpoint   checkpoints written, resume events
//   trace        event/dropped counts (present only when --trace ran)
//   metrics      the full registry snapshot (util/metrics.hpp schema)
bool write_report_json(const std::string& path, const amped::CliArgs& args,
                       const amped::CpdOptions& opt, int gpus,
                       const amped::PreprocessStats& prep,
                       const amped::CpdResult& result,
                       const amped::sim::TraceLog* trace) {
  using namespace amped;
  std::ofstream out(path);
  if (!out) return false;
  json::Writer w(out);
  w.begin_object();
  w.member("schema_version", 1);

  w.key("config").begin_object();
  w.member("input", args.get("input", "demo_tensor.tns"));
  w.member("gpus", gpus);
  w.member("rank", opt.rank);
  w.member("max_iterations", opt.max_iterations);
  w.member("tolerance", opt.tolerance);
  w.member("backend", to_string(opt.mttkrp.backend));
  w.member("policy", exec::make_scheduler(opt.mttkrp)->name());
  w.member("allgather", to_string(opt.mttkrp.allgather));
  w.member("pipelined", opt.mttkrp.pipelined_streaming);
  w.member("checkpoint_path", opt.checkpoint_path);
  w.member("resume", opt.resume);
  w.end_object();

  w.key("result").begin_object();
  w.member("fit", result.fit);
  w.member("iterations", result.iterations);
  w.member("converged", result.converged);
  w.member("mttkrp_seconds", result.mttkrp_sim_seconds);
  w.end_object();

  w.key("phases").begin_object();
  w.key("compute").begin_object();
  w.member("measured_seconds", result.compute_seconds);
  w.member("predicted_seconds", result.predicted_compute_seconds);
  w.end_object();
  w.key("h2d").begin_object();
  w.member("measured_seconds", result.h2d_seconds);
  w.member("predicted_seconds", result.predicted_h2d_seconds);
  w.end_object();
  w.key("p2p").begin_object();
  w.member("measured_seconds", result.p2p_seconds);
  w.member("gather_bytes", result.gather_bytes);
  w.end_object();
  w.key("sync").begin_object();
  w.member("measured_seconds", result.sync_seconds);
  w.end_object();
  w.end_object();

  w.key("preprocess").begin_object();
  w.member("wall_seconds", prep.wall_seconds);
  w.member("bytes_built", prep.bytes_built);
  w.member("spilled", prep.spilled);
  w.member("spill_retries", prep.spill_retries);
  w.member("spill_rebuilds", prep.spill_rebuilds);
  w.member("degraded_to_resident", prep.degraded_to_resident);
  w.end_object();

  // Process-wide recovery counters: unlike the preprocess block above
  // (build-time only) these include retries/rebuilds hit while streaming
  // shards during the solve.
  w.key("fault_recovery").begin_object();
  w.member("spill_retries", metrics::counter("stream.spill_retries").value());
  w.member("spill_rebuilds",
           metrics::counter("stream.spill_rebuilds").value());
  w.member("degraded_to_resident",
           metrics::counter("build.degraded_to_resident").value());
  w.end_object();

  w.key("checkpoint").begin_object();
  w.member("checkpoints_written", result.checkpoints_written);
  w.member("resumed", result.resumed);
  w.member("resume_iteration", result.resume_iteration);
  w.end_object();

  if (trace != nullptr) {
    w.key("trace").begin_object();
    w.member("events", trace->events().size());
    w.member("dropped", trace->dropped());
    w.end_object();
  }

  w.key("metrics").raw(metrics::Registry::global().snapshot_json());
  w.end_object();
  out << '\n';
  return static_cast<bool>(out);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace amped;
  CliArgs args(argc, argv);
  CpdOptions opt;
  apply_common_flags(args, &opt.mttkrp);
  const int gpus = static_cast<int>(args.get_int("gpus", 4));
  const std::int64_t rank_arg = args.get_int("rank", 16);
  if (rank_arg <= 0) {
    AMPED_LOG_ERROR << "--rank must be >= 1 (got " << rank_arg << ")";
    std::fprintf(stderr, "error: --rank must be >= 1 (got %lld)\n",
                 static_cast<long long>(rank_arg));
    return 1;
  }
  // Tiled dispatch serves any rank, but factor matrices and CPD gram
  // products grow linearly/quadratically with it; past this point the
  // run is almost certainly a typo rather than a real decomposition.
  constexpr std::int64_t kSoftRankCap = 1024;
  if (rank_arg > kSoftRankCap) {
    AMPED_LOG_WARN << "--rank " << rank_arg << " exceeds the soft cap of "
                   << kSoftRankCap
                   << "; proceeding, but expect large memory use";
  }
  const auto rank = static_cast<std::size_t>(rank_arg);
  const auto iters = static_cast<std::size_t>(args.get_int("iters", 15));
  const std::string output = args.get("output", "model.ampfac");
  const bool host_backend =
      opt.mttkrp.backend == exec::ExecBackend::kHostParallel;

  // Checkpoint/restart knobs apply to both the solo and the batch path
  // (cpd_batch appends ".<index>" per tensor).
  opt.tolerance = args.get_double("tol", opt.tolerance);
  opt.checkpoint_path = args.get("checkpoint", "");
  opt.checkpoint_every =
      static_cast<std::size_t>(args.get_int("checkpoint-every", 1));
  opt.resume = args.get_bool("resume", false);

  if (args.has("batch")) {
    opt.rank = rank;
    opt.max_iterations = iters;
    // --graph alone is a one-iteration window: every mode step of that
    // iteration is still a single composed graph whose gathers are edges.
    const bool graph = args.get_bool("graph", false);
    opt.graph_window = static_cast<std::size_t>(
        args.get_int("graph-window", graph ? 1 : 0));
    return run_batch(args, opt, gpus, output);
  }

  // The tensor arrives as either an owned CooTensor (text input or
  // generated demo) or a zero-copy mapped snapshot — the same loader the
  // batch path uses, so format dispatch lives in one place.
  BatchInput in;
  try {
    if (args.has("input")) {
      in = load_batch_input(args.get("input", ""));
    } else {
      std::printf("no --input given; generating a demo tensor "
                  "(demo_tensor.tns)\n");
      GeneratorOptions gen;
      gen.dims = {600, 400, 200};
      gen.nnz = 60000;
      gen.zipf_exponents = {0.7, 0.7, 0.5};
      gen.seed = 2026;
      in.owned = generate_random(gen);
      write_tns_file(in.owned, "demo_tensor.tns");
    }

    if (args.has("write-snapshot")) {
      const std::string snap = args.get("write-snapshot", "");
      if (in.use_mapped) {
        io::write_snapshot_file(in.mapped.materialize(), snap);
      } else {
        io::write_snapshot_file(in.owned, snap);  // no copy of the owned tensor
      }
      std::printf("snapshot written to %s (%s); pass it as --input to "
                  "reload without parsing\n",
                  snap.c_str(),
                  io::format_bytes(std::filesystem::file_size(snap))
                      .c_str());
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }

  std::printf("tensor: %s\n", in.shape_string().c_str());
  if (!in.indices_in_bounds()) {
    std::fprintf(stderr, "error: tensor indices out of bounds\n");
    return 1;
  }

  auto& budget = io::HostMemoryBudget::global();
  if (budget.limit() != 0) {
    std::printf("memory budget: %s\n",
                io::format_bytes(budget.limit()).c_str());
  }

  AmpedBuildOptions build;
  build.num_gpus = gpus;
  PreprocessStats prep;
  AmpedTensor tensor;
  try {
    tensor = in.build(build, &prep);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  std::printf("preprocessed %zu modes in %.2fs wall; copies %s (%s)\n",
              tensor.num_modes(), prep.wall_seconds,
              prep.spilled ? "spilled to disk" : "resident in host memory",
              io::format_bytes(tensor.total_bytes()).c_str());

  auto platform = sim::make_default_platform(gpus);
  sim::TraceLog trace;
  // Both backends feed the same trace: the simulator records modelled
  // timestamps, the host backend records wall clock from its lane and
  // copy-engine threads (exec/host_backend.cpp reads platform.trace()).
  if (args.has("trace")) platform.attach_trace(&trace);
  opt.rank = rank;
  opt.max_iterations = iters;
  // The scheduler name is the effective configuration: dynamic-queue
  // streams sequentially even under --pipelined, and the name says so.
  std::printf("execution: %s scheduler, %s all-gather, %s backend\n",
              exec::make_scheduler(opt.mttkrp)->name().c_str(),
              to_string(opt.mttkrp.allgather).c_str(),
              to_string(opt.mttkrp.backend).c_str());
  CpdResult result;
  try {
    result = cp_als(platform, tensor, opt);
  } catch (const std::exception& e) {
    // A mid-run failure (injected fault, I/O error, numeric blow-up) is a
    // clean exit: with --checkpoint the newest checkpoint survives and a
    // --resume rerun continues from it.
    std::fprintf(stderr, "error: %s\n", e.what());
    if (!opt.checkpoint_path.empty()) {
      std::fprintf(stderr,
                   "rerun with --resume to continue from the last "
                   "checkpoint at %s\n", opt.checkpoint_path.c_str());
    }
    return 1;
  }
  if (!opt.checkpoint_path.empty()) {
    std::printf("checkpointing every %zu iteration%s to %s%s\n",
                opt.checkpoint_every, opt.checkpoint_every == 1 ? "" : "s",
                opt.checkpoint_path.c_str(),
                opt.resume ? " (resumed if present)" : "");
  }
  if (host_backend) {
    std::printf("CPD rank-%zu: fit %.4f in %zu iterations (measured MTTKRP "
                "wall %.4f s on %d host lane%s)\n",
                rank, result.fit, result.iterations,
                result.mttkrp_sim_seconds, gpus, gpus == 1 ? "" : "s");
  } else {
    std::printf("CPD rank-%zu: fit %.4f in %zu iterations (simulated MTTKRP "
                "%.4f s on %d GPU%s)\n",
                rank, result.fit, result.iterations,
                result.mttkrp_sim_seconds, gpus, gpus == 1 ? "" : "s");
  }
  if (args.get_bool("verify-resume", false)) {
    // Redo the whole decomposition uninterrupted (fresh platform, no
    // checkpointing) and compare bitwise — the proof that a killed and
    // resumed run converged to the exact same model.
    CpdOptions verify = opt;
    verify.checkpoint_path.clear();
    verify.resume = false;
    auto verify_platform = sim::make_default_platform(gpus);
    const CpdResult redo = cp_als(verify_platform, tensor, verify);
    bool identical = redo.fit == result.fit &&
                     redo.iterations == result.iterations &&
                     redo.lambda == result.lambda;
    for (std::size_t d = 0; identical && d < tensor.num_modes(); ++d) {
      const auto& a = redo.factors.factor(d);
      const auto& b = result.factors.factor(d);
      identical = a.rows() == b.rows() && a.cols() == b.cols() &&
                  std::memcmp(a.data().data(), b.data().data(),
                              a.bytes()) == 0;
    }
    if (!identical) {
      std::fprintf(stderr,
                   "error: resumed run diverges from an uninterrupted "
                   "run\n");
      return 1;
    }
    std::printf("resume verified: factors bit-identical to an "
                "uninterrupted run\n");
  }
  if (args.has("trace")) {
    const std::string trace_path = args.get("trace", "trace.json");
    trace.write_chrome_json_file(trace_path);
    std::printf("%s timeline written to %s (%zu events)\n",
                host_backend ? "measured" : "simulated", trace_path.c_str(),
                trace.events().size());
  }
  if (args.has("report-json")) {
    const std::string report_path = args.get("report-json", "report.json");
    if (!write_report_json(report_path, args, opt, gpus, prep, result,
                           args.has("trace") ? &trace : nullptr)) {
      std::fprintf(stderr, "error: cannot write run report to %s\n",
                   report_path.c_str());
      return 1;
    }
    std::printf("run report written to %s\n", report_path.c_str());
  }
  if (budget.limit() != 0) {
    std::printf("tracked host memory peak: %s of %s budget\n",
                io::format_bytes(budget.peak()).c_str(),
                io::format_bytes(budget.limit()).c_str());
  }

  CpdModel model;
  model.lambda = result.lambda;
  model.fit = result.fit;
  for (std::size_t d = 0; d < tensor.num_modes(); ++d) {
    model.factors.push_back(result.factors.factor(d));
  }
  write_model_file(model, output);
  std::printf("model saved to %s (%ju bytes)\n", output.c_str(),
              static_cast<std::uintmax_t>(
                  std::filesystem::file_size(output)));

  // Round-trip sanity so users can trust the checkpoint.
  const auto back = read_model_file(output);
  std::printf("checkpoint verified: %zu factor matrices, fit %.4f\n",
              back.factors.size(), back.fit);
  return 0;
}
