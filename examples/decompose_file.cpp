// End-to-end CLI driver: decompose a FROSTT `.tns` file, a binary
// `.amptns` snapshot, or a freshly generated demo tensor on the simulated
// multi-GPU platform, then save the model for downstream use.
//
//   ./decompose_file --input my_tensor.tns --rank 16 --gpus 4 --output model.ampfac
//
// Execution-engine flags (see exec/scheduler.hpp):
//   --policy cost-model           shard scheduling policy (static-greedy,
//                                 dynamic-queue, contiguous,
//                                 weighted-static, cost-model)
//   --allgather direct            factor exchange (ring, direct, host-staged)
//   --pipelined                   double-buffered shard streaming
//
// Storage-engine flags:
//   --write-snapshot out.amptns   convert the input to a v2 snapshot
//                                 (later runs mmap it: no parse, no copy)
//   --memory-budget 512M          cap tracked host memory; AMPED copies
//                                 spill to disk and stream back
//
// Without --input, a small demo tensor is generated and written next to
// the model so the whole I/O path is exercised.
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "core/cpd.hpp"
#include "exec/scheduler.hpp"
#include "io/mapped_tensor.hpp"
#include "io/memory_budget.hpp"
#include "io/snapshot.hpp"
#include "tensor/factor_io.hpp"
#include "tensor/generator.hpp"
#include "tensor/tns_io.hpp"
#include "util/cli.hpp"

namespace {

// 2 for a v2 snapshot (mmap-able), 1 for v1 (owned read), 0 for text.
int snapshot_version(const std::string& path) {
  // Only regular files can be probed (and mmapped): reading magic bytes
  // from a FIFO would consume them before the real parse.
  std::error_code ec;
  if (!std::filesystem::is_regular_file(path, ec) || ec) return 0;
  std::ifstream in(path, std::ios::binary);
  char magic[8] = {};
  in.read(magic, sizeof(magic));
  if (!in) return 0;
  if (std::memcmp(magic, amped::io::kSnapshotMagicV2, 8) == 0) return 2;
  if (std::memcmp(magic, amped::io::kSnapshotMagicV1, 8) == 0) return 1;
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace amped;
  CliArgs args(argc, argv);
  CpdOptions opt;
  apply_common_flags(args, &opt.mttkrp);
  const int gpus = static_cast<int>(args.get_int("gpus", 4));
  const auto rank = static_cast<std::size_t>(args.get_int("rank", 16));
  const auto iters = static_cast<std::size_t>(args.get_int("iters", 15));
  const std::string output = args.get("output", "model.ampfac");

  // The tensor arrives as either an owned CooTensor (text input or
  // generated demo) or a zero-copy mapped snapshot.
  CooTensor coo;
  io::MappedCooTensor mapped;
  bool use_mapped = false;
  try {
    if (args.has("input")) {
      const std::string input = args.get("input", "");
      switch (snapshot_version(input)) {
        case 2:
          std::printf("mapping snapshot %s (zero-copy) ...\n",
                      input.c_str());
          mapped = io::MappedCooTensor(input);
          use_mapped = true;
          break;
        case 1:
          std::printf("reading v1 snapshot %s ...\n", input.c_str());
          coo = read_binary_file(input);
          break;
        default:
          std::printf("reading %s (parallel ingest) ...\n", input.c_str());
          coo = read_tns_file(input);
      }
    } else {
      std::printf("no --input given; generating a demo tensor "
                  "(demo_tensor.tns)\n");
      GeneratorOptions gen;
      gen.dims = {600, 400, 200};
      gen.nnz = 60000;
      gen.zipf_exponents = {0.7, 0.7, 0.5};
      gen.seed = 2026;
      coo = generate_random(gen);
      write_tns_file(coo, "demo_tensor.tns");
    }

    if (args.has("write-snapshot")) {
      const std::string snap = args.get("write-snapshot", "");
      if (use_mapped) {
        io::write_snapshot_file(mapped.materialize(), snap);
      } else {
        io::write_snapshot_file(coo, snap);  // no copy of the owned tensor
      }
      std::printf("snapshot written to %s (%s); pass it as --input to "
                  "reload without parsing\n",
                  snap.c_str(),
                  io::format_bytes(std::filesystem::file_size(snap))
                      .c_str());
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }

  const std::string shape =
      use_mapped ? mapped.shape_string() : coo.shape_string();
  std::printf("tensor: %s\n", shape.c_str());
  if (use_mapped ? !mapped.indices_in_bounds() : !coo.indices_in_bounds()) {
    std::fprintf(stderr, "error: tensor indices out of bounds\n");
    return 1;
  }

  auto& budget = io::HostMemoryBudget::global();
  if (budget.limit() != 0) {
    std::printf("memory budget: %s\n",
                io::format_bytes(budget.limit()).c_str());
  }

  AmpedBuildOptions build;
  build.num_gpus = gpus;
  PreprocessStats prep;
  AmpedTensor tensor;
  try {
    tensor = use_mapped ? AmpedTensor::build(mapped, build, &prep)
                        : AmpedTensor::build(coo, build, &prep);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  std::printf("preprocessed %zu modes in %.2fs wall; copies %s (%s)\n",
              tensor.num_modes(), prep.wall_seconds,
              prep.spilled ? "spilled to disk" : "resident in host memory",
              io::format_bytes(tensor.total_bytes()).c_str());

  auto platform = sim::make_default_platform(gpus);
  opt.rank = rank;
  opt.max_iterations = iters;
  // The scheduler name is the effective configuration: dynamic-queue
  // streams sequentially even under --pipelined, and the name says so.
  std::printf("execution: %s scheduler, %s all-gather\n",
              exec::make_scheduler(opt.mttkrp)->name().c_str(),
              to_string(opt.mttkrp.allgather).c_str());
  const CpdResult result = cp_als(platform, tensor, opt);
  std::printf("CPD rank-%zu: fit %.4f in %zu iterations (simulated MTTKRP "
              "%.4f s on %d GPU%s)\n",
              rank, result.fit, result.iterations,
              result.mttkrp_sim_seconds, gpus, gpus == 1 ? "" : "s");
  if (budget.limit() != 0) {
    std::printf("tracked host memory peak: %s of %s budget\n",
                io::format_bytes(budget.peak()).c_str(),
                io::format_bytes(budget.limit()).c_str());
  }

  CpdModel model;
  model.lambda = result.lambda;
  model.fit = result.fit;
  for (std::size_t d = 0; d < tensor.num_modes(); ++d) {
    model.factors.push_back(result.factors.factor(d));
  }
  write_model_file(model, output);
  std::printf("model saved to %s (%ju bytes)\n", output.c_str(),
              static_cast<std::uintmax_t>(
                  std::filesystem::file_size(output)));

  // Round-trip sanity so users can trust the checkpoint.
  const auto back = read_model_file(output);
  std::printf("checkpoint verified: %zu factor matrices, fit %.4f\n",
              back.factors.size(), back.fit);
  return 0;
}
