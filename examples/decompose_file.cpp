// End-to-end CLI driver: decompose a FROSTT `.tns` file (or a freshly
// generated demo tensor) on the simulated multi-GPU platform, then save
// the model for downstream use.
//
//   ./decompose_file --input my_tensor.tns --rank 16 --gpus 4 --output model.ampfac
//
// Without --input, a small demo tensor is generated and written next to
// the model so the whole I/O path is exercised.
#include <cstdio>
#include <filesystem>

#include "core/cpd.hpp"
#include "tensor/factor_io.hpp"
#include "tensor/generator.hpp"
#include "tensor/tns_io.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace amped;
  CliArgs args(argc, argv);
  apply_common_flags(args);
  const int gpus = static_cast<int>(args.get_int("gpus", 4));
  const auto rank = static_cast<std::size_t>(args.get_int("rank", 16));
  const auto iters = static_cast<std::size_t>(args.get_int("iters", 15));
  const std::string output = args.get("output", "model.ampfac");

  CooTensor coo;
  if (args.has("input")) {
    const std::string input = args.get("input", "");
    std::printf("reading %s ...\n", input.c_str());
    try {
      coo = read_tns_file(input);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 1;
    }
  } else {
    std::printf("no --input given; generating a demo tensor "
                "(demo_tensor.tns)\n");
    GeneratorOptions gen;
    gen.dims = {600, 400, 200};
    gen.nnz = 60000;
    gen.zipf_exponents = {0.7, 0.7, 0.5};
    gen.seed = 2026;
    coo = generate_random(gen);
    write_tns_file(coo, "demo_tensor.tns");
  }
  std::printf("tensor: %s\n", coo.shape_string().c_str());
  if (!coo.indices_in_bounds()) {
    std::fprintf(stderr, "error: tensor indices out of bounds\n");
    return 1;
  }

  AmpedBuildOptions build;
  build.num_gpus = gpus;
  PreprocessStats prep;
  const AmpedTensor tensor = AmpedTensor::build(coo, build, &prep);
  std::printf("preprocessed %zu modes in %.2fs wall\n", tensor.num_modes(),
              prep.wall_seconds);

  auto platform = sim::make_default_platform(gpus);
  CpdOptions opt;
  opt.rank = rank;
  opt.max_iterations = iters;
  const CpdResult result = cp_als(platform, tensor, opt);
  std::printf("CPD rank-%zu: fit %.4f in %zu iterations (simulated MTTKRP "
              "%.4f s on %d GPU%s)\n",
              rank, result.fit, result.iterations,
              result.mttkrp_sim_seconds, gpus, gpus == 1 ? "" : "s");

  CpdModel model;
  model.lambda = result.lambda;
  model.fit = result.fit;
  for (std::size_t d = 0; d < tensor.num_modes(); ++d) {
    model.factors.push_back(result.factors.factor(d));
  }
  write_model_file(model, output);
  std::printf("model saved to %s (%ju bytes)\n", output.c_str(),
              static_cast<std::uintmax_t>(
                  std::filesystem::file_size(output)));

  // Round-trip sanity so users can trust the checkpoint.
  const auto back = read_model_file(output);
  std::printf("checkpoint verified: %zu factor matrices, fit %.4f\n",
              back.factors.size(), back.fit);
  return 0;
}
