// Recommender-system scenario: the Amazon reviews tensor
// (user x item x word, Table 3) at a configurable scale. Decomposes with
// CPD and then uses the item factor matrix the way a recommender would:
// cosine similarity in latent space to find items related to a query item.
//
//   ./recommender [--scale 4000] [--rank 16] [--iters 8] [--topk 5]
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "core/cpd.hpp"
#include "tensor/generator.hpp"
#include "util/cli.hpp"

namespace {

double cosine(std::span<const amped::value_t> a,
              std::span<const amped::value_t> b) {
  double dot = 0, na = 0, nb = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    dot += static_cast<double>(a[i]) * b[i];
    na += static_cast<double>(a[i]) * a[i];
    nb += static_cast<double>(b[i]) * b[i];
  }
  if (na == 0 || nb == 0) return 0.0;
  return dot / std::sqrt(na * nb);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace amped;
  CliArgs args(argc, argv);
  apply_common_flags(args);
  const double scale = args.get_double("scale", 4000.0);
  const auto rank = static_cast<std::size_t>(args.get_int("rank", 16));
  const auto iters = static_cast<std::size_t>(args.get_int("iters", 8));
  const auto topk = static_cast<std::size_t>(args.get_int("topk", 5));

  std::printf("generating Amazon profile at 1/%.0f scale...\n", scale);
  const ScaledDataset ds = generate_scaled(amazon_profile(), scale);
  std::printf("  %s (full scale: 1.7B reviews)\n",
              ds.tensor.shape_string().c_str());

  AmpedBuildOptions build;
  build.num_gpus = 4;
  const AmpedTensor tensor = AmpedTensor::build(ds.tensor, build);

  auto platform = sim::make_default_platform(4, scale);
  CpdOptions opt;
  opt.rank = rank;
  opt.max_iterations = iters;
  opt.mttkrp.full_dims = ds.profile.full_dims;
  std::printf("running CPD-ALS (rank %zu, %zu iterations, 4 simulated "
              "GPUs)...\n",
              rank, iters);
  const CpdResult result = cp_als(platform, tensor, opt);
  std::printf("  fit %.4f; simulated MTTKRP time %.3f s (extrapolated "
              "full-scale: %.1f s)\n",
              result.fit, result.mttkrp_sim_seconds,
              result.mttkrp_sim_seconds * scale);

  // Mode 1 is the item mode; rows of its factor matrix are item
  // embeddings. Rank the most similar items to the busiest item.
  const DenseMatrix& items = result.factors.factor(1);
  std::vector<nnz_t> item_counts(items.rows(), 0);
  for (index_t i : ds.tensor.indices(1)) ++item_counts[i];
  const std::size_t query = static_cast<std::size_t>(
      std::max_element(item_counts.begin(), item_counts.end()) -
      item_counts.begin());

  std::vector<std::pair<double, std::size_t>> scored;
  for (std::size_t i = 0; i < items.rows(); ++i) {
    if (i == query || item_counts[i] == 0) continue;
    scored.emplace_back(cosine(items.row(query), items.row(i)), i);
  }
  std::partial_sort(scored.begin(),
                    scored.begin() + std::min(topk, scored.size()),
                    scored.end(), std::greater<>());

  std::printf("\nitems most similar to item #%zu (%llu reviews) in latent "
              "space:\n",
              query, static_cast<unsigned long long>(item_counts[query]));
  for (std::size_t k = 0; k < std::min(topk, scored.size()); ++k) {
    std::printf("  item #%-6zu cosine %.3f (%llu reviews)\n",
                scored[k].second, scored[k].first,
                static_cast<unsigned long long>(
                    item_counts[scored[k].second]));
  }
  return 0;
}
