// Social-network analysis scenario: the Reddit-2015 tensor
// (user x subreddit x word, Table 3). Decomposes with CPD and interprets
// each latent component as a "community topic": the subreddits and words
// loading highest on the component. Also prints the per-mode MTTKRP
// breakdown to show where a billion-scale run spends its time.
//
//   ./community_trends [--scale 4000] [--rank 12] [--iters 6]
#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/cpd.hpp"
#include "core/mttkrp.hpp"
#include "tensor/analysis.hpp"
#include "tensor/generator.hpp"
#include "util/cli.hpp"

namespace {

// Indices with the largest factor weight in component r of mode d.
std::vector<std::size_t> top_indices(const amped::DenseMatrix& factor,
                                     std::size_t component, std::size_t k) {
  std::vector<std::pair<float, std::size_t>> scored;
  scored.reserve(factor.rows());
  for (std::size_t i = 0; i < factor.rows(); ++i) {
    scored.emplace_back(factor(i, component), i);
  }
  std::partial_sort(scored.begin(), scored.begin() + std::min(k, scored.size()),
                    scored.end(), std::greater<>());
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < std::min(k, scored.size()); ++i) {
    out.push_back(scored[i].second);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace amped;
  CliArgs args(argc, argv);
  apply_common_flags(args);
  const double scale = args.get_double("scale", 4000.0);
  const auto rank = static_cast<std::size_t>(args.get_int("rank", 12));
  const auto iters = static_cast<std::size_t>(args.get_int("iters", 6));

  std::printf("generating Reddit-2015 profile at 1/%.0f scale...\n", scale);
  const ScaledDataset ds = generate_scaled(reddit_profile(), scale);
  std::printf("  %s (full scale: 4.7B (user, subreddit, word) events)\n",
              ds.tensor.shape_string().c_str());
  std::printf("structure:\n%s", analyze(ds.tensor).to_string().c_str());

  AmpedBuildOptions build;
  build.num_gpus = 4;
  const AmpedTensor tensor = AmpedTensor::build(ds.tensor, build);
  auto platform = sim::make_default_platform(4, scale);

  // One instrumented MTTKRP sweep first: the paper's Fig. 7 view.
  Rng rng(99);
  FactorSet probe(ds.tensor.dims(), rank, rng);
  MttkrpOptions mopt;
  mopt.full_dims = ds.profile.full_dims;
  std::vector<DenseMatrix> outs;
  auto report = mttkrp_all_modes(platform, tensor, probe, outs, mopt);
  std::printf("\nMTTKRP sweep breakdown (simulated, extrapolated to full "
              "scale):\n");
  const char* mode_names[] = {"user", "subreddit", "word"};
  for (const auto& m : report.modes) {
    std::printf("  mode %zu (%-9s): %7.2f s  [h2d %5.2f | compute %5.2f | "
                "gpu-gpu %5.2f | sync %5.2f, GPU-summed]\n",
                m.mode, mode_names[m.mode], m.seconds * scale,
                m.h2d * scale, m.compute * scale, m.p2p * scale,
                m.sync * scale);
  }

  CpdOptions opt;
  opt.rank = rank;
  opt.max_iterations = iters;
  opt.mttkrp.full_dims = ds.profile.full_dims;
  std::printf("\nrunning CPD-ALS (rank %zu, %zu iterations)...\n", rank,
              iters);
  const CpdResult result = cp_als(platform, tensor, opt);
  std::printf("  fit %.4f\n", result.fit);

  // Rank components by weight and show their top subreddits / words.
  std::vector<std::size_t> order(rank);
  for (std::size_t r = 0; r < rank; ++r) order[r] = r;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return result.lambda[a] > result.lambda[b];
  });
  std::printf("\ntop community topics (synthetic ids):\n");
  for (std::size_t c = 0; c < std::min<std::size_t>(3, rank); ++c) {
    const std::size_t r = order[c];
    std::printf("  component %zu (weight %.2f): subreddits [", r,
                result.lambda[r]);
    for (std::size_t s : top_indices(result.factors.factor(1), r, 3)) {
      std::printf(" #%zu", s);
    }
    std::printf(" ], words [");
    for (std::size_t w : top_indices(result.factors.factor(2), r, 3)) {
      std::printf(" #%zu", w);
    }
    std::printf(" ]\n");
  }
  return 0;
}
