// Billion-scale walkthrough: why multi-GPU MTTKRP needs AMPED — and what
// AMPED itself needs from the host.
//
// For each Table 3 tensor, prints the full-scale memory footprint every
// execution format would need on a 48 GB RTX 6000 Ada (the paper's
// "runtime error" analysis) *and* the host-side footprint of AMPED's N
// sorted copies (§4.4's residency requirement), then races AMPED on 4
// simulated GPUs against the only baseline that can always run — BLCO's
// out-of-memory streaming — and shows AMPED's timing breakdown. A final
// section demonstrates the storage engine's answer to hosts that cannot
// hold the copies either: a constrained `--memory-budget`-style run that
// spills copies to disk and streams shards back, bit-identically.
//
//   ./out_of_memory [--scale 2000] [--dataset reddit|all]
//
// The default 1/2000 scale is the largest reduction for which the
// extrapolated ratios are scale-invariant (see scaling_property_test);
// much coarser scales under-occupy the simulated SMs and distort the
// race.
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "baselines/runner.hpp"
#include "core/mttkrp.hpp"
#include "formats/memory_model.hpp"
#include "io/memory_budget.hpp"
#include "tensor/generator.hpp"
#include "util/cli.hpp"

namespace {

using namespace amped;

void print_footprints(const DatasetProfile& p, std::uint64_t capacity) {
  const auto dims = std::span<const std::uint64_t>(p.full_dims);
  const auto factor = formats::factor_bytes(dims, 32);
  const bool five_modes = p.num_modes() > 4;
  struct Row {
    const char* name;
    std::uint64_t bytes;
    bool resident;
    bool mode_limited;  // kernels support <= 4 modes
  };
  const Row rows[] = {
      {"COO (1 copy)", formats::coo_bytes(dims, p.full_nnz), true, false},
      {"MM-CSF", formats::mmcsf_bytes(dims, p.full_nnz), true, true},
      {"HiCOO/ParTI", formats::hicoo_bytes(dims, p.full_nnz), true, true},
      {"FLYCOO (2 copies)", formats::flycoo_bytes(dims, p.full_nnz), true,
       false},
      {"BLCO (streamed)", formats::blco_bytes(p.full_nnz), false, false},
      {"AMPED (streamed shards)",
       p.num_modes() * formats::coo_bytes(dims, p.full_nnz), false, false},
  };
  std::printf("  %-24s %12s  fits 48 GB?\n", "format", "bytes");
  for (const auto& r : rows) {
    const double gib = static_cast<double>(r.bytes) / (1ull << 30);
    const char* verdict;
    if (r.mode_limited && five_modes) {
      verdict = "n/a (kernels support <= 4 modes)";
    } else if (!r.resident) {
      verdict = "streams from host";
    } else {
      verdict = r.bytes + factor <= capacity ? "yes (resident)"
                                             : "NO -> runtime error";
    }
    std::printf("  %-24s %9.1f GiB  %s\n", r.name, gib, verdict);
  }
  // AMPED dodges the GPU wall by keeping the copies on the *host* (§4.4)
  // — which moves the residency requirement, not removes it.
  const std::uint64_t host_bytes =
      p.num_modes() * formats::coo_bytes(dims, p.full_nnz);
  std::printf("  AMPED host residency: %zu sorted copies = %s of host RAM"
              " (over budget? spill to disk, see below)\n",
              p.num_modes(),
              io::format_bytes(host_bytes).c_str());
}

void race(const ScaledDataset& ds, double scale) {
  auto factors = [&] {
    Rng rng(5);
    return FactorSet(ds.tensor.dims(), 32, rng);
  }();
  baselines::BaselineOptions opt;
  opt.workload = baselines::WorkloadInfo::from_dataset(ds);
  opt.collect_outputs = false;

  auto p_amped = sim::make_default_platform(4, scale);
  const auto amped = baselines::run_amped(p_amped, ds.tensor, factors, opt);
  auto p_blco = sim::make_default_platform(1, scale);
  const auto blco =
      baselines::run_blco_gpu(p_blco, ds.tensor, factors, opt);

  std::printf("\n  one MTTKRP sweep over all modes (extrapolated to full "
              "scale):\n");
  std::printf("    AMPED, 4 GPUs          : %7.2f s\n",
              amped.total_seconds * scale);
  std::printf("    BLCO streaming, 1 GPU  : %7.2f s  -> AMPED speedup "
              "%.1fx\n",
              blco.total_seconds * scale,
              blco.total_seconds / amped.total_seconds);
  const auto& t = amped.timeline;
  const double busy = t.total(sim::Phase::kCompute) +
                      t.communication() + t.total(sim::Phase::kSync);
  std::printf("    AMPED GPU-time shares  : compute %.0f%% | h2d %.0f%% | "
              "gpu-gpu %.0f%% | sync %.0f%%\n",
              100 * t.total(sim::Phase::kCompute) / busy,
              100 * t.total(sim::Phase::kHostToDevice) / busy,
              100 * t.total(sim::Phase::kPeerToPeer) / busy,
              100 * t.total(sim::Phase::kSync) / busy);
}

// The storage engine's budgeted mode at work: constrain the host budget
// below the N-copy footprint, rebuild (copies spill to snapshot-v2 files
// and shards stream back from disk during MTTKRP), and verify the output
// is bit-identical to the resident run.
void budget_demo(const ScaledDataset& ds) {
  auto factors = [&] {
    Rng rng(5);
    return FactorSet(ds.tensor.dims(), 32, rng);
  }();
  MttkrpOptions options;

  AmpedBuildOptions build;
  build.num_gpus = 4;
  // The demo drives the budget itself: park any user-set limit and
  // restore it afterwards, so a `--memory-budget` on the command line
  // neither aborts the unconstrained reference build nor gets clobbered.
  auto& budget = io::HostMemoryBudget::global();
  const std::uint64_t prior_limit = budget.limit();
  budget.set_limit(0);

  // Scoped so the resident copies (and their budget charge) are gone
  // before the constrained rebuild.
  std::vector<DenseMatrix> out_resident;
  std::uint64_t footprint = 0;
  {
    const auto resident = AmpedTensor::build(ds.tensor, build);
    footprint = resident.total_bytes();
    auto p_resident = sim::make_default_platform(4);
    mttkrp_all_modes(p_resident, resident, factors, out_resident, options);
  }

  const std::uint64_t limit = footprint / 2;  // cannot hold the copies
  budget.set_limit(limit);
  budget.reset_peak();
  PreprocessStats prep;
  const auto spilled = AmpedTensor::build(ds.tensor, build, &prep);
  auto p_spilled = sim::make_default_platform(4);
  std::vector<DenseMatrix> out_spilled;
  mttkrp_all_modes(p_spilled, spilled, factors, out_spilled, options);
  const std::uint64_t peak = budget.peak();
  budget.set_limit(prior_limit);

  double max_diff = 0.0;
  for (std::size_t d = 0; d < out_resident.size(); ++d) {
    const auto a = out_resident[d].data();
    const auto b = out_spilled[d].data();
    for (std::size_t i = 0; i < a.size(); ++i) {
      max_diff = std::max(max_diff,
                          std::abs(static_cast<double>(a[i]) - b[i]));
    }
  }

  std::printf("\n=== budgeted mode (scaled %s) ===\n", ds.profile.name.c_str());
  std::printf("  resident footprint %s; budget %s -> copies %s\n",
              io::format_bytes(footprint).c_str(),
              io::format_bytes(limit).c_str(),
              prep.spilled ? "spilled to disk" : "kept resident (?)");
  std::printf("  tracked host peak under budget: %s (%.0f%% of limit)\n",
              io::format_bytes(peak).c_str(),
              100.0 * static_cast<double>(peak) /
                  static_cast<double>(limit));
  std::printf("  MTTKRP outputs vs resident run: max |diff| = %g -> %s\n",
              max_diff,
              max_diff == 0.0 ? "bit-identical" : "MISMATCH");
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  apply_common_flags(args);
  const double scale = args.get_double("scale", 2000.0);
  const std::string which = args.get("dataset", "all");
  const std::uint64_t capacity = sim::rtx6000_ada_spec().mem_bytes;

  std::vector<DatasetProfile> profiles;
  if (which == "all") {
    profiles = table3_profiles();
  } else {
    profiles.push_back(profile_by_name(which));
  }

  for (const auto& p : profiles) {
    std::printf("\n=== %s: %llu nonzeros ===\n", p.name.c_str(),
                static_cast<unsigned long long>(p.full_nnz));
    print_footprints(p, capacity);
    race(generate_scaled(p, scale), scale);
  }
  // Demonstrate the disk tier once, on the first profile's scaled tensor.
  budget_demo(generate_scaled(profiles.front(), scale));
  std::printf("\nEvery resident format hits the 48 GB wall somewhere; "
              "AMPED streams sharded copies and scales across GPUs "
              "instead — and when even the host cannot hold the copies, "
              "the storage engine spills them to disk and streams shards "
              "back, bit-identically.\n");
  return 0;
}
