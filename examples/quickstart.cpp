// Quickstart: decompose a synthetic sparse tensor with CPD-ALS running
// its MTTKRP on a simulated 4-GPU AMPED platform.
//
//   ./quickstart [--gpus 4] [--rank 16] [--iters 20] [--nnz 200000]
//
// Walks the full public API surface: generate -> preprocess (build the
// per-mode sharded copies) -> cp_als -> inspect fit and simulated timing.
#include <cstdio>

#include "core/cpd.hpp"
#include "tensor/generator.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace amped;
  CliArgs args(argc, argv);
  apply_common_flags(args);
  const int gpus = static_cast<int>(args.get_int("gpus", 4));
  const auto rank = static_cast<std::size_t>(args.get_int("rank", 16));
  const auto iters = static_cast<std::size_t>(args.get_int("iters", 20));
  const auto nnz = static_cast<nnz_t>(args.get_int("nnz", 200000));

  // 1. A synthetic 3-mode sparse tensor with mildly skewed index use.
  GeneratorOptions gen;
  gen.dims = {4096, 2048, 1024};
  gen.nnz = nnz;
  gen.zipf_exponents = {0.6, 0.8, 0.8};
  gen.seed = 7;
  const CooTensor tensor = generate_random(gen);
  std::printf("tensor: %s\n", tensor.shape_string().c_str());

  // 2. Preprocess into the AMPED execution format: one output-sorted,
  //    sharded copy per mode (paper §3).
  AmpedBuildOptions build;
  build.num_gpus = gpus;
  PreprocessStats prep;
  const AmpedTensor amped = AmpedTensor::build(tensor, build, &prep);
  std::printf("preprocessing: %zu bytes of shard copies, %.4f modelled "
              "host-seconds (%.2fs wall)\n",
              prep.bytes_built, prep.host_seconds, prep.wall_seconds);

  // 3. CPD-ALS on a simulated single-node multi-GPU platform (RTX 6000
  //    Ada x gpus, PCIe links, GPUDirect P2P ring).
  auto platform = sim::make_default_platform(gpus);
  CpdOptions opt;
  opt.rank = rank;
  opt.max_iterations = iters;
  const CpdResult result = cp_als(platform, amped, opt);

  std::printf("\nCPD rank-%zu on %d simulated GPU(s):\n", rank, gpus);
  std::printf("  fit            : %.4f after %zu iteration(s)%s\n",
              result.fit, result.iterations,
              result.converged ? " (converged)" : "");
  std::printf("  MTTKRP sim time: %.4f s total, %.4f s per iteration\n",
              result.mttkrp_sim_seconds,
              result.mttkrp_sim_seconds /
                  static_cast<double>(result.iterations));
  std::printf("  lambda[0..3]   : ");
  for (std::size_t r = 0; r < std::min<std::size_t>(4, rank); ++r) {
    std::printf("%.3f ", result.lambda[r]);
  }
  std::printf("\n\nDone. Try --gpus 1 vs --gpus 4 to see the multi-GPU "
              "speedup in the simulated MTTKRP time.\n");
  return 0;
}
