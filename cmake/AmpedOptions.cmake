# Build options and global compile settings for the AMPED reproduction.
#
# Everything funnels into the amped_options / amped_warnings interface
# targets, which every AMPED target links against. Keep policy here so the
# per-directory CMakeLists stay declarative.

option(AMPED_BUILD_TESTS "Build the GoogleTest suites in tests/" ON)
option(AMPED_BUILD_BENCH "Build the paper-figure benchmark binaries in bench/" ON)
option(AMPED_BUILD_EXAMPLES "Build the example programs in examples/" ON)
option(AMPED_WERROR "Treat compiler warnings as errors" OFF)
option(AMPED_SANITIZE "Build with AddressSanitizer + UBSan" OFF)
option(AMPED_TSAN "Build with ThreadSanitizer (mutually exclusive with AMPED_SANITIZE)" OFF)
option(AMPED_COVERAGE "Build with gcov instrumentation (--coverage) for line-rate reports" OFF)
option(AMPED_ENABLE_OPENMP "Link OpenMP if available (used by util/thread_pool consumers)" OFF)
option(AMPED_NATIVE_ARCH "Compile for the host CPU (-march=native); the EC kernel's hadamard/accumulate loops vectorise substantially wider with AVX2+" ON)

# Default to an optimized build: this repo exists to measure things.
if(NOT CMAKE_BUILD_TYPE AND NOT CMAKE_CONFIGURATION_TYPES)
  set(CMAKE_BUILD_TYPE Release CACHE STRING "Build type" FORCE)
  set_property(CACHE CMAKE_BUILD_TYPE PROPERTY STRINGS Release Debug RelWithDebInfo MinSizeRel)
endif()

set(CMAKE_CXX_STANDARD 20)
set(CMAKE_CXX_STANDARD_REQUIRED ON)
set(CMAKE_CXX_EXTENSIONS OFF)

# amped_options: language level, threads, sanitizers, OpenMP.
add_library(amped_options INTERFACE)
target_compile_features(amped_options INTERFACE cxx_std_20)

find_package(Threads REQUIRED)
target_link_libraries(amped_options INTERFACE Threads::Threads)

if(AMPED_SANITIZE AND AMPED_TSAN)
  message(FATAL_ERROR "AMPED_SANITIZE (ASan+UBSan) and AMPED_TSAN cannot be combined: the runtimes conflict. Pick one.")
endif()

if(AMPED_SANITIZE)
  # Global, not per-target: FetchContent-built GoogleTest/Benchmark must be
  # instrumented too, or ASan false-positives on containers crossing the
  # instrumented/uninstrumented boundary.
  add_compile_options(-fsanitize=address,undefined
    -fno-sanitize-recover=undefined -fno-omit-frame-pointer)
  add_link_options(-fsanitize=address,undefined
    -fno-sanitize-recover=undefined)
endif()

if(AMPED_TSAN)
  # Global for the same reason as ASan: GoogleTest must carry the TSan
  # runtime too, or its synchronisation looks like races to the tool.
  add_compile_options(-fsanitize=thread -fno-omit-frame-pointer)
  add_link_options(-fsanitize=thread)
endif()

if(AMPED_COVERAGE)
  # Global so the test binaries' own TUs are counted too. Atomic profile
  # updates: the host backend and thread pool run instrumented code on
  # many threads, and non-atomic counters lose ticks (and trip TSan).
  add_compile_options(--coverage -fprofile-update=atomic)
  add_link_options(--coverage)
endif()

if(AMPED_NATIVE_ARCH AND CMAKE_CXX_COMPILER_ID MATCHES "GNU|Clang")
  include(CheckCXXCompilerFlag)
  check_cxx_compiler_flag(-march=native AMPED_HAS_MARCH_NATIVE)
  if(AMPED_HAS_MARCH_NATIVE)
    target_compile_options(amped_options INTERFACE -march=native)
  else()
    message(STATUS "AMPED_NATIVE_ARCH=ON but -march=native is unsupported; continuing without it")
  endif()
endif()

if(AMPED_ENABLE_OPENMP)
  find_package(OpenMP)
  if(OpenMP_CXX_FOUND)
    target_link_libraries(amped_options INTERFACE OpenMP::OpenMP_CXX)
  else()
    message(WARNING "AMPED_ENABLE_OPENMP=ON but no OpenMP runtime was found; continuing without it")
  endif()
endif()

# amped_warnings: kept separate from amped_options so third-party code
# (GoogleTest) never inherits our warning set.
add_library(amped_warnings INTERFACE)
if(CMAKE_CXX_COMPILER_ID MATCHES "GNU|Clang")
  target_compile_options(amped_warnings INTERFACE
    -Wall -Wextra -Wpedantic -Wshadow -Wnon-virtual-dtor)
  if(AMPED_WERROR)
    target_compile_options(amped_warnings INTERFACE -Werror)
  endif()
elseif(MSVC)
  target_compile_options(amped_warnings INTERFACE /W4)
  if(AMPED_WERROR)
    target_compile_options(amped_warnings INTERFACE /WX)
  endif()
endif()
