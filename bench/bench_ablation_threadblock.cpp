// Ablation A4: threadblock geometry. The paper fixes P = theta = 32 and
// R = 32 (§5.1.5). Sweeps the threadblock width P (nonzeros loaded in
// parallel per block) and the rank R on the Amazon profile: P below 32
// leaves SM lanes idle; time grows with R as every factor row widens.
#include <benchmark/benchmark.h>

#include <map>

#include "bench_common.hpp"
#include "core/amped_tensor.hpp"
#include "core/mttkrp.hpp"

namespace {

using namespace amped;
using namespace amped::bench;

const std::vector<nnz_t> kWidths{4, 8, 16, 32, 64};
const std::vector<std::size_t> kRanks{8, 16, 32, 64};

std::map<std::string, double>& results() {
  static std::map<std::string, double> r;
  return r;
}

void run_config(benchmark::State& state, nnz_t width, std::size_t rank) {
  const auto& ds = dataset("amazon");
  Rng rng(1234);
  FactorSet factors(ds.tensor.dims(), rank, rng);
  AmpedBuildOptions build;
  build.num_gpus = 4;
  auto tensor = AmpedTensor::build(ds.tensor, build);
  MttkrpOptions opt;
  opt.full_dims = ds.profile.full_dims;
  opt.block_width = width;

  double seconds = 0.0;
  for (auto _ : state) {
    auto platform = make_platform(4);
    std::vector<DenseMatrix> outputs;
    auto report = mttkrp_all_modes(platform, tensor, factors, outputs, opt);
    seconds = extrapolate(report.total_seconds);
  }
  std::string key = "P";
  key += std::to_string(width);
  key += "_R";
  key += std::to_string(rank);
  results()[key] = seconds;
  state.counters["full_scale_s"] = seconds;
}

void register_all() {
  for (nnz_t width : kWidths) {
    const std::string name = "ablation_tb/amazon/P:" + std::to_string(width) +
                             "/R:32";
    benchmark::RegisterBenchmark(name.c_str(),
                                 [width](benchmark::State& s) {
                                   run_config(s, width, 32);
                                 })
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
  }
  for (std::size_t rank : kRanks) {
    const std::string name =
        "ablation_tb/amazon/P:32/R:" + std::to_string(rank);
    benchmark::RegisterBenchmark(name.c_str(),
                                 [rank](benchmark::State& s) {
                                   run_config(s, 32, rank);
                                 })
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
  }
}

void print_summary() {
  std::printf("\n=== Ablation A4: threadblock geometry on Amazon ===\n");
  std::printf("width sweep (R = 32):\n");
  for (nnz_t w : kWidths) {
    std::string key = "P";
    key += std::to_string(w);
    key += "_R32";
    print_row("A4", "amazon", "P=" + std::to_string(w), results()[key], "s");
  }
  std::printf("rank sweep (P = 32):\n");
  for (std::size_t r : kRanks) {
    print_row("A4", "amazon", "R=" + std::to_string(r),
              results()["P32_R" + std::to_string(r)], "s");
  }
  std::printf("\nexpected shape: P = 32 saturates the SM (the paper's "
              "theta); time grows roughly linearly in R.\n");
}

}  // namespace

int main(int argc, char** argv) {
  register_all();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_summary();
  return 0;
}
