// Shared workload setup for the figure benchmarks.
//
// Every bench runs the Table 3 profiles at BENCH_SCALE (override with the
// AMPED_BENCH_SCALE environment variable). Simulated seconds are reported
// both raw and extrapolated to full scale (raw x scale): the simulator's
// fixed costs are divided by the scale factor, so extrapolation is exact,
// not a heuristic (see sim/platform.hpp).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "baselines/runner.hpp"
#include "sim/platform.hpp"
#include "tensor/generator.hpp"

namespace amped::bench {

// Default nnz reduction factor for benchmarks (1.7B -> 850K etc.).
double bench_scale();

// Cached scaled dataset (generating billions of draws once per binary).
const ScaledDataset& dataset(const std::string& name);

// All Table 3 names in paper order.
const std::vector<std::string>& dataset_names();

// Platform for `gpus` devices under the bench scale.
sim::Platform make_platform(int gpus);

// Deterministic factor set for a dataset at the paper's default R = 32.
FactorSet make_factors(const ScaledDataset& ds, std::size_t rank = 32);

// Baseline options carrying the dataset's full-scale workload info.
baselines::BaselineOptions make_options(const ScaledDataset& ds,
                                        bool collect_outputs = false);

// raw simulated seconds -> full-scale seconds.
double extrapolate(double sim_seconds);

// Prints one paper-style table row to stdout (also mirrored into the
// benchmark counters by callers).
void print_row(const std::string& figure, const std::string& dataset,
               const std::string& series, double value,
               const std::string& unit);

}  // namespace amped::bench
