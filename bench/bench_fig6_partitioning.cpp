// Figure 6: impact of the proposed partitioning scheme. Compares AMPED's
// output-index sharding against distributing nonzeros equally among GPUs
// (which forces per-element intermediate values to be merged on the host
// CPU, §5.3). The paper reports 5.3x-10.3x speedups, geomean 8.2x.
#include <benchmark/benchmark.h>

#include <map>

#include "bench_common.hpp"
#include "util/stats.hpp"

namespace {

using namespace amped;
using namespace amped::bench;

std::map<std::string, std::map<std::string, double>>& results() {
  static std::map<std::string, std::map<std::string, double>> r;
  return r;
}

void run_impl(benchmark::State& state, const std::string& ds_name,
              const std::string& impl) {
  const auto& ds = dataset(ds_name);
  auto factors = make_factors(ds);
  auto options = make_options(ds);
  double seconds = 0.0;
  for (auto _ : state) {
    auto platform = make_platform(4);
    auto result =
        baselines::run_baseline(impl, platform, ds.tensor, factors, options);
    seconds = extrapolate(result.total_seconds);
  }
  results()[ds_name][impl] = seconds;
  state.counters["full_scale_s"] = seconds;
}

void register_all() {
  for (const auto& ds : dataset_names()) {
    for (const std::string impl : {"amped", "equal-nnz"}) {
      const std::string name = "fig6/" + ds + "/" + impl;
      benchmark::RegisterBenchmark(name.c_str(),
                                   [ds, impl](benchmark::State& s) {
                                     run_impl(s, ds, impl);
                                   })
          ->Unit(benchmark::kMillisecond)
          ->Iterations(1);
    }
  }
}

void print_summary() {
  std::printf("\n=== Figure 6: impact of the partitioning scheme (4 GPUs) "
              "===\n");
  std::vector<double> speedups;
  for (const auto& ds : dataset_names()) {
    const double amped_s = results()[ds]["amped"];
    const double equal_s = results()[ds]["equal-nnz"];
    print_row("fig6", ds, "amped sharding", amped_s, "s");
    print_row("fig6", ds, "equal-nnz + host merge", equal_s, "s");
    print_row("fig6", ds, "  speedup", equal_s / amped_s, "x");
    speedups.push_back(equal_s / amped_s);
  }
  std::printf("\n[fig6] speedup range: %.1fx - %.1fx (paper: 5.3x - "
              "10.3x); geomean %.1fx (paper: 8.2x)\n",
              min_of(speedups), max_of(speedups), geomean(speedups));
}

}  // namespace

int main(int argc, char** argv) {
  register_all();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_summary();
  return 0;
}
