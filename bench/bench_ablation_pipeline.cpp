// Ablation A6: double-buffered shard streaming. The paper's execution is
// sequential per shard (transfer, then compute — its Fig. 7 breakdown is
// additive); overlapping the next shard's H2D with the current grid hides
// transfer time wherever compute per byte exceeds PCIe time per byte.
// Expect the biggest win on the H2D-dominated tensors (Patents, Reddit).
#include <benchmark/benchmark.h>

#include <map>

#include "bench_common.hpp"
#include "core/amped_tensor.hpp"
#include "core/mttkrp.hpp"

namespace {

using namespace amped;
using namespace amped::bench;

std::map<std::string, std::map<bool, double>>& results() {
  static std::map<std::string, std::map<bool, double>> r;
  return r;
}

void run_mode(benchmark::State& state, const std::string& ds_name,
              bool pipelined) {
  const auto& ds = dataset(ds_name);
  auto factors = make_factors(ds);
  AmpedBuildOptions build;
  build.num_gpus = 4;
  auto tensor = AmpedTensor::build(ds.tensor, build);
  MttkrpOptions opt;
  opt.full_dims = ds.profile.full_dims;
  opt.pipelined_streaming = pipelined;

  double seconds = 0.0;
  for (auto _ : state) {
    auto platform = make_platform(4);
    std::vector<DenseMatrix> outputs;
    auto report = mttkrp_all_modes(platform, tensor, factors, outputs, opt);
    seconds = extrapolate(report.total_seconds);
  }
  results()[ds_name][pipelined] = seconds;
  state.counters["full_scale_s"] = seconds;
}

void register_all() {
  for (const auto& ds : dataset_names()) {
    for (bool pipelined : {false, true}) {
      const std::string name = "ablation_pipeline/" + ds + "/" +
                               (pipelined ? "overlapped" : "sequential");
      benchmark::RegisterBenchmark(name.c_str(),
                                   [ds, pipelined](benchmark::State& s) {
                                     run_mode(s, ds, pipelined);
                                   })
          ->Unit(benchmark::kMillisecond)
          ->Iterations(1);
    }
  }
}

void print_summary() {
  std::printf("\n=== Ablation A6: sequential vs double-buffered shard "
              "streaming (4 GPUs) ===\n");
  for (const auto& ds : dataset_names()) {
    const double seq = results()[ds][false];
    const double pipe = results()[ds][true];
    print_row("A6", ds, "sequential (paper)", seq, "s");
    print_row("A6", ds, "overlapped", pipe, "s");
    print_row("A6", ds, "  gain", (seq / pipe - 1.0) * 100.0, "%");
  }
  std::printf("\nshape: overlap hides min(transfer, compute) per shard "
              "chain, so the gain is bounded by the smaller of the Fig. 7 "
              "H2D and compute shares — 16-30%% across the Table 3 "
              "tensors; a cheap optimisation the paper leaves on the "
              "table.\n");
}

}  // namespace

int main(int argc, char** argv) {
  register_all();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_summary();
  return 0;
}
