// Figure 10: preprocessing time — building AMPED's per-mode sharded
// tensor copies vs. BLCO's single linearised+blocked structure, on the
// host CPU (§5.7; the paper includes this "for completeness" and does not
// accelerate preprocessing). AMPED sorts one copy per mode, so its
// preprocessing is roughly the mode count times BLCO's single pass.
#include <benchmark/benchmark.h>

#include <cmath>
#include <map>

#include "bench_common.hpp"
#include "core/amped_tensor.hpp"
#include "formats/blco.hpp"

namespace {

using namespace amped;
using namespace amped::bench;

// BLCO preprocessing: one linearisation pass plus one sort of the key
// stream, on the same modelled host as AMPED's sort passes.
double model_blco_preprocess_seconds(nnz_t nnz) {
  // Same host sort-rate constant as model_amped_preprocess_seconds, one
  // pass, plus a linearisation sweep at ~memcpy rate folded into the
  // constant.
  return model_amped_preprocess_seconds(nnz, 1) * 1.25;
}

std::map<std::string, std::map<std::string, double>>& results() {
  static std::map<std::string, std::map<std::string, double>> r;
  return r;
}

void run_amped_preprocess(benchmark::State& state,
                          const std::string& ds_name) {
  const auto& ds = dataset(ds_name);
  PreprocessStats stats;
  for (auto _ : state) {
    AmpedBuildOptions build;
    build.num_gpus = 4;
    auto tensor = AmpedTensor::build(ds.tensor, build, &stats);
    benchmark::DoNotOptimize(tensor.total_bytes());
  }
  // Extrapolate via the analytic model evaluated at full scale (the
  // realised build at bench scale validates the code path; sorting time
  // is not linear in nnz so the model, not raw x scale, is reported).
  const double full = model_amped_preprocess_seconds(
      ds.profile.full_nnz, ds.profile.num_modes());
  results()[ds_name]["amped"] = full;
  results()[ds_name]["blco"] =
      model_blco_preprocess_seconds(ds.profile.full_nnz);
  state.counters["full_scale_s"] = full;
  state.counters["build_wall_s"] = stats.wall_seconds;
}

void register_all() {
  for (const auto& ds : dataset_names()) {
    const std::string name = "fig10/" + ds;
    benchmark::RegisterBenchmark(
        name.c_str(),
        [ds](benchmark::State& s) { run_amped_preprocess(s, ds); })
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
  }
}

void print_summary() {
  std::printf("\n=== Figure 10: preprocessing time (host CPU, full-scale "
              "model) ===\n");
  for (const auto& ds : dataset_names()) {
    const double amped_s = results()[ds]["amped"];
    const double blco_s = results()[ds]["blco"];
    print_row("fig10", ds, "amped (N sorted copies)", amped_s, "s");
    print_row("fig10", ds, "blco (linearise + sort)", blco_s, "s");
    print_row("fig10", ds, "  ratio amped/blco", amped_s / blco_s, "x");
  }
  std::printf("\npaper shape: AMPED preprocessing is a small multiple of "
              "BLCO's (one sort pass per mode vs one overall); neither "
              "system accelerates preprocessing.\n");
}

}  // namespace

int main(int argc, char** argv) {
  register_all();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_summary();
  return 0;
}
