// Batched multi-tensor MTTKRP (exec/compose.hpp, core/batch.hpp):
// composed execution of N Table-3 workloads on one platform versus
// running them back to back, under IDENTICAL options (same cost model,
// same policy) so the saving isolates composition itself. Composition
// elides the per-plan barriers (the workloads' row-ownership scopes are
// disjoint), so shards of one tensor fill GPU lanes another leaves idle.
// The makespan bound is max_g(A_g + B_g) vs max_g(A_g) + max_g(B_g):
// when both workloads are finely sharded and well balanced the two
// coincide and composition is neutral; the win is the imbalance slack —
// coarse shards, stragglers, modes with fewer shards than GPUs. Both
// regimes are measured (shards_per_gpu 24 vs 2), plus the bit-identity
// check every run performs.
#include <benchmark/benchmark.h>

#include <cstring>
#include <map>

#include "bench_common.hpp"
#include "core/amped_tensor.hpp"
#include "core/batch.hpp"

namespace {

using namespace amped;
using namespace amped::bench;

struct PairResult {
  double composed = 0.0;
  double back_to_back = 0.0;
  double graph = 0.0;  // graph-scheduled (gather-as-edge); 0 = not run
};

std::map<std::string, PairResult>& results() {
  static std::map<std::string, PairResult> r;
  return r;
}

const std::vector<std::pair<std::string, std::string>>& pairs() {
  static const std::vector<std::pair<std::string, std::string>> p = {
      {"amazon", "reddit"},
      {"patents", "twitch"},
      {"amazon", "patents"},
  };
  return p;
}

// Fine = the default balanced configuration (composition ≈ neutral by
// the bound above); coarse = few, large shards where one straggler
// parks the other GPUs at the solo barrier and composition fills them.
const std::vector<std::pair<std::string, std::size_t>>& granularities() {
  static const std::vector<std::pair<std::string, std::size_t>> g = {
      {"fine24", 24},
      {"coarse2", 2},
  };
  return g;
}

const std::vector<std::pair<std::string, SchedulingPolicy>>& policies() {
  static const std::vector<std::pair<std::string, SchedulingPolicy>> p = {
      {"static-greedy", SchedulingPolicy::kStaticGreedy},
      {"dynamic-queue", SchedulingPolicy::kDynamicQueue},
      {"dynamic-lookahead", SchedulingPolicy::kDynamicLookahead},
  };
  return p;
}

void run_pair(benchmark::State& state, const std::string& a,
              const std::string& b, const std::string& policy_name,
              SchedulingPolicy policy, std::size_t shards_per_gpu) {
  const auto& ds_a = dataset(a);
  const auto& ds_b = dataset(b);
  AmpedBuildOptions build;
  build.num_gpus = 4;
  build.shards_per_gpu = shards_per_gpu;
  auto tensor_a = AmpedTensor::build(ds_a.tensor, build);
  auto tensor_b = AmpedTensor::build(ds_b.tensor, build);
  auto factors_a = make_factors(ds_a);
  auto factors_b = make_factors(ds_b);
  // One options set, identical for the baseline and the composed run, so
  // the reported saving isolates composition (barrier elision + lane
  // fill-in) and never a kernel-profile difference. Workload-specific
  // full_dims would price the two runs on different rooflines.
  MttkrpOptions opt;
  opt.policy = policy;

  PairResult result;
  for (auto _ : state) {
    // Back to back: two solo sweeps on one platform (the composed run's
    // fair baseline — same device clocks, same all-gathers).
    std::vector<DenseMatrix> solo_a, solo_b;
    {
      auto platform = make_platform(4);
      double sum = 0.0;
      sum += mttkrp_all_modes(platform, tensor_a, factors_a, solo_a, opt)
                 .total_seconds;
      sum += mttkrp_all_modes(platform, tensor_b, factors_b, solo_b, opt)
                 .total_seconds;
      result.back_to_back = extrapolate(sum);
    }
    {
      auto platform = make_platform(4);
      const BatchWorkload workloads[] = {{&tensor_a, &factors_a},
                                         {&tensor_b, &factors_b}};
      std::vector<std::vector<DenseMatrix>> outputs;
      auto report = mttkrp_batch(platform, workloads, outputs, opt);
      result.composed = extrapolate(report.total_seconds);

      // Composition must never change the arithmetic: the baseline solo
      // sweeps double as the bit-identity reference. (Dynamic placement
      // depends on device clocks, so only the static policies promise
      // bitwise equality; the homogeneous bench platform keeps ISP
      // geometry identical across GPUs, so it holds here for all three.)
      for (std::size_t d = 0; d < solo_a.size(); ++d) {
        if (std::memcmp(solo_a[d].data().data(),
                        outputs[0][d].data().data(),
                        solo_a[d].bytes()) != 0) {
          state.SkipWithError("batched output diverged from solo run");
          return;
        }
      }
    }
    // Graph-scheduled series (static policies only: dependency edges need
    // a fixed shard placement): the whole sweep as one plan whose gathers
    // are edges, so tensor A's mode d+1 overlaps tensor B's mode-d tail.
    if (policy != SchedulingPolicy::kDynamicQueue &&
        policy != SchedulingPolicy::kDynamicLookahead) {
      auto platform = make_platform(4);
      const BatchWorkload workloads[] = {{&tensor_a, &factors_a},
                                         {&tensor_b, &factors_b}};
      std::vector<std::vector<DenseMatrix>> outputs;
      MttkrpOptions graph_opt = opt;
      graph_opt.graph_schedule = true;
      auto report = mttkrp_batch(platform, workloads, outputs, graph_opt);
      result.graph = extrapolate(report.total_seconds);
      for (std::size_t d = 0; d < solo_a.size(); ++d) {
        if (std::memcmp(solo_a[d].data().data(),
                        outputs[0][d].data().data(),
                        solo_a[d].bytes()) != 0) {
          state.SkipWithError("graph-scheduled output diverged from solo");
          return;
        }
      }
    }
  }
  results()[a + "+" + b + "/" + policy_name] = result;
  state.counters["composed_s"] = result.composed;
  state.counters["back_to_back_s"] = result.back_to_back;
  state.counters["saving_pct"] =
      (1.0 - result.composed / result.back_to_back) * 100.0;
  if (result.graph > 0.0) {
    state.counters["graph_s"] = result.graph;
    state.counters["graph_vs_composed_pct"] =
        (1.0 - result.graph / result.composed) * 100.0;
  }
}

// The gather-as-edge acceptance pair: a transfer-bound heterogeneous
// batch (narrow host aggregate, mixed GPUs, one small + one large
// tensor). Phase-barrier composition parks the small tensor at every
// mode boundary while the large one drains; the gather edge lets it run
// ahead, so the graph makespan must come in strictly below the composed
// baseline.
void run_graph_hetero(benchmark::State& state, const std::string& a,
                      const std::string& b) {
  const auto& ds_a = dataset(a);
  const auto& ds_b = dataset(b);
  AmpedBuildOptions build;
  build.num_gpus = 4;
  build.shards_per_gpu = 8;
  auto tensor_a = AmpedTensor::build(ds_a.tensor, build);
  auto tensor_b = AmpedTensor::build(ds_b.tensor, build);
  auto factors_a = make_factors(ds_a);
  auto factors_b = make_factors(ds_b);
  auto make_hetero = [] {
    sim::PlatformConfig cfg;
    cfg.num_gpus = 4;
    cfg.workload_scale = bench_scale();
    cfg.gpu_overrides = {sim::rtx6000_ada_spec(), sim::rtx6000_ada_spec(),
                         sim::rtx_a4000_spec(), sim::rtx_a4000_spec()};
    cfg.host_aggregate_bandwidth = 24e9;  // 6 GB/s per lane: transfer-bound
    return sim::Platform(cfg);
  };
  MttkrpOptions opt;  // static-greedy

  double composed = 0.0, graph = 0.0;
  for (auto _ : state) {
    const BatchWorkload workloads[] = {{&tensor_a, &factors_a},
                                       {&tensor_b, &factors_b}};
    {
      auto platform = make_hetero();
      std::vector<std::vector<DenseMatrix>> outputs;
      composed = extrapolate(
          mttkrp_batch(platform, workloads, outputs, opt).total_seconds);
    }
    {
      auto platform = make_hetero();
      std::vector<std::vector<DenseMatrix>> outputs;
      MttkrpOptions graph_opt = opt;
      graph_opt.graph_schedule = true;
      graph = extrapolate(
          mttkrp_batch(platform, workloads, outputs, graph_opt)
              .total_seconds);
    }
  }
  results()[a + "+" + b + "/hetero-transfer-bound"] = {composed, 0.0, graph};
  state.counters["composed_s"] = composed;
  state.counters["graph_s"] = graph;
  state.counters["graph_vs_composed_pct"] = (1.0 - graph / composed) * 100.0;
}

void register_all() {
  for (const auto& [grain_name, shards_per_gpu] : granularities()) {
    for (const auto& [a, b] : pairs()) {
      for (const auto& [policy_name, policy] : policies()) {
        const std::string name = "batched_mttkrp/" + a + "+" + b + "/" +
                                 grain_name + "/" + policy_name;
        const std::string key = grain_name + "/" + policy_name;
        benchmark::RegisterBenchmark(
            name.c_str(),
            [a, b, key, policy, shards_per_gpu](benchmark::State& s) {
              run_pair(s, a, b, key, policy, shards_per_gpu);
            })
            ->Unit(benchmark::kMillisecond)
            ->Iterations(1);
      }
    }
  }
  benchmark::RegisterBenchmark(
      "batched_mttkrp_graph/amazon+patents/hetero_transfer_bound",
      [](benchmark::State& s) { run_graph_hetero(s, "amazon", "patents"); })
      ->Unit(benchmark::kMillisecond)
      ->Iterations(1);
}

void print_summary() {
  std::printf("\n=== Batched multi-tensor MTTKRP: composed vs back-to-back "
              "(4 GPUs, 2-tensor batches, identical options both runs) "
              "===\n");
  for (const auto& [key, r] : results()) {
    if (r.back_to_back > 0.0) {
      print_row("batch", key, "back-to-back", r.back_to_back, "s");
    }
    print_row("batch", key, "composed", r.composed, "s");
    if (r.back_to_back > 0.0) {
      print_row("batch", key, "  saving",
                (1.0 - r.composed / r.back_to_back) * 100.0, "%");
    }
    if (r.graph > 0.0) {
      print_row("batch", key, "graph-scheduled", r.graph, "s");
      print_row("batch", key, "  graph vs composed",
                (1.0 - r.graph / r.composed) * 100.0, "%");
    }
  }
  std::printf("\nshape: the composed compute makespan is bounded by "
              "max_g(A_g + B_g) <= max_g A_g + max_g B_g, so the saving is "
              "the imbalance slack. Static policies reuse the solo "
              "placement and never lose; finely sharded balanced pairs sit "
              "near zero; coarse shards leave stragglers that park GPUs at "
              "the solo barrier, and composition fills those lanes — up to "
              "~12%% here under dynamic/look-ahead dispatch. Caveat: on "
              "gather-dominated workloads (twitch: small nnz, huge dims) "
              "composed dynamic placement can cluster row ownership and "
              "skew the ring all-gather, costing a few percent — pick a "
              "static policy for those. Outputs stay bit-identical either "
              "way.\n");
}

}  // namespace

int main(int argc, char** argv) {
  register_all();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_summary();
  return 0;
}
