// Figure 8: computation time overhead among GPUs — (max - min) per-GPU
// elementwise-computation time as a percentage of the total EC time across
// all 4 GPUs and all modes (§5.5). The paper reports < 1% for every
// billion-scale tensor, with Twitch worst because popular streamers/games
// concentrate nonzeros on a few output indices.
#include <benchmark/benchmark.h>

#include <map>

#include "bench_common.hpp"
#include "core/amped_tensor.hpp"
#include "core/mttkrp.hpp"

namespace {

using namespace amped;
using namespace amped::bench;

std::map<std::string, double>& results() {
  static std::map<std::string, double> r;
  return r;
}

void run_imbalance(benchmark::State& state, const std::string& ds_name) {
  const auto& ds = dataset(ds_name);
  auto factors = make_factors(ds);
  AmpedBuildOptions build;
  build.num_gpus = 4;
  auto tensor = AmpedTensor::build(ds.tensor, build);
  MttkrpOptions opt;
  opt.full_dims = ds.profile.full_dims;

  double overhead = 0.0;
  for (auto _ : state) {
    auto platform = make_platform(4);
    std::vector<DenseMatrix> outputs;
    auto report = mttkrp_all_modes(platform, tensor, factors, outputs, opt);
    overhead = report.compute_overhead_fraction();
  }
  results()[ds_name] = overhead;
  state.counters["overhead_pct"] = 100.0 * overhead;
}

void register_all() {
  for (const auto& ds : dataset_names()) {
    const std::string name = "fig8/" + ds;
    benchmark::RegisterBenchmark(
        name.c_str(),
        [ds](benchmark::State& s) { run_imbalance(s, ds); })
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
  }
}

void print_summary() {
  std::printf("\n=== Figure 8: computation time overhead among GPUs ===\n");
  double worst = 0.0;
  std::string worst_name;
  for (const auto& ds : dataset_names()) {
    const double pct = 100.0 * results()[ds];
    print_row("fig8", ds, "(max-min)/total EC", pct, "%");
    if (pct > worst) {
      worst = pct;
      worst_name = ds;
    }
  }
  std::printf("\n[fig8] worst: %s at %.2f%% (paper: all < 1%%, Twitch "
              "worst due to popular-streamer hot indices)\n",
              worst_name.c_str(), worst);
}

}  // namespace

int main(int argc, char** argv) {
  register_all();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_summary();
  return 0;
}
