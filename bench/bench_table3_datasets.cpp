// Table 3: characteristics of the sparse tensors. Regenerates each profile
// at the bench scale and prints the full-scale shape / nonzero counts the
// paper lists, plus the realised scaled-down shape and skew measurements
// that validate the synthetic stand-ins.
#include <benchmark/benchmark.h>

#include <vector>

#include "bench_common.hpp"
#include "util/stats.hpp"

namespace {

using namespace amped;
using namespace amped::bench;

double mode_gini(const CooTensor& t, std::size_t mode) {
  std::vector<double> counts(t.dim(mode), 0.0);
  for (index_t i : t.indices(mode)) counts[i] += 1.0;
  return gini(counts);
}

void generation(benchmark::State& state, const std::string& name) {
  for (auto _ : state) {
    auto ds = generate_scaled(profile_by_name(name), bench_scale());
    benchmark::DoNotOptimize(ds.tensor.nnz());
    state.counters["nnz"] = static_cast<double>(ds.tensor.nnz());
  }
}

void register_all() {
  for (const auto& name : dataset_names()) {
    const std::string bench_name = "table3/generate/" + name;
    benchmark::RegisterBenchmark(
        bench_name.c_str(),
        [name](benchmark::State& s) { generation(s, name); })
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
  }
}

void print_summary() {
  std::printf("\n=== Table 3: characteristics of the sparse tensors ===\n");
  std::printf("%-8s | %-42s | %12s | scaled (1/%.0f)\n", "tensor",
              "full-scale shape", "elements", bench_scale());
  for (const auto& name : dataset_names()) {
    const auto& ds = dataset(name);
    std::string shape;
    for (std::size_t m = 0; m < ds.profile.full_dims.size(); ++m) {
      if (m) shape += " x ";
      shape += std::to_string(ds.profile.full_dims[m]);
    }
    std::printf("%-8s | %-42s | %12llu | %s\n", name.c_str(), shape.c_str(),
                static_cast<unsigned long long>(ds.profile.full_nnz),
                ds.tensor.shape_string().c_str());
  }
  std::printf("\nindex-popularity skew (Gini of per-index nonzero counts; "
              "validates the Zipf profiles):\n");
  for (const auto& name : dataset_names()) {
    const auto& ds = dataset(name);
    for (std::size_t m = 0; m < ds.tensor.num_modes(); ++m) {
      print_row("table3", name, "gini mode " + std::to_string(m),
                mode_gini(ds.tensor, m), "");
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  register_all();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_summary();
  return 0;
}
