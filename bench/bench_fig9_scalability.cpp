// Figure 9: scalability of the proposed algorithm — total execution time
// speedup of each tensor as the GPU count grows 1 -> 4. The paper reports
// geometric-mean speedups of 1.9x / 2.3x / 3.3x at 2 / 3 / 4 GPUs, with
// near-linear growth. The single-GPU configuration streams tensor shards
// one at a time, like the paper's.
#include <benchmark/benchmark.h>

#include <map>

#include "bench_common.hpp"
#include "util/stats.hpp"

namespace {

using namespace amped;
using namespace amped::bench;

std::map<std::string, std::map<int, double>>& results() {
  static std::map<std::string, std::map<int, double>> r;
  return r;
}

void run_gpus(benchmark::State& state, const std::string& ds_name,
              int gpus) {
  const auto& ds = dataset(ds_name);
  auto factors = make_factors(ds);
  auto options = make_options(ds);
  double seconds = 0.0;
  for (auto _ : state) {
    auto platform = make_platform(gpus);
    auto result = baselines::run_amped(platform, ds.tensor, factors, options);
    seconds = extrapolate(result.total_seconds);
  }
  results()[ds_name][gpus] = seconds;
  state.counters["full_scale_s"] = seconds;
}

void register_all() {
  for (const auto& ds : dataset_names()) {
    for (int gpus : {1, 2, 3, 4}) {
      const std::string name =
          "fig9/" + ds + "/gpus:" + std::to_string(gpus);
      benchmark::RegisterBenchmark(name.c_str(),
                                   [ds, gpus](benchmark::State& s) {
                                     run_gpus(s, ds, gpus);
                                   })
          ->Unit(benchmark::kMillisecond)
          ->Iterations(1);
    }
  }
}

void print_summary() {
  std::printf("\n=== Figure 9: scalability (speedup vs 1 GPU) ===\n");
  std::printf("%-8s %8s %8s %8s\n", "tensor", "2 GPUs", "3 GPUs", "4 GPUs");
  std::map<int, std::vector<double>> per_count;
  for (const auto& ds : dataset_names()) {
    const auto& row = results()[ds];
    const double base = row.at(1);
    std::printf("%-8s %7.2fx %7.2fx %7.2fx\n", ds.c_str(),
                base / row.at(2), base / row.at(3), base / row.at(4));
    for (int g : {2, 3, 4}) per_count[g].push_back(base / row.at(g));
  }
  std::printf("\n[fig9] geomean speedups: %.2fx / %.2fx / %.2fx at 2/3/4 "
              "GPUs (paper: 1.9x / 2.3x / 3.3x)\n",
              geomean(per_count[2]), geomean(per_count[3]),
              geomean(per_count[4]));
}

}  // namespace

int main(int argc, char** argv) {
  register_all();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_summary();
  return 0;
}
