#include "bench_common.hpp"

#include <cstdio>
#include <cstdlib>

namespace amped::bench {

double bench_scale() {
  static const double scale = [] {
    if (const char* env = std::getenv("AMPED_BENCH_SCALE")) {
      const double v = std::strtod(env, nullptr);
      if (v >= 1.0) return v;
    }
    return 2000.0;
  }();
  return scale;
}

const ScaledDataset& dataset(const std::string& name) {
  static std::map<std::string, ScaledDataset> cache;
  auto it = cache.find(name);
  if (it == cache.end()) {
    it = cache
             .emplace(name,
                      generate_scaled(profile_by_name(name), bench_scale()))
             .first;
  }
  return it->second;
}

const std::vector<std::string>& dataset_names() {
  static const std::vector<std::string> names{"amazon", "patents", "reddit",
                                              "twitch"};
  return names;
}

sim::Platform make_platform(int gpus) {
  return sim::make_default_platform(gpus, bench_scale());
}

FactorSet make_factors(const ScaledDataset& ds, std::size_t rank) {
  Rng rng(ds.profile.seed ^ 0xFAC70ULL);
  return FactorSet(ds.tensor.dims(), rank, rng);
}

baselines::BaselineOptions make_options(const ScaledDataset& ds,
                                        bool collect_outputs) {
  baselines::BaselineOptions opt;
  opt.workload = baselines::WorkloadInfo::from_dataset(ds);
  opt.collect_outputs = collect_outputs;
  return opt;
}

double extrapolate(double sim_seconds) { return sim_seconds * bench_scale(); }

void print_row(const std::string& figure, const std::string& dataset,
               const std::string& series, double value,
               const std::string& unit) {
  std::printf("[%s] %-8s %-22s %12.4f %s\n", figure.c_str(), dataset.c_str(),
              series.c_str(), value, unit.c_str());
}

}  // namespace amped::bench
