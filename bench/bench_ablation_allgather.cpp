// Ablation A3: all-gather algorithm. The paper adopts a ring (§4.9,
// "suitable for bulk transfers among neighboring devices with limited
// bandwidth") and explicitly avoids routing factor exchanges through the
// host. Compares ring vs direct peer exchange vs host-staged gather on the
// index-heavy tensors where the exchange matters most.
#include <benchmark/benchmark.h>

#include <map>

#include "bench_common.hpp"
#include "core/amped_tensor.hpp"
#include "core/mttkrp.hpp"

namespace {

using namespace amped;
using namespace amped::bench;

const std::vector<std::string> kDatasets{"amazon", "twitch"};

std::map<std::string, std::map<std::string, double>>& results() {
  static std::map<std::string, std::map<std::string, double>> r;
  return r;
}

void run_algo(benchmark::State& state, const std::string& ds_name,
              AllGatherAlgo algo) {
  const auto& ds = dataset(ds_name);
  auto factors = make_factors(ds);
  AmpedBuildOptions build;
  build.num_gpus = 4;
  auto tensor = AmpedTensor::build(ds.tensor, build);
  MttkrpOptions opt;
  opt.full_dims = ds.profile.full_dims;
  opt.allgather = algo;

  double seconds = 0.0;
  for (auto _ : state) {
    auto platform = make_platform(4);
    std::vector<DenseMatrix> outputs;
    auto report = mttkrp_all_modes(platform, tensor, factors, outputs, opt);
    seconds = extrapolate(report.total_seconds);
  }
  results()[ds_name][to_string(algo)] = seconds;
  state.counters["full_scale_s"] = seconds;
}

void register_all() {
  for (const auto& ds : kDatasets) {
    for (auto algo : {AllGatherAlgo::kRing, AllGatherAlgo::kDirect,
                      AllGatherAlgo::kHostStaged}) {
      const std::string name =
          "ablation_allgather/" + ds + "/" + to_string(algo);
      benchmark::RegisterBenchmark(name.c_str(),
                                   [ds, algo](benchmark::State& s) {
                                     run_algo(s, ds, algo);
                                   })
          ->Unit(benchmark::kMillisecond)
          ->Iterations(1);
    }
  }
}

void print_summary() {
  std::printf("\n=== Ablation A3: all-gather algorithm (total time, s) "
              "===\n");
  for (const auto& ds : kDatasets) {
    for (const auto& [algo, s] : results()[ds]) {
      print_row("A3", ds, algo, s, "s");
    }
  }
  std::printf("\nnotes: with equal partitions the ring and direct exchange "
              "move identical per-round bytes, so they tie; they separate "
              "when GPUs own uneven row counts (see allgather_test). Under "
              "this reproduction's conservative cross-socket P2P bandwidth "
              "the host-staged gather is actually competitive — the "
              "paper's preference for a pure ring presumes P2P links fast "
              "enough that avoiding the host round trip wins, and avoids "
              "burdening the host CPU (§1).\n");
}

}  // namespace

int main(int argc, char** argv) {
  register_all();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_summary();
  return 0;
}
