// Ablation A1: shard-to-GPU scheduling policy. DESIGN.md calls out the
// load-balancing scheme as a core contribution; this bench compares the
// static greedy (LPT) assignment, dynamic earliest-idle dispatch, and a
// naive contiguous split on the two most skewed tensors. Expectation:
// greedy ~ dynamic << contiguous imbalance on skewed data.
#include <benchmark/benchmark.h>

#include <map>

#include "bench_common.hpp"
#include "core/amped_tensor.hpp"
#include "core/mttkrp.hpp"

namespace {

using namespace amped;
using namespace amped::bench;

struct Outcome {
  double seconds = 0.0;
  double overhead = 0.0;
};

std::map<std::string, std::map<std::string, Outcome>>& results() {
  static std::map<std::string, std::map<std::string, Outcome>> r;
  return r;
}

const std::vector<std::string> kDatasets{"reddit", "twitch"};

void run_policy(benchmark::State& state, const std::string& ds_name,
                SchedulingPolicy policy) {
  const auto& ds = dataset(ds_name);
  auto factors = make_factors(ds);
  AmpedBuildOptions build;
  build.num_gpus = 4;
  auto tensor = AmpedTensor::build(ds.tensor, build);
  MttkrpOptions opt;
  opt.full_dims = ds.profile.full_dims;
  opt.policy = policy;

  Outcome outcome;
  for (auto _ : state) {
    auto platform = make_platform(4);
    std::vector<DenseMatrix> outputs;
    auto report = mttkrp_all_modes(platform, tensor, factors, outputs, opt);
    outcome.seconds = extrapolate(report.total_seconds);
    outcome.overhead = report.compute_overhead_fraction();
  }
  results()[ds_name][to_string(policy)] = outcome;
  state.counters["full_scale_s"] = outcome.seconds;
  state.counters["imbalance_pct"] = 100.0 * outcome.overhead;
}

void register_all() {
  for (const auto& ds : kDatasets) {
    for (auto policy :
         {SchedulingPolicy::kStaticGreedy, SchedulingPolicy::kDynamicQueue,
          SchedulingPolicy::kContiguous}) {
      const std::string name = "ablation_sched/" + ds + "/" +
                               to_string(policy);
      benchmark::RegisterBenchmark(name.c_str(),
                                   [ds, policy](benchmark::State& s) {
                                     run_policy(s, ds, policy);
                                   })
          ->Unit(benchmark::kMillisecond)
          ->Iterations(1);
    }
  }
}

void print_summary() {
  std::printf("\n=== Ablation A1: shard scheduling policy (4 GPUs) ===\n");
  for (const auto& ds : kDatasets) {
    for (const auto& [policy, o] : results()[ds]) {
      print_row("A1", ds, policy + " time", o.seconds, "s");
      print_row("A1", ds, policy + " EC imbalance", 100.0 * o.overhead,
                "%");
    }
  }
  std::printf("\nexpected shape: static-greedy and dynamic-queue are "
              "nearly equivalent (imbalance a few %% at most); contiguous "
              "assignment concentrates skewed shards and loses both time "
              "and balance.\n");
}

}  // namespace

int main(int argc, char** argv) {
  register_all();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_summary();
  return 0;
}
