// Ablation A2: shard granularity. The partitioner creates
// shards_per_gpu x num_gpus shards per mode; too few shards starve the
// load balancer (imbalance), too many pay per-shard transfer latency and
// grid-launch overhead. Sweeps shards-per-GPU on every profile.
#include <benchmark/benchmark.h>

#include <map>

#include "bench_common.hpp"
#include "core/amped_tensor.hpp"
#include "core/mttkrp.hpp"

namespace {

using namespace amped;
using namespace amped::bench;

const std::vector<std::size_t> kShardsPerGpu{1, 4, 16, 24, 64, 256};

std::map<std::string, std::map<std::size_t, double>>& results() {
  static std::map<std::string, std::map<std::size_t, double>> r;
  return r;
}

void run_granularity(benchmark::State& state, const std::string& ds_name,
                     std::size_t shards_per_gpu) {
  const auto& ds = dataset(ds_name);
  auto factors = make_factors(ds);
  AmpedBuildOptions build;
  build.num_gpus = 4;
  build.shards_per_gpu = shards_per_gpu;
  auto tensor = AmpedTensor::build(ds.tensor, build);
  MttkrpOptions opt;
  opt.full_dims = ds.profile.full_dims;

  double seconds = 0.0;
  double imbalance = 0.0;
  for (auto _ : state) {
    auto platform = make_platform(4);
    std::vector<DenseMatrix> outputs;
    auto report = mttkrp_all_modes(platform, tensor, factors, outputs, opt);
    seconds = extrapolate(report.total_seconds);
    imbalance = report.compute_overhead_fraction();
  }
  results()[ds_name][shards_per_gpu] = seconds;
  state.counters["full_scale_s"] = seconds;
  state.counters["imbalance_pct"] = 100.0 * imbalance;
}

void register_all() {
  for (const auto& ds : dataset_names()) {
    for (std::size_t spg : kShardsPerGpu) {
      const std::string name =
          "ablation_gran/" + ds + "/spg:" + std::to_string(spg);
      benchmark::RegisterBenchmark(name.c_str(),
                                   [ds, spg](benchmark::State& s) {
                                     run_granularity(s, ds, spg);
                                   })
          ->Unit(benchmark::kMillisecond)
          ->Iterations(1);
    }
  }
}

void print_summary() {
  std::printf("\n=== Ablation A2: shards per GPU (total time, s) ===\n");
  std::printf("%-8s", "tensor");
  for (std::size_t spg : kShardsPerGpu) std::printf(" %8zu", spg);
  std::printf("\n");
  for (const auto& ds : dataset_names()) {
    std::printf("%-8s", ds.c_str());
    for (std::size_t spg : kShardsPerGpu) {
      std::printf(" %8.3f", results()[ds][spg]);
    }
    std::printf("\n");
  }
  std::printf("\nexpected shape: a shallow bowl — 1 shard/GPU cannot "
              "balance skew, hundreds add dispatch overhead; the default "
              "(24) sits on the flat bottom.\n");
}

}  // namespace

int main(int argc, char** argv) {
  register_all();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_summary();
  return 0;
}
