// Figure 7: execution time breakdown of the input tensors — how AMPED's
// total splits into elementwise computation, host-to-GPU shard streaming,
// GPU-to-GPU factor exchange, and barrier stalls. The paper highlights
// Reddit's communication share (32%) and that H2D dominates communication
// for the large tensors (Patents, Reddit) while tensors with many indices
// (Amazon, Twitch) see a heavy GPU-GPU share.
#include <benchmark/benchmark.h>

#include <map>

#include "bench_common.hpp"
#include "core/amped_tensor.hpp"
#include "core/mttkrp.hpp"

namespace {

using namespace amped;
using namespace amped::bench;

struct Breakdown {
  double compute = 0, h2d = 0, p2p = 0, sync = 0;
  double total() const { return compute + h2d + p2p + sync; }
};

std::map<std::string, Breakdown>& results() {
  static std::map<std::string, Breakdown> r;
  return r;
}

void run_breakdown(benchmark::State& state, const std::string& ds_name) {
  const auto& ds = dataset(ds_name);
  auto factors = make_factors(ds);
  AmpedBuildOptions build;
  build.num_gpus = 4;
  auto tensor = AmpedTensor::build(ds.tensor, build);
  MttkrpOptions opt;
  opt.full_dims = ds.profile.full_dims;

  Breakdown bd;
  for (auto _ : state) {
    auto platform = make_platform(4);
    std::vector<DenseMatrix> outputs;
    auto report = mttkrp_all_modes(platform, tensor, factors, outputs, opt);
    bd = Breakdown{};
    for (const auto& m : report.modes) {
      bd.compute += m.compute;
      bd.h2d += m.h2d;
      bd.p2p += m.p2p;
      bd.sync += m.sync;
    }
  }
  results()[ds_name] = bd;
  state.counters["comm_pct"] = 100.0 * (bd.h2d + bd.p2p) / bd.total();
}

void register_all() {
  for (const auto& ds : dataset_names()) {
    const std::string name = "fig7/" + ds;
    benchmark::RegisterBenchmark(
        name.c_str(),
        [ds](benchmark::State& s) { run_breakdown(s, ds); })
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
  }
}

void print_summary() {
  std::printf("\n=== Figure 7: execution time breakdown (share of summed "
              "GPU time) ===\n");
  std::printf("%-8s %10s %10s %10s %10s | comm total\n", "tensor", "compute",
              "h2d", "gpu-gpu", "sync");
  for (const auto& ds : dataset_names()) {
    const auto& bd = results()[ds];
    const double t = bd.total();
    std::printf("%-8s %9.1f%% %9.1f%% %9.1f%% %9.1f%% | %9.1f%%\n",
                ds.c_str(), 100 * bd.compute / t, 100 * bd.h2d / t,
                100 * bd.p2p / t, 100 * bd.sync / t,
                100 * (bd.h2d + bd.p2p) / t);
  }
  std::printf("\npaper shape: H2D is the major communication term for "
              "Patents/Reddit; Amazon and Twitch have heavy GPU-GPU "
              "shares; Reddit's total communication is significant "
              "(paper: 32%%).\n");
}

}  // namespace

int main(int argc, char** argv) {
  register_all();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_summary();
  return 0;
}
