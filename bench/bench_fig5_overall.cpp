// Figure 5: total execution time (all modes, one MTTKRP sweep) of AMPED on
// 4 GPUs vs. the state-of-the-art single-GPU baselines, per Table 3
// dataset. Prints the paper-style table with per-baseline speedups and the
// geometric-mean speedup over best-available baselines at the end.
#include <benchmark/benchmark.h>

#include <map>
#include <optional>

#include "bench_common.hpp"
#include "util/stats.hpp"

namespace {

using namespace amped;
using namespace amped::bench;

struct Outcome {
  bool supported = false;
  std::string reason;
  double seconds = 0.0;  // extrapolated full-scale seconds
};

std::map<std::string, std::map<std::string, Outcome>>& results() {
  static std::map<std::string, std::map<std::string, Outcome>> r;
  return r;
}

const std::vector<std::string> kImpls{"amped",     "blco",      "mm-csf",
                                      "hicoo-gpu", "parti-gpu", "flycoo-gpu"};

void run_impl(benchmark::State& state, const std::string& ds_name,
              const std::string& impl) {
  const auto& ds = dataset(ds_name);
  auto factors = make_factors(ds);
  auto options = make_options(ds);
  Outcome outcome;
  for (auto _ : state) {
    auto platform = make_platform(impl == "amped" ? 4 : 1);
    auto result =
        baselines::run_baseline(impl, platform, ds.tensor, factors, options);
    outcome.supported = result.supported;
    outcome.reason = result.failure_reason;
    outcome.seconds = extrapolate(result.total_seconds);
  }
  results()[ds_name][impl] = outcome;
  if (outcome.supported) {
    state.counters["full_scale_s"] = outcome.seconds;
  } else {
    state.SkipWithError(outcome.reason.c_str());
  }
}

void register_all() {
  for (const auto& ds : dataset_names()) {
    for (const auto& impl : kImpls) {
      const std::string name = "fig5/" + ds + "/" + impl;
      benchmark::RegisterBenchmark(name.c_str(),
                                   [ds, impl](benchmark::State& s) {
                                     run_impl(s, ds, impl);
                                   })
          ->Unit(benchmark::kMillisecond)
          ->Iterations(1);
    }
  }
}

void print_summary() {
  std::printf("\n=== Figure 5: total execution time, R=32, 4 GPUs ===\n");
  std::printf("(full-scale seconds; 'runtime error' = exceeds 48 GB or "
              "unsupported mode count, as in the paper)\n");
  std::vector<double> speedups_vs_best;
  std::vector<double> speedups_vs_blco;
  for (const auto& ds : dataset_names()) {
    const auto& row = results()[ds];
    const double amped_s = row.at("amped").seconds;
    print_row("fig5", ds, "amped (4 GPUs)", amped_s, "s");
    std::optional<double> best_baseline;
    for (const auto& impl : kImpls) {
      if (impl == "amped") continue;
      const auto& o = row.at(impl);
      if (!o.supported) {
        std::printf("[fig5] %-8s %-22s %12s (%s)\n", ds.c_str(),
                    impl.c_str(), "n/a", o.reason.c_str());
        continue;
      }
      print_row("fig5", ds, impl + " (1 GPU)", o.seconds, "s");
      print_row("fig5", ds, "  speedup vs " + impl, o.seconds / amped_s,
                "x");
      if (impl == "blco") speedups_vs_blco.push_back(o.seconds / amped_s);
      if (!best_baseline || o.seconds < *best_baseline) {
        best_baseline = o.seconds;
      }
    }
    if (best_baseline) {
      speedups_vs_best.push_back(*best_baseline / amped_s);
    }
  }
  std::printf("\n[fig5] geomean speedup vs BLCO:          %.2fx (paper: "
              "5.1x)\n",
              geomean(speedups_vs_blco));
  std::printf("[fig5] geomean speedup vs best baseline: %.2fx (paper "
              "reports 5.1x vs state of the art; FLYCOO-GPU wins Twitch "
              "by 3.9x there)\n",
              geomean(speedups_vs_best));
}

}  // namespace

int main(int argc, char** argv) {
  register_all();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_summary();
  return 0;
}
