// Host execution engine throughput — wall-clock nnz/s of the paths that
// run *real* arithmetic on the host: the EC kernel, format-build sorting,
// and end-to-end mttkrp_all_modes. Unlike every other bench binary these
// numbers are measured time, not simulated time; they track the PR-over-PR
// speedup of the host engine (CI uploads the JSON as an artifact).
//
// The `*_reference` benchmarks are the pre-optimisation implementations
// kept verbatim (hash-map multiplicity tally in the element loop,
// comparison sort with per-comparison coordinate gathers), so one run
// reports the speedup ratio directly.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <array>
#include <cstdio>
#include <filesystem>
#include <numeric>
#include <sstream>
#include <unordered_map>

#include "core/amped_tensor.hpp"
#include "core/ec_kernel.hpp"
#include "core/mttkrp.hpp"
#include "exec/reference_loop.hpp"
#include "formats/sorting.hpp"
#include "io/mapped_tensor.hpp"
#include "io/snapshot.hpp"
#include "io/tns_ingest.hpp"
#include "sim/platform.hpp"
#include "tensor/generator.hpp"
#include "tensor/tns_io.hpp"
#include "util/metrics.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace amped;

constexpr nnz_t kNnz = 1u << 20;

// Two working-set regimes for the EC kernel's factor gathers:
//  - kCacheResident: input-mode factors fit L2 even at rank 64 — the
//    regime AMPED's shard kernels run in (bounded per-shard row sets).
//  - kDramBound: multi-MB input factors; gathers stream from L3/DRAM.
enum class EcWorkingSet { kCacheResident, kDramBound };

const CooTensor& sorted_tensor(EcWorkingSet ws) {
  auto make = [](std::vector<index_t> dims, std::uint64_t seed) {
    GeneratorOptions gen;
    gen.dims = std::move(dims);
    gen.nnz = kNnz;
    gen.zipf_exponents = {1.0, 0.0, 0.5};
    gen.seed = seed;
    auto out = generate_random(gen);
    out.sort_by_mode(0);
    return out;
  };
  static const CooTensor cache_resident =
      make({1u << 16, 1u << 12, 1u << 12}, 21);
  static const CooTensor dram_bound = make({1u << 16, 1u << 13, 1u << 14}, 21);
  return ws == EcWorkingSet::kCacheResident ? cache_resident : dram_bound;
}

const CooTensor& unsorted_tensor() {
  static const CooTensor t = [] {
    GeneratorOptions gen;
    gen.dims = {1u << 16, 1u << 13, 1u << 14};
    gen.nnz = kNnz;
    gen.zipf_exponents = {1.0, 0.0, 0.5};
    gen.seed = 22;
    return generate_random(gen);
  }();
  return t;
}

const FactorSet& factors(EcWorkingSet ws, std::size_t rank) {
  static std::unordered_map<std::size_t, FactorSet> cache[2];
  auto& slot = cache[static_cast<std::size_t>(ws)];
  auto it = slot.find(rank);
  if (it == slot.end()) {
    Rng rng(7 + rank);
    it = slot.emplace(rank,
                      FactorSet(sorted_tensor(ws).dims(), rank, rng)).first;
  }
  return it->second;
}

// ---------------------------------------------------------------------------
// EC kernel

void bm_ec_sorted(benchmark::State& state, EcWorkingSet ws) {
  const auto& t = sorted_tensor(ws);
  const std::size_t rank = static_cast<std::size_t>(state.range(0));
  const auto& f = factors(ws, rank);
  DenseMatrix out(t.dim(0), rank);
  for (auto _ : state) {
    auto stats =
        run_ec_block(t, 0, t.nnz(), 0, f, out, BlockOrder::kOutputSorted);
    benchmark::DoNotOptimize(stats.max_run);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(t.nnz()));
}
BENCHMARK_CAPTURE(bm_ec_sorted, l2, EcWorkingSet::kCacheResident)
    ->Name("ec/sorted")->Arg(8)->Arg(16)->Arg(32)->Arg(64)
    // Off-menu ranks: tiled dispatch (greedy 64s + one multiple-of-4
    // tile + <=3 remainder). 20/48/100/200 track the rank-cliff repair
    // in the trajectory JSON alongside the single-tile menu ranks.
    ->Arg(20)->Arg(48)->Arg(100)->Arg(200)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(bm_ec_sorted, dram, EcWorkingSet::kDramBound)
    ->Name("ec/sorted_dram")->Arg(16)->Arg(32)
    ->Unit(benchmark::kMillisecond);

// Unsorted off-menu series: same tiled passes plus the exact per-index
// multiplicity tally unsorted blocks pay for their stats.
void bm_ec_unsorted(benchmark::State& state) {
  const auto& t = unsorted_tensor();
  const std::size_t rank = static_cast<std::size_t>(state.range(0));
  Rng rng(7 + rank);
  const FactorSet f(t.dims(), rank, rng);
  DenseMatrix out(t.dim(0), rank);
  for (auto _ : state) {
    auto stats = run_ec_block(t, 0, t.nnz(), 0, f, out,
                              BlockOrder::kUnsorted);
    benchmark::DoNotOptimize(stats.max_multiplicity);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(t.nnz()));
}
BENCHMARK(bm_ec_unsorted)->Name("ec/unsorted")->Arg(100)
    ->Unit(benchmark::kMillisecond);

// The retained single-pass runtime-rank kernel (the pre-tiling fallback
// every off-menu rank used to hit). ec/sorted/100 vs ec/generic/100 is
// the rank-cliff repair measured on the same machine in the same run —
// the ratio CI gates on, because absolute nnz/s is runner hardware.
void bm_ec_generic(benchmark::State& state, EcWorkingSet ws) {
  const auto& t = sorted_tensor(ws);
  const std::size_t rank = static_cast<std::size_t>(state.range(0));
  const auto& f = factors(ws, rank);
  DenseMatrix out(t.dim(0), rank);
  for (auto _ : state) {
    auto stats = run_ec_block_generic(t, 0, t.nnz(), 0, f, out,
                                      BlockOrder::kOutputSorted);
    benchmark::DoNotOptimize(stats.max_run);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(t.nnz()));
}
BENCHMARK_CAPTURE(bm_ec_generic, l2, EcWorkingSet::kCacheResident)
    ->Name("ec/generic")->Arg(100)
    ->Unit(benchmark::kMillisecond);

// Pre-PR EC kernel, verbatim: per-element span gathers, per-element
// unordered_map multiplicity insert.
sim::EcBlockStats reference_ec_block(const CooTensor& t, nnz_t begin,
                                     nnz_t end, std::size_t output_mode,
                                     const FactorSet& f, DenseMatrix& out) {
  const std::size_t modes = t.num_modes();
  const std::size_t rank = f.rank();
  sim::EcBlockStats stats;
  stats.nnz = end - begin;
  stats.modes = modes;
  stats.rank = rank;
  if (begin == end) return stats;
  const auto out_idx = t.indices(output_mode);
  const auto vals = t.values();
  std::array<value_t, 256> scratch{};
  index_t run_index = out_idx[begin];
  nnz_t run_len = 0;
  stats.output_runs = 1;
  std::unordered_map<index_t, nnz_t> multiplicity;
  multiplicity.reserve(static_cast<std::size_t>(end - begin));
  for (nnz_t n = begin; n < end; ++n) {
    const value_t v = vals[n];
    for (std::size_t r = 0; r < rank; ++r) scratch[r] = v;
    for (std::size_t w = 0; w < modes; ++w) {
      if (w == output_mode) continue;
      const auto row = f.factor(w).row(t.indices(w)[n]);
      for (std::size_t r = 0; r < rank; ++r) scratch[r] *= row[r];
    }
    const index_t i = out_idx[n];
    auto out_row = out.row(i);
    for (std::size_t r = 0; r < rank; ++r) out_row[r] += scratch[r];
    if (i == run_index) {
      ++run_len;
    } else {
      stats.max_run = std::max(stats.max_run, run_len);
      ++stats.output_runs;
      run_index = i;
      run_len = 1;
    }
    stats.max_multiplicity =
        std::max(stats.max_multiplicity, ++multiplicity[i]);
  }
  stats.max_run = std::max(stats.max_run, run_len);
  return stats;
}

void bm_ec_reference(benchmark::State& state, EcWorkingSet ws) {
  const auto& t = sorted_tensor(ws);
  const std::size_t rank = static_cast<std::size_t>(state.range(0));
  const auto& f = factors(ws, rank);
  DenseMatrix out(t.dim(0), rank);
  for (auto _ : state) {
    auto stats = reference_ec_block(t, 0, t.nnz(), 0, f, out);
    benchmark::DoNotOptimize(stats.max_run);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(t.nnz()));
}
BENCHMARK_CAPTURE(bm_ec_reference, l2, EcWorkingSet::kCacheResident)
    ->Name("ec/reference")->Arg(8)->Arg(16)->Arg(32)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(bm_ec_reference, dram, EcWorkingSet::kDramBound)
    ->Name("ec/reference_dram")->Arg(16)->Arg(32)
    ->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// Preprocessing sorts

void bm_sort_radix(benchmark::State& state) {
  const auto& t = unsorted_tensor();
  std::vector<std::size_t> order(t.num_modes());
  std::iota(order.begin(), order.end(), std::size_t{0});
  for (auto _ : state) {
    auto perm = formats::lexicographic_permutation(t, order);
    benchmark::DoNotOptimize(perm.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(t.nnz()));
}
BENCHMARK(bm_sort_radix)->Name("sort/lexicographic")
    ->Unit(benchmark::kMillisecond);

// Pre-PR lexicographic permutation, verbatim.
void bm_sort_reference(benchmark::State& state) {
  const auto& t = unsorted_tensor();
  std::vector<std::size_t> order(t.num_modes());
  std::iota(order.begin(), order.end(), std::size_t{0});
  for (auto _ : state) {
    std::vector<nnz_t> perm(t.nnz());
    std::iota(perm.begin(), perm.end(), nnz_t{0});
    std::sort(perm.begin(), perm.end(), [&](nnz_t a, nnz_t b) {
      for (std::size_t m : order) {
        const auto idx = t.indices(m);
        if (idx[a] != idx[b]) return idx[a] < idx[b];
      }
      return false;
    });
    benchmark::DoNotOptimize(perm.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(t.nnz()));
}
BENCHMARK(bm_sort_reference)->Name("sort/reference")
    ->Unit(benchmark::kMillisecond);

void bm_sort_by_mode(benchmark::State& state) {
  const auto& t = unsorted_tensor();
  for (auto _ : state) {
    CooTensor copy = t;
    copy.sort_by_mode(1);
    benchmark::DoNotOptimize(copy.nnz());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(t.nnz()));
}
BENCHMARK(bm_sort_by_mode)->Name("sort/by_mode_with_apply")
    ->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// Storage engine: text ingest and snapshot reload (nnz/s series tracked
// PR over PR alongside the kernel numbers; the ISSUE-3 targets are
// ingest/parallel >= 3x ingest/serial and snapshot reload >= 10x text
// parse on the same tensor).

const CooTensor& io_tensor() {
  static const CooTensor t = [] {
    GeneratorOptions gen;
    gen.dims = {1u << 15, 1u << 12, 1u << 13};
    gen.nnz = 1u << 19;
    gen.zipf_exponents = {1.0, 0.0, 0.5};
    gen.seed = 23;
    return generate_random(gen);
  }();
  return t;
}

const std::string& io_tns_text() {
  static const std::string text = [] {
    std::ostringstream out;
    write_tns(io_tensor(), out);
    return out.str();
  }();
  return text;
}

// Snapshot written once to the temp dir and cleaned at process exit.
const std::string& io_snapshot_path() {
  static const std::string path = [] {
    auto p = (std::filesystem::temp_directory_path() /
              "amped_bench_host_throughput.amptns").string();
    io::write_snapshot_file(io_tensor(), p);
    static struct Cleanup {
      std::string path;
      ~Cleanup() { std::remove(path.c_str()); }
    } cleanup{p};
    return p;
  }();
  return path;
}

void bm_tns_ingest_serial(benchmark::State& state) {
  const auto& text = io_tns_text();
  for (auto _ : state) {
    std::istringstream in(text);
    auto t = read_tns(in);
    benchmark::DoNotOptimize(t.nnz());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(io_tensor().nnz()));
}
BENCHMARK(bm_tns_ingest_serial)->Name("io/tns_ingest_serial")
    ->Unit(benchmark::kMillisecond);

void bm_tns_ingest_parallel(benchmark::State& state) {
  const auto& text = io_tns_text();
  for (auto _ : state) {
    auto t = io::read_tns_text(text);
    benchmark::DoNotOptimize(t.nnz());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(io_tensor().nnz()));
}
BENCHMARK(bm_tns_ingest_parallel)->Name("io/tns_ingest_parallel")
    ->Unit(benchmark::kMillisecond);

void bm_snapshot_write(benchmark::State& state) {
  const auto path = (std::filesystem::temp_directory_path() /
                     "amped_bench_snapshot_write.amptns").string();
  for (auto _ : state) {
    io::write_snapshot_file(io_tensor(), path);
  }
  std::remove(path.c_str());
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(io_tensor().nnz()));
}
BENCHMARK(bm_snapshot_write)->Name("io/snapshot_write")
    ->Unit(benchmark::kMillisecond);

// Owned reload: checksum-verified read into resident vectors.
void bm_snapshot_reload(benchmark::State& state) {
  const auto& path = io_snapshot_path();
  for (auto _ : state) {
    auto t = io::read_snapshot_file(path);
    benchmark::DoNotOptimize(t.nnz());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(io_tensor().nnz()));
}
BENCHMARK(bm_snapshot_reload)->Name("io/snapshot_reload")
    ->Unit(benchmark::kMillisecond);

// Zero-copy reload: mmap + checksum sweep, no materialisation.
void bm_snapshot_reload_mmap(benchmark::State& state) {
  const auto& path = io_snapshot_path();
  for (auto _ : state) {
    io::MappedCooTensor mapped(path);
    benchmark::DoNotOptimize(mapped.values().data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(io_tensor().nnz()));
}
BENCHMARK(bm_snapshot_reload_mmap)->Name("io/snapshot_reload_mmap")
    ->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// End to end

void bm_amped_build(benchmark::State& state) {
  const auto& t = unsorted_tensor();
  AmpedBuildOptions build;
  build.num_gpus = 4;
  for (auto _ : state) {
    auto tensor = AmpedTensor::build(t, build);
    benchmark::DoNotOptimize(tensor.total_bytes());
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(t.nnz() * t.num_modes()));
}
BENCHMARK(bm_amped_build)->Name("e2e/amped_build")
    ->Unit(benchmark::kMillisecond);

void bm_mttkrp_all_modes(benchmark::State& state) {
  const auto& t = unsorted_tensor();
  AmpedBuildOptions build;
  build.num_gpus = 4;
  const auto tensor = AmpedTensor::build(t, build);
  const auto& f = factors(EcWorkingSet::kDramBound, 32);
  MttkrpOptions options;
  for (auto _ : state) {
    auto platform = sim::make_default_platform(build.num_gpus);
    std::vector<DenseMatrix> outputs;
    auto report = mttkrp_all_modes(platform, tensor, f, outputs, options);
    benchmark::DoNotOptimize(report.total_seconds);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(t.nnz() * t.num_modes()));
}
BENCHMARK(bm_mttkrp_all_modes)->Name("e2e/mttkrp_all_modes")
    ->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// Plan-engine dispatch overhead (ISSUE 4): the same MTTKRP sweep through
// the execution-plan engine (dispatch/plan_engine) and through the frozen
// pre-engine loop (dispatch/reference_loop, exec/reference_loop.cpp).
// Both run identical arithmetic and produce identical simulated times, so
// the wall-clock ratio isolates what the task IR + executor abstraction
// costs. CI compares the two and fails if the plan engine is more than 5%
// slower.

template <typename Fn>
void bm_dispatch(benchmark::State& state, Fn mttkrp) {
  const auto& t = unsorted_tensor();
  AmpedBuildOptions build;
  build.num_gpus = 4;
  const auto tensor = AmpedTensor::build(t, build);
  const auto& f = factors(EcWorkingSet::kDramBound, 32);
  MttkrpOptions options;
  for (auto _ : state) {
    auto platform = sim::make_default_platform(build.num_gpus);
    std::vector<DenseMatrix> outputs;
    auto report = mttkrp(platform, tensor, f, outputs, options);
    benchmark::DoNotOptimize(report.total_seconds);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(t.nnz() * t.num_modes()));
}

void bm_dispatch_plan(benchmark::State& state) {
  bm_dispatch(state, [](auto&... args) { return mttkrp_all_modes(args...); });
}
BENCHMARK(bm_dispatch_plan)->Name("dispatch/plan_engine")
    ->Unit(benchmark::kMillisecond);

void bm_dispatch_reference(benchmark::State& state) {
  bm_dispatch(state, [](auto&... args) {
    return exec::reference_loop_mttkrp_all_modes(args...);
  });
}
BENCHMARK(bm_dispatch_reference)->Name("dispatch/reference_loop")
    ->Unit(benchmark::kMillisecond);

// The same sweep with the metrics registry disabled: CI compares
// dispatch/plan_engine against this series and fails if instrumentation
// costs more than 2% (the counters on this path drop after one relaxed
// flag load when disabled, so the delta IS the instrumentation price).
void bm_dispatch_plan_metrics_off(benchmark::State& state) {
  metrics::set_enabled(false);
  bm_dispatch(state, [](auto&... args) { return mttkrp_all_modes(args...); });
  metrics::set_enabled(true);
}
BENCHMARK(bm_dispatch_plan_metrics_off)->Name("dispatch/plan_engine_metrics_off")
    ->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// Metrics-overhead microbenchmarks: the raw cost of one instrumentation
// event, on and off, so a regression in the hot-path price is visible
// without running a full sweep.

void bm_metrics_counter_inc(benchmark::State& state) {
  auto& c = metrics::counter("bench.counter");
  for (auto _ : state) c.inc();
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(bm_metrics_counter_inc)->Name("metrics/counter_inc");

void bm_metrics_counter_inc_disabled(benchmark::State& state) {
  auto& c = metrics::counter("bench.counter_off");
  metrics::set_enabled(false);
  for (auto _ : state) c.inc();
  metrics::set_enabled(true);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(bm_metrics_counter_inc_disabled)
    ->Name("metrics/counter_inc_disabled");

void bm_metrics_histogram_record(benchmark::State& state) {
  auto& h = metrics::histogram("bench.hist");
  for (auto _ : state) h.record_seconds(1e-6);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(bm_metrics_histogram_record)->Name("metrics/histogram_record");

void bm_metrics_snapshot(benchmark::State& state) {
  metrics::counter("bench.snap").inc();
  metrics::histogram("bench.snap_hist").record_seconds(1e-6);
  for (auto _ : state) {
    auto json = metrics::Registry::global().snapshot_json();
    benchmark::DoNotOptimize(json.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(bm_metrics_snapshot)->Name("metrics/snapshot_json");

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  std::printf("host threads: %zu (override with AMPED_THREADS)\n",
              amped::host_parallelism());
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
