// Ablation A5: heterogeneous node (the paper's §6 future work). Runs the
// Reddit profile on a mixed box — 2x RTX 6000 Ada + 2x A4000-class — and
// compares scheduling policies. Unweighted placement leaves the slow
// cards gating every mode; cost-weighted static fixes that when its
// a-priori estimate is accurate; dynamic dispatch adapts with no estimate
// at all and wins whenever transfer costs skew the static estimate; the
// cost-model scheduler (exec/scheduler.hpp) prices every (shard, GPU)
// pair on the roofline and balances seconds rather than nonzeros.
#include <benchmark/benchmark.h>

#include <map>

#include "bench_common.hpp"
#include "core/amped_tensor.hpp"
#include "core/mttkrp.hpp"

namespace {

using namespace amped;
using namespace amped::bench;

struct Outcome {
  double seconds = 0.0;
  double imbalance = 0.0;
};

std::map<std::string, Outcome>& results() {
  static std::map<std::string, Outcome> r;
  return r;
}

sim::Platform hetero_platform() {
  sim::PlatformConfig cfg;
  cfg.num_gpus = 4;
  cfg.workload_scale = bench_scale();
  cfg.gpu_overrides = {sim::rtx6000_ada_spec(), sim::rtx6000_ada_spec(),
                       sim::rtx_a4000_spec(), sim::rtx_a4000_spec()};
  return sim::Platform(cfg);
}

void run_policy(benchmark::State& state, SchedulingPolicy policy) {
  const auto& ds = dataset("reddit");
  auto factors = make_factors(ds);
  AmpedBuildOptions build;
  build.num_gpus = 4;
  auto tensor = AmpedTensor::build(ds.tensor, build);
  MttkrpOptions opt;
  opt.full_dims = ds.profile.full_dims;
  opt.policy = policy;

  Outcome o;
  for (auto _ : state) {
    auto platform = hetero_platform();
    std::vector<DenseMatrix> outputs;
    auto report = mttkrp_all_modes(platform, tensor, factors, outputs, opt);
    o.seconds = extrapolate(report.total_seconds);
    o.imbalance = report.compute_overhead_fraction();
  }
  results()[to_string(policy)] = o;
  state.counters["full_scale_s"] = o.seconds;
  state.counters["imbalance_pct"] = 100.0 * o.imbalance;
}

void register_all() {
  for (auto policy :
       {SchedulingPolicy::kStaticGreedy, SchedulingPolicy::kWeightedStatic,
        SchedulingPolicy::kDynamicQueue, SchedulingPolicy::kCostModel}) {
    const std::string name =
        "ablation_hetero/reddit/" + to_string(policy);
    benchmark::RegisterBenchmark(
        name.c_str(),
        [policy](benchmark::State& s) { run_policy(s, policy); })
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
  }
}

void print_summary() {
  std::printf("\n=== Ablation A5: heterogeneous node (2x RTX 6000 Ada + 2x "
              "A4000-class), Reddit ===\n");
  for (const auto& [policy, o] : results()) {
    print_row("A5", "reddit", policy + " time", o.seconds, "s");
    print_row("A5", "reddit", policy + " EC imbalance",
              100.0 * o.imbalance, "%");
  }
  std::printf("\nshape: every adaptive policy beats unweighted static on "
              "mixed devices. Weighted static narrows the EC spread when "
              "its a-priori estimate is accurate (compute-dominated, as "
              "here); dynamic dispatch needs no estimate; the cost-model "
              "scheduler prices each (shard, GPU) pair individually and "
              "posts the best makespan (see exec_plan_test).\n");
}

}  // namespace

int main(int argc, char** argv) {
  register_all();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_summary();
  return 0;
}
