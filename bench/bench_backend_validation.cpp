// Backend validation report: runs the same MTTKRP plans through the
// host-parallel backend and prints measured wall-clock next to the cost
// model's predicted seconds, per phase, per policy, on a homogeneous and
// a heterogeneous platform.
//
// Both columns come out of ONE host run: the kernel closures perform the
// real EC arithmetic and return the modelled grid seconds, so every
// ExecReport carries (measured, predicted) pairs — see
// exec/host_backend.hpp. The ratio column is the host-machine
// calibration factor: predicted seconds price a simulated GPU, measured
// seconds are this machine's CPU, so the ratio is expected to be far
// from 1 but *stable across phases and policies* when the model's
// relative costs are right.
//
// Plain driver (not Google Benchmark): the value is the table, not a
// timing distribution.
//
//   ./bench_backend_validation [--nnz N] [--rank R] [--threads T]
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "core/amped_tensor.hpp"
#include "core/mttkrp.hpp"
#include "exec/backend.hpp"
#include "exec/scheduler.hpp"
#include "sim/platform.hpp"
#include "tensor/generator.hpp"
#include "util/cli.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace amped;

struct PlatformCase {
  std::string name;
  sim::Platform (*make)();
};

sim::Platform homogeneous() { return sim::make_default_platform(4, 1000.0); }

sim::Platform heterogeneous() {
  sim::PlatformConfig cfg;
  cfg.num_gpus = 4;
  cfg.workload_scale = 1000.0;
  cfg.gpu_overrides = {sim::rtx6000_ada_spec(), sim::rtx6000_ada_spec(),
                       sim::rtx_a4000_spec(), sim::rtx_a4000_spec()};
  return sim::Platform(cfg);
}

struct PhaseTotals {
  double wall_compute = 0.0, predicted_compute = 0.0;
  double wall_h2d = 0.0, predicted_h2d = 0.0;
  double wall_fetch = 0.0, wall_sync = 0.0, wall_allgather = 0.0;
  double wall_total = 0.0;
};

void print_phase(const char* policy, const char* phase, double wall,
                 double predicted) {
  if (predicted > 0.0) {
    std::printf("  %-26s %-10s %12.6f s %14.6f s %10.3g\n", policy, phase,
                wall, predicted, wall / predicted);
  } else {
    std::printf("  %-26s %-10s %12.6f s %14s %10s\n", policy, phase, wall,
                "-", "-");
  }
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const auto nnz = static_cast<nnz_t>(args.get_int("nnz", 120000));
  const auto rank = static_cast<std::size_t>(args.get_int("rank", 32));
  const int threads = static_cast<int>(args.get_int("threads", 4));
  set_host_parallelism(threads);

  GeneratorOptions gen;
  gen.dims = {768, 512, 384};
  gen.nnz = nnz;
  gen.zipf_exponents = {0.8, 0.6, 0.4};
  gen.seed = 41;
  const auto input = generate_random(gen);
  Rng rng(42);
  FactorSet factors(input.dims(), rank, rng);
  AmpedBuildOptions build;
  build.num_gpus = 4;
  const auto tensor = AmpedTensor::build(input, build);

  const PlatformCase platforms[] = {
      {"4x RTX 6000 Ada (homogeneous)", &homogeneous},
      {"2x RTX 6000 Ada + 2x RTX A4000 (heterogeneous)", &heterogeneous},
  };
  const std::pair<SchedulingPolicy, bool> policies[] = {
      {SchedulingPolicy::kStaticGreedy, false},
      {SchedulingPolicy::kStaticGreedy, true},
      {SchedulingPolicy::kWeightedStatic, false},
      {SchedulingPolicy::kCostModel, false},
      {SchedulingPolicy::kDynamicQueue, false},
      {SchedulingPolicy::kDynamicLookahead, false},
  };

  std::printf("backend validation: %s, rank %zu, %d host worker threads\n",
              input.shape_string().c_str(), rank, threads);
  std::printf("predicted = cost-model seconds on the simulated devices; "
              "measured = wall clock of the same kernels on this host\n");

  for (const auto& pc : platforms) {
    std::printf("\n== %s ==\n", pc.name.c_str());
    std::printf("  %-26s %-10s %14s %16s %10s\n", "policy", "phase",
                "measured-wall", "predicted-sim", "ratio");
    for (const auto& [policy, pipelined] : policies) {
      MttkrpOptions options;
      options.policy = policy;
      options.pipelined_streaming = pipelined;
      options.backend = exec::ExecBackend::kHostParallel;
      auto platform = pc.make();

      PhaseTotals t;
      for (std::size_t d = 0; d < tensor.num_modes(); ++d) {
        DenseMatrix out(tensor.dims()[d], factors.rank());
        const exec::ModeLowerInput in{
            platform, tensor, d, factors, out, options,
            resolve_mttkrp_profile(options, tensor, d, platform,
                                   factors.rank())};
        auto plan = exec::make_scheduler(options)->lower(in);
        exec::PlanExecutor executor(platform,
                                    exec::ExecBackend::kHostParallel);
        const auto report = executor.run(plan);
        for (double s : report.per_gpu_compute) t.wall_compute += s;
        for (double s : report.per_gpu_predicted_compute) {
          t.predicted_compute += s;
        }
        t.wall_h2d += report.wall_h2d;
        t.predicted_h2d += report.predicted_h2d;
        t.wall_fetch += report.wall_spill_fetch;
        t.wall_sync += report.wall_sync;
        t.wall_allgather += report.wall_allgather;
        t.wall_total += report.wall_seconds;
      }

      const std::string name =
          to_string(policy) + (pipelined ? "+pipelined" : "");
      print_phase(name.c_str(), "kernel", t.wall_compute,
                  t.predicted_compute);
      print_phase(name.c_str(), "h2d", t.wall_h2d, t.predicted_h2d);
      print_phase(name.c_str(), "fetch", t.wall_fetch, 0.0);
      print_phase(name.c_str(), "sync", t.wall_sync, 0.0);
      print_phase(name.c_str(), "allgather", t.wall_allgather, 0.0);
      print_phase(name.c_str(), "total", t.wall_total, 0.0);
    }
  }

  // Rank-curve calibration: the wall/predicted ratio is the host-machine
  // calibration factor, so its *drift* between a menu rank (single-tile
  // program) and an off-menu rank (multi-tile program) measures how well
  // the tiled cost model tracks the tiled kernels' real relative
  // throughput. |drift - 1| <= 0.15 means estimate_shard_seconds prices
  // an off-menu shard within 15% of measured host-backend wall time,
  // relative to the menu-rank baseline it was calibrated on.
  std::printf("\n== rank-curve calibration (static-greedy, homogeneous) ==\n");
  std::printf("  %-8s %14s %16s %10s\n", "rank", "measured-wall",
              "predicted-sim", "ratio");
  double ratios[2] = {0.0, 0.0};
  // Anchor at the nearest single-tile menu rank (64) so the comparison
  // is a local linearization: both ranks sit in the same cache regime on
  // both machines, and the drift isolates what the tile decomposition
  // adds rather than how differently the two memory systems scale from
  // rank 32 to rank 100.
  const std::size_t cal_ranks[2] = {64, 100};
  for (int c = 0; c < 2; ++c) {
    Rng cal_rng(42);
    FactorSet cal_factors(input.dims(), cal_ranks[c], cal_rng);
    MttkrpOptions options;
    options.policy = SchedulingPolicy::kStaticGreedy;
    options.backend = exec::ExecBackend::kHostParallel;
    // Best of 5 repetitions: wall time on a shared machine carries
    // scheduling noise the predicted column does not, and the min is
    // the standard estimator for the undisturbed run.
    double wall = 0.0, predicted = 0.0;
    for (int rep = 0; rep < 5; ++rep) {
      auto platform = homogeneous();
      double rep_wall = 0.0, rep_predicted = 0.0;
      for (std::size_t d = 0; d < tensor.num_modes(); ++d) {
        DenseMatrix out(tensor.dims()[d], cal_factors.rank());
        const exec::ModeLowerInput in{
            platform, tensor, d, cal_factors, out, options,
            resolve_mttkrp_profile(options, tensor, d, platform,
                                   cal_factors.rank())};
        auto plan = exec::make_scheduler(options)->lower(in);
        exec::PlanExecutor executor(platform,
                                    exec::ExecBackend::kHostParallel);
        const auto report = executor.run(plan);
        for (double s : report.per_gpu_compute) rep_wall += s;
        for (double s : report.per_gpu_predicted_compute) {
          rep_predicted += s;
        }
      }
      if (rep == 0 || rep_wall < wall) wall = rep_wall;
      predicted = rep_predicted;  // deterministic, identical every rep
    }
    ratios[c] = predicted > 0.0 ? wall / predicted : 0.0;
    std::printf("  %-8zu %12.6f s %14.6f s %10.3g\n", cal_ranks[c], wall,
                predicted, ratios[c]);
  }
  if (ratios[0] > 0.0 && ratios[1] > 0.0) {
    const double drift = ratios[1] / ratios[0];
    std::printf("  off-menu/menu ratio drift: %.3f (|drift-1| <= 0.15 "
                "passes)\n", drift);
  }
  // Fluid host-link calibration: calibrate the model's two bandwidth
  // knobs to THIS machine (single-thread memcpy rate = lane bandwidth,
  // 4-thread aggregate memcpy rate = host aggregate), then check that the
  // fluid prediction of the staged H2D copies — each priced at the lane
  // count actually streaming when it ran — lands within 15% of the
  // measured staging wall time. The static per-GPU share prices every
  // copy as if all 4 lanes always stream, so on a run whose lanes drift
  // apart it must overshoot; the fluid column is the fix.
  std::printf("\n== fluid host-link calibration (static-greedy, 4 lanes) ==\n");
  // The calibration copy mimics what staging does: read shard payloads
  // the lane has not touched recently (cold source) into a small reused
  // device buffer (hot destination). Each thread walks 1 MB chunks of a
  // 64 MB source into a fixed 1 MB destination; hot-src/hot-dst memcpy
  // would overprice the lanes, 64 MB cold-everything streams would
  // underprice them.
  auto copy_rate = [](int nthreads) {
    const std::size_t chunk = 1ull << 20;
    const std::size_t chunks = 64;
    const int walks = 4;
    std::vector<std::vector<char>> src(nthreads), dst(nthreads);
    for (int i = 0; i < nthreads; ++i) {
      src[i].assign(chunk * chunks, 1);
      dst[i].assign(chunk, 0);
    }
    const auto start = std::chrono::steady_clock::now();
    std::vector<std::thread> workers;
    for (int i = 0; i < nthreads; ++i) {
      workers.emplace_back([&, i] {
        for (int w = 0; w < walks; ++w) {
          for (std::size_t c = 0; c < chunks; ++c) {
            std::memcpy(dst[i].data(), src[i].data() + c * chunk, chunk);
          }
        }
      });
    }
    for (auto& w : workers) w.join();
    const double el =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    return static_cast<double>(nthreads) * walks *
           static_cast<double>(chunk * chunks) / el;
  };
  const double lane_bw = copy_rate(1);
  const double agg_bw = copy_rate(4);
  std::printf("  memcpy calibration: lane %.2f GB/s, 4-thread aggregate "
              "%.2f GB/s\n", lane_bw / 1e9, agg_bw / 1e9);
  {
    sim::PlatformConfig cfg;
    cfg.num_gpus = 4;
    cfg.workload_scale = 1000.0;
    cfg.host_link = {lane_bw, 0.0};
    cfg.host_aggregate_bandwidth = agg_bw;
    MttkrpOptions options;
    options.policy = SchedulingPolicy::kStaticGreedy;
    options.backend = exec::ExecBackend::kHostParallel;
    double wall = 0.0, fluid = 0.0, fixed = 0.0;
    for (int rep = 0; rep < 5; ++rep) {
      sim::Platform platform(cfg);
      double rep_wall = 0.0, rep_fluid = 0.0, rep_static = 0.0;
      for (std::size_t d = 0; d < tensor.num_modes(); ++d) {
        DenseMatrix out(tensor.dims()[d], factors.rank());
        const exec::ModeLowerInput in{
            platform, tensor, d, factors, out, options,
            resolve_mttkrp_profile(options, tensor, d, platform,
                                   factors.rank())};
        auto plan = exec::make_scheduler(options)->lower(in);
        exec::PlanExecutor executor(platform,
                                    exec::ExecBackend::kHostParallel);
        const auto report = executor.run(plan);
        rep_wall += report.wall_h2d;
        rep_fluid += report.predicted_h2d_fluid;
        rep_static += report.predicted_h2d;
      }
      if (rep == 0 || rep_wall < wall) {
        wall = rep_wall;
        fluid = rep_fluid;  // lane sampling varies with the rep's timing:
        fixed = rep_static;  // keep the prediction of the selected rep
      }
    }
    std::printf("  %-18s %12.6f s\n", "measured h2d", wall);
    std::printf("  %-18s %12.6f s  ratio %.3f\n", "static prediction",
                fixed, fixed > 0.0 ? wall / fixed : 0.0);
    std::printf("  %-18s %12.6f s  ratio %.3f\n", "fluid prediction",
                fluid, fluid > 0.0 ? wall / fluid : 0.0);
    if (fluid > 0.0) {
      const double drift = wall / fluid;
      std::printf("  fluid drift: %.3f (|drift-1| <= 0.15 passes)\n",
                  drift);
    }
  }
  set_host_parallelism(0);
  return 0;
}
