// Persistence for decomposition results.
//
// Billion-scale CPD runs take long enough that users checkpoint factor
// matrices between ALS sweeps and export the final model for downstream
// use. Two formats: a versioned little-endian binary (`.ampfac`) that
// round-trips a whole FactorSet + lambda exactly, and a plain-text matrix
// dump for interchange with numpy/Julia tooling.
#pragma once

#include <string>
#include <vector>

#include "tensor/dense_matrix.hpp"

namespace amped {

struct CpdModel {
  std::vector<DenseMatrix> factors;  // one I_d x R matrix per mode
  std::vector<double> lambda;        // component weights (size R)
  double fit = 0.0;
};

// Binary round trip (magic "AMPFAC01"). Throws std::runtime_error on I/O
// or format errors.
void write_model_file(const CpdModel& model, const std::string& path);
CpdModel read_model_file(const std::string& path);

// One matrix as whitespace-separated text, one row per line.
void write_matrix_text(const DenseMatrix& m, const std::string& path);
DenseMatrix read_matrix_text(const std::string& path);

}  // namespace amped
