#include "tensor/dense_matrix.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace amped {

void DenseMatrix::set_zero() {
  std::fill(data_.begin(), data_.end(), value_t{0});
}

void DenseMatrix::fill_random(Rng& rng, value_t lo, value_t hi) {
  for (auto& v : data_) {
    v = static_cast<value_t>(rng.next_double(lo, hi));
  }
}

double DenseMatrix::frob_sq() const {
  double acc = 0.0;
  for (value_t v : data_) acc += static_cast<double>(v) * v;
  return acc;
}

double DenseMatrix::max_abs_diff(const DenseMatrix& a, const DenseMatrix& b) {
  assert(a.rows() == b.rows() && a.cols() == b.cols());
  double worst = 0.0;
  for (std::size_t i = 0; i < a.data_.size(); ++i) {
    worst = std::max(worst,
                     std::abs(static_cast<double>(a.data_[i]) - b.data_[i]));
  }
  return worst;
}

FactorSet::FactorSet(std::span<const index_t> dims, std::size_t rank,
                     Rng& rng)
    : rank_(rank) {
  factors_.reserve(dims.size());
  for (index_t d : dims) {
    DenseMatrix m(d, rank);
    m.fill_random(rng);
    factors_.push_back(std::move(m));
  }
}

std::size_t FactorSet::total_bytes() const {
  std::size_t total = 0;
  for (const auto& f : factors_) total += f.bytes();
  return total;
}

}  // namespace amped
