// N-mode sparse tensor in COOrdinate (COO) format, structure-of-arrays.
//
// COO is the interchange format of this project: generators produce it,
// the FROSTT .tns reader parses into it, and every execution format
// (AMPED shards, CSF, HiCOO, BLCO) is built from a COO tensor during
// preprocessing. Indices are stored one contiguous array per mode (SoA)
// so mode-specific passes stream exactly the coordinates they touch.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "tensor/types.hpp"

namespace amped {

class CooTensor {
 public:
  CooTensor() = default;

  // Creates an empty tensor with the given mode sizes.
  explicit CooTensor(std::vector<index_t> dims);

  // Adopts fully-built SoA arrays without per-element appends: `indices`
  // holds one column per mode, all sized like `values`. This is the bulk
  // path used by the storage engine (snapshot reloads, parallel ingest,
  // shard streams); push_back stays the incremental one.
  static CooTensor from_parts(std::vector<index_t> dims,
                              std::vector<std::vector<index_t>> indices,
                              std::vector<value_t> values);

  std::size_t num_modes() const { return dims_.size(); }
  nnz_t nnz() const { return values_.size(); }
  const std::vector<index_t>& dims() const { return dims_; }
  index_t dim(std::size_t mode) const { return dims_[mode]; }

  std::span<const index_t> indices(std::size_t mode) const {
    return index_[mode];
  }
  std::span<index_t> mutable_indices(std::size_t mode) { return index_[mode]; }
  std::span<const value_t> values() const { return values_; }
  std::span<value_t> mutable_values() { return values_; }

  // Appends one nonzero. `coords` must have num_modes() entries.
  void push_back(std::span<const index_t> coords, value_t value);
  void reserve(nnz_t n);

  // Sorts nonzeros lexicographically with `major_mode` as the most
  // significant key, remaining modes in ascending mode order. This is the
  // order in which an output-mode-d tensor copy is laid out.
  void sort_by_mode(std::size_t major_mode);

  // Merges duplicate coordinates (summing values). Requires any sorted
  // order; returns the number of merged-away entries.
  nnz_t coalesce();

  // True when every index is within its mode size.
  bool indices_in_bounds() const;

  // Bytes one nonzero occupies in COO (indices + value); used by the
  // simulator's memory-capacity and transfer accounting.
  std::size_t bytes_per_nnz() const {
    return num_modes() * sizeof(index_t) + sizeof(value_t);
  }
  std::size_t storage_bytes() const { return nnz() * bytes_per_nnz(); }

  // Gathers the coordinates of nonzero `n` into `out` (size >= num_modes).
  void coords_of(nnz_t n, std::span<index_t> out) const;

  // Human-readable "8.2M x 177K x 8.1M, 4.7B nnz"-style description.
  std::string shape_string() const;

  // Applies `perm` (a permutation of [0, nnz)) to all index arrays and the
  // value array: element i of the result is element perm[i] of the input.
  void apply_permutation(std::span<const nnz_t> perm);

 private:
  std::vector<index_t> dims_;
  std::vector<std::vector<index_t>> index_;  // index_[mode][n]
  std::vector<value_t> values_;
};

// The "8.2M x 177K x 8.1M, 4.7B nnz" rendering behind
// CooTensor::shape_string, shared with non-owning tensor views.
std::string shape_string(std::span<const index_t> dims, nnz_t nnz);

}  // namespace amped
