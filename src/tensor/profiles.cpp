#include "tensor/profiles.hpp"

#include <algorithm>
#include <cctype>
#include <stdexcept>

namespace amped {

// Zipf exponents are chosen per mode to reflect each dataset's documented
// character: review/user modes are mildly skewed, word/subreddit and
// streamer/game modes are strongly skewed (the paper singles out Twitch's
// popular streamers and games as the source of its load imbalance, §5.5),
// and Patents' tiny year mode is nearly uniform.

DatasetProfile amazon_profile() {
  return DatasetProfile{
      .name = "amazon",
      .full_dims = {4'800'000, 1'800'000, 1'800'000},
      .full_nnz = 1'700'000'000,
      .zipf_exponents = {0.65, 0.9, 0.9},
      .seed = 0xA11A50ULL,
  };
}

DatasetProfile patents_profile() {
  return DatasetProfile{
      .name = "patents",
      .full_dims = {46, 239'200, 239'200},
      .full_nnz = 3'600'000'000,
      .zipf_exponents = {0.15, 0.55, 0.55},
      .seed = 0x9A7E27ULL,
  };
}

DatasetProfile reddit_profile() {
  return DatasetProfile{
      .name = "reddit",
      .full_dims = {8'200'000, 177'000, 8'100'000},
      .full_nnz = 4'700'000'000,
      .zipf_exponents = {0.85, 1.0, 0.95},
      .seed = 0x42EDD17ULL,
  };
}

DatasetProfile twitch_profile() {
  // Popular streamers/games make Twitch the most skewed tensor (§5.5),
  // but its measured inter-GPU imbalance stays around 1% (Fig. 8), which
  // bounds the hottest index's share of nonzeros to a few percent — hence
  // sub-1.0 exponents even on the "hot" modes.
  return DatasetProfile{
      .name = "twitch",
      .full_dims = {15'500'000, 6'200'000, 783'900, 6'100, 6'100},
      .full_nnz = 500'000'000,
      .zipf_exponents = {0.7, 0.95, 0.9, 0.97, 0.97},
      .seed = 0x7817C4ULL,
  };
}

std::vector<DatasetProfile> table3_profiles() {
  return {amazon_profile(), patents_profile(), reddit_profile(),
          twitch_profile()};
}

DatasetProfile profile_by_name(const std::string& name) {
  std::string lower(name);
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  for (auto& p : table3_profiles()) {
    if (p.name == lower) return p;
  }
  throw std::invalid_argument("unknown dataset profile: " + name);
}

}  // namespace amped
