#include "tensor/reference_mttkrp.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <vector>

namespace amped {

DenseMatrix reference_mttkrp(const CooTensor& t, const FactorSet& factors,
                             std::size_t output_mode) {
  assert(output_mode < t.num_modes());
  assert(factors.num_modes() == t.num_modes());
  const std::size_t rank = factors.rank();
  const std::size_t modes = t.num_modes();

  // Double-precision accumulator, converted to value_t at the end.
  std::vector<double> acc(static_cast<std::size_t>(t.dim(output_mode)) * rank,
                          0.0);
  std::vector<double> scratch(rank, 0.0);

  for (nnz_t n = 0; n < t.nnz(); ++n) {
    const double val = t.values()[n];
    for (std::size_t r = 0; r < rank; ++r) scratch[r] = val;
    for (std::size_t w = 0; w < modes; ++w) {
      if (w == output_mode) continue;
      const auto row = factors.factor(w).row(t.indices(w)[n]);
      for (std::size_t r = 0; r < rank; ++r) {
        scratch[r] *= static_cast<double>(row[r]);
      }
    }
    const std::size_t base =
        static_cast<std::size_t>(t.indices(output_mode)[n]) * rank;
    for (std::size_t r = 0; r < rank; ++r) acc[base + r] += scratch[r];
  }

  DenseMatrix out(t.dim(output_mode), rank);
  for (std::size_t i = 0; i < acc.size(); ++i) {
    out.data()[i] = static_cast<value_t>(acc[i]);
  }
  return out;
}

std::vector<DenseMatrix> reference_mttkrp_all_modes(const CooTensor& t,
                                                    const FactorSet& factors) {
  std::vector<DenseMatrix> outs;
  outs.reserve(t.num_modes());
  for (std::size_t d = 0; d < t.num_modes(); ++d) {
    outs.push_back(reference_mttkrp(t, factors, d));
  }
  return outs;
}

double relative_max_diff(const DenseMatrix& reference,
                         const DenseMatrix& candidate) {
  double scale = 0.0;
  for (value_t v : reference.data()) {
    scale = std::max(scale, std::abs(static_cast<double>(v)));
  }
  if (scale == 0.0) scale = 1.0;
  return DenseMatrix::max_abs_diff(reference, candidate) / scale;
}

}  // namespace amped
