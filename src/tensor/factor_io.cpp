#include "tensor/factor_io.hpp"

#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace amped {

namespace {
constexpr char kMagic[8] = {'A', 'M', 'P', 'F', 'A', 'C', '0', '1'};

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error("factor_io: " + what);
}

template <typename T>
void write_pod(std::ostream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T read_pod(std::istream& in) {
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  return value;
}
}  // namespace

void write_model_file(const CpdModel& model, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) fail("cannot open " + path + " for writing");
  out.write(kMagic, sizeof(kMagic));
  write_pod<std::uint64_t>(out, model.factors.size());
  write_pod<std::uint64_t>(out, model.lambda.size());
  write_pod<double>(out, model.fit);
  for (double l : model.lambda) write_pod<double>(out, l);
  for (const auto& f : model.factors) {
    write_pod<std::uint64_t>(out, f.rows());
    write_pod<std::uint64_t>(out, f.cols());
    out.write(reinterpret_cast<const char*>(f.data().data()),
              static_cast<std::streamsize>(f.bytes()));
  }
  if (!out) fail("short write to " + path);
}

CpdModel read_model_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) fail("cannot open " + path);
  char magic[8];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    fail("bad magic in " + path);
  }
  CpdModel model;
  const auto modes = read_pod<std::uint64_t>(in);
  const auto rank = read_pod<std::uint64_t>(in);
  model.fit = read_pod<double>(in);
  if (!in || modes == 0 || modes > 64) fail("bad header in " + path);
  model.lambda.resize(rank);
  for (auto& l : model.lambda) l = read_pod<double>(in);
  model.factors.reserve(modes);
  for (std::uint64_t m = 0; m < modes; ++m) {
    const auto rows = read_pod<std::uint64_t>(in);
    const auto cols = read_pod<std::uint64_t>(in);
    if (!in || cols != rank) fail("inconsistent factor shape in " + path);
    DenseMatrix f(rows, cols);
    in.read(reinterpret_cast<char*>(f.data().data()),
            static_cast<std::streamsize>(f.bytes()));
    model.factors.push_back(std::move(f));
  }
  if (!in) fail("truncated file " + path);
  return model;
}

void write_matrix_text(const DenseMatrix& m, const std::string& path) {
  std::ofstream out(path);
  if (!out) fail("cannot open " + path + " for writing");
  for (std::size_t r = 0; r < m.rows(); ++r) {
    for (std::size_t c = 0; c < m.cols(); ++c) {
      if (c) out << ' ';
      out << m(r, c);
    }
    out << '\n';
  }
}

DenseMatrix read_matrix_text(const std::string& path) {
  std::ifstream in(path);
  if (!in) fail("cannot open " + path);
  std::vector<std::vector<value_t>> rows;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream ls(line);
    std::vector<value_t> row;
    value_t v;
    while (ls >> v) row.push_back(v);
    if (!rows.empty() && row.size() != rows.front().size()) {
      fail("ragged rows in " + path);
    }
    rows.push_back(std::move(row));
  }
  if (rows.empty()) fail("empty matrix in " + path);
  DenseMatrix m(rows.size(), rows.front().size());
  for (std::size_t r = 0; r < rows.size(); ++r) {
    for (std::size_t c = 0; c < rows[r].size(); ++c) m(r, c) = rows[r][c];
  }
  return m;
}

}  // namespace amped
