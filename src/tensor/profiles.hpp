// Dataset profiles: synthetic stand-ins for the paper's Table 3 tensors.
//
// The evaluation tensors (FROSTT Amazon/Patents/Reddit-2015 and the Twitch
// recommender tensor) total ~10.5 billion nonzeros — hundreds of GB that
// this environment can neither download nor hold. A profile records each
// dataset's *full-scale* shape and nonzero count from Table 3 plus a
// per-mode Zipf exponent capturing its index-popularity skew (e.g. Twitch's
// popular-streamer hot rows, Patents' 46 uniformly-hit year indices). The
// generator then materialises the profile at a reduced `scale`: nonzeros
// and large mode sizes shrink by the same factor, preserving the per-index
// duplicate ratios that drive atomic contention, load imbalance, and
// factor-matrix communication volume. Small modes (like Patents' 46 years)
// are kept at full size, as dividing them would change the workload's
// character.
#pragma once

#include <string>
#include <vector>

#include "tensor/coo_tensor.hpp"
#include "tensor/types.hpp"

namespace amped {

struct DatasetProfile {
  std::string name;
  std::vector<std::uint64_t> full_dims;   // Table 3 shape
  std::uint64_t full_nnz = 0;             // Table 3 nonzero count
  std::vector<double> zipf_exponents;     // per-mode skew (0 == uniform)
  std::uint64_t seed = 0;                 // generator stream id

  std::size_t num_modes() const { return full_dims.size(); }

  // Full-scale COO bytes (indices + value per nonzero); decides which
  // baselines fit in GPU memory, mirroring the paper's OOM outcomes.
  std::uint64_t full_coo_bytes() const {
    return full_nnz *
           (num_modes() * sizeof(index_t) + sizeof(value_t));
  }
};

// The four billion-scale tensors of Table 3.
DatasetProfile amazon_profile();    // 4.8M x 1.8M x 1.8M, 1.7B nnz
DatasetProfile patents_profile();   // 46 x 239.2K x 239.2K, 3.6B nnz
DatasetProfile reddit_profile();    // 8.2M x 177K x 8.1M, 4.7B nnz
DatasetProfile twitch_profile();    // 15.5M x 6.2M x 783.9K x 6.1K x 6.1K, 0.5B

// All of Table 3 in paper order.
std::vector<DatasetProfile> table3_profiles();

// Looks up a profile by (case-insensitive) name; throws on unknown name.
DatasetProfile profile_by_name(const std::string& name);

}  // namespace amped
