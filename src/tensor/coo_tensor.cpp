#include "tensor/coo_tensor.hpp"

#include <cassert>
#include <sstream>

#include "util/radix_sort.hpp"

namespace amped {

CooTensor::CooTensor(std::vector<index_t> dims) : dims_(std::move(dims)) {
  assert(!dims_.empty() && dims_.size() <= kMaxModes);
  index_.resize(dims_.size());
}

CooTensor CooTensor::from_parts(std::vector<index_t> dims,
                                std::vector<std::vector<index_t>> indices,
                                std::vector<value_t> values) {
  CooTensor t(std::move(dims));
  assert(indices.size() == t.num_modes());
  for ([[maybe_unused]] const auto& col : indices) {
    assert(col.size() == values.size());
  }
  t.index_ = std::move(indices);
  t.values_ = std::move(values);
  return t;
}

void CooTensor::push_back(std::span<const index_t> coords, value_t value) {
  assert(coords.size() == num_modes());
  for (std::size_t m = 0; m < num_modes(); ++m) {
    index_[m].push_back(coords[m]);
  }
  values_.push_back(value);
}

void CooTensor::reserve(nnz_t n) {
  for (auto& v : index_) v.reserve(n);
  values_.reserve(n);
}

void CooTensor::apply_permutation(std::span<const nnz_t> perm) {
  assert(perm.size() == nnz());
  std::vector<value_t> new_vals(values_.size());
  for (nnz_t i = 0; i < perm.size(); ++i) new_vals[i] = values_[perm[i]];
  values_ = std::move(new_vals);
  for (auto& idx : index_) {
    std::vector<index_t> next(idx.size());
    for (nnz_t i = 0; i < perm.size(); ++i) next[i] = idx[perm[i]];
    idx = std::move(next);
  }
}

void CooTensor::sort_by_mode(std::size_t major_mode) {
  assert(major_mode < num_modes());
  // Key order: major mode first, then the remaining modes ascending.
  std::vector<util::SortKeyColumn> columns;
  columns.reserve(num_modes());
  columns.push_back({index_[major_mode], dims_[major_mode]});
  for (std::size_t m = 0; m < num_modes(); ++m) {
    if (m != major_mode) columns.push_back({index_[m], dims_[m]});
  }
  apply_permutation(util::lexicographic_sort_permutation(columns));
}

nnz_t CooTensor::coalesce() {
  if (nnz() == 0) return 0;
  const nnz_t n = nnz();
  nnz_t write = 0;
  auto same_coords = [&](nnz_t a, nnz_t b) {
    for (std::size_t m = 0; m < num_modes(); ++m) {
      if (index_[m][a] != index_[m][b]) return false;
    }
    return true;
  };
  for (nnz_t read = 1; read < n; ++read) {
    if (same_coords(write, read)) {
      values_[write] += values_[read];
    } else {
      ++write;
      for (std::size_t m = 0; m < num_modes(); ++m) {
        index_[m][write] = index_[m][read];
      }
      values_[write] = values_[read];
    }
  }
  const nnz_t kept = write + 1;
  for (auto& idx : index_) idx.resize(kept);
  values_.resize(kept);
  return n - kept;
}

bool CooTensor::indices_in_bounds() const {
  for (std::size_t m = 0; m < num_modes(); ++m) {
    for (index_t idx : index_[m]) {
      if (idx >= dims_[m]) return false;
    }
  }
  return true;
}

void CooTensor::coords_of(nnz_t n, std::span<index_t> out) const {
  assert(n < nnz() && out.size() >= num_modes());
  for (std::size_t m = 0; m < num_modes(); ++m) out[m] = index_[m][n];
}

namespace {
std::string human_count(double v) {
  std::ostringstream os;
  os.precision(3);
  if (v >= 1e9) {
    os << v / 1e9 << "B";
  } else if (v >= 1e6) {
    os << v / 1e6 << "M";
  } else if (v >= 1e3) {
    os << v / 1e3 << "K";
  } else {
    os << v;
  }
  return os.str();
}
}  // namespace

std::string CooTensor::shape_string() const {
  return amped::shape_string(dims_, nnz());
}

std::string shape_string(std::span<const index_t> dims, nnz_t nnz) {
  std::ostringstream os;
  for (std::size_t m = 0; m < dims.size(); ++m) {
    if (m) os << " x ";
    os << human_count(static_cast<double>(dims[m]));
  }
  os << ", " << human_count(static_cast<double>(nnz)) << " nnz";
  return os.str();
}

}  // namespace amped
