// Dense row-major matrix: factor matrices and small ALS workspaces.
//
// Factor matrices in CPD are tall and skinny (I_d rows, rank R columns,
// R = 32 by default), accessed row-at-a-time by MTTKRP. Row-major layout
// makes each factor-row gather one contiguous read, which is also what the
// simulator's cost model charges for.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "tensor/types.hpp"
#include "util/aligned.hpp"
#include "util/random.hpp"

namespace amped {

class DenseMatrix {
 public:
  DenseMatrix() = default;
  DenseMatrix(std::size_t rows, std::size_t cols, value_t fill = 0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  value_t& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  value_t operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  std::span<value_t> row(std::size_t r) {
    return std::span<value_t>(data_.data() + r * cols_, cols_);
  }
  std::span<const value_t> row(std::size_t r) const {
    return std::span<const value_t>(data_.data() + r * cols_, cols_);
  }

  std::span<value_t> data() { return data_; }
  std::span<const value_t> data() const { return data_; }

  std::size_t bytes() const { return data_.size() * sizeof(value_t); }

  void set_zero();
  void fill_random(Rng& rng, value_t lo = 0.0f, value_t hi = 1.0f);

  // Frobenius norm squared.
  double frob_sq() const;

  // Max |a - b| over all entries; matrices must be the same shape.
  static double max_abs_diff(const DenseMatrix& a, const DenseMatrix& b);

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  // Cache-line aligned: EC-kernel gathers read whole rows, and a rank-16
  // row is one line instead of two when the base is aligned.
  std::vector<value_t, util::AlignedAllocator<value_t>> data_;
};

// The set of factor matrices of a CPD model: one I_d x R matrix per mode.
class FactorSet {
 public:
  FactorSet() = default;
  FactorSet(std::span<const index_t> dims, std::size_t rank, Rng& rng);

  std::size_t num_modes() const { return factors_.size(); }
  std::size_t rank() const { return rank_; }

  DenseMatrix& factor(std::size_t mode) { return factors_[mode]; }
  const DenseMatrix& factor(std::size_t mode) const { return factors_[mode]; }

  // Total bytes of all factor matrices (what each simulated GPU mirrors).
  std::size_t total_bytes() const;

 private:
  std::size_t rank_ = 0;
  std::vector<DenseMatrix> factors_;
};

}  // namespace amped
