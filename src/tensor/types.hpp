// Fundamental scalar/index types shared across the library.
//
// Index type: the paper's largest mode (Twitch, 15.5M indices) fits easily
// in 32 bits, and 32-bit indices halve the memory traffic of the dominant
// COO loads — the same choice production GPU tensor codes make. Mode counts
// are tiny (3..5), so they are plain std::size_t.
#pragma once

#include <cstddef>
#include <cstdint>

namespace amped {

using index_t = std::uint32_t;  // coordinate of a nonzero along one mode
using value_t = float;          // tensor / factor matrix element
using nnz_t = std::uint64_t;    // count of nonzero elements

// Maximum number of modes the paper's workloads need (Twitch has 5); a
// small fixed bound lets hot loops keep coordinates in registers.
inline constexpr std::size_t kMaxModes = 8;

}  // namespace amped
