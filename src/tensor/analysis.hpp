// Sparse-tensor structure analysis.
//
// The quantities that decide how MTTKRP behaves on a given tensor: how
// nonzeros concentrate on indices (atomic contention, shard balance), how
// many fibers each mode has (CSF efficiency), and how densely blocks are
// occupied (HiCOO efficiency). The examples and docs use these to explain
// why each Table 3 tensor behaves the way it does; the generator tests
// use them to validate the synthetic profiles.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "tensor/coo_tensor.hpp"

namespace amped {

struct ModeAnalysis {
  std::size_t mode = 0;
  index_t dim = 0;
  nnz_t used_indices = 0;        // indices with at least one nonzero
  nnz_t max_multiplicity = 0;    // nonzeros on the hottest index
  double mean_multiplicity = 0;  // nnz / used_indices
  double gini = 0.0;             // popularity skew in [0, 1)
  // Share of all nonzeros held by the hottest index — the quantity that
  // bounds AMPED's inter-GPU balance (a share above 1/num_gpus cannot be
  // split, because a shard is the atomic unit of placement).
  double hottest_share = 0.0;
};

struct TensorAnalysis {
  std::vector<ModeAnalysis> modes;
  nnz_t nnz = 0;
  double density = 0.0;  // nnz / prod(dims)

  std::string to_string() const;
};

// Full per-mode scan of `t` (O(nnz x modes) time, O(max dim) space).
TensorAnalysis analyze(const CooTensor& t);

// Number of distinct (mode_a, mode_b) index pairs — the fiber count of a
// CSF tree rooted so those two modes are the top levels.
nnz_t count_fibers(const CooTensor& t, std::size_t mode_a,
                   std::size_t mode_b);

}  // namespace amped
