#include "tensor/generator.hpp"

#include <algorithm>
#include <array>
#include <cassert>
#include <stdexcept>

namespace amped {

namespace {

// Multiplicative hash permutation of [0, n): maps Zipf's rank order (hot
// index 0, 1, 2, ...) onto scattered positions. A fixed odd multiplier and
// modular reduction gives a cheap bijection when n is not a power of two;
// we use a Feistel-lite mix over the smallest power of two >= n with
// cycle-walking to stay inside [0, n).
class IndexScatter {
 public:
  IndexScatter(std::uint64_t n, std::uint64_t salt) : n_(n) {
    bits_ = 1;
    while ((1ULL << bits_) < n_) ++bits_;
    mask_ = (1ULL << bits_) - 1;
    SplitMix64 sm(salt);
    k0_ = sm.next() | 1ULL;
    k1_ = sm.next() | 1ULL;
    c0_ = sm.next() & mask_;
    c1_ = sm.next() & mask_;
  }

  std::uint64_t operator()(std::uint64_t x) const {
    assert(x < n_);
    if (n_ <= 2) return x;
    do {
      x = mix(x);
    } while (x >= n_);  // cycle-walk back into range
    return x;
  }

 private:
  std::uint64_t mix(std::uint64_t x) const {
    // Two rounds of affine-multiply + xorshift confined to `bits_` bits;
    // a bijection on [0, 2^bits) because each step is invertible mod
    // 2^bits (odd multiplier, xor-shift, additive constant).
    x = (x * k0_ + c0_) & mask_;
    x ^= x >> (bits_ / 2 + 1);
    x = (x * k1_ + c1_) & mask_;
    x ^= x >> (bits_ / 2 + 1);
    return x & mask_;
  }

  std::uint64_t n_, mask_, k0_, k1_, c0_ = 0, c1_ = 0;
  unsigned bits_ = 1;
};

}  // namespace

CooTensor generate_random(const GeneratorOptions& options) {
  const std::size_t modes = options.dims.size();
  if (modes == 0 || modes > kMaxModes) {
    throw std::invalid_argument("generate_random: bad mode count");
  }
  for (index_t d : options.dims) {
    if (d == 0) throw std::invalid_argument("generate_random: zero dim");
  }
  if (!options.zipf_exponents.empty() &&
      options.zipf_exponents.size() != modes) {
    throw std::invalid_argument("generate_random: exponent count mismatch");
  }

  Rng rng(options.seed);
  std::vector<ZipfSampler> samplers;
  std::vector<IndexScatter> scatters;
  samplers.reserve(modes);
  scatters.reserve(modes);
  for (std::size_t m = 0; m < modes; ++m) {
    const double s =
        options.zipf_exponents.empty() ? 0.0 : options.zipf_exponents[m];
    samplers.emplace_back(options.dims[m], s);
    scatters.emplace_back(options.dims[m], options.seed * 1315423911ULL + m);
  }

  CooTensor t(options.dims);
  t.reserve(options.nnz);
  std::array<index_t, kMaxModes> coords{};
  for (nnz_t n = 0; n < options.nnz; ++n) {
    for (std::size_t m = 0; m < modes; ++m) {
      const std::uint64_t ranked = samplers[m](rng);
      coords[m] = static_cast<index_t>(scatters[m](ranked));
    }
    const auto value = static_cast<value_t>(
        rng.next_double(options.value_lo, options.value_hi));
    t.push_back(std::span<const index_t>(coords.data(), modes), value);
  }

  if (options.coalesce_duplicates) {
    t.sort_by_mode(0);
    t.coalesce();
  }
  return t;
}

ScaledDataset generate_scaled(const DatasetProfile& profile, double scale,
                              index_t min_mode_keep) {
  if (scale < 1.0) {
    throw std::invalid_argument("generate_scaled: scale must be >= 1");
  }
  GeneratorOptions opt;
  opt.seed = profile.seed;
  opt.zipf_exponents = profile.zipf_exponents;
  opt.nnz = static_cast<nnz_t>(
      std::max<double>(1.0, static_cast<double>(profile.full_nnz) / scale));
  opt.dims.reserve(profile.num_modes());
  for (std::uint64_t d : profile.full_dims) {
    std::uint64_t scaled = d;
    if (d > min_mode_keep) {
      scaled = std::max<std::uint64_t>(
          min_mode_keep, static_cast<std::uint64_t>(
                             static_cast<double>(d) / scale));
    }
    opt.dims.push_back(static_cast<index_t>(scaled));
  }
  ScaledDataset out{generate_random(opt), profile, scale};
  return out;
}

}  // namespace amped
