// Sequential reference MTTKRP — the golden model every execution path
// (AMPED multi-GPU, each baseline) is verified against in the tests.
//
// For output mode d, computes  Y_d(i_d, r) += val(x) * prod_{w != d} Y_w(i_w, r)
// for every nonzero x, i.e. Equation (1) of the paper evaluated nonzero-
// wise. Accumulation is done in double precision so the reference is a
// numerically tighter target than any parallel order; comparisons use a
// tolerance proportional to the per-row accumulation depth.
#pragma once

#include "tensor/coo_tensor.hpp"
#include "tensor/dense_matrix.hpp"

namespace amped {

// Computes MTTKRP for one output mode into a fresh matrix.
DenseMatrix reference_mttkrp(const CooTensor& t, const FactorSet& factors,
                             std::size_t output_mode);

// Computes MTTKRP along all modes (the paper's performance unit, §5.1.6),
// returning one output matrix per mode. Factor matrices are treated as
// constant inputs for every mode (no ALS update in between) so results are
// order-independent and parallel implementations can be compared per mode.
std::vector<DenseMatrix> reference_mttkrp_all_modes(const CooTensor& t,
                                                    const FactorSet& factors);

// Relative comparison helper: max |a-b| scaled by max |reference| entry.
double relative_max_diff(const DenseMatrix& reference,
                         const DenseMatrix& candidate);

}  // namespace amped
