#include "tensor/tns_io.hpp"

#include <array>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace amped {

namespace {
constexpr char kMagic[8] = {'A', 'M', 'P', 'T', 'N', 'S', '0', '1'};

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error("tns_io: " + what);
}
}  // namespace

CooTensor read_tns(std::istream& in) {
  std::vector<index_t> declared_dims;
  std::vector<std::vector<index_t>> cols;  // raw 1-based columns
  std::vector<value_t> vals;
  std::size_t num_modes = 0;

  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (line[0] == '#') {
      // Optional "# dims: a b c" header.
      auto pos = line.find("dims:");
      if (pos != std::string::npos) {
        std::istringstream hs(line.substr(pos + 5));
        index_t d;
        while (hs >> d) declared_dims.push_back(d);
      }
      continue;
    }
    std::istringstream ls(line);
    std::vector<double> fields;
    double f;
    while (ls >> f) fields.push_back(f);
    if (fields.size() < 2) fail("line with fewer than 2 fields: " + line);
    if (num_modes == 0) {
      num_modes = fields.size() - 1;
      if (num_modes > kMaxModes) fail("too many modes");
      cols.resize(num_modes);
    } else if (fields.size() - 1 != num_modes) {
      fail("inconsistent mode count on line: " + line);
    }
    for (std::size_t m = 0; m < num_modes; ++m) {
      if (fields[m] < 1) fail("index < 1 (FROSTT is 1-based): " + line);
      cols[m].push_back(static_cast<index_t>(fields[m]));
    }
    vals.push_back(static_cast<value_t>(fields[num_modes]));
  }
  if (num_modes == 0) fail("empty tensor stream");

  std::vector<index_t> dims(num_modes, 0);
  for (std::size_t m = 0; m < num_modes; ++m) {
    for (index_t v : cols[m]) dims[m] = std::max(dims[m], v);  // 1-based max
  }
  if (!declared_dims.empty()) {
    if (declared_dims.size() != num_modes) fail("dims header mode mismatch");
    for (std::size_t m = 0; m < num_modes; ++m) {
      if (declared_dims[m] < dims[m]) fail("dims header smaller than data");
      dims[m] = declared_dims[m];
    }
  }

  CooTensor t(dims);
  t.reserve(vals.size());
  std::array<index_t, kMaxModes> coords{};
  for (std::size_t n = 0; n < vals.size(); ++n) {
    for (std::size_t m = 0; m < num_modes; ++m) coords[m] = cols[m][n] - 1;
    t.push_back(std::span<const index_t>(coords.data(), num_modes), vals[n]);
  }
  return t;
}

CooTensor read_tns_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) fail("cannot open " + path);
  return read_tns(in);
}

void write_tns(const CooTensor& t, std::ostream& out) {
  out << "# dims:";
  for (index_t d : t.dims()) out << ' ' << d;
  out << '\n';
  for (nnz_t n = 0; n < t.nnz(); ++n) {
    for (std::size_t m = 0; m < t.num_modes(); ++m) {
      out << (t.indices(m)[n] + 1) << ' ';
    }
    out << t.values()[n] << '\n';
  }
}

void write_tns_file(const CooTensor& t, const std::string& path) {
  std::ofstream out(path);
  if (!out) fail("cannot open " + path + " for writing");
  write_tns(t, out);
}

void write_binary_file(const CooTensor& t, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) fail("cannot open " + path + " for writing");
  out.write(kMagic, sizeof(kMagic));
  const std::uint64_t modes = t.num_modes();
  const std::uint64_t nnz = t.nnz();
  out.write(reinterpret_cast<const char*>(&modes), sizeof(modes));
  out.write(reinterpret_cast<const char*>(&nnz), sizeof(nnz));
  for (index_t d : t.dims()) {
    const std::uint64_t dim = d;
    out.write(reinterpret_cast<const char*>(&dim), sizeof(dim));
  }
  for (std::size_t m = 0; m < t.num_modes(); ++m) {
    out.write(reinterpret_cast<const char*>(t.indices(m).data()),
              static_cast<std::streamsize>(nnz * sizeof(index_t)));
  }
  out.write(reinterpret_cast<const char*>(t.values().data()),
            static_cast<std::streamsize>(nnz * sizeof(value_t)));
}

CooTensor read_binary_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) fail("cannot open " + path);
  char magic[8];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    fail("bad magic in " + path);
  }
  std::uint64_t modes = 0, nnz = 0;
  in.read(reinterpret_cast<char*>(&modes), sizeof(modes));
  in.read(reinterpret_cast<char*>(&nnz), sizeof(nnz));
  if (!in || modes == 0 || modes > kMaxModes) fail("bad header in " + path);
  std::vector<index_t> dims(modes);
  for (auto& d : dims) {
    std::uint64_t dim = 0;
    in.read(reinterpret_cast<char*>(&dim), sizeof(dim));
    d = static_cast<index_t>(dim);
  }
  CooTensor t(dims);
  t.reserve(nnz);
  // Read SoA arrays then bulk-append.
  std::vector<std::vector<index_t>> cols(modes, std::vector<index_t>(nnz));
  for (auto& c : cols) {
    in.read(reinterpret_cast<char*>(c.data()),
            static_cast<std::streamsize>(nnz * sizeof(index_t)));
  }
  std::vector<value_t> vals(nnz);
  in.read(reinterpret_cast<char*>(vals.data()),
          static_cast<std::streamsize>(nnz * sizeof(value_t)));
  if (!in) fail("truncated file " + path);
  std::array<index_t, kMaxModes> coords{};
  for (nnz_t n = 0; n < nnz; ++n) {
    for (std::size_t m = 0; m < modes; ++m) coords[m] = cols[m][n];
    t.push_back(std::span<const index_t>(coords.data(), modes), vals[n]);
  }
  return t;
}

}  // namespace amped
