#include "tensor/tns_io.hpp"

#include <array>
#include <cctype>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "io/snapshot.hpp"
#include "io/tns_ingest.hpp"

namespace amped {

namespace {
constexpr char kMagic[8] = {'A', 'M', 'P', 'T', 'N', 'S', '0', '1'};

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error("tns_io: " + what);
}

[[noreturn]] void fail_line(std::size_t line_no, const std::string& what) {
  fail(what + " (line " + std::to_string(line_no) + ")");
}

// Strips leading/trailing whitespace — including the '\r' a CRLF file
// leaves at the end of every getline() result.
void trim(std::string& s) {
  auto is_space = [](char c) {
    return std::isspace(static_cast<unsigned char>(c)) != 0;
  };
  std::size_t begin = 0;
  while (begin < s.size() && is_space(s[begin])) ++begin;
  std::size_t end = s.size();
  while (end > begin && is_space(s[end - 1])) --end;
  s = s.substr(begin, end - begin);
}
}  // namespace

CooTensor read_tns(std::istream& in) {
  std::vector<index_t> declared_dims;
  std::vector<std::vector<index_t>> cols;  // raw 1-based columns
  std::vector<value_t> vals;
  std::size_t num_modes = 0;

  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    trim(line);
    if (line.empty()) continue;
    if (line[0] == '#') {
      // Optional "# dims: a b c" header.
      auto pos = line.find("dims:");
      if (pos != std::string::npos) {
        std::istringstream hs(line.substr(pos + 5));
        index_t d;
        while (hs >> d) declared_dims.push_back(d);
      }
      continue;
    }
    std::istringstream ls(line);
    std::vector<double> fields;
    double f;
    while (ls >> f) fields.push_back(f);
    if (fields.size() < 2) {
      fail_line(line_no, "line with fewer than 2 fields: " + line);
    }
    if (num_modes == 0) {
      num_modes = fields.size() - 1;
      if (num_modes > kMaxModes) fail_line(line_no, "too many modes");
      cols.resize(num_modes);
    } else if (fields.size() - 1 != num_modes) {
      fail_line(line_no, "inconsistent mode count on line: " + line);
    }
    for (std::size_t m = 0; m < num_modes; ++m) {
      if (fields[m] < 1) {
        fail_line(line_no, "index < 1 (FROSTT is 1-based): " + line);
      }
      cols[m].push_back(static_cast<index_t>(fields[m]));
    }
    vals.push_back(static_cast<value_t>(fields[num_modes]));
  }
  if (num_modes == 0) fail("empty tensor stream");

  std::vector<index_t> dims(num_modes, 0);
  for (std::size_t m = 0; m < num_modes; ++m) {
    for (index_t v : cols[m]) dims[m] = std::max(dims[m], v);  // 1-based max
  }
  if (!declared_dims.empty()) {
    if (declared_dims.size() != num_modes) fail("dims header mode mismatch");
    for (std::size_t m = 0; m < num_modes; ++m) {
      if (declared_dims[m] < dims[m]) fail("dims header smaller than data");
      dims[m] = declared_dims[m];
    }
  }

  // Shift to 0-based in place and adopt the columns wholesale.
  for (auto& col : cols) {
    for (auto& v : col) --v;
  }
  return CooTensor::from_parts(std::move(dims), std::move(cols),
                               std::move(vals));
}

CooTensor read_tns_file(const std::string& path) {
  // The parallel ingest path produces element-for-element the same tensor
  // as read_tns on the same bytes (asserted in parallel_ingest_test). It
  // mmaps, so non-regular inputs (FIFOs, process substitution) keep the
  // streaming reader.
  std::error_code ec;
  if (!std::filesystem::is_regular_file(path, ec) || ec) {
    std::ifstream in(path);
    if (!in) fail("cannot open " + path);
    return read_tns(in);
  }
  return io::read_tns_file_parallel(path);
}

void write_tns(const CooTensor& t, std::ostream& out) {
  out << "# dims:";
  for (index_t d : t.dims()) out << ' ' << d;
  out << '\n';
  for (nnz_t n = 0; n < t.nnz(); ++n) {
    for (std::size_t m = 0; m < t.num_modes(); ++m) {
      out << (t.indices(m)[n] + 1) << ' ';
    }
    out << t.values()[n] << '\n';
  }
}

void write_tns_file(const CooTensor& t, const std::string& path) {
  std::ofstream out(path);
  if (!out) fail("cannot open " + path + " for writing");
  write_tns(t, out);
}

void write_binary_file(const CooTensor& t, const std::string& path) {
  // Crash-safe like the v2 writer: bytes land in a temp file that is
  // fsynced and atomically renamed over `path` on success.
  io::AtomicFileWriter out(path);
  out.write(kMagic, sizeof(kMagic));
  const std::uint64_t modes = t.num_modes();
  const std::uint64_t nnz = t.nnz();
  out.write(&modes, sizeof(modes));
  out.write(&nnz, sizeof(nnz));
  for (index_t d : t.dims()) {
    const std::uint64_t dim = d;
    out.write(&dim, sizeof(dim));
  }
  for (std::size_t m = 0; m < t.num_modes(); ++m) {
    out.write(t.indices(m).data(), nnz * sizeof(index_t));
  }
  out.write(t.values().data(), nnz * sizeof(value_t));
  out.commit();
}

CooTensor read_binary_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) fail("cannot open " + path);
  char magic[8];
  in.read(magic, sizeof(magic));
  if (in && std::memcmp(magic, io::kSnapshotMagicV2, sizeof(magic)) == 0) {
    in.close();
    return io::read_snapshot_file(path);  // forward compatibility
  }
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    fail("bad magic in " + path);
  }
  std::uint64_t modes = 0, nnz = 0;
  in.read(reinterpret_cast<char*>(&modes), sizeof(modes));
  in.read(reinterpret_cast<char*>(&nnz), sizeof(nnz));
  if (!in || modes == 0 || modes > kMaxModes) fail("bad header in " + path);

  // Validate the claimed element count against the actual file size
  // before allocating: a truncated or corrupt header must produce a clear
  // error, not a partially-filled tensor or a giant allocation. The
  // division bound runs first so `nnz * per_nnz` cannot wrap.
  const std::uint64_t header_bytes = sizeof(kMagic) +
                                     2 * sizeof(std::uint64_t) +
                                     modes * sizeof(std::uint64_t);
  const std::uint64_t per_nnz = modes * sizeof(index_t) + sizeof(value_t);
  std::error_code ec;
  const std::uint64_t actual = std::filesystem::file_size(path, ec);
  if (ec || actual < header_bytes ||
      (actual - header_bytes) / per_nnz < nnz ||
      actual - header_bytes != nnz * per_nnz) {
    fail("truncated file " + path + " (header promises " +
         std::to_string(header_bytes) + "+" + std::to_string(nnz) + "*" +
         std::to_string(per_nnz) + " bytes, file has " +
         std::to_string(actual) + ")");
  }

  std::vector<index_t> dims(modes);
  for (auto& d : dims) {
    std::uint64_t dim = 0;
    in.read(reinterpret_cast<char*>(&dim), sizeof(dim));
    d = static_cast<index_t>(dim);
  }
  std::vector<std::vector<index_t>> cols(modes,
                                         std::vector<index_t>(nnz));
  for (auto& c : cols) {
    in.read(reinterpret_cast<char*>(c.data()),
            static_cast<std::streamsize>(nnz * sizeof(index_t)));
  }
  std::vector<value_t> vals(nnz);
  in.read(reinterpret_cast<char*>(vals.data()),
          static_cast<std::streamsize>(nnz * sizeof(value_t)));
  if (!in) fail("truncated file " + path);
  return CooTensor::from_parts(std::move(dims), std::move(cols),
                               std::move(vals));
}

}  // namespace amped
