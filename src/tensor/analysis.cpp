#include "tensor/analysis.hpp"

#include <algorithm>
#include <sstream>
#include <unordered_set>

#include "util/stats.hpp"

namespace amped {

TensorAnalysis analyze(const CooTensor& t) {
  TensorAnalysis out;
  out.nnz = t.nnz();
  double cells = 1.0;
  for (index_t d : t.dims()) cells *= static_cast<double>(d);
  out.density = cells > 0 ? static_cast<double>(t.nnz()) / cells : 0.0;

  out.modes.reserve(t.num_modes());
  for (std::size_t m = 0; m < t.num_modes(); ++m) {
    ModeAnalysis ma;
    ma.mode = m;
    ma.dim = t.dim(m);
    std::vector<double> counts(ma.dim, 0.0);
    for (index_t i : t.indices(m)) counts[i] += 1.0;
    for (double c : counts) {
      if (c > 0) ++ma.used_indices;
      ma.max_multiplicity =
          std::max<nnz_t>(ma.max_multiplicity, static_cast<nnz_t>(c));
    }
    ma.mean_multiplicity =
        ma.used_indices > 0
            ? static_cast<double>(t.nnz()) /
                  static_cast<double>(ma.used_indices)
            : 0.0;
    ma.gini = gini(counts);
    ma.hottest_share =
        t.nnz() > 0 ? static_cast<double>(ma.max_multiplicity) /
                          static_cast<double>(t.nnz())
                    : 0.0;
    out.modes.push_back(ma);
  }
  return out;
}

nnz_t count_fibers(const CooTensor& t, std::size_t mode_a,
                   std::size_t mode_b) {
  std::unordered_set<std::uint64_t> pairs;
  pairs.reserve(static_cast<std::size_t>(t.nnz()));
  const auto a = t.indices(mode_a);
  const auto b = t.indices(mode_b);
  for (nnz_t n = 0; n < t.nnz(); ++n) {
    pairs.insert((static_cast<std::uint64_t>(a[n]) << 32) | b[n]);
  }
  return pairs.size();
}

std::string TensorAnalysis::to_string() const {
  std::ostringstream os;
  os.precision(3);
  os << nnz << " nnz, density " << density << '\n';
  for (const auto& m : modes) {
    os << "  mode " << m.mode << ": dim " << m.dim << ", used "
       << m.used_indices << ", mean dup " << m.mean_multiplicity
       << ", hottest " << 100.0 * m.hottest_share << "% of nnz, gini "
       << m.gini << '\n';
  }
  return os.str();
}

}  // namespace amped
