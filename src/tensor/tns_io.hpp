// FROSTT `.tns` text I/O plus a compact binary snapshot format.
//
// The text format is one nonzero per line: N 1-based indices followed by
// the value, `#` comments allowed — exactly what frostt.io distributes, so
// users can feed real datasets (Amazon/Patents/Reddit) to this library
// unchanged. The binary format (`.amptns`) exists because billion-scale
// text parsing is slow; it is a versioned little-endian dump of the SoA
// arrays.
#pragma once

#include <iosfwd>
#include <string>

#include "tensor/coo_tensor.hpp"

namespace amped {

// Parses a FROSTT text tensor from a stream. Mode sizes are taken as the
// max index seen per mode unless a `# dims: a b c` header is present.
// Tolerates CRLF line endings and leading/trailing whitespace. Throws
// std::runtime_error on malformed input, naming the 1-based line number.
CooTensor read_tns(std::istream& in);
// File variant; routes through the parallel ingest in io/tns_ingest.hpp
// (chunked over the thread pool, same result element for element).
CooTensor read_tns_file(const std::string& path);

// Writes FROSTT text (1-based indices, `# dims:` header first).
void write_tns(const CooTensor& t, std::ostream& out);
void write_tns_file(const CooTensor& t, const std::string& path);

// v1 binary snapshot (magic "AMPTNS01"). The writer is crash-safe (temp
// file + atomic rename); the reader rejects truncated files and
// transparently forwards v2 ("AMPTNS02") files to io/snapshot.hpp, where
// the current checksummed, mmap-able format lives.
void write_binary_file(const CooTensor& t, const std::string& path);
CooTensor read_binary_file(const std::string& path);

}  // namespace amped
