// Synthetic sparse tensor generation.
//
// Two entry points: `generate_random` builds an arbitrary tensor from
// explicit dims / nnz / skew (used throughout the tests), and
// `generate_scaled` materialises a Table 3 DatasetProfile at a reduced
// scale (used by the benchmarks). Generation is deterministic in the seed.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/coo_tensor.hpp"
#include "tensor/profiles.hpp"
#include "util/random.hpp"

namespace amped {

struct GeneratorOptions {
  std::vector<index_t> dims;
  nnz_t nnz = 0;
  std::vector<double> zipf_exponents;  // empty == all uniform
  std::uint64_t seed = 1;
  bool coalesce_duplicates = false;  // merge repeated coordinates
  value_t value_lo = 0.5f;           // value range; default keeps values
  value_t value_hi = 1.5f;           //   positive and O(1) for stable fits
};

// Draws `nnz` coordinates mode-independently (mode m ~ Zipf(s_m) over
// [0, dims[m])), with a deterministic per-mode shuffle of the index space
// so hot indices are scattered rather than clustered at 0 — real datasets'
// popular rows are not contiguous, and contiguous hot rows would make the
// contiguous-range sharding look artificially bad (hot shard) or good.
CooTensor generate_random(const GeneratorOptions& options);

// Materialises `profile` at 1/scale of its full nonzero count. Mode sizes
// > `min_mode_keep` shrink by the same factor (preserving nnz/dim ratios
// and, critically, the factor-matrix-bytes : nonzero-bytes ratio that the
// all-gather cost depends on), clamped below at `min_mode_keep`; smaller
// modes keep their full size. scale == 1 reproduces full size (do not
// attempt for billion-scale profiles on this machine).
struct ScaledDataset {
  CooTensor tensor;
  DatasetProfile profile;  // original full-scale profile
  double scale = 1.0;      // nnz reduction factor actually applied
};
ScaledDataset generate_scaled(const DatasetProfile& profile, double scale,
                              index_t min_mode_keep = 64);

}  // namespace amped
