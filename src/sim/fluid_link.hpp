// Fluid host-link contention model (processor sharing over the host
// memory system).
//
// Host links are physically per-GPU but share the host's aggregate
// bandwidth. The static model (PlatformConfig::host_aggregate_bandwidth /
// num_gpus) prices every transfer as if all M GPUs always stream — which
// is exactly wrong when overlap scheduling is working and only k < M
// lanes stream over an interval. The fluid model divides bandwidth by the
// number of *concurrently active* flows: over any interval with k flows
// in flight, each progresses at
//
//     rate(k) = min(lane_bandwidth, aggregate_bandwidth / k)
//
// and a transfer's duration is the piecewise-constant integral of that
// rate over its lifetime. With one lane streaming the whole time this
// reduces to the uncontended link rate (the static share at M = 1); with
// all M lanes saturated it reduces to the static per-GPU share, and total
// bytes over total time equals the aggregate bandwidth (conservation) —
// both properties pinned in tests/contention_model_test.cpp. The formula
// and a worked 2-GPU example live in docs/SCHEDULING.md.
//
// Admissions must be presented in nondecreasing time order (admit clamps
// to the link's current time); completions are recomputed lazily so a
// later admission correctly slows flows still in flight.
#pragma once

#include <cstdint>
#include <vector>

namespace amped::sim {

class FluidHostLink {
 public:
  FluidHostLink(double lane_bandwidth, double aggregate_bandwidth)
      : lane_bw_(lane_bandwidth), aggregate_bw_(aggregate_bandwidth) {}

  // Per-flow rate when `active` flows share the link.
  double rate(std::size_t active) const;

  // Admits a flow of `bytes` at time max(t, now()) and returns its id.
  // Integrates all in-flight flows forward to the admission time first.
  std::size_t admit(double t, std::uint64_t bytes);

  // Projected completion time of flow `id` given every admission made so
  // far (exact once no further admission overlaps the flow's lifetime).
  double completion(std::size_t id) const;

  // Time the link state has been integrated to (latest admission).
  double now() const { return now_; }
  std::size_t active_flows() const { return active_.size(); }

 private:
  struct Flow {
    double remaining = 0.0;  // bytes left at time now_
    bool done = false;
    double finish = 0.0;  // valid when done
  };

  void advance_to(double t);

  double lane_bw_;
  double aggregate_bw_;
  double now_ = 0.0;
  std::vector<Flow> flows_;
  std::vector<std::size_t> active_;  // ids of in-flight flows
};

}  // namespace amped::sim
