// Simulated compute devices.
//
// A SimDevice is a clock plus a memory meter plus a Timeline: algorithm
// code performs the real arithmetic on host arrays and *charges* the
// device for it through `advance`, while `alloc`/`free` track global-
// memory occupancy so formats that exceed capacity fail exactly like the
// paper's out-of-memory baselines do. DeviceSpec presets encode the
// evaluation platform (§5.1.1): NVIDIA RTX 6000 Ada GPUs and a 2-socket
// AMD EPYC 9654 host.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

#include "sim/timeline.hpp"
#include "sim/trace.hpp"

namespace amped::sim {

struct DeviceSpec {
  std::string name;
  int sm_count = 1;                 // streaming multiprocessors
  double flops = 1e12;              // peak fp32 FLOP/s (whole device)
  double mem_bandwidth = 1e11;      // global-memory bytes/s (whole device)
  double atomic_ns = 0.0;           // extra ns per fully-serialised scalar atomic
  double kernel_launch_s = 0.0;     // fixed cost per grid launch
  std::uint64_t mem_bytes = 1ull << 34;  // global memory capacity
  std::uint64_t l2_bytes = 0;       // last-level cache (0 = no cache model)
};

// NVIDIA RTX 6000 Ada Generation: 142 SMs, 48 GB GDDR6 (§5.1.1). FLOP and
// bandwidth figures are the public spec sheet numbers derated to the
// sustained fraction sparse kernels typically reach.
DeviceSpec rtx6000_ada_spec();

// Host CPU as a device (used for preprocessing and the equal-nnz merge):
// 2x AMD EPYC 9654. Deliberately ~an order of magnitude below a GPU in
// both throughput terms, as the paper argues when it avoids host compute.
DeviceSpec epyc_host_spec();

// Thrown when a simulated allocation exceeds device capacity; baseline
// runners catch it and report the paper's "runtime error" outcome.
class OutOfDeviceMemory : public std::runtime_error {
 public:
  OutOfDeviceMemory(const std::string& device, std::uint64_t requested,
                    std::uint64_t available);
  std::uint64_t requested() const { return requested_; }
  std::uint64_t available() const { return available_; }

 private:
  std::uint64_t requested_;
  std::uint64_t available_;
};

class SimDevice {
 public:
  SimDevice(DeviceSpec spec, int id) : spec_(std::move(spec)), id_(id) {}

  const DeviceSpec& spec() const { return spec_; }
  int id() const { return id_; }

  double clock() const { return clock_; }
  Timeline& timeline() { return timeline_; }
  const Timeline& timeline() const { return timeline_; }

  // Advance this device's clock by `seconds`, attributed to `phase`.
  // `label` is recorded when a trace is attached (empty = phase name).
  void advance(Phase phase, double seconds, std::string label = {});

  // Move the clock forward to `t` (if later), attributing the stall to
  // kSync. Used by barriers.
  void wait_until(double t);

  // Optional event tracing; nullptr detaches. Not owned.
  void set_trace(TraceLog* trace) { trace_ = trace; }
  bool tracing() const { return trace_ != nullptr; }

  // Simulated allocation tracking.
  void alloc(std::uint64_t bytes);
  void free(std::uint64_t bytes);
  std::uint64_t allocated() const { return allocated_; }
  std::uint64_t capacity() const { return spec_.mem_bytes; }

  void reset();

 private:
  DeviceSpec spec_;
  int id_;
  double clock_ = 0.0;
  std::uint64_t allocated_ = 0;
  Timeline timeline_;
  TraceLog* trace_ = nullptr;
};

}  // namespace amped::sim
