// Roofline cost model for the elementwise computation (EC) kernel.
//
// Per nonzero, the EC of §3.0.1 performs (N-1)*R multiplies and R atomic
// FMAs, reads the COO element and N-1 factor rows, and read-modify-writes
// one output row. MTTKRP is memory-bound on every GPU the paper considers,
// so a threadblock's time is max(flop time, byte time) on its SM's share
// of device throughput, plus an atomic-contention term driven by how many
// nonzeros in the block update the *same* output row (popular Twitch
// streamers, §5.5). Formats differ in how efficiently they stream
// coordinates and reuse factor rows; those effects enter through
// KernelProfile, which each execution format (AMPED shards, BLCO, CSF,
// HiCOO, FLYCOO) fills in with its own characteristics.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "sim/device.hpp"
#include "tensor/types.hpp"

namespace amped::sim {

// Per-format kernel characteristics.
struct KernelProfile {
  // Coordinate storage bytes read per nonzero (COO: N*4+4; BLCO: 12; ...).
  double coord_bytes_per_nnz = 16.0;
  // Multiplier on factor-row read bytes: < 1 models fiber-level reuse
  // (CSF reuses the parent row across a fiber; FLYCOO's remap sorts for
  // locality), > 1 models poor locality.
  double factor_read_efficiency = 1.0;
  // Multiplier on the output read-modify-write bytes. Formats that
  // accumulate a fiber in registers before one write (CSF) set < 1.
  double output_write_efficiency = 1.0;
  // Extra arithmetic per element as a multiplier (e.g. BLCO's index
  // de-linearisation ALU work).
  double flop_overhead = 1.0;
  // Scales the atomic-contention penalty; conflict-free schedules
  // (FLYCOO's remapping) set this near 0.
  double atomic_scale = 1.0;
};

// Measured properties of one threadblock's worth of work, gathered by the
// executor while it performs the real arithmetic.
struct EcBlockStats {
  nnz_t nnz = 0;               // nonzeros processed
  nnz_t output_runs = 0;       // distinct output-index runs in the block
  nnz_t max_run = 0;           // longest same-output-index run
  nnz_t max_multiplicity = 0;  // highest count of any single output index
  std::size_t modes = 3;
  std::size_t rank = 32;
  std::size_t block_width = 32;  // P: nonzeros loaded in parallel (§4.7)
};

// Threads an R x P threadblock keeps resident relative to what an SM needs
// to hide latency; undersized blocks run proportionally slower (Fig. A4
// ablation). 1024 resident threads saturate an Ada SM for this kernel.
double threadblock_utilization(std::size_t rank, std::size_t block_width);

// Greedy column-tile decomposition the runtime kernel-specialisation layer
// (core/kernel_cache) executes an arbitrary rank with: 64/32/16/8-wide
// passes plus one < 8 remainder. Shared between execution and pricing so
// ec_block_seconds models exactly the passes that run: each pass re-streams
// the coordinates and runs at its own width's occupancy. Menu ranks
// (8/16/32/64 and anything < 8) decompose to a single full-width tile, for
// which the per-tile sum reduces to the untiled roofline exactly.
std::vector<std::size_t> ec_tile_widths(std::size_t rank);

class CostModel {
 public:
  explicit CostModel(const DeviceSpec& spec) : spec_(spec) {}

  // Simulated seconds one SM spends executing this block. Output-row
  // read-modify-writes are charged once per output *run*, not per nonzero:
  // a threadblock column accumulates a sorted run in registers before one
  // write, so output-sorted layouts (AMPED shards, FLYCOO) pay almost
  // nothing while scattered layouts pay per element (runs ~ nnz).
  double ec_block_seconds(const EcBlockStats& stats,
                          const KernelProfile& profile) const;

  // Bytes the EC kernel moves per nonzero under `profile`, assuming
  // scattered output (runs == nnz); a planning/documentation helper.
  double bytes_per_nnz(std::size_t modes, std::size_t rank,
                       const KernelProfile& profile) const;

  // FLOPs per nonzero under `profile`.
  double flops_per_nnz(std::size_t modes, std::size_t rank,
                       const KernelProfile& profile) const;

  const DeviceSpec& spec() const { return spec_; }

 private:
  DeviceSpec spec_;
};

// Fraction of peak DRAM traffic a factor-row gather costs when the factor
// matrix fits in the device's last-level cache.
inline constexpr double kCachedReadFraction = 0.08;

// Register-accumulation discount for the contiguous part of a hot run in
// the atomic-contention term (sorted kernels flush once per run).
inline constexpr double kSortedAtomicDiscount = 0.05;

// Average factor-read efficiency for `output_mode`: input-mode factor
// matrices that fit in `l2_bytes` (at the *full-scale* dims) are charged
// kCachedReadFraction of their traffic. `full_dims` are the unscaled mode
// sizes; `locality` is the format's own reuse multiplier.
double factor_read_efficiency(std::span<const std::uint64_t> full_dims,
                              std::size_t rank, std::size_t output_mode,
                              std::uint64_t l2_bytes, double locality = 1.0);

}  // namespace amped::sim
