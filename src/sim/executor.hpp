// Grid execution scheduling: threadblocks onto streaming multiprocessors.
//
// The CUDA runtime dispatches a grid's threadblocks to SMs as they go idle
// (§4.2: "when a GPU SM finishes executing all the computations in a
// threadblock, a new threadblock from the same Grid is assigned to the
// SM"). That is FIFO list scheduling; `grid_makespan` reproduces it with a
// min-heap of SM finish times. AMPED's inter-shard partitions are equal-
// sized by construction, so FIFO is near-optimal for them; the baselines'
// uneven fibers/blocks are where the makespan visibly exceeds the mean.
#pragma once

#include <span>

namespace amped::sim {

// Simulated seconds from grid launch until the last threadblock retires,
// given each block's execution time and the device's SM count. Blocks are
// dispatched in order to the earliest-available SM.
double grid_makespan(std::span<const double> block_seconds, int sm_count);

// Sum of per-SM busy times divided by (makespan * sm_count): the grid's
// SM occupancy in [0, 1]. Used by tests and the imbalance analyses.
double grid_occupancy(std::span<const double> block_seconds, int sm_count);

}  // namespace amped::sim
