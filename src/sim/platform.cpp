#include "sim/platform.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace amped::sim {

namespace {
DeviceSpec scaled_spec(DeviceSpec spec, double scale) {
  // Fixed per-launch costs shrink with the workload (see PlatformConfig
  // docs); throughputs are physical rates and stay. Capacity also stays:
  // out-of-memory feasibility is decided analytically at full scale by
  // formats/memory_model.hpp, because scaled-down structures are not
  // byte-proportional (mode-size floors, block occupancy), so a scaled
  // capacity check would misfire.
  spec.kernel_launch_s /= scale;
  return spec;
}
}  // namespace

Platform::Platform(PlatformConfig config)
    : config_(std::move(config)),
      host_cost_(scaled_spec(config_.host, config_.workload_scale)) {
  assert(config_.num_gpus >= 1);
  assert(config_.workload_scale >= 1.0);
  gpus_.reserve(static_cast<std::size_t>(config_.num_gpus));
  gpu_costs_.reserve(static_cast<std::size_t>(config_.num_gpus));
  for (int i = 0; i < config_.num_gpus; ++i) {
    const std::size_t idx = static_cast<std::size_t>(i);
    const bool overridden = idx < config_.gpu_overrides.size();
    const DeviceSpec& base =
        overridden ? config_.gpu_overrides[idx] : config_.gpu;
    if (overridden) heterogeneous_ = true;
    gpu_costs_.emplace_back(scaled_spec(base, config_.workload_scale));
    gpus_.emplace_back(gpu_costs_.back().spec(), i);
  }
  host_ = std::make_unique<SimDevice>(host_cost_.spec(), -1);
}

DeviceSpec rtx_a4000_spec() {
  return DeviceSpec{
      .name = "RTXA4000",
      .sm_count = 48,
      .flops = 12e12,
      .mem_bandwidth = 170e9,  // 448 GB/s GDDR6 derated like the Ada spec
      .atomic_ns = 1.5,
      .kernel_launch_s = 8e-6,
      .mem_bytes = 16ull << 30,
      .l2_bytes = 4ull << 20,
  };
}

namespace {
LinkSpec contended_host_link(const PlatformConfig& cfg) {
  LinkSpec link = cfg.host_link;
  if (cfg.num_gpus > 1 && cfg.host_aggregate_bandwidth > 0.0) {
    link.bandwidth = std::min(
        link.bandwidth, cfg.host_aggregate_bandwidth / cfg.num_gpus);
  }
  return link;
}
}  // namespace

double Platform::h2d_seconds(std::uint64_t bytes) const {
  return transfer_seconds(contended_host_link(config_), bytes,
                          fixed_cost_divisor());
}

double Platform::h2d_seconds(std::uint64_t bytes,
                             int streaming_lanes) const {
  if (streaming_lanes <= 0) return h2d_seconds(bytes);
  LinkSpec link = config_.host_link;
  const int lanes = std::min(streaming_lanes, config_.num_gpus);
  if (lanes > 1 && config_.host_aggregate_bandwidth > 0.0) {
    link.bandwidth =
        std::min(link.bandwidth,
                 config_.host_aggregate_bandwidth / static_cast<double>(lanes));
  }
  return transfer_seconds(link, bytes, fixed_cost_divisor());
}

double Platform::d2h_seconds(std::uint64_t bytes) const {
  return transfer_seconds(contended_host_link(config_), bytes,
                          fixed_cost_divisor());
}

double Platform::p2p_seconds(std::uint64_t bytes) const {
  return transfer_seconds(config_.p2p_link, bytes, fixed_cost_divisor());
}

double Platform::kernel_launch_seconds() const {
  return gpu_costs_[0].spec().kernel_launch_s;
}

void Platform::h2d(int gpu_id, std::uint64_t bytes) {
  gpu(gpu_id).advance(Phase::kHostToDevice, h2d_seconds(bytes));
}

void Platform::d2h(int gpu_id, std::uint64_t bytes) {
  gpu(gpu_id).advance(Phase::kDeviceToHost, d2h_seconds(bytes));
}

void Platform::p2p(int from, int to, std::uint64_t bytes) {
  assert(from != to);
  const double start = std::max(gpu(from).clock(), gpu(to).clock());
  gpu(from).wait_until(start);
  gpu(to).wait_until(start);
  const double t = p2p_seconds(bytes);
  gpu(from).advance(Phase::kPeerToPeer, t);
  gpu(to).advance(Phase::kPeerToPeer, t);
}

void Platform::barrier() {
  double latest = 0.0;
  for (const auto& g : gpus_) latest = std::max(latest, g.clock());
  for (auto& g : gpus_) g.wait_until(latest);
}

double Platform::makespan() const {
  double latest = host_->clock();
  for (const auto& g : gpus_) latest = std::max(latest, g.clock());
  return latest;
}

Timeline Platform::aggregate_timeline() const {
  Timeline t;
  for (const auto& g : gpus_) t += g.timeline();
  t += host_->timeline();
  return t;
}

void Platform::reset() {
  for (auto& g : gpus_) g.reset();
  host_->reset();
}

void Platform::attach_trace(TraceLog* trace) {
  trace_ = trace;
  for (auto& g : gpus_) g.set_trace(trace);
  host_->set_trace(trace);
}

Platform make_default_platform(int num_gpus, double workload_scale) {
  PlatformConfig cfg;
  cfg.num_gpus = num_gpus;
  cfg.workload_scale = workload_scale;
  return Platform(cfg);
}

}  // namespace amped::sim
