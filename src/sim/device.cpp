#include "sim/device.hpp"

#include <cassert>
#include <sstream>

namespace amped::sim {

DeviceSpec rtx6000_ada_spec() {
  return DeviceSpec{
      .name = "RTX6000Ada",
      .sm_count = 142,
      // 91 TFLOP/s peak fp32; sparse gather/scatter kernels sustain far
      // below peak — the cost model is bandwidth-bound anyway.
      .flops = 45e12,
      // 960 GB/s GDDR6 peak, derated to the sustained fraction the
      // irregular gather/scatter pattern of MTTKRP reaches.
      .mem_bandwidth = 360e9,
      .atomic_ns = 1.5,  // extra ns per serialised scalar atomic update
      .kernel_launch_s = 8e-6,
      .mem_bytes = 48ull << 30,
      .l2_bytes = 96ull << 20,  // Ada's 96 MB L2
  };
}

DeviceSpec epyc_host_spec() {
  return DeviceSpec{
      .name = "EPYC9654x2",
      .sm_count = 192,  // physical cores
      .flops = 6e12,
      .mem_bandwidth = 90e9,  // sustained across 2 sockets, irregular access
      .atomic_ns = 0.0,
      .kernel_launch_s = 0.0,
      .mem_bytes = 1536ull << 30,  // 1.5 TB (§5.1.1)
      .l2_bytes = 384ull << 20,    // aggregate L3 of 2x EPYC 9654
  };
}

OutOfDeviceMemory::OutOfDeviceMemory(const std::string& device,
                                     std::uint64_t requested,
                                     std::uint64_t available)
    : std::runtime_error([&] {
        std::ostringstream os;
        os << device << ": simulated allocation of " << requested
           << " bytes exceeds free capacity " << available;
        return os.str();
      }()),
      requested_(requested),
      available_(available) {}

void SimDevice::advance(Phase phase, double seconds, std::string label) {
  assert(seconds >= 0.0);
  if (trace_ != nullptr && seconds > 0.0) {
    trace_->record(TraceEvent{.device = id_,
                              .phase = phase,
                              .start_s = clock_,
                              .duration_s = seconds,
                              .label = std::move(label)});
  }
  clock_ += seconds;
  timeline_.add(phase, seconds);
}

void SimDevice::wait_until(double t) {
  if (t > clock_) {
    if (trace_ != nullptr) {
      trace_->record(TraceEvent{.device = id_,
                                .phase = Phase::kSync,
                                .start_s = clock_,
                                .duration_s = t - clock_,
                                .label = {}});
    }
    timeline_.add(Phase::kSync, t - clock_);
    clock_ = t;
  }
}

void SimDevice::alloc(std::uint64_t bytes) {
  const std::uint64_t free_bytes = capacity() - allocated_;
  if (bytes > free_bytes) {
    throw OutOfDeviceMemory(spec_.name + "#" + std::to_string(id_), bytes,
                            free_bytes);
  }
  allocated_ += bytes;
}

void SimDevice::free(std::uint64_t bytes) {
  assert(bytes <= allocated_);
  allocated_ -= bytes;
}

void SimDevice::reset() {
  clock_ = 0.0;
  allocated_ = 0;
  timeline_.reset();
}

}  // namespace amped::sim
