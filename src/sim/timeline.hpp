// Per-device simulated-time accounting.
//
// Every simulated device keeps a Timeline that buckets elapsed simulated
// seconds into phases (compute, host<->device transfer, peer-to-peer
// transfer, synchronisation stall, host-side compute). The paper's Fig. 7
// execution-time breakdown is read directly off these buckets.
#pragma once

#include <array>
#include <cstddef>
#include <string>

namespace amped::sim {

enum class Phase : int {
  kCompute = 0,      // elementwise-computation kernels on a GPU
  kHostToDevice,     // tensor shards / partitions streamed over PCIe
  kDeviceToHost,     // partial results copied back to the host
  kPeerToPeer,       // GPU-GPU all-gather traffic
  kSync,             // stall at inter-GPU barriers (idle waiting)
  kHostCompute,      // work executed on the host CPU (merges, preprocessing)
  kCount
};

constexpr std::size_t kNumPhases = static_cast<std::size_t>(Phase::kCount);

const char* phase_name(Phase p);

class Timeline {
 public:
  void add(Phase p, double seconds) {
    totals_[static_cast<std::size_t>(p)] += seconds;
  }

  double total(Phase p) const {
    return totals_[static_cast<std::size_t>(p)];
  }

  // Sum over all phases.
  double sum() const {
    double s = 0.0;
    for (double t : totals_) s += t;
    return s;
  }

  // Communication = H2D + D2H + P2P (the paper's "communication time").
  double communication() const {
    return total(Phase::kHostToDevice) + total(Phase::kDeviceToHost) +
           total(Phase::kPeerToPeer);
  }

  void reset() { totals_.fill(0.0); }

  Timeline& operator+=(const Timeline& other) {
    for (std::size_t i = 0; i < kNumPhases; ++i) totals_[i] += other.totals_[i];
    return *this;
  }

 private:
  std::array<double, kNumPhases> totals_{};
};

}  // namespace amped::sim
