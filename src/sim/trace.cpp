#include "sim/trace.hpp"

#include <fstream>
#include <ostream>
#include <stdexcept>

namespace amped::sim {

void TraceLog::record(TraceEvent event) {
  if (events_.size() >= capacity_) {
    ++dropped_;
    return;
  }
  events_.push_back(std::move(event));
}

void TraceLog::clear() {
  events_.clear();
  dropped_ = 0;
}

double TraceLog::total(Phase phase, int device) const {
  double acc = 0.0;
  for (const auto& e : events_) {
    if (e.phase != phase) continue;
    if (device != -2 && e.device != device) continue;
    acc += e.duration_s;
  }
  return acc;
}

void TraceLog::write_chrome_json(std::ostream& out) const {
  out << "{\"traceEvents\":[";
  bool first = true;
  for (const auto& e : events_) {
    if (!first) out << ',';
    first = false;
    // Complete event ("ph":"X"): ts/dur in microseconds.
    out << "{\"name\":\""
        << (e.label.empty() ? phase_name(e.phase) : e.label)
        << "\",\"cat\":\"" << phase_name(e.phase)
        << "\",\"ph\":\"X\",\"pid\":0,\"tid\":" << e.device
        << ",\"ts\":" << e.start_s * 1e6 << ",\"dur\":" << e.duration_s * 1e6
        << "}";
  }
  out << "]}";
}

void TraceLog::write_chrome_json_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("trace: cannot open " + path + " for writing");
  }
  write_chrome_json(out);
}

}  // namespace amped::sim
