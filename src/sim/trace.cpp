#include "sim/trace.hpp"

#include <algorithm>
#include <fstream>
#include <ostream>
#include <stdexcept>
#include <utility>

#include "util/json.hpp"
#include "util/logging.hpp"

namespace amped::sim {

namespace {

// Row id for a (device, engine) pair. Devices get two adjacent rows
// (compute + copy engine) so a pipelined lane renders as a pair; host
// rows live in a high sentinel range far above any plausible device.
int chrome_tid(int device, int engine) {
  if (device >= 0) return device * 2 + engine;
  return 1000000 + engine;
}

std::string row_name(int device, int engine) {
  if (device < 0) return engine == 0 ? "host" : "host copy";
  std::string name = "gpu" + std::to_string(device);
  if (engine != 0) name += " copy";
  return name;
}

}  // namespace

void TraceLog::record(TraceEvent event) {
  std::lock_guard lock(mutex_);
  if (events_.size() >= capacity_) {
    ++dropped_;
    return;
  }
  events_.push_back(std::move(event));
}

void TraceLog::clear() {
  std::lock_guard lock(mutex_);
  events_.clear();
  dropped_ = 0;
}

double TraceLog::total(Phase phase, int device) const {
  std::lock_guard lock(mutex_);
  double acc = 0.0;
  for (const auto& e : events_) {
    if (e.phase != phase) continue;
    if (device != -2 && e.device != device) continue;
    acc += e.duration_s;
  }
  return acc;
}

void TraceLog::write_chrome_json(std::ostream& out) const {
  std::lock_guard lock(mutex_);
  json::Writer w(out);
  w.begin_object();
  w.key("traceEvents").begin_array();
  // One thread_name metadata event per (device, engine) row present, so
  // Perfetto labels the rows identically for sim and host traces.
  std::vector<std::pair<int, int>> rows;
  for (const auto& e : events_) {
    rows.emplace_back(e.device, e.engine);
  }
  std::sort(rows.begin(), rows.end());
  rows.erase(std::unique(rows.begin(), rows.end()), rows.end());
  for (const auto& [device, engine] : rows) {
    w.begin_object();
    w.member("name", "thread_name");
    w.member("ph", "M");
    w.member("pid", 0);
    w.member("tid", chrome_tid(device, engine));
    w.key("args").begin_object();
    w.member("name", row_name(device, engine));
    w.end_object();
    w.end_object();
  }
  for (const auto& e : events_) {
    // Complete event ("ph":"X"): ts/dur in microseconds.
    w.begin_object();
    w.member("name", e.label.empty()
                         ? std::string_view(phase_name(e.phase))
                         : std::string_view(e.label));
    w.member("cat", phase_name(e.phase));
    w.member("ph", "X");
    w.member("pid", 0);
    w.member("tid", chrome_tid(e.device, e.engine));
    w.member("ts", e.start_s * 1e6);
    w.member("dur", e.duration_s * 1e6);
    w.end_object();
  }
  w.end_array();
  w.key("otherData").begin_object();
  w.member("dropped_events", static_cast<std::uint64_t>(dropped_));
  w.end_object();
  w.end_object();
}

void TraceLog::write_chrome_json_file(const std::string& path) const {
  if (dropped() > 0) {
    AMPED_LOG_WARN << "trace: " << dropped()
                   << " event(s) dropped at capacity; timeline in " << path
                   << " is truncated";
  }
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("trace: cannot open " + path + " for writing");
  }
  write_chrome_json(out);
}

}  // namespace amped::sim
