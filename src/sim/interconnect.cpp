#include "sim/interconnect.hpp"

#include <cassert>

namespace amped::sim {

LinkSpec pcie_host_link() {
  return LinkSpec{
      .bandwidth = 50e9,  // sustained DMA on the 64 GB/s links of §5.1.1
      .latency_s = 12e-6,
  };
}

LinkSpec pcie_p2p_link() {
  return LinkSpec{
      .bandwidth = 3.0e9,  // cross-root-complex PCIe P2P, no NVLink
      .latency_s = 30e-6,
  };
}

double transfer_seconds(const LinkSpec& link, std::uint64_t bytes,
                        double fixed_cost_divisor) {
  assert(fixed_cost_divisor > 0.0);
  return link.latency_s / fixed_cost_divisor +
         static_cast<double>(bytes) / link.bandwidth;
}

}  // namespace amped::sim
