#include "sim/fluid_link.hpp"

#include <algorithm>
#include <cassert>
#include <limits>

namespace amped::sim {

double FluidHostLink::rate(std::size_t active) const {
  if (active <= 1) return std::min(lane_bw_, aggregate_bw_);
  return std::min(lane_bw_, aggregate_bw_ / static_cast<double>(active));
}

void FluidHostLink::advance_to(double t) {
  while (!active_.empty() && now_ < t) {
    const double r = rate(active_.size());
    double min_rem = std::numeric_limits<double>::infinity();
    for (std::size_t id : active_) {
      min_rem = std::min(min_rem, flows_[id].remaining);
    }
    const double next_finish = now_ + min_rem / r;
    // Drain by the exact minimum when a flow completes inside the window,
    // so the completing flow retires with remaining == 0 regardless of
    // rounding in the time conversion.
    const bool completes = next_finish <= t;
    const double stop = completes ? next_finish : t;
    const double drained = completes ? min_rem : (t - now_) * r;
    for (std::size_t i = 0; i < active_.size();) {
      Flow& f = flows_[active_[i]];
      f.remaining = std::max(0.0, f.remaining - drained);
      if (completes && f.remaining <= 0.0) {
        f.done = true;
        f.finish = next_finish;
        active_[i] = active_.back();
        active_.pop_back();
      } else {
        ++i;
      }
    }
    now_ = stop;
  }
  now_ = std::max(now_, t);
}

std::size_t FluidHostLink::admit(double t, std::uint64_t bytes) {
  advance_to(std::max(t, now_));
  Flow f;
  f.remaining = static_cast<double>(bytes);
  if (bytes == 0) {
    f.done = true;
    f.finish = now_;
  }
  flows_.push_back(f);
  const std::size_t id = flows_.size() - 1;
  if (!flows_[id].done) active_.push_back(id);
  return id;
}

double FluidHostLink::completion(std::size_t id) const {
  assert(id < flows_.size());
  if (flows_[id].done) return flows_[id].finish;
  // Project the in-flight set forward assuming no further admissions:
  // repeatedly retire the earliest-finishing flow at the current shared
  // rate until `id` retires.
  std::vector<std::pair<std::size_t, double>> rem;
  rem.reserve(active_.size());
  for (std::size_t a : active_) rem.emplace_back(a, flows_[a].remaining);
  double t = now_;
  while (!rem.empty()) {
    const double r = rate(rem.size());
    auto min_it = rem.begin();
    for (auto it = rem.begin(); it != rem.end(); ++it) {
      if (it->second < min_it->second) min_it = it;
    }
    const double drained = min_it->second;
    t += drained / r;
    // Retire every flow that hits zero in this interval; report if ours.
    bool found = false;
    for (std::size_t i = 0; i < rem.size();) {
      rem[i].second -= drained;
      if (rem[i].second <= 0.0) {
        if (rem[i].first == id) found = true;
        rem[i] = rem.back();
        rem.pop_back();
      } else {
        ++i;
      }
    }
    if (found) return t;
  }
  return t;
}

}  // namespace amped::sim
