// Interconnect links of the single-node multi-GPU platform (Fig. 3).
//
// Each GPU has its own PCIe link to the host (the paper exploits exactly
// this: "multiple GPUs can concurrently communicate with the host CPU",
// §5.2), and GPU pairs communicate over GPUDirect P2P. RTX 6000 Ada has no
// NVLink (§5.1.1), so P2P rides PCIe through the root complexes of a
// 2-socket host — which is why its sustained bandwidth preset is far below
// the host-link bandwidth; cross-socket PCIe P2P is notoriously slow
// (cf. Tartan, IISWC'18).
#pragma once

#include <cstdint>

namespace amped::sim {

struct LinkSpec {
  double bandwidth = 1e9;  // sustained bytes/s, one direction
  double latency_s = 0.0;  // per-transfer fixed cost
};

// PCIe Gen4 x16 host<->GPU: 64 GB/s headline (§5.1.1), sustained fraction
// applied for large DMA streams.
LinkSpec pcie_host_link();

// GPUDirect P2P over PCIe across the dual-socket root complexes.
LinkSpec pcie_p2p_link();

// Seconds to move `bytes` across `link`. `fixed_cost_divisor` rescales the
// latency term when the workload has been scaled down (see
// PlatformConfig::workload_scale): shrinking a tensor 2000x must also
// shrink fixed costs 2000x or latency would swamp the scaled-down compute
// and distort every ratio the benchmarks report.
double transfer_seconds(const LinkSpec& link, std::uint64_t bytes,
                        double fixed_cost_divisor = 1.0);

}  // namespace amped::sim
