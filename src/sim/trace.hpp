// Optional per-event tracing of the simulated platform and the real
// host-parallel backend.
//
// The Timeline buckets only totals; when diagnosing scheduling decisions
// (why did GPU 2 idle during mode 1?) you want the actual event sequence.
// TraceLog records (device, engine, phase, start, duration, label) tuples
// and can export Chrome trace-event JSON, which chrome://tracing and
// Perfetto render as one row per (device, engine) pair. Tracing is opt-in
// via Platform::attach_trace — the hot paths pay nothing when no trace is
// attached.
//
// Both backends write the same rows for the same plan: the simulator
// records modelled timestamps, the host backend records wall-clock
// timestamps measured on its lane/copy-engine/worker threads (host_now()
// gives seconds since the log was created, so events from many plan runs
// in one ALS share a monotone clock). Loading the two files side by side
// in Perfetto shows modelled vs measured timelines with identical row and
// label structure.
#pragma once

#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <vector>

#include "sim/timeline.hpp"

namespace amped::sim {

struct TraceEvent {
  int device = 0;   // GPU id, or -1 for the host
  int engine = 0;   // 0 = compute/lane thread, 1 = copy engine
  Phase phase = Phase::kCompute;
  double start_s = 0.0;
  double duration_s = 0.0;
  std::string label;
};

class TraceLog {
 public:
  // `capacity` bounds memory; once full, further events are counted but
  // dropped (dropped() reports how many, and the Chrome export surfaces
  // the count instead of silently truncating the timeline).
  explicit TraceLog(std::size_t capacity = 1 << 20)
      : capacity_(capacity),
        origin_(std::chrono::steady_clock::now()) {}

  // Thread-safe: host-backend lane threads record concurrently.
  void record(TraceEvent event);

  // Wall-clock seconds since this log was created — the time base for
  // host-backend events, monotone across every plan run in a job.
  double host_now() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         origin_)
        .count();
  }

  const std::vector<TraceEvent>& events() const { return events_; }
  std::size_t dropped() const { return dropped_; }
  void clear();

  // Total duration attributed to `phase` on `device` (-2 = any device).
  double total(Phase phase, int device = -2) const;

  // Chrome trace-event JSON: "traceEvents" holds one complete event
  // ("ph":"X", ts/dur in microseconds) per recorded event plus one
  // thread_name metadata event per (device, engine) row — "gpu0",
  // "gpu0 copy", "host". tid = device*2 + engine for devices, a high
  // sentinel range for host rows. Dropped-event counts land in
  // "otherData" so a truncated timeline is visibly truncated.
  void write_chrome_json(std::ostream& out) const;
  void write_chrome_json_file(const std::string& path) const;

 private:
  std::size_t capacity_;
  std::chrono::steady_clock::time_point origin_;
  mutable std::mutex mutex_;
  std::vector<TraceEvent> events_;
  std::size_t dropped_ = 0;
};

}  // namespace amped::sim
