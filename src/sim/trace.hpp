// Optional per-event tracing of the simulated platform.
//
// The Timeline buckets only totals; when diagnosing scheduling decisions
// (why did GPU 2 idle during mode 1?) you want the actual event sequence.
// TraceLog records (device, phase, start, duration, label) tuples and can
// export Chrome trace-event JSON, which chrome://tracing and Perfetto
// render as one row per simulated device. Tracing is opt-in via
// Platform::attach_trace — the hot paths pay nothing when no trace is
// attached.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "sim/timeline.hpp"

namespace amped::sim {

struct TraceEvent {
  int device = 0;  // GPU id, or -1 for the host
  Phase phase = Phase::kCompute;
  double start_s = 0.0;
  double duration_s = 0.0;
  std::string label;
};

class TraceLog {
 public:
  // `capacity` bounds memory; once full, further events are counted but
  // dropped (dropped() reports how many).
  explicit TraceLog(std::size_t capacity = 1 << 20)
      : capacity_(capacity) {}

  void record(TraceEvent event);

  const std::vector<TraceEvent>& events() const { return events_; }
  std::size_t dropped() const { return dropped_; }
  void clear();

  // Total duration attributed to `phase` on `device` (-2 = any device).
  double total(Phase phase, int device = -2) const;

  // Chrome trace-event JSON ("traceEvents" array of complete events, one
  // process, one thread per device). Times are emitted in microseconds.
  void write_chrome_json(std::ostream& out) const;
  void write_chrome_json_file(const std::string& path) const;

 private:
  std::size_t capacity_;
  std::vector<TraceEvent> events_;
  std::size_t dropped_ = 0;
};

}  // namespace amped::sim
