#include "sim/timeline.hpp"

namespace amped::sim {

const char* phase_name(Phase p) {
  switch (p) {
    case Phase::kCompute: return "compute";
    case Phase::kHostToDevice: return "h2d";
    case Phase::kDeviceToHost: return "d2h";
    case Phase::kPeerToPeer: return "p2p";
    case Phase::kSync: return "sync";
    case Phase::kHostCompute: return "host";
    case Phase::kCount: break;
  }
  return "?";
}

}  // namespace amped::sim
