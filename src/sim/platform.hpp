// The simulated single-node multi-GPU platform (paper Fig. 3): one host
// CPU, M GPUs, per-GPU PCIe host links, and pairwise GPUDirect P2P links.
//
// Platform owns the simulated devices and provides the transfer/barrier
// vocabulary Algorithms 1 and 3 are written in. It also implements
// workload scaling: when benchmarks run a Table 3 profile at 1/scale of
// its real nonzero count, the platform divides device capacities and all
// fixed costs (link latencies, kernel-launch overheads) by the same
// factor, so memory-feasibility decisions and fixed-vs-streaming cost
// ratios match the full-scale system exactly (simulated times are then
// full-scale times divided by `scale`).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/cost_model.hpp"
#include "sim/device.hpp"
#include "sim/interconnect.hpp"
#include "sim/timeline.hpp"

namespace amped::sim {

struct PlatformConfig {
  int num_gpus = 4;
  DeviceSpec gpu = rtx6000_ada_spec();
  // Optional per-GPU overrides for heterogeneous nodes (the paper's §6
  // future-work platform: mixed accelerators in one box). Entry i, when
  // present, replaces `gpu` for device i; missing/short entries fall back
  // to `gpu`.
  std::vector<DeviceSpec> gpu_overrides;
  DeviceSpec host = epyc_host_spec();
  LinkSpec host_link = pcie_host_link();
  LinkSpec p2p_link = pcie_p2p_link();
  // Host links are physically per-GPU but share the host memory system:
  // when all M GPUs stream simultaneously (AMPED's shard loop), each
  // effectively gets min(link bandwidth, aggregate / M). This is the
  // sublinearity that keeps the paper's 4-GPU speedup at 3.3x, not 4x.
  double host_aggregate_bandwidth = 160e9;
  // Workload reduction factor of the tensors being run (see above).
  double workload_scale = 1.0;
};

class Platform {
 public:
  explicit Platform(PlatformConfig config);

  int num_gpus() const { return static_cast<int>(gpus_.size()); }
  SimDevice& gpu(int i) { return gpus_[static_cast<std::size_t>(i)]; }
  const SimDevice& gpu(int i) const { return gpus_[static_cast<std::size_t>(i)]; }
  SimDevice& host() { return *host_; }
  const SimDevice& host() const { return *host_; }

  const PlatformConfig& config() const { return config_; }
  // Cost model of the default GPU spec; single-GPU baselines use this.
  const CostModel& gpu_cost_model() const { return gpu_costs_[0]; }
  // Per-device cost model (differs across GPUs on heterogeneous nodes).
  const CostModel& cost_model(int gpu) const {
    return gpu_costs_[static_cast<std::size_t>(gpu)];
  }
  const CostModel& host_cost_model() const { return host_cost_; }
  double fixed_cost_divisor() const { return config_.workload_scale; }

  // True when any GPU override differs from the default spec.
  bool heterogeneous() const { return heterogeneous_; }

  // Pure cost queries (no clock side effects).
  double h2d_seconds(std::uint64_t bytes) const;
  // Fluid-contention variant: seconds for one H2D while `streaming_lanes`
  // host links are concurrently active, at the processor-sharing rate
  // min(lane bandwidth, aggregate / lanes) — see sim/fluid_link.hpp.
  // streaming_lanes <= 0 (or >= num_gpus) reduces to the static all-lanes
  // share the zero-argument overload prices.
  double h2d_seconds(std::uint64_t bytes, int streaming_lanes) const;
  double d2h_seconds(std::uint64_t bytes) const;
  double p2p_seconds(std::uint64_t bytes) const;
  double kernel_launch_seconds() const;

  // Clock-advancing operations. Host links are per-GPU, so concurrent
  // transfers to different GPUs do not contend; a transfer only advances
  // the clock of the GPU it touches (the host DMA engines are free).
  void h2d(int gpu, std::uint64_t bytes);
  void d2h(int gpu, std::uint64_t bytes);
  // One ring hop: `from` sends `bytes` to `to`; both devices are busy for
  // the duration and the receiver cannot finish before the sender's data
  // exists, so both clocks end at max(start clocks) + transfer time.
  void p2p(int from, int to, std::uint64_t bytes);

  // Inter-GPU barrier: all GPU clocks jump to the max GPU clock, stalls
  // accounted as Phase::kSync.
  void barrier();

  // Max over GPU clocks (the paper's total execution time once the host
  // has no work in flight).
  double makespan() const;

  // Sum of per-phase times across GPUs + host.
  Timeline aggregate_timeline() const;

  // Zero all clocks, timelines, and allocations.
  void reset();

  // Attach/detach an event trace covering every device (nullptr detaches).
  void attach_trace(TraceLog* trace);
  // The attached trace, if any — the host backend records its wall-clock
  // events into the same log the simulated devices use.
  TraceLog* trace() const { return trace_; }

 private:
  PlatformConfig config_;
  std::vector<SimDevice> gpus_;
  std::unique_ptr<SimDevice> host_;
  std::vector<CostModel> gpu_costs_;  // one per GPU
  CostModel host_cost_;
  bool heterogeneous_ = false;
  TraceLog* trace_ = nullptr;
};

// A smaller workstation GPU for heterogeneous-node experiments: roughly an
// RTX A4000-class device (48 SMs, 16 GB, narrower GDDR6 bus).
DeviceSpec rtx_a4000_spec();

// Convenience: the paper's default 4-GPU evaluation platform (§5.1.5) for
// a workload scaled down by `workload_scale`.
Platform make_default_platform(int num_gpus = 4, double workload_scale = 1.0);

}  // namespace amped::sim
