#include "sim/executor.hpp"

#include <algorithm>
#include <cassert>
#include <queue>
#include <vector>

namespace amped::sim {

double grid_makespan(std::span<const double> block_seconds, int sm_count) {
  assert(sm_count > 0);
  if (block_seconds.empty()) return 0.0;
  if (static_cast<int>(block_seconds.size()) <= sm_count) {
    return *std::max_element(block_seconds.begin(), block_seconds.end());
  }
  // Min-heap of SM available times.
  std::priority_queue<double, std::vector<double>, std::greater<>> sms;
  for (int i = 0; i < sm_count; ++i) sms.push(0.0);
  double makespan = 0.0;
  for (double t : block_seconds) {
    const double start = sms.top();
    sms.pop();
    const double end = start + t;
    makespan = std::max(makespan, end);
    sms.push(end);
  }
  return makespan;
}

double grid_occupancy(std::span<const double> block_seconds, int sm_count) {
  double busy = 0.0;
  for (double t : block_seconds) busy += t;
  const double span = grid_makespan(block_seconds, sm_count);
  if (span <= 0.0) return 1.0;
  return busy / (span * sm_count);
}

}  // namespace amped::sim
