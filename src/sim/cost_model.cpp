#include "sim/cost_model.hpp"

#include <algorithm>
#include <cassert>

namespace amped::sim {

double CostModel::bytes_per_nnz(std::size_t modes, std::size_t rank,
                                const KernelProfile& profile) const {
  const double row_bytes = static_cast<double>(rank) * sizeof(value_t);
  const double factor_reads = static_cast<double>(modes - 1) * row_bytes *
                              profile.factor_read_efficiency;
  const double output_rmw = 2.0 * row_bytes * profile.output_write_efficiency;
  return profile.coord_bytes_per_nnz + factor_reads + output_rmw;
}

double CostModel::flops_per_nnz(std::size_t modes, std::size_t rank,
                                const KernelProfile& profile) const {
  // (N-1)*R Hadamard multiplies plus R FMAs on the output row.
  return (static_cast<double>(modes - 1) + 2.0) * static_cast<double>(rank) *
         profile.flop_overhead;
}

double threadblock_utilization(std::size_t rank, std::size_t block_width) {
  const double threads = static_cast<double>(rank * block_width);
  return std::min(1.0, threads / 1024.0);
}

double factor_read_efficiency(std::span<const std::uint64_t> full_dims,
                              std::size_t rank, std::size_t output_mode,
                              std::uint64_t l2_bytes, double locality) {
  assert(output_mode < full_dims.size());
  if (full_dims.size() < 2) return locality;
  double total = 0.0;
  for (std::size_t m = 0; m < full_dims.size(); ++m) {
    if (m == output_mode) continue;
    const double bytes =
        static_cast<double>(full_dims[m]) * rank * sizeof(value_t);
    const bool cached =
        l2_bytes > 0 && bytes <= static_cast<double>(l2_bytes);
    total += cached ? kCachedReadFraction : 1.0;
  }
  return locality * total / static_cast<double>(full_dims.size() - 1);
}

double CostModel::ec_block_seconds(const EcBlockStats& stats,
                                   const KernelProfile& profile) const {
  assert(stats.modes >= 2 && stats.rank >= 1);
  if (stats.nnz == 0) return 0.0;
  const double n = static_cast<double>(stats.nnz);
  const double row_bytes = static_cast<double>(stats.rank) * sizeof(value_t);

  const double sm_flops = spec_.flops / spec_.sm_count;
  const double sm_bw = spec_.mem_bandwidth / spec_.sm_count;

  // Streams: coordinates per element; input factor rows per element
  // (scaled by the cache/locality efficiency); output read-modify-write
  // once per same-output run (register accumulation within a run).
  const double runs = static_cast<double>(
      std::min<nnz_t>(stats.nnz, std::max<nnz_t>(1, stats.output_runs)));
  const double bytes =
      n * profile.coord_bytes_per_nnz +
      n * static_cast<double>(stats.modes - 1) * row_bytes *
          profile.factor_read_efficiency +
      runs * 2.0 * row_bytes * profile.output_write_efficiency;

  const double flop_time =
      n * flops_per_nnz(stats.modes, stats.rank, profile) / sm_flops;
  const double byte_time = bytes / sm_bw;
  double t = std::max(flop_time, byte_time) /
             threadblock_utilization(stats.rank, stats.block_width);

  // Atomic contention: updates to the same output row serialise. The
  // contiguous part of the hottest row (its longest run) is mostly
  // absorbed by register accumulation; the scattered remainder pays the
  // full serialised cost per update.
  if (profile.atomic_scale > 0.0 && stats.max_multiplicity > 1) {
    const nnz_t run = std::min(stats.max_run, stats.max_multiplicity);
    const double scattered =
        static_cast<double>(stats.max_multiplicity - run);
    const double sorted = kSortedAtomicDiscount *
                          static_cast<double>(run > 0 ? run - 1 : 0);
    t += (scattered + sorted) * static_cast<double>(stats.rank) *
         spec_.atomic_ns * 1e-9 * profile.atomic_scale;
  }
  return t;
}

}  // namespace amped::sim
