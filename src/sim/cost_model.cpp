#include "sim/cost_model.hpp"

#include <algorithm>
#include <cassert>

namespace amped::sim {

double CostModel::bytes_per_nnz(std::size_t modes, std::size_t rank,
                                const KernelProfile& profile) const {
  const double row_bytes = static_cast<double>(rank) * sizeof(value_t);
  const double factor_reads = static_cast<double>(modes - 1) * row_bytes *
                              profile.factor_read_efficiency;
  const double output_rmw = 2.0 * row_bytes * profile.output_write_efficiency;
  return profile.coord_bytes_per_nnz + factor_reads + output_rmw;
}

double CostModel::flops_per_nnz(std::size_t modes, std::size_t rank,
                                const KernelProfile& profile) const {
  // (N-1)*R Hadamard multiplies plus R FMAs on the output row.
  return (static_cast<double>(modes - 1) + 2.0) * static_cast<double>(rank) *
         profile.flop_overhead;
}

double threadblock_utilization(std::size_t rank, std::size_t block_width) {
  const double threads = static_cast<double>(rank * block_width);
  return std::min(1.0, threads / 1024.0);
}

std::vector<std::size_t> ec_tile_widths(std::size_t rank) {
  // Widths must stay in lockstep with the instantiated kernel set in
  // core/kernel_cache.cpp (pick_tile): 64, every multiple of 4 below it,
  // and 1..3 for the last few columns. Greedy 64s plus ONE widest
  // multiple-of-4 tile keeps the pass count minimal — each extra pass
  // re-streams the coordinates — so e.g. rank 20 is a single 20-wide
  // pass and rank 100 is {64, 36}, not {64, 32, 4}.
  std::vector<std::size_t> widths;
  std::size_t rem = rank;
  while (rem >= 64) {
    widths.push_back(64);
    rem -= 64;
  }
  if (rem >= 4) {
    const std::size_t w = rem & ~std::size_t{3};
    widths.push_back(w);
    rem -= w;
  }
  if (rem > 0) widths.push_back(rem);
  return widths;
}

double factor_read_efficiency(std::span<const std::uint64_t> full_dims,
                              std::size_t rank, std::size_t output_mode,
                              std::uint64_t l2_bytes, double locality) {
  assert(output_mode < full_dims.size());
  if (full_dims.size() < 2) return locality;
  double total = 0.0;
  for (std::size_t m = 0; m < full_dims.size(); ++m) {
    if (m == output_mode) continue;
    const double bytes =
        static_cast<double>(full_dims[m]) * rank * sizeof(value_t);
    const bool cached =
        l2_bytes > 0 && bytes <= static_cast<double>(l2_bytes);
    total += cached ? kCachedReadFraction : 1.0;
  }
  return locality * total / static_cast<double>(full_dims.size() - 1);
}

double CostModel::ec_block_seconds(const EcBlockStats& stats,
                                   const KernelProfile& profile) const {
  assert(stats.modes >= 2 && stats.rank >= 1);
  if (stats.nnz == 0) return 0.0;
  const double n = static_cast<double>(stats.nnz);

  const double sm_flops = spec_.flops / spec_.sm_count;
  const double sm_bw = spec_.mem_bandwidth / spec_.sm_count;

  // Streams: coordinates per element; input factor rows per element
  // (scaled by the cache/locality efficiency); output read-modify-write
  // once per same-output run (register accumulation within a run).
  const double runs = static_cast<double>(
      std::min<nnz_t>(stats.nnz, std::max<nnz_t>(1, stats.output_runs)));

  // The kernel executes the rank as the column-tile passes of
  // ec_tile_widths: each pass re-streams the coordinates and moves its
  // own width's share of the factor/output rows, so wide off-menu ranks
  // price as several passes plus a remainder instead of one ideal
  // full-width block. Occupancy is a property of the resident block
  // (the full rank mapped over block_width element lanes), not of each
  // column pass in isolation — a narrow remainder pass reuses the warps
  // the wide passes already occupy — so one program-level utilization
  // divides the summed pass time. Single-tile ranks reduce to the
  // classic untiled max(flop, byte)/utilization roofline term exactly.
  double t = 0.0;
  for (const std::size_t width : ec_tile_widths(stats.rank)) {
    const double tile_row_bytes =
        static_cast<double>(width) * sizeof(value_t);
    const double tile_bytes =
        n * profile.coord_bytes_per_nnz +
        n * static_cast<double>(stats.modes - 1) * tile_row_bytes *
            profile.factor_read_efficiency +
        runs * 2.0 * tile_row_bytes * profile.output_write_efficiency;
    const double flop_time =
        n * flops_per_nnz(stats.modes, width, profile) / sm_flops;
    const double byte_time = tile_bytes / sm_bw;
    t += std::max(flop_time, byte_time);
  }
  t /= threadblock_utilization(stats.rank, stats.block_width);

  // Atomic contention: updates to the same output row serialise. The
  // contiguous part of the hottest row (its longest run) is mostly
  // absorbed by register accumulation; the scattered remainder pays the
  // full serialised cost per update.
  if (profile.atomic_scale > 0.0 && stats.max_multiplicity > 1) {
    const nnz_t run = std::min(stats.max_run, stats.max_multiplicity);
    const double scattered =
        static_cast<double>(stats.max_multiplicity - run);
    const double sorted = kSortedAtomicDiscount *
                          static_cast<double>(run > 0 ? run - 1 : 0);
    t += (scattered + sorted) * static_cast<double>(stats.rank) *
         spec_.atomic_ns * 1e-9 * profile.atomic_scale;
  }
  return t;
}

}  // namespace amped::sim
