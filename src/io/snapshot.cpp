#include "io/snapshot.hpp"

#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <stdexcept>

#include "io/mapped_file.hpp"
#include "tensor/tns_io.hpp"
#include "util/fault.hpp"

namespace amped::io {

namespace {

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error("snapshot: " + what);
}

constexpr std::size_t kHeaderBytes = 64;
constexpr std::size_t kSegmentEntryBytes = 40;

std::uint64_t align_up(std::uint64_t offset) {
  return (offset + kSnapshotAlignment - 1) & ~(kSnapshotAlignment - 1);
}

// On-disk segment table entry. Field-order writes keep this independent of
// struct padding; sizes are asserted where it is serialised.
struct SegmentEntry {
  std::uint32_t kind = 0;
  std::uint32_t param = 0;
  std::uint64_t offset = 0;
  std::uint64_t bytes = 0;
  std::uint64_t checksum = 0;
};

template <typename T>
T load_le(const std::byte* p) {
  T v;
  std::memcpy(&v, p, sizeof(T));
  return v;
}

template <typename T>
void append_le(std::vector<std::byte>& out, T v) {
  const auto* p = reinterpret_cast<const std::byte*>(&v);
  out.insert(out.end(), p, p + sizeof(T));
}

std::vector<std::byte> serialise_table(const std::vector<SegmentEntry>& table) {
  std::vector<std::byte> bytes;
  bytes.reserve(table.size() * kSegmentEntryBytes);
  for (const auto& e : table) {
    append_le(bytes, e.kind);
    append_le(bytes, e.param);
    append_le(bytes, e.offset);
    append_le(bytes, e.bytes);
    append_le(bytes, e.checksum);
    append_le(bytes, std::uint64_t{0});  // reserved
  }
  return bytes;
}

}  // namespace

std::uint64_t checksum64(const void* data, std::size_t bytes) {
  constexpr std::uint64_t kPrime = 1099511628211ull;
  std::uint64_t h = 14695981039346656037ull ^ bytes;
  const auto* p = static_cast<const unsigned char*>(data);
  std::size_t n = bytes;
  while (n >= 8) {
    std::uint64_t w;
    std::memcpy(&w, p, 8);
    h = (h ^ w) * kPrime;
    p += 8;
    n -= 8;
  }
  if (n > 0) {
    std::uint64_t w = 0;
    std::memcpy(&w, p, n);
    h = (h ^ w) * kPrime;
  }
  return h;
}

// ---------------------------------------------------------------------------
// AtomicFileWriter

AtomicFileWriter::AtomicFileWriter(const std::string& path)
    : path_(path),
      temp_path_(path + ".tmp-" + std::to_string(::getpid())) {
  file_ = std::fopen(temp_path_.c_str(), "wb");
  if (file_ == nullptr) {
    fail("cannot open " + temp_path_ + " for writing: " +
         std::strerror(errno));
  }
}

AtomicFileWriter::~AtomicFileWriter() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
  if (!committed_) {
    std::remove(temp_path_.c_str());
  }
}

void AtomicFileWriter::write(const void* data, std::size_t bytes) {
  if (bytes == 0) return;
  if (file_ == nullptr) {
    fail("write to " + temp_path_ + " after commit or close");
  }
  AMPED_FAULT_POINT("snapshot.write");
  if (std::fwrite(data, 1, bytes, file_) != bytes) {
    fail("short write to " + temp_path_);
  }
  offset_ += bytes;
}

void AtomicFileWriter::pad_to(std::uint64_t offset) {
  if (offset < offset_) fail("pad_to before current offset");
  static constexpr std::array<std::byte, kSnapshotAlignment> kZeros{};
  std::uint64_t remaining = offset - offset_;
  while (remaining > 0) {
    const std::size_t chunk =
        static_cast<std::size_t>(std::min<std::uint64_t>(remaining,
                                                         kZeros.size()));
    write(kZeros.data(), chunk);
    remaining -= chunk;
  }
}

void AtomicFileWriter::commit() {
  if (file_ == nullptr) fail("commit of " + temp_path_ + " after close");
  if (std::fflush(file_) != 0) fail("flush failed for " + temp_path_);
  AMPED_FAULT_POINT("snapshot.fsync");
  // fsync may be interrupted by a signal before any I/O happens; retry
  // until it succeeds or fails for a real reason.
  while (::fsync(::fileno(file_)) != 0) {
    if (errno != EINTR) {
      fail("fsync failed for " + temp_path_ + ": " + std::strerror(errno));
    }
  }
  if (std::fclose(file_) != 0) {
    file_ = nullptr;
    fail("close failed for " + temp_path_);
  }
  file_ = nullptr;
  AMPED_FAULT_POINT("snapshot.rename");
  std::error_code ec;
  std::filesystem::rename(temp_path_, path_, ec);
  if (ec) {
    fail("rename " + temp_path_ + " -> " + path_ + ": " + ec.message());
  }
  committed_ = true;
}

// ---------------------------------------------------------------------------
// Writer

void write_snapshot_file(const CooTensor& t, const std::string& path,
                         std::span<const ShardRunStatsRecord> shard_stats) {
  const std::uint64_t modes = t.num_modes();
  const std::uint64_t nnz = t.nnz();
  const std::uint64_t segments = modes + 2 + (shard_stats.empty() ? 0 : 1);

  std::vector<std::uint64_t> dims64(t.dims().begin(), t.dims().end());

  std::vector<SegmentEntry> table;
  table.reserve(segments);
  std::uint64_t cursor =
      align_up(kHeaderBytes + segments * kSegmentEntryBytes);
  auto add_segment = [&](SegmentKind kind, std::uint32_t param,
                         const void* data, std::uint64_t bytes) {
    SegmentEntry e;
    e.kind = static_cast<std::uint32_t>(kind);
    e.param = param;
    e.offset = cursor;
    e.bytes = bytes;
    e.checksum = checksum64(data, static_cast<std::size_t>(bytes));
    table.push_back(e);
    cursor = align_up(cursor + bytes);
  };
  add_segment(SegmentKind::kDims, 0, dims64.data(),
              dims64.size() * sizeof(std::uint64_t));
  for (std::uint64_t m = 0; m < modes; ++m) {
    add_segment(SegmentKind::kIndices, static_cast<std::uint32_t>(m),
                t.indices(m).data(), nnz * sizeof(index_t));
  }
  add_segment(SegmentKind::kValues, 0, t.values().data(),
              nnz * sizeof(value_t));
  if (!shard_stats.empty()) {
    add_segment(SegmentKind::kShardRunStats, 0, shard_stats.data(),
                shard_stats.size() * sizeof(ShardRunStatsRecord));
  }

  const auto table_bytes = serialise_table(table);

  std::vector<std::byte> header;
  header.reserve(kHeaderBytes);
  header.insert(header.end(),
                reinterpret_cast<const std::byte*>(kSnapshotMagicV2),
                reinterpret_cast<const std::byte*>(kSnapshotMagicV2) + 8);
  append_le(header, modes);
  append_le(header, nnz);
  append_le(header, static_cast<std::uint64_t>(table.size()));
  append_le(header, static_cast<std::uint64_t>(kHeaderBytes));
  append_le(header, checksum64(table_bytes.data(), table_bytes.size()));
  header.resize(kHeaderBytes, std::byte{0});

  AtomicFileWriter out(path);
  out.write(header.data(), header.size());
  out.write(table_bytes.data(), table_bytes.size());
  for (const auto& e : table) {
    out.pad_to(e.offset);
    // Re-derive the source pointer from the entry so write order always
    // matches the table.
    const void* src = nullptr;
    switch (static_cast<SegmentKind>(e.kind)) {
      case SegmentKind::kDims: src = dims64.data(); break;
      case SegmentKind::kIndices: src = t.indices(e.param).data(); break;
      case SegmentKind::kValues: src = t.values().data(); break;
      case SegmentKind::kShardRunStats: src = shard_stats.data(); break;
    }
    out.write(src, static_cast<std::size_t>(e.bytes));
  }
  out.commit();
}

// ---------------------------------------------------------------------------
// Reader

SnapshotView parse_snapshot(std::span<const std::byte> file,
                            bool verify_checksums,
                            const std::string& context) {
  AMPED_FAULT_POINT("snapshot.read");
  auto bad = [&](const std::string& what) -> void {
    fail(what + " in " + context);
  };
  if (file.size() < kHeaderBytes) bad("file shorter than the header");
  if (std::memcmp(file.data(), kSnapshotMagicV2, 8) != 0) {
    bad("bad magic (not an AMPTNS02 snapshot)");
  }
  const auto modes = load_le<std::uint64_t>(file.data() + 8);
  const auto nnz = load_le<std::uint64_t>(file.data() + 16);
  const auto num_segments = load_le<std::uint64_t>(file.data() + 24);
  const auto table_offset = load_le<std::uint64_t>(file.data() + 32);
  const auto table_checksum = load_le<std::uint64_t>(file.data() + 40);

  if (modes > kMaxModes) bad("too many modes");
  // modes + 2 mandatory segments, plus at most one optional run-stats
  // segment (spill files).
  if (num_segments != modes + 2 && num_segments != modes + 3) {
    bad("bad segment count");
  }
  // Overflow-safe range checks: a corrupt header must produce a clear
  // error, never an out-of-bounds read (offsets/counts are attacker- or
  // bitrot-controlled here).
  if (table_offset < kHeaderBytes || table_offset > file.size() ||
      num_segments > (file.size() - table_offset) / kSegmentEntryBytes) {
    bad("segment table out of range (truncated file?)");
  }
  if (nnz > file.size() / sizeof(value_t)) {
    // Every element needs at least one 4-byte value in its segment, so a
    // larger claim cannot be honest; this also bounds nnz far below any
    // multiplication overflow in the per-segment size checks.
    bad("nnz larger than the file can hold (truncated file?)");
  }
  const std::byte* table = file.data() + table_offset;
  const std::size_t table_bytes =
      static_cast<std::size_t>(num_segments) * kSegmentEntryBytes;
  if (checksum64(table, table_bytes) != table_checksum) {
    bad("segment table checksum mismatch");
  }

  SnapshotView view;
  view.nnz = nnz;
  view.indices.resize(static_cast<std::size_t>(modes));
  std::vector<bool> mode_seen(static_cast<std::size_t>(modes), false);
  bool dims_seen = false, values_seen = false, stats_seen = false;

  for (std::uint64_t s = 0; s < num_segments; ++s) {
    const std::byte* e = table + s * kSegmentEntryBytes;
    const auto kind = load_le<std::uint32_t>(e);
    const auto param = load_le<std::uint32_t>(e + 4);
    const auto offset = load_le<std::uint64_t>(e + 8);
    const auto bytes = load_le<std::uint64_t>(e + 16);
    const auto checksum = load_le<std::uint64_t>(e + 24);

    if (offset % kSnapshotAlignment != 0) bad("misaligned segment");
    if (offset > file.size() || bytes > file.size() - offset) {
      bad("segment out of range (truncated file?)");
    }
    const std::byte* payload = file.data() + offset;
    if (verify_checksums &&
        checksum64(payload, static_cast<std::size_t>(bytes)) != checksum) {
      bad("checksum mismatch in segment " + std::to_string(s));
    }

    switch (static_cast<SegmentKind>(kind)) {
      case SegmentKind::kDims: {
        if (dims_seen || bytes != modes * sizeof(std::uint64_t)) {
          bad("bad dims segment");
        }
        dims_seen = true;
        view.dims.resize(static_cast<std::size_t>(modes));
        for (std::uint64_t m = 0; m < modes; ++m) {
          const auto d =
              load_le<std::uint64_t>(payload + m * sizeof(std::uint64_t));
          if (d > UINT32_MAX) bad("mode size exceeds 32-bit index space");
          view.dims[static_cast<std::size_t>(m)] =
              static_cast<index_t>(d);
        }
        break;
      }
      case SegmentKind::kIndices: {
        if (param >= modes || mode_seen[param] ||
            bytes != nnz * sizeof(index_t)) {
          bad("bad index segment");
        }
        mode_seen[param] = true;
        view.indices[param] = std::span<const index_t>(
            reinterpret_cast<const index_t*>(payload),
            static_cast<std::size_t>(nnz));
        break;
      }
      case SegmentKind::kValues: {
        if (values_seen || bytes != nnz * sizeof(value_t)) {
          bad("bad values segment");
        }
        values_seen = true;
        view.values = std::span<const value_t>(
            reinterpret_cast<const value_t*>(payload),
            static_cast<std::size_t>(nnz));
        break;
      }
      case SegmentKind::kShardRunStats: {
        if (stats_seen || bytes % sizeof(ShardRunStatsRecord) != 0) {
          bad("bad shard-run-stats segment");
        }
        stats_seen = true;
        view.shard_stats = std::span<const ShardRunStatsRecord>(
            reinterpret_cast<const ShardRunStatsRecord*>(payload),
            static_cast<std::size_t>(bytes) / sizeof(ShardRunStatsRecord));
        break;
      }
      default:
        bad("unknown segment kind " + std::to_string(kind));
    }
  }
  if (!dims_seen || !values_seen) bad("missing segment");
  if (stats_seen != (num_segments == modes + 3)) bad("bad segment count");
  for (std::uint64_t m = 0; m < modes; ++m) {
    if (!mode_seen[static_cast<std::size_t>(m)]) bad("missing index segment");
  }
  return view;
}

CooTensor read_snapshot_file(const std::string& path) {
  MappedFile file(path);
  if (file.size() >= 8 &&
      std::memcmp(file.data(), kSnapshotMagicV1, 8) == 0) {
    return read_binary_file(path);  // v1 compatibility
  }
  const auto view = parse_snapshot({file.data(), file.size()},
                                   /*verify_checksums=*/true, path);
  if (view.dims.empty()) return CooTensor{};

  std::vector<std::vector<index_t>> cols;
  cols.reserve(view.indices.size());
  for (const auto& span : view.indices) {
    cols.emplace_back(span.begin(), span.end());
  }
  return CooTensor::from_parts(
      view.dims, std::move(cols),
      std::vector<value_t>(view.values.begin(), view.values.end()));
}

SnapshotLayout inspect_snapshot(const std::string& path) {
  MappedFile file(path);
  // Structure-only parse; payload checksums are the caller's business.
  parse_snapshot({file.data(), file.size()}, /*verify_checksums=*/false,
                 path);
  SnapshotLayout layout;
  layout.num_modes = load_le<std::uint64_t>(file.data() + 8);
  layout.nnz = load_le<std::uint64_t>(file.data() + 16);
  const auto num_segments = load_le<std::uint64_t>(file.data() + 24);
  const auto table_offset = load_le<std::uint64_t>(file.data() + 32);
  for (std::uint64_t s = 0; s < num_segments; ++s) {
    const std::byte* e = file.data() + table_offset + s * kSegmentEntryBytes;
    SnapshotSegmentInfo info;
    info.kind = static_cast<SegmentKind>(load_le<std::uint32_t>(e));
    info.param = load_le<std::uint32_t>(e + 4);
    info.offset = load_le<std::uint64_t>(e + 8);
    info.bytes = load_le<std::uint64_t>(e + 16);
    info.checksum = load_le<std::uint64_t>(e + 24);
    layout.segments.push_back(info);
  }
  return layout;
}

}  // namespace amped::io
