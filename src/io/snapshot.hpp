// Snapshot v2: the versioned on-disk tensor format of the storage engine.
//
// Layout (all fields little-endian, as written by the host):
//
//   offset 0   header, 64 bytes
//     [ 0.. 8)  magic "AMPTNS02"
//     [ 8..16)  u64 num_modes
//     [16..24)  u64 nnz
//     [24..32)  u64 num_segments  (= num_modes + 2)
//     [32..40)  u64 segment table offset (= 64)
//     [40..48)  u64 FNV checksum of the segment table bytes
//     [48..64)  reserved, zero
//   offset 64  segment table, num_segments x 40-byte entries
//     u32 kind (0 = dims, 1 = indices, 2 = values, 3 = shard run stats)
//     u32 param (mode number for kind 1, else 0)
//     u64 offset    -- absolute, 64-byte aligned
//     u64 bytes     -- payload size
//     u64 checksum  -- FNV over the payload
//     u64 reserved, zero
//   then one 64-byte-aligned segment per entry:
//     dims: num_modes x u64; indices: nnz x u32 per mode; values: nnz x f32;
//     shard run stats (optional, at most one): N x 4 u64 records
//     {nnz_begin, nnz_end, runs, max_run} describing the run structure of
//     each shard of the partition the file was spilled under — written at
//     spill time so the cost-model scheduler prices spilled shards from
//     real structure instead of an index-width guess
//
// 64-byte segment alignment means a mapped segment can be consumed
// in place as a typed array on any cache-line-aligned architecture — the
// zero-copy property `MappedCooTensor` relies on. Writes go to a temp
// file in the destination directory and are published with an atomic
// rename after fsync, so a crash mid-write never corrupts an existing
// snapshot. The reader also accepts v1 ("AMPTNS01") files for backward
// compatibility.
#pragma once

#include <cstdint>
#include <cstdio>
#include <span>
#include <string>
#include <vector>

#include "tensor/coo_tensor.hpp"

namespace amped::io {

inline constexpr char kSnapshotMagicV2[8] = {'A', 'M', 'P', 'T',
                                             'N', 'S', '0', '2'};
inline constexpr char kSnapshotMagicV1[8] = {'A', 'M', 'P', 'T',
                                             'N', 'S', '0', '1'};
inline constexpr std::size_t kSnapshotAlignment = 64;

enum class SegmentKind : std::uint32_t {
  kDims = 0,
  kIndices = 1,
  kValues = 2,
  kShardRunStats = 3,
};

// One record of the optional shard-run-stats segment: the run structure
// of elements [nnz_begin, nnz_end) of the (sorted) file — self-describing
// so readers match records to shards by range, not by position.
struct ShardRunStatsRecord {
  std::uint64_t nnz_begin = 0;
  std::uint64_t nnz_end = 0;
  std::uint64_t runs = 0;
  std::uint64_t max_run = 0;
};
static_assert(sizeof(ShardRunStatsRecord) == 32,
              "record layout is the on-disk layout");

// FNV-1a variant over 64-bit little-endian words (tail zero-padded, length
// folded into the seed): one multiply per 8 bytes keeps verification at
// memory-bandwidth order instead of byte-at-a-time speed.
std::uint64_t checksum64(const void* data, std::size_t bytes);

// Writes `t` as a v2 snapshot via temp file + fsync + atomic rename.
// A nonempty `shard_stats` adds the optional run-stats segment (spill
// files pass the partition's per-shard run structure; plain conversions
// write none).
void write_snapshot_file(const CooTensor& t, const std::string& path,
                         std::span<const ShardRunStatsRecord> shard_stats = {});

// Reads a v2 snapshot (checksums verified) into an owned tensor; v1 files
// are accepted and routed through the v1 reader. Throws std::runtime_error
// on open failure, bad structure, truncation, or checksum mismatch.
CooTensor read_snapshot_file(const std::string& path);

// Borrowed, validated view of a v2 snapshot's payload inside a mapped
// byte range. The spans alias the underlying bytes.
struct SnapshotView {
  std::vector<index_t> dims;
  nnz_t nnz = 0;
  std::vector<std::span<const index_t>> indices;  // one span per mode
  std::span<const value_t> values;
  // Empty unless the file carries the optional run-stats segment.
  std::span<const ShardRunStatsRecord> shard_stats;
};

// Parses and validates a v2 snapshot held in `file`; `context` names the
// source in error messages. With verify_checksums the payload of every
// segment is hashed (touches all pages); without, only the header and
// segment table are validated.
SnapshotView parse_snapshot(std::span<const std::byte> file,
                            bool verify_checksums,
                            const std::string& context);

// Segment directory of a v2 snapshot file, for tests and tooling.
struct SnapshotSegmentInfo {
  SegmentKind kind = SegmentKind::kDims;
  std::uint32_t param = 0;
  std::uint64_t offset = 0;
  std::uint64_t bytes = 0;
  std::uint64_t checksum = 0;
};
struct SnapshotLayout {
  std::uint64_t num_modes = 0;
  nnz_t nnz = 0;
  std::vector<SnapshotSegmentInfo> segments;
};
SnapshotLayout inspect_snapshot(const std::string& path);

// Crash-safe file writer: bytes accumulate in `path + ".tmp-<pid>"`;
// commit() flushes, fsyncs, and atomically renames onto `path`. If the
// writer is destroyed uncommitted (error paths), the temp file is
// removed and any previous file at `path` is untouched.
class AtomicFileWriter {
 public:
  explicit AtomicFileWriter(const std::string& path);
  ~AtomicFileWriter();

  AtomicFileWriter(const AtomicFileWriter&) = delete;
  AtomicFileWriter& operator=(const AtomicFileWriter&) = delete;

  void write(const void* data, std::size_t bytes);
  // Writes zero bytes until the file offset reaches `offset`.
  void pad_to(std::uint64_t offset);
  std::uint64_t offset() const { return offset_; }
  void commit();

 private:
  std::string path_;
  std::string temp_path_;
  std::FILE* file_ = nullptr;
  std::uint64_t offset_ = 0;
  bool committed_ = false;
};

}  // namespace amped::io
