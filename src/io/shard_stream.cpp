#include "io/shard_stream.hpp"

#include <unistd.h>

#include <array>
#include <atomic>
#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <filesystem>

#include "io/snapshot.hpp"
#include "util/fault.hpp"
#include "util/logging.hpp"
#include "util/metrics.hpp"
#include "util/thread_pool.hpp"

namespace amped::io {

// ---------------------------------------------------------------------------
// SpilledModeCopy

std::string resolve_spill_dir(const std::string& requested) {
  if (!requested.empty()) return requested;
  const char* env = std::getenv("AMPED_SPILL_DIR");
  if (env != nullptr && *env != '\0') return env;
  return std::filesystem::temp_directory_path().string();
}

namespace {
std::string next_spill_path(const std::string& dir, std::size_t mode) {
  static std::atomic<std::uint64_t> counter{0};
  return dir + "/amped-spill-p" + std::to_string(::getpid()) + "-m" +
         std::to_string(mode) + "-" +
         std::to_string(counter.fetch_add(1)) + ".amptns";
}
}  // namespace

SpilledModeCopy::SpilledModeCopy(const CooTensor& sorted, std::size_t mode,
                                 const std::string& dir,
                                 std::span<const ShardRunStatsRecord> shard_stats,
                                 SpillStats* stats)
    : path_(next_spill_path(resolve_spill_dir(dir), mode)) {
  constexpr int kMaxRebuilds = 3;
  SpillStats local;
  try {
    for (int attempt = 1;; ++attempt) {
      // Transient write failures (injected faults, interrupted syscalls
      // surfaced as TransientError) are retried; each failed attempt's
      // temp file is removed by AtomicFileWriter's destructor.
      fault::retry_transient(
          "spill write",
          [&] { write_snapshot_file(sorted, path_, shard_stats); }, {},
          &local.retries);
      try {
        AMPED_FAULT_POINT("spill.verify");
        // Just written and renamed into place by this process; skip the
        // checksum sweep so mapping stays O(1) instead of O(file).
        map_ = MappedCooTensor(path_, {.verify_checksums = false});
        break;
      } catch (const std::exception& e) {
        // The published file does not map back as a valid snapshot
        // (bitrot, a lying disk, or an injected corruption): the source
        // tensor is still resident, so rebuild instead of aborting.
        std::remove(path_.c_str());
        if (attempt > kMaxRebuilds) {
          throw std::runtime_error("spill: " + path_ +
                                   " failed validation after " +
                                   std::to_string(kMaxRebuilds) +
                                   " rebuilds: " + e.what());
        }
        ++local.rebuilds;
        AMPED_LOG_WARN << "spill: " << path_
                       << " failed validation; rebuilding from the source "
                          "tensor (" << e.what() << ")";
      }
    }
  } catch (...) {
    // No orphan spill files on any failure path: the destructor will not
    // run for a throwing constructor, so unlink here.
    std::remove(path_.c_str());
    throw;
  }
  if (stats != nullptr) {
    stats->retries += local.retries;
    stats->rebuilds += local.rebuilds;
  }
  if (local.retries) {
    metrics::counter("stream.spill_retries")
        .inc(static_cast<std::uint64_t>(local.retries));
  }
  if (local.rebuilds) {
    metrics::counter("stream.spill_rebuilds")
        .inc(static_cast<std::uint64_t>(local.rebuilds));
  }
}

SpilledModeCopy::~SpilledModeCopy() {
  // Unlink before the mapping goes away: POSIX keeps the bytes reachable
  // through the mapping, and the directory entry disappears immediately.
  std::remove(path_.c_str());
}

CooTensor SpilledModeCopy::read_range(nnz_t begin, nnz_t end) const {
  AMPED_FAULT_POINT("spill.read");
  assert(begin <= end && end <= nnz());
  const std::size_t modes = num_modes();
  std::vector<std::vector<index_t>> cols(modes);
  for (std::size_t m = 0; m < modes; ++m) {
    const auto src = map_.indices(m);
    cols[m].assign(src.begin() + static_cast<std::ptrdiff_t>(begin),
                   src.begin() + static_cast<std::ptrdiff_t>(end));
  }
  const auto vals = map_.values();
  return CooTensor::from_parts(
      map_.dims(), std::move(cols),
      std::vector<value_t>(vals.begin() + static_cast<std::ptrdiff_t>(begin),
                           vals.begin() + static_cast<std::ptrdiff_t>(end)));
}

// ---------------------------------------------------------------------------
// ShardStreamer

namespace {
enum SlotState { kIdle, kQueued, kRunning, kDone, kCancelled };
}  // namespace

struct ShardStreamer::Slot {
  std::mutex mutex;
  std::condition_variable cv;
  int state = kIdle;
  std::size_t pos = 0;
  CooTensor buffer;
  BudgetReservation charge;
  std::exception_ptr error;
};

struct ShardStreamer::StreamState {
  const SpilledModeCopy* spill = nullptr;
  std::vector<std::pair<nnz_t, nnz_t>> ranges;
  std::array<Slot, 2> slots;

  // Fetches range `pos` into `slot` (caller already moved it to
  // kRunning). Never throws: failures land in slot.error.
  void load(Slot& slot, std::size_t pos) {
    CooTensor buffer;
    BudgetReservation charge;
    std::exception_ptr error;
    try {
      // Transient read-ahead failures (injected faults, EINTR-class
      // conditions) retry with bounded backoff before the error is
      // surfaced to the consumer at acquire().
      fault::retry_transient("shard stream read-ahead", [&] {
        AMPED_FAULT_POINT("stream.readahead");
        const auto [begin, end] = ranges[pos];
        charge = BudgetReservation(
            HostMemoryBudget::global(),
            (end - begin) * spill->bytes_per_nnz(), "shard stream buffer");
        buffer = spill->read_range(begin, end);
      });
    } catch (...) {
      error = std::current_exception();
    }
    std::lock_guard lock(slot.mutex);
    slot.buffer = std::move(buffer);
    slot.charge = std::move(charge);
    slot.error = error;
    slot.state = kDone;
    slot.cv.notify_all();
  }
};

ShardStreamer::ShardStreamer(const CooTensor& resident)
    : resident_(&resident) {}

ShardStreamer::ShardStreamer(const SpilledModeCopy& spill,
                             std::vector<std::pair<nnz_t, nnz_t>> ranges)
    : state_(std::make_shared<StreamState>()) {
  state_->spill = &spill;
  state_->ranges = std::move(ranges);
  if (!state_->ranges.empty()) schedule(0);
}

ShardStreamer::~ShardStreamer() {
  if (!state_) return;
  for (auto& slot : state_->slots) {
    std::unique_lock lock(slot.mutex);
    if (slot.state == kQueued) {
      // The pool task will observe the cancellation and return without
      // touching the (about to be invalid) spill source.
      slot.state = kCancelled;
    } else if (slot.state == kRunning) {
      slot.cv.wait(lock, [&] { return slot.state == kDone; });
    }
  }
}

void ShardStreamer::schedule(std::size_t pos) {
  auto& slot = state_->slots[pos % 2];
  {
    std::lock_guard lock(slot.mutex);
    assert(slot.state == kIdle);
    slot.state = kQueued;
    slot.pos = pos;
    slot.error = nullptr;
  }
  // The task shares ownership of the state so a load queued behind busy
  // workers stays valid even if the streamer is destroyed first.
  global_thread_pool().submit([state = state_, pos] {
    auto& s = state->slots[pos % 2];
    {
      std::lock_guard lock(s.mutex);
      if (s.state != kQueued || s.pos != pos) return;  // claimed/cancelled
      s.state = kRunning;
    }
    state->load(s, pos);
  });
}

ShardStreamer::View ShardStreamer::acquire(std::size_t pos) {
  if (resident_ != nullptr) return {resident_, 0};
  auto& st = *state_;
  assert(pos < st.ranges.size());
  if (pos >= 1) {
    // The caller is done with pos-1's view; recycle its slot for the
    // next read-ahead.
    auto& prev = st.slots[(pos - 1) % 2];
    std::lock_guard lock(prev.mutex);
    assert(prev.state == kDone && prev.pos == pos - 1);
    prev.buffer = CooTensor{};
    prev.charge.reset();
    prev.state = kIdle;
  }
  if (pos + 1 < st.ranges.size()) schedule(pos + 1);

  auto& slot = st.slots[pos % 2];
  std::unique_lock lock(slot.mutex);
  if (slot.state == kQueued && slot.pos == pos) {
    // All workers busy — claim the queued load and run it inline rather
    // than blocking on a task that cannot start.
    static metrics::Counter& inline_loads =
        metrics::counter("stream.inline_loads");
    inline_loads.inc();
    slot.state = kRunning;
    lock.unlock();
    st.load(slot, pos);
    lock.lock();
  } else {
    // The read-ahead pool either delivered already or is in flight: the
    // double-buffering did its job.
    static metrics::Counter& readahead_hits =
        metrics::counter("stream.readahead_hits");
    readahead_hits.inc();
  }
  slot.cv.wait(lock, [&] { return slot.state == kDone && slot.pos == pos; });
  if (slot.error) {
    const auto error = slot.error;
    lock.unlock();
    std::rethrow_exception(error);
  }
  return {&slot.buffer, st.ranges[pos].first};
}

}  // namespace amped::io
