#include "io/mapped_tensor.hpp"

#include <cassert>
#include <cstring>
#include <stdexcept>

namespace amped::io {

MappedCooTensor::MappedCooTensor(const std::string& path, Options options)
    : file_(path) {
  if (file_.size() >= 8 &&
      std::memcmp(file_.data(), kSnapshotMagicV1, 8) == 0) {
    throw std::runtime_error(
        "snapshot: " + path +
        " is a v1 snapshot, which cannot be mapped zero-copy; convert it "
        "with write_snapshot_file(read_snapshot_file(path), path)");
  }
  view_ = parse_snapshot({file_.data(), file_.size()},
                         options.verify_checksums, path);
}

void MappedCooTensor::coords_of(nnz_t n, std::span<index_t> out) const {
  assert(n < nnz() && out.size() >= num_modes());
  for (std::size_t m = 0; m < num_modes(); ++m) {
    out[m] = view_.indices[m][n];
  }
}

bool MappedCooTensor::indices_in_bounds() const {
  for (std::size_t m = 0; m < num_modes(); ++m) {
    for (index_t idx : view_.indices[m]) {
      if (idx >= view_.dims[m]) return false;
    }
  }
  return true;
}

std::string MappedCooTensor::shape_string() const {
  return amped::shape_string(view_.dims, nnz());
}

CooTensor MappedCooTensor::materialize() const {
  if (view_.dims.empty()) return CooTensor{};
  std::vector<std::vector<index_t>> cols;
  cols.reserve(num_modes());
  for (const auto& span : view_.indices) {
    cols.emplace_back(span.begin(), span.end());
  }
  return CooTensor::from_parts(
      view_.dims, std::move(cols),
      std::vector<value_t>(view_.values.begin(), view_.values.end()));
}

}  // namespace amped::io
