// Parallel FROSTT `.tns` ingest.
//
// Text parsing was the serial preamble in front of every real-dataset run;
// this module turns it into a parallel hot path: the file is mapped, cut
// into byte ranges split on newline boundaries, and each range is parsed
// into its own SoA block (plus per-mode index maxima) by a task on the
// global thread pool, using std::from_chars instead of iostream
// extraction. Blocks are then concatenated in chunk order, so the result
// is byte-for-byte identical to the serial `read_tns` — including which
// line a malformed input is reported on.
//
// Accepts everything the hardened serial parser accepts: `#` comments, an
// optional `# dims: ...` header, CRLF line endings, and leading/trailing
// whitespace. Malformed input throws std::runtime_error naming the
// 1-based line number.
#pragma once

#include <string>
#include <string_view>

#include "tensor/coo_tensor.hpp"

namespace amped::io {

// Parses a whole `.tns` text held in memory. `chunk_hint` caps the number
// of parallel chunks (0 = derive from the pool size and text length; 1 =
// serial).
CooTensor read_tns_text(std::string_view text, std::size_t chunk_hint = 0);

// Maps `path` and parses it with read_tns_text.
CooTensor read_tns_file_parallel(const std::string& path,
                                 std::size_t chunk_hint = 0);

}  // namespace amped::io
