// Read-only memory-mapped file, RAII.
//
// The storage engine's zero-copy paths — snapshot reloads, spilled shard
// streams, and the parallel text-ingest scanner — all start from a mapped
// byte range: the kernel pages data in on first touch and can evict it
// under memory pressure, which is exactly the disk→host tier of the
// streaming hierarchy. POSIX mmap only; this project targets Linux hosts
// (the container toolchain) and falls back to nothing else.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>

namespace amped::io {

class MappedFile {
 public:
  MappedFile() = default;
  // Opens and maps `path` read-only. Throws std::runtime_error when the
  // file cannot be opened or mapped. Empty files map to a null range.
  explicit MappedFile(const std::string& path);
  ~MappedFile();

  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;
  MappedFile(MappedFile&& other) noexcept;
  MappedFile& operator=(MappedFile&& other) noexcept;

  const std::byte* data() const { return data_; }
  std::size_t size() const { return size_; }
  std::string_view view() const {
    return {reinterpret_cast<const char*>(data_), size_};
  }
  const std::string& path() const { return path_; }

 private:
  void unmap() noexcept;

  std::string path_;
  const std::byte* data_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace amped::io
