// MappedCooTensor: an mmap-backed, zero-copy view of a v2 snapshot.
//
// Reloading a billion-nonzero tensor from a `.amptns` snapshot should cost
// neither a parse nor a copy: the 64-byte-aligned SoA segments of the v2
// layout are consumed in place as typed arrays over the mapping, so "load"
// is an mmap plus header validation, and pages stream in from disk on
// first touch (and can be evicted again under memory pressure) — the
// disk→host tier of the streaming hierarchy.
//
// The class mirrors the read-side `std::span` accessors of `CooTensor`, so
// generic code (e.g. `AmpedTensor::build`) works on either; `materialize()`
// produces an owned copy when mutation is needed. v1 snapshots cannot be
// mapped (no alignment, no checksums) — re-write them with
// `write_snapshot_file` first; `read_snapshot_file` converts transparently.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "io/mapped_file.hpp"
#include "io/snapshot.hpp"
#include "tensor/coo_tensor.hpp"

namespace amped::io {

// Open options for MappedCooTensor (a namespace-level struct so it can be
// a defaulted constructor argument).
struct MapOptions {
  // Hash every segment against its stored checksum at open. Costs one
  // sequential read of the file; disable only for sources written and
  // verified in-process (e.g. spill files).
  bool verify_checksums = true;
};

class MappedCooTensor {
 public:
  using Options = MapOptions;

  MappedCooTensor() = default;
  // Maps `path` (must be a v2 snapshot) and validates its structure.
  // Throws std::runtime_error on open/structure/checksum failure.
  explicit MappedCooTensor(const std::string& path,
                           Options options = Options{});

  MappedCooTensor(MappedCooTensor&&) noexcept = default;
  MappedCooTensor& operator=(MappedCooTensor&&) noexcept = default;

  // --- read accessors mirroring CooTensor ---
  std::size_t num_modes() const { return view_.dims.size(); }
  nnz_t nnz() const { return view_.nnz; }
  const std::vector<index_t>& dims() const { return view_.dims; }
  index_t dim(std::size_t mode) const { return view_.dims[mode]; }
  std::span<const index_t> indices(std::size_t mode) const {
    return view_.indices[mode];
  }
  std::span<const value_t> values() const { return view_.values; }
  std::size_t bytes_per_nnz() const {
    return num_modes() * sizeof(index_t) + sizeof(value_t);
  }
  std::size_t storage_bytes() const { return nnz() * bytes_per_nnz(); }
  void coords_of(nnz_t n, std::span<index_t> out) const;
  bool indices_in_bounds() const;
  std::string shape_string() const;

  // Owned deep copy (one memcpy per array; still no parse).
  CooTensor materialize() const;

  const std::string& path() const { return file_.path(); }
  // Bytes of the underlying file mapping.
  std::size_t mapped_bytes() const { return file_.size(); }
  // Optional per-shard run structure (empty unless the snapshot carries
  // the run-stats segment written at spill time).
  std::span<const ShardRunStatsRecord> shard_run_stats() const {
    return view_.shard_stats;
  }

 private:
  MappedFile file_;
  SnapshotView view_;
};

}  // namespace amped::io
