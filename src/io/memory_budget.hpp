// Host-memory budget accounting for the out-of-core storage engine.
//
// The paper's host-residency assumption (§4.4) — N sorted tensor copies
// live in CPU memory — breaks when the tensor is large enough that even
// *host* RAM cannot hold them. `HostMemoryBudget` is the accounting layer
// that lets the rest of the system notice: large allocations (AmpedTensor
// mode copies, shard stream buffers) are charged against a process-wide
// budget, and `AmpedTensor::build` switches to the spill-to-disk path when
// the resident footprint would not fit. A zero limit means "unlimited":
// charges are still tracked (so peak usage is always reportable) but never
// rejected.
//
// The limit comes from, in priority order: set_limit() (the
// `--memory-budget` CLI flag routes here) → the AMPED_MEMORY_BUDGET
// environment variable → unlimited. Sizes accept K/M/G/T suffixes
// ("512M", "2GiB", "1073741824").
//
// Tracked means *registered* allocations only — the mode copies and
// stream buffers that dominate at scale — not transient sort scratch or
// small metadata, which are bounded by what is already charged.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>

namespace amped::io {

// Parses "1024", "64K", "512M", "2G", "1T" (optionally followed by "B" or
// "iB", case-insensitive) into bytes. Throws std::runtime_error on
// malformed input.
std::uint64_t parse_byte_size(const std::string& text);

// "1.5 GiB"-style rendering for logs and example output.
std::string format_bytes(std::uint64_t bytes);

class HostMemoryBudget {
 public:
  // Process-wide budget; first use loads AMPED_MEMORY_BUDGET if set.
  static HostMemoryBudget& global();

  // 0 = unlimited. Overrides any environment-derived limit.
  void set_limit(std::uint64_t bytes);
  std::uint64_t limit() const;

  std::uint64_t in_use() const;
  std::uint64_t peak() const;
  // Bytes still chargeable; UINT64_MAX when unlimited.
  std::uint64_t remaining() const;
  void reset_peak();

  // Registers `bytes` of tracked allocation. Throws std::runtime_error
  // naming `what` when the charge would exceed a nonzero limit.
  void charge(std::uint64_t bytes, const char* what);
  void release(std::uint64_t bytes);

 private:
  HostMemoryBudget();

  mutable std::mutex mutex_;
  std::uint64_t limit_ = 0;
  std::uint64_t in_use_ = 0;
  std::uint64_t peak_ = 0;
};

// RAII charge against a budget: releases on destruction. Movable so it can
// live inside containers and be handed to pool tasks.
class BudgetReservation {
 public:
  BudgetReservation() = default;
  BudgetReservation(HostMemoryBudget& budget, std::uint64_t bytes,
                    const char* what);
  ~BudgetReservation();

  BudgetReservation(const BudgetReservation&) = delete;
  BudgetReservation& operator=(const BudgetReservation&) = delete;
  BudgetReservation(BudgetReservation&& other) noexcept;
  BudgetReservation& operator=(BudgetReservation&& other) noexcept;

  std::uint64_t bytes() const { return bytes_; }
  // Releases the charge early (idempotent).
  void reset();

 private:
  HostMemoryBudget* budget_ = nullptr;
  std::uint64_t bytes_ = 0;
};

}  // namespace amped::io
