// Disk tier of the shard streaming hierarchy: spilled mode copies and the
// double-buffered shard streamer.
//
// The paper streams shards host→GPU from N resident sorted copies (§4.4).
// When the host memory budget cannot hold those copies,
// `AmpedTensor::build` spills each finished copy to a snapshot-v2 file and
// execution extends the hierarchy one level down: disk→host→GPU. A
// `SpilledModeCopy` owns one spilled file (mapped, deleted on
// destruction); a `ShardStreamer` feeds the executor shard payloads from
// either a resident copy (zero-cost views) or a spilled one
// (double-buffered: a read-ahead task on the global thread pool fetches
// shard i+1 while shard i computes — a host-side copy engine, mirroring
// the device-side double buffering of `execute_pipelined`).
//
// Read-ahead tasks are *claimable*: if every pool worker is busy (the
// per-GPU executor loops run on the same pool), the consumer claims the
// queued task and loads inline instead of blocking on an unstarted task —
// overlap is opportunistic, deadlock is impossible. Stream buffers are
// charged against the HostMemoryBudget, so tracked peak usage stays under
// the configured limit end to end.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "io/mapped_tensor.hpp"
#include "io/memory_budget.hpp"
#include "tensor/coo_tensor.hpp"

namespace amped::io {

// Recovery accounting of one spill (fault-injection tests and the build
// report read these): transient write attempts retried, and corrupt
// files rebuilt from the still-resident source tensor.
struct SpillStats {
  std::size_t retries = 0;
  std::size_t rebuilds = 0;
};

// A mode copy that lives on disk as a snapshot-v2 file instead of in host
// memory. The file is written on construction (atomic rename, checksums)
// and unlinked on destruction; reads go through a persistent mapping, so
// the kernel's page cache — not resident vectors — backs repeated sweeps.
class SpilledModeCopy {
 public:
  // Spills `sorted` (the mode-`mode` sorted copy) to a new file under
  // `dir` (empty = AMPED_SPILL_DIR env or the system temp directory).
  // `shard_stats`, when nonempty, is persisted as the snapshot's
  // run-stats segment: the per-shard run structure of the partition the
  // copy was built under, so schedulers can price spilled shards exactly
  // without re-reading the file.
  //
  // Failure handling: transient write errors (injected faults, EINTR
  // class) are retried with bounded backoff; a written file that fails
  // validation when mapped back is unlinked and rebuilt from `sorted`
  // (bounded attempts). On permanent failure the constructor throws and
  // leaves no file behind. `stats`, when non-null, accumulates the
  // recovery work performed.
  SpilledModeCopy(const CooTensor& sorted, std::size_t mode,
                  const std::string& dir,
                  std::span<const ShardRunStatsRecord> shard_stats = {},
                  SpillStats* stats = nullptr);
  ~SpilledModeCopy();

  SpilledModeCopy(const SpilledModeCopy&) = delete;
  SpilledModeCopy& operator=(const SpilledModeCopy&) = delete;

  std::size_t num_modes() const { return map_.num_modes(); }
  nnz_t nnz() const { return map_.nnz(); }
  const std::vector<index_t>& dims() const { return map_.dims(); }
  std::size_t bytes_per_nnz() const { return map_.bytes_per_nnz(); }
  const std::string& path() const { return path_; }
  std::uint64_t file_bytes() const { return map_.mapped_bytes(); }
  // Per-shard run structure persisted at spill time (empty on files
  // written without it).
  std::span<const ShardRunStatsRecord> shard_run_stats() const {
    return map_.shard_run_stats();
  }

  // Copies elements [begin, end) of the sorted copy into an owned tensor
  // (the stream buffer). Budget accounting is the caller's concern.
  CooTensor read_range(nnz_t begin, nnz_t end) const;

 private:
  std::string path_;
  MappedCooTensor map_;
};

// Resolves the spill directory: `requested` if nonempty, else the
// AMPED_SPILL_DIR environment variable, else the system temp directory.
std::string resolve_spill_dir(const std::string& requested);

// Sequential-position shard fetcher over one mode copy. Construction
// declares the fetch order (absolute [begin, end) nnz ranges); acquire(p)
// blocks until range p is resident and schedules read-ahead of p+1.
// Positions must be acquired in order; the view returned for p stays
// valid until acquire(p + 1).
class ShardStreamer {
 public:
  struct View {
    const CooTensor* data = nullptr;  // backing elements
    nnz_t base = 0;  // absolute nnz index of data's element 0
  };

  // Resident source: every view is the copy itself (base 0), no buffering.
  explicit ShardStreamer(const CooTensor& resident);

  // Disk source: ranges stream through two budget-charged buffers.
  ShardStreamer(const SpilledModeCopy& spill,
                std::vector<std::pair<nnz_t, nnz_t>> ranges);

  ~ShardStreamer();

  ShardStreamer(const ShardStreamer&) = delete;
  ShardStreamer& operator=(const ShardStreamer&) = delete;

  View acquire(std::size_t pos);

 private:
  struct Slot;
  struct StreamState;

  void schedule(std::size_t pos);

  const CooTensor* resident_ = nullptr;
  // Shared with pool tasks so a queued load can outlive the streamer
  // (cancelled loads never touch the spill source).
  std::shared_ptr<StreamState> state_;
};

}  // namespace amped::io
