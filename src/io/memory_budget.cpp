#include "io/memory_budget.hpp"

#include <cctype>
#include <cstdlib>
#include <sstream>
#include <stdexcept>

#include "util/logging.hpp"
#include "util/metrics.hpp"

namespace amped::io {

namespace {

// Budget observables: the gauges track the live/high-water byte counts
// (mirrors of in_use_/peak_ for the metrics snapshot), the counter every
// charge the limit rejected. Updated inside the budget's own lock, which
// is fine — the registry never locks back into the budget.
metrics::Gauge& in_use_gauge() {
  static metrics::Gauge& g = metrics::gauge("budget.in_use_bytes");
  return g;
}
metrics::Gauge& peak_gauge() {
  static metrics::Gauge& g = metrics::gauge("budget.peak_bytes");
  return g;
}
metrics::Counter& rejections_counter() {
  static metrics::Counter& c = metrics::counter("budget.rejections");
  return c;
}

}  // namespace

std::uint64_t parse_byte_size(const std::string& text) {
  if (text.empty()) {
    throw std::runtime_error("parse_byte_size: empty size string");
  }
  if (!std::isdigit(static_cast<unsigned char>(text.front()))) {
    // stoull would silently wrap "-512" to a huge value; sizes are
    // unsigned digits only.
    throw std::runtime_error("parse_byte_size: not a size: '" + text + "'");
  }
  std::size_t pos = 0;
  unsigned long long value = 0;
  try {
    value = std::stoull(text, &pos, 10);
  } catch (const std::exception&) {
    throw std::runtime_error("parse_byte_size: not a size: '" + text + "'");
  }
  // Optional suffix: K/M/G/T, optionally followed by "B" or "iB".
  std::uint64_t multiplier = 1;
  if (pos < text.size()) {
    switch (std::toupper(static_cast<unsigned char>(text[pos]))) {
      case 'K': multiplier = 1ull << 10; ++pos; break;
      case 'M': multiplier = 1ull << 20; ++pos; break;
      case 'G': multiplier = 1ull << 30; ++pos; break;
      case 'T': multiplier = 1ull << 40; ++pos; break;
      case 'B': break;  // bare "B" handled below
      default:
        throw std::runtime_error("parse_byte_size: bad suffix in '" + text +
                                 "'");
    }
    if (pos < text.size() &&
        std::tolower(static_cast<unsigned char>(text[pos])) == 'i') {
      ++pos;
    }
    if (pos < text.size() &&
        std::toupper(static_cast<unsigned char>(text[pos])) == 'B') {
      ++pos;
    }
    if (pos != text.size()) {
      throw std::runtime_error("parse_byte_size: bad suffix in '" + text +
                               "'");
    }
  }
  if (multiplier != 1 && value > UINT64_MAX / multiplier) {
    throw std::runtime_error("parse_byte_size: size overflows 64 bits: '" +
                             text + "'");
  }
  return static_cast<std::uint64_t>(value) * multiplier;
}

std::string format_bytes(std::uint64_t bytes) {
  static constexpr const char* kUnits[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  double v = static_cast<double>(bytes);
  std::size_t unit = 0;
  while (v >= 1024.0 && unit + 1 < std::size(kUnits)) {
    v /= 1024.0;
    ++unit;
  }
  std::ostringstream os;
  os.precision(unit == 0 ? 0 : 1);
  os << std::fixed << v << ' ' << kUnits[unit];
  return os.str();
}

HostMemoryBudget::HostMemoryBudget() {
  const char* env = std::getenv("AMPED_MEMORY_BUDGET");
  if (env != nullptr && *env != '\0') {
    try {
      limit_ = parse_byte_size(env);
    } catch (const std::exception& e) {
      AMPED_LOG_WARN << "ignoring AMPED_MEMORY_BUDGET: " << e.what();
    }
  }
}

HostMemoryBudget& HostMemoryBudget::global() {
  static HostMemoryBudget budget;
  return budget;
}

void HostMemoryBudget::set_limit(std::uint64_t bytes) {
  std::lock_guard lock(mutex_);
  limit_ = bytes;
}

std::uint64_t HostMemoryBudget::limit() const {
  std::lock_guard lock(mutex_);
  return limit_;
}

std::uint64_t HostMemoryBudget::in_use() const {
  std::lock_guard lock(mutex_);
  return in_use_;
}

std::uint64_t HostMemoryBudget::peak() const {
  std::lock_guard lock(mutex_);
  return peak_;
}

std::uint64_t HostMemoryBudget::remaining() const {
  std::lock_guard lock(mutex_);
  if (limit_ == 0) return UINT64_MAX;
  return limit_ > in_use_ ? limit_ - in_use_ : 0;
}

void HostMemoryBudget::reset_peak() {
  std::lock_guard lock(mutex_);
  peak_ = in_use_;
}

void HostMemoryBudget::charge(std::uint64_t bytes, const char* what) {
  std::lock_guard lock(mutex_);
  if (limit_ != 0 && in_use_ + bytes > limit_) {
    rejections_counter().inc();
    throw std::runtime_error(
        std::string("memory budget exceeded: ") + what + " needs " +
        format_bytes(bytes) + " but only " +
        format_bytes(limit_ > in_use_ ? limit_ - in_use_ : 0) + " of " +
        format_bytes(limit_) + " remain");
  }
  in_use_ += bytes;
  if (in_use_ > peak_) peak_ = in_use_;
  in_use_gauge().set(static_cast<double>(in_use_));
  peak_gauge().set_max(static_cast<double>(peak_));
}

void HostMemoryBudget::release(std::uint64_t bytes) {
  std::lock_guard lock(mutex_);
  in_use_ = in_use_ > bytes ? in_use_ - bytes : 0;
  in_use_gauge().set(static_cast<double>(in_use_));
}

BudgetReservation::BudgetReservation(HostMemoryBudget& budget,
                                     std::uint64_t bytes, const char* what)
    : budget_(&budget), bytes_(bytes) {
  budget.charge(bytes, what);  // throws before taking ownership
}

BudgetReservation::~BudgetReservation() { reset(); }

BudgetReservation::BudgetReservation(BudgetReservation&& other) noexcept
    : budget_(other.budget_), bytes_(other.bytes_) {
  other.budget_ = nullptr;
  other.bytes_ = 0;
}

BudgetReservation& BudgetReservation::operator=(
    BudgetReservation&& other) noexcept {
  if (this != &other) {
    reset();
    budget_ = other.budget_;
    bytes_ = other.bytes_;
    other.budget_ = nullptr;
    other.bytes_ = 0;
  }
  return *this;
}

void BudgetReservation::reset() {
  if (budget_ != nullptr && bytes_ != 0) {
    budget_->release(bytes_);
  }
  budget_ = nullptr;
  bytes_ = 0;
}

}  // namespace amped::io
