#include "io/mapped_file.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "util/fault.hpp"

namespace amped::io {

MappedFile::MappedFile(const std::string& path) : path_(path) {
  AMPED_FAULT_POINT("mapped_file.open");
  int fd;
  do {
    fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  } while (fd < 0 && errno == EINTR);
  if (fd < 0) {
    throw std::runtime_error("io: cannot open " + path + ": " +
                             std::strerror(errno));
  }
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    const int err = errno;
    ::close(fd);
    throw std::runtime_error("io: cannot stat " + path + ": " +
                             std::strerror(err));
  }
  size_ = static_cast<std::size_t>(st.st_size);
  if (size_ > 0) {
    try {
      AMPED_FAULT_POINT("mapped_file.mmap");
    } catch (...) {
      ::close(fd);
      throw;
    }
    void* mapped = ::mmap(nullptr, size_, PROT_READ, MAP_PRIVATE, fd, 0);
    if (mapped == MAP_FAILED) {
      const int err = errno;
      ::close(fd);
      throw std::runtime_error("io: cannot mmap " + path + ": " +
                               std::strerror(err));
    }
    data_ = static_cast<const std::byte*>(mapped);
  }
  ::close(fd);  // the mapping keeps the file contents reachable
}

MappedFile::~MappedFile() { unmap(); }

MappedFile::MappedFile(MappedFile&& other) noexcept
    : path_(std::move(other.path_)), data_(other.data_), size_(other.size_) {
  other.data_ = nullptr;
  other.size_ = 0;
}

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this != &other) {
    unmap();
    path_ = std::move(other.path_);
    data_ = other.data_;
    size_ = other.size_;
    other.data_ = nullptr;
    other.size_ = 0;
  }
  return *this;
}

void MappedFile::unmap() noexcept {
  if (data_ != nullptr) {
    ::munmap(const_cast<std::byte*>(data_), size_);
    data_ = nullptr;
    size_ = 0;
  }
}

}  // namespace amped::io
