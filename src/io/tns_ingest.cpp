#include "io/tns_ingest.hpp"

#include <algorithm>
#include <array>
#include <cctype>
#include <charconv>
#include <exception>
#include <optional>
#include <stdexcept>
#include <vector>

#include "io/mapped_file.hpp"
#include "util/fault.hpp"
#include "util/metrics.hpp"
#include "util/thread_pool.hpp"

namespace amped::io {

namespace {

constexpr std::size_t kMinChunkBytes = 1u << 16;

// Ingest observables: how many chunks the parallel parser cut, how many
// bytes they covered, and the per-chunk parse latency distribution.
metrics::Counter& ingest_chunks() {
  static metrics::Counter& c = metrics::counter("ingest.chunks");
  return c;
}
metrics::Counter& ingest_bytes() {
  static metrics::Counter& c = metrics::counter("ingest.bytes");
  return c;
}
metrics::Histogram& ingest_chunk_seconds() {
  static metrics::Histogram& h = metrics::histogram("ingest.chunk_seconds");
  return h;
}

// Parse failure at a byte offset; converted to a 1-based line number once,
// at the top level (counting newlines per line during the parallel scan
// would serialise it).
struct TnsParseAt {
  std::size_t offset;
  std::string what;
};

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error("tns_io: " + what);
}

[[noreturn]] void fail_at(std::string_view text, std::size_t offset,
                          const std::string& what) {
  const auto line =
      1 + std::count(text.begin(),
                     text.begin() + static_cast<std::ptrdiff_t>(offset),
                     '\n');
  fail(what + " (line " + std::to_string(line) + ")");
}

bool is_space(char c) {
  return std::isspace(static_cast<unsigned char>(c)) != 0;
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && is_space(s.front())) s.remove_prefix(1);
  while (!s.empty() && is_space(s.back())) s.remove_suffix(1);
  return s;
}

// Greedy prefix-of-doubles scan with istream extraction semantics: parse
// until the first token that does not start with a number, silently
// ignoring the rest of the line (exactly what `while (stream >> f)` does).
void parse_fields(std::string_view line, std::vector<double>& fields) {
  fields.clear();
  const char* p = line.data();
  const char* end = p + line.size();
  while (true) {
    while (p != end && is_space(*p)) ++p;
    if (p == end) return;
    // istream extraction accepts an explicit leading '+'; from_chars does
    // not, so strip it to keep the two parsers byte-for-byte equivalent.
    const char* q = p;
    if (*q == '+' && q + 1 != end) ++q;
    double v = 0.0;
    auto [ptr, ec] = std::from_chars(q, end, v);
    if (ec != std::errc()) return;
    fields.push_back(v);
    p = ptr;
  }
}

struct Chunk {
  std::size_t begin = 0;
  std::size_t end = 0;
};

// Cuts [0, text.size()) into at most `max_chunks` ranges whose boundaries
// fall just after a newline.
std::vector<Chunk> split_chunks(std::string_view text,
                                std::size_t max_chunks) {
  std::vector<Chunk> chunks;
  if (text.empty()) return chunks;
  const std::size_t approx = text.size() / max_chunks;
  std::size_t start = 0;
  for (std::size_t c = 1; c < max_chunks && start < text.size(); ++c) {
    std::size_t target = c * approx;
    if (target <= start) continue;
    const std::size_t nl = text.find('\n', target);
    if (nl == std::string_view::npos || nl + 1 >= text.size()) break;
    chunks.push_back({start, nl + 1});
    start = nl + 1;
  }
  chunks.push_back({start, text.size()});
  return chunks;
}

struct ChunkResult {
  std::size_t num_modes = 0;  // 0 until the chunk sees a data line
  // First data line of the chunk, recorded before any validation: the
  // merge phase uses it to reproduce the serial parser's error position
  // when a chunk's local mode count disagrees with the document's.
  std::size_t first_data_fields = 0;
  std::size_t first_data_offset = 0;
  std::string first_data_line;
  std::vector<std::vector<index_t>> cols;  // 0-based coordinates
  std::vector<value_t> vals;
  std::array<index_t, kMaxModes> maxima{};  // 1-based per-mode maxima
  std::vector<index_t> declared_dims;
};

void parse_chunk(std::string_view text, Chunk chunk, ChunkResult& out) {
  // Fires inside pool workers on the parallel path; the driver folds the
  // exception through its chunk-error channel and rethrows it intact.
  AMPED_FAULT_POINT("ingest.chunk");
  metrics::ScopedLatency latency(ingest_chunk_seconds());
  std::vector<double> fields;
  std::size_t pos = chunk.begin;
  while (pos < chunk.end) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string_view::npos || eol >= chunk.end) eol = chunk.end;
    const std::size_t line_offset = pos;
    const std::string_view line = trim(text.substr(pos, eol - pos));
    pos = eol + 1;

    if (line.empty()) continue;
    if (line.front() == '#') {
      // Optional "# dims: a b c" header.
      const auto dims_pos = line.find("dims:");
      if (dims_pos != std::string_view::npos) {
        const char* p = line.data() + dims_pos + 5;
        const char* end = line.data() + line.size();
        while (true) {
          while (p != end && is_space(*p)) ++p;
          if (p == end) break;
          const char* q = p;  // istream-style optional '+'
          if (*q == '+' && q + 1 != end) ++q;
          index_t d = 0;
          auto [ptr, ec] = std::from_chars(q, end, d);
          if (ec != std::errc()) break;
          out.declared_dims.push_back(d);
          p = ptr;
        }
      }
      continue;
    }

    parse_fields(line, fields);
    if (fields.size() < 2) {
      throw TnsParseAt{line_offset,
                       "line with fewer than 2 fields: " + std::string(line)};
    }
    if (out.first_data_fields == 0) {
      out.first_data_fields = fields.size();
      out.first_data_offset = line_offset;
      out.first_data_line = std::string(line);
      const std::size_t modes = fields.size() - 1;
      if (modes > kMaxModes) throw TnsParseAt{line_offset, "too many modes"};
      out.num_modes = modes;
      out.cols.resize(modes);
    } else if (fields.size() - 1 != out.num_modes) {
      throw TnsParseAt{line_offset, "inconsistent mode count on line: " +
                                        std::string(line)};
    }
    for (std::size_t m = 0; m < out.num_modes; ++m) {
      if (fields[m] < 1) {
        throw TnsParseAt{line_offset, "index < 1 (FROSTT is 1-based): " +
                                          std::string(line)};
      }
      const auto v = static_cast<index_t>(fields[m]);
      out.maxima[m] = std::max(out.maxima[m], v);
      out.cols[m].push_back(v - 1);
    }
    out.vals.push_back(static_cast<value_t>(fields[out.num_modes]));
  }
  ingest_chunks().inc();
  ingest_bytes().inc(chunk.end - chunk.begin);
}

}  // namespace

CooTensor read_tns_text(std::string_view text, std::size_t chunk_hint) {
  std::size_t max_chunks = chunk_hint;
  if (max_chunks == 0) {
    // One chunk per worker, but never chunks so small that per-chunk
    // bookkeeping dominates.
    max_chunks = std::max<std::size_t>(
        1, std::min(host_parallelism(), text.size() / kMinChunkBytes));
  }
  const auto chunks = split_chunks(text, max_chunks);

  std::vector<ChunkResult> results(chunks.size());
  std::optional<TnsParseAt> parse_error;
  std::exception_ptr other_error;
  if (chunks.size() <= 1) {
    try {
      if (!chunks.empty()) parse_chunk(text, chunks[0], results[0]);
    } catch (const TnsParseAt& e) {
      parse_error = e;
    }
  } else {
    std::vector<std::optional<TnsParseAt>> chunk_errors(chunks.size());
    std::vector<std::exception_ptr> chunk_other(chunks.size());
    global_thread_pool().parallel_for(chunks.size(), [&](std::size_t c) {
      try {
        parse_chunk(text, chunks[c], results[c]);
      } catch (const TnsParseAt& e) {
        chunk_errors[c] = e;
      } catch (...) {
        chunk_other[c] = std::current_exception();
      }
    });
    // Report the error earliest in the document, matching where the
    // serial parser would have stopped.
    for (auto& e : chunk_errors) {
      if (e && (!parse_error || e->offset < parse_error->offset)) {
        parse_error = e;
      }
    }
    for (auto& e : chunk_other) {
      if (e && !other_error) other_error = e;
    }
  }
  if (other_error) std::rethrow_exception(other_error);

  // The file's mode count is set by its first data line (the earliest
  // chunk that saw one — chunk order is document order). A chunk whose
  // own first data line disagrees parsed under the wrong local mode
  // count, so any error it raised later is bogus — but its first data
  // line is exactly where the serial parser reports "inconsistent mode
  // count", and that offset precedes every in-chunk error of the same
  // chunk. Folding these candidates into the minimum-offset pick (ties
  // go to the candidate) therefore reproduces the serial error exactly.
  std::size_t first_fields = 0;
  for (const auto& r : results) {
    if (r.first_data_fields != 0) {
      first_fields = r.first_data_fields;
      break;
    }
  }
  for (const auto& r : results) {
    if (r.first_data_fields != 0 && r.first_data_fields != first_fields &&
        (!parse_error || r.first_data_offset <= parse_error->offset)) {
      parse_error =
          TnsParseAt{r.first_data_offset,
                     "inconsistent mode count on line: " + r.first_data_line};
    }
  }
  if (parse_error) fail_at(text, parse_error->offset, parse_error->what);
  const std::size_t num_modes = first_fields == 0 ? 0 : first_fields - 1;
  if (num_modes == 0) fail("empty tensor stream");

  std::vector<index_t> dims(num_modes, 0);
  std::vector<index_t> declared_dims;
  nnz_t total = 0;
  for (const auto& r : results) {
    for (std::size_t m = 0; m < num_modes && r.num_modes != 0; ++m) {
      dims[m] = std::max(dims[m], r.maxima[m]);
    }
    declared_dims.insert(declared_dims.end(), r.declared_dims.begin(),
                         r.declared_dims.end());
    total += r.vals.size();
  }
  if (!declared_dims.empty()) {
    if (declared_dims.size() != num_modes) fail("dims header mode mismatch");
    for (std::size_t m = 0; m < num_modes; ++m) {
      if (declared_dims[m] < dims[m]) fail("dims header smaller than data");
      dims[m] = declared_dims[m];
    }
  }

  std::vector<std::vector<index_t>> cols(num_modes);
  std::vector<value_t> vals;
  for (std::size_t m = 0; m < num_modes; ++m) cols[m].reserve(total);
  vals.reserve(total);
  for (auto& r : results) {
    if (r.num_modes == 0) continue;
    for (std::size_t m = 0; m < num_modes; ++m) {
      cols[m].insert(cols[m].end(), r.cols[m].begin(), r.cols[m].end());
    }
    vals.insert(vals.end(), r.vals.begin(), r.vals.end());
  }
  return CooTensor::from_parts(std::move(dims), std::move(cols),
                               std::move(vals));
}

CooTensor read_tns_file_parallel(const std::string& path,
                                 std::size_t chunk_hint) {
  MappedFile file(path);
  return read_tns_text(file.view(), chunk_hint);
}

}  // namespace amped::io
