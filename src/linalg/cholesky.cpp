#include "linalg/cholesky.hpp"

#include <cassert>
#include <cmath>
#include <stdexcept>

#include "util/logging.hpp"

namespace amped::linalg {

std::optional<DenseMatrix> cholesky(const DenseMatrix& m, double ridge) {
  assert(m.rows() == m.cols());
  const std::size_t n = m.rows();
  DenseMatrix l(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      double sum = static_cast<double>(m(i, j));
      if (i == j) sum += ridge;
      for (std::size_t k = 0; k < j; ++k) {
        sum -= static_cast<double>(l(i, k)) * l(j, k);
      }
      if (i == j) {
        if (sum <= 0.0) return std::nullopt;
        l(i, j) = static_cast<value_t>(std::sqrt(sum));
      } else {
        l(i, j) = static_cast<value_t>(sum / l(j, j));
      }
    }
  }
  return l;
}

void cholesky_solve_inplace(const DenseMatrix& l, std::span<value_t> b) {
  const std::size_t n = l.rows();
  assert(b.size() == n);
  // Forward substitution L y = b.
  for (std::size_t i = 0; i < n; ++i) {
    double sum = b[i];
    for (std::size_t k = 0; k < i; ++k) {
      sum -= static_cast<double>(l(i, k)) * b[k];
    }
    b[i] = static_cast<value_t>(sum / l(i, i));
  }
  // Backward substitution L^T x = y.
  for (std::size_t ii = n; ii-- > 0;) {
    double sum = b[ii];
    for (std::size_t k = ii + 1; k < n; ++k) {
      sum -= static_cast<double>(l(k, ii)) * b[k];
    }
    b[ii] = static_cast<value_t>(sum / l(ii, ii));
  }
}

void solve_normal_equations(const DenseMatrix& m, DenseMatrix& rhs) {
  assert(m.rows() == m.cols() && m.cols() == rhs.cols());
  double ridge = 0.0;
  std::optional<DenseMatrix> l = cholesky(m, ridge);
  // Rank-deficient Grams happen with unlucky initialisations; regularise
  // with a ridge that grows until the factorisation succeeds.
  double trace = 0.0;
  for (std::size_t i = 0; i < m.rows(); ++i) trace += m(i, i);
  double step = std::max(1e-12, 1e-10 * trace / static_cast<double>(m.rows()));
  while (!l) {
    ridge = ridge == 0.0 ? step : ridge * 10.0;
    if (ridge > 1e6 * step) {
      throw std::runtime_error(
          "cholesky: gram matrix irrecoverably singular (ridge grew to " +
          std::to_string(ridge) + " without a positive-definite "
          "factorisation — degenerate factors or corrupt input)");
    }
    l = cholesky(m, ridge);
  }
  if (ridge != 0.0) {
    // The solve succeeded only after regularisation: the gram was
    // (numerically) singular. The run continues — ridge regression is
    // the standard ALS remedy — but the conditioning problem is worth a
    // diagnostic, not silence.
    AMPED_LOG_WARN << "cholesky: singular gram matrix regularised with "
                   << "ridge " << ridge << " (trace " << trace << ")";
  }
  for (std::size_t row = 0; row < rhs.rows(); ++row) {
    cholesky_solve_inplace(*l, rhs.row(row));
  }
}

}  // namespace amped::linalg
