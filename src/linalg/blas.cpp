#include "linalg/blas.hpp"

#include <cassert>
#include <cmath>

namespace amped::linalg {

DenseMatrix gram(const DenseMatrix& a) {
  const std::size_t r = a.cols();
  DenseMatrix g(r, r);
  for (std::size_t row = 0; row < a.rows(); ++row) {
    const auto ar = a.row(row);
    for (std::size_t i = 0; i < r; ++i) {
      const double ai = ar[i];
      for (std::size_t j = i; j < r; ++j) {
        g(i, j) += static_cast<value_t>(ai * ar[j]);
      }
    }
  }
  for (std::size_t i = 0; i < r; ++i) {
    for (std::size_t j = 0; j < i; ++j) g(i, j) = g(j, i);
  }
  return g;
}

DenseMatrix hadamard(const DenseMatrix& a, const DenseMatrix& b) {
  assert(a.rows() == b.rows() && a.cols() == b.cols());
  DenseMatrix c(a.rows(), a.cols());
  for (std::size_t i = 0; i < a.data().size(); ++i) {
    c.data()[i] = a.data()[i] * b.data()[i];
  }
  return c;
}

DenseMatrix matmul(const DenseMatrix& a, const DenseMatrix& b) {
  assert(a.cols() == b.rows());
  DenseMatrix c(a.rows(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const value_t aik = a(i, k);
      if (aik == value_t{0}) continue;
      for (std::size_t j = 0; j < b.cols(); ++j) {
        c(i, j) += aik * b(k, j);
      }
    }
  }
  return c;
}

void scale_column(DenseMatrix& a, std::size_t c, value_t s) {
  for (std::size_t i = 0; i < a.rows(); ++i) a(i, c) *= s;
}

double column_norm(const DenseMatrix& a, std::size_t c) {
  double acc = 0.0;
  for (std::size_t i = 0; i < a.rows(); ++i) {
    acc += static_cast<double>(a(i, c)) * a(i, c);
  }
  return std::sqrt(acc);
}

double dot(const DenseMatrix& a, const DenseMatrix& b) {
  assert(a.rows() == b.rows() && a.cols() == b.cols());
  double acc = 0.0;
  for (std::size_t i = 0; i < a.data().size(); ++i) {
    acc += static_cast<double>(a.data()[i]) * b.data()[i];
  }
  return acc;
}

}  // namespace amped::linalg
