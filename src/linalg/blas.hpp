// Small dense linear algebra for CPD-ALS.
//
// ALS needs only rank x rank (R <= 64) operations beyond MTTKRP: Gram
// matrices of the tall factor matrices, elementwise (Hadamard) products of
// those Grams, and a solve against the MTTKRP output. Everything here is
// simple loop nests — the matrices are tiny, so clarity beats blocking.
#pragma once

#include "tensor/dense_matrix.hpp"

namespace amped::linalg {

// C = A^T * A, for a tall matrix A (rows x R). Result is R x R symmetric.
DenseMatrix gram(const DenseMatrix& a);

// C = A .* B elementwise; shapes must match.
DenseMatrix hadamard(const DenseMatrix& a, const DenseMatrix& b);

// C = A * B (naive triple loop; used only for R x R and validation sizes).
DenseMatrix matmul(const DenseMatrix& a, const DenseMatrix& b);

// In-place: scales column c of A by s.
void scale_column(DenseMatrix& a, std::size_t c, value_t s);

// Returns the Euclidean norm of column c.
double column_norm(const DenseMatrix& a, std::size_t c);

// Sum of elementwise products <A, B>; shapes must match.
double dot(const DenseMatrix& a, const DenseMatrix& b);

}  // namespace amped::linalg
