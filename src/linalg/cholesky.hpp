// Cholesky factorisation and solves for the ALS normal equations.
//
// Each ALS step solves  M * X^T = G^T  where M is the Hadamard product of
// Gram matrices (R x R, symmetric positive semi-definite) and G is the
// MTTKRP output (I_d x R). We factor M = L L^T with a small diagonal
// ridge fallback for rank-deficient cases, then back-substitute per row.
#pragma once

#include <optional>

#include "tensor/dense_matrix.hpp"

namespace amped::linalg {

// Lower-triangular Cholesky factor of a symmetric matrix; returns
// std::nullopt when the matrix is not positive definite (after `ridge`
// has been added to the diagonal).
std::optional<DenseMatrix> cholesky(const DenseMatrix& m, double ridge = 0.0);

// Solves L L^T x = b in place for one right-hand side of length R.
void cholesky_solve_inplace(const DenseMatrix& l, std::span<value_t> b);

// Solves M * X_row^T = RHS_row^T for every row of `rhs` (I_d x R), writing
// the solution over `rhs`. Retries with growing ridge if M is singular.
void solve_normal_equations(const DenseMatrix& m, DenseMatrix& rhs);

}  // namespace amped::linalg
