#include "formats/blco.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>

#include "formats/sorting.hpp"
#include "util/radix_sort.hpp"

namespace amped::formats {

namespace {

key128_t full_key(const CooTensor& t, nnz_t e,
                  std::span<const unsigned> bits) {
  key128_t key = 0;
  for (std::size_t m = 0; m < t.num_modes(); ++m) {
    key = (key << bits[m]) | t.indices(m)[e];
  }
  return key;
}
}  // namespace

BlcoTensor BlcoTensor::build(const CooTensor& t, nnz_t max_block_elems) {
  assert(max_block_elems >= 1);
  BlcoTensor out;
  out.dims_ = t.dims();
  out.bits_ = mode_bits(t.dims());
  out.mode_order_.resize(t.num_modes());
  std::iota(out.mode_order_.begin(), out.mode_order_.end(), std::size_t{0});

  unsigned total_bits = 0;
  for (unsigned b : out.bits_) total_bits += b;
  assert(total_bits <= 128 && "tensor index space exceeds 128-bit keys");
  out.low_bits_total_ = std::min(64u, total_bits);

  // Sort by the full linearised key. Keys are materialised once (the old
  // comparator re-linearised both sides on every comparison); tensors
  // whose index space fits 64 bits — all of Table 3 — store 64-bit keys
  // and take the radix path, wider ones keep 128-bit keys and fall back
  // to a comparison sort.
  std::vector<std::uint64_t> keys64;
  std::vector<key128_t> keys128;
  std::vector<nnz_t> perm;
  if (total_bits <= 64) {
    keys64.resize(t.nnz());
    for (nnz_t e = 0; e < t.nnz(); ++e) {
      keys64[e] = static_cast<std::uint64_t>(full_key(t, e, out.bits_));
    }
    perm = util::radix_sort_permutation(keys64, total_bits);
  } else {
    keys128.resize(t.nnz());
    for (nnz_t e = 0; e < t.nnz(); ++e) {
      keys128[e] = full_key(t, e, out.bits_);
    }
    perm.resize(t.nnz());
    std::iota(perm.begin(), perm.end(), nnz_t{0});
    std::sort(perm.begin(), perm.end(),
              [&](nnz_t a, nnz_t b) { return keys128[a] < keys128[b]; });
  }
  auto key_of = [&](nnz_t e) -> key128_t {
    return keys128.empty() ? key128_t{keys64[e]} : keys128[e];
  };

  out.keys_.resize(t.nnz());
  out.values_.resize(t.nnz());
  const key128_t low_mask =
      out.low_bits_total_ == 64 ? ~key128_t{0} >> 64
                                : ((key128_t{1} << out.low_bits_total_) - 1);

  std::uint64_t prev_high = 0;
  for (nnz_t i = 0; i < perm.size(); ++i) {
    const key128_t key = key_of(perm[i]);
    const auto high = static_cast<std::uint64_t>(key >> out.low_bits_total_);
    out.keys_[i] = static_cast<std::uint64_t>(key & low_mask);
    out.values_[i] = t.values()[perm[i]];

    const bool boundary =
        out.blocks_.empty() || high != prev_high ||
        (i - out.blocks_.back().begin) >= max_block_elems;
    if (boundary) {
      if (!out.blocks_.empty()) out.blocks_.back().end = i;
      out.blocks_.push_back(Block{.high_bits = high, .begin = i, .end = i});
      prev_high = high;
    }
  }
  if (!out.blocks_.empty()) out.blocks_.back().end = perm.size();
  return out;
}

std::uint64_t BlcoTensor::storage_bytes() const {
  return keys_.size() * sizeof(std::uint64_t) +
         values_.size() * sizeof(value_t) +
         blocks_.size() * (sizeof(std::uint64_t) + 2 * sizeof(nnz_t));
}

void BlcoTensor::coords_of(nnz_t e, std::span<index_t> out) const {
  auto it = std::upper_bound(
      blocks_.begin(), blocks_.end(), e,
      [](nnz_t v, const Block& b) { return v < b.begin; });
  assert(it != blocks_.begin());
  const Block& b = *(it - 1);
  key128_t key = (key128_t{b.high_bits} << low_bits_total_) | keys_[e];
  for (std::size_t i = num_modes(); i-- > 0;) {
    const std::size_t m = mode_order_[i];
    out[m] = static_cast<index_t>(
        static_cast<std::uint64_t>(key) & ((1ull << bits_[m]) - 1));
    key >>= bits_[m];
  }
}

}  // namespace amped::formats
