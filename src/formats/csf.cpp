#include "formats/csf.hpp"

#include <array>
#include <cassert>
#include <numeric>

#include "formats/sorting.hpp"

namespace amped::formats {

CsfTensor CsfTensor::build(const CooTensor& t,
                           std::vector<std::size_t> mode_order) {
  const std::size_t modes = t.num_modes();
  assert(mode_order.size() == modes);
  CsfTensor out;
  out.mode_order_ = std::move(mode_order);
  out.dims_ = t.dims();

  const auto perm = lexicographic_permutation(t, out.mode_order_);
  const nnz_t n = t.nnz();
  out.levels_.resize(modes - 1);
  out.leaf_idx_.resize(n);
  out.values_.resize(n);

  const std::size_t leaf_mode = out.mode_order_.back();
  for (nnz_t i = 0; i < n; ++i) {
    out.leaf_idx_[i] = t.indices(leaf_mode)[perm[i]];
    out.values_[i] = t.values()[perm[i]];
  }

  // Build levels top-down: a new node starts wherever the prefix
  // (mode_order[0..l]) differs from the previous nonzero's.
  for (std::size_t l = 0; l + 1 < modes; ++l) {
    auto& level = out.levels_[l];
    const std::size_t m = out.mode_order_[l];
    const auto idx = t.indices(m);
    for (nnz_t i = 0; i < n; ++i) {
      bool boundary = (i == 0);
      if (!boundary) {
        for (std::size_t k = 0; k <= l && !boundary; ++k) {
          const auto km = out.mode_order_[k];
          boundary = t.indices(km)[perm[i]] != t.indices(km)[perm[i - 1]];
        }
      }
      if (boundary) {
        level.idx.push_back(idx[perm[i]]);
        level.ptr.push_back(i);  // provisional: nonzero offset of node start
      }
    }
    level.ptr.push_back(n);
  }

  // Convert provisional nonzero offsets into child-node offsets: each
  // level's ptr should index the next level's node array (or leaves for
  // the last level). The last level already points at leaves.
  for (std::size_t l = 0; l + 2 < modes; ++l) {
    auto& level = out.levels_[l];
    const auto& child = out.levels_[l + 1];
    // child.ptr currently holds node-start nonzero offsets (sorted); map
    // each of this level's nonzero offsets to the child node rank.
    std::vector<nnz_t> remapped(level.ptr.size());
    std::size_t cursor = 0;
    for (std::size_t i = 0; i < level.ptr.size(); ++i) {
      while (cursor + 1 < child.ptr.size() &&
             child.ptr[cursor] < level.ptr[i]) {
        ++cursor;
      }
      remapped[i] = cursor;
    }
    remapped.back() = child.idx.size();
    level.ptr = std::move(remapped);
  }
  return out;
}

std::uint64_t CsfTensor::storage_bytes() const {
  std::uint64_t bytes = 0;
  for (const auto& level : levels_) {
    bytes += level.idx.size() * sizeof(index_t) +
             level.ptr.size() * sizeof(nnz_t);
  }
  bytes += leaf_idx_.size() * sizeof(index_t) +
           values_.size() * sizeof(value_t);
  return bytes;
}

std::vector<nnz_t> CsfTensor::level_sizes() const {
  std::vector<nnz_t> out;
  out.reserve(levels_.size() + 1);
  for (const auto& level : levels_) out.push_back(level.idx.size());
  out.push_back(values_.size());
  return out;
}

namespace {

// Accumulates the rank-vector of subtree `node` at `level`, multiplying
// factor rows on the way up — the fiber-wise kernel structure.
void subtree_vector(const CsfTensor& csf, const FactorSet& factors,
                    std::size_t level, nnz_t node, std::span<value_t> acc,
                    CsfTensor::SliceStats& stats) {
  const std::size_t rank = factors.rank();
  std::fill(acc.begin(), acc.end(), value_t{0});

  if (level + 1 == csf.num_levels()) {
    // Children are leaves.
    const auto& lv = csf.level(level);
    const std::size_t leaf_mode = csf.mode_order().back();
    for (nnz_t e = lv.ptr[node]; e < lv.ptr[node + 1]; ++e) {
      const auto row =
          factors.factor(leaf_mode).row(csf.leaf_indices()[e]);
      const value_t v = csf.values()[e];
      for (std::size_t r = 0; r < rank; ++r) acc[r] += v * row[r];
    }
    stats.leaves += lv.ptr[node + 1] - lv.ptr[node];
    return;
  }

  std::array<value_t, 256> child{};
  const auto& lv = csf.level(level);
  const auto& next = csf.level(level + 1);
  const std::size_t child_mode = csf.mode_order()[level + 1];
  for (nnz_t c = lv.ptr[node]; c < lv.ptr[node + 1]; ++c) {
    subtree_vector(csf, factors, level + 1, c,
                   std::span<value_t>(child.data(), rank), stats);
    const auto row = factors.factor(child_mode).row(next.idx[c]);
    for (std::size_t r = 0; r < rank; ++r) acc[r] += child[r] * row[r];
    ++stats.fibers;
  }
}

}  // namespace

void CsfTensor::mttkrp_root(const FactorSet& factors, DenseMatrix& out,
                            std::vector<SliceStats>* slice_stats) const {
  const std::size_t rank = factors.rank();
  assert(out.rows() == dims_[mode_order_[0]] && out.cols() == rank);
  out.set_zero();
  if (slice_stats) {
    slice_stats->clear();
    slice_stats->reserve(levels_[0].idx.size());
  }
  std::array<value_t, 256> acc{};
  const auto& root = levels_[0];
  for (nnz_t node = 0; node + 1 < root.ptr.size(); ++node) {
    SliceStats stats;
    subtree_vector(*this, factors, 0, node,
                   std::span<value_t>(acc.data(), rank), stats);
    auto out_row = out.row(root.idx[node]);
    for (std::size_t r = 0; r < rank; ++r) out_row[r] += acc[r];
    if (slice_stats) slice_stats->push_back(stats);
  }
}

}  // namespace amped::formats
