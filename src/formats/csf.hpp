// Compressed Sparse Fiber (CSF) tensor — the representation behind the
// MM-CSF baseline (Nisa et al., SC'19 / IPDPS'19) and SPLATT-style CPU
// codes.
//
// A CSF tensor is a forest: level 0 holds the distinct indices of the
// root mode, level k the distinct (prefix) indices under each level-k-1
// node, and the leaves hold values. MTTKRP with the *root* mode as output
// needs no atomics at all (each root subtree owns its output row), and
// inner-mode factor rows are loaded once per fiber instead of once per
// nonzero — the efficiency MM-CSF trades against needing one tree per
// output mode (Table 1: "No. of modes" copies).
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/coo_tensor.hpp"
#include "tensor/dense_matrix.hpp"

namespace amped::formats {

class CsfTensor {
 public:
  struct Level {
    std::vector<index_t> idx;  // node indices at this level
    std::vector<nnz_t> ptr;    // children range in the next level / leaves
  };

  // Builds a tree with `mode_order[0]` as root. Default order: the output
  // mode first, remaining modes in ascending order.
  static CsfTensor build(const CooTensor& t,
                         std::vector<std::size_t> mode_order);

  std::size_t num_modes() const { return mode_order_.size(); }
  const std::vector<std::size_t>& mode_order() const { return mode_order_; }
  const std::vector<index_t>& dims() const { return dims_; }
  nnz_t nnz() const { return values_.size(); }

  // Levels 0 .. N-2; leaves are (leaf_idx_, values_).
  const Level& level(std::size_t l) const { return levels_[l]; }
  std::size_t num_levels() const { return levels_.size(); }
  const std::vector<index_t>& leaf_indices() const { return leaf_idx_; }
  const std::vector<value_t>& values() const { return values_; }

  // Structure bytes (idx + ptr arrays + leaves), the number a GPU
  // allocation of this tree would need.
  std::uint64_t storage_bytes() const;

  // Number of fibers (nodes) at each level, root first; leaf count last.
  std::vector<nnz_t> level_sizes() const;

  // Per-root-slice work counts, gathered during mttkrp_root for the
  // simulator's cost model: leaves touched and internal fibers traversed.
  struct SliceStats {
    nnz_t leaves = 0;
    nnz_t fibers = 0;
  };

  // MTTKRP with the root mode as output (no atomics required): out must be
  // dim(root) x R. Accumulates fiber-wise like the GPU kernel would; when
  // `slice_stats` is non-null it receives one entry per root slice.
  void mttkrp_root(const FactorSet& factors, DenseMatrix& out,
                   std::vector<SliceStats>* slice_stats = nullptr) const;

 private:
  std::vector<std::size_t> mode_order_;
  std::vector<index_t> dims_;
  std::vector<Level> levels_;       // N-1 levels
  std::vector<index_t> leaf_idx_;   // leaf-mode index per nonzero
  std::vector<value_t> values_;
};

}  // namespace amped::formats
