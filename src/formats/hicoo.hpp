// HiCOO — Hierarchical COOrdinate format (Li et al., SC'18), the
// representation behind the ParTI-GPU / HiCOO-GPU baselines.
//
// Nonzeros are grouped into B^N blocks (B a power of two); each block
// stores its block coordinates once (index_t each) plus per-element
// offsets within the block in one byte per mode. This compresses a 3-mode
// COO element from 16 to ~7 bytes when blocks are dense — but on very
// sparse billion-scale tensors most blocks hold only a few nonzeros and
// the per-block headers dominate, which is exactly why the paper's
// ParTI-GPU runs out of memory on Reddit while Patents (dense blocks,
// tiny index space) fits.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/coo_tensor.hpp"
#include "tensor/dense_matrix.hpp"

namespace amped::formats {

class HicooTensor {
 public:
  struct Block {
    std::vector<index_t> block_coords;  // per mode, in block units
    nnz_t begin = 0;                    // element range [begin, end)
    nnz_t end = 0;
    nnz_t nnz() const { return end - begin; }
  };

  // `block_bits`: log2 of the block edge length (paper-recommended HiCOO
  // configuration uses 128 = 7 bits).
  static HicooTensor build(const CooTensor& t, unsigned block_bits = 7);

  std::size_t num_modes() const { return dims_.size(); }
  const std::vector<index_t>& dims() const { return dims_; }
  nnz_t nnz() const { return values_.size(); }
  unsigned block_bits() const { return block_bits_; }
  const std::vector<Block>& blocks() const { return blocks_; }

  std::uint64_t storage_bytes() const;

  // Reconstructs the full coordinates of element `e`.
  void coords_of(nnz_t e, std::span<index_t> out) const;

  // Per-block execution statistics for the simulator's cost model.
  struct BlockExecStats {
    nnz_t nnz = 0;
    nnz_t output_runs = 0;
    nnz_t max_run = 0;
    nnz_t max_multiplicity = 0;
  };

  // MTTKRP for `output_mode` into `out` (block-wise kernel with atomics,
  // like ParTI's GPU implementation). Reports per-block stats through
  // `stats` when non-null.
  void mttkrp(const FactorSet& factors, std::size_t output_mode,
              DenseMatrix& out,
              std::vector<BlockExecStats>* stats = nullptr) const;

  std::span<const value_t> values() const { return values_; }

 private:
  std::vector<index_t> dims_;
  unsigned block_bits_ = 7;
  std::vector<Block> blocks_;
  std::vector<std::uint8_t> offsets_;  // modes bytes per element, interleaved
  std::vector<value_t> values_;
};

}  // namespace amped::formats
