#include "formats/sorting.hpp"

#include <cassert>

#include "util/radix_sort.hpp"

namespace amped::formats {

std::vector<nnz_t> lexicographic_permutation(
    const CooTensor& t, std::span<const std::size_t> mode_order) {
  assert(mode_order.size() == t.num_modes());
  std::vector<util::SortKeyColumn> columns;
  columns.reserve(mode_order.size());
  for (std::size_t m : mode_order) {
    columns.push_back({t.indices(m), t.dim(m)});
  }
  return util::lexicographic_sort_permutation(columns);
}

void sort_lexicographic(CooTensor& t,
                        std::span<const std::size_t> mode_order) {
  const auto perm = lexicographic_permutation(t, mode_order);
  t.apply_permutation(perm);
}

std::vector<unsigned> mode_bits(std::span<const index_t> dims) {
  std::vector<unsigned> bits;
  bits.reserve(dims.size());
  for (index_t d : dims) bits.push_back(util::bits_for_bound(d));
  return bits;
}

std::uint64_t pack_coords(std::span<const index_t> coords,
                          std::span<const unsigned> bits,
                          std::span<const std::size_t> mode_order) {
  std::uint64_t key = 0;
  for (std::size_t m : mode_order) {
    key = (key << bits[m]) | coords[m];
  }
  return key;
}

void unpack_coords(std::uint64_t key, std::span<const unsigned> bits,
                   std::span<const std::size_t> mode_order,
                   std::span<index_t> coords_out) {
  for (std::size_t i = mode_order.size(); i-- > 0;) {
    const std::size_t m = mode_order[i];
    coords_out[m] = static_cast<index_t>(key & ((1ull << bits[m]) - 1));
    key >>= bits[m];
  }
}

}  // namespace amped::formats
