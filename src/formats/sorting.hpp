// Coordinate sorting utilities shared by the execution formats.
//
// Every format build starts from a lexicographic sort under some mode
// permutation (CSF's tree order, HiCOO's block-major order, BLCO's
// linearised order). These helpers produce the permutation without moving
// the tensor until the final apply, so a build does one gather per array.
// Permutations come from the LSD radix sort in util/radix_sort.hpp when
// the concatenated mode bits fit 64-bit packed keys, with a comparison
// sort fallback for wider index spaces.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "tensor/coo_tensor.hpp"

namespace amped::formats {

// Permutation sorting nonzeros lexicographically by the given mode order
// (mode_order[0] most significant).
std::vector<nnz_t> lexicographic_permutation(
    const CooTensor& t, std::span<const std::size_t> mode_order);

// In-place lexicographic sort under `mode_order`.
void sort_lexicographic(CooTensor& t, std::span<const std::size_t> mode_order);

// Bits needed to store indices of each mode (at least 1 per mode).
std::vector<unsigned> mode_bits(std::span<const index_t> dims);

// Packs coordinates into a single integer, mode_order[0] in the most
// significant bits. Total bits must be <= 64 for this helper; BLCO's
// block splitting handles wider tensors.
std::uint64_t pack_coords(std::span<const index_t> coords,
                          std::span<const unsigned> bits,
                          std::span<const std::size_t> mode_order);

// Inverse of pack_coords.
void unpack_coords(std::uint64_t key, std::span<const unsigned> bits,
                   std::span<const std::size_t> mode_order,
                   std::span<index_t> coords_out);

}  // namespace amped::formats
