// BLCO — Blocked Linearized COOrdinates (Nguyen et al., ICS'22), the
// format behind the BLCO baseline's out-of-memory streaming execution.
//
// Each nonzero's coordinates are bit-packed into a single 64-bit key.
// When the tensor's index space needs more than 64 bits, the key stream
// is split into blocks whose high-order bits are constant and stored once
// per block — that is the "blocked" part, and it also gives natural
// streaming granularity: the host keeps all blocks and ships them to the
// GPU one at a time per mode (§2.2, "streamed to a single GPU during the
// execution time of each mode computation").
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/coo_tensor.hpp"
#include "tensor/dense_matrix.hpp"

namespace amped::formats {

// 128-bit key wide enough for any supported index space. __extension__
// keeps -Wpedantic quiet about the GCC/Clang builtin.
__extension__ typedef unsigned __int128 key128_t;

class BlcoTensor {
 public:
  struct Block {
    std::uint64_t high_bits = 0;  // shared upper key bits of this block
    nnz_t begin = 0;              // element range [begin, end)
    nnz_t end = 0;
    nnz_t nnz() const { return end - begin; }
    std::uint64_t payload_bytes() const {
      return nnz() * (sizeof(std::uint64_t) + sizeof(value_t));
    }
  };

  // `max_block_elems` bounds the streaming granularity even when the keys
  // fit 64 bits outright (one giant block would defeat streaming).
  static BlcoTensor build(const CooTensor& t, nnz_t max_block_elems = 1 << 24);

  std::size_t num_modes() const { return dims_.size(); }
  const std::vector<index_t>& dims() const { return dims_; }
  nnz_t nnz() const { return values_.size(); }
  const std::vector<Block>& blocks() const { return blocks_; }
  const std::vector<unsigned>& bits() const { return bits_; }

  // 12 bytes per nonzero plus block headers.
  std::uint64_t storage_bytes() const;

  // Recovers the coordinates of element e (de-linearisation, which on the
  // GPU costs the ALU work modelled by the baseline's flop_overhead).
  void coords_of(nnz_t e, std::span<index_t> out) const;

  std::span<const value_t> values() const { return values_; }
  std::span<const std::uint64_t> keys() const { return keys_; }

  // Visits every element of `b` in stream order, decoding coordinates
  // without the per-element binary search of coords_of. `fn` is called as
  // fn(std::span<const index_t> coords, value_t value).
  template <typename Fn>
  void visit_block(const Block& b, Fn&& fn) const {
    index_t coords[kMaxModes];
    for (nnz_t e = b.begin; e < b.end; ++e) {
      key128_t key =
          (static_cast<key128_t>(b.high_bits) << low_bits_total_) | keys_[e];
      for (std::size_t i = num_modes(); i-- > 0;) {
        const std::size_t m = mode_order_[i];
        coords[m] = static_cast<index_t>(
            static_cast<std::uint64_t>(key) & ((1ull << bits_[m]) - 1));
        key >>= bits_[m];
      }
      fn(std::span<const index_t>(coords, num_modes()), values_[e]);
    }
  }

 private:
  std::vector<index_t> dims_;
  std::vector<unsigned> bits_;
  std::vector<std::size_t> mode_order_;  // linearisation order (mode 0 major)
  unsigned low_bits_total_ = 0;          // key bits kept per element
  std::vector<Block> blocks_;
  std::vector<std::uint64_t> keys_;  // low 64 bits of each element's key
  std::vector<value_t> values_;
};

}  // namespace amped::formats
