// Full-scale GPU memory footprint models per execution format.
//
// Benchmarks run Table 3 datasets scaled down ~2000x, but whether a
// baseline fits in the 48 GB of an RTX 6000 Ada must be decided at *full*
// scale — block/fiber occupancy is non-linear in nnz, so the scaled-down
// structure cannot be extrapolated by multiplication. These analytic
// models estimate a format's footprint from full-scale dims and nnz under
// a uniform-occupancy approximation (expected distinct cells of a
// capacity-C space receiving n draws: C * (1 - exp(-n/C))), plus each
// implementation's working-set overhead. The resulting supported/OOM
// matrix reproduces the paper's Fig. 5 outcomes: MM-CSF runs Amazon only,
// ParTI/HiCOO-GPU run Amazon and Patents, FLYCOO-GPU (2 resident copies)
// fits only Twitch, BLCO streams and always runs.
#pragma once

#include <cstdint>
#include <span>

namespace amped::formats {

// Expected number of distinct occupied cells when `nnz` elements land in a
// space of `capacity` cells (uniform approximation).
double expected_occupied(double capacity, double nnz);

// Full-scale byte estimates. `dims` and `nnz` are the *unscaled* numbers.
std::uint64_t coo_bytes(std::span<const std::uint64_t> dims,
                        std::uint64_t nnz);

// One CSF tree rooted at `root_mode` (idx/ptr per level + leaves).
std::uint64_t csf_tree_bytes(std::span<const std::uint64_t> dims,
                             std::uint64_t nnz, std::size_t root_mode);

// MM-CSF working set: one tree per mode (Table 1) is replaced by the
// mixed-mode single structure plus per-mode schedule metadata and the
// kernel's fiber-partial workspace.
std::uint64_t mmcsf_bytes(std::span<const std::uint64_t> dims,
                          std::uint64_t nnz);

// HiCOO with block edge 2^block_bits: per-element compressed bytes plus
// per-nonempty-block headers (dominant on hypersparse tensors).
std::uint64_t hicoo_bytes(std::span<const std::uint64_t> dims,
                          std::uint64_t nnz, unsigned block_bits = 7);

// FLYCOO keeps 2 tensor copies resident with embedded shard ids.
std::uint64_t flycoo_bytes(std::span<const std::uint64_t> dims,
                           std::uint64_t nnz);

// BLCO element stream (12 B/nnz) — resident only per streamed block.
std::uint64_t blco_bytes(std::uint64_t nnz);

// Factor matrices mirrored on the device.
std::uint64_t factor_bytes(std::span<const std::uint64_t> dims,
                           std::size_t rank);

}  // namespace amped::formats
