#include "formats/memory_model.hpp"

#include <cmath>

#include "tensor/types.hpp"

namespace amped::formats {

double expected_occupied(double capacity, double nnz) {
  if (capacity <= 0.0) return 0.0;
  return capacity * (1.0 - std::exp(-nnz / capacity));
}

std::uint64_t coo_bytes(std::span<const std::uint64_t> dims,
                        std::uint64_t nnz) {
  return nnz * (dims.size() * sizeof(index_t) + sizeof(value_t));
}

std::uint64_t csf_tree_bytes(std::span<const std::uint64_t> dims,
                             std::uint64_t nnz, std::size_t root_mode) {
  // Level k holds the expected distinct prefixes of length k+1, with the
  // root mode first and the remaining modes in ascending order.
  double bytes = 0.0;
  double prefix_space = 0.0;
  bool first = true;
  std::size_t seen = 0;
  auto visit = [&](std::uint64_t dim) {
    prefix_space = first ? static_cast<double>(dim)
                         : prefix_space * static_cast<double>(dim);
    first = false;
    ++seen;
    if (seen < dims.size()) {
      const double nodes =
          expected_occupied(prefix_space, static_cast<double>(nnz));
      bytes += nodes * (sizeof(index_t) + sizeof(nnz_t));  // idx + ptr
    }
  };
  visit(dims[root_mode]);
  for (std::size_t m = 0; m < dims.size(); ++m) {
    if (m != root_mode) visit(dims[m]);
  }
  // Leaves: index + value per nonzero.
  bytes += static_cast<double>(nnz) * (sizeof(index_t) + sizeof(value_t));
  return static_cast<std::uint64_t>(bytes);
}

std::uint64_t mmcsf_bytes(std::span<const std::uint64_t> dims,
                          std::uint64_t nnz) {
  // Mixed-mode structure ~ the largest single tree, plus per-mode fiber
  // schedules (one nnz_t per fiber per mode) and the kernel's fiber
  // partial-product workspace — ~8 extra bytes per nonzero in total,
  // mirroring the open-source implementation's allocation pattern.
  std::uint64_t tree = 0;
  for (std::size_t m = 0; m < dims.size(); ++m) {
    tree = std::max(tree, csf_tree_bytes(dims, nnz, m));
  }
  return tree + nnz * 8;
}

std::uint64_t hicoo_bytes(std::span<const std::uint64_t> dims,
                          std::uint64_t nnz, unsigned block_bits) {
  const std::size_t modes = dims.size();
  double block_space = 1.0;
  for (std::uint64_t d : dims) {
    block_space *= std::ceil(static_cast<double>(d) /
                             static_cast<double>(1ull << block_bits));
  }
  const double blocks =
      expected_occupied(block_space, static_cast<double>(nnz));
  const double header_bytes =
      blocks * (static_cast<double>(modes) * sizeof(index_t) + sizeof(nnz_t));
  const double element_bytes =
      static_cast<double>(nnz) *
      (static_cast<double>(modes) * 1.0 + sizeof(value_t));
  return static_cast<std::uint64_t>(header_bytes + element_bytes);
}

std::uint64_t flycoo_bytes(std::span<const std::uint64_t> dims,
                           std::uint64_t nnz) {
  // Element = indices + value + embedded shard id (§3: FLYCOO embeds shard
  // IDs within each nonzero element); two copies resident for the
  // dynamic-remapping ping-pong.
  const std::uint64_t per_elem =
      dims.size() * sizeof(index_t) + sizeof(value_t) + sizeof(index_t);
  return 2 * nnz * per_elem;
}

std::uint64_t blco_bytes(std::uint64_t nnz) {
  return nnz * (sizeof(std::uint64_t) + sizeof(value_t));
}

std::uint64_t factor_bytes(std::span<const std::uint64_t> dims,
                           std::size_t rank) {
  std::uint64_t rows = 0;
  for (std::uint64_t d : dims) rows += d;
  return rows * rank * sizeof(value_t);
}

}  // namespace amped::formats
