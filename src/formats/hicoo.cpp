#include "formats/hicoo.hpp"

#include <algorithm>
#include <array>
#include <cassert>
#include <unordered_map>

#include "util/radix_sort.hpp"

namespace amped::formats {

namespace {
// Block bits must keep every within-block offset in one byte.
constexpr unsigned kMaxBlockBits = 8;
}  // namespace

HicooTensor HicooTensor::build(const CooTensor& t, unsigned block_bits) {
  assert(block_bits >= 1 && block_bits <= kMaxBlockBits);
  const std::size_t modes = t.num_modes();
  HicooTensor out;
  out.dims_ = t.dims();
  out.block_bits_ = block_bits;

  // Sort nonzeros by block coordinates (lexicographic over block ids), so
  // each block is one contiguous range; within a block, order by the full
  // coordinates for a deterministic layout. With equal block ids the full
  // coordinates compare exactly like the within-block offsets, so the key
  // columns are (block ids per mode, offsets per mode) — narrow enough to
  // stay on the packed-key radix path for typical shapes.
  auto block_of = [&](nnz_t e, std::size_t m) {
    return t.indices(m)[e] >> block_bits;
  };
  std::vector<std::vector<index_t>> block_ids(modes), block_offsets(modes);
  std::vector<util::SortKeyColumn> columns;
  columns.reserve(2 * modes);
  const index_t offset_bound = index_t{1} << block_bits;
  for (std::size_t m = 0; m < modes; ++m) {
    block_ids[m].resize(t.nnz());
    block_offsets[m].resize(t.nnz());
    const auto idx = t.indices(m);
    for (nnz_t e = 0; e < t.nnz(); ++e) {
      block_ids[m][e] = idx[e] >> block_bits;
      block_offsets[m][e] = idx[e] & (offset_bound - 1);
    }
    columns.push_back({block_ids[m], ((t.dim(m) - 1) >> block_bits) + 1});
  }
  for (std::size_t m = 0; m < modes; ++m) {
    columns.push_back({block_offsets[m], offset_bound});
  }
  const auto perm = util::lexicographic_sort_permutation(columns);

  out.values_.resize(t.nnz());
  out.offsets_.resize(t.nnz() * modes);
  const std::uint8_t mask = static_cast<std::uint8_t>((1u << block_bits) - 1);

  for (nnz_t i = 0; i < perm.size(); ++i) {
    const nnz_t e = perm[i];
    bool new_block = (i == 0);
    if (!new_block) {
      for (std::size_t m = 0; m < modes && !new_block; ++m) {
        new_block = block_of(e, m) != block_of(perm[i - 1], m);
      }
    }
    if (new_block) {
      if (!out.blocks_.empty()) out.blocks_.back().end = i;
      Block b;
      b.begin = i;
      b.block_coords.reserve(modes);
      for (std::size_t m = 0; m < modes; ++m) {
        b.block_coords.push_back(block_of(e, m));
      }
      out.blocks_.push_back(std::move(b));
    }
    for (std::size_t m = 0; m < modes; ++m) {
      out.offsets_[i * modes + m] =
          static_cast<std::uint8_t>(t.indices(m)[e] & mask);
    }
    out.values_[i] = t.values()[e];
  }
  if (!out.blocks_.empty()) out.blocks_.back().end = perm.size();
  return out;
}

std::uint64_t HicooTensor::storage_bytes() const {
  const std::size_t modes = num_modes();
  // Per block: block coordinates + element range pointer.
  const std::uint64_t header =
      blocks_.size() * (modes * sizeof(index_t) + sizeof(nnz_t));
  return header + offsets_.size() * sizeof(std::uint8_t) +
         values_.size() * sizeof(value_t);
}

void HicooTensor::coords_of(nnz_t e, std::span<index_t> out) const {
  const std::size_t modes = num_modes();
  // Binary search for the block containing element e.
  auto it = std::upper_bound(
      blocks_.begin(), blocks_.end(), e,
      [](nnz_t v, const Block& b) { return v < b.begin; });
  assert(it != blocks_.begin());
  const Block& b = *(it - 1);
  assert(e >= b.begin && e < b.end);
  for (std::size_t m = 0; m < modes; ++m) {
    out[m] = (b.block_coords[m] << block_bits_) | offsets_[e * modes + m];
  }
}

void HicooTensor::mttkrp(const FactorSet& factors, std::size_t output_mode,
                         DenseMatrix& out,
                         std::vector<BlockExecStats>* stats) const {
  const std::size_t modes = num_modes();
  const std::size_t rank = factors.rank();
  assert(out.rows() == dims_[output_mode] && out.cols() == rank);
  out.set_zero();
  if (stats) {
    stats->clear();
    stats->reserve(blocks_.size());
  }

  std::array<value_t, 256> scratch{};
  std::unordered_map<index_t, nnz_t> multiplicity;
  for (const Block& b : blocks_) {
    BlockExecStats bs;
    bs.nnz = b.nnz();
    multiplicity.clear();
    index_t run_index = 0;
    nnz_t run_len = 0;
    for (nnz_t e = b.begin; e < b.end; ++e) {
      const value_t v = values_[e];
      for (std::size_t r = 0; r < rank; ++r) scratch[r] = v;
      index_t out_index = 0;
      for (std::size_t m = 0; m < modes; ++m) {
        const index_t idx =
            (b.block_coords[m] << block_bits_) | offsets_[e * modes + m];
        if (m == output_mode) {
          out_index = idx;
          continue;
        }
        const auto row = factors.factor(m).row(idx);
        for (std::size_t r = 0; r < rank; ++r) scratch[r] *= row[r];
      }
      auto out_row = out.row(out_index);
      for (std::size_t r = 0; r < rank; ++r) out_row[r] += scratch[r];

      if (stats) {
        if (e == b.begin || out_index != run_index) {
          bs.max_run = std::max(bs.max_run, run_len);
          ++bs.output_runs;
          run_index = out_index;
          run_len = 1;
        } else {
          ++run_len;
        }
        bs.max_multiplicity =
            std::max(bs.max_multiplicity, ++multiplicity[out_index]);
      }
    }
    if (stats) {
      bs.max_run = std::max(bs.max_run, run_len);
      stats->push_back(bs);
    }
  }
}

}  // namespace amped::formats
