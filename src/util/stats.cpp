#include "util/stats.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace amped {

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double geomean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double logsum = 0.0;
  for (double x : xs) {
    assert(x > 0.0);
    logsum += std::log(x);
  }
  return std::exp(logsum / static_cast<double>(xs.size()));
}

double stddev(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(xs.size()));
}

double min_of(std::span<const double> xs) {
  assert(!xs.empty());
  return *std::min_element(xs.begin(), xs.end());
}

double max_of(std::span<const double> xs) {
  assert(!xs.empty());
  return *std::max_element(xs.begin(), xs.end());
}

double overhead_fraction(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  if (sum <= 0.0) return 0.0;
  return (max_of(xs) - min_of(xs)) / sum;
}

double imbalance_factor(std::span<const double> xs) {
  const double m = mean(xs);
  if (m <= 0.0) return 1.0;
  return max_of(xs) / m;
}

double gini(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const double n = static_cast<double>(sorted.size());
  double cum = 0.0, weighted = 0.0;
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    cum += sorted[i];
    weighted += static_cast<double>(i + 1) * sorted[i];
  }
  if (cum <= 0.0) return 0.0;
  return (2.0 * weighted) / (n * cum) - (n + 1.0) / n;
}

std::vector<std::size_t> histogram(std::span<const double> xs, double lo,
                                   double hi, std::size_t buckets) {
  assert(buckets > 0 && hi > lo);
  std::vector<std::size_t> out(buckets, 0);
  const double width = (hi - lo) / static_cast<double>(buckets);
  for (double x : xs) {
    if (x < lo || x > hi) continue;
    auto b = static_cast<std::size_t>((x - lo) / width);
    if (b >= buckets) b = buckets - 1;
    ++out[b];
  }
  return out;
}

}  // namespace amped
