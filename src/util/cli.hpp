// Minimal command-line flag parser for the example binaries.
//
// Supports `--key=value`, `--key value`, and bare boolean `--flag` forms.
// Unknown flags are collected so callers can warn about typos. This is
// deliberately tiny; examples only need a handful of numeric/string knobs.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace amped {

class CliArgs {
 public:
  CliArgs(int argc, const char* const* argv);

  bool has(const std::string& key) const;
  std::string get(const std::string& key, const std::string& fallback) const;
  std::int64_t get_int(const std::string& key, std::int64_t fallback) const;
  double get_double(const std::string& key, double fallback) const;
  bool get_bool(const std::string& key, bool fallback) const;

  // Positional (non-flag) arguments in order of appearance.
  const std::vector<std::string>& positional() const { return positional_; }
  const std::string& program() const { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

struct MttkrpOptions;

// Applies the flags every binary understands: `--threads N` overrides the
// host thread pool size (same effect as the AMPED_THREADS environment
// variable), `--memory-budget SIZE` caps tracked host allocations
// (same as AMPED_MEMORY_BUDGET; "512M"/"2G" suffixes accepted, 0 =
// unlimited), `--log-level LEVEL` sets the stderr log threshold
// (error|warn|info|debug, same as AMPED_LOG_LEVEL), and `--faults SPEC`
// arms fault-injection sites (same grammar as AMPED_FAULTS, e.g.
// "spill.write:nth=1:times=2:transient" — see util/fault.hpp). Flags win
// when both a flag and its variable are given.
void apply_common_flags(const CliArgs& args);

// Same, plus the execution-engine knobs written into `*mttkrp`:
// `--policy NAME` (static-greedy, dynamic-queue, contiguous,
// weighted-static, cost-model, dynamic-lookahead — see parse_policy),
// `--allgather NAME` (ring, direct, host-staged), `--backend NAME`
// (sim = the clock-charging simulator, host = real host-parallel
// execution with measured wall times) and `--pipelined`
// (double-buffered shard streaming). A typo exits with a usage error
// listing the valid names.
void apply_common_flags(const CliArgs& args, MttkrpOptions* mttkrp);

}  // namespace amped
