#include "util/fault.hpp"

#include <cstdlib>
#include <map>
#include <mutex>
#include <random>

#include "util/logging.hpp"

namespace amped::fault {

namespace detail {
std::atomic<int> armed_sites{0};
}  // namespace detail

namespace {

struct ArmedSite {
  FaultSpec spec;
  std::uint64_t calls = 0;
  std::uint64_t fires = 0;
  std::mt19937_64 rng;
};

struct Registry {
  std::mutex mutex;
  std::map<std::string, ArmedSite> sites;
};

Registry& registry() {
  static Registry r;
  return r;
}

// Environment configuration must be armed before the first fault point
// runs. Fault points only execute after main() starts, so a dynamic
// initialiser in this TU is early enough.
const bool g_env_loaded = [] {
  const char* env = std::getenv("AMPED_FAULTS");
  if (env != nullptr && *env != '\0') {
    try {
      configure(env);
    } catch (const std::exception& e) {
      AMPED_LOG_WARN << "ignoring invalid AMPED_FAULTS: " << e.what();
    }
  }
  return true;
}();

}  // namespace

namespace detail {

void check(const char* site) {
  auto& reg = registry();
  std::string message;
  bool transient = false;
  {
    std::lock_guard lock(reg.mutex);
    auto it = reg.sites.find(site);
    if (it == reg.sites.end()) return;
    ArmedSite& armed = it->second;
    const std::uint64_t call = ++armed.calls;  // 1-based
    bool fire = armed.spec.times > 0 && call >= armed.spec.nth &&
                call - armed.spec.nth < armed.spec.times;
    if (!fire && armed.spec.probability > 0.0) {
      std::uniform_real_distribution<double> dist(0.0, 1.0);
      fire = dist(armed.rng) < armed.spec.probability;
    }
    if (!fire) return;
    ++armed.fires;
    transient = armed.spec.transient;
    message = site;
  }
  if (transient) {
    throw TransientError("fault injected at " + message + " (transient)");
  }
  throw FaultInjected(message);
}

}  // namespace detail

void arm(const std::string& site, const FaultSpec& spec) {
  auto& reg = registry();
  std::lock_guard lock(reg.mutex);
  auto [it, inserted] = reg.sites.insert_or_assign(
      site, ArmedSite{spec, 0, 0, std::mt19937_64(spec.seed)});
  (void)it;
  if (inserted) {
    detail::armed_sites.fetch_add(1, std::memory_order_relaxed);
  }
}

void disarm(const std::string& site) {
  auto& reg = registry();
  std::lock_guard lock(reg.mutex);
  if (reg.sites.erase(site) > 0) {
    detail::armed_sites.fetch_sub(1, std::memory_order_relaxed);
  }
}

void disarm_all() {
  auto& reg = registry();
  std::lock_guard lock(reg.mutex);
  detail::armed_sites.fetch_sub(static_cast<int>(reg.sites.size()),
                                std::memory_order_relaxed);
  reg.sites.clear();
}

std::uint64_t call_count(const std::string& site) {
  auto& reg = registry();
  std::lock_guard lock(reg.mutex);
  auto it = reg.sites.find(site);
  return it == reg.sites.end() ? 0 : it->second.calls;
}

std::uint64_t fire_count(const std::string& site) {
  auto& reg = registry();
  std::lock_guard lock(reg.mutex);
  auto it = reg.sites.find(site);
  return it == reg.sites.end() ? 0 : it->second.fires;
}

void configure(const std::string& config) {
  auto fail = [&](const std::string& what) {
    throw std::runtime_error("fault config '" + config + "': " + what);
  };
  std::size_t pos = 0;
  while (pos < config.size()) {
    const std::size_t end = std::min(config.find(',', pos), config.size());
    const std::string clause = config.substr(pos, end - pos);
    pos = end + 1;
    if (clause.empty()) continue;

    std::size_t field_pos = 0;
    std::string site;
    FaultSpec spec;
    bool first = true;
    bool times_set = false;
    while (field_pos <= clause.size()) {
      const std::size_t field_end =
          std::min(clause.find(':', field_pos), clause.size());
      const std::string field = clause.substr(field_pos, field_end - field_pos);
      field_pos = field_end + 1;
      if (first) {
        if (field.empty()) fail("empty site name");
        site = field;
        first = false;
        continue;
      }
      if (field == "transient") {
        spec.transient = true;
        continue;
      }
      const std::size_t eq = field.find('=');
      if (eq == std::string::npos) {
        fail("expected key=value, got '" + field + "'");
      }
      const std::string key = field.substr(0, eq);
      const std::string value = field.substr(eq + 1);
      char* parse_end = nullptr;
      if (key == "nth") {
        spec.nth = std::strtoull(value.c_str(), &parse_end, 10);
      } else if (key == "times") {
        spec.times = std::strtoull(value.c_str(), &parse_end, 10);
        times_set = true;
      } else if (key == "seed") {
        spec.seed = std::strtoull(value.c_str(), &parse_end, 10);
      } else if (key == "prob" || key == "probability") {
        spec.probability = std::strtod(value.c_str(), &parse_end);
      } else {
        fail("unknown key '" + key + "'");
      }
      if (parse_end == value.c_str() || *parse_end != '\0') {
        fail("bad value for '" + key + "': '" + value + "'");
      }
    }
    if (site.empty()) fail("empty site name");
    // `prob=` without an explicit `times=` means probability-only.
    if (spec.probability > 0.0 && !times_set) spec.times = 0;
    arm(site, spec);
  }
}

}  // namespace amped::fault
