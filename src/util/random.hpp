// Deterministic pseudo-random number generation for workload synthesis.
//
// All generators in this project are seeded explicitly so that every test,
// benchmark, and example is reproducible bit-for-bit across runs. We avoid
// std::mt19937 because its state is large and its distributions are not
// guaranteed to produce identical streams across standard-library
// implementations; instead we ship SplitMix64 (seeding / hashing) and
// xoshiro256** (bulk generation), plus the distribution samplers the tensor
// generators need (uniform, Zipf via rejection-inversion).
#pragma once

#include <array>
#include <cstdint>
#include <cmath>

namespace amped {

// SplitMix64: tiny, passes BigCrush when used as a stream; the canonical
// way to expand a single 64-bit seed into generator state.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

// xoshiro256**: fast all-purpose generator (Blackman & Vigna).
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x243f6a8885a308d3ULL) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  result_type operator()() { return next_u64(); }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // Uniform in [0, bound). Uses Lemire's multiply-shift rejection method.
  std::uint64_t next_below(std::uint64_t bound);

  // Uniform double in [0, 1) with 53 bits of randomness.
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  // Uniform double in [lo, hi).
  double next_double(double lo, double hi) {
    return lo + (hi - lo) * next_double();
  }

  // Split off an independent generator (for per-mode / per-thread streams).
  Rng split() { return Rng(next_u64() ^ 0x9e3779b97f4a7c15ULL); }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::array<std::uint64_t, 4> state_{};
};

// Samples from a Zipf(s) distribution over {0, 1, ..., n-1}: P(k) ~ 1/(k+1)^s.
// Uses Hörmann's rejection-inversion, O(1) per sample independent of n,
// which matters because tensor modes here can have tens of millions of
// indices. s == 0 degenerates to uniform.
class ZipfSampler {
 public:
  ZipfSampler(std::uint64_t n, double exponent);

  std::uint64_t operator()(Rng& rng) const;

  std::uint64_t domain() const { return n_; }
  double exponent() const { return s_; }

 private:
  double h(double x) const;         // integral of 1/x^s
  double h_inv(double x) const;     // inverse of h
  std::uint64_t n_;
  double s_;
  double h_x1_;
  double h_n_;
  double sdiv_;  // cached (1 - s) or log terms
};

}  // namespace amped
