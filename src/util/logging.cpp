#include "util/logging.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace amped {

namespace {

// Initial level: AMPED_LOG_LEVEL env var when set and recognised
// (error/warn/info/debug, case-sensitive lowercase), else warn. Read once
// at first use so every module — tests, benches, examples — honors it
// without plumbing.
int initial_level() {
  const char* env = std::getenv("AMPED_LOG_LEVEL");
  if (env != nullptr) {
    if (std::strcmp(env, "error") == 0) return static_cast<int>(LogLevel::kError);
    if (std::strcmp(env, "warn") == 0) return static_cast<int>(LogLevel::kWarn);
    if (std::strcmp(env, "info") == 0) return static_cast<int>(LogLevel::kInfo);
    if (std::strcmp(env, "debug") == 0) return static_cast<int>(LogLevel::kDebug);
    std::fprintf(stderr,
                 "[amped WARN ] AMPED_LOG_LEVEL='%s' not recognised "
                 "(want error|warn|info|debug); using warn\n",
                 env);
  }
  return static_cast<int>(LogLevel::kWarn);
}

std::atomic<int> g_level{initial_level()};

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kError: return "ERROR";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kDebug: return "DEBUG";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

void log_line(LogLevel level, const std::string& msg) {
  if (static_cast<int>(level) > g_level.load(std::memory_order_relaxed)) {
    return;
  }
  std::fprintf(stderr, "[amped %s] %s\n", level_tag(level), msg.c_str());
}

}  // namespace amped
