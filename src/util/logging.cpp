#include "util/logging.hpp"

#include <atomic>
#include <cstdio>

namespace amped {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kError: return "ERROR";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kDebug: return "DEBUG";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

void log_line(LogLevel level, const std::string& msg) {
  if (static_cast<int>(level) > g_level.load(std::memory_order_relaxed)) {
    return;
  }
  std::fprintf(stderr, "[amped %s] %s\n", level_tag(level), msg.c_str());
}

}  // namespace amped
