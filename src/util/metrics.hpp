// Process-wide metrics registry: named counters, gauges, and log-bucketed
// latency histograms for every layer of the stack (ingest chunk times,
// spill/stream recovery counts, scheduler dispatch decisions, ALS
// iteration latencies).
//
// Design constraints, in order:
//  1. Hot paths pay one relaxed atomic increment. Counters are sharded
//     across cache lines (a thread picks its shard once from its id) so
//     the pool hammering one counter never bounces a single line.
//     Reads (value(), snapshots) sum the shards — monotonic, possibly a
//     few increments behind concurrent writers, never torn.
//  2. Registration is rare and locked; the returned handle is a stable
//     reference for the life of the process (std::deque storage), so
//     instrumented code resolves its metric once into a static.
//  3. Snapshots are safe at any time from any thread and serialise to a
//     stable JSON schema (util/json.hpp) that the --report-json run
//     report and the future serving daemon embed verbatim:
//       {"counters": {name: u64, ...},
//        "gauges": {name: f64, ...},
//        "histograms": {name: {"count": u64, "sum_seconds": f64,
//                              "max_seconds": f64,
//                              "buckets": [{"le_seconds": f64,
//                                           "count": u64}, ...]}, ...}}
//     (bucket list only carries non-empty buckets; keys are sorted).
//
// The registry can be disabled (set_enabled(false)): counters, gauges,
// and histograms keep accepting calls but drop them after one relaxed
// flag load — the knob the metrics-overhead benchmark series flips to
// price the instrumentation itself (bench_host_throughput metrics/*).
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>

#include "util/timer.hpp"

namespace amped::metrics {

// All metric updates drop early when false. Relaxed: a toggle is not a
// synchronisation point, it just stops the accounting.
bool enabled();
void set_enabled(bool on);

namespace detail {
inline constexpr std::size_t kShards = 8;
inline constexpr std::size_t kCacheLine = 64;

struct alignas(kCacheLine) ShardedSlot {
  std::atomic<std::uint64_t> v{0};
};

// Stable small shard index for the calling thread.
std::size_t shard_index();
}  // namespace detail

// Monotonic event count. inc() is wait-free: one relaxed fetch_add on the
// caller's shard.
class Counter {
 public:
  void inc(std::uint64_t n = 1) {
    if (!enabled()) return;
    shards_[detail::shard_index()].v.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    std::uint64_t total = 0;
    for (const auto& s : shards_) {
      total += s.v.load(std::memory_order_relaxed);
    }
    return total;
  }
  const std::string& name() const { return name_; }

 private:
  friend class Registry;
  explicit Counter(std::string name) : name_(std::move(name)) {}
  std::string name_;
  detail::ShardedSlot shards_[detail::kShards];
};

// Last-write-wins instantaneous value (bytes in use, queue depth).
class Gauge {
 public:
  void set(double v) {
    if (!enabled()) return;
    bits_.store(encode(v), std::memory_order_relaxed);
  }
  // Monotonic ratchet: keeps the maximum of the current and new value.
  // Not atomic across racing set_max callers of *smaller* values — fine
  // for high-water marks, which only ever grow.
  void set_max(double v) {
    if (!enabled()) return;
    std::uint64_t cur = bits_.load(std::memory_order_relaxed);
    while (decode(cur) < v &&
           !bits_.compare_exchange_weak(cur, encode(v),
                                        std::memory_order_relaxed)) {
    }
  }
  double value() const { return decode(bits_.load(std::memory_order_relaxed)); }
  const std::string& name() const { return name_; }

 private:
  friend class Registry;
  explicit Gauge(std::string name) : name_(std::move(name)) {}
  static std::uint64_t encode(double v);
  static double decode(std::uint64_t bits);
  std::string name_;
  std::atomic<std::uint64_t> bits_{0};
};

// Log-bucketed latency histogram over seconds. Bucket b counts samples in
// (2^(b-1), 2^b] nanoseconds — 64 power-of-two buckets span sub-ns to
// ~584 years, so there is no overflow bucket to saturate. record() is two
// relaxed increments (bucket + count shard) plus a relaxed add to the
// nanosecond sum and a max ratchet.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 64;

  void record_seconds(double seconds);

  std::uint64_t count() const;
  double sum_seconds() const {
    return static_cast<double>(sum_ns_.load(std::memory_order_relaxed)) *
           1e-9;
  }
  double max_seconds() const {
    return static_cast<double>(max_ns_.load(std::memory_order_relaxed)) *
           1e-9;
  }
  std::uint64_t bucket_count(std::size_t b) const {
    return buckets_[b].load(std::memory_order_relaxed);
  }
  // Upper bound of bucket b in seconds (2^b ns).
  static double bucket_upper_seconds(std::size_t b);
  const std::string& name() const { return name_; }

 private:
  friend class Registry;
  explicit Histogram(std::string name) : name_(std::move(name)) {}
  std::string name_;
  std::atomic<std::uint64_t> buckets_[kBuckets]{};
  std::atomic<std::uint64_t> sum_ns_{0};
  std::atomic<std::uint64_t> max_ns_{0};
  detail::ShardedSlot count_shards_[detail::kShards];
};

class Registry {
 public:
  // The process-wide registry every AMPED module reports into.
  static Registry& global();

  // Find-or-create by name. The returned reference is valid for the
  // registry's lifetime; a name resolves to the same object every time
  // (calling counter() on a name registered as a gauge throws).
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  // Serialises the schema documented above. Sorted keys, strict JSON.
  void snapshot_json(std::ostream& out) const;
  std::string snapshot_json() const;

  // Zeroes every registered metric (tests and the per-job reset the
  // serving daemon will want). Registration survives; handles stay valid.
  void reset();

  Registry();
  ~Registry();
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

 private:
  struct Impl;
  Impl* impl_;
};

// Shorthands for the common "resolve once, update forever" pattern.
inline Counter& counter(std::string_view name) {
  return Registry::global().counter(name);
}
inline Gauge& gauge(std::string_view name) {
  return Registry::global().gauge(name);
}
inline Histogram& histogram(std::string_view name) {
  return Registry::global().histogram(name);
}

// RAII latency sample: feeds the elapsed WallTimer seconds between
// construction and destruction into a histogram. `cancel()` drops the
// sample (error paths that should not pollute the latency distribution).
class ScopedLatency {
 public:
  explicit ScopedLatency(Histogram& h) : hist_(&h) {}
  ~ScopedLatency() {
    if (hist_ != nullptr) hist_->record_seconds(timer_.seconds());
  }
  ScopedLatency(const ScopedLatency&) = delete;
  ScopedLatency& operator=(const ScopedLatency&) = delete;
  void cancel() { hist_ = nullptr; }

 private:
  Histogram* hist_;
  WallTimer timer_;
};

}  // namespace amped::metrics
