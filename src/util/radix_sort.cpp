#include "util/radix_sort.hpp"

#include <algorithm>
#include <array>
#include <cassert>
#include <numeric>

namespace amped::util {

unsigned bits_for_bound(index_t bound) {
  unsigned b = 1;
  while ((std::uint64_t{1} << b) < bound) ++b;
  return b;
}

std::vector<nnz_t> radix_sort_permutation(std::span<const std::uint64_t> keys,
                                          unsigned key_bits) {
  const nnz_t n = keys.size();
  std::vector<nnz_t> perm(n);
  std::iota(perm.begin(), perm.end(), nnz_t{0});
  if (n <= 1) return perm;
  assert(key_bits <= 64);

  // Ping-pong (key, index) record pairs so each pass reads and writes
  // sequentially; scattering whole records beats re-gathering keys
  // through the permutation every pass.
  std::vector<std::uint64_t> k(keys.begin(), keys.end());
  std::vector<std::uint64_t> k2(n);
  std::vector<nnz_t> perm2(n);

  constexpr unsigned kDigitBits = 8;
  constexpr std::size_t kBuckets = std::size_t{1} << kDigitBits;
  for (unsigned shift = 0; shift < key_bits; shift += kDigitBits) {
    std::array<nnz_t, kBuckets> count{};
    for (nnz_t i = 0; i < n; ++i) ++count[(k[i] >> shift) & (kBuckets - 1)];
    // A pass where every key shares the digit is the common case for the
    // top passes of narrow keys; it would be a pure copy, so skip it.
    if (count[(k[0] >> shift) & (kBuckets - 1)] == n) continue;
    nnz_t offset = 0;
    for (std::size_t b = 0; b < kBuckets; ++b) {
      const nnz_t c = count[b];
      count[b] = offset;
      offset += c;
    }
    for (nnz_t i = 0; i < n; ++i) {
      const nnz_t dst = count[(k[i] >> shift) & (kBuckets - 1)]++;
      k2[dst] = k[i];
      perm2[dst] = perm[i];
    }
    k.swap(k2);
    perm.swap(perm2);
  }
  return perm;
}

std::vector<nnz_t> lexicographic_sort_permutation(
    std::span<const SortKeyColumn> columns) {
  nnz_t n = columns.empty() ? 0 : columns[0].keys.size();
  unsigned total_bits = 0;
  for (const auto& col : columns) {
    assert(col.keys.size() == n);
    total_bits += bits_for_bound(col.bound);
  }

  if (total_bits <= 64) {
    std::vector<std::uint64_t> packed(n, 0);
    for (const auto& col : columns) {
      const unsigned bits = bits_for_bound(col.bound);
      for (nnz_t i = 0; i < n; ++i) {
        packed[i] = (packed[i] << bits) | col.keys[i];
      }
    }
    return radix_sort_permutation(packed, total_bits);
  }

  // Keys wider than 64 bits: comparison sort, same ordering.
  std::vector<nnz_t> perm(n);
  std::iota(perm.begin(), perm.end(), nnz_t{0});
  std::sort(perm.begin(), perm.end(), [&](nnz_t a, nnz_t b) {
    for (const auto& col : columns) {
      if (col.keys[a] != col.keys[b]) return col.keys[a] < col.keys[b];
    }
    return false;
  });
  return perm;
}

}  // namespace amped::util
