#include "util/random.hpp"

#include <cassert>

namespace amped {

std::uint64_t Rng::next_below(std::uint64_t bound) {
  assert(bound > 0);
  // Lemire's method: multiply a 64-bit random by bound, keep the high word;
  // reject the small biased region.
  while (true) {
    const std::uint64_t x = next_u64();
    const __uint128_t m = static_cast<__uint128_t>(x) * bound;
    const std::uint64_t low = static_cast<std::uint64_t>(m);
    if (low >= bound || low >= (-bound) % bound) {
      return static_cast<std::uint64_t>(m >> 64);
    }
  }
}

namespace {
// Helper used by rejection-inversion: H(x) = x^(1-s)/(1-s) for s != 1,
// ln(x) for s == 1.
double h_impl(double x, double s) {
  if (s == 1.0) return std::log(x);
  return std::pow(x, 1.0 - s) / (1.0 - s);
}
double h_inv_impl(double x, double s) {
  if (s == 1.0) return std::exp(x);
  return std::pow((1.0 - s) * x, 1.0 / (1.0 - s));
}
}  // namespace

ZipfSampler::ZipfSampler(std::uint64_t n, double exponent)
    : n_(n), s_(exponent) {
  assert(n_ >= 1);
  if (s_ <= 0.0) {
    s_ = 0.0;
    return;  // uniform fallback
  }
  h_x1_ = h_impl(1.5, s_) - 1.0;  // H(1.5) - h(1); h(1) = 1
  h_n_ = h_impl(static_cast<double>(n_) + 0.5, s_);
  sdiv_ = 0.0;
}

double ZipfSampler::h(double x) const { return h_impl(x, s_); }
double ZipfSampler::h_inv(double x) const { return h_inv_impl(x, s_); }

std::uint64_t ZipfSampler::operator()(Rng& rng) const {
  if (s_ == 0.0 || n_ == 1) {
    return rng.next_below(n_);
  }
  // Hörmann rejection-inversion over [0.5, n + 0.5].
  while (true) {
    const double u = h_x1_ + rng.next_double() * (h_n_ - h_x1_);
    const double x = h_inv(u);
    std::uint64_t k = static_cast<std::uint64_t>(x + 0.5);
    if (k < 1) k = 1;
    if (k > n_) k = n_;
    // Acceptance test: accept k when u >= H(k + 0.5) - 1/k^s.
    const double hk = h(static_cast<double>(k) + 0.5);
    if (u >= hk - std::pow(static_cast<double>(k), -s_)) {
      return k - 1;  // return 0-based index
    }
  }
}

}  // namespace amped
