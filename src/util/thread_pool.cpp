#include "util/thread_pool.hpp"

#include <algorithm>
#include <cstdlib>
#include <memory>

namespace amped {

namespace {

// True on threads currently executing a pool task; parallel_for uses it to
// run nested loops inline instead of deadlocking on wait_idle.
thread_local bool t_in_pool_worker = false;

std::size_t env_thread_count() {
  const char* env = std::getenv("AMPED_THREADS");
  if (env == nullptr || *env == '\0') return 0;
  const long parsed = std::strtol(env, nullptr, 10);
  return parsed > 0 ? static_cast<std::size_t>(parsed) : 0;
}

std::mutex& global_pool_mutex() {
  static std::mutex m;
  return m;
}

std::size_t& parallelism_override() {
  static std::size_t n = 0;
  return n;
}

std::unique_ptr<ThreadPool>& global_pool_slot() {
  static std::unique_ptr<ThreadPool> pool;
  return pool;
}

}  // namespace

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard lock(mutex_);
    tasks_.push(std::move(task));
  }
  cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  cv_idle_.wait(lock, [this] { return tasks_.empty() && in_flight_ == 0; });
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (t_in_pool_worker || workers_.size() == 1) {
    // Nested call from a worker (or a 1-thread pool): distributing would
    // add queue traffic with no extra concurrency — run inline.
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  // Chunk so that each worker gets a contiguous range; avoids per-index
  // queue traffic for large n.
  const std::size_t chunks = std::min(n, workers_.size() * 4);
  const std::size_t per = (n + chunks - 1) / chunks;
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t lo = c * per;
    const std::size_t hi = std::min(n, lo + per);
    if (lo >= hi) break;
    submit([&fn, lo, hi] {
      for (std::size_t i = lo; i < hi; ++i) fn(i);
    });
  }
  wait_idle();
}

void ThreadPool::worker_loop() {
  t_in_pool_worker = true;
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_task_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
      ++in_flight_;
    }
    task();
    {
      std::lock_guard lock(mutex_);
      --in_flight_;
      if (tasks_.empty() && in_flight_ == 0) cv_idle_.notify_all();
    }
  }
}

namespace {

// Caller must hold global_pool_mutex().
std::size_t resolved_parallelism_locked() {
  if (parallelism_override() > 0) return parallelism_override();
  const std::size_t env = env_thread_count();
  if (env > 0) return env;
  return std::max(1u, std::thread::hardware_concurrency());
}

}  // namespace

ThreadPool& global_thread_pool() {
  std::lock_guard lock(global_pool_mutex());
  auto& pool = global_pool_slot();
  if (!pool) {
    pool = std::make_unique<ThreadPool>(resolved_parallelism_locked());
  }
  return *pool;
}

std::size_t host_parallelism() {
  std::lock_guard lock(global_pool_mutex());
  return resolved_parallelism_locked();
}

void set_host_parallelism(std::size_t num_threads) {
  std::lock_guard lock(global_pool_mutex());
  parallelism_override() = num_threads;
  global_pool_slot().reset();  // rebuilt at the new size on next use
}

}  // namespace amped
