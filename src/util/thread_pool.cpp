#include "util/thread_pool.hpp"

#include <algorithm>

namespace amped {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard lock(mutex_);
    tasks_.push(std::move(task));
  }
  cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  cv_idle_.wait(lock, [this] { return tasks_.empty() && in_flight_ == 0; });
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  // Chunk so that each worker gets a contiguous range; avoids per-index
  // queue traffic for large n.
  const std::size_t chunks = std::min(n, workers_.size() * 4);
  const std::size_t per = (n + chunks - 1) / chunks;
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t lo = c * per;
    const std::size_t hi = std::min(n, lo + per);
    if (lo >= hi) break;
    submit([&fn, lo, hi] {
      for (std::size_t i = lo; i < hi; ++i) fn(i);
    });
  }
  wait_idle();
}

void ThreadPool::worker_loop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_task_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
      ++in_flight_;
    }
    task();
    {
      std::lock_guard lock(mutex_);
      --in_flight_;
      if (tasks_.empty() && in_flight_ == 0) cv_idle_.notify_all();
    }
  }
}

}  // namespace amped
