// LSD radix sort for the preprocessing hot path.
//
// Every execution format build starts by sorting nonzeros under some
// lexicographic key (mode-major order, block-major order, linearised
// order). Comparison sorts pay a multi-array gather per comparison —
// O(n log n) cache-hostile loads. When the concatenated key fits in 64
// bits the order is equivalent to an integer sort of packed keys, which an
// LSD radix sort finishes in ceil(bits/8) streaming passes. This lives in
// util/ (not formats/) because CooTensor::sort_by_mode needs it too and
// tensor/ must not depend on formats/.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "tensor/types.hpp"

namespace amped::util {

// One lexicographic key component: `keys[i]` is element i's value for this
// component, all values < `bound`. Components are given most significant
// first.
struct SortKeyColumn {
  std::span<const index_t> keys;
  index_t bound = 0;
};

// Bits needed to store values in [0, bound); at least 1.
unsigned bits_for_bound(index_t bound);

// Stable LSD radix sort of `keys` (only the low `key_bits` bits are
// significant). Returns the sorting permutation: element i of the sorted
// order is input element perm[i]. Ties keep input order.
std::vector<nnz_t> radix_sort_permutation(std::span<const std::uint64_t> keys,
                                          unsigned key_bits);

// Permutation sorting elements lexicographically by `columns` (first
// column most significant). Packs the columns into 64-bit keys and radix
// sorts when the total bit width allows; otherwise falls back to a
// comparison sort with the same ordering. The radix path is stable; the
// fallback breaks full-key ties arbitrarily (callers that need full
// determinism must make keys unique, as all format builds do).
std::vector<nnz_t> lexicographic_sort_permutation(
    std::span<const SortKeyColumn> columns);

}  // namespace amped::util
