// Leveled logging to stderr. Quiet by default in tests/benches; examples
// raise the level for progress reporting. The starting level comes from
// the AMPED_LOG_LEVEL env var (error|warn|info|debug) when set, else
// warn; set_log_level() overrides either. Not thread-buffered: each call
// emits one line with a single stream operation, which is enough for the
// coarse-grained logging this project does.
#pragma once

#include <sstream>
#include <string>

namespace amped {

enum class LogLevel : int { kError = 0, kWarn = 1, kInfo = 2, kDebug = 3 };

void set_log_level(LogLevel level);
LogLevel log_level();
void log_line(LogLevel level, const std::string& msg);

namespace detail {
class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() { log_line(level_, stream_.str()); }
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;
  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace amped

#define AMPED_LOG(level)                                   \
  if (static_cast<int>(level) > static_cast<int>(::amped::log_level())) \
    ;                                                      \
  else                                                     \
    ::amped::detail::LogMessage(level)

#define AMPED_LOG_INFO AMPED_LOG(::amped::LogLevel::kInfo)
#define AMPED_LOG_WARN AMPED_LOG(::amped::LogLevel::kWarn)
#define AMPED_LOG_ERROR AMPED_LOG(::amped::LogLevel::kError)
#define AMPED_LOG_DEBUG AMPED_LOG(::amped::LogLevel::kDebug)
