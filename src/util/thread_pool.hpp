// Fixed-size thread pool with a parallel_for helper.
//
// The simulator's numerical execution is independent per simulated GPU, so
// device loops can run concurrently when cores are available. On a 1-core
// host the pool degrades gracefully to near-serial execution; all *timing*
// results come from the simulator's cost model, never from wall clock, so
// correctness of results does not depend on the core count.
//
// The process-wide pool behind global_thread_pool() is what the execution
// engine dispatches on (per-GPU shard loops, per-mode format builds). Its
// size resolves, in priority order: set_host_parallelism() override →
// AMPED_THREADS environment variable → hardware concurrency.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace amped {

class ThreadPool {
 public:
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  // Enqueue a task; tasks may not throw (they run under noexcept workers).
  void submit(std::function<void()> task);

  // Block until every submitted task has finished.
  void wait_idle();

  // Run fn(i) for i in [0, n), distributing across the pool, and wait.
  // Calling from inside a pool task runs the loop inline on the calling
  // worker (a nested distribution would deadlock wait_idle against the
  // caller's own in-flight task).
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
};

// The shared pool host-parallel sections dispatch on; constructed on first
// use with host_parallelism() workers.
ThreadPool& global_thread_pool();

// Worker count the global pool will use (override → AMPED_THREADS → cores).
// A value of 1 makes every host-parallel section run serially.
std::size_t host_parallelism();

// Overrides the global pool size (0 = back to AMPED_THREADS / hardware
// default), tearing down any existing idle pool so the next use rebuilds
// at the new size. Call at startup or between runs — not concurrently with
// work executing on the pool.
void set_host_parallelism(std::size_t num_threads);

}  // namespace amped
