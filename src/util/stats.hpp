// Small statistics helpers used by the benchmark harnesses and the load
// balancing analyses (geometric means for speedup aggregation, imbalance
// and skew measures for workload distribution).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace amped {

double mean(std::span<const double> xs);
double geomean(std::span<const double> xs);  // requires all xs > 0
double stddev(std::span<const double> xs);   // population std dev
double min_of(std::span<const double> xs);
double max_of(std::span<const double> xs);

// (max - min) / sum: the paper's Fig. 8 "computation time overhead among
// GPUs" metric, expressed as a fraction of total time.
double overhead_fraction(std::span<const double> xs);

// max / mean: classic load-imbalance factor (1.0 == perfectly balanced).
double imbalance_factor(std::span<const double> xs);

// Gini coefficient in [0, 1): 0 == all equal. Used to characterise index
// popularity skew in synthetic tensors.
double gini(std::span<const double> xs);

// Histogram of values into `buckets` equal-width bins over [lo, hi].
std::vector<std::size_t> histogram(std::span<const double> xs, double lo,
                                   double hi, std::size_t buckets);

}  // namespace amped
