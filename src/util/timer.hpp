// Wall-clock timer for preprocessing measurements and example progress.
// Simulated (modelled) time is tracked separately in sim/timeline.hpp;
// this type is only for real host time.
#pragma once

#include <chrono>

namespace amped {

class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  double millis() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace amped
