// Cache-line-aligned allocator for hot numeric arrays.
//
// Factor-matrix rows are gathered at random by the EC kernel; a rank-16
// float row is exactly one 64-byte cache line *if* the matrix base is
// line-aligned, and two lines otherwise — a straight doubling of gather
// traffic. std::vector's default allocator only guarantees
// alignof(std::max_align_t) (16 on x86-64), so DenseMatrix opts into this
// allocator instead.
#pragma once

#include <cstddef>
#include <new>

namespace amped::util {

inline constexpr std::size_t kCacheLineBytes = 64;

template <typename T, std::size_t Alignment = kCacheLineBytes>
class AlignedAllocator {
 public:
  using value_type = T;
  static_assert(Alignment >= alignof(T));

  AlignedAllocator() = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Alignment>&) noexcept {}

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  T* allocate(std::size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t{Alignment}));
  }
  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t{Alignment});
  }

  friend bool operator==(const AlignedAllocator&,
                         const AlignedAllocator&) noexcept {
    return true;
  }
};

}  // namespace amped::util
