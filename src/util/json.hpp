// Minimal streaming JSON writer shared by the observability layer: the
// metrics snapshot (util/metrics.hpp), the Chrome trace metadata
// (sim/trace.cpp), and the --report-json run report all emit JSON that a
// strict parser (python -m json.tool) must accept, so escaping and number
// formatting live in exactly one place.
//
// Usage is push-style and unvalidated by design — the writer trusts the
// caller to emit a well-formed sequence (object/array nesting, one value
// per key). It handles the two things callers get wrong by hand: string
// escaping and comma placement. Doubles round-trip (max_digits10) and
// non-finite values degrade to null, which strict JSON requires.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>
#include <ostream>
#include <string_view>
#include <type_traits>

namespace amped::json {

inline void write_escaped(std::ostream& out, std::string_view s) {
  out << '"';
  for (char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\r': out << "\\r"; break;
      case '\t': out << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          const char* hex = "0123456789abcdef";
          out << "\\u00" << hex[(c >> 4) & 0xF] << hex[c & 0xF];
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

class Writer {
 public:
  explicit Writer(std::ostream& out) : out_(out) {}

  Writer& begin_object() { open('{'); return *this; }
  Writer& end_object() { close('}'); return *this; }
  Writer& begin_array() { open('['); return *this; }
  Writer& end_array() { close(']'); return *this; }

  // Key of the next value inside an object.
  Writer& key(std::string_view k) {
    comma();
    write_escaped(out_, k);
    out_ << ':';
    pending_value_ = true;
    return *this;
  }

  Writer& value(std::string_view v) { pre(); write_escaped(out_, v); return *this; }
  Writer& value(const char* v) { return value(std::string_view(v)); }
  Writer& value(bool v) { pre(); out_ << (v ? "true" : "false"); return *this; }
  Writer& value(double v) {
    pre();
    if (!std::isfinite(v)) {
      out_ << "null";  // strict JSON has no NaN/Inf literals
    } else {
      const auto saved = out_.precision(
          std::numeric_limits<double>::max_digits10);
      out_ << v;
      out_.precision(saved);
    }
    return *this;
  }
  template <typename T,
            std::enable_if_t<std::is_integral_v<T> && !std::is_same_v<T, bool>,
                             int> = 0>
  Writer& value(T v) {
    pre();
    out_ << v;
    return *this;
  }

  // Pre-serialised JSON spliced in verbatim as one value — how the
  // --report-json report embeds the metrics snapshot (itself produced by
  // this writer). The caller guarantees `v` is a well-formed document.
  Writer& raw(std::string_view v) {
    pre();
    out_ << v;
    return *this;
  }

  // key + value in one call, for the common scalar-member case.
  template <typename T>
  Writer& member(std::string_view k, const T& v) {
    key(k);
    return value(v);
  }

 private:
  void comma() {
    if (need_comma_) out_ << ',';
    need_comma_ = false;
  }
  // A value directly inside an array (or the document root) separates
  // itself; a value following key() must not emit another comma.
  void pre() {
    if (!pending_value_) comma();
    pending_value_ = false;
    need_comma_ = true;
  }
  void open(char c) {
    pre();
    out_ << c;
    need_comma_ = false;
  }
  void close(char c) {
    out_ << c;
    need_comma_ = true;
    pending_value_ = false;
  }

  std::ostream& out_;
  bool need_comma_ = false;
  bool pending_value_ = false;
};

}  // namespace amped::json
