#include "util/metrics.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "util/json.hpp"

namespace amped::metrics {

namespace {
std::atomic<bool> g_enabled{true};
}  // namespace

bool enabled() { return g_enabled.load(std::memory_order_relaxed); }
void set_enabled(bool on) { g_enabled.store(on, std::memory_order_relaxed); }

namespace detail {

std::size_t shard_index() {
  // One hash per thread, computed once: the pool's workers spread across
  // shards, and any thread always lands on the same slot.
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t index =
      next.fetch_add(1, std::memory_order_relaxed) % kShards;
  return index;
}

}  // namespace detail

std::uint64_t Gauge::encode(double v) { return std::bit_cast<std::uint64_t>(v); }
double Gauge::decode(std::uint64_t bits) { return std::bit_cast<double>(bits); }

void Histogram::record_seconds(double seconds) {
  if (!enabled()) return;
  if (!(seconds >= 0.0)) seconds = 0.0;  // clamp NaN/negative clock skew
  const double ns_f = seconds * 1e9;
  const auto ns = ns_f >= 1.8e19 ? UINT64_MAX
                                 : static_cast<std::uint64_t>(ns_f);
  // Bucket b covers (2^(b-1), 2^b] ns; 0 ns lands in bucket 0.
  const std::size_t b = ns == 0 ? 0 : static_cast<std::size_t>(
                                          64 - std::countl_zero(ns));
  buckets_[std::min(b, kBuckets - 1)].fetch_add(1,
                                                std::memory_order_relaxed);
  sum_ns_.fetch_add(ns, std::memory_order_relaxed);
  std::uint64_t cur = max_ns_.load(std::memory_order_relaxed);
  while (cur < ns && !max_ns_.compare_exchange_weak(
                         cur, ns, std::memory_order_relaxed)) {
  }
  count_shards_[detail::shard_index()].v.fetch_add(
      1, std::memory_order_relaxed);
}

std::uint64_t Histogram::count() const {
  std::uint64_t total = 0;
  for (const auto& s : count_shards_) {
    total += s.v.load(std::memory_order_relaxed);
  }
  return total;
}

double Histogram::bucket_upper_seconds(std::size_t b) {
  return std::ldexp(1.0, static_cast<int>(b)) * 1e-9;
}

// ---------------------------------------------------------------------------
// Registry

struct Registry::Impl {
  mutable std::mutex mutex;
  // Heap-owned so handles stay stable across registration; the metric
  // classes hold atomics and cannot move.
  std::deque<std::unique_ptr<Counter>> counters;
  std::deque<std::unique_ptr<Gauge>> gauges;
  std::deque<std::unique_ptr<Histogram>> histograms;
  std::map<std::string, Counter*, std::less<>> counter_by_name;
  std::map<std::string, Gauge*, std::less<>> gauge_by_name;
  std::map<std::string, Histogram*, std::less<>> histogram_by_name;

  void check_unique(std::string_view name, const void* except) const {
    auto taken = [&](const auto& map) {
      auto it = map.find(name);
      return it != map.end() &&
             static_cast<const void*>(it->second) != except;
    };
    if (taken(counter_by_name) || taken(gauge_by_name) ||
        taken(histogram_by_name)) {
      throw std::invalid_argument(
          "metrics: '" + std::string(name) +
          "' is already registered as a different metric type");
    }
  }
};

Registry::Registry() : impl_(new Impl) {}
Registry::~Registry() { delete impl_; }

Registry& Registry::global() {
  // Leaked on purpose: metric handles are resolved into function-local
  // statics all over the codebase and may be touched by pool threads
  // during process teardown.
  static Registry* instance = new Registry();
  return *instance;
}

Counter& Registry::counter(std::string_view name) {
  std::lock_guard lock(impl_->mutex);
  if (auto it = impl_->counter_by_name.find(name);
      it != impl_->counter_by_name.end()) {
    return *it->second;
  }
  impl_->check_unique(name, nullptr);
  auto& c = *impl_->counters.emplace_back(
      std::unique_ptr<Counter>(new Counter(std::string(name))));
  impl_->counter_by_name.emplace(c.name(), &c);
  return c;
}

Gauge& Registry::gauge(std::string_view name) {
  std::lock_guard lock(impl_->mutex);
  if (auto it = impl_->gauge_by_name.find(name);
      it != impl_->gauge_by_name.end()) {
    return *it->second;
  }
  impl_->check_unique(name, nullptr);
  auto& g = *impl_->gauges.emplace_back(
      std::unique_ptr<Gauge>(new Gauge(std::string(name))));
  impl_->gauge_by_name.emplace(g.name(), &g);
  return g;
}

Histogram& Registry::histogram(std::string_view name) {
  std::lock_guard lock(impl_->mutex);
  if (auto it = impl_->histogram_by_name.find(name);
      it != impl_->histogram_by_name.end()) {
    return *it->second;
  }
  impl_->check_unique(name, nullptr);
  auto& h = *impl_->histograms.emplace_back(
      std::unique_ptr<Histogram>(new Histogram(std::string(name))));
  impl_->histogram_by_name.emplace(h.name(), &h);
  return h;
}

void Registry::snapshot_json(std::ostream& out) const {
  // The lock protects the maps (concurrent registration), not the
  // values: those are atomics read relaxed, so a snapshot taken while
  // writers hammer sees some prefix of their updates — never torn state.
  std::lock_guard lock(impl_->mutex);
  json::Writer w(out);
  w.begin_object();
  w.key("counters").begin_object();
  for (const auto& [name, c] : impl_->counter_by_name) {
    w.member(name, c->value());
  }
  w.end_object();
  w.key("gauges").begin_object();
  for (const auto& [name, g] : impl_->gauge_by_name) {
    w.member(name, g->value());
  }
  w.end_object();
  w.key("histograms").begin_object();
  for (const auto& [name, h] : impl_->histogram_by_name) {
    w.key(name).begin_object();
    w.member("count", h->count());
    w.member("sum_seconds", h->sum_seconds());
    w.member("max_seconds", h->max_seconds());
    w.key("buckets").begin_array();
    for (std::size_t b = 0; b < Histogram::kBuckets; ++b) {
      const std::uint64_t n = h->bucket_count(b);
      if (n == 0) continue;
      w.begin_object();
      w.member("le_seconds", Histogram::bucket_upper_seconds(b));
      w.member("count", n);
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_object();
  w.end_object();
}

std::string Registry::snapshot_json() const {
  std::ostringstream out;
  snapshot_json(out);
  return out.str();
}

void Registry::reset() {
  std::lock_guard lock(impl_->mutex);
  for (auto& c : impl_->counters) {
    for (auto& s : c->shards_) s.v.store(0, std::memory_order_relaxed);
  }
  for (auto& g : impl_->gauges) {
    g->bits_.store(Gauge::encode(0.0), std::memory_order_relaxed);
  }
  for (auto& h : impl_->histograms) {
    for (auto& b : h->buckets_) b.store(0, std::memory_order_relaxed);
    h->sum_ns_.store(0, std::memory_order_relaxed);
    h->max_ns_.store(0, std::memory_order_relaxed);
    for (auto& s : h->count_shards_) s.v.store(0, std::memory_order_relaxed);
  }
}

}  // namespace amped::metrics
