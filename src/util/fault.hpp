// Deterministic fault injection and transient-I/O retry: the testing
// substrate of the robustness layer.
//
// Production code marks failure-prone spots with AMPED_FAULT_POINT("name")
// — a named *injection site*. Sites are inert by default: the macro is one
// relaxed atomic load when nothing is armed, so shipping the hooks costs
// nothing. Tests (and chaos runs) arm sites with a trigger policy:
//
//   fault::arm("spill.write", {.nth = 1, .times = 2, .transient = true});
//
// fires a retryable TransientError on the first two passes through the
// site and then goes quiet — exactly the shape a retry loop must survive.
// Policies are either deterministic (fire on calls [nth, nth + times)) or
// probabilistic with a fixed seed (each pass consults a per-site PRNG), so
// every injected failure is reproducible.
//
// Configuration also comes from the environment / CLI:
//
//   AMPED_FAULTS="spill.write:nth=1:times=2:transient,stream.readahead:prob=0.01:seed=7"
//
// Clauses are comma-separated; within a clause the first ':'-field is the
// site name and the rest are key=value policy fields (nth, times, prob,
// seed) or the bare word `transient`.
//
// The retry half of this header is used by real recovery paths:
// retry_transient() runs an I/O callable and retries it with bounded
// exponential backoff while it throws TransientError (injected faults or
// wrapped EINTR/EAGAIN conditions), rethrowing a permanent error after the
// attempt budget is spent.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

namespace amped::fault {

// Thrown by a firing site armed without `transient`. Always carries the
// site name, so the failure is attributable from the what() string alone.
class FaultInjected : public std::runtime_error {
 public:
  explicit FaultInjected(const std::string& site)
      : std::runtime_error("fault injected at " + site), site_(site) {}
  const std::string& site() const { return site_; }

 private:
  std::string site_;
};

// A retryable failure: the operation may succeed if repeated (interrupted
// syscalls, momentary resource exhaustion, injected transient faults).
// retry_transient() retries exactly this type; everything else is
// permanent and propagates immediately.
class TransientError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

// Trigger policy for one armed site.
struct FaultSpec {
  // Deterministic trigger: fire on calls [nth, nth + times), 1-based.
  // `times = 0` never fires deterministically (probability-only specs).
  std::uint64_t nth = 1;
  std::uint64_t times = 1;
  // Probabilistic trigger: when > 0, each call additionally fires with
  // this probability from a per-site PRNG seeded with `seed`. The
  // sequence is deterministic in call order (which is itself only
  // deterministic for single-threaded callers — use nth/times for
  // bit-exact tests, prob for chaos sweeps).
  double probability = 0.0;
  std::uint64_t seed = 0;
  // Fire as TransientError (retry loops will absorb it) instead of the
  // permanent FaultInjected.
  bool transient = false;
};

namespace detail {
// Count of armed sites; the whole framework when disabled is this load.
extern std::atomic<int> armed_sites;
// Slow path of AMPED_FAULT_POINT: looks `site` up, counts the call, and
// throws if the armed policy says this call fires.
void check(const char* site);
}  // namespace detail

inline bool any_armed() {
  return detail::armed_sites.load(std::memory_order_relaxed) > 0;
}

// Arms `site` with `spec`, replacing any previous policy and resetting
// its call counter. Thread-safe, as are all registry operations.
void arm(const std::string& site, const FaultSpec& spec);
// Disarms one site / every site. Counters for disarmed sites are dropped.
void disarm(const std::string& site);
void disarm_all();
// Introspection for tests: how often `site` was passed / fired since it
// was armed (0 for unarmed sites — unarmed passes are not counted).
std::uint64_t call_count(const std::string& site);
std::uint64_t fire_count(const std::string& site);

// Parses the AMPED_FAULTS grammar above and arms each clause. Throws
// std::runtime_error on a malformed clause (CLI callers turn that into a
// usage error; the env loader warns and ignores).
void configure(const std::string& config);

// Test helper: arms on construction, disarms its site on destruction.
class FaultScope {
 public:
  FaultScope(std::string site, const FaultSpec& spec) : site_(std::move(site)) {
    arm(site_, spec);
  }
  ~FaultScope() { disarm(site_); }
  FaultScope(const FaultScope&) = delete;
  FaultScope& operator=(const FaultScope&) = delete;

 private:
  std::string site_;
};

// Bounded exponential backoff for retry_transient. Defaults keep a fully
// exhausted retry under ~5 ms so failure tests stay fast while real
// transient conditions (interrupted syscalls) still get breathing room.
struct RetryPolicy {
  int max_attempts = 4;
  std::chrono::microseconds initial_backoff{100};
  double multiplier = 4.0;
  std::chrono::microseconds max_backoff{5000};
};

// Runs `fn`, retrying while it throws TransientError, sleeping the
// (exponentially growing, capped) backoff between attempts. After
// max_attempts the last transient error is rethrown wrapped in a
// permanent std::runtime_error naming `what`. Non-transient exceptions
// propagate unchanged on the first throw. `retries`, when non-null, is
// incremented once per retry actually performed (recovery accounting).
template <typename Fn>
decltype(auto) retry_transient(const char* what, Fn&& fn,
                               const RetryPolicy& policy = {},
                               std::size_t* retries = nullptr) {
  auto backoff = policy.initial_backoff;
  for (int attempt = 1;; ++attempt) {
    try {
      return fn();
    } catch (const TransientError& e) {
      if (attempt >= policy.max_attempts) {
        throw std::runtime_error(
            std::string(what) + ": transient error persisted after " +
            std::to_string(attempt) + " attempts: " + e.what());
      }
      if (retries != nullptr) ++*retries;
      std::this_thread::sleep_for(backoff);
      backoff = std::min(
          policy.max_backoff,
          std::chrono::microseconds(static_cast<std::int64_t>(
              static_cast<double>(backoff.count()) * policy.multiplier)));
    }
  }
}

}  // namespace amped::fault

// The injection site marker. `site` must be a string literal; the
// disabled cost is the relaxed load in any_armed().
#define AMPED_FAULT_POINT(site)                                   \
  do {                                                            \
    if (::amped::fault::any_armed()) ::amped::fault::detail::check(site); \
  } while (false)
