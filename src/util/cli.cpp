#include "util/cli.hpp"

#include <cstdio>
#include <cstdlib>
#include <stdexcept>

#include "core/mttkrp.hpp"
#include "exec/backend.hpp"
#include "io/memory_budget.hpp"
#include "util/fault.hpp"
#include "util/logging.hpp"
#include "util/thread_pool.hpp"

namespace amped {

CliArgs::CliArgs(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    std::string body = arg.substr(2);
    auto eq = body.find('=');
    if (eq != std::string::npos) {
      flags_[body.substr(0, eq)] = body.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      flags_[body] = argv[++i];
    } else {
      flags_[body] = "true";
    }
  }
}

bool CliArgs::has(const std::string& key) const {
  return flags_.contains(key);
}

std::string CliArgs::get(const std::string& key,
                         const std::string& fallback) const {
  auto it = flags_.find(key);
  return it == flags_.end() ? fallback : it->second;
}

std::int64_t CliArgs::get_int(const std::string& key,
                              std::int64_t fallback) const {
  auto it = flags_.find(key);
  if (it == flags_.end()) return fallback;
  return std::strtoll(it->second.c_str(), nullptr, 10);
}

double CliArgs::get_double(const std::string& key, double fallback) const {
  auto it = flags_.find(key);
  if (it == flags_.end()) return fallback;
  return std::strtod(it->second.c_str(), nullptr);
}

bool CliArgs::get_bool(const std::string& key, bool fallback) const {
  auto it = flags_.find(key);
  if (it == flags_.end()) return fallback;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

void apply_common_flags(const CliArgs& args) {
  if (args.has("log-level")) {
    // Same vocabulary as AMPED_LOG_LEVEL; the flag wins over the
    // environment because it is the more deliberate of the two.
    const std::string level = args.get("log-level", "");
    if (level == "error") {
      set_log_level(LogLevel::kError);
    } else if (level == "warn") {
      set_log_level(LogLevel::kWarn);
    } else if (level == "info") {
      set_log_level(LogLevel::kInfo);
    } else if (level == "debug") {
      set_log_level(LogLevel::kDebug);
    } else {
      AMPED_LOG_ERROR << "invalid --log-level '" << level
                      << "' (want error|warn|info|debug)";
      std::exit(2);
    }
  }
  const std::int64_t threads = args.get_int("threads", 0);
  if (threads > 0) {
    set_host_parallelism(static_cast<std::size_t>(threads));
  }
  if (args.has("memory-budget")) {
    // Sizes accept K/M/G/T suffixes; "0" returns to unlimited. The flag
    // wins over the AMPED_MEMORY_BUDGET environment variable. A typo
    // exits with a usage error rather than escaping main as an
    // exception (this helper only runs in CLI binaries).
    try {
      io::HostMemoryBudget::global().set_limit(
          io::parse_byte_size(args.get("memory-budget", "0")));
    } catch (const std::exception& e) {
      AMPED_LOG_ERROR << "invalid --memory-budget value: " << e.what();
      std::exit(2);
    }
  }
  if (args.has("faults")) {
    // Same grammar as AMPED_FAULTS (util/fault.hpp); the flag arms sites
    // in addition to whatever the environment armed.
    try {
      fault::configure(args.get("faults", ""));
    } catch (const std::exception& e) {
      AMPED_LOG_ERROR << "invalid --faults value: " << e.what();
      std::exit(2);
    }
  }
}

void apply_common_flags(const CliArgs& args, MttkrpOptions* mttkrp) {
  apply_common_flags(args);
  if (!mttkrp) return;
  // Scheduling knobs reach the execution engine through MttkrpOptions;
  // exec::make_scheduler turns them into the matching plan scheduler. A
  // typo exits with a usage error rather than escaping main as an
  // exception (this helper only runs in CLI binaries).
  try {
    if (args.has("policy")) {
      mttkrp->policy = parse_policy(args.get("policy", ""));
    }
    if (args.has("allgather")) {
      mttkrp->allgather = parse_allgather(args.get("allgather", ""));
    }
    if (args.has("backend")) {
      mttkrp->backend = exec::parse_backend(args.get("backend", ""));
    }
  } catch (const std::exception& e) {
    AMPED_LOG_ERROR << e.what();
    std::exit(2);
  }
  mttkrp->pipelined_streaming =
      args.get_bool("pipelined", mttkrp->pipelined_streaming);
}

}  // namespace amped
