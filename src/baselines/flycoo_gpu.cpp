#include "baselines/flycoo_gpu.hpp"

#include <vector>

#include "core/ec_kernel.hpp"
#include "formats/memory_model.hpp"
#include "sim/executor.hpp"

namespace amped::baselines {

BaselineResult run_flycoo_gpu(sim::Platform& platform, const CooTensor& t,
                              const FactorSet& factors,
                              const BaselineOptions& options) {
  BaselineResult result;
  result.name = "flycoo-gpu";

  const auto workload = detail::resolve_workload(options, t);
  const std::uint64_t needed =
      formats::flycoo_bytes(workload.full_dims, workload.full_nnz) +
      formats::factor_bytes(workload.full_dims, factors.rank());
  const std::uint64_t capacity = detail::device_capacity(platform);
  if (needed > capacity) {
    detail::fail_oom(result, needed, capacity);
    return result;
  }
  result.supported = true;

  const std::size_t modes = t.num_modes();
  const std::size_t rank = factors.rank();
  auto& gpu = platform.gpu(0);
  const auto& cost = platform.gpu_cost_model();
  const int sm_count = gpu.spec().sm_count;

  // FLYCOO element: indices + value + embedded shard id.
  const double elem_bytes =
      static_cast<double>(modes * sizeof(index_t) + sizeof(value_t) +
                          sizeof(index_t));

  const detail::Measure measure(platform);

  // Host-side sorted copies stand in for the GPU-side remap result; the
  // remap itself is charged below as the GPU pass it is (§2.2: dynamic
  // tensor remapping reorders the tensor during execution time).
  CooTensor sorted = t;
  for (std::size_t d = 0; d < modes; ++d) {
    // Dynamic remapping: one read + one write of the full tensor copy at
    // device bandwidth.
    const double remap_seconds =
        2.0 * static_cast<double>(t.nnz()) * elem_bytes /
        gpu.spec().mem_bandwidth;
    gpu.advance(sim::Phase::kCompute, remap_seconds);
    sorted.sort_by_mode(d);

    sim::KernelProfile profile;
    profile.coord_bytes_per_nnz = elem_bytes;
    profile.factor_read_efficiency = sim::factor_read_efficiency(
        workload.full_dims, rank, d, platform.config().gpu.l2_bytes,
        kFlycooLocality);
    profile.output_write_efficiency = 1.0;  // sorted: amortised over runs
    profile.atomic_scale = 1.0;             // runs absorb the hot rows

    DenseMatrix out(t.dim(d), rank);
    const nnz_t seg = std::max<nnz_t>(
        options.block_width,
        (t.nnz() + sm_count - 1) / static_cast<nnz_t>(sm_count));
    std::vector<double> block_seconds;
    for (nnz_t lo = 0; lo < t.nnz(); lo += seg) {
      const nnz_t hi = std::min<nnz_t>(t.nnz(), lo + seg);
      auto stats = run_ec_block(sorted, lo, hi, d, factors, out,
                                BlockOrder::kOutputSorted);
      stats.block_width = static_cast<std::size_t>(options.block_width);
      block_seconds.push_back(cost.ec_block_seconds(stats, profile));
    }
    gpu.advance(sim::Phase::kCompute,
                platform.kernel_launch_seconds() +
                    sim::grid_makespan(block_seconds, sm_count));
    if (options.collect_outputs) result.outputs.push_back(std::move(out));
  }

  measure.finish(result);
  return result;
}

}  // namespace amped::baselines
