#include "baselines/flycoo_gpu.hpp"

#include <vector>

#include "core/ec_kernel.hpp"
#include "core/kernel_cache.hpp"
#include "exec/plan.hpp"
#include "formats/memory_model.hpp"
#include "sim/executor.hpp"

namespace amped::baselines {

BaselineResult run_flycoo_gpu(sim::Platform& platform, const CooTensor& t,
                              const FactorSet& factors,
                              const BaselineOptions& options) {
  BaselineResult result;
  result.name = "flycoo-gpu";

  const auto workload = detail::resolve_workload(options, t);
  const std::uint64_t needed =
      formats::flycoo_bytes(workload.full_dims, workload.full_nnz) +
      formats::factor_bytes(workload.full_dims, factors.rank());
  const std::uint64_t capacity = detail::device_capacity(platform);
  if (needed > capacity) {
    detail::fail_oom(result, needed, capacity);
    return result;
  }
  result.supported = true;

  const std::size_t modes = t.num_modes();
  const std::size_t rank = factors.rank();

  // FLYCOO element: indices + value + embedded shard id.
  const double elem_bytes =
      static_cast<double>(modes * sizeof(index_t) + sizeof(value_t) +
                          sizeof(index_t));

  const detail::Measure measure(platform);

  // One sequential lane on GPU 0; per mode, two grids: the dynamic
  // remapping pass (§2.2 — reorders the resident tensor on the device,
  // modelled as one read + one write at device bandwidth; the host-side
  // sort stands in for the remap result) and the EC kernel over the
  // remapped copy.
  std::vector<DenseMatrix> outs;
  outs.reserve(modes);
  for (std::size_t d = 0; d < modes; ++d) outs.emplace_back(t.dim(d), rank);

  exec::Plan plan;
  plan.scheduler = "flycoo-remap";
  auto sorted = std::make_shared<CooTensor>(t);
  for (std::size_t d = 0; d < modes; ++d) {
    exec::Task remap;
    remap.kind = exec::TaskKind::kKernel;
    remap.gpu = 0;
    remap.kernel = [sorted, nnz = t.nnz(), elem_bytes,
                    d](const exec::ExecContext& ctx) -> double {
      sorted->sort_by_mode(d);
      return 2.0 * static_cast<double>(nnz) * elem_bytes /
             ctx.platform.gpu(ctx.gpu).spec().mem_bandwidth;
    };
    plan.tasks.push_back(std::move(remap));

    exec::Task kernel;
    kernel.kind = exec::TaskKind::kKernel;
    kernel.gpu = 0;
    kernel.deps = {plan.tasks.size() - 1};
    // One kernel shape for every segment: resolve the tile program at
    // plan-build time, not per segment (cache references are stable).
    const TileProgram* program = &KernelCache::global().find_or_create(
        KernelShape::of(modes, rank, BlockOrder::kOutputSorted));
    kernel.kernel = [sorted, &factors, &workload, out = &outs[d], d, modes,
                     rank, elem_bytes, nnz = t.nnz(), program,
                     width = options.block_width](
                        const exec::ExecContext& ctx) -> double {
      const auto& cost = ctx.platform.cost_model(ctx.gpu);
      const int sm_count = ctx.platform.gpu(ctx.gpu).spec().sm_count;

      sim::KernelProfile profile;
      profile.coord_bytes_per_nnz = elem_bytes;
      profile.factor_read_efficiency = sim::factor_read_efficiency(
          workload.full_dims, rank, d, ctx.platform.config().gpu.l2_bytes,
          kFlycooLocality);
      profile.output_write_efficiency = 1.0;  // sorted: amortised over runs
      profile.atomic_scale = 1.0;             // runs absorb the hot rows

      const nnz_t seg = std::max<nnz_t>(
          width, (nnz + sm_count - 1) / static_cast<nnz_t>(sm_count));
      std::vector<double> block_seconds;
      for (nnz_t lo = 0; lo < nnz; lo += seg) {
        const nnz_t hi = std::min<nnz_t>(nnz, lo + seg);
        auto stats = run_ec_block(*program, *sorted, lo, hi, d, factors,
                                  *out);
        stats.block_width = static_cast<std::size_t>(width);
        block_seconds.push_back(cost.ec_block_seconds(stats, profile));
      }
      return ctx.platform.kernel_launch_seconds() +
             sim::grid_makespan(block_seconds, sm_count);
    };
    plan.tasks.push_back(std::move(kernel));
  }

  exec::PlanExecutor(platform).run(plan);
  if (options.collect_outputs) {
    for (auto& out : outs) result.outputs.push_back(std::move(out));
  }

  measure.finish(result);
  return result;
}

}  // namespace amped::baselines
