// HiCOO-based single-GPU baselines from the ParTI suite (Li et al.):
//
//  - run_parti_gpu:  ParTI's stock HiCOO GPU kernel — one threadblock per
//    HiCOO block, no shared-memory privatisation of the output rows.
//  - run_hicoo_gpu:  the same format with the "recommended configurations
//    provided in the source code" (§5.1.4): superblock grouping so a
//    threadblock amortises scheduling across many small blocks, plus
//    privatised output accumulation.
//
// Both keep the compressed tensor resident on one device; the per-block
// header overhead on hypersparse tensors is what kills Reddit (see
// formats/memory_model.hpp), and the kernels support up to 4 modes.
#pragma once

#include "baselines/runner.hpp"

namespace amped::baselines {

inline constexpr std::size_t kHicooMaxModes = 4;
inline constexpr unsigned kHicooBlockBits = 7;  // 128-wide blocks

}  // namespace amped::baselines
