// Uniform interface over the state-of-the-art baselines of §5.1.4 plus
// AMPED itself and the Fig. 6 equal-nnz strawman.
//
// Each runner reimplements its system's execution and data-movement
// strategy on the shared simulator: what is resident vs. streamed, which
// kernel profile it pays, and whether it can run at all. Feasibility is
// decided from the *full-scale* workload (WorkloadInfo) against the
// unscaled 48 GB device capacity, reproducing the paper's "runtime error"
// outcomes; unsupported runs return supported = false with the reason.
// The arithmetic really executes: `outputs[d]` holds mode d's MTTKRP
// result, verified against the sequential reference in the tests.
#pragma once

#include <string>
#include <vector>

#include "sim/platform.hpp"
#include "tensor/coo_tensor.hpp"
#include "tensor/dense_matrix.hpp"
#include "tensor/generator.hpp"

namespace amped::baselines {

struct WorkloadInfo {
  std::vector<std::uint64_t> full_dims;  // unscaled Table 3 mode sizes
  std::uint64_t full_nnz = 0;            // unscaled nonzero count

  static WorkloadInfo from_tensor(const CooTensor& t);
  static WorkloadInfo from_dataset(const ScaledDataset& ds);
};

struct BaselineOptions {
  nnz_t block_width = 32;
  WorkloadInfo workload;        // empty full_dims = derive from the tensor
  bool collect_outputs = true;  // keep per-mode outputs for verification
};

struct BaselineResult {
  std::string name;
  bool supported = false;
  std::string failure_reason;        // why the run was refused
  double total_seconds = 0.0;        // simulated, all modes (§5.1.6)
  sim::Timeline timeline;            // aggregate device-time breakdown
  std::vector<DenseMatrix> outputs;  // per-mode MTTKRP results
};

// Individual runners. Single-GPU baselines use platform.gpu(0) and expect
// a platform constructed with num_gpus = 1 for faithful link modelling.
BaselineResult run_blco_gpu(sim::Platform& platform, const CooTensor& t,
                            const FactorSet& factors,
                            const BaselineOptions& options);
BaselineResult run_mmcsf_gpu(sim::Platform& platform, const CooTensor& t,
                             const FactorSet& factors,
                             const BaselineOptions& options);
BaselineResult run_hicoo_gpu(sim::Platform& platform, const CooTensor& t,
                             const FactorSet& factors,
                             const BaselineOptions& options);
BaselineResult run_parti_gpu(sim::Platform& platform, const CooTensor& t,
                             const FactorSet& factors,
                             const BaselineOptions& options);
BaselineResult run_flycoo_gpu(sim::Platform& platform, const CooTensor& t,
                              const FactorSet& factors,
                              const BaselineOptions& options);
// Fig. 6 strawman: equal nonzero split across all GPUs of `platform`,
// per-element partial results merged on the host CPU.
BaselineResult run_equal_nnz(sim::Platform& platform, const CooTensor& t,
                             const FactorSet& factors,
                             const BaselineOptions& options);
// AMPED itself through the same interface (builds the sharded format and
// runs the multi-GPU algorithm on all of `platform`'s GPUs).
BaselineResult run_amped(sim::Platform& platform, const CooTensor& t,
                         const FactorSet& factors,
                         const BaselineOptions& options);

// Names accepted by run_baseline, in the paper's Fig. 5 order.
std::vector<std::string> baseline_names();
BaselineResult run_baseline(const std::string& name, sim::Platform& platform,
                            const CooTensor& t, const FactorSet& factors,
                            const BaselineOptions& options);

// Shared helpers for the runner implementations.
namespace detail {
// Fills workload from the tensor when the caller did not provide one.
WorkloadInfo resolve_workload(const BaselineOptions& options,
                              const CooTensor& t);
// Unscaled device capacity of the platform's GPUs.
std::uint64_t device_capacity(const sim::Platform& platform);
// Marks `result` unsupported with a formatted out-of-memory reason.
void fail_oom(BaselineResult& result, std::uint64_t needed,
              std::uint64_t capacity);

// Captures platform makespan + timeline at construction; finish() writes
// the deltas into a BaselineResult.
class Measure {
 public:
  explicit Measure(const sim::Platform& platform)
      : platform_(platform),
        t0_(platform.makespan()),
        agg0_(platform.aggregate_timeline()) {}

  void finish(BaselineResult& result) const {
    result.total_seconds = platform_.makespan() - t0_;
    const auto agg1 = platform_.aggregate_timeline();
    for (std::size_t p = 0; p < sim::kNumPhases; ++p) {
      const auto phase = static_cast<sim::Phase>(p);
      result.timeline.add(phase, agg1.total(phase) - agg0_.total(phase));
    }
  }

 private:
  const sim::Platform& platform_;
  double t0_;
  sim::Timeline agg0_;
};
}  // namespace detail

}  // namespace amped::baselines
