// BLCO baseline (Nguyen et al., ICS'22) — single GPU, out-of-memory
// streaming execution, as configured in the paper's evaluation (§5.1.4:
// "out-of-memory computation enabled").
//
// The tensor lives in host memory as blocked linearised coordinates; for
// every output mode the full block stream crosses the single PCIe link
// again, and the kernel pays de-linearisation ALU work plus unsorted
// atomics on the two modes the linear order does not cluster. This is the
// baseline AMPED's headline 5.1x geometric-mean speedup is measured
// against.
#pragma once

#include "baselines/runner.hpp"

namespace amped::baselines {

// Kernel characteristics of the BLCO GPU kernel, exposed for the tests.
sim::KernelProfile blco_kernel_profile();

}  // namespace amped::baselines
