#include "baselines/runner.hpp"

#include <sstream>
#include <stdexcept>

#include "core/amped_tensor.hpp"
#include "core/mttkrp.hpp"

namespace amped::baselines {

WorkloadInfo WorkloadInfo::from_tensor(const CooTensor& t) {
  WorkloadInfo w;
  w.full_dims.assign(t.dims().begin(), t.dims().end());
  w.full_nnz = t.nnz();
  return w;
}

WorkloadInfo WorkloadInfo::from_dataset(const ScaledDataset& ds) {
  WorkloadInfo w;
  w.full_dims = ds.profile.full_dims;
  w.full_nnz = ds.profile.full_nnz;
  return w;
}

namespace detail {

WorkloadInfo resolve_workload(const BaselineOptions& options,
                              const CooTensor& t) {
  if (!options.workload.full_dims.empty()) return options.workload;
  return WorkloadInfo::from_tensor(t);
}

std::uint64_t device_capacity(const sim::Platform& platform) {
  return platform.config().gpu.mem_bytes;  // unscaled spec
}

void fail_oom(BaselineResult& result, std::uint64_t needed,
              std::uint64_t capacity) {
  result.supported = false;
  std::ostringstream os;
  os << "runtime error: needs " << needed / (1ull << 30) << " GiB, GPU has "
     << capacity / (1ull << 30) << " GiB";
  result.failure_reason = os.str();
}

}  // namespace detail

BaselineResult run_amped(sim::Platform& platform, const CooTensor& t,
                         const FactorSet& factors,
                         const BaselineOptions& options) {
  BaselineResult result;
  result.name = "amped";
  result.supported = true;  // streams shards; always fits

  AmpedBuildOptions build;
  build.num_gpus = platform.num_gpus();
  const AmpedTensor tensor = AmpedTensor::build(t, build);

  MttkrpOptions mopts;
  mopts.block_width = options.block_width;
  const auto workload = detail::resolve_workload(options, t);
  mopts.full_dims = workload.full_dims;

  const auto before = platform.aggregate_timeline();
  std::vector<DenseMatrix> outputs;
  auto report = mttkrp_all_modes(platform, tensor, factors, outputs, mopts);
  result.total_seconds = report.total_seconds;
  auto after = platform.aggregate_timeline();
  for (std::size_t p = 0; p < sim::kNumPhases; ++p) {
    const auto phase = static_cast<sim::Phase>(p);
    result.timeline.add(phase, after.total(phase) - before.total(phase));
  }
  if (options.collect_outputs) result.outputs = std::move(outputs);
  return result;
}

std::vector<std::string> baseline_names() {
  return {"blco", "mm-csf", "hicoo-gpu", "flycoo-gpu", "parti-gpu"};
}

BaselineResult run_baseline(const std::string& name, sim::Platform& platform,
                            const CooTensor& t, const FactorSet& factors,
                            const BaselineOptions& options) {
  if (name == "amped") return run_amped(platform, t, factors, options);
  if (name == "blco") return run_blco_gpu(platform, t, factors, options);
  if (name == "mm-csf") return run_mmcsf_gpu(platform, t, factors, options);
  if (name == "hicoo-gpu") {
    return run_hicoo_gpu(platform, t, factors, options);
  }
  if (name == "parti-gpu") {
    return run_parti_gpu(platform, t, factors, options);
  }
  if (name == "flycoo-gpu") {
    return run_flycoo_gpu(platform, t, factors, options);
  }
  if (name == "equal-nnz") {
    return run_equal_nnz(platform, t, factors, options);
  }
  throw std::invalid_argument("unknown baseline: " + name);
}

}  // namespace amped::baselines
