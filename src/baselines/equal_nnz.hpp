// Equal-nonzero-count multi-GPU distribution — the alternative §5.3
// compares AMPED's partitioning scheme against (Fig. 6).
//
// The tensor is split into M equal chunks with no regard for output
// indices, so a GPU cannot own any output row outright: the kernel emits
// per-element partial results ("intermediate values", §1) which are
// copied back and merged into the factor matrix by the host CPU — the
// exact host-side collection work AMPED's sharding is designed to avoid
// (§1 contribution 3). The 5.3x-10.3x slowdowns of Fig. 6 come from this
// D2H volume (nnz x R values per mode) and the host merge throughput.
#pragma once

#include "baselines/runner.hpp"

namespace amped::baselines {}  // namespace amped::baselines
