#include "baselines/blco_gpu.hpp"

#include <vector>

#include "core/ec_kernel.hpp"
#include "exec/plan.hpp"
#include "formats/blco.hpp"
#include "sim/executor.hpp"

namespace amped::baselines {

sim::KernelProfile blco_kernel_profile() {
  return sim::KernelProfile{
      // 8-byte key + 4-byte value per element, read twice: once by the
      // conflict-detection pass of the hierarchical-atomics scheme and
      // once by the compute pass.
      .coord_bytes_per_nnz = 24.0,
      // Linear order clusters the leading mode only; trailing-mode factor
      // gathers stride badly across the huge linearised index space.
      .factor_read_efficiency = 1.5,
      // Conflict-resolution buffers add write traffic beyond the raw
      // output row update.
      .output_write_efficiency = 1.15,
      // De-linearisation shifts/masks per element.
      .flop_overhead = 1.45,
      .atomic_scale = 1.0,
  };
}

BaselineResult run_blco_gpu(sim::Platform& platform, const CooTensor& t,
                            const FactorSet& factors,
                            const BaselineOptions& options) {
  BaselineResult result;
  result.name = "blco";
  result.supported = true;  // streaming: any tensor fits block by block

  const auto workload = detail::resolve_workload(options, t);
  const formats::BlcoTensor blco = formats::BlcoTensor::build(t);
  const std::size_t modes = t.num_modes();
  const std::size_t rank = factors.rank();
  auto& gpu = platform.gpu(0);

  const double t0 = platform.makespan();
  const auto agg0 = platform.aggregate_timeline();

  gpu.alloc(factors.total_bytes());
  std::vector<value_t> scratch(rank);

  // One sequential lane on GPU 0: per mode, each BLCO block streams
  // through a pinned bounce buffer (two copies per byte on the single
  // host link) and executes as one grid. The engine interleaves the H2D
  // and kernel tasks on the device clock exactly as the bespoke loop did.
  std::vector<DenseMatrix> outs;
  outs.reserve(modes);
  for (std::size_t d = 0; d < modes; ++d) outs.emplace_back(t.dim(d), rank);

  exec::Plan plan;
  plan.scheduler = "blco-stream";
  for (std::size_t d = 0; d < modes; ++d) {
    auto profile = blco_kernel_profile();
    profile.factor_read_efficiency = sim::factor_read_efficiency(
        workload.full_dims, rank, d, platform.config().gpu.l2_bytes,
        profile.factor_read_efficiency);

    for (const auto& block : blco.blocks()) {
      const std::uint64_t payload = block.payload_bytes();

      exec::Task h2d;
      h2d.kind = exec::TaskKind::kH2D;
      h2d.gpu = 0;
      // Out-of-memory streaming: the multi-GB tensor cannot stay pinned,
      // so every block is staged through a pinned bounce buffer — two
      // copies per byte, but only one block resident.
      h2d.transfer_bytes = 2 * payload;
      h2d.alloc_bytes = payload;
      plan.tasks.push_back(std::move(h2d));

      exec::Task kernel;
      kernel.kind = exec::TaskKind::kKernel;
      kernel.gpu = 0;
      kernel.free_bytes = payload;
      kernel.deps = {plan.tasks.size() - 1};
      // BLCO blocks keep their linearised (unsorted) element order; the
      // shape binds order/modes/rank for the stats accumulator in one
      // place so pricing cannot disagree with the arithmetic.
      const KernelShape shape =
          KernelShape::of(modes, rank, BlockOrder::kUnsorted);
      kernel.kernel = [&scratch, &blco, &factors, blk = &block, profile,
                       out = &outs[d], d, modes, rank, shape,
                       width = options.block_width](
                          const exec::ExecContext& ctx) -> double {
        const auto& cost = ctx.platform.cost_model(ctx.gpu);
        const int sm_count = ctx.platform.gpu(ctx.gpu).spec().sm_count;
        // Execute the block as one grid; threadblocks take contiguous
        // element segments (one per SM at full occupancy).
        const nnz_t seg = std::max<nnz_t>(
            width,
            (blk->nnz() + sm_count - 1) / static_cast<nnz_t>(sm_count));
        std::vector<double> block_seconds;
        RunStatsAccumulator acc(shape);
        nnz_t in_segment = 0;
        blco.visit_block(*blk, [&](std::span<const index_t> coords,
                                   value_t v) {
          for (std::size_t r = 0; r < rank; ++r) scratch[r] = v;
          for (std::size_t w = 0; w < modes; ++w) {
            if (w == d) continue;
            const auto row = factors.factor(w).row(coords[w]);
            for (std::size_t r = 0; r < rank; ++r) scratch[r] *= row[r];
          }
          auto out_row = out->row(coords[d]);
          for (std::size_t r = 0; r < rank; ++r) out_row[r] += scratch[r];

          acc.feed(coords[d]);
          if (++in_segment == seg) {
            block_seconds.push_back(cost.ec_block_seconds(
                acc.finish(static_cast<std::size_t>(width)),
                profile));
            in_segment = 0;
          }
        });
        if (in_segment > 0) {
          block_seconds.push_back(cost.ec_block_seconds(
              acc.finish(static_cast<std::size_t>(width)),
              profile));
        }
        return ctx.platform.kernel_launch_seconds() +
               sim::grid_makespan(block_seconds, sm_count);
      };
      plan.tasks.push_back(std::move(kernel));
    }
  }

  exec::PlanExecutor(platform).run(plan);
  for (std::size_t d = 0; d < modes && options.collect_outputs; ++d) {
    result.outputs.push_back(std::move(outs[d]));
  }

  gpu.free(factors.total_bytes());
  result.total_seconds = platform.makespan() - t0;
  auto agg1 = platform.aggregate_timeline();
  for (std::size_t p = 0; p < sim::kNumPhases; ++p) {
    const auto phase = static_cast<sim::Phase>(p);
    result.timeline.add(phase, agg1.total(phase) - agg0.total(phase));
  }
  return result;
}

}  // namespace amped::baselines
