#include "baselines/blco_gpu.hpp"

#include <array>
#include <vector>

#include "core/ec_kernel.hpp"
#include "formats/blco.hpp"
#include "sim/executor.hpp"

namespace amped::baselines {

sim::KernelProfile blco_kernel_profile() {
  return sim::KernelProfile{
      // 8-byte key + 4-byte value per element, read twice: once by the
      // conflict-detection pass of the hierarchical-atomics scheme and
      // once by the compute pass.
      .coord_bytes_per_nnz = 24.0,
      // Linear order clusters the leading mode only; trailing-mode factor
      // gathers stride badly across the huge linearised index space.
      .factor_read_efficiency = 1.5,
      // Conflict-resolution buffers add write traffic beyond the raw
      // output row update.
      .output_write_efficiency = 1.15,
      // De-linearisation shifts/masks per element.
      .flop_overhead = 1.45,
      .atomic_scale = 1.0,
  };
}

BaselineResult run_blco_gpu(sim::Platform& platform, const CooTensor& t,
                            const FactorSet& factors,
                            const BaselineOptions& options) {
  BaselineResult result;
  result.name = "blco";
  result.supported = true;  // streaming: any tensor fits block by block

  const auto workload = detail::resolve_workload(options, t);
  const formats::BlcoTensor blco = formats::BlcoTensor::build(t);
  const std::size_t modes = t.num_modes();
  const std::size_t rank = factors.rank();
  auto& gpu = platform.gpu(0);
  const auto& cost = platform.gpu_cost_model();
  const int sm_count = gpu.spec().sm_count;

  const double t0 = platform.makespan();
  const auto agg0 = platform.aggregate_timeline();

  gpu.alloc(factors.total_bytes());
  std::array<value_t, 256> scratch{};

  for (std::size_t d = 0; d < modes; ++d) {
    DenseMatrix out(t.dim(d), rank);
    auto profile = blco_kernel_profile();
    profile.factor_read_efficiency = sim::factor_read_efficiency(
        workload.full_dims, rank, d, platform.config().gpu.l2_bytes,
        profile.factor_read_efficiency);

    for (const auto& block : blco.blocks()) {
      const std::uint64_t payload = block.payload_bytes();
      gpu.alloc(payload);
      // Out-of-memory streaming: the multi-GB tensor cannot stay pinned,
      // so every block is staged through a pinned bounce buffer — two
      // copies per byte on the single host link.
      platform.h2d(0, 2 * payload);

      // Execute the block as one grid; threadblocks take contiguous
      // element segments (one per SM at full occupancy).
      const nnz_t seg = std::max<nnz_t>(
          options.block_width,
          (block.nnz() + sm_count - 1) / static_cast<nnz_t>(sm_count));
      std::vector<double> block_seconds;
      RunStatsAccumulator acc;
      nnz_t in_segment = 0;
      blco.visit_block(block, [&](std::span<const index_t> coords,
                                  value_t v) {
        for (std::size_t r = 0; r < rank; ++r) scratch[r] = v;
        for (std::size_t w = 0; w < modes; ++w) {
          if (w == d) continue;
          const auto row = factors.factor(w).row(coords[w]);
          for (std::size_t r = 0; r < rank; ++r) scratch[r] *= row[r];
        }
        auto out_row = out.row(coords[d]);
        for (std::size_t r = 0; r < rank; ++r) out_row[r] += scratch[r];

        acc.feed(coords[d]);
        if (++in_segment == seg) {
          block_seconds.push_back(cost.ec_block_seconds(
              acc.finish(modes, rank,
                         static_cast<std::size_t>(options.block_width)),
              profile));
          in_segment = 0;
        }
      });
      if (in_segment > 0) {
        block_seconds.push_back(cost.ec_block_seconds(
            acc.finish(modes, rank,
                       static_cast<std::size_t>(options.block_width)),
            profile));
      }
      gpu.advance(sim::Phase::kCompute,
                  platform.kernel_launch_seconds() +
                      sim::grid_makespan(block_seconds, sm_count));
      gpu.free(payload);
    }
    if (options.collect_outputs) result.outputs.push_back(std::move(out));
  }

  gpu.free(factors.total_bytes());
  result.total_seconds = platform.makespan() - t0;
  auto agg1 = platform.aggregate_timeline();
  for (std::size_t p = 0; p < sim::kNumPhases; ++p) {
    const auto phase = static_cast<sim::Phase>(p);
    result.timeline.add(phase, agg1.total(phase) - agg0.total(phase));
  }
  return result;
}

}  // namespace amped::baselines
