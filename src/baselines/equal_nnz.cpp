#include "baselines/equal_nnz.hpp"

#include <vector>

#include "core/ec_kernel.hpp"
#include "core/kernel_cache.hpp"
#include "exec/plan.hpp"
#include "sim/executor.hpp"

namespace amped::baselines {

BaselineResult run_equal_nnz(sim::Platform& platform, const CooTensor& t,
                             const FactorSet& factors,
                             const BaselineOptions& options) {
  BaselineResult result;
  result.name = "equal-nnz";
  result.supported = true;  // chunks stream like AMPED's shards

  const auto workload = detail::resolve_workload(options, t);
  const int m = platform.num_gpus();
  const std::size_t modes = t.num_modes();
  const std::size_t rank = factors.rank();

  // Equal contiguous nonzero ranges, original (unsorted) element order.
  std::vector<std::pair<nnz_t, nnz_t>> chunks;
  const nnz_t per = (t.nnz() + m - 1) / static_cast<nnz_t>(m);
  for (int g = 0; g < m; ++g) {
    const nnz_t lo = std::min<nnz_t>(t.nnz(), per * static_cast<nnz_t>(g));
    const nnz_t hi = std::min<nnz_t>(t.nnz(), lo + per);
    chunks.emplace_back(lo, hi);
  }

  const detail::Measure measure(platform);

  // Per mode: every GPU streams its chunk, computes per-element partials,
  // and ships them back; a host op then merges the partials on the CPU
  // and broadcasts the merged factor matrix. Chunks are unsorted element
  // ranges, so different GPUs may touch the same output rows — the lanes
  // must not run concurrently (parallel_lanes stays false) and the merge
  // is a genuine barrier-delimited host step, which is exactly what the
  // Fig. 6 strawman pays for.
  std::vector<DenseMatrix> outs;
  outs.reserve(modes);
  for (std::size_t d = 0; d < modes; ++d) outs.emplace_back(t.dim(d), rank);

  exec::Plan plan;
  plan.scheduler = "equal-nnz";
  for (std::size_t d = 0; d < modes; ++d) {
    sim::KernelProfile profile;
    profile.coord_bytes_per_nnz =
        static_cast<double>(modes * sizeof(index_t) + sizeof(value_t));
    profile.factor_read_efficiency = sim::factor_read_efficiency(
        workload.full_dims, rank, d, platform.config().gpu.l2_bytes);
    // Partial-result emission: a pure R-wide store per element, no
    // read-modify-write and no atomics.
    profile.output_write_efficiency = 0.5;
    profile.atomic_scale = 0.0;

    // Chunks keep the original (unsorted) element order; one tile program
    // serves every chunk of this mode, resolved at plan-build time.
    const TileProgram* program = &KernelCache::global().find_or_create(
        KernelShape::of(modes, rank, BlockOrder::kUnsorted));

    std::uint64_t partial_bytes_total = 0;
    for (int g = 0; g < m; ++g) {
      const auto [lo, hi] = chunks[static_cast<std::size_t>(g)];
      if (lo == hi) continue;

      exec::Task h2d;
      h2d.kind = exec::TaskKind::kH2D;
      h2d.gpu = g;
      h2d.transfer_bytes = (hi - lo) * t.bytes_per_nnz();
      plan.tasks.push_back(std::move(h2d));

      exec::Task kernel;
      kernel.kind = exec::TaskKind::kKernel;
      kernel.gpu = g;
      kernel.deps = {plan.tasks.size() - 1};
      kernel.kernel = [&t, &factors, profile, program, out = &outs[d], d,
                       lo = lo, hi = hi, width = options.block_width](
                          const exec::ExecContext& ctx) -> double {
        const auto& cost = ctx.platform.cost_model(ctx.gpu);
        const int sm_count = ctx.platform.gpu(ctx.gpu).spec().sm_count;
        const nnz_t seg = std::max<nnz_t>(
            width,
            (hi - lo + sm_count - 1) / static_cast<nnz_t>(sm_count));
        std::vector<double> block_seconds;
        for (nnz_t b = lo; b < hi; b += seg) {
          const nnz_t e = std::min<nnz_t>(hi, b + seg);
          auto stats = run_ec_block(*program, t, b, e, d, factors, *out);
          // Unsorted chunk: treat every element as its own run (the kernel
          // writes one partial per element regardless of adjacency).
          stats.output_runs = stats.nnz;
          stats.block_width = static_cast<std::size_t>(width);
          block_seconds.push_back(cost.ec_block_seconds(stats, profile));
        }
        return ctx.platform.kernel_launch_seconds() +
               sim::grid_makespan(block_seconds, sm_count);
      };
      plan.tasks.push_back(std::move(kernel));

      // Intermediate values back to the host: R floats per nonzero.
      const std::uint64_t partial_bytes = (hi - lo) * rank * sizeof(value_t);
      exec::Task d2h;
      d2h.kind = exec::TaskKind::kD2H;
      d2h.gpu = g;
      d2h.transfer_bytes = partial_bytes;
      plan.tasks.push_back(std::move(d2h));
      partial_bytes_total += partial_bytes;
    }

    exec::Task barrier;
    barrier.kind = exec::TaskKind::kBarrier;
    plan.tasks.push_back(std::move(barrier));

    // Host CPU merge: read every partial, scatter-add into the output
    // factor matrix, then broadcast the merged matrix back to every GPU.
    exec::Task merge;
    merge.kind = exec::TaskKind::kHostOp;
    merge.host_op = [partial_bytes_total,
                     factor_matrix_bytes =
                         static_cast<std::uint64_t>(t.dim(d)) * rank *
                         sizeof(value_t)](sim::Platform& p) {
      p.host().wait_until(p.makespan());
      const double merge_seconds =
          2.0 * static_cast<double>(partial_bytes_total) /
          p.host_cost_model().spec().mem_bandwidth;
      p.host().advance(sim::Phase::kHostCompute, merge_seconds);
      for (int g = 0; g < p.num_gpus(); ++g) {
        p.gpu(g).wait_until(p.host().clock());
        p.h2d(g, factor_matrix_bytes);
      }
    };
    plan.tasks.push_back(std::move(merge));

    exec::Task barrier2;
    barrier2.kind = exec::TaskKind::kBarrier;
    plan.tasks.push_back(std::move(barrier2));
  }

  exec::PlanExecutor(platform).run(plan);
  if (options.collect_outputs) {
    for (auto& out : outs) result.outputs.push_back(std::move(out));
  }

  measure.finish(result);
  return result;
}

}  // namespace amped::baselines
