#include "baselines/equal_nnz.hpp"

#include <vector>

#include "core/ec_kernel.hpp"
#include "sim/executor.hpp"

namespace amped::baselines {

BaselineResult run_equal_nnz(sim::Platform& platform, const CooTensor& t,
                             const FactorSet& factors,
                             const BaselineOptions& options) {
  BaselineResult result;
  result.name = "equal-nnz";
  result.supported = true;  // chunks stream like AMPED's shards

  const auto workload = detail::resolve_workload(options, t);
  const int m = platform.num_gpus();
  const std::size_t modes = t.num_modes();
  const std::size_t rank = factors.rank();
  const auto& cost = platform.gpu_cost_model();
  const int sm_count = platform.gpu(0).spec().sm_count;

  // Equal contiguous nonzero ranges, original (unsorted) element order.
  std::vector<std::pair<nnz_t, nnz_t>> chunks;
  const nnz_t per = (t.nnz() + m - 1) / static_cast<nnz_t>(m);
  for (int g = 0; g < m; ++g) {
    const nnz_t lo = std::min<nnz_t>(t.nnz(), per * static_cast<nnz_t>(g));
    const nnz_t hi = std::min<nnz_t>(t.nnz(), lo + per);
    chunks.emplace_back(lo, hi);
  }

  const detail::Measure measure(platform);

  for (std::size_t d = 0; d < modes; ++d) {
    DenseMatrix out(t.dim(d), rank);

    sim::KernelProfile profile;
    profile.coord_bytes_per_nnz =
        static_cast<double>(modes * sizeof(index_t) + sizeof(value_t));
    profile.factor_read_efficiency = sim::factor_read_efficiency(
        workload.full_dims, rank, d, platform.config().gpu.l2_bytes);
    // Partial-result emission: a pure R-wide store per element, no
    // read-modify-write and no atomics.
    profile.output_write_efficiency = 0.5;
    profile.atomic_scale = 0.0;

    std::uint64_t partial_bytes_total = 0;
    for (int g = 0; g < m; ++g) {
      const auto [lo, hi] = chunks[static_cast<std::size_t>(g)];
      if (lo == hi) continue;
      const std::uint64_t payload = (hi - lo) * t.bytes_per_nnz();
      platform.h2d(g, payload);

      const nnz_t seg = std::max<nnz_t>(
          options.block_width,
          (hi - lo + sm_count - 1) / static_cast<nnz_t>(sm_count));
      std::vector<double> block_seconds;
      for (nnz_t b = lo; b < hi; b += seg) {
        const nnz_t e = std::min<nnz_t>(hi, b + seg);
        auto stats = run_ec_block(t, b, e, d, factors, out);
        // Unsorted chunk: treat every element as its own run (the kernel
        // writes one partial per element regardless of adjacency).
        stats.output_runs = stats.nnz;
        stats.block_width = static_cast<std::size_t>(options.block_width);
        block_seconds.push_back(cost.ec_block_seconds(stats, profile));
      }
      platform.gpu(g).advance(
          sim::Phase::kCompute,
          platform.kernel_launch_seconds() +
              sim::grid_makespan(block_seconds, sm_count));

      // Intermediate values back to the host: R floats per nonzero.
      const std::uint64_t partial_bytes =
          (hi - lo) * rank * sizeof(value_t);
      platform.d2h(g, partial_bytes);
      partial_bytes_total += partial_bytes;
    }

    // Host CPU merge: read every partial, scatter-add into the output
    // factor matrix (one read + one accumulate pass at host bandwidth).
    platform.barrier();
    platform.host().wait_until(platform.makespan());
    const double merge_seconds =
        2.0 * static_cast<double>(partial_bytes_total) /
        platform.host_cost_model().spec().mem_bandwidth;
    platform.host().advance(sim::Phase::kHostCompute, merge_seconds);

    // Broadcast the merged factor matrix back to every GPU.
    const std::uint64_t factor_matrix_bytes =
        static_cast<std::uint64_t>(t.dim(d)) * rank * sizeof(value_t);
    for (int g = 0; g < m; ++g) {
      platform.gpu(g).wait_until(platform.host().clock());
      platform.h2d(g, factor_matrix_bytes);
    }
    platform.barrier();

    if (options.collect_outputs) result.outputs.push_back(std::move(out));
  }

  measure.finish(result);
  return result;
}

}  // namespace amped::baselines
