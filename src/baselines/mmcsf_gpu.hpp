// MM-CSF baseline (Nisa et al., SC'19) — single GPU, compressed sparse
// fiber trees resident in device memory.
//
// The fiber-tree kernel is the most compute-efficient of the baselines
// (factor rows load once per fiber, root rows need no atomics) but the
// structure must fit on the device: the paper reports it runs Amazon only
// and hits runtime errors on Patents/Reddit, and its kernels do not
// support the 5-mode Twitch tensor.
#pragma once

#include "baselines/runner.hpp"

namespace amped::baselines {

// Maximum tensor order the MM-CSF GPU kernels handle.
inline constexpr std::size_t kMmcsfMaxModes = 4;

}  // namespace amped::baselines
