// FLYCOO-GPU baseline (Wijeratne et al., Computing Frontiers'24) — the
// single-GPU predecessor AMPED extends.
//
// Keeps two copies of the FLYCOO tensor (elements carry embedded shard
// ids) resident in device memory and re-orders the tensor *on the GPU*
// between modes (dynamic tensor remapping), so each mode's kernel sees an
// output-sorted, conflict-free layout with excellent locality — and the
// iteration needs no host or peer traffic at all. The cost is memory:
// two resident copies fit only Twitch among the Table 3 tensors, exactly
// as the paper reports.
#pragma once

#include "baselines/runner.hpp"

namespace amped::baselines {

// Locality multiplier of the remapped kernel's factor reads relative to a
// plain sorted-COO kernel (the mode-specific layouts produced by dynamic
// remapping cluster factor accesses aggressively; this is FLYCOO-GPU's
// headline optimisation).
inline constexpr double kFlycooLocality = 0.30;

}  // namespace amped::baselines
