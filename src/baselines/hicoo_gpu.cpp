#include "baselines/hicoo_gpu.hpp"

#include <algorithm>
#include <vector>

#include "exec/plan.hpp"
#include "formats/hicoo.hpp"
#include "formats/memory_model.hpp"
#include "sim/executor.hpp"

namespace amped::baselines {

namespace {

struct HicooVariant {
  std::string name;
  bool superblocks = false;   // group blocks per threadblock
  double locality = 1.0;      // factor-read locality multiplier
  double write_efficiency = 1.0;
};

sim::EcBlockStats to_ec_stats(const formats::HicooTensor::BlockExecStats& b,
                              std::size_t modes, std::size_t rank,
                              std::size_t width) {
  sim::EcBlockStats s;
  s.nnz = b.nnz;
  s.output_runs = b.output_runs;
  s.max_run = b.max_run;
  s.max_multiplicity = b.max_multiplicity;
  s.modes = modes;
  s.rank = rank;
  s.block_width = width;
  return s;
}

BaselineResult run_hicoo_variant(const HicooVariant& variant,
                                 sim::Platform& platform, const CooTensor& t,
                                 const FactorSet& factors,
                                 const BaselineOptions& options) {
  BaselineResult result;
  result.name = variant.name;

  const auto workload = detail::resolve_workload(options, t);
  if (t.num_modes() > kHicooMaxModes) {
    result.failure_reason = "unsupported: tensor has more than 4 modes";
    return result;
  }
  const std::uint64_t needed =
      formats::hicoo_bytes(workload.full_dims, workload.full_nnz,
                           kHicooBlockBits) +
      formats::factor_bytes(workload.full_dims, factors.rank());
  const std::uint64_t capacity = detail::device_capacity(platform);
  if (needed > capacity) {
    detail::fail_oom(result, needed, capacity);
    return result;
  }
  result.supported = true;

  const std::size_t modes = t.num_modes();
  const std::size_t rank = factors.rank();

  // Block edge adapted to the executed tensor: the paper-scale edge is 128
  // (kHicooBlockBits, used for the full-scale memory decision above), but
  // on a scaled-down stand-in the same edge would collapse everything into
  // one block and serialise the grid; keep at least ~8 blocks per mode.
  unsigned block_bits = kHicooBlockBits;
  index_t min_dim = t.dim(0);
  for (std::size_t m = 1; m < modes; ++m) min_dim = std::min(min_dim, t.dim(m));
  while (block_bits > 1 && (min_dim >> block_bits) < 8) --block_bits;
  const formats::HicooTensor hicoo = formats::HicooTensor::build(t, block_bits);
  // Compressed element bytes: one offset byte per mode + the value, plus
  // the block header amortised over its elements (charged per superblock
  // below through the header term in coord bytes).
  const double header_bytes_per_block =
      static_cast<double>(modes) * sizeof(index_t) + sizeof(nnz_t);

  const detail::Measure measure(platform);

  // One sequential lane on GPU 0, one grid per mode. The format is
  // device-resident (its feasibility was decided above), so the plan has
  // no transfer tasks — each kernel runs the real HiCOO traversal and
  // prices its blocks (superblock-merged or stock per-block).
  std::vector<DenseMatrix> outs;
  outs.reserve(modes);
  for (std::size_t d = 0; d < modes; ++d) outs.emplace_back(t.dim(d), rank);

  exec::Plan plan;
  plan.scheduler = variant.name;
  for (std::size_t d = 0; d < modes; ++d) {
    exec::Task kernel;
    kernel.kind = exec::TaskKind::kKernel;
    kernel.gpu = 0;
    kernel.kernel = [&hicoo, &factors, &workload, &variant,
                     &header_bytes_per_block, out = &outs[d], d, modes, rank,
                     width_nnz = options.block_width](
                        const exec::ExecContext& ctx) -> double {
      const auto& cost = ctx.platform.cost_model(ctx.gpu);
      const int sm_count = ctx.platform.gpu(ctx.gpu).spec().sm_count;
      std::vector<formats::HicooTensor::BlockExecStats> stats;
      hicoo.mttkrp(factors, d, *out, &stats);

      sim::KernelProfile profile;
      profile.coord_bytes_per_nnz =
          static_cast<double>(modes) + sizeof(value_t);
      profile.factor_read_efficiency = sim::factor_read_efficiency(
          workload.full_dims, rank, d, ctx.platform.config().gpu.l2_bytes,
          variant.locality);
      profile.output_write_efficiency = variant.write_efficiency;
      profile.atomic_scale = 1.0;

      std::vector<double> block_seconds;
      const double width = static_cast<double>(width_nnz);
      if (variant.superblocks) {
        // Merge consecutive blocks until a threadblock has a full tile of
        // work; headers still cost one read each.
        const nnz_t target = std::max<nnz_t>(
            width_nnz,
            (hicoo.nnz() + sm_count - 1) / static_cast<nnz_t>(sm_count));
        sim::EcBlockStats merged;
        merged.modes = modes;
        merged.rank = rank;
        merged.block_width = static_cast<std::size_t>(width);
        double headers = 0.0;
        for (const auto& b : stats) {
          merged.nnz += b.nnz;
          merged.output_runs += b.output_runs;
          merged.max_run = std::max(merged.max_run, b.max_run);
          merged.max_multiplicity =
              std::max(merged.max_multiplicity, b.max_multiplicity);
          headers += header_bytes_per_block;
          if (merged.nnz >= target) {
            auto p = profile;
            p.coord_bytes_per_nnz +=
                headers / static_cast<double>(merged.nnz);
            block_seconds.push_back(cost.ec_block_seconds(merged, p));
            merged = sim::EcBlockStats{};
            merged.modes = modes;
            merged.rank = rank;
            merged.block_width = static_cast<std::size_t>(width);
            headers = 0.0;
          }
        }
        if (merged.nnz > 0) {
          auto p = profile;
          p.coord_bytes_per_nnz += headers / static_cast<double>(merged.nnz);
          block_seconds.push_back(cost.ec_block_seconds(merged, p));
        }
      } else {
        // Stock ParTI: one threadblock per HiCOO block. Tiny blocks leave
        // the SM underutilised, captured by the threadblock-width model.
        for (const auto& b : stats) {
          auto s = to_ec_stats(b, modes, rank,
                               static_cast<std::size_t>(width_nnz));
          // A block with fewer nonzeros than the tile width wastes lanes.
          s.block_width = static_cast<std::size_t>(
              std::min<nnz_t>(width_nnz, std::max<nnz_t>(1, b.nnz)));
          auto p = profile;
          p.coord_bytes_per_nnz +=
              header_bytes_per_block / static_cast<double>(b.nnz);
          block_seconds.push_back(cost.ec_block_seconds(s, p));
        }
      }
      return ctx.platform.kernel_launch_seconds() +
             sim::grid_makespan(block_seconds, sm_count);
    };
    plan.tasks.push_back(std::move(kernel));
  }

  exec::PlanExecutor(platform).run(plan);
  if (options.collect_outputs) {
    for (auto& out : outs) result.outputs.push_back(std::move(out));
  }

  measure.finish(result);
  return result;
}

}  // namespace

BaselineResult run_hicoo_gpu(sim::Platform& platform, const CooTensor& t,
                             const FactorSet& factors,
                             const BaselineOptions& options) {
  return run_hicoo_variant(
      HicooVariant{.name = "hicoo-gpu",
                   .superblocks = true,
                   .locality = 0.85,
                   .write_efficiency = 0.7},
      platform, t, factors, options);
}

BaselineResult run_parti_gpu(sim::Platform& platform, const CooTensor& t,
                             const FactorSet& factors,
                             const BaselineOptions& options) {
  return run_hicoo_variant(
      HicooVariant{.name = "parti-gpu",
                   .superblocks = false,
                   .locality = 1.0,
                   .write_efficiency = 1.0},
      platform, t, factors, options);
}

}  // namespace amped::baselines
