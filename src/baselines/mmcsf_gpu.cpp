#include "baselines/mmcsf_gpu.hpp"

#include <numeric>
#include <vector>

#include "exec/plan.hpp"
#include "formats/csf.hpp"
#include "formats/memory_model.hpp"
#include "sim/executor.hpp"

namespace amped::baselines {

namespace {

// Seconds a threadblock spends on a group of root slices: fiber-tree
// traversal bytes (leaves + fiber headers + one factor row per fiber)
// against the roofline. No atomic term: a root subtree owns its row.
double csf_group_seconds(const sim::CostModel& cost, nnz_t leaves,
                         nnz_t fibers, nnz_t roots, std::size_t rank,
                         double factor_read_eff) {
  const auto& spec = cost.spec();
  const double row_bytes = static_cast<double>(rank) * sizeof(value_t);
  const double bytes =
      static_cast<double>(leaves) * (sizeof(index_t) + sizeof(value_t) +
                                     row_bytes * factor_read_eff) +
      static_cast<double>(fibers) *
          (sizeof(index_t) + sizeof(nnz_t) + row_bytes * factor_read_eff) +
      static_cast<double>(roots) * (sizeof(index_t) + row_bytes);
  const double flops =
      2.0 * row_bytes / sizeof(value_t) * static_cast<double>(leaves + fibers);
  const double sm_bw = spec.mem_bandwidth / spec.sm_count;
  const double sm_flops = spec.flops / spec.sm_count;
  return std::max(bytes / sm_bw, flops / sm_flops);
}

}  // namespace

BaselineResult run_mmcsf_gpu(sim::Platform& platform, const CooTensor& t,
                             const FactorSet& factors,
                             const BaselineOptions& options) {
  BaselineResult result;
  result.name = "mm-csf";

  const auto workload = detail::resolve_workload(options, t);
  if (t.num_modes() > kMmcsfMaxModes) {
    result.failure_reason = "unsupported: tensor has more than 4 modes";
    return result;
  }
  const std::uint64_t needed =
      formats::mmcsf_bytes(workload.full_dims, workload.full_nnz) +
      formats::factor_bytes(workload.full_dims, factors.rank());
  const std::uint64_t capacity = detail::device_capacity(platform);
  if (needed > capacity) {
    detail::fail_oom(result, needed, capacity);
    return result;
  }
  result.supported = true;

  const std::size_t modes = t.num_modes();
  const std::size_t rank = factors.rank();
  // Mode-rooted trees, built in preprocessing (resident across modes, so
  // no per-iteration H2D — only the kernels are timed, like the paper).
  std::vector<formats::CsfTensor> trees;
  trees.reserve(modes);
  for (std::size_t d = 0; d < modes; ++d) {
    std::vector<std::size_t> order{d};
    for (std::size_t m = 0; m < modes; ++m) {
      if (m != d) order.push_back(m);
    }
    trees.push_back(formats::CsfTensor::build(t, std::move(order)));
  }

  const detail::Measure measure(platform);

  // One sequential lane on GPU 0, one grid per mode-rooted tree; the
  // trees are device-resident, so the plan is kernels only.
  std::vector<DenseMatrix> outs;
  outs.reserve(modes);
  for (std::size_t d = 0; d < modes; ++d) outs.emplace_back(t.dim(d), rank);

  exec::Plan plan;
  plan.scheduler = "mm-csf";
  for (std::size_t d = 0; d < modes; ++d) {
    exec::Task kernel;
    kernel.kind = exec::TaskKind::kKernel;
    kernel.gpu = 0;
    kernel.kernel = [&trees, &factors, &workload, out = &outs[d], d, rank,
                     width = options.block_width](
                        const exec::ExecContext& ctx) -> double {
      const auto& cost = ctx.platform.cost_model(ctx.gpu);
      const int sm_count = ctx.platform.gpu(ctx.gpu).spec().sm_count;
      std::vector<formats::CsfTensor::SliceStats> slices;
      trees[d].mttkrp_root(factors, *out, &slices);

      const double read_eff = sim::factor_read_efficiency(
          workload.full_dims, rank, d, ctx.platform.config().gpu.l2_bytes,
          // Fiber-level reuse: the upper-level rows are loaded once per
          // fiber instead of once per nonzero; charged per fiber above, so
          // only a locality bonus remains here.
          0.85);

      // Group consecutive root slices into threadblocks with roughly equal
      // leaf counts (MM-CSF's load-balanced fiber scheduling).
      const nnz_t target = std::max<nnz_t>(
          width,
          (trees[d].nnz() + sm_count - 1) / static_cast<nnz_t>(sm_count));
      std::vector<double> block_seconds;
      nnz_t leaves = 0, fibers = 0, roots = 0;
      for (const auto& s : slices) {
        leaves += s.leaves;
        fibers += s.fibers;
        ++roots;
        if (leaves >= target) {
          block_seconds.push_back(
              csf_group_seconds(cost, leaves, fibers, roots, rank, read_eff));
          leaves = fibers = roots = 0;
        }
      }
      if (roots > 0) {
        block_seconds.push_back(
            csf_group_seconds(cost, leaves, fibers, roots, rank, read_eff));
      }
      return ctx.platform.kernel_launch_seconds() +
             sim::grid_makespan(block_seconds, sm_count);
    };
    plan.tasks.push_back(std::move(kernel));
  }

  exec::PlanExecutor(platform).run(plan);
  if (options.collect_outputs) {
    for (auto& out : outs) result.outputs.push_back(std::move(out));
  }

  measure.finish(result);
  return result;
}

}  // namespace amped::baselines
