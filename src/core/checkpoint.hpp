// ALS checkpoint/restart: atomic on-disk snapshots of a CP-ALS run.
//
// A checkpoint captures everything `detail::AlsState` needs to continue
// bit-identically: the factor matrices, lambda, the fit trajectory, the
// iteration count, and the convergence bookkeeping (prev-fit, flags).
// Gram matrices are deliberately NOT persisted — they are recomputed from
// the factor bits on load and the recomputation is deterministic, so the
// resumed state is byte-equal to the uninterrupted one. Likewise the
// last-mode inner product is transient (written before it is read in
// every iteration).
//
// On-disk layout ("AMPCKP01", little-endian):
//   [ 0.. 8)  magic
//   [ 8..16)  u64 payload checksum (checksum64 over everything after it)
//   [16..  )  payload:
//     u64 num_modes | u64 rank | u64 iterations | u64 flags
//     (bit 0 converged, bit 1 done)
//     f64 fit | f64 prev_fit | f64 mttkrp_seconds
//     u64 lambda_count | lambda_count x f64
//     u64 history_count | history_count x f64
//     per mode: u64 rows | u64 cols | rows*cols x value_t
//
// Writes go through AtomicFileWriter (temp file + fsync + rename) wrapped
// in a transient-retry loop, so a crash mid-write never truncates the
// previous checkpoint and an interrupted fsync is retried. Reads verify
// the checksum and every structural invariant before any field is used.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "tensor/dense_matrix.hpp"

namespace amped {

struct AlsCheckpoint {
  std::uint64_t iterations = 0;
  double fit = 0.0;
  double prev_fit = 0.0;
  double mttkrp_seconds = 0.0;
  bool converged = false;
  bool done = false;
  std::vector<double> lambda;
  std::vector<double> fit_history;
  std::vector<DenseMatrix> factors;  // one per mode, rows x rank
};

// Writes `ckpt` to `path` atomically; retries transient I/O faults with
// bounded backoff. Throws std::runtime_error on permanent failure (the
// previous file at `path`, if any, is left intact).
void write_als_checkpoint(const AlsCheckpoint& ckpt, const std::string& path);

// Reads and validates a checkpoint. Throws std::runtime_error naming
// `path` on a missing, truncated, corrupt, or structurally invalid file.
AlsCheckpoint read_als_checkpoint(const std::string& path);

}  // namespace amped
