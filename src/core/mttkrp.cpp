#include "core/mttkrp.hpp"

#include <algorithm>
#include <cassert>

#include "exec/plan.hpp"
#include "exec/scheduler.hpp"

namespace amped {

sim::KernelProfile resolve_mttkrp_profile(const MttkrpOptions& options,
                                          const AmpedTensor& tensor,
                                          std::size_t output_mode,
                                          const sim::Platform& platform,
                                          std::size_t rank) {
  sim::KernelProfile p = options.profile;
  const std::size_t modes = tensor.num_modes();
  if (p.coord_bytes_per_nnz <= 0.0) {
    p.coord_bytes_per_nnz =
        static_cast<double>(modes * sizeof(index_t) + sizeof(value_t));
  }
  // Fold the full-scale cache efficiency of this output mode's factor
  // reads into the profile's locality multiplier.
  std::vector<std::uint64_t> full_dims = options.full_dims;
  if (full_dims.empty()) {
    full_dims.assign(tensor.dims().begin(), tensor.dims().end());
  }
  p.factor_read_efficiency = sim::factor_read_efficiency(
      full_dims, rank, output_mode,
      platform.config().gpu.l2_bytes, p.factor_read_efficiency);
  return p;
}

ModeBreakdown mttkrp_one_mode(sim::Platform& platform,
                              const AmpedTensor& tensor,
                              const FactorSet& factors, std::size_t mode,
                              DenseMatrix& out, const MttkrpOptions& options) {
  const int m = platform.num_gpus();

  assert(out.rows() == tensor.dims()[mode] && out.cols() == factors.rank());
  out.set_zero();

  ModeBreakdown bd;
  bd.mode = mode;

  platform.barrier();
  const double t0 = platform.makespan();
  auto agg0 = platform.aggregate_timeline();

  // Every GPU mirrors the factor matrices in global memory (§4.4).
  const std::uint64_t factor_bytes = factors.total_bytes();
  for (int g = 0; g < m; ++g) platform.gpu(g).alloc(factor_bytes);

  // Lower this mode into a plan under the selected policy, then run it:
  // shard streaming, grid execution, the inter-GPU barrier, and the
  // all-gather are all tasks of the plan (exec/plan.hpp).
  const exec::ModeLowerInput input{
      platform, tensor, mode, factors, out, options,
      resolve_mttkrp_profile(options, tensor, mode, platform,
                             factors.rank())};
  exec::Plan plan = exec::make_scheduler(options)->lower(input);
  exec::PlanExecutor executor(platform, options.backend);
  const exec::ExecReport run = executor.run(plan);
  bd.per_gpu_compute = run.per_gpu_compute;
  // Per-edge gather accounting (a solo mode plan has at most one edge;
  // summing keeps the report correct if that ever changes).
  for (const auto& e : run.gather_edges) {
    bd.gather_bytes += e.bytes;
    if (bd.gather_finish <= 0.0) bd.gather_start = e.start;
    bd.gather_finish = std::max(bd.gather_finish, e.finish);
  }

  for (int g = 0; g < m; ++g) platform.gpu(g).free(factor_bytes);

  if (options.backend == exec::ExecBackend::kHostParallel) {
    // Measured wall clock of the real run; the same Fig. 7 categories,
    // read from the executor's task timings instead of the sim timeline.
    bd.seconds = run.wall_seconds;
    bd.h2d = run.wall_h2d + run.wall_spill_fetch;
    bd.compute = 0.0;
    for (double t : run.per_gpu_compute) bd.compute += t;
    bd.p2p = run.wall_allgather;
    bd.sync = run.wall_sync;
    for (double t : run.per_gpu_predicted_compute) {
      bd.predicted_compute += t;
    }
    bd.predicted_h2d = run.predicted_h2d;
    return bd;
  }

  bd.seconds = platform.makespan() - t0;
  auto agg1 = platform.aggregate_timeline();
  bd.h2d = agg1.total(sim::Phase::kHostToDevice) -
           agg0.total(sim::Phase::kHostToDevice);
  bd.compute =
      agg1.total(sim::Phase::kCompute) - agg0.total(sim::Phase::kCompute);
  bd.p2p = agg1.total(sim::Phase::kPeerToPeer) -
           agg0.total(sim::Phase::kPeerToPeer);
  bd.sync = agg1.total(sim::Phase::kSync) - agg0.total(sim::Phase::kSync);
  // The simulator's measurement IS the model's prediction.
  bd.predicted_compute = bd.compute;
  bd.predicted_h2d = bd.h2d;
  return bd;
}

double MttkrpReport::compute_overhead_fraction() const {
  double total = 0.0;
  for (double t : per_gpu_compute) total += t;
  if (total <= 0.0 || per_gpu_compute.size() < 2) return 0.0;
  const auto [mn, mx] =
      std::minmax_element(per_gpu_compute.begin(), per_gpu_compute.end());
  return (*mx - *mn) / total;
}

double MttkrpReport::communication_fraction() const {
  double comm = 0.0, all = 0.0;
  for (const auto& m : modes) {
    comm += m.h2d + m.p2p;
    all += m.h2d + m.p2p + m.compute + m.sync;
  }
  return all > 0.0 ? comm / all : 0.0;
}

MttkrpReport mttkrp_all_modes(sim::Platform& platform,
                              const AmpedTensor& tensor,
                              const FactorSet& factors,
                              std::vector<DenseMatrix>& outputs,
                              const MttkrpOptions& options) {
  MttkrpReport report;
  // Sized from the platform, not from what modes report: a mode may
  // involve fewer GPUs than the platform has (idle devices on a
  // heterogeneous node under the cost-model scheduler), and the Fig. 8
  // aggregation must still cover every GPU.
  report.per_gpu_compute.assign(
      static_cast<std::size_t>(platform.num_gpus()), 0.0);
  outputs.clear();
  outputs.reserve(tensor.num_modes());

  platform.barrier();
  const double t0 = platform.makespan();
  double wall_total = 0.0;
  for (std::size_t d = 0; d < tensor.num_modes(); ++d) {
    outputs.emplace_back(tensor.dims()[d], factors.rank());
    auto bd = mttkrp_one_mode(platform, tensor, factors, d, outputs.back(),
                              options);
    wall_total += bd.seconds;
    for (std::size_t g = 0; g < bd.per_gpu_compute.size(); ++g) {
      report.per_gpu_compute[g] += bd.per_gpu_compute[g];
    }
    report.modes.push_back(std::move(bd));
  }
  // Host-backend mode times are wall clock, invisible to the simulated
  // makespan — the sweep total is their sum instead.
  report.total_seconds = options.backend == exec::ExecBackend::kHostParallel
                             ? wall_total
                             : platform.makespan() - t0;
  return report;
}

}  // namespace amped
