#include "core/kernel_cache.hpp"

#include <algorithm>
#include <cassert>

#include "util/metrics.hpp"

namespace amped {

#if defined(__GNUC__) || defined(__clang__)
#define AMPED_PREFETCH(addr) __builtin_prefetch(addr)
#else
#define AMPED_PREFETCH(addr) ((void)0)
#endif

namespace {

// Elements looked ahead for factor-row prefetches. The gathers are the
// kernel's only irregular accesses; fetching them a few elements early
// hides most of the L2/L3 latency they would otherwise serialise on.
constexpr nnz_t kPrefetchDistance = 8;

// One column-tile pass of the EC kernel: columns [col, col+kW) of every
// factor and output row, over elements [begin, end).
//
//  - kW is the compile-time tile width: the hadamard/accumulate loops
//    fully unroll and vectorise over the __restrict pointers.
//  - kInputsC is the compile-time input-mode count (1/2/3 for 2/3/4-mode
//    tensors); 0 takes the runtime num_inputs (1-mode and >=5-mode).
//  - kPacked binds stride == kW and col == 0: the single-tile form menu
//    ranks take, where the row stride is a compile-time constant exactly
//    like the pre-tiling full-width kernels.
//
// Elements of a same-output-index run accumulate into `acc` registers and
// flush to the output row once per run. The per-column arithmetic —
// prod = v * row0[c], then *= row1[c], *= row2[c], ... in mode order,
// accumulated in element order — is exactly the generic kernel's sequence
// for that column, so a pass is bit-identical to the matching column slice
// of the single-pass kernel no matter how the rank is tiled.
template <std::size_t kW, std::size_t kInputsC, bool kPacked>
void ec_tile(const index_t* __restrict out_idx,
             const value_t* __restrict vals,
             const EcInputMode* __restrict inputs,
             [[maybe_unused]] std::size_t num_inputs, std::size_t rank,
             [[maybe_unused]] std::size_t col, nnz_t begin, nnz_t end,
             value_t* __restrict out_data, sim::EcBlockStats* stats) {
  const std::size_t stride = kPacked ? kW : rank;
  const std::size_t col_off = kPacked ? 0 : col;

  value_t acc[kW];
  value_t prod[kW];

  const bool has0 = kInputsC >= 1 || num_inputs > 0;
  const bool has1 = kInputsC >= 2 || (kInputsC == 0 && num_inputs > 1);
  const index_t* __restrict idx0 = has0 ? inputs[0].idx : nullptr;
  const value_t* __restrict fac0 = has0 ? inputs[0].fac + col_off : nullptr;
  const index_t* __restrict idx1 = has1 ? inputs[1].idx : nullptr;
  const value_t* __restrict fac1 = has1 ? inputs[1].fac + col_off : nullptr;
  const index_t* __restrict idx2 = kInputsC >= 3 ? inputs[2].idx : nullptr;
  const value_t* __restrict fac2 =
      kInputsC >= 3 ? inputs[2].fac + col_off : nullptr;

  index_t run_index = out_idx[begin];
  nnz_t run_len = 0;
  nnz_t output_runs = 1;
  nnz_t max_run = 0;
  for (std::size_t r = 0; r < kW; ++r) acc[r] = value_t{0};

  for (nnz_t n = begin; n < end; ++n) {
    // Factor-row gathers are the only irregular loads; at tile width >= 16
    // the slice spans multiple cache lines and routinely misses L2, so
    // start the next element's rows early (compile-time gate: narrow tiles
    // stay cache-resident and skip the overhead).
    if constexpr (kW >= 16) {
      if (n + kPrefetchDistance < end) {
        if (idx0 != nullptr) {
          const value_t* next =
              fac0 +
              static_cast<std::size_t>(idx0[n + kPrefetchDistance]) * stride;
          for (std::size_t b = 0; b < kW; b += 16) AMPED_PREFETCH(next + b);
        }
        if (idx1 != nullptr) {
          const value_t* next =
              fac1 +
              static_cast<std::size_t>(idx1[n + kPrefetchDistance]) * stride;
          for (std::size_t b = 0; b < kW; b += 16) AMPED_PREFETCH(next + b);
        }
      }
    }

    const value_t v = vals[n];
    if constexpr (kInputsC == 0) {
      if (idx0 == nullptr) {
        for (std::size_t r = 0; r < kW; ++r) prod[r] = v;
      } else {
        const value_t* __restrict row0 =
            fac0 + static_cast<std::size_t>(idx0[n]) * stride;
        for (std::size_t r = 0; r < kW; ++r) prod[r] = v * row0[r];
        if (idx1 != nullptr) {
          const value_t* __restrict row1 =
              fac1 + static_cast<std::size_t>(idx1[n]) * stride;
          for (std::size_t r = 0; r < kW; ++r) prod[r] *= row1[r];
        }
        for (std::size_t w = 2; w < num_inputs; ++w) {
          const value_t* __restrict row =
              inputs[w].fac + col_off +
              static_cast<std::size_t>(inputs[w].idx[n]) * stride;
          for (std::size_t r = 0; r < kW; ++r) prod[r] *= row[r];
        }
      }
    } else {
      const value_t* __restrict row0 =
          fac0 + static_cast<std::size_t>(idx0[n]) * stride;
      for (std::size_t r = 0; r < kW; ++r) prod[r] = v * row0[r];
      if constexpr (kInputsC >= 2) {
        const value_t* __restrict row1 =
            fac1 + static_cast<std::size_t>(idx1[n]) * stride;
        for (std::size_t r = 0; r < kW; ++r) prod[r] *= row1[r];
      }
      if constexpr (kInputsC >= 3) {
        const value_t* __restrict row2 =
            fac2 + static_cast<std::size_t>(idx2[n]) * stride;
        for (std::size_t r = 0; r < kW; ++r) prod[r] *= row2[r];
      }
    }

    const index_t i = out_idx[n];
    if (i != run_index) {
      value_t* __restrict out_row =
          out_data + static_cast<std::size_t>(run_index) * stride + col_off;
      for (std::size_t r = 0; r < kW; ++r) out_row[r] += acc[r];
      for (std::size_t r = 0; r < kW; ++r) acc[r] = prod[r];
      max_run = std::max(max_run, run_len);
      ++output_runs;
      run_index = i;
      run_len = 1;
    } else {
      for (std::size_t r = 0; r < kW; ++r) acc[r] += prod[r];
      ++run_len;
    }
  }
  value_t* __restrict out_row =
      out_data + static_cast<std::size_t>(run_index) * stride + col_off;
  for (std::size_t r = 0; r < kW; ++r) out_row[r] += acc[r];
  max_run = std::max(max_run, run_len);

  // Run structure is a property of the element order, identical for every
  // tile — one designated tile per program reports it.
  if (stats != nullptr) {
    stats->nnz = end - begin;
    stats->output_runs = output_runs;
    stats->max_run = max_run;
  }
}

template <std::size_t kW, bool kPacked>
EcTileFn pick_inputs(std::uint8_t mode_class) {
  switch (mode_class) {
    case 2:
      return &ec_tile<kW, 1, kPacked>;
    case 3:
      return &ec_tile<kW, 2, kPacked>;
    case 4:
      return &ec_tile<kW, 3, kPacked>;
    default:
      return &ec_tile<kW, 0, kPacked>;
  }
}

// The instantiated width set mirrors sim::ec_tile_widths: 64, every
// multiple of 4 below it (so any 4..63 tail is one pass), and 1..3 for
// the final columns. 5/6/7 stay instantiated for robustness against a
// decomposition that emits them even though the current greedy does not.
template <bool kPacked>
EcTileFn pick_tile(std::uint32_t width, std::uint8_t mode_class) {
  switch (width) {
    case 64:
      return pick_inputs<64, kPacked>(mode_class);
    case 60:
      return pick_inputs<60, kPacked>(mode_class);
    case 56:
      return pick_inputs<56, kPacked>(mode_class);
    case 52:
      return pick_inputs<52, kPacked>(mode_class);
    case 48:
      return pick_inputs<48, kPacked>(mode_class);
    case 44:
      return pick_inputs<44, kPacked>(mode_class);
    case 40:
      return pick_inputs<40, kPacked>(mode_class);
    case 36:
      return pick_inputs<36, kPacked>(mode_class);
    case 32:
      return pick_inputs<32, kPacked>(mode_class);
    case 28:
      return pick_inputs<28, kPacked>(mode_class);
    case 24:
      return pick_inputs<24, kPacked>(mode_class);
    case 20:
      return pick_inputs<20, kPacked>(mode_class);
    case 16:
      return pick_inputs<16, kPacked>(mode_class);
    case 12:
      return pick_inputs<12, kPacked>(mode_class);
    case 8:
      return pick_inputs<8, kPacked>(mode_class);
    case 7:
      return pick_inputs<7, kPacked>(mode_class);
    case 6:
      return pick_inputs<6, kPacked>(mode_class);
    case 5:
      return pick_inputs<5, kPacked>(mode_class);
    case 4:
      return pick_inputs<4, kPacked>(mode_class);
    case 3:
      return pick_inputs<3, kPacked>(mode_class);
    case 2:
      return pick_inputs<2, kPacked>(mode_class);
    default:
      return pick_inputs<1, kPacked>(mode_class);
  }
}

}  // namespace

sim::EcBlockStats TileProgram::run(const index_t* out_idx,
                                   const value_t* vals,
                                   const EcInputMode* inputs,
                                   std::size_t num_inputs, nnz_t begin,
                                   nnz_t end, value_t* out_data) const {
  assert(begin < end);
  sim::EcBlockStats stats;
  bool first = true;
  for (const EcTile& tile : tiles_) {
    tile.fn(out_idx, vals, inputs, num_inputs, shape_.rank, tile.col, begin,
            end, out_data, first ? &stats : nullptr);
    first = false;
  }
  stats.rank = shape_.rank;
  return stats;
}

TileProgram KernelCache::build_program(const KernelShape& shape) {
  TileProgram program;
  program.shape_ = shape;
  const auto widths = sim::ec_tile_widths(shape.rank);
  // A single tile covers the whole row: bind the stride as a compile-time
  // constant too, which is byte-for-byte the pre-tiling full-width kernel.
  const bool packed = widths.size() == 1;
  std::uint32_t col = 0;
  for (const std::size_t w : widths) {
    EcTile tile;
    tile.col = col;
    tile.width = static_cast<std::uint32_t>(w);
    tile.fn = packed ? pick_tile<true>(tile.width, shape.mode_class())
                     : pick_tile<false>(tile.width, shape.mode_class());
    program.tiles_.push_back(tile);
    col += tile.width;
  }
  assert(col == shape.rank);
  return program;
}

KernelCache& KernelCache::global() {
  // Leaked on purpose (same discipline as the metrics registry): program
  // references are resolved once per shard/plan and may be touched by
  // pool threads during process teardown.
  static KernelCache* instance = new KernelCache();
  return *instance;
}

const TileProgram& KernelCache::find_or_create(const KernelShape& shape) {
  static metrics::Counter& hits = metrics::counter("kernel_cache.hits");
  static metrics::Counter& misses = metrics::counter("kernel_cache.misses");
  static metrics::Counter& shapes = metrics::counter("kernel_cache.shapes");

  const std::size_t b = shape.hash() & (kBuckets - 1);
  for (const Node* n = buckets_[b].load(std::memory_order_acquire);
       n != nullptr; n = n->next) {
    if (n->program.shape() == shape) {
      hits.inc();
      return n->program;
    }
  }

  std::lock_guard lock(create_mutex_);
  // A racing creator may have published while we queued on the mutex.
  for (const Node* n = buckets_[b].load(std::memory_order_acquire);
       n != nullptr; n = n->next) {
    if (n->program.shape() == shape) {
      hits.inc();
      return n->program;
    }
  }
  Node* node = new Node();  // owned by the cache, never freed
  node->program = build_program(shape);
  node->next = buckets_[b].load(std::memory_order_relaxed);
  misses.inc();
  shapes.inc();
  // Release publishes the fully-built program (and, transitively, the
  // chain behind it) to lock-free readers.
  buckets_[b].store(node, std::memory_order_release);
  return node->program;
}

std::size_t KernelCache::size() const {
  std::size_t count = 0;
  for (const auto& bucket : buckets_) {
    for (const Node* n = bucket.load(std::memory_order_acquire); n != nullptr;
         n = n->next) {
      ++count;
    }
  }
  return count;
}

}  // namespace amped
