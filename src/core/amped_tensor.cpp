#include "core/amped_tensor.hpp"

#include <cassert>
#include <cmath>
#include <exception>
#include <stdexcept>

#include "core/cpd.hpp"  // tensor_norm_sq
#include "io/mapped_tensor.hpp"
#include "io/memory_budget.hpp"
#include "io/shard_stream.hpp"
#include "util/logging.hpp"
#include "util/metrics.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace amped {

namespace {
// Sustained parallel sort rate of the 2-socket EPYC host for 16-24 byte
// records, in keys/s per sort pass. Comparison-based parallel sorts reach
// a few hundred million keys/s at this scale; the log(nnz) depth is folded
// in by the caller.
constexpr double kHostSortKeysPerSec = 3.2e9;

// Owned copy of either input kind, the starting point of every mode copy.
CooTensor materialize_input(const CooTensor& input) { return input; }
CooTensor materialize_input(const io::MappedCooTensor& input) {
  return input.materialize();
}
}  // namespace

double model_amped_preprocess_seconds(nnz_t nnz, std::size_t modes,
                                      double host_sort_keys_per_sec) {
  if (host_sort_keys_per_sec <= 0.0) {
    host_sort_keys_per_sec = kHostSortKeysPerSec;
  }
  if (nnz == 0) return 0.0;
  const double n = static_cast<double>(nnz);
  const double depth = std::max(1.0, std::log2(n) / 16.0);
  // One full sort pass per output mode, each O(n log n) with the depth
  // normalised so the rate constant is calibrated at n = 2^16.
  return static_cast<double>(modes) * n * depth / host_sort_keys_per_sec;
}

template <typename Input>
AmpedTensor AmpedTensor::build_impl(const Input& input,
                                    const AmpedBuildOptions& options,
                                    PreprocessStats* stats) {
  assert(options.num_gpus >= 1 && options.shards_per_gpu >= 1);
  WallTimer timer;

  AmpedTensor out;
  out.dims_ = input.dims();
  out.nnz_ = input.nnz();
  out.copies_.resize(input.num_modes());

  const std::size_t shards =
      options.shards_per_gpu * static_cast<std::size_t>(options.num_gpus);
  const std::uint64_t copy_bytes = input.storage_bytes();
  const std::uint64_t footprint =
      copy_bytes * static_cast<std::uint64_t>(input.num_modes());

  auto& budget = io::HostMemoryBudget::global();
  bool spill = options.storage == BuildStorage::kSpilled;
  if (options.storage == BuildStorage::kAuto && budget.limit() != 0 &&
      footprint > budget.remaining()) {
    spill = true;
    AMPED_LOG_INFO << "amped build: " << input.num_modes() << " copies ("
                   << io::format_bytes(footprint)
                   << ") exceed the host memory budget ("
                   << io::format_bytes(budget.remaining())
                   << " available); spilling mode copies to disk";
  }

  if (!spill) {
    // Resident build: charge the full footprint up front (this is what
    // "host residency" costs), then build per-mode copies in parallel.
    // Per-mode copy builds are independent (each deep-copies the
    // read-only input, sorts it, and writes its own slot), so they
    // spread across the host thread pool. Slot order makes the result
    // independent of completion order.
    out.reservation_ = std::make_shared<io::BudgetReservation>(
        budget, footprint, "AmpedTensor resident mode copies");
    std::vector<std::exception_ptr> errors(input.num_modes());
    global_thread_pool().parallel_for(
        input.num_modes(), [&](std::size_t d) {
          try {
            ModeCopy copy;
            copy.tensor = materialize_input(input);
            copy.tensor.sort_by_mode(d);
            copy.partition = build_mode_partition(copy.tensor, d, shards);
            out.copies_[d] = std::move(copy);
          } catch (...) {
            errors[d] = std::current_exception();
          }
        });
    for (auto& e : errors) {
      if (e) std::rethrow_exception(e);
    }
    if (!out.copies_.empty()) {
      out.values_norm_sq_ = tensor_norm_sq(out.copies_[0].tensor);
    }
  } else {
    // Out-of-core build: one mode at a time, bounding tracked host usage
    // at a single copy; each sorted copy is spilled to a snapshot-v2
    // file and freed before the next mode starts. (Serial by design —
    // parallel mode builds would multiply the transient footprint.)
    const std::string dir = io::resolve_spill_dir(options.spill_dir);
    io::SpillStats spill_stats;
    std::size_t degraded = 0;
    for (std::size_t d = 0; d < input.num_modes(); ++d) {
      auto charge = std::make_shared<io::BudgetReservation>(
          budget, copy_bytes, "AmpedTensor mode copy under build");
      ModeCopy copy;
      CooTensor sorted = materialize_input(input);
      sorted.sort_by_mode(d);
      copy.partition = build_mode_partition(sorted, d, shards);
      if (d == 0) {
        // Same accumulation order as the resident path (mode-0 sorted).
        out.values_norm_sq_ = tensor_norm_sq(sorted);
      }
      // The sorted copy is about to leave host memory: scan each shard's
      // run structure now and persist it in the spill file, so schedulers
      // can price spilled shards exactly without disk reads later.
      std::vector<io::ShardRunStatsRecord> stat_records;
      stat_records.reserve(copy.partition.shards.size());
      const auto mode_idx = sorted.indices(d);
      for (const auto& shard : copy.partition.shards) {
        const auto rs = compute_shard_run_stats(mode_idx, shard);
        stat_records.push_back({shard.nnz_begin, shard.nnz_end, rs.runs,
                                rs.max_run});
      }
      try {
        copy.spill = std::make_shared<io::SpilledModeCopy>(
            sorted, d, dir, stat_records, &spill_stats);
      } catch (const std::exception& spill_error) {
        // Graceful degradation: the spill failed permanently (retries and
        // rebuilds exhausted inside SpilledModeCopy), but the sorted copy
        // is still in memory. Keep it resident if the budget allows both
        // this copy and the transient copy the next mode's build needs;
        // otherwise the spill error propagates.
        const bool more_modes = d + 1 < input.num_modes();
        if (more_modes && budget.limit() != 0 &&
            budget.remaining() < copy_bytes) {
          throw std::runtime_error(
              "amped build: spilling mode " + std::to_string(d) +
              " failed (" + spill_error.what() +
              ") and the host memory budget has no headroom to keep the "
              "copy resident (" +
              io::format_bytes(budget.remaining()) + " free, " +
              io::format_bytes(copy_bytes) + " needed for the next mode)");
        }
        AMPED_LOG_WARN << "amped build: spilling mode " << d << " failed ("
                       << spill_error.what() << "); keeping the copy "
                       << "resident (" << io::format_bytes(copy_bytes)
                       << " charged against the budget)";
        // The build-transient charge becomes the copy's permanent one.
        copy.tensor = std::move(sorted);
        copy.reservation = std::move(charge);
        ++degraded;
        metrics::counter("build.degraded_to_resident").inc();
      }
      out.copies_[d] = std::move(copy);
    }
    if (stats) {
      stats->spill_retries = spill_stats.retries;
      stats->spill_rebuilds = spill_stats.rebuilds;
      stats->degraded_to_resident = degraded;
    }
  }

  if (stats) {
    stats->wall_seconds = timer.seconds();
    stats->host_seconds =
        model_amped_preprocess_seconds(input.nnz(), input.num_modes());
    stats->bytes_built = out.total_bytes();
    stats->spilled = spill;
  }
  // Mirror PreprocessStats into the registry so --report-json and the
  // metrics snapshot agree with the stats struct callers get in hand.
  {
    static metrics::Histogram& build_seconds =
        metrics::histogram("build.wall_seconds");
    build_seconds.record_seconds(timer.seconds());
    metrics::counter("build.bytes").inc(out.total_bytes());
    if (spill) metrics::counter("build.spilled").inc();
  }
  return out;
}

AmpedTensor AmpedTensor::build(const CooTensor& input,
                               const AmpedBuildOptions& options,
                               PreprocessStats* stats) {
  return build_impl(input, options, stats);
}

AmpedTensor AmpedTensor::build(const io::MappedCooTensor& input,
                               const AmpedBuildOptions& options,
                               PreprocessStats* stats) {
  return build_impl(input, options, stats);
}

bool AmpedTensor::spilled() const {
  for (const auto& c : copies_) {
    if (c.spilled()) return true;
  }
  return false;
}

std::uint64_t AmpedTensor::shard_bytes(std::size_t d,
                                       std::size_t shard_id) const {
  const auto& shard = copies_[d].partition.shards[shard_id];
  return shard.nnz() * bytes_per_nnz();
}

std::uint64_t AmpedTensor::total_bytes() const {
  return static_cast<std::uint64_t>(copies_.size()) * nnz_ * bytes_per_nnz();
}

}  // namespace amped
