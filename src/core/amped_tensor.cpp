#include "core/amped_tensor.hpp"

#include <cassert>
#include <cmath>
#include <exception>

#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace amped {

namespace {
// Sustained parallel sort rate of the 2-socket EPYC host for 16-24 byte
// records, in keys/s per sort pass. Comparison-based parallel sorts reach
// a few hundred million keys/s at this scale; the log(nnz) depth is folded
// in by the caller.
constexpr double kHostSortKeysPerSec = 3.2e9;
}  // namespace

double model_amped_preprocess_seconds(nnz_t nnz, std::size_t modes,
                                      double host_sort_keys_per_sec) {
  if (host_sort_keys_per_sec <= 0.0) {
    host_sort_keys_per_sec = kHostSortKeysPerSec;
  }
  if (nnz == 0) return 0.0;
  const double n = static_cast<double>(nnz);
  const double depth = std::max(1.0, std::log2(n) / 16.0);
  // One full sort pass per output mode, each O(n log n) with the depth
  // normalised so the rate constant is calibrated at n = 2^16.
  return static_cast<double>(modes) * n * depth / host_sort_keys_per_sec;
}

AmpedTensor AmpedTensor::build(const CooTensor& input,
                               const AmpedBuildOptions& options,
                               PreprocessStats* stats) {
  assert(options.num_gpus >= 1 && options.shards_per_gpu >= 1);
  WallTimer timer;

  AmpedTensor out;
  out.dims_ = input.dims();
  out.nnz_ = input.nnz();
  out.copies_.reserve(input.num_modes());

  const std::size_t shards =
      options.shards_per_gpu * static_cast<std::size_t>(options.num_gpus);
  // Per-mode copy builds are independent (each deep-copies the read-only
  // input, sorts it, and writes its own slot), so they spread across the
  // host thread pool. Slot order makes the result independent of
  // completion order.
  out.copies_.resize(input.num_modes());
  std::vector<std::exception_ptr> errors(input.num_modes());
  global_thread_pool().parallel_for(
      input.num_modes(), [&](std::size_t d) {
        try {
          ModeCopy copy;
          copy.tensor = input;  // deep copy, then reorder for this mode
          copy.tensor.sort_by_mode(d);
          copy.partition = build_mode_partition(copy.tensor, d, shards);
          out.copies_[d] = std::move(copy);
        } catch (...) {
          errors[d] = std::current_exception();
        }
      });
  for (auto& e : errors) {
    if (e) std::rethrow_exception(e);
  }

  if (stats) {
    stats->wall_seconds = timer.seconds();
    stats->host_seconds =
        model_amped_preprocess_seconds(input.nnz(), input.num_modes());
    stats->bytes_built = out.total_bytes();
  }
  return out;
}

std::uint64_t AmpedTensor::shard_bytes(std::size_t d,
                                       std::size_t shard_id) const {
  const auto& copy = copies_[d];
  const auto& shard = copy.partition.shards[shard_id];
  return shard.nnz() * copy.tensor.bytes_per_nnz();
}

std::uint64_t AmpedTensor::total_bytes() const {
  std::uint64_t total = 0;
  for (const auto& c : copies_) total += c.tensor.storage_bytes();
  return total;
}

}  // namespace amped
