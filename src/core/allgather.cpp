#include "core/allgather.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace amped {

std::string to_string(AllGatherAlgo algo) {
  switch (algo) {
    case AllGatherAlgo::kRing: return "ring";
    case AllGatherAlgo::kDirect: return "direct";
    case AllGatherAlgo::kHostStaged: return "host-staged";
  }
  return "?";
}

AllGatherAlgo parse_allgather(const std::string& name) {
  if (name == "ring") return AllGatherAlgo::kRing;
  if (name == "direct") return AllGatherAlgo::kDirect;
  if (name == "host-staged") return AllGatherAlgo::kHostStaged;
  throw std::invalid_argument("unknown all-gather algorithm \"" + name +
                              "\" (expected ring, direct, or host-staged)");
}

namespace {

// One synchronous exchange round: every GPU sends and receives
// concurrently (links are full duplex and pairwise independent), so after
// a barrier each device is busy for the longer of its send and receive.
void exchange_round(sim::Platform& platform,
                    std::span<const std::uint64_t> send_bytes,
                    std::span<const std::uint64_t> recv_bytes,
                    AllGatherReport& report) {
  platform.barrier();
  for (int g = 0; g < platform.num_gpus(); ++g) {
    const auto s = send_bytes[static_cast<std::size_t>(g)];
    const auto r = recv_bytes[static_cast<std::size_t>(g)];
    const double busy =
        std::max(platform.p2p_seconds(s), platform.p2p_seconds(r));
    if (s > 0 || r > 0) {
      platform.gpu(g).advance(sim::Phase::kPeerToPeer, busy);
      report.bytes_moved += s;
    }
  }
  platform.barrier();  // Algorithm 3 line 12: barrier per step
}

}  // namespace

double allgather_seconds(const sim::Platform& platform,
                         std::span<const std::uint64_t> part_bytes,
                         AllGatherAlgo algo) {
  const int m = platform.num_gpus();
  assert(static_cast<int>(part_bytes.size()) == m);
  if (m <= 1) return 0.0;
  const auto mod = [m](int x) { return ((x % m) + m) % m; };
  double total = 0.0;
  switch (algo) {
    case AllGatherAlgo::kRing: {
      // Barrier per step: every round lasts as long as its busiest GPU.
      for (int z = 0; z < m - 1; ++z) {
        double round = 0.0;
        for (int g = 0; g < m; ++g) {
          const auto s = part_bytes[static_cast<std::size_t>(mod(g - z))];
          const auto r = part_bytes[static_cast<std::size_t>(mod(g - z - 1))];
          if (s > 0 || r > 0) {
            round = std::max(round, std::max(platform.p2p_seconds(s),
                                             platform.p2p_seconds(r)));
          }
        }
        total += round;
      }
      break;
    }
    case AllGatherAlgo::kDirect: {
      for (int z = 1; z < m; ++z) {
        double round = 0.0;
        for (int g = 0; g < m; ++g) {
          const auto s = part_bytes[static_cast<std::size_t>(g)];
          const auto r = part_bytes[static_cast<std::size_t>(mod(g - z))];
          if (s > 0 || r > 0) {
            round = std::max(round, std::max(platform.p2p_seconds(s),
                                             platform.p2p_seconds(r)));
          }
        }
        total += round;
      }
      break;
    }
    case AllGatherAlgo::kHostStaged: {
      std::uint64_t full = 0;
      double d2h = 0.0;
      for (int g = 0; g < m; ++g) {
        const auto p = part_bytes[static_cast<std::size_t>(g)];
        full += p;
        d2h = std::max(d2h, platform.d2h_seconds(p));
      }
      const double concat =
          2.0 * static_cast<double>(full) /
          platform.host_cost_model().spec().mem_bandwidth;
      total = d2h + concat + platform.h2d_seconds(full);
      break;
    }
  }
  return total;
}

AllGatherReport allgather_factor_rows(sim::Platform& platform,
                                      std::span<const std::uint64_t> part_bytes,
                                      AllGatherAlgo algo) {
  const int m = platform.num_gpus();
  assert(static_cast<int>(part_bytes.size()) == m);
  AllGatherReport report;
  if (m <= 1) return report;

  platform.barrier();
  const double start = platform.makespan();
  std::vector<std::uint64_t> send(static_cast<std::size_t>(m)),
      recv(static_cast<std::size_t>(m));

  switch (algo) {
    case AllGatherAlgo::kRing: {
      // Algorithm 3: at step z, GPU g forwards partition (g - z) mod M to
      // GPU (g + 1) mod M while receiving partition (g - z - 1) mod M.
      for (int z = 0; z < m - 1; ++z) {
        for (int g = 0; g < m; ++g) {
          const int sends = ((g - z) % m + m) % m;
          const int recvs = ((g - z - 1) % m + m) % m;
          send[static_cast<std::size_t>(g)] =
              part_bytes[static_cast<std::size_t>(sends)];
          recv[static_cast<std::size_t>(g)] =
              part_bytes[static_cast<std::size_t>(recvs)];
        }
        exchange_round(platform, send, recv, report);
      }
      break;
    }
    case AllGatherAlgo::kDirect: {
      // Round z: GPU g pushes its own partition to peer (g + z) mod M and
      // receives the partition of (g - z) mod M. A GPU's own partition
      // crosses its egress link M-1 times.
      for (int z = 1; z < m; ++z) {
        for (int g = 0; g < m; ++g) {
          send[static_cast<std::size_t>(g)] =
              part_bytes[static_cast<std::size_t>(g)];
          recv[static_cast<std::size_t>(g)] =
              part_bytes[static_cast<std::size_t>(((g - z) % m + m) % m)];
        }
        exchange_round(platform, send, recv, report);
      }
      break;
    }
    case AllGatherAlgo::kHostStaged: {
      // D2H every partition (concurrent per-GPU links), host concatenation
      // (a memcpy-rate pass), then broadcast the full matrix H2D.
      std::uint64_t full = 0;
      for (int g = 0; g < m; ++g) {
        platform.d2h(g, part_bytes[static_cast<std::size_t>(g)]);
        report.bytes_moved += part_bytes[static_cast<std::size_t>(g)];
        full += part_bytes[static_cast<std::size_t>(g)];
      }
      platform.barrier();
      platform.host().wait_until(platform.makespan());
      const double concat =
          2.0 * static_cast<double>(full) /
          platform.host_cost_model().spec().mem_bandwidth;
      platform.host().advance(sim::Phase::kHostCompute, concat);
      // GPUs cannot start their H2D before the host finishes concatenating.
      for (int g = 0; g < m; ++g) {
        platform.gpu(g).wait_until(platform.host().clock());
        platform.h2d(g, full);
        report.bytes_moved += full;
      }
      break;
    }
  }

  platform.barrier();
  report.seconds = platform.makespan() - start;
  return report;
}

}  // namespace amped
