#include "core/batch.hpp"

#include <algorithm>
#include <cassert>

#include "exec/compose.hpp"
#include "exec/scheduler.hpp"

namespace amped {

namespace {

// One workload's contribution to a composed mode step.
struct ModeItem {
  const AmpedTensor* tensor = nullptr;
  const FactorSet* factors = nullptr;
  DenseMatrix* out = nullptr;
  std::size_t slot = 0;  // caller-side workload index (scope attribution)
};

struct StepOutcome {
  double seconds = 0.0;
  exec::ComposeInfo info;
  exec::ExecReport report;
};

// Graph scheduling needs a fixed shard -> GPU assignment (dependency
// edges are meaningless when every task is kAnyGpu) and non-pipelined
// lanes (the canonical link shape compose_graph consumes).
bool graph_compatible(const MttkrpOptions& options) {
  return !options.pipelined_streaming &&
         options.policy != SchedulingPolicy::kDynamicQueue &&
         options.policy != SchedulingPolicy::kDynamicLookahead;
}

// Lowers one item's mode-`mode` plan (the body run_composed_mode and the
// graph paths share). The output buffer is NOT zeroed here: legacy steps
// zero immediately before dispatch, graph chains zero once per window and
// let each link's host op re-zero for the next iteration.
exec::Plan lower_mode_plan(sim::Platform& platform, const ModeItem& item,
                           std::size_t mode, const MttkrpOptions& options,
                           const exec::Scheduler& scheduler) {
  assert(item.out->rows() == item.tensor->dims()[mode] &&
         item.out->cols() == item.factors->rank());
  const exec::ModeLowerInput input{
      platform, *item.tensor, mode, *item.factors, *item.out, options,
      resolve_mttkrp_profile(options, *item.tensor, mode, platform,
                             item.factors->rank())};
  return scheduler.lower(input);
}

// Lowers every item's mode-`mode` plan, composes them, and runs the
// merged plan — the batched analogue of mttkrp_one_mode. Factor mirrors
// of every participant are resident on each GPU for the duration, as in
// the solo path.
StepOutcome run_composed_mode(sim::Platform& platform,
                              std::span<const ModeItem> items,
                              std::size_t mode,
                              const MttkrpOptions& options) {
  const int m = platform.num_gpus();
  platform.barrier();
  const double t0 = platform.makespan();

  std::uint64_t factor_bytes = 0;
  for (const auto& item : items) factor_bytes += item.factors->total_bytes();
  for (int g = 0; g < m; ++g) platform.gpu(g).alloc(factor_bytes);

  const auto scheduler = exec::make_scheduler(options);
  std::vector<exec::Plan> plans;
  plans.reserve(items.size());
  for (const auto& item : items) {
    item.out->set_zero();
    plans.push_back(lower_mode_plan(platform, item, mode, options,
                                    *scheduler));
  }

  StepOutcome outcome;
  exec::Plan composed = exec::compose(plans, &outcome.info);
  exec::PlanExecutor executor(platform, options.backend);
  outcome.report = executor.run(composed);

  for (int g = 0; g < m; ++g) platform.gpu(g).free(factor_bytes);
  outcome.seconds = options.backend == exec::ExecBackend::kHostParallel
                        ? outcome.report.wall_seconds
                        : platform.makespan() - t0;
  return outcome;
}

// Folds one composed step into the report and the per-workload compute
// accounting (scope order inside the step equals item order).
// `iterations`, when non-empty, tags item s's gather edges with
// iterations[s] (cpd_batch); mttkrp_batch leaves them at 0.
void record_step(BatchReport& report, const StepOutcome& outcome,
                 std::span<const ModeItem> items, std::size_t mode,
                 std::span<const std::size_t> iterations = {}) {
  BatchModeStep step;
  step.mode = mode;
  step.plans = outcome.info.plans;
  step.elided_barriers = outcome.info.elided_barriers;
  step.seconds = outcome.seconds;
  report.elided_barriers += step.elided_barriers;
  report.steps.push_back(step);
  for (std::size_t s = 0; s < items.size(); ++s) {
    auto& acc = report.per_tensor_gpu_compute[items[s].slot];
    const auto& scope = outcome.report.scope_gpu_compute[s];
    for (std::size_t g = 0; g < scope.size(); ++g) acc[g] += scope[g];
  }
  for (const auto& e : outcome.report.gather_edges) {
    if (e.scope >= items.size()) continue;
    report.gather_edges.push_back(
        {items[e.scope].slot,
         iterations.empty() ? std::size_t{0} : iterations[e.scope], e.mode,
         e.bytes, e.start, e.finish});
  }
}

// The (workload, iteration, mode) a chain link stands for; indexed by
// ComposeInfo::scope_chain_link to attribute graph-dispatch report rows.
struct LinkAttr {
  std::size_t workload = 0;
  std::size_t iteration = 0;
  std::size_t mode = 0;
};

// Composes `chains` into one graph-scheduled plan, runs it, and folds the
// outcome into `report` — the graph analogue of run_composed_mode +
// record_step. `attr[c][l]` names chain c's link l. Returns the
// dispatch's seconds (wall under the host backend, makespan growth under
// the simulator).
double run_graph_dispatch(sim::Platform& platform,
                          std::vector<std::vector<exec::Plan>>& chains,
                          const std::vector<std::vector<LinkAttr>>& attr,
                          std::uint64_t factor_bytes,
                          const MttkrpOptions& options, BatchReport& report) {
  const int m = platform.num_gpus();
  platform.barrier();
  const double t0 = platform.makespan();
  for (int g = 0; g < m; ++g) platform.gpu(g).alloc(factor_bytes);

  exec::ComposeInfo info;
  exec::Plan plan = exec::compose_graph(chains, &info);
  exec::PlanExecutor executor(platform, options.backend);
  const exec::ExecReport run = executor.run(plan);

  for (int g = 0; g < m; ++g) platform.gpu(g).free(factor_bytes);
  const double seconds = options.backend == exec::ExecBackend::kHostParallel
                             ? run.wall_seconds
                             : platform.makespan() - t0;

  report.graph_dispatches += 1;
  report.elided_barriers += info.elided_barriers;
  BatchModeStep step;
  step.mode = 0;  // a graph dispatch spans every mode position
  step.plans = info.plans;
  step.elided_barriers = info.elided_barriers;
  step.seconds = seconds;
  report.steps.push_back(step);

  auto scope_attr = [&](std::size_t scope) -> const LinkAttr* {
    if (scope >= info.scope_chain_link.size()) return nullptr;
    const auto& [c, l] = info.scope_chain_link[scope];
    return &attr[c][l];
  };
  for (std::size_t s = 0; s < info.scope_chain_link.size(); ++s) {
    const LinkAttr* a = scope_attr(s);
    if (!a) continue;
    if (s < run.scope_gpu_compute.size()) {
      auto& acc = report.per_tensor_gpu_compute[a->workload];
      const auto& scope = run.scope_gpu_compute[s];
      for (std::size_t g = 0; g < scope.size(); ++g) acc[g] += scope[g];
    }
    if (s < run.scope_kernel_start.size() && run.scope_kernel_start[s] >= 0) {
      report.kernel_spans.push_back({a->workload, a->iteration, a->mode,
                                     run.scope_kernel_start[s],
                                     run.scope_kernel_finish[s]});
    }
  }
  for (const auto& e : run.gather_edges) {
    const LinkAttr* a = scope_attr(e.scope);
    if (!a) continue;
    report.gather_edges.push_back({a->workload, a->iteration, a->mode,
                                   e.bytes, e.start, e.finish});
  }
  return seconds;
}

}  // namespace

BatchReport mttkrp_batch(sim::Platform& platform,
                         std::span<const BatchWorkload> workloads,
                         std::vector<std::vector<DenseMatrix>>& outputs,
                         const MttkrpOptions& options) {
  BatchReport report;
  report.per_tensor_gpu_compute.assign(
      workloads.size(),
      std::vector<double>(static_cast<std::size_t>(platform.num_gpus()),
                          0.0));
  outputs.assign(workloads.size(), {});
  std::size_t max_modes = 0;
  for (std::size_t i = 0; i < workloads.size(); ++i) {
    const auto& w = workloads[i];
    outputs[i].reserve(w.tensor->num_modes());
    for (std::size_t d = 0; d < w.tensor->num_modes(); ++d) {
      outputs[i].emplace_back(w.tensor->dims()[d], w.factors->rank());
    }
    max_modes = std::max(max_modes, w.tensor->num_modes());
  }

  if (options.graph_schedule && graph_compatible(options) &&
      !workloads.empty()) {
    // Whole-sweep graph dispatch: one chain of mode links per workload,
    // gathers as dependency edges instead of per-position boundaries.
    const auto scheduler = exec::make_scheduler(options);
    std::uint64_t factor_bytes = 0;
    std::vector<std::vector<exec::Plan>> chains;
    std::vector<std::vector<LinkAttr>> attr;
    for (std::size_t i = 0; i < workloads.size(); ++i) {
      const auto& w = workloads[i];
      std::vector<exec::Plan> chain;
      std::vector<LinkAttr> chain_attr;
      for (std::size_t d = 0; d < w.tensor->num_modes(); ++d) {
        const ModeItem item{w.tensor, w.factors, &outputs[i][d], i};
        chain.push_back(
            lower_mode_plan(platform, item, d, options, *scheduler));
        chain_attr.push_back({i, 0, d});
      }
      factor_bytes += w.factors->total_bytes();
      chains.push_back(std::move(chain));
      attr.push_back(std::move(chain_attr));
    }
    report.total_seconds = run_graph_dispatch(platform, chains, attr,
                                              factor_bytes, options, report);
    return report;
  }

  platform.barrier();
  const double t0 = platform.makespan();
  for (std::size_t d = 0; d < max_modes; ++d) {
    std::vector<ModeItem> items;
    for (std::size_t i = 0; i < workloads.size(); ++i) {
      const auto& w = workloads[i];
      if (d >= w.tensor->num_modes()) continue;
      items.push_back({w.tensor, w.factors, &outputs[i][d], i});
    }
    if (items.empty()) continue;
    const auto outcome = run_composed_mode(platform, items, d, options);
    record_step(report, outcome, items, d);
  }
  if (options.backend == exec::ExecBackend::kHostParallel) {
    report.total_seconds = 0.0;
    for (const auto& step : report.steps) {
      report.total_seconds += step.seconds;
    }
  } else {
    report.total_seconds = platform.makespan() - t0;
  }
  return report;
}

std::vector<CpdResult> cpd_batch(sim::Platform& platform,
                                 std::span<const AmpedTensor* const> tensors,
                                 const CpdOptions& options,
                                 BatchReport* report) {
  BatchReport local;
  local.per_tensor_gpu_compute.assign(
      tensors.size(),
      std::vector<double>(static_cast<std::size_t>(platform.num_gpus()),
                          0.0));

  std::vector<detail::AlsState> states;
  states.reserve(tensors.size());
  std::size_t max_modes = 0;
  for (const AmpedTensor* t : tensors) {
    states.emplace_back(*t, options);
    max_modes = std::max(max_modes, t->num_modes());
  }

  // Per-tensor checkpoint paths: the batch shares one CpdOptions, so each
  // workload checkpoints (and resumes) under path + ".<index>".
  const bool checkpointing = !options.checkpoint_path.empty();
  auto checkpoint_path = [&](std::size_t i) {
    return options.checkpoint_path + "." + std::to_string(i);
  };
  if (checkpointing && options.resume) {
    for (std::size_t i = 0; i < states.size(); ++i) {
      states[i].load_checkpoint(checkpoint_path(i));
    }
  }

  platform.barrier();
  const double t0 = platform.makespan();
  const bool graph = options.graph_window > 0 && options.tolerance == 0.0 &&
                     graph_compatible(options.mttkrp);
  if (graph) {
    // Whole-ALS graph windows: tolerance == 0 means no convergence exit,
    // so every tensor's remaining iteration count is statically known and
    // up to graph_window whole iterations per tensor lower into one
    // graph-scheduled plan. Each link carries its ALS solve as a host op
    // on the gather edge; the next link's kernels chain off it, so tensor
    // A's iteration i+1 overlaps tensor B's iteration-i tail.
    const auto scheduler = exec::make_scheduler(options.mttkrp);
    for (;;) {
      std::vector<std::vector<exec::Plan>> chains;
      std::vector<std::vector<LinkAttr>> attr;
      std::vector<std::size_t> participants;  // state index per chain
      std::uint64_t factor_bytes = 0;
      for (std::size_t i = 0; i < states.size(); ++i) {
        auto& s = states[i];
        if (s.done()) continue;
        const std::size_t iters = std::min(
            options.graph_window, options.max_iterations - s.iterations());
        const std::size_t modes = s.num_modes();
        std::vector<exec::Plan> chain;
        std::vector<LinkAttr> chain_attr;
        detail::AlsState* st = &s;
        for (std::size_t it = 0; it < iters; ++it) {
          for (std::size_t d = 0; d < modes; ++d) {
            // First window iteration gets a fresh zeroed buffer; later
            // ones reuse it — each link's solve re-zeroes after
            // consuming, keeping the kernels' accumulation precondition.
            DenseMatrix* out = it == 0 ? &s.prepare_mode(d) : &s.buffer(d);
            const ModeItem item{&s.tensor(), &s.factors(), out, i};
            exec::Plan p = lower_mode_plan(platform, item, d,
                                           options.mttkrp, *scheduler);
            exec::Task solve;  // the link's ALS update, dependency-ordered
            solve.kind = exec::TaskKind::kHostOp;
            const bool last_mode = d + 1 == modes;
            solve.host_op = [st, d, last_mode](sim::Platform&) {
              st->update_mode(d, 0.0);
              st->buffer(d).set_zero();
              if (last_mode) st->finish_iteration();
            };
            p.tasks.push_back(std::move(solve));
            chain.push_back(std::move(p));
            chain_attr.push_back({i, s.iterations() + it, d});
          }
        }
        factor_bytes += s.factors().total_bytes();
        chains.push_back(std::move(chain));
        attr.push_back(std::move(chain_attr));
        participants.push_back(i);
      }
      if (chains.empty()) break;
      const double seconds = run_graph_dispatch(
          platform, chains, attr, factor_bytes, options.mttkrp, local);
      // The window is shared wall time: each participant's MTTKRP account
      // is charged the window it took part in (its solves ran at zero).
      for (std::size_t i : participants) states[i].charge_mttkrp(seconds);
      if (checkpointing && options.checkpoint_every != 0) {
        // Window-boundary checkpoints: the solo per-iteration cadence
        // cannot fire mid-plan, so the modulus applies to the iteration
        // count each window ends on.
        for (std::size_t i : participants) {
          if (states[i].iterations() % options.checkpoint_every == 0) {
            states[i].save_checkpoint(checkpoint_path(i));
          }
        }
      }
    }
  } else {
    std::vector<bool> active(states.size(), false);
    for (;;) {
      bool any_active = false;
      for (std::size_t i = 0; i < states.size(); ++i) {
        active[i] = !states[i].done();
        any_active = any_active || active[i];
      }
      if (!any_active) break;

      for (std::size_t d = 0; d < max_modes; ++d) {
        std::vector<ModeItem> items;
        std::vector<std::size_t> item_iteration;
        for (std::size_t i = 0; i < states.size(); ++i) {
          auto& s = states[i];
          if (s.done() || d >= s.num_modes()) continue;
          items.push_back({&s.tensor(), &s.factors(), &s.prepare_mode(d), i});
          item_iteration.push_back(s.iterations());
        }
        if (items.empty()) continue;
        const auto outcome =
            run_composed_mode(platform, items, d, options.mttkrp);
        record_step(local, outcome, items, d, item_iteration);
        // The composed step is shared wall time: each participant's
        // simulated-MTTKRP account is charged the step it took part in.
        for (const auto& item : items) {
          states[item.slot].update_mode(d, outcome.seconds);
        }
      }
      for (auto& s : states) {
        if (!s.done()) s.finish_iteration();
      }
      if (checkpointing && options.checkpoint_every != 0) {
        for (std::size_t i = 0; i < states.size(); ++i) {
          // Only workloads that iterated this round have new state; the
          // modulus matches the solo cp_als cadence per tensor.
          if (active[i] &&
              states[i].iterations() % options.checkpoint_every == 0) {
            states[i].save_checkpoint(checkpoint_path(i));
          }
        }
      }
    }
  }
  if (options.mttkrp.backend == exec::ExecBackend::kHostParallel) {
    local.total_seconds = 0.0;
    for (const auto& step : local.steps) {
      local.total_seconds += step.seconds;
    }
  } else {
    local.total_seconds = platform.makespan() - t0;
  }

  std::vector<CpdResult> results;
  results.reserve(states.size());
  for (auto& s : states) results.push_back(s.take_result());
  if (report) *report = std::move(local);
  return results;
}

}  // namespace amped
