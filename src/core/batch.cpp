#include "core/batch.hpp"

#include <algorithm>
#include <cassert>

#include "exec/compose.hpp"
#include "exec/scheduler.hpp"

namespace amped {

namespace {

// One workload's contribution to a composed mode step.
struct ModeItem {
  const AmpedTensor* tensor = nullptr;
  const FactorSet* factors = nullptr;
  DenseMatrix* out = nullptr;
  std::size_t slot = 0;  // caller-side workload index (scope attribution)
};

struct StepOutcome {
  double seconds = 0.0;
  exec::ComposeInfo info;
  exec::ExecReport report;
};

// Lowers every item's mode-`mode` plan, composes them, and runs the
// merged plan — the batched analogue of mttkrp_one_mode. Factor mirrors
// of every participant are resident on each GPU for the duration, as in
// the solo path.
StepOutcome run_composed_mode(sim::Platform& platform,
                              std::span<const ModeItem> items,
                              std::size_t mode,
                              const MttkrpOptions& options) {
  const int m = platform.num_gpus();
  platform.barrier();
  const double t0 = platform.makespan();

  std::uint64_t factor_bytes = 0;
  for (const auto& item : items) factor_bytes += item.factors->total_bytes();
  for (int g = 0; g < m; ++g) platform.gpu(g).alloc(factor_bytes);

  const auto scheduler = exec::make_scheduler(options);
  std::vector<exec::Plan> plans;
  plans.reserve(items.size());
  for (const auto& item : items) {
    assert(item.out->rows() == item.tensor->dims()[mode] &&
           item.out->cols() == item.factors->rank());
    item.out->set_zero();
    const exec::ModeLowerInput input{
        platform, *item.tensor, mode, *item.factors, *item.out, options,
        resolve_mttkrp_profile(options, *item.tensor, mode, platform,
                               item.factors->rank())};
    plans.push_back(scheduler->lower(input));
  }

  StepOutcome outcome;
  exec::Plan composed = exec::compose(plans, &outcome.info);
  exec::PlanExecutor executor(platform, options.backend);
  outcome.report = executor.run(composed);

  for (int g = 0; g < m; ++g) platform.gpu(g).free(factor_bytes);
  outcome.seconds = options.backend == exec::ExecBackend::kHostParallel
                        ? outcome.report.wall_seconds
                        : platform.makespan() - t0;
  return outcome;
}

// Folds one composed step into the report and the per-workload compute
// accounting (scope order inside the step equals item order).
void record_step(BatchReport& report, const StepOutcome& outcome,
                 std::span<const ModeItem> items, std::size_t mode) {
  BatchModeStep step;
  step.mode = mode;
  step.plans = outcome.info.plans;
  step.elided_barriers = outcome.info.elided_barriers;
  step.seconds = outcome.seconds;
  report.elided_barriers += step.elided_barriers;
  report.steps.push_back(step);
  for (std::size_t s = 0; s < items.size(); ++s) {
    auto& acc = report.per_tensor_gpu_compute[items[s].slot];
    const auto& scope = outcome.report.scope_gpu_compute[s];
    for (std::size_t g = 0; g < scope.size(); ++g) acc[g] += scope[g];
  }
}

}  // namespace

BatchReport mttkrp_batch(sim::Platform& platform,
                         std::span<const BatchWorkload> workloads,
                         std::vector<std::vector<DenseMatrix>>& outputs,
                         const MttkrpOptions& options) {
  BatchReport report;
  report.per_tensor_gpu_compute.assign(
      workloads.size(),
      std::vector<double>(static_cast<std::size_t>(platform.num_gpus()),
                          0.0));
  outputs.assign(workloads.size(), {});
  std::size_t max_modes = 0;
  for (std::size_t i = 0; i < workloads.size(); ++i) {
    const auto& w = workloads[i];
    outputs[i].reserve(w.tensor->num_modes());
    for (std::size_t d = 0; d < w.tensor->num_modes(); ++d) {
      outputs[i].emplace_back(w.tensor->dims()[d], w.factors->rank());
    }
    max_modes = std::max(max_modes, w.tensor->num_modes());
  }

  platform.barrier();
  const double t0 = platform.makespan();
  for (std::size_t d = 0; d < max_modes; ++d) {
    std::vector<ModeItem> items;
    for (std::size_t i = 0; i < workloads.size(); ++i) {
      const auto& w = workloads[i];
      if (d >= w.tensor->num_modes()) continue;
      items.push_back({w.tensor, w.factors, &outputs[i][d], i});
    }
    if (items.empty()) continue;
    const auto outcome = run_composed_mode(platform, items, d, options);
    record_step(report, outcome, items, d);
  }
  if (options.backend == exec::ExecBackend::kHostParallel) {
    report.total_seconds = 0.0;
    for (const auto& step : report.steps) {
      report.total_seconds += step.seconds;
    }
  } else {
    report.total_seconds = platform.makespan() - t0;
  }
  return report;
}

std::vector<CpdResult> cpd_batch(sim::Platform& platform,
                                 std::span<const AmpedTensor* const> tensors,
                                 const CpdOptions& options,
                                 BatchReport* report) {
  BatchReport local;
  local.per_tensor_gpu_compute.assign(
      tensors.size(),
      std::vector<double>(static_cast<std::size_t>(platform.num_gpus()),
                          0.0));

  std::vector<detail::AlsState> states;
  states.reserve(tensors.size());
  std::size_t max_modes = 0;
  for (const AmpedTensor* t : tensors) {
    states.emplace_back(*t, options);
    max_modes = std::max(max_modes, t->num_modes());
  }

  // Per-tensor checkpoint paths: the batch shares one CpdOptions, so each
  // workload checkpoints (and resumes) under path + ".<index>".
  const bool checkpointing = !options.checkpoint_path.empty();
  auto checkpoint_path = [&](std::size_t i) {
    return options.checkpoint_path + "." + std::to_string(i);
  };
  if (checkpointing && options.resume) {
    for (std::size_t i = 0; i < states.size(); ++i) {
      states[i].load_checkpoint(checkpoint_path(i));
    }
  }

  platform.barrier();
  const double t0 = platform.makespan();
  std::vector<bool> active(states.size(), false);
  for (;;) {
    bool any_active = false;
    for (std::size_t i = 0; i < states.size(); ++i) {
      active[i] = !states[i].done();
      any_active = any_active || active[i];
    }
    if (!any_active) break;

    for (std::size_t d = 0; d < max_modes; ++d) {
      std::vector<ModeItem> items;
      for (std::size_t i = 0; i < states.size(); ++i) {
        auto& s = states[i];
        if (s.done() || d >= s.num_modes()) continue;
        items.push_back({&s.tensor(), &s.factors(), &s.prepare_mode(d), i});
      }
      if (items.empty()) continue;
      const auto outcome = run_composed_mode(platform, items, d, options.mttkrp);
      record_step(local, outcome, items, d);
      // The composed step is shared wall time: each participant's
      // simulated-MTTKRP account is charged the step it took part in.
      for (const auto& item : items) {
        states[item.slot].update_mode(d, outcome.seconds);
      }
    }
    for (auto& s : states) {
      if (!s.done()) s.finish_iteration();
    }
    if (checkpointing && options.checkpoint_every != 0) {
      for (std::size_t i = 0; i < states.size(); ++i) {
        // Only workloads that iterated this round have new state; the
        // modulus matches the solo cp_als cadence per tensor.
        if (active[i] &&
            states[i].iterations() % options.checkpoint_every == 0) {
          states[i].save_checkpoint(checkpoint_path(i));
        }
      }
    }
  }
  if (options.mttkrp.backend == exec::ExecBackend::kHostParallel) {
    local.total_seconds = 0.0;
    for (const auto& step : local.steps) {
      local.total_seconds += step.seconds;
    }
  } else {
    local.total_seconds = platform.makespan() - t0;
  }

  std::vector<CpdResult> results;
  results.reserve(states.size());
  for (auto& s : states) results.push_back(s.take_result());
  if (report) *report = std::move(local);
  return results;
}

}  // namespace amped
