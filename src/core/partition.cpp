#include "core/partition.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <queue>
#include <stdexcept>

namespace amped {

std::string to_string(SchedulingPolicy policy) {
  switch (policy) {
    case SchedulingPolicy::kStaticGreedy: return "static-greedy";
    case SchedulingPolicy::kDynamicQueue: return "dynamic-queue";
    case SchedulingPolicy::kContiguous: return "contiguous";
    case SchedulingPolicy::kWeightedStatic: return "weighted-static";
    case SchedulingPolicy::kCostModel: return "cost-model";
    case SchedulingPolicy::kDynamicLookahead: return "dynamic-lookahead";
  }
  return "?";
}

SchedulingPolicy parse_policy(const std::string& name) {
  if (name == "static-greedy" || name == "greedy") {
    return SchedulingPolicy::kStaticGreedy;
  }
  if (name == "dynamic-queue" || name == "dynamic") {
    return SchedulingPolicy::kDynamicQueue;
  }
  if (name == "contiguous") return SchedulingPolicy::kContiguous;
  if (name == "weighted-static" || name == "weighted") {
    return SchedulingPolicy::kWeightedStatic;
  }
  if (name == "cost-model") return SchedulingPolicy::kCostModel;
  if (name == "dynamic-lookahead" || name == "lookahead") {
    return SchedulingPolicy::kDynamicLookahead;
  }
  throw std::invalid_argument(
      "unknown scheduling policy \"" + name +
      "\" (expected static-greedy, dynamic-queue, contiguous, "
      "weighted-static, cost-model, or dynamic-lookahead)");
}

nnz_t ModePartition::total_nnz() const {
  nnz_t total = 0;
  for (const auto& s : shards) total += s.nnz();
  return total;
}

nnz_t ModePartition::max_shard_nnz() const {
  nnz_t best = 0;
  for (const auto& s : shards) best = std::max(best, s.nnz());
  return best;
}

ModePartition build_mode_partition(const CooTensor& sorted, std::size_t mode,
                                   std::size_t num_shards) {
  assert(mode < sorted.num_modes());
  assert(num_shards >= 1);
  const index_t dim = sorted.dim(mode);
  // No more shards than indices: a shard narrower than one index is empty
  // by construction and just adds dispatch overhead.
  num_shards = std::min<std::size_t>(num_shards, dim);
  const auto idx = sorted.indices(mode);

  ModePartition part;
  part.mode = mode;
  part.shards.reserve(num_shards);

  const double width =
      static_cast<double>(dim) / static_cast<double>(num_shards);
  nnz_t cursor = 0;
  for (std::size_t j = 0; j < num_shards; ++j) {
    Shard s;
    s.index_begin = static_cast<index_t>(static_cast<double>(j) * width);
    s.index_end = (j + 1 == num_shards)
                      ? dim
                      : static_cast<index_t>(static_cast<double>(j + 1) * width);
    s.nnz_begin = cursor;
    while (cursor < idx.size() && idx[cursor] < s.index_end) ++cursor;
    s.nnz_end = cursor;
    part.shards.push_back(s);
  }
  assert(cursor == idx.size() && "tensor not sorted by the given mode");
  return part;
}

std::vector<nnz_t> ShardAssignment::nnz_per_gpu(
    const ModePartition& partition) const {
  std::vector<nnz_t> out(per_gpu.size(), 0);
  for (std::size_t g = 0; g < per_gpu.size(); ++g) {
    for (std::size_t id : per_gpu[g]) out[g] += partition.shards[id].nnz();
  }
  return out;
}

ShardAssignment assign_shards(const ModePartition& partition, int num_gpus,
                              SchedulingPolicy policy) {
  assert(num_gpus >= 1);
  ShardAssignment out;
  out.per_gpu.resize(static_cast<std::size_t>(num_gpus));
  const std::size_t n = partition.shards.size();

  switch (policy) {
    case SchedulingPolicy::kContiguous: {
      const std::size_t per =
          (n + static_cast<std::size_t>(num_gpus) - 1) /
          static_cast<std::size_t>(num_gpus);
      for (std::size_t id = 0; id < n; ++id) {
        out.per_gpu[std::min<std::size_t>(id / per,
                                          out.per_gpu.size() - 1)]
            .push_back(id);
      }
      break;
    }
    case SchedulingPolicy::kDynamicQueue:
    case SchedulingPolicy::kDynamicLookahead: {
      // Dispatch order only; the MTTKRP executor re-assigns at runtime by
      // device clock. Round-robin is the queue's arrival order.
      for (std::size_t id = 0; id < n; ++id) {
        out.per_gpu[id % out.per_gpu.size()].push_back(id);
      }
      break;
    }
    case SchedulingPolicy::kWeightedStatic: {
      // Without device weights available here, equal weights reproduce
      // kStaticGreedy; the MTTKRP executor calls assign_shards_weighted
      // directly with real throughput weights for this policy.
      std::vector<double> weights(static_cast<std::size_t>(num_gpus), 1.0);
      return assign_shards_weighted(partition, weights);
    }
    case SchedulingPolicy::kCostModel:
      // The real lowering needs a Platform for per-device cost estimates
      // (exec::CostModelScheduler); without one, LPT on nonzero count is
      // its homogeneous reduction.
      [[fallthrough]];
    case SchedulingPolicy::kStaticGreedy: {
      // Longest-processing-time-first on nonzero count: classic greedy
      // makespan bound of 4/3 OPT, and in practice within a fraction of a
      // percent here because shards vastly outnumber GPUs.
      std::vector<std::size_t> order(n);
      std::iota(order.begin(), order.end(), 0);
      std::stable_sort(order.begin(), order.end(),
                       [&](std::size_t a, std::size_t b) {
                         return partition.shards[a].nnz() >
                                partition.shards[b].nnz();
                       });
      using Load = std::pair<nnz_t, std::size_t>;  // (load, gpu)
      std::priority_queue<Load, std::vector<Load>, std::greater<>> heap;
      for (std::size_t g = 0; g < out.per_gpu.size(); ++g) heap.push({0, g});
      for (std::size_t id : order) {
        auto [load, g] = heap.top();
        heap.pop();
        out.per_gpu[g].push_back(id);
        heap.push({load + partition.shards[id].nnz(), g});
      }
      // Execute each GPU's shards in index order for stream friendliness.
      for (auto& list : out.per_gpu) std::sort(list.begin(), list.end());
      break;
    }
  }
  return out;
}

ShardAssignment assign_shards_weighted(const ModePartition& partition,
                                       std::span<const double> weights) {
  assert(!weights.empty());
  ShardAssignment out;
  out.per_gpu.resize(weights.size());
  const std::size_t n = partition.shards.size();

  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return partition.shards[a].nnz() >
                            partition.shards[b].nnz();
                   });
  // Min-heap on normalised load: load_g / weight_g.
  using Entry = std::pair<double, std::size_t>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  for (std::size_t g = 0; g < weights.size(); ++g) {
    assert(weights[g] > 0.0);
    heap.push({0.0, g});
  }
  for (std::size_t id : order) {
    auto [load, g] = heap.top();
    heap.pop();
    out.per_gpu[g].push_back(id);
    heap.push({load + static_cast<double>(partition.shards[id].nnz()) /
                          weights[g],
               g});
  }
  for (auto& list : out.per_gpu) std::sort(list.begin(), list.end());
  return out;
}

ShardRunStats compute_shard_run_stats(std::span<const index_t> mode_indices,
                                      const Shard& shard) {
  ShardRunStats stats;
  if (shard.nnz() == 0) return stats;
  assert(shard.nnz_end <= mode_indices.size());
  index_t run_index = mode_indices[shard.nnz_begin];
  nnz_t run_len = 0;
  stats.runs = 1;
  for (nnz_t n = shard.nnz_begin; n < shard.nnz_end; ++n) {
    if (mode_indices[n] == run_index) {
      ++run_len;
    } else {
      stats.max_run = std::max(stats.max_run, run_len);
      ++stats.runs;
      run_index = mode_indices[n];
      run_len = 1;
    }
  }
  stats.max_run = std::max(stats.max_run, run_len);
  return stats;
}

std::vector<std::pair<nnz_t, nnz_t>> split_isps(const Shard& shard,
                                                nnz_t isp_size) {
  assert(isp_size >= 1);
  std::vector<std::pair<nnz_t, nnz_t>> out;
  const nnz_t n = shard.nnz();
  out.reserve(static_cast<std::size_t>((n + isp_size - 1) / isp_size));
  for (nnz_t lo = 0; lo < n; lo += isp_size) {
    out.emplace_back(lo, std::min(n, lo + isp_size));
  }
  return out;
}

}  // namespace amped
