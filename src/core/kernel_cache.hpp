// Per-shape EC kernel cache: runtime specialisation without runtime
// codegen (ROADMAP item 4, first stage).
//
// The EC kernel is compile-time specialised for a menu of column widths
// (64/32/16/8, plus fully-unrolled 1..8 remainders). An arbitrary rank is
// decomposed greedily into those widths — sim::ec_tile_widths, shared with
// the cost model so pricing and execution agree — and each width becomes
// one *tile pass* over the block's nonzeros, reading and writing only its
// column slice [col, col+width) of the factor and output rows. Because
// every rank column accumulates independently over the same nonzero order,
// the tile passes produce bit-identical results to the single-pass generic
// kernel; each pass keeps the register accumulation of same-output-index
// runs and the factor-row prefetch the full-width kernels already had, so
// off-menu ranks stop paying the generic kernel's un-unrolled arithmetic
// and oversized gather footprint.
//
// A TileProgram is the pre-bound pass sequence for one KernelShape
// ({rank, mode class, index width, BlockOrder}). Programs are built once
// per distinct shape and cached in a lock-free find-or-create table with
// the same discipline as util/metrics: lookups walk an atomic bucket list
// (one hash, acquire loads, no locks), creation is rare and mutex-guarded,
// and nodes are never freed so a returned reference is stable for the
// process lifetime — callers resolve their program once (per shard, per
// plan, or into a static) and dispatch through it forever. The cache
// counts kernel_cache.{hits,misses,shapes} into the metrics registry.
//
// The seam a JIT takes later: emit code for the exact shape, wrap it as a
// single-tile program, and publish it under the same key — every caller
// already dispatches through the cache and none of them names a tile.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <span>
#include <vector>

#include "core/ec_kernel.hpp"

namespace amped {

// One tile pass: columns [col, col+width) of every row, executed by a
// compile-time-specialised function. `stats` is non-null for exactly one
// tile of a program (the run structure is identical across tiles, so only
// one gathers it).
using EcTileFn = void (*)(const index_t* out_idx, const value_t* vals,
                          const EcInputMode* inputs, std::size_t num_inputs,
                          std::size_t rank, std::size_t col, nnz_t begin,
                          nnz_t end, value_t* out_data,
                          sim::EcBlockStats* stats);

struct EcTile {
  std::uint32_t col = 0;    // first column this pass covers
  std::uint32_t width = 0;  // columns covered (the specialised width)
  EcTileFn fn = nullptr;
};

// The pre-bound pass sequence for one kernel shape. Immutable after the
// cache publishes it; safe to run from any number of threads at once.
class TileProgram {
 public:
  const KernelShape& shape() const { return shape_; }
  std::span<const EcTile> tiles() const { return tiles_; }

  // Executes every pass over [begin, end) (begin < end) and returns the
  // run stats (max_multiplicity left for the caller, which knows the
  // block order). `inputs` are the non-output modes in mode order.
  sim::EcBlockStats run(const index_t* out_idx, const value_t* vals,
                        const EcInputMode* inputs, std::size_t num_inputs,
                        nnz_t begin, nnz_t end, value_t* out_data) const;

 private:
  friend class KernelCache;
  KernelShape shape_;
  std::vector<EcTile> tiles_;
};

// Process-wide find-or-create table of TilePrograms keyed by KernelShape.
class KernelCache {
 public:
  static KernelCache& global();

  // Lock-free on the hit path (one hash + an acquire walk of one bucket);
  // misses serialise on a mutex, rebuild-check, and publish. The returned
  // reference lives for the process lifetime.
  const TileProgram& find_or_create(const KernelShape& shape);

  // Distinct shapes currently cached (sums the bucket chains; monotonic).
  std::size_t size() const;

  KernelCache(const KernelCache&) = delete;
  KernelCache& operator=(const KernelCache&) = delete;

 private:
  KernelCache() = default;

  static TileProgram build_program(const KernelShape& shape);

  static constexpr std::size_t kBuckets = 64;

  struct Node {
    TileProgram program;
    Node* next = nullptr;
  };

  std::atomic<Node*> buckets_[kBuckets] = {};
  std::mutex create_mutex_;
};

}  // namespace amped
