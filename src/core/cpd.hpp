// CPD-ALS driver (paper §2.1.4) on top of the multi-GPU MTTKRP.
//
// Alternating least squares: for each mode d, solve
//   A_d <- MTTKRP_d(X, {A_w}) * (hadamard_{w != d} A_w^T A_w)^-1
// then column-normalise. The MTTKRP runs on the simulated multi-GPU
// platform (it is the measured bottleneck, §5.1.6); the rank x rank dense
// algebra runs on the host and is excluded from simulated time, matching
// the paper's metric which times MTTKRP across modes only.
#pragma once

#include <cstdint>
#include <vector>

#include "core/amped_tensor.hpp"
#include "core/mttkrp.hpp"
#include "sim/platform.hpp"
#include "tensor/dense_matrix.hpp"
#include "util/timer.hpp"

namespace amped {

struct CpdOptions {
  std::size_t rank = 32;
  std::size_t max_iterations = 25;
  // Stop when the fit improves by less than this between iterations.
  double tolerance = 1e-5;
  std::uint64_t seed = 7;
  MttkrpOptions mttkrp;
  // Checkpoint/restart: when nonempty, an atomic "AMPCKP01" checkpoint
  // (factors + lambda + iteration + convergence state) is written to this
  // path every `checkpoint_every` iterations. With `resume`, an existing
  // checkpoint is loaded first and the run continues from it — the
  // resumed run is bit-identical to one that was never interrupted
  // (grams are recomputed deterministically from the factor bits).
  // A missing checkpoint under `resume` is a fresh start, not an error;
  // a corrupt or mismatched one throws. cpd_batch appends ".<index>" to
  // the path for each tensor in the batch.
  std::string checkpoint_path;
  std::size_t checkpoint_every = 1;
  bool resume = false;
  // cpd_batch only: when > 0, lower this many ALS iterations at a time
  // into one graph-scheduled plan (exec/compose.hpp compose_graph) whose
  // all-gathers are dependency edges — tensor A's mode d+1 starts the
  // moment its own factors land, overlapping tensor B's mode-d tail.
  // Requires tolerance == 0 (the iteration count must be statically
  // known, since convergence cannot be tested mid-window); cpd_batch
  // falls back to per-mode composition otherwise. 0 = off.
  std::size_t graph_window = 0;
};

struct CpdResult {
  FactorSet factors;            // column-normalised factor matrices
  std::vector<double> lambda;   // per-component weights
  double fit = 0.0;             // 1 - ||X - X_hat||_F / ||X||_F
  std::size_t iterations = 0;
  bool converged = false;
  // MTTKRP time across all iterations: simulated seconds under the
  // default backend, measured wall seconds under ExecBackend::kHostParallel.
  double mttkrp_sim_seconds = 0.0;
  std::vector<double> fit_history;  // fit after each iteration
  // Per-phase totals summed over every mode of every iteration (the
  // ModeBreakdown categories), plus the cost model's prices of the same
  // work — the measured-vs-predicted pairs --report-json emits per phase.
  double h2d_seconds = 0.0;
  double compute_seconds = 0.0;
  double p2p_seconds = 0.0;
  // Factor all-gather traffic summed over the per-edge gather records the
  // executor keeps (exec::ExecReport::gather_edges) — the bytes behind
  // p2p_seconds, emitted alongside it by --report-json.
  std::uint64_t gather_bytes = 0;
  double sync_seconds = 0.0;
  double predicted_compute_seconds = 0.0;
  double predicted_h2d_seconds = 0.0;
  // Checkpoint/resume events of this run (cp_als fills these; the
  // batched driver manages its own checkpoint paths).
  bool resumed = false;
  std::size_t resume_iteration = 0;   // iteration restored from disk
  std::size_t checkpoints_written = 0;
};

// Frobenius norm squared of the tensor's nonzero values.
double tensor_norm_sq(const CooTensor& t);

// Runs ALS until convergence or max_iterations. `tensor` supplies both the
// execution format and (through mode copy 0) the values for the fit.
CpdResult cp_als(sim::Platform& platform, const AmpedTensor& tensor,
                 const CpdOptions& options);

namespace detail {

// Host-side state of one tensor's ALS run, factored out of cp_als so the
// batched driver (core/batch.hpp) performs the exact same per-mode
// algebra — composed MTTKRP steps feed update_mode() and the factors,
// fits, and stopping decisions stay bit-identical to a solo cp_als.
class AlsState {
 public:
  AlsState(const AmpedTensor& tensor, const CpdOptions& options);

  const AmpedTensor& tensor() const { return *tensor_; }
  const FactorSet& factors() const { return result_.factors; }
  std::size_t num_modes() const { return tensor_->num_modes(); }
  bool done() const { return done_; }
  std::size_t iterations() const { return result_.iterations; }

  // Returns the zero-free output buffer the mode-`d` MTTKRP writes into
  // (sized dims[d] x rank; the MTTKRP zeroes it). Buffers are per mode
  // with stable addresses, so a graph-scheduled window can hold plans
  // against every mode's buffer at once.
  DenseMatrix& prepare_mode(std::size_t d);
  // The mode-`d` MTTKRP buffer as prepare_mode last shaped it. Graph
  // windows reuse it across iterations (the solve's host op zeroes it
  // after consuming it) instead of reallocating per iteration.
  DenseMatrix& buffer(std::size_t d) { return mttkrp_outs_[d]; }
  // Charges `sim_seconds` of simulated MTTKRP time and performs the ALS
  // update for mode `d`: normal equations, column normalisation, gram
  // refresh (and the inner product on the last mode).
  void update_mode(std::size_t d, double sim_seconds);
  // Charges MTTKRP seconds directly — graph windows price the whole
  // window's makespan once rather than attributing per mode.
  void charge_mttkrp(double sim_seconds);
  // Computes the fit, records the iteration, and decides convergence.
  void finish_iteration();

  // Writes the run's state to `path` atomically (core/checkpoint.hpp).
  void save_checkpoint(const std::string& path) const;
  // Restores from `path` if it exists: factors, lambda, fit trajectory,
  // iteration count, convergence flags; grams are recomputed from the
  // restored factor bits (deterministic, so the resumed run stays
  // bit-identical). Returns false when no file exists (fresh start);
  // throws on a corrupt file or a shape/rank mismatch with this run.
  bool load_checkpoint(const std::string& path);

  CpdResult take_result() { return std::move(result_); }

 private:
  const AmpedTensor* tensor_;
  const CpdOptions* options_;
  CpdResult result_;
  std::vector<DenseMatrix> grams_;
  std::vector<DenseMatrix> mttkrp_outs_;  // one MTTKRP buffer per mode
  double prev_fit_ = 0.0;
  double iprod_ = 0.0;
  bool done_ = false;
  // Heartbeat bookkeeping: wall clock of the current iteration and the
  // MTTKRP total at its start, so finish_iteration can report deltas.
  WallTimer iter_timer_;
  double last_mttkrp_total_ = 0.0;
};

}  // namespace detail

}  // namespace amped
