// CPD-ALS driver (paper §2.1.4) on top of the multi-GPU MTTKRP.
//
// Alternating least squares: for each mode d, solve
//   A_d <- MTTKRP_d(X, {A_w}) * (hadamard_{w != d} A_w^T A_w)^-1
// then column-normalise. The MTTKRP runs on the simulated multi-GPU
// platform (it is the measured bottleneck, §5.1.6); the rank x rank dense
// algebra runs on the host and is excluded from simulated time, matching
// the paper's metric which times MTTKRP across modes only.
#pragma once

#include <cstdint>
#include <vector>

#include "core/amped_tensor.hpp"
#include "core/mttkrp.hpp"
#include "sim/platform.hpp"
#include "tensor/dense_matrix.hpp"

namespace amped {

struct CpdOptions {
  std::size_t rank = 32;
  std::size_t max_iterations = 25;
  // Stop when the fit improves by less than this between iterations.
  double tolerance = 1e-5;
  std::uint64_t seed = 7;
  MttkrpOptions mttkrp;
};

struct CpdResult {
  FactorSet factors;            // column-normalised factor matrices
  std::vector<double> lambda;   // per-component weights
  double fit = 0.0;             // 1 - ||X - X_hat||_F / ||X||_F
  std::size_t iterations = 0;
  bool converged = false;
  double mttkrp_sim_seconds = 0.0;  // simulated MTTKRP time, all iterations
  std::vector<double> fit_history;  // fit after each iteration
};

// Frobenius norm squared of the tensor's nonzero values.
double tensor_norm_sq(const CooTensor& t);

// Runs ALS until convergence or max_iterations. `tensor` supplies both the
// execution format and (through mode copy 0) the values for the fit.
CpdResult cp_als(sim::Platform& platform, const AmpedTensor& tensor,
                 const CpdOptions& options);

}  // namespace amped
