// AMPED's multi-GPU MTTKRP (paper §4, Algorithms 1 and 2).
//
// Per output mode d: shards of the mode-d tensor copy stream from host
// memory to their assigned GPUs, each shard executes as one grid whose
// threadblocks are the shard's inter-shard partitions, GPUs synchronise at
// an inter-GPU barrier, and the updated output factor rows are exchanged
// with a ring all-gather before the next mode. The arithmetic really runs
// (outputs are verified against the sequential reference); simulated time
// accrues on the Platform per the cost model.
#pragma once

#include <cstddef>
#include <vector>

#include "core/allgather.hpp"
#include "core/amped_tensor.hpp"
#include "core/partition.hpp"
#include "exec/backend.hpp"
#include "sim/platform.hpp"
#include "tensor/dense_matrix.hpp"

namespace amped {

struct MttkrpOptions {
  nnz_t block_width = 32;  // P = theta = 32 (§5.1.5)
  // Nonzeros per inter-shard partition; 0 = auto (one ISP per SM per shard,
  // the paper's t_{d,j} = |TS_{d,j}| / g).
  nnz_t isp_size = 0;
  SchedulingPolicy policy = SchedulingPolicy::kStaticGreedy;
  AllGatherAlgo allgather = AllGatherAlgo::kRing;
  // Overlap each shard's H2D transfer with the previous shard's grid
  // (double-buffered copy engine). The paper streams and computes
  // sequentially (its Fig. 7 communication and compute are additive);
  // this switch quantifies what pipelining would buy (ablation A6).
  // Applies to the static policies; dynamic dispatch stays sequential.
  bool pipelined_streaming = false;
  // Which machine runs the lowered plans: the clock-charging simulator
  // (default; every timing below is modelled) or the real host-parallel
  // backend (exec/host_backend.hpp; timings are measured wall clock).
  // Factor outputs are bit-identical either way.
  exec::ExecBackend backend = exec::ExecBackend::kSimulated;
  // Batched drivers only (mttkrp_batch / cpd_batch): lower each workload
  // as a *chain* of canonical mode plans and merge them with
  // exec::compose_graph — all-gathers become dependency edges, so tensor
  // A's mode d+1 starts the moment A's own gather lands instead of
  // waiting for every lane of every tensor to drain. Requires a static
  // policy (contiguous/static-greedy/weighted-static, non-pipelined);
  // the drivers fall back to per-mode composition otherwise.
  bool graph_schedule = false;
  // Full-scale mode sizes for the cache model (empty = use the tensor's
  // own dims). Benchmarks running scaled-down Table 3 profiles pass the
  // profile's real dims so factor-matrix cacheability is decided at full
  // scale.
  std::vector<std::uint64_t> full_dims;
  // Kernel profile of the AMPED shard kernel. The factor_read_efficiency
  // field acts as a locality multiplier; the per-mode cache efficiency is
  // folded in per output mode from full_dims. Output writes are amortised
  // over sorted runs by the cost model (shards are output-sorted).
  sim::KernelProfile profile{
      .coord_bytes_per_nnz = 0.0,  // 0 = derive from modes (COO layout)
      .factor_read_efficiency = 1.0,
      .output_write_efficiency = 1.0,
      .flop_overhead = 1.0,
      .atomic_scale = 1.0,
  };
};

// Per-mode timing decomposition (paper Fig. 7 categories).
struct ModeBreakdown {
  std::size_t mode = 0;
  double seconds = 0.0;    // makespan growth of this mode
  double h2d = 0.0;        // per-GPU-summed H2D seconds
  double compute = 0.0;    // per-GPU-summed EC seconds
  double p2p = 0.0;        // per-GPU-summed all-gather seconds
  double sync = 0.0;       // per-GPU-summed barrier stalls
  std::vector<double> per_gpu_compute;  // EC seconds by GPU (Fig. 8)
  // Cost-model prices of the same work. Under the simulator these equal
  // compute/h2d (modelled time IS the measurement); under the host
  // backend they are the model's prediction for the kernels and staged
  // transfers the run actually executed, making every mode a directly
  // comparable (measured, predicted) pair for --report-json.
  double predicted_compute = 0.0;
  double predicted_h2d = 0.0;
  // Per-edge all-gather accounting (ExecReport::gather_edges): the bytes
  // this mode's gather actually moved and when it ran, plan-relative.
  // Previously only the p2p seconds aggregate was visible, so a batched
  // run could not attribute gather cost to an iteration/mode.
  std::uint64_t gather_bytes = 0;
  double gather_start = 0.0;   // seconds after the plan started
  double gather_finish = 0.0;  // 0/0 when the mode had no gather edge
};

struct MttkrpReport {
  double total_seconds = 0.0;  // the paper's metric: all modes, one sweep
  std::vector<ModeBreakdown> modes;
  std::vector<double> per_gpu_compute;  // summed across modes (Fig. 8)

  // Fig. 8 metric: (max - min) EC time across GPUs over total EC time.
  double compute_overhead_fraction() const;
  // Fractions of summed GPU time per category (Fig. 7).
  double communication_fraction() const;
};

// Resolves the effective kernel profile for one output mode: derives COO
// coordinate bytes from the mode count and folds the full-scale cache
// efficiency of this mode's factor reads into the locality multiplier.
// Shared by the execution engine, its schedulers, and the frozen
// reference loop so they always price the same kernel.
sim::KernelProfile resolve_mttkrp_profile(const MttkrpOptions& options,
                                          const AmpedTensor& tensor,
                                          std::size_t output_mode,
                                          const sim::Platform& platform,
                                          std::size_t rank);

// Computes MTTKRP for a single output mode into `out` (must be
// dim(mode) x R, zeroed by the callee). Returns the mode's breakdown.
ModeBreakdown mttkrp_one_mode(sim::Platform& platform,
                              const AmpedTensor& tensor,
                              const FactorSet& factors, std::size_t mode,
                              DenseMatrix& out, const MttkrpOptions& options);

// Computes MTTKRP along all modes with constant factor inputs (§5.1.6's
// "total execution time"); outputs[d] receives mode d's result.
MttkrpReport mttkrp_all_modes(sim::Platform& platform,
                              const AmpedTensor& tensor,
                              const FactorSet& factors,
                              std::vector<DenseMatrix>& outputs,
                              const MttkrpOptions& options);

}  // namespace amped
