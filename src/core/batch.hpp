// Batched multi-tensor MTTKRP and CPD: the paper's "serve many scenarios"
// story scaled to production traffic.
//
// N independent workloads (different tensors, factor sets, and output
// buffers) are lowered mode position by mode position, and the N plans of
// each position are merged with exec::compose(). Because every workload
// updates its own output matrix, the plans' row-ownership scopes are
// pairwise disjoint, so the composed plan elides the per-plan barriers:
// a GPU that drains tensor A's shards flows straight into tensor B's,
// filling lanes that would idle in a back-to-back run. Outputs are
// bit-identical to solo execution (interleaving cannot change any
// tensor's arithmetic — the scopes share no memory) and the composed
// makespan is never worse than the sum of solo makespans.
#pragma once

#include <span>
#include <vector>

#include "core/cpd.hpp"
#include "core/mttkrp.hpp"

namespace amped {

// One tensor's MTTKRP work in a batch. `factors` must match the tensor's
// dims; both must outlive the call.
struct BatchWorkload {
  const AmpedTensor* tensor = nullptr;
  const FactorSet* factors = nullptr;
};

// One composed dispatch: all workloads' mode-`mode` plans in one plan.
struct BatchModeStep {
  std::size_t mode = 0;             // mode position composed in this step
  std::size_t plans = 0;            // workloads that contributed a plan
  std::size_t elided_barriers = 0;  // barriers removed by disjointness
  double seconds = 0.0;             // makespan growth of the step
};

struct BatchReport {
  double total_seconds = 0.0;  // makespan of the whole batched sweep
  std::vector<BatchModeStep> steps;
  // EC seconds per workload per GPU, from the composed plans' per-scope
  // accounting (order matches the workload span).
  std::vector<std::vector<double>> per_tensor_gpu_compute;
  std::size_t elided_barriers = 0;  // summed over steps
};

// Computes MTTKRP along all modes of every workload with constant factor
// inputs, composing same-position modes across workloads.
// outputs[i][d] receives workload i's mode-d result (bit-identical to
// mttkrp_all_modes on workload i alone).
BatchReport mttkrp_batch(sim::Platform& platform,
                         std::span<const BatchWorkload> workloads,
                         std::vector<std::vector<DenseMatrix>>& outputs,
                         const MttkrpOptions& options);

// Runs CPD-ALS on every tensor simultaneously: each ALS mode update is a
// composed MTTKRP step across the tensors still iterating (a converged
// tensor stops contributing plans). Factors, fits, iteration counts, and
// convergence decisions are bit-identical to running cp_als per tensor
// with the same options; `report`, when non-null, receives the composed
// steps of the whole run. Results are in input order.
std::vector<CpdResult> cpd_batch(sim::Platform& platform,
                                 std::span<const AmpedTensor* const> tensors,
                                 const CpdOptions& options,
                                 BatchReport* report = nullptr);

}  // namespace amped
