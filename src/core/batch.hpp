// Batched multi-tensor MTTKRP and CPD: the paper's "serve many scenarios"
// story scaled to production traffic.
//
// N independent workloads (different tensors, factor sets, and output
// buffers) are lowered mode position by mode position, and the N plans of
// each position are merged with exec::compose(). Because every workload
// updates its own output matrix, the plans' row-ownership scopes are
// pairwise disjoint, so the composed plan elides the per-plan barriers:
// a GPU that drains tensor A's shards flows straight into tensor B's,
// filling lanes that would idle in a back-to-back run. Outputs are
// bit-identical to solo execution (interleaving cannot change any
// tensor's arithmetic — the scopes share no memory) and the composed
// makespan is never worse than the sum of solo makespans.
#pragma once

#include <span>
#include <vector>

#include "core/cpd.hpp"
#include "core/mttkrp.hpp"

namespace amped {

// One tensor's MTTKRP work in a batch. `factors` must match the tensor's
// dims; both must outlive the call.
struct BatchWorkload {
  const AmpedTensor* tensor = nullptr;
  const FactorSet* factors = nullptr;
};

// One composed dispatch: all workloads' mode-`mode` plans in one plan.
struct BatchModeStep {
  std::size_t mode = 0;             // mode position composed in this step
  std::size_t plans = 0;            // workloads that contributed a plan
  std::size_t elided_barriers = 0;  // barriers removed by disjointness
  double seconds = 0.0;             // makespan growth of the step
};

// One all-gather dependency edge of a composed dispatch, attributed back
// to the workload/iteration/mode it belongs to via the composed plan's
// scope map. Legacy composition reports its end-of-plan gathers through
// the same records, so per-iteration gather cost is always separable.
struct BatchGatherEdge {
  std::size_t workload = 0;   // input order of the owning workload
  std::size_t iteration = 0;  // ALS iteration (0 for mttkrp_batch)
  std::size_t mode = 0;       // output mode the gather exchanged
  std::uint64_t bytes = 0;    // wire bytes the edge moved
  double start = 0.0;         // seconds after its dispatch started
  double finish = 0.0;
};

// First-to-last kernel span of one (workload, iteration, mode) inside a
// graph-scheduled dispatch — the raw material of the overlap story: span
// i+1 of one workload starting before span i of another finishes is the
// lane time barrier-phase composition would have idled away.
struct BatchKernelSpan {
  std::size_t workload = 0;
  std::size_t iteration = 0;
  std::size_t mode = 0;
  double start = 0.0;   // seconds after its dispatch started
  double finish = 0.0;
};

struct BatchReport {
  double total_seconds = 0.0;  // makespan of the whole batched sweep
  std::vector<BatchModeStep> steps;
  // EC seconds per workload per GPU, from the composed plans' per-scope
  // accounting (order matches the workload span).
  std::vector<std::vector<double>> per_tensor_gpu_compute;
  std::size_t elided_barriers = 0;  // summed over steps
  // Per-edge gather accounting across every dispatch of the run.
  std::vector<BatchGatherEdge> gather_edges;
  // Graph dispatches only (empty otherwise).
  std::vector<BatchKernelSpan> kernel_spans;
  std::size_t graph_dispatches = 0;  // graph-composed plans executed
};

// Computes MTTKRP along all modes of every workload with constant factor
// inputs, composing same-position modes across workloads.
// outputs[i][d] receives workload i's mode-d result (bit-identical to
// mttkrp_all_modes on workload i alone).
//
// With options.graph_schedule (and a static, non-pipelined policy), the
// whole sweep is one graph-scheduled plan instead of one composed plan
// per mode position: each workload's modes form a chain whose all-gathers
// are dependency edges, so workload A's mode d+1 kernels start the moment
// A's own gather lands — overlapping workload B's mode-d tail instead of
// waiting at a per-position boundary. Outputs stay bit-identical.
BatchReport mttkrp_batch(sim::Platform& platform,
                         std::span<const BatchWorkload> workloads,
                         std::vector<std::vector<DenseMatrix>>& outputs,
                         const MttkrpOptions& options);

// Runs CPD-ALS on every tensor simultaneously: each ALS mode update is a
// composed MTTKRP step across the tensors still iterating (a converged
// tensor stops contributing plans). Factors, fits, iteration counts, and
// convergence decisions are bit-identical to running cp_als per tensor
// with the same options; `report`, when non-null, receives the composed
// steps of the whole run. Results are in input order.
//
// With options.graph_window > 0, options.tolerance == 0 (iteration count
// statically known), and a static non-pipelined policy, up to
// graph_window whole iterations of every tensor are lowered into ONE
// graph-scheduled plan per window: each link's ALS solve runs as a host
// op on the gather edge, and the next iteration's kernels chain off it —
// tensor A's iteration i+1 starts while tensor B's iteration i is still
// draining. Factors and fits remain bit-identical; checkpoints are
// written at window boundaries rather than every iteration.
std::vector<CpdResult> cpd_batch(sim::Platform& platform,
                                 std::span<const AmpedTensor* const> tensors,
                                 const CpdOptions& options,
                                 BatchReport* report = nullptr);

}  // namespace amped
