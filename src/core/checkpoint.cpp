#include "core/checkpoint.hpp"

#include <cstring>
#include <stdexcept>

#include "io/mapped_file.hpp"
#include "io/snapshot.hpp"
#include "util/fault.hpp"

namespace amped {

namespace {

constexpr char kCheckpointMagic[8] = {'A', 'M', 'P', 'C', 'K', 'P', '0', '1'};

template <typename T>
void append(std::vector<std::byte>& out, T v) {
  const auto* p = reinterpret_cast<const std::byte*>(&v);
  out.insert(out.end(), p, p + sizeof(T));
}

// Sequential little-endian reader with hard bounds checks: a truncated or
// tampered checkpoint must fail cleanly, never read out of bounds.
struct Cursor {
  const std::byte* p;
  std::size_t remaining;
  const std::string& path;

  template <typename T>
  T take() {
    if (remaining < sizeof(T)) {
      throw std::runtime_error("checkpoint: " + path +
                               " is truncated mid-field");
    }
    T v;
    std::memcpy(&v, p, sizeof(T));
    p += sizeof(T);
    remaining -= sizeof(T);
    return v;
  }

  void take_into(void* dst, std::size_t bytes) {
    if (remaining < bytes) {
      throw std::runtime_error("checkpoint: " + path +
                               " is truncated mid-array");
    }
    std::memcpy(dst, p, bytes);
    p += bytes;
    remaining -= bytes;
  }
};

}  // namespace

void write_als_checkpoint(const AlsCheckpoint& ckpt, const std::string& path) {
  std::vector<std::byte> payload;
  append(payload, static_cast<std::uint64_t>(ckpt.factors.size()));
  const std::uint64_t rank =
      ckpt.factors.empty() ? ckpt.lambda.size() : ckpt.factors[0].cols();
  append(payload, rank);
  append(payload, ckpt.iterations);
  const std::uint64_t flags = (ckpt.converged ? 1u : 0u) |
                              (ckpt.done ? 2u : 0u);
  append(payload, flags);
  append(payload, ckpt.fit);
  append(payload, ckpt.prev_fit);
  append(payload, ckpt.mttkrp_seconds);
  append(payload, static_cast<std::uint64_t>(ckpt.lambda.size()));
  for (double v : ckpt.lambda) append(payload, v);
  append(payload, static_cast<std::uint64_t>(ckpt.fit_history.size()));
  for (double v : ckpt.fit_history) append(payload, v);
  for (const auto& f : ckpt.factors) {
    append(payload, static_cast<std::uint64_t>(f.rows()));
    append(payload, static_cast<std::uint64_t>(f.cols()));
    const auto data = f.data();
    const auto* bytes = reinterpret_cast<const std::byte*>(data.data());
    payload.insert(payload.end(), bytes,
                   bytes + data.size() * sizeof(value_t));
  }
  const std::uint64_t checksum =
      io::checksum64(payload.data(), payload.size());

  // Injected transient snapshot faults (and EINTR-class conditions
  // surfaced as TransientError) are retried; each attempt starts a fresh
  // temp file, so a failed attempt leaves nothing behind.
  fault::retry_transient("checkpoint write", [&] {
    io::AtomicFileWriter out(path);
    out.write(kCheckpointMagic, sizeof(kCheckpointMagic));
    out.write(&checksum, sizeof(checksum));
    out.write(payload.data(), payload.size());
    out.commit();
  });
}

AlsCheckpoint read_als_checkpoint(const std::string& path) {
  io::MappedFile file(path);
  if (file.size() < sizeof(kCheckpointMagic) + sizeof(std::uint64_t)) {
    throw std::runtime_error("checkpoint: " + path +
                             " is shorter than the header");
  }
  if (std::memcmp(file.data(), kCheckpointMagic, sizeof(kCheckpointMagic)) !=
      0) {
    throw std::runtime_error("checkpoint: " + path +
                             " has bad magic (not an AMPCKP01 checkpoint)");
  }
  std::uint64_t stored_checksum;
  std::memcpy(&stored_checksum, file.data() + sizeof(kCheckpointMagic),
              sizeof(stored_checksum));
  const std::byte* payload =
      file.data() + sizeof(kCheckpointMagic) + sizeof(std::uint64_t);
  const std::size_t payload_bytes =
      file.size() - sizeof(kCheckpointMagic) - sizeof(std::uint64_t);
  if (io::checksum64(payload, payload_bytes) != stored_checksum) {
    throw std::runtime_error("checkpoint: " + path +
                             " failed its checksum (corrupt or truncated)");
  }

  Cursor in{payload, payload_bytes, path};
  AlsCheckpoint ckpt;
  const auto num_modes = in.take<std::uint64_t>();
  const auto rank = in.take<std::uint64_t>();
  // An on-disk mode/rank count the file cannot possibly hold is corrupt
  // structure even with a matching checksum.
  if (num_modes > payload_bytes || rank > payload_bytes) {
    throw std::runtime_error("checkpoint: " + path +
                             " has an implausible mode/rank count");
  }
  ckpt.iterations = in.take<std::uint64_t>();
  const auto flags = in.take<std::uint64_t>();
  ckpt.converged = (flags & 1u) != 0;
  ckpt.done = (flags & 2u) != 0;
  ckpt.fit = in.take<double>();
  ckpt.prev_fit = in.take<double>();
  ckpt.mttkrp_seconds = in.take<double>();
  const auto lambda_count = in.take<std::uint64_t>();
  if (lambda_count != rank) {
    throw std::runtime_error("checkpoint: " + path +
                             " lambda count does not match the rank");
  }
  ckpt.lambda.resize(static_cast<std::size_t>(lambda_count));
  in.take_into(ckpt.lambda.data(), ckpt.lambda.size() * sizeof(double));
  const auto history_count = in.take<std::uint64_t>();
  if (history_count > payload_bytes / sizeof(double)) {
    throw std::runtime_error("checkpoint: " + path +
                             " has an implausible fit-history count");
  }
  ckpt.fit_history.resize(static_cast<std::size_t>(history_count));
  in.take_into(ckpt.fit_history.data(),
               ckpt.fit_history.size() * sizeof(double));
  ckpt.factors.reserve(static_cast<std::size_t>(num_modes));
  for (std::uint64_t m = 0; m < num_modes; ++m) {
    const auto rows = in.take<std::uint64_t>();
    const auto cols = in.take<std::uint64_t>();
    if (cols != rank || rows > in.remaining / sizeof(value_t) / (cols ? cols : 1)) {
      throw std::runtime_error("checkpoint: " + path + " factor " +
                               std::to_string(m) + " has a bad shape");
    }
    DenseMatrix f(static_cast<std::size_t>(rows),
                  static_cast<std::size_t>(cols));
    in.take_into(f.data().data(), f.bytes());
    ckpt.factors.push_back(std::move(f));
  }
  if (in.remaining != 0) {
    throw std::runtime_error("checkpoint: " + path +
                             " has trailing bytes after the last factor");
  }
  return ckpt;
}

}  // namespace amped
