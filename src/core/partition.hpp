// AMPED's tensor partitioning scheme (paper §3).
//
// For each output mode d, the output index space I_d is cut into
// equal-width contiguous index partitions; all nonzeros whose output-mode
// index falls in partition j form tensor shard TS_{d,j} (§3.1.1). Because
// shards own disjoint output indices, no two GPUs ever update the same
// output factor row — the task-independence property that removes
// inter-GPU coherence (§3.1.1). Each shard is then split into equal-size
// inter-shard partitions (ISPs), one per threadblock (§3.1.2).
//
// Shard-to-GPU distribution is the load-balancing half of the
// contribution: many more shards than GPUs are created and distributed
// either by a static greedy (LPT on nonzero count, §2.2's "static load
// balancing scheme") or by dynamic dispatch to the earliest-idle GPU
// (abstract's "dynamic load balancing scheme"); a naive contiguous
// assignment is kept for the ablation study.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "tensor/coo_tensor.hpp"

namespace amped {

enum class SchedulingPolicy {
  kStaticGreedy,    // LPT: heaviest shard to least-loaded GPU (default)
  kDynamicQueue,    // next shard to the earliest-idle GPU at runtime
  kContiguous,      // equal count of consecutive shards per GPU (ablation)
  kWeightedStatic,  // LPT on nnz / device-throughput weight: the static
                    // scheme for heterogeneous nodes (paper §6 future work)
  kCostModel,       // LPT on per-shard, per-device simulated seconds from
                    // sim/cost_model — balances heterogeneous GPUs at
                    // shard granularity (exec::CostModelScheduler)
  kDynamicLookahead,  // dynamic dispatch with a per-GPU copy engine: the
                      // next shard's H2D streams while the current grid
                      // computes (closes the dynamic-vs-pipelined gap)
};

std::string to_string(SchedulingPolicy policy);
// Parses the names produced by to_string (plus the short aliases
// "greedy", "dynamic", "weighted"); throws std::invalid_argument listing
// the accepted names on a typo.
SchedulingPolicy parse_policy(const std::string& name);

struct Shard {
  index_t index_begin = 0;  // output-mode index range [begin, end)
  index_t index_end = 0;
  nnz_t nnz_begin = 0;      // nonzero range [begin, end) in the sorted copy
  nnz_t nnz_end = 0;

  nnz_t nnz() const { return nnz_end - nnz_begin; }
  index_t index_count() const { return index_end - index_begin; }
};

// Shard directory for one output mode. Built from a tensor copy that is
// already sorted by `mode` (most significant key).
struct ModePartition {
  std::size_t mode = 0;
  std::vector<Shard> shards;

  nnz_t total_nnz() const;
  nnz_t max_shard_nnz() const;
};

// Cuts mode-`mode` of `sorted` (which must be sorted by that mode) into
// `num_shards` shards of equal index width. Shards may be empty; they are
// kept so shard j's index range is always computable from j.
ModePartition build_mode_partition(const CooTensor& sorted, std::size_t mode,
                                   std::size_t num_shards);

// Assigns shards to `num_gpus` GPUs. For kStaticGreedy/kContiguous the
// result is the final execution order per GPU; for kDynamicQueue this
// returns the dispatch order (a single queue) encoded as round-robin
// placeholder — the executor re-dispatches at runtime using device clocks.
struct ShardAssignment {
  // assignment[g] = shard ids executed by GPU g, in execution order.
  std::vector<std::vector<std::size_t>> per_gpu;

  // Nonzeros per GPU under this assignment.
  std::vector<nnz_t> nnz_per_gpu(const ModePartition& partition) const;
};

ShardAssignment assign_shards(const ModePartition& partition, int num_gpus,
                              SchedulingPolicy policy);

// Heterogeneous variant: greedy LPT minimising max(load_g / weight_g),
// where weight_g is proportional to GPU g's sustained throughput. With
// equal weights this reduces to kStaticGreedy.
ShardAssignment assign_shards_weighted(const ModePartition& partition,
                                       std::span<const double> weights);

// Splits [0, shard.nnz()) into equal-size ISP ranges of `isp_size`
// nonzeros (last one may be short). Offsets are relative to
// shard.nnz_begin.
std::vector<std::pair<nnz_t, nnz_t>> split_isps(const Shard& shard,
                                                nnz_t isp_size);

// Device-independent run structure of one shard of an output-sorted copy:
// how many runs of equal output index it contains and the longest one.
// Exact input to the cost model's EC pricing; computed from the resident
// sorted indices, or persisted at spill time (io/snapshot run-stats
// segment) so spilled shards price from real structure too.
struct ShardRunStats {
  nnz_t runs = 0;
  nnz_t max_run = 0;
};

// One scan of `mode_indices` (the shard's output-mode column, sorted)
// over [shard.nnz_begin, shard.nnz_end).
ShardRunStats compute_shard_run_stats(std::span<const index_t> mode_indices,
                                      const Shard& shard);

}  // namespace amped
