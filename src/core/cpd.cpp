#include "core/cpd.hpp"

#include <cassert>
#include <cmath>
#include <filesystem>
#include <stdexcept>

#include "core/checkpoint.hpp"
#include "linalg/blas.hpp"
#include "linalg/cholesky.hpp"
#include "util/fault.hpp"
#include "util/logging.hpp"
#include "util/metrics.hpp"

namespace amped {

double tensor_norm_sq(const CooTensor& t) {
  double acc = 0.0;
  for (value_t v : t.values()) acc += static_cast<double>(v) * v;
  return acc;
}

namespace {

// lambda^T (hadamard of all grams) lambda.
double model_norm_sq(const std::vector<DenseMatrix>& grams,
                     const std::vector<double>& lambda) {
  const std::size_t r = lambda.size();
  DenseMatrix h(r, r, value_t{1});
  for (const auto& g : grams) {
    for (std::size_t i = 0; i < r * r; ++i) h.data()[i] *= g.data()[i];
  }
  double acc = 0.0;
  for (std::size_t i = 0; i < r; ++i) {
    for (std::size_t j = 0; j < r; ++j) {
      acc += lambda[i] * lambda[j] * static_cast<double>(h(i, j));
    }
  }
  return acc;
}

// <X, X_hat> given the last mode's MTTKRP output G and the updated,
// normalised factor A of that mode: sum_r lambda_r <G(:,r), A(:,r)>.
double inner_product(const DenseMatrix& mttkrp_out, const DenseMatrix& factor,
                     const std::vector<double>& lambda) {
  assert(mttkrp_out.rows() == factor.rows() &&
         mttkrp_out.cols() == factor.cols());
  const std::size_t r = factor.cols();
  std::vector<double> per_col(r, 0.0);
  for (std::size_t i = 0; i < factor.rows(); ++i) {
    const auto g = mttkrp_out.row(i);
    const auto a = factor.row(i);
    for (std::size_t c = 0; c < r; ++c) {
      per_col[c] += static_cast<double>(g[c]) * a[c];
    }
  }
  double acc = 0.0;
  for (std::size_t c = 0; c < r; ++c) acc += lambda[c] * per_col[c];
  return acc;
}

}  // namespace

namespace detail {

AlsState::AlsState(const AmpedTensor& tensor, const CpdOptions& options)
    : tensor_(&tensor), options_(&options) {
  const std::size_t modes = tensor.num_modes();
  const std::size_t rank = options.rank;
  Rng rng(options.seed);
  result_.factors = FactorSet(tensor.dims(), rank, rng);
  result_.lambda.assign(rank, 1.0);
  grams_.resize(modes);
  for (std::size_t d = 0; d < modes; ++d) {
    grams_[d] = linalg::gram(result_.factors.factor(d));
  }
  done_ = options.max_iterations == 0;
}

DenseMatrix& AlsState::prepare_mode(std::size_t d) {
  if (mttkrp_outs_.size() != tensor_->num_modes()) {
    mttkrp_outs_.resize(tensor_->num_modes());
  }
  mttkrp_outs_[d] = DenseMatrix(tensor_->dims()[d], options_->rank);
  return mttkrp_outs_[d];
}

void AlsState::charge_mttkrp(double sim_seconds) {
  result_.mttkrp_sim_seconds += sim_seconds;
}

void AlsState::update_mode(std::size_t d, double sim_seconds) {
  const std::size_t modes = tensor_->num_modes();
  const std::size_t rank = options_->rank;
  result_.mttkrp_sim_seconds += sim_seconds;

  // V = hadamard of the other modes' grams.
  DenseMatrix v(rank, rank, value_t{1});
  for (std::size_t w = 0; w < modes; ++w) {
    if (w == d) continue;
    for (std::size_t i = 0; i < rank * rank; ++i) {
      v.data()[i] *= grams_[w].data()[i];
    }
  }
  DenseMatrix updated = mttkrp_outs_[d];  // keep raw G for the fit
  linalg::solve_normal_equations(v, updated);

  // Column-normalise; weights move into lambda.
  for (std::size_t c = 0; c < rank; ++c) {
    double norm = linalg::column_norm(updated, c);
    if (norm < 1e-30) norm = 1.0;  // dead component; leave as-is
    result_.lambda[c] = norm;
    linalg::scale_column(updated, c, static_cast<value_t>(1.0 / norm));
  }
  // Numeric guard: a NaN/Inf here (degenerate input data, catastrophic
  // gram conditioning) would otherwise propagate silently through every
  // later mode and iteration. Fail at the first poisoned update, naming
  // where the run went bad. The scans are O(I_d * R), the same order as
  // the normalisation pass above.
  for (std::size_t c = 0; c < rank; ++c) {
    if (!std::isfinite(result_.lambda[c])) {
      throw std::runtime_error(
          "cp_als: non-finite lambda[" + std::to_string(c) +
          "] after the mode-" + std::to_string(d) + " update at iteration " +
          std::to_string(result_.iterations) +
          " (input data or gram conditioning produced NaN/Inf)");
    }
  }
  for (value_t entry : updated.data()) {
    if (!std::isfinite(entry)) {
      throw std::runtime_error(
          "cp_als: non-finite factor entry in mode " + std::to_string(d) +
          " at iteration " + std::to_string(result_.iterations) +
          " (input data or gram conditioning produced NaN/Inf)");
    }
  }
  result_.factors.factor(d) = std::move(updated);
  grams_[d] = linalg::gram(result_.factors.factor(d));

  if (d + 1 == modes) {
    iprod_ = inner_product(mttkrp_outs_[d], result_.factors.factor(d),
                           result_.lambda);
  }
}

void AlsState::finish_iteration() {
  // tensor_norm_sq over the mode-0 copy, accumulated at build time so it
  // is available when the copies are spilled to disk.
  const double norm_x_sq = tensor_->values_norm_sq();
  const double model_sq = model_norm_sq(grams_, result_.lambda);
  const double residual_sq =
      std::max(0.0, norm_x_sq + model_sq - 2.0 * iprod_);
  const double fit =
      norm_x_sq > 0.0 ? 1.0 - std::sqrt(residual_sq / norm_x_sq) : 1.0;
  if (!std::isfinite(fit)) {
    throw std::runtime_error(
        "cp_als: non-finite fit at iteration " +
        std::to_string(result_.iterations) + " (|X|^2=" +
        std::to_string(norm_x_sq) + ", |model|^2=" +
        std::to_string(model_sq) + ")");
  }
  result_.fit = fit;
  result_.fit_history.push_back(fit);
  result_.iterations += 1;

  // Per-iteration heartbeat: one info line a human (or a log scraper)
  // can watch to see the run converge and how fast it is processing
  // nonzeros — num_modes MTTKRPs of nnz() nonzeros each per iteration.
  {
    const double iter_wall = iter_timer_.seconds();
    const double mttkrp_delta =
        result_.mttkrp_sim_seconds - last_mttkrp_total_;
    const double nnz_per_s =
        iter_wall > 0.0
            ? static_cast<double>(tensor_->nnz()) *
                  static_cast<double>(tensor_->num_modes()) / iter_wall
            : 0.0;
    AMPED_LOG_INFO << "als iter " << (result_.iterations - 1) << " fit "
                   << fit << " dfit " << (fit - prev_fit_) << " mttkrp "
                   << mttkrp_delta << "s wall " << iter_wall << "s "
                   << nnz_per_s << " nnz/s";
    static metrics::Histogram& iter_hist =
        metrics::histogram("als.iteration_seconds");
    iter_hist.record_seconds(iter_wall);
    metrics::counter("als.iterations").inc();
    last_mttkrp_total_ = result_.mttkrp_sim_seconds;
    iter_timer_.reset();
  }

  if (result_.iterations > 1 &&
      std::abs(fit - prev_fit_) < options_->tolerance) {
    result_.converged = true;
    done_ = true;
  }
  prev_fit_ = fit;
  if (result_.iterations >= options_->max_iterations) done_ = true;
  // Deterministic mid-ALS abort for recovery drills: fires after the
  // iteration's state is complete but (in checkpointed runs) before the
  // driver persists it, like a crash between iterations.
  AMPED_FAULT_POINT("cpd.iteration");
}

void AlsState::save_checkpoint(const std::string& path) const {
  AlsCheckpoint ckpt;
  ckpt.iterations = result_.iterations;
  ckpt.fit = result_.fit;
  ckpt.prev_fit = prev_fit_;
  ckpt.mttkrp_seconds = result_.mttkrp_sim_seconds;
  ckpt.converged = result_.converged;
  ckpt.done = done_;
  ckpt.lambda = result_.lambda;
  ckpt.fit_history = result_.fit_history;
  ckpt.factors.reserve(tensor_->num_modes());
  for (std::size_t d = 0; d < tensor_->num_modes(); ++d) {
    ckpt.factors.push_back(result_.factors.factor(d));
  }
  write_als_checkpoint(ckpt, path);
  metrics::counter("als.checkpoints_written").inc();
  AMPED_LOG_DEBUG << "cp_als: checkpoint written to " << path
                  << " at iteration " << result_.iterations;
}

bool AlsState::load_checkpoint(const std::string& path) {
  if (!std::filesystem::exists(path)) return false;
  AlsCheckpoint ckpt = read_als_checkpoint(path);
  if (ckpt.factors.size() != tensor_->num_modes()) {
    throw std::runtime_error(
        "checkpoint: " + path + " has " +
        std::to_string(ckpt.factors.size()) + " modes, this tensor has " +
        std::to_string(tensor_->num_modes()));
  }
  if (ckpt.lambda.size() != options_->rank) {
    throw std::runtime_error(
        "checkpoint: " + path + " is a rank-" +
        std::to_string(ckpt.lambda.size()) + " run, this run is rank-" +
        std::to_string(options_->rank));
  }
  for (std::size_t d = 0; d < ckpt.factors.size(); ++d) {
    if (ckpt.factors[d].rows() != tensor_->dims()[d]) {
      throw std::runtime_error(
          "checkpoint: " + path + " factor " + std::to_string(d) + " has " +
          std::to_string(ckpt.factors[d].rows()) + " rows, mode " +
          std::to_string(d) + " of this tensor has " +
          std::to_string(tensor_->dims()[d]));
    }
  }
  for (std::size_t d = 0; d < ckpt.factors.size(); ++d) {
    result_.factors.factor(d) = std::move(ckpt.factors[d]);
    grams_[d] = linalg::gram(result_.factors.factor(d));
  }
  result_.lambda = std::move(ckpt.lambda);
  result_.fit = ckpt.fit;
  result_.fit_history = std::move(ckpt.fit_history);
  result_.iterations = static_cast<std::size_t>(ckpt.iterations);
  result_.converged = ckpt.converged;
  result_.mttkrp_sim_seconds = ckpt.mttkrp_seconds;
  prev_fit_ = ckpt.prev_fit;
  // Recompute the stopping decision under *this* run's options rather
  // than trusting the stored flag, so resuming with a larger iteration
  // budget continues the run.
  done_ = result_.converged ||
          result_.iterations >= options_->max_iterations;
  // iprod_ is intentionally not restored: every iteration writes it
  // (last-mode update) before finish_iteration reads it.
  return true;
}

}  // namespace detail

CpdResult cp_als(sim::Platform& platform, const AmpedTensor& tensor,
                 const CpdOptions& options) {
  detail::AlsState state(tensor, options);
  const bool checkpointing = !options.checkpoint_path.empty();
  bool resumed = false;
  std::size_t resume_iteration = 0;
  std::size_t checkpoints_written = 0;
  if (checkpointing && options.resume) {
    if (state.load_checkpoint(options.checkpoint_path)) {
      resumed = true;
      resume_iteration = state.iterations();
      metrics::counter("als.resumes").inc();
      AMPED_LOG_INFO << "cp_als: resumed from " << options.checkpoint_path
                     << " at iteration " << state.iterations();
    } else {
      AMPED_LOG_INFO << "cp_als: no checkpoint at "
                     << options.checkpoint_path << "; starting fresh";
    }
  }
  // Phase totals accumulate outside AlsState (update_mode's seconds-only
  // signature is shared with the batched driver) and are patched into
  // the result below.
  double h2d = 0.0, compute = 0.0, p2p = 0.0, sync = 0.0;
  double predicted_compute = 0.0, predicted_h2d = 0.0;
  std::uint64_t gather_bytes = 0;
  while (!state.done()) {
    for (std::size_t d = 0; d < tensor.num_modes(); ++d) {
      DenseMatrix& out = state.prepare_mode(d);
      auto bd = mttkrp_one_mode(platform, tensor, state.factors(), d, out,
                                options.mttkrp);
      h2d += bd.h2d;
      compute += bd.compute;
      p2p += bd.p2p;
      sync += bd.sync;
      predicted_compute += bd.predicted_compute;
      predicted_h2d += bd.predicted_h2d;
      gather_bytes += bd.gather_bytes;
      state.update_mode(d, bd.seconds);
    }
    state.finish_iteration();
    if (checkpointing && options.checkpoint_every != 0 &&
        state.iterations() % options.checkpoint_every == 0) {
      state.save_checkpoint(options.checkpoint_path);
      ++checkpoints_written;
    }
  }
  CpdResult result = state.take_result();
  result.h2d_seconds = h2d;
  result.compute_seconds = compute;
  result.p2p_seconds = p2p;
  result.gather_bytes = gather_bytes;
  result.sync_seconds = sync;
  result.predicted_compute_seconds = predicted_compute;
  result.predicted_h2d_seconds = predicted_h2d;
  result.resumed = resumed;
  result.resume_iteration = resume_iteration;
  result.checkpoints_written = checkpoints_written;
  return result;
}

}  // namespace amped
