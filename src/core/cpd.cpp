#include "core/cpd.hpp"

#include <cassert>
#include <cmath>

#include "linalg/blas.hpp"
#include "linalg/cholesky.hpp"
#include "util/logging.hpp"

namespace amped {

double tensor_norm_sq(const CooTensor& t) {
  double acc = 0.0;
  for (value_t v : t.values()) acc += static_cast<double>(v) * v;
  return acc;
}

namespace {

// lambda^T (hadamard of all grams) lambda.
double model_norm_sq(const std::vector<DenseMatrix>& grams,
                     const std::vector<double>& lambda) {
  const std::size_t r = lambda.size();
  DenseMatrix h(r, r, value_t{1});
  for (const auto& g : grams) {
    for (std::size_t i = 0; i < r * r; ++i) h.data()[i] *= g.data()[i];
  }
  double acc = 0.0;
  for (std::size_t i = 0; i < r; ++i) {
    for (std::size_t j = 0; j < r; ++j) {
      acc += lambda[i] * lambda[j] * static_cast<double>(h(i, j));
    }
  }
  return acc;
}

// <X, X_hat> given the last mode's MTTKRP output G and the updated,
// normalised factor A of that mode: sum_r lambda_r <G(:,r), A(:,r)>.
double inner_product(const DenseMatrix& mttkrp_out, const DenseMatrix& factor,
                     const std::vector<double>& lambda) {
  assert(mttkrp_out.rows() == factor.rows() &&
         mttkrp_out.cols() == factor.cols());
  const std::size_t r = factor.cols();
  std::vector<double> per_col(r, 0.0);
  for (std::size_t i = 0; i < factor.rows(); ++i) {
    const auto g = mttkrp_out.row(i);
    const auto a = factor.row(i);
    for (std::size_t c = 0; c < r; ++c) {
      per_col[c] += static_cast<double>(g[c]) * a[c];
    }
  }
  double acc = 0.0;
  for (std::size_t c = 0; c < r; ++c) acc += lambda[c] * per_col[c];
  return acc;
}

}  // namespace

namespace detail {

AlsState::AlsState(const AmpedTensor& tensor, const CpdOptions& options)
    : tensor_(&tensor), options_(&options) {
  const std::size_t modes = tensor.num_modes();
  const std::size_t rank = options.rank;
  Rng rng(options.seed);
  result_.factors = FactorSet(tensor.dims(), rank, rng);
  result_.lambda.assign(rank, 1.0);
  grams_.resize(modes);
  for (std::size_t d = 0; d < modes; ++d) {
    grams_[d] = linalg::gram(result_.factors.factor(d));
  }
  done_ = options.max_iterations == 0;
}

DenseMatrix& AlsState::prepare_mode(std::size_t d) {
  mttkrp_out_ = DenseMatrix(tensor_->dims()[d], options_->rank);
  return mttkrp_out_;
}

void AlsState::update_mode(std::size_t d, double sim_seconds) {
  const std::size_t modes = tensor_->num_modes();
  const std::size_t rank = options_->rank;
  result_.mttkrp_sim_seconds += sim_seconds;

  // V = hadamard of the other modes' grams.
  DenseMatrix v(rank, rank, value_t{1});
  for (std::size_t w = 0; w < modes; ++w) {
    if (w == d) continue;
    for (std::size_t i = 0; i < rank * rank; ++i) {
      v.data()[i] *= grams_[w].data()[i];
    }
  }
  DenseMatrix updated = mttkrp_out_;  // keep raw G for the fit
  linalg::solve_normal_equations(v, updated);

  // Column-normalise; weights move into lambda.
  for (std::size_t c = 0; c < rank; ++c) {
    double norm = linalg::column_norm(updated, c);
    if (norm < 1e-30) norm = 1.0;  // dead component; leave as-is
    result_.lambda[c] = norm;
    linalg::scale_column(updated, c, static_cast<value_t>(1.0 / norm));
  }
  result_.factors.factor(d) = std::move(updated);
  grams_[d] = linalg::gram(result_.factors.factor(d));

  if (d + 1 == modes) {
    iprod_ = inner_product(mttkrp_out_, result_.factors.factor(d),
                           result_.lambda);
  }
}

void AlsState::finish_iteration() {
  // tensor_norm_sq over the mode-0 copy, accumulated at build time so it
  // is available when the copies are spilled to disk.
  const double norm_x_sq = tensor_->values_norm_sq();
  const double model_sq = model_norm_sq(grams_, result_.lambda);
  const double residual_sq =
      std::max(0.0, norm_x_sq + model_sq - 2.0 * iprod_);
  const double fit = 1.0 - std::sqrt(residual_sq / norm_x_sq);
  result_.fit = fit;
  result_.fit_history.push_back(fit);
  result_.iterations += 1;
  AMPED_LOG_DEBUG << "als iter " << (result_.iterations - 1) << " fit "
                  << fit;

  if (result_.iterations > 1 &&
      std::abs(fit - prev_fit_) < options_->tolerance) {
    result_.converged = true;
    done_ = true;
  }
  prev_fit_ = fit;
  if (result_.iterations >= options_->max_iterations) done_ = true;
}

}  // namespace detail

CpdResult cp_als(sim::Platform& platform, const AmpedTensor& tensor,
                 const CpdOptions& options) {
  detail::AlsState state(tensor, options);
  while (!state.done()) {
    for (std::size_t d = 0; d < tensor.num_modes(); ++d) {
      DenseMatrix& out = state.prepare_mode(d);
      auto bd = mttkrp_one_mode(platform, tensor, state.factors(), d, out,
                                options.mttkrp);
      state.update_mode(d, bd.seconds);
    }
    state.finish_iteration();
  }
  return state.take_result();
}

}  // namespace amped
