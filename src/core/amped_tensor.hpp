// The AMPED execution format: one sharded tensor copy per output mode.
//
// Following §3.1/§3.2, preprocessing builds, for every mode d, a copy of
// the tensor sorted by the mode-d index and a shard directory over it.
// All copies live in (simulated) host CPU memory (§4.4); shards stream to
// GPUs during execution. Unlike FLYCOO-GPU there is no dynamic remapping
// and no shard IDs embedded in elements — the multiple host-side copies
// replace them (§3, "we maintain multiple copies of the input tensor in
// CPU external memory").
#pragma once

#include <cstddef>
#include <vector>

#include "core/partition.hpp"
#include "tensor/coo_tensor.hpp"

namespace amped {

struct AmpedBuildOptions {
  // Shards per GPU per mode; more shards give the balancer finer grain at
  // the cost of per-shard transfer latency and grid-launch overhead.
  std::size_t shards_per_gpu = 24;
  int num_gpus = 4;
};

// Simulated host-CPU preprocessing cost (Fig. 10) plus real wall time.
struct PreprocessStats {
  double host_seconds = 0.0;  // simulated, at the modelled host throughput
  double wall_seconds = 0.0;  // actual time this process spent building
  std::size_t bytes_built = 0;
};

class AmpedTensor {
 public:
  // One sorted + sharded copy per output mode.
  struct ModeCopy {
    CooTensor tensor;        // sorted by `partition.mode`
    ModePartition partition;
  };

  static AmpedTensor build(const CooTensor& input,
                           const AmpedBuildOptions& options,
                           PreprocessStats* stats = nullptr);

  std::size_t num_modes() const { return copies_.size(); }
  const std::vector<index_t>& dims() const { return dims_; }
  nnz_t nnz() const { return nnz_; }

  const ModeCopy& mode_copy(std::size_t d) const { return copies_[d]; }

  // Bytes of one shard when streamed to a GPU (COO payload).
  std::uint64_t shard_bytes(std::size_t d, std::size_t shard_id) const;

  // Host-memory footprint of all copies.
  std::uint64_t total_bytes() const;

 private:
  std::vector<index_t> dims_;
  nnz_t nnz_ = 0;
  std::vector<ModeCopy> copies_;
};

// Simulated host seconds to build the AMPED copies for a tensor with `nnz`
// nonzeros and `modes` modes (N sort passes over the nonzeros); shared
// with the Fig. 10 bench so the number printed always matches the model.
double model_amped_preprocess_seconds(nnz_t nnz, std::size_t modes,
                                      double host_sort_keys_per_sec = 0.0);

}  // namespace amped
