// The AMPED execution format: one sharded tensor copy per output mode.
//
// Following §3.1/§3.2, preprocessing builds, for every mode d, a copy of
// the tensor sorted by the mode-d index and a shard directory over it.
// All copies live in (simulated) host CPU memory (§4.4); shards stream to
// GPUs during execution. Unlike FLYCOO-GPU there is no dynamic remapping
// and no shard IDs embedded in elements — the multiple host-side copies
// replace them (§3, "we maintain multiple copies of the input tensor in
// CPU external memory").
//
// When the N sorted copies do not fit the host memory budget
// (io/memory_budget.hpp), the build switches to the out-of-core path:
// copies are constructed one at a time and spilled to snapshot-v2 files,
// and MTTKRP streams shards back from disk (io/shard_stream.hpp) —
// bit-identical output, one more level in the streaming hierarchy
// (disk→host→GPU).
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "core/partition.hpp"
#include "tensor/coo_tensor.hpp"

namespace amped {

namespace io {
class BudgetReservation;
class MappedCooTensor;
class SpilledModeCopy;
}  // namespace io

// Where the per-mode sorted copies live after the build.
enum class BuildStorage {
  kAuto,      // resident unless the budget says the copies will not fit
  kResident,  // always in host memory (the paper's configuration)
  kSpilled,   // always on disk (forced; tests and budget-constrained runs)
};

struct AmpedBuildOptions {
  // Shards per GPU per mode; more shards give the balancer finer grain at
  // the cost of per-shard transfer latency and grid-launch overhead.
  std::size_t shards_per_gpu = 24;
  int num_gpus = 4;
  BuildStorage storage = BuildStorage::kAuto;
  // Directory for spill files ("" = AMPED_SPILL_DIR env or system temp).
  std::string spill_dir;
};

// Simulated host-CPU preprocessing cost (Fig. 10) plus real wall time.
struct PreprocessStats {
  double host_seconds = 0.0;  // simulated, at the modelled host throughput
  double wall_seconds = 0.0;  // actual time this process spent building
  std::size_t bytes_built = 0;
  bool spilled = false;       // copies went to disk instead of host memory
  // Fault-recovery accounting of the out-of-core path: transient spill
  // writes retried, corrupt spill files rebuilt from the source tensor,
  // and mode copies kept resident because their spill failed permanently
  // but the memory budget had headroom (graceful degradation).
  std::size_t spill_retries = 0;
  std::size_t spill_rebuilds = 0;
  std::size_t degraded_to_resident = 0;
};

class AmpedTensor {
 public:
  // One sorted + sharded copy per output mode. Exactly one of `tensor`
  // (resident) or `spill` (on disk) backs the elements.
  struct ModeCopy {
    CooTensor tensor;        // sorted by `partition.mode`; empty if spilled
    ModePartition partition;
    std::shared_ptr<io::SpilledModeCopy> spill;  // null when resident
    // Budget charge for a copy kept resident as the degradation fallback
    // of a failed spill (null otherwise; fully-resident builds charge one
    // shared footprint reservation on the tensor instead).
    std::shared_ptr<io::BudgetReservation> reservation;

    bool spilled() const { return spill != nullptr; }
  };

  static AmpedTensor build(const CooTensor& input,
                           const AmpedBuildOptions& options,
                           PreprocessStats* stats = nullptr);
  // Same build from an mmap-backed snapshot view: per-mode copies are
  // materialised straight from the mapping (no intermediate parse).
  static AmpedTensor build(const io::MappedCooTensor& input,
                           const AmpedBuildOptions& options,
                           PreprocessStats* stats = nullptr);

  std::size_t num_modes() const { return copies_.size(); }
  const std::vector<index_t>& dims() const { return dims_; }
  nnz_t nnz() const { return nnz_; }

  const ModeCopy& mode_copy(std::size_t d) const { return copies_[d]; }

  // True when any mode copy lives on disk.
  bool spilled() const;

  // Bytes one element occupies in any copy (COO payload).
  std::size_t bytes_per_nnz() const {
    return dims_.size() * sizeof(index_t) + sizeof(value_t);
  }

  // Bytes of one shard when streamed to a GPU (COO payload).
  std::uint64_t shard_bytes(std::size_t d, std::size_t shard_id) const;

  // Logical footprint of all copies — the host memory a fully resident
  // build occupies (spilled builds keep the same bytes on disk instead).
  std::uint64_t total_bytes() const;

  // Frobenius norm squared of the nonzero values, accumulated in mode-0
  // sorted order at build time (so CPD's fit needs no resident copy).
  double values_norm_sq() const { return values_norm_sq_; }

 private:
  template <typename Input>
  static AmpedTensor build_impl(const Input& input,
                                const AmpedBuildOptions& options,
                                PreprocessStats* stats);

  std::vector<index_t> dims_;
  nnz_t nnz_ = 0;
  double values_norm_sq_ = 0.0;
  std::vector<ModeCopy> copies_;
  // Budget charge for resident copies; shared so the (rare) copied
  // AmpedTensor does not double-release.
  std::shared_ptr<io::BudgetReservation> reservation_;
};

// Simulated host seconds to build the AMPED copies for a tensor with `nnz`
// nonzeros and `modes` modes (N sort passes over the nonzeros); shared
// with the Fig. 10 bench so the number printed always matches the model.
double model_amped_preprocess_seconds(nnz_t nnz, std::size_t modes,
                                      double host_sort_keys_per_sec = 0.0);

}  // namespace amped
