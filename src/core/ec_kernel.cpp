#include "core/ec_kernel.hpp"

#include <algorithm>
#include <array>
#include <cassert>
#include <stdexcept>
#include <vector>

#include "core/kernel_cache.hpp"

namespace amped {

#if defined(__GNUC__) || defined(__clang__)
#define AMPED_PREFETCH(addr) __builtin_prefetch(addr)
#else
#define AMPED_PREFETCH(addr) ((void)0)
#endif

namespace {

// Scratch rows this long live on the stack in the generic reference
// kernel; longer ranks fall back to heap buffers. The tiled dispatch path
// has no rank ceiling at all — its buffers are sized by tile width.
constexpr std::size_t kMaxStackRank = 256;

// Elements looked ahead for factor-row prefetches (matches the tile
// kernels in core/kernel_cache.cpp).
constexpr nnz_t kPrefetchDistance = 8;

// Single-pass arithmetic + run-structure core with runtime rank, writing
// through caller-provided scratch rows. This is the pre-tiling
// implementation kept as the bit-identity reference: per column c the
// sequence prod = v * row0[c], *= row1[c], *= higher rows in mode order,
// accumulated in element order with one output-row flush per run, is what
// every tile pass reproduces for its column slice.
sim::EcBlockStats generic_ec_pass(const index_t* __restrict out_idx,
                                  const value_t* __restrict vals,
                                  const EcInputMode* __restrict inputs,
                                  std::size_t num_inputs, std::size_t rank,
                                  nnz_t begin, nnz_t end,
                                  value_t* __restrict out_data,
                                  value_t* __restrict acc,
                                  value_t* __restrict prod) {
  sim::EcBlockStats stats;
  stats.nnz = end - begin;
  stats.rank = rank;

  const index_t* __restrict idx0 = num_inputs > 0 ? inputs[0].idx : nullptr;
  const value_t* __restrict fac0 = num_inputs > 0 ? inputs[0].fac : nullptr;
  const index_t* __restrict idx1 = num_inputs > 1 ? inputs[1].idx : nullptr;
  const value_t* __restrict fac1 = num_inputs > 1 ? inputs[1].fac : nullptr;

  index_t run_index = out_idx[begin];
  nnz_t run_len = 0;
  stats.output_runs = 1;
  for (std::size_t r = 0; r < rank; ++r) acc[r] = value_t{0};

  for (nnz_t n = begin; n < end; ++n) {
    if (rank >= 16 && n + kPrefetchDistance < end) {
      if (idx0 != nullptr) {
        const value_t* next =
            fac0 +
            static_cast<std::size_t>(idx0[n + kPrefetchDistance]) * rank;
        AMPED_PREFETCH(next);
        for (std::size_t b = 16; b < rank; b += 16) AMPED_PREFETCH(next + b);
      }
      if (idx1 != nullptr) {
        const value_t* next =
            fac1 +
            static_cast<std::size_t>(idx1[n + kPrefetchDistance]) * rank;
        AMPED_PREFETCH(next);
        for (std::size_t b = 16; b < rank; b += 16) AMPED_PREFETCH(next + b);
      }
    }

    const value_t v = vals[n];
    if (idx0 == nullptr) {
      for (std::size_t r = 0; r < rank; ++r) prod[r] = v;
    } else {
      const value_t* __restrict row0 =
          fac0 + static_cast<std::size_t>(idx0[n]) * rank;
      for (std::size_t r = 0; r < rank; ++r) prod[r] = v * row0[r];
      if (idx1 != nullptr) {
        const value_t* __restrict row1 =
            fac1 + static_cast<std::size_t>(idx1[n]) * rank;
        for (std::size_t r = 0; r < rank; ++r) prod[r] *= row1[r];
      }
      for (std::size_t w = 2; w < num_inputs; ++w) {
        const value_t* __restrict row =
            inputs[w].fac + static_cast<std::size_t>(inputs[w].idx[n]) * rank;
        for (std::size_t r = 0; r < rank; ++r) prod[r] *= row[r];
      }
    }

    const index_t i = out_idx[n];
    if (i != run_index) {
      value_t* __restrict out_row =
          out_data + static_cast<std::size_t>(run_index) * rank;
      for (std::size_t r = 0; r < rank; ++r) out_row[r] += acc[r];
      for (std::size_t r = 0; r < rank; ++r) acc[r] = prod[r];
      stats.max_run = std::max(stats.max_run, run_len);
      ++stats.output_runs;
      run_index = i;
      run_len = 1;
    } else {
      for (std::size_t r = 0; r < rank; ++r) acc[r] += prod[r];
      ++run_len;
    }
  }
  value_t* __restrict out_row =
      out_data + static_cast<std::size_t>(run_index) * rank;
  for (std::size_t r = 0; r < rank; ++r) out_row[r] += acc[r];
  stats.max_run = std::max(stats.max_run, run_len);
  return stats;
}

// Hoisted per-block pointer views shared by both entry points.
struct BlockView {
  std::array<EcInputMode, kMaxModes> inputs{};
  std::size_t num_inputs = 0;
  const index_t* out_idx = nullptr;
  const value_t* vals = nullptr;
  value_t* out_data = nullptr;
};

BlockView make_block_view(const CooTensor& t, std::size_t output_mode,
                          const FactorSet& factors, DenseMatrix& out) {
  BlockView view;
  for (std::size_t w = 0; w < t.num_modes(); ++w) {
    if (w == output_mode) continue;
    view.inputs[view.num_inputs++] = {t.indices(w).data(),
                                      factors.factor(w).data().data()};
  }
  view.out_idx = t.indices(output_mode).data();
  view.vals = t.values().data();
  view.out_data = out.data().data();
  return view;
}

void validate_block([[maybe_unused]] const CooTensor& t,
                    [[maybe_unused]] nnz_t begin, [[maybe_unused]] nnz_t end,
                    [[maybe_unused]] std::size_t output_mode,
                    const FactorSet& factors) {
  assert(end <= t.nnz() && begin <= end);
  assert(output_mode < t.num_modes());
  if (factors.rank() == 0) {
    throw std::invalid_argument("run_ec_block: rank must be >= 1");
  }
}

// max_multiplicity for a finished block: the arithmetic kernels gather the
// run structure; the order decides whether a tally is needed.
void finish_multiplicity(sim::EcBlockStats& stats, BlockOrder order,
                         const index_t* out_idx, nnz_t begin, nnz_t end) {
  if (order == BlockOrder::kOutputSorted) {
    // Output-sorted block: every output index is one contiguous run, so
    // the highest per-index count *is* the longest run.
    stats.max_multiplicity = stats.max_run;
  } else {
    // Unsorted block: exact per-index tally, off the arithmetic path.
    std::unordered_map<index_t, nnz_t> multiplicity;
    multiplicity.reserve(static_cast<std::size_t>(end - begin));
    nnz_t max_mult = 0;
    for (nnz_t n = begin; n < end; ++n) {
      max_mult = std::max(max_mult, ++multiplicity[out_idx[n]]);
    }
    stats.max_multiplicity = max_mult;
  }
}

sim::EcBlockStats empty_block_stats(std::size_t modes, std::size_t rank) {
  sim::EcBlockStats stats;
  stats.modes = modes;
  stats.rank = rank;
  return stats;
}

}  // namespace

KernelShape KernelShape::of(std::size_t num_modes, std::size_t rank,
                            BlockOrder order) {
  if (rank == 0) {
    throw std::invalid_argument("KernelShape: rank must be >= 1");
  }
  KernelShape shape;
  shape.rank = static_cast<std::uint32_t>(rank);
  shape.modes = static_cast<std::uint8_t>(num_modes);
  shape.index_width = sizeof(index_t);
  shape.order = static_cast<std::uint8_t>(order);
  return shape;
}

std::size_t KernelShape::hash() const {
  // splitmix64 finaliser: the packed key's low bits (the rank) would
  // otherwise collide whole shape families into one cache bucket.
  std::uint64_t x = packed();
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return static_cast<std::size_t>(x);
}

sim::EcBlockStats run_ec_block(const CooTensor& t, nnz_t begin, nnz_t end,
                               std::size_t output_mode,
                               const FactorSet& factors, DenseMatrix& out,
                               BlockOrder order) {
  validate_block(t, begin, end, output_mode, factors);
  const auto shape = KernelShape::of(t.num_modes(), factors.rank(), order);
  const TileProgram& program = KernelCache::global().find_or_create(shape);
  return run_ec_block(program, t, begin, end, output_mode, factors, out);
}

sim::EcBlockStats run_ec_block(const TileProgram& program, const CooTensor& t,
                               nnz_t begin, nnz_t end,
                               std::size_t output_mode,
                               const FactorSet& factors, DenseMatrix& out) {
  validate_block(t, begin, end, output_mode, factors);
  const std::size_t modes = t.num_modes();
  const std::size_t rank = factors.rank();
  assert(program.shape().rank == rank);
  assert(program.shape() ==
         KernelShape::of(modes, rank,
                         static_cast<BlockOrder>(program.shape().order)));

  if (begin == end) return empty_block_stats(modes, rank);

  const BlockView view = make_block_view(t, output_mode, factors, out);
  sim::EcBlockStats stats =
      program.run(view.out_idx, view.vals, view.inputs.data(),
                  view.num_inputs, begin, end, view.out_data);
  stats.modes = modes;
  finish_multiplicity(stats,
                      static_cast<BlockOrder>(program.shape().order),
                      view.out_idx, begin, end);
  return stats;
}

sim::EcBlockStats run_ec_block_generic(const CooTensor& t, nnz_t begin,
                                       nnz_t end, std::size_t output_mode,
                                       const FactorSet& factors,
                                       DenseMatrix& out, BlockOrder order) {
  validate_block(t, begin, end, output_mode, factors);
  const std::size_t modes = t.num_modes();
  const std::size_t rank = factors.rank();
  if (begin == end) return empty_block_stats(modes, rank);

  const BlockView view = make_block_view(t, output_mode, factors, out);
  sim::EcBlockStats stats;
  if (rank <= kMaxStackRank) {
    value_t acc[kMaxStackRank];
    value_t prod[kMaxStackRank];
    stats = generic_ec_pass(view.out_idx, view.vals, view.inputs.data(),
                            view.num_inputs, rank, begin, end, view.out_data,
                            acc, prod);
  } else {
    std::vector<value_t> acc(rank);
    std::vector<value_t> prod(rank);
    stats = generic_ec_pass(view.out_idx, view.vals, view.inputs.data(),
                            view.num_inputs, rank, begin, end, view.out_data,
                            acc.data(), prod.data());
  }
  stats.modes = modes;
  finish_multiplicity(stats, order, view.out_idx, begin, end);
  return stats;
}

RunStatsAccumulator::RunStatsAccumulator(const KernelShape& shape)
    : order_(static_cast<BlockOrder>(shape.order)),
      shape_modes_(shape.modes),
      shape_rank_(shape.rank) {}

void RunStatsAccumulator::feed(index_t output_index) {
  if (stats_.nnz == 0 || output_index != run_index_) {
    stats_.max_run = std::max(stats_.max_run, run_len_);
    ++stats_.output_runs;
    run_index_ = output_index;
    run_len_ = 1;
  } else {
    ++run_len_;
  }
  ++stats_.nnz;
  if (order_ == BlockOrder::kUnsorted) {
    stats_.max_multiplicity =
        std::max(stats_.max_multiplicity, ++multiplicity_[output_index]);
  }
}

sim::EcBlockStats RunStatsAccumulator::finish(std::size_t modes,
                                              std::size_t rank,
                                              std::size_t block_width) {
  stats_.max_run = std::max(stats_.max_run, run_len_);
  if (order_ == BlockOrder::kOutputSorted) {
    stats_.max_multiplicity = stats_.max_run;
  }
  stats_.modes = modes;
  stats_.rank = rank;
  stats_.block_width = block_width;
  sim::EcBlockStats out = stats_;
  reset();
  return out;
}

sim::EcBlockStats RunStatsAccumulator::finish(std::size_t block_width) {
  assert(shape_rank_ > 0 && "finish(block_width) needs the shape ctor");
  return finish(shape_modes_, shape_rank_, block_width);
}

void RunStatsAccumulator::reset() {
  stats_ = sim::EcBlockStats{};
  run_index_ = 0;
  run_len_ = 0;
  multiplicity_.clear();
}

}  // namespace amped
