#include "core/ec_kernel.hpp"

#include <array>
#include <cassert>
#include <unordered_map>

namespace amped {

sim::EcBlockStats run_ec_block(const CooTensor& t, nnz_t begin, nnz_t end,
                               std::size_t output_mode,
                               const FactorSet& factors, DenseMatrix& out) {
  assert(end <= t.nnz() && begin <= end);
  assert(output_mode < t.num_modes());
  const std::size_t modes = t.num_modes();
  const std::size_t rank = factors.rank();

  sim::EcBlockStats stats;
  stats.nnz = end - begin;
  stats.modes = modes;
  stats.rank = rank;
  if (begin == end) return stats;

  const auto out_idx = t.indices(output_mode);
  const auto vals = t.values();
  std::array<value_t, 256> scratch{};
  assert(rank <= scratch.size());

  index_t run_index = out_idx[begin];
  nnz_t run_len = 0;
  stats.output_runs = 1;
  std::unordered_map<index_t, nnz_t> multiplicity;
  multiplicity.reserve(static_cast<std::size_t>(end - begin));

  for (nnz_t n = begin; n < end; ++n) {
    const value_t v = vals[n];
    for (std::size_t r = 0; r < rank; ++r) scratch[r] = v;
    for (std::size_t w = 0; w < modes; ++w) {
      if (w == output_mode) continue;
      const auto row = factors.factor(w).row(t.indices(w)[n]);
      for (std::size_t r = 0; r < rank; ++r) scratch[r] *= row[r];
    }
    const index_t i = out_idx[n];
    auto out_row = out.row(i);
    for (std::size_t r = 0; r < rank; ++r) out_row[r] += scratch[r];

    if (i == run_index) {
      ++run_len;
    } else {
      stats.max_run = std::max(stats.max_run, run_len);
      ++stats.output_runs;
      run_index = i;
      run_len = 1;
    }
    stats.max_multiplicity = std::max(stats.max_multiplicity, ++multiplicity[i]);
  }
  stats.max_run = std::max(stats.max_run, run_len);
  return stats;
}

void RunStatsAccumulator::feed(index_t output_index) {
  if (stats_.nnz == 0 || output_index != run_index_) {
    stats_.max_run = std::max(stats_.max_run, run_len_);
    ++stats_.output_runs;
    run_index_ = output_index;
    run_len_ = 1;
  } else {
    ++run_len_;
  }
  ++stats_.nnz;
  stats_.max_multiplicity =
      std::max(stats_.max_multiplicity, ++multiplicity_[output_index]);
}

sim::EcBlockStats RunStatsAccumulator::finish(std::size_t modes,
                                              std::size_t rank,
                                              std::size_t block_width) {
  stats_.max_run = std::max(stats_.max_run, run_len_);
  stats_.modes = modes;
  stats_.rank = rank;
  stats_.block_width = block_width;
  sim::EcBlockStats out = stats_;
  reset();
  return out;
}

void RunStatsAccumulator::reset() {
  stats_ = sim::EcBlockStats{};
  run_index_ = 0;
  run_len_ = 0;
  multiplicity_.clear();
}

}  // namespace amped
