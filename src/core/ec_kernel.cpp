#include "core/ec_kernel.hpp"

#include <algorithm>
#include <array>
#include <cassert>

namespace amped {

#if defined(__GNUC__) || defined(__clang__)
#define AMPED_PREFETCH(addr) __builtin_prefetch(addr)
#else
#define AMPED_PREFETCH(addr) ((void)0)
#endif

namespace {

// Largest rank the register-accumulation buffers support (matches the
// historical scratch-array bound).
constexpr std::size_t kMaxRank = 256;

// Elements looked ahead for factor-row prefetches. The gathers are the
// kernel's only irregular accesses; fetching them a few elements early
// hides most of the L2/L3 latency they would otherwise serialise on.
constexpr nnz_t kPrefetchDistance = 8;

// Hoisted per-block views: one index pointer and one factor-data pointer
// per input mode, so the element loop performs no span construction, no
// mode test, and no virtual-width indexing.
struct InputMode {
  const index_t* idx;   // coordinate array of this mode
  const value_t* fac;   // factor matrix data, row-major, `rank` wide
};

// Arithmetic + run-structure core. kRankC is the compile-time rank (0 =
// runtime rank): with the rank a constant the hadamard/accumulate loops
// fully unroll and vectorise over the __restrict pointers. Elements of a
// same-output-index run accumulate into `acc` registers and flush to the
// output row once per run; stats gather the run structure on the way
// (multiplicity is filled in by the caller for unsorted blocks).
template <std::size_t kRankC>
sim::EcBlockStats ec_block_kernel(const index_t* __restrict out_idx,
                                  const value_t* __restrict vals,
                                  const InputMode* __restrict inputs,
                                  std::size_t num_inputs,
                                  std::size_t runtime_rank, nnz_t begin,
                                  nnz_t end, value_t* __restrict out_data) {
  const std::size_t rank = kRankC ? kRankC : runtime_rank;
  sim::EcBlockStats stats;
  stats.nnz = end - begin;
  stats.rank = rank;

  value_t acc[kRankC ? kRankC : kMaxRank];
  value_t prod[kRankC ? kRankC : kMaxRank];

  // The first two input modes (all of a 3-mode tensor) get dedicated
  // __restrict locals so the element loop runs without indirection through
  // the mode table; rarer higher modes take the generic tail loop.
  const index_t* __restrict idx0 = num_inputs > 0 ? inputs[0].idx : nullptr;
  const value_t* __restrict fac0 = num_inputs > 0 ? inputs[0].fac : nullptr;
  const index_t* __restrict idx1 = num_inputs > 1 ? inputs[1].idx : nullptr;
  const value_t* __restrict fac1 = num_inputs > 1 ? inputs[1].fac : nullptr;

  index_t run_index = out_idx[begin];
  nnz_t run_len = 0;
  stats.output_runs = 1;
  for (std::size_t r = 0; r < rank; ++r) acc[r] = value_t{0};

  for (nnz_t n = begin; n < end; ++n) {
    // Factor-row gathers are the only irregular loads; at rank >= 16 the
    // rows span multiple cache lines and routinely miss L2, so start them
    // early. Narrow ranks stay cache-resident and skip the overhead (the
    // gate is compile-time for the specialised kernels).
    if constexpr (kRankC == 0 || kRankC >= 16) {
      if ((kRankC != 0 || rank >= 16) && n + kPrefetchDistance < end) {
        if (idx0 != nullptr) {
          const value_t* next =
              fac0 + static_cast<std::size_t>(idx0[n + kPrefetchDistance]) *
                         rank;
          AMPED_PREFETCH(next);
          for (std::size_t b = 16; b < rank; b += 16) {
            AMPED_PREFETCH(next + b);
          }
        }
        if (idx1 != nullptr) {
          const value_t* next =
              fac1 + static_cast<std::size_t>(idx1[n + kPrefetchDistance]) *
                         rank;
          AMPED_PREFETCH(next);
          for (std::size_t b = 16; b < rank; b += 16) {
            AMPED_PREFETCH(next + b);
          }
        }
      }
    }

    const value_t v = vals[n];
    if (idx0 == nullptr) {
      for (std::size_t r = 0; r < rank; ++r) prod[r] = v;
    } else {
      const value_t* __restrict row0 =
          fac0 + static_cast<std::size_t>(idx0[n]) * rank;
      for (std::size_t r = 0; r < rank; ++r) prod[r] = v * row0[r];
      if (idx1 != nullptr) {
        const value_t* __restrict row1 =
            fac1 + static_cast<std::size_t>(idx1[n]) * rank;
        for (std::size_t r = 0; r < rank; ++r) prod[r] *= row1[r];
      }
      for (std::size_t w = 2; w < num_inputs; ++w) {
        const value_t* __restrict row =
            inputs[w].fac + static_cast<std::size_t>(inputs[w].idx[n]) * rank;
        for (std::size_t r = 0; r < rank; ++r) prod[r] *= row[r];
      }
    }

    const index_t i = out_idx[n];
    if (i != run_index) {
      value_t* __restrict out_row =
          out_data + static_cast<std::size_t>(run_index) * rank;
      for (std::size_t r = 0; r < rank; ++r) out_row[r] += acc[r];
      for (std::size_t r = 0; r < rank; ++r) acc[r] = prod[r];
      stats.max_run = std::max(stats.max_run, run_len);
      ++stats.output_runs;
      run_index = i;
      run_len = 1;
    } else {
      for (std::size_t r = 0; r < rank; ++r) acc[r] += prod[r];
      ++run_len;
    }
  }
  value_t* __restrict out_row =
      out_data + static_cast<std::size_t>(run_index) * rank;
  for (std::size_t r = 0; r < rank; ++r) out_row[r] += acc[r];
  stats.max_run = std::max(stats.max_run, run_len);
  return stats;
}

}  // namespace

sim::EcBlockStats run_ec_block(const CooTensor& t, nnz_t begin, nnz_t end,
                               std::size_t output_mode,
                               const FactorSet& factors, DenseMatrix& out,
                               BlockOrder order) {
  assert(end <= t.nnz() && begin <= end);
  assert(output_mode < t.num_modes());
  const std::size_t modes = t.num_modes();
  const std::size_t rank = factors.rank();
  assert(rank <= kMaxRank);

  if (begin == end) {
    sim::EcBlockStats stats;
    stats.modes = modes;
    stats.rank = rank;
    return stats;
  }

  std::array<InputMode, kMaxModes> inputs{};
  std::size_t num_inputs = 0;
  for (std::size_t w = 0; w < modes; ++w) {
    if (w == output_mode) continue;
    inputs[num_inputs++] = {t.indices(w).data(),
                            factors.factor(w).data().data()};
  }

  const index_t* out_idx = t.indices(output_mode).data();
  const value_t* vals = t.values().data();
  value_t* out_data = out.data().data();

  sim::EcBlockStats stats;
  switch (rank) {
    case 8:
      stats = ec_block_kernel<8>(out_idx, vals, inputs.data(), num_inputs,
                                 rank, begin, end, out_data);
      break;
    case 16:
      stats = ec_block_kernel<16>(out_idx, vals, inputs.data(), num_inputs,
                                  rank, begin, end, out_data);
      break;
    case 32:
      stats = ec_block_kernel<32>(out_idx, vals, inputs.data(), num_inputs,
                                  rank, begin, end, out_data);
      break;
    case 64:
      stats = ec_block_kernel<64>(out_idx, vals, inputs.data(), num_inputs,
                                  rank, begin, end, out_data);
      break;
    default:
      stats = ec_block_kernel<0>(out_idx, vals, inputs.data(), num_inputs,
                                 rank, begin, end, out_data);
      break;
  }
  stats.modes = modes;

  if (order == BlockOrder::kOutputSorted) {
    // Output-sorted block: every output index is one contiguous run, so
    // the highest per-index count *is* the longest run.
    stats.max_multiplicity = stats.max_run;
  } else {
    // Unsorted block: exact per-index tally, off the arithmetic path.
    std::unordered_map<index_t, nnz_t> multiplicity;
    multiplicity.reserve(static_cast<std::size_t>(end - begin));
    nnz_t max_mult = 0;
    for (nnz_t n = begin; n < end; ++n) {
      max_mult = std::max(max_mult, ++multiplicity[out_idx[n]]);
    }
    stats.max_multiplicity = max_mult;
  }
  return stats;
}

void RunStatsAccumulator::feed(index_t output_index) {
  if (stats_.nnz == 0 || output_index != run_index_) {
    stats_.max_run = std::max(stats_.max_run, run_len_);
    ++stats_.output_runs;
    run_index_ = output_index;
    run_len_ = 1;
  } else {
    ++run_len_;
  }
  ++stats_.nnz;
  if (order_ == BlockOrder::kUnsorted) {
    stats_.max_multiplicity =
        std::max(stats_.max_multiplicity, ++multiplicity_[output_index]);
  }
}

sim::EcBlockStats RunStatsAccumulator::finish(std::size_t modes,
                                              std::size_t rank,
                                              std::size_t block_width) {
  stats_.max_run = std::max(stats_.max_run, run_len_);
  if (order_ == BlockOrder::kOutputSorted) {
    stats_.max_multiplicity = stats_.max_run;
  }
  stats_.modes = modes;
  stats_.rank = rank;
  stats_.block_width = block_width;
  sim::EcBlockStats out = stats_;
  reset();
  return out;
}

void RunStatsAccumulator::reset() {
  stats_ = sim::EcBlockStats{};
  run_index_ = 0;
  run_len_ = 0;
  multiplicity_.clear();
}

}  // namespace amped
