// Elementwise computation (EC) kernel — the numerical core of MTTKRP
// (paper §3.0.1, Algorithm 2 lines 9-19).
//
// Processes a contiguous range of nonzeros of a COO tensor for a given
// output mode: for each element, the Hadamard product of the input-mode
// factor rows is scaled by the element value and accumulated into the
// output-mode row. This one routine performs the *real* arithmetic for
// AMPED and for every baseline; callers wrap it with their own partition /
// transfer / cost logic. While executing, it gathers the block statistics
// (same-output-row run structure) the simulator's atomic-contention model
// consumes.
#pragma once

#include <unordered_map>

#include "sim/cost_model.hpp"
#include "tensor/coo_tensor.hpp"
#include "tensor/dense_matrix.hpp"

namespace amped {

// Runs EC over elements [begin, end) of `t`, accumulating into `out`
// (dim(output_mode) x R). Returns the block stats for the cost model.
sim::EcBlockStats run_ec_block(const CooTensor& t, nnz_t begin, nnz_t end,
                               std::size_t output_mode,
                               const FactorSet& factors, DenseMatrix& out);

// Incremental collector of the same output-index run statistics for
// callers that drive their own element loops (the baseline kernels over
// BLCO blocks, HiCOO superblocks, ...). Feed output indices in stream
// order, then finish() with the kernel geometry.
class RunStatsAccumulator {
 public:
  void feed(index_t output_index);
  sim::EcBlockStats finish(std::size_t modes, std::size_t rank,
                           std::size_t block_width);
  void reset();

 private:
  sim::EcBlockStats stats_;
  index_t run_index_ = 0;
  nnz_t run_len_ = 0;
  std::unordered_map<index_t, nnz_t> multiplicity_;
};

}  // namespace amped
