// Elementwise computation (EC) kernel — the numerical core of MTTKRP
// (paper §3.0.1, Algorithm 2 lines 9-19).
//
// Processes a contiguous range of nonzeros of a COO tensor for a given
// output mode: for each element, the Hadamard product of the input-mode
// factor rows is scaled by the element value and accumulated into the
// output-mode row. This one routine performs the *real* arithmetic for
// AMPED and for every baseline; callers wrap it with their own partition /
// transfer / cost logic. While executing, it gathers the block statistics
// (same-output-row run structure) the simulator's atomic-contention model
// consumes.
//
// The inner loops are specialised by rank (8/16/32/64 plus a generic
// fallback) over __restrict pointers so the compiler vectorises the
// hadamard/accumulate arithmetic, and same-output-index runs accumulate in
// registers with one output-row update per run — the register-accumulation
// the cost model already assumes for sorted layouts.
#pragma once

#include <unordered_map>

#include "sim/cost_model.hpp"
#include "tensor/coo_tensor.hpp"
#include "tensor/dense_matrix.hpp"

namespace amped {

// Element ordering of a block, which decides how run statistics are
// gathered. AMPED shards and FLYCOO's remapped copies are sorted by the
// output-mode index, so every output index forms one contiguous run and
// max_multiplicity == max_run — no per-element bookkeeping beyond the run
// boundary test. Unsorted blocks need an exact per-index tally.
enum class BlockOrder {
  kUnsorted,      // exact multiplicity via a per-index tally
  kOutputSorted,  // multiplicity == longest run; no tally
};

// Runs EC over elements [begin, end) of `t`, accumulating into `out`
// (dim(output_mode) x R). Returns the block stats for the cost model.
sim::EcBlockStats run_ec_block(const CooTensor& t, nnz_t begin, nnz_t end,
                               std::size_t output_mode,
                               const FactorSet& factors, DenseMatrix& out,
                               BlockOrder order = BlockOrder::kUnsorted);

// Incremental collector of the same output-index run statistics for
// callers that drive their own element loops (the baseline kernels over
// BLCO blocks, HiCOO superblocks, ...). Feed output indices in stream
// order, then finish() with the kernel geometry. Constructing with
// kOutputSorted promises indices arrive grouped by value, collapsing the
// multiplicity tally into the run tracker.
class RunStatsAccumulator {
 public:
  explicit RunStatsAccumulator(BlockOrder order = BlockOrder::kUnsorted)
      : order_(order) {}

  void feed(index_t output_index);
  sim::EcBlockStats finish(std::size_t modes, std::size_t rank,
                           std::size_t block_width);
  void reset();

 private:
  BlockOrder order_;
  sim::EcBlockStats stats_;
  index_t run_index_ = 0;
  nnz_t run_len_ = 0;
  std::unordered_map<index_t, nnz_t> multiplicity_;
};

}  // namespace amped
