// Elementwise computation (EC) kernel — the numerical core of MTTKRP
// (paper §3.0.1, Algorithm 2 lines 9-19).
//
// Processes a contiguous range of nonzeros of a COO tensor for a given
// output mode: for each element, the Hadamard product of the input-mode
// factor rows is scaled by the element value and accumulated into the
// output-mode row. This one routine performs the *real* arithmetic for
// AMPED and for every baseline; callers wrap it with their own partition /
// transfer / cost logic. While executing, it gathers the block statistics
// (same-output-row run structure) the simulator's atomic-contention model
// consumes.
//
// Arbitrary ranks are executed as a sequence of compile-time-specialised
// column tiles (64/32/16/8 plus a <8 remainder) resolved once per distinct
// KernelShape through core/kernel_cache and cached as a TileProgram, so
// steady-state dispatch is one hash lookup. Each tile accumulates
// same-output-index runs in registers with one output-row update per run —
// the register-accumulation the cost model already assumes for sorted
// layouts — and because every rank column accumulates independently over
// the same nonzero order, the tiled execution is bit-identical to the
// single-pass generic kernel (run_ec_block_generic, kept as the reference
// the equivalence suite compares against).
#pragma once

#include <cstdint>
#include <unordered_map>

#include "sim/cost_model.hpp"
#include "tensor/coo_tensor.hpp"
#include "tensor/dense_matrix.hpp"

namespace amped {

class TileProgram;  // core/kernel_cache.hpp

// Element ordering of a block, which decides how run statistics are
// gathered. AMPED shards and FLYCOO's remapped copies are sorted by the
// output-mode index, so every output index forms one contiguous run and
// max_multiplicity == max_run — no per-element bookkeeping beyond the run
// boundary test. Unsorted blocks need an exact per-index tally.
enum class BlockOrder {
  kUnsorted,      // exact multiplicity via a per-index tally
  kOutputSorted,  // multiplicity == longest run; no tally
};

// The cache key of one specialised EC kernel: everything the tile program
// is allowed to bind at build time. Two blocks with equal shapes run the
// exact same code; a future JIT-compiled kernel slots in behind the same
// key without widening it.
struct KernelShape {
  std::uint32_t rank = 0;
  std::uint8_t modes = 0;  // tensor mode count (incl. the output mode)
  // Coordinate width in bytes. index_t is 4 today; the field keeps the
  // key (and any JIT behind it) honest if a 64-bit index build appears.
  std::uint8_t index_width = sizeof(index_t);
  std::uint8_t order = 0;  // BlockOrder, as its underlying value

  // Mode-count bucket the arithmetic is specialised for: 2/3/4 get
  // dedicated input unrolls, 0 is the runtime-mode-count fallback (1-mode
  // and >=5-mode tensors). The cache keys on the bucket, not the raw
  // count: every >=5-mode tensor shares one fallback program.
  std::uint8_t mode_class() const {
    return (modes >= 2 && modes <= 4) ? modes : std::uint8_t{0};
  }

  // Throws std::invalid_argument for rank 0 — a zero-width factor set has
  // no meaningful kernel and previously died as stack corruption.
  static KernelShape of(std::size_t num_modes, std::size_t rank,
                        BlockOrder order);

  std::uint64_t packed() const {
    return static_cast<std::uint64_t>(rank) |
           static_cast<std::uint64_t>(mode_class()) << 32 |
           static_cast<std::uint64_t>(index_width) << 40 |
           static_cast<std::uint64_t>(order) << 48;
  }
  std::size_t hash() const;
  friend bool operator==(const KernelShape& a, const KernelShape& b) {
    return a.packed() == b.packed();
  }
};

// Hoisted per-block view of one input mode: one index pointer and one
// factor-data pointer, so the element loops perform no span construction,
// no mode test, and no virtual-width indexing.
struct EcInputMode {
  const index_t* idx;  // coordinate array of this mode
  const value_t* fac;  // factor matrix data, row-major, `rank` wide
};

// Runs EC over elements [begin, end) of `t`, accumulating into `out`
// (dim(output_mode) x R). Resolves the block's TileProgram through the
// process-wide kernel cache (one hash lookup when the shape is warm) and
// returns the block stats for the cost model. Throws std::invalid_argument
// for rank 0; any rank >= 1 is supported via the tile decomposition.
sim::EcBlockStats run_ec_block(const CooTensor& t, nnz_t begin, nnz_t end,
                               std::size_t output_mode,
                               const FactorSet& factors, DenseMatrix& out,
                               BlockOrder order = BlockOrder::kUnsorted);

// Same, with the TileProgram already resolved — the steady-state form for
// callers that run many blocks of one shape (the host backend's shard
// kernels, the baselines' segment loops): resolve once at plan-lowering
// time, skip even the cache lookup per block.
sim::EcBlockStats run_ec_block(const TileProgram& program, const CooTensor& t,
                               nnz_t begin, nnz_t end,
                               std::size_t output_mode,
                               const FactorSet& factors, DenseMatrix& out);

// Single-pass reference kernel (the pre-tiling implementation, runtime
// rank, no shape cache). The tile programs are asserted bit-identical to
// this by the equivalence suite; it also serves ranks in tests without
// touching the cache. Same argument validation as run_ec_block.
sim::EcBlockStats run_ec_block_generic(const CooTensor& t, nnz_t begin,
                                       nnz_t end, std::size_t output_mode,
                                       const FactorSet& factors,
                                       DenseMatrix& out,
                                       BlockOrder order =
                                           BlockOrder::kUnsorted);

// Incremental collector of the same output-index run statistics for
// callers that drive their own element loops (the baseline kernels over
// BLCO blocks, HiCOO superblocks, ...). Feed output indices in stream
// order, then finish() with the kernel geometry. Constructing with
// kOutputSorted promises indices arrive grouped by value, collapsing the
// multiplicity tally into the run tracker. Constructing with a KernelShape
// binds order, modes, and rank in one place so finish(block_width) cannot
// disagree with the kernel that did the arithmetic.
class RunStatsAccumulator {
 public:
  explicit RunStatsAccumulator(BlockOrder order = BlockOrder::kUnsorted)
      : order_(order) {}
  explicit RunStatsAccumulator(const KernelShape& shape);

  void feed(index_t output_index);
  sim::EcBlockStats finish(std::size_t modes, std::size_t rank,
                           std::size_t block_width);
  // Shape-bound variant; requires the KernelShape constructor.
  sim::EcBlockStats finish(std::size_t block_width);
  void reset();

 private:
  BlockOrder order_;
  std::size_t shape_modes_ = 0;  // 0: constructed without a shape
  std::size_t shape_rank_ = 0;
  sim::EcBlockStats stats_;
  index_t run_index_ = 0;
  nnz_t run_len_ = 0;
  std::unordered_map<index_t, nnz_t> multiplicity_;
};

}  // namespace amped
