// Inter-GPU all-gather of output factor-matrix partitions (paper §4.9,
// Algorithm 3).
//
// After a mode's MTTKRP, each GPU holds the updated rows it owns; every
// GPU needs the full matrix before the next mode. The paper uses a ring:
// (M-1) steps, each GPU forwarding the partition it received in the
// previous step to its successor, with a barrier per step. Two alternative
// algorithms are provided for the ablation bench: direct exchange (each
// GPU sends its partition to every peer) and host-staged gather
// (D2H -> concatenate -> broadcast H2D), the strategy AMPED explicitly
// avoids because it routes bulk traffic through the host.
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "sim/platform.hpp"

namespace amped {

enum class AllGatherAlgo { kRing, kDirect, kHostStaged };

std::string to_string(AllGatherAlgo algo);
// Parses the names produced by to_string; throws std::invalid_argument
// listing the accepted names on a typo.
AllGatherAlgo parse_allgather(const std::string& name);

struct AllGatherReport {
  double seconds = 0.0;          // platform makespan growth
  std::uint64_t bytes_moved = 0; // total bytes crossing any link
};

// `part_bytes[g]` is the byte size of GPU g's owned partition. All GPU
// clocks advance; a barrier is issued before and after so the report's
// `seconds` is the full synchronised cost of the exchange.
AllGatherReport allgather_factor_rows(sim::Platform& platform,
                                      std::span<const std::uint64_t> part_bytes,
                                      AllGatherAlgo algo = AllGatherAlgo::kRing);

// Pure-cost twin of allgather_factor_rows: the seconds the exchange would
// take on already-synchronised devices, with no clock side effects. The
// graph interpreter (exec/plan.cpp) prices gather *edges* with this so a
// gather can occupy an interval of the modelled timeline without forcing
// every device clock through a barrier.
double allgather_seconds(const sim::Platform& platform,
                         std::span<const std::uint64_t> part_bytes,
                         AllGatherAlgo algo = AllGatherAlgo::kRing);

}  // namespace amped
