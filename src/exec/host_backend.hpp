// Real host-parallel execution of Plans: the second PlanExecutor backend.
//
// The simulator interprets a plan against modelled clocks; this backend
// *runs* it. The engine/stream vocabulary maps one-to-one onto host
// resources, deliberately shaped like a future CUDA/HIP port — swap the
// thread for a stream and the staging buffer for device global memory
// and the structure is unchanged:
//
//   simulated concept          host realisation
//   ------------------------   ------------------------------------------
//   GPU lane (sequential)      one dedicated worker thread per lane
//   copy engine (pipelined)    a second thread per lane staging shard
//                              i+1 while the compute thread runs shard i
//                              (depth-2 producer/consumer ring, mirroring
//                              the device's double buffer)
//   dynamic queue (kAnyGpu)    one worker thread per GPU pulling dispatch
//                              units from a shared cursor
//   SpillFetch                 ShardStreamer::acquire (real disk/copy I/O)
//   H2D                        copying the shard's elements out of the
//                              stream view into a lane-private staging
//                              tensor (the "device global memory" the
//                              kernel reads)
//   Kernel                     the PR 2 EC kernels on the staged payload —
//                              the same closures the simulator runs, so
//                              outputs are bit-identical by construction
//   D2H                        a real buffer copy of the partial-result
//                              bytes through a lane-private bounce buffer
//   Barrier                    joining the lane threads
//   AllGather                  a synchronisation point only: factors
//                              already live in shared host memory, so the
//                              exchange is a no-op whose dependency edges
//                              (after the barrier, before the next mode)
//                              still hold — the seam where a device port
//                              would insert real peer copies
//   HostOp                     the closure, called on the driving thread
//
// Timing: every task is measured with WallTimer and accumulated into the
// ExecReport wall_* fields; kernel closures also return the cost model's
// predicted seconds for the executing device, so one host run produces
// (measured, predicted) pairs per GPU — the data bench_backend_validation
// turns into a calibration report.
//
// Bit-identity: AMPED shards of one mode own disjoint output rows, so
// any interleaving of lane threads (and any dynamic assignment of units
// to workers) writes disjoint memory and produces bytes equal to the
// serial order. Plans that do not guarantee this set parallel_lanes =
// false and run serially here, exactly like the simulator.
#pragma once

#include "exec/plan.hpp"

namespace amped::exec {

// Executes `plan` for real on the host. `platform` supplies device specs
// for the cost-model queries inside kernel closures (its clocks are
// never advanced, except by the plan's own HostOp closures). Called by
// PlanExecutor::run when the backend is kHostParallel.
ExecReport run_plan_host_parallel(sim::Platform& platform, Plan& plan);

}  // namespace amped::exec
