// Which machine a Plan runs on.
//
// Every plan in the repo can execute two ways: charged to the simulated
// multi-GPU platform's clocks (kSimulated — every number the paper
// reproduction reports), or for real on the host (kHostParallel —
// exec/host_backend.hpp), where each GPU lane becomes worker threads and
// per-task wall-clock time is measured instead of modelled. Outputs are
// bit-identical either way (asserted in tests/host_backend_test.cpp);
// only the timing columns of the reports differ in meaning.
#pragma once

#include <string>

namespace amped::exec {

enum class ExecBackend {
  kSimulated,     // charge the sim::Platform clocks (default)
  kHostParallel,  // run lanes on host threads, measure wall clock
};

std::string to_string(ExecBackend backend);

// Parses "sim" / "host" (the --backend spellings); throws
// std::invalid_argument listing the valid names on anything else.
ExecBackend parse_backend(const std::string& name);

}  // namespace amped::exec
